// Fault-injection resilience suite (ctest label: fault).
//
// Pins down the tentpole guarantees of the fault subsystem:
//   * RetryPolicy arithmetic (exponential growth, cap, floors);
//   * FaultInjector determinism, the disabled-identity property, tail
//     clamping and burst windows;
//   * deterministic replay — a fixed (seed, profile) pair reproduces the
//     exact same SimMetrics and event timeline twice;
//   * invariant-checker acceptance of injected timelines, including the
//     watchdog's sync→async fallback and the pre-execute recovery that
//     precedes a deadline abort;
//   * the bounded-retry and makespan-reconciliation properties under every
//     named profile;
//   * a golden snapshot of one canonical hostile run
//     (tests/golden/fault_metrics.golden, ITS_UPDATE_GOLDEN=1 regenerates);
//   * CSV and Chrome-trace export round-trips of the resilience fields.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch.h"
#include "core/experiment.h"
#include "core/policy.h"
#include "core/report.h"
#include "fault/fault_injector.h"
#include "obs/event_trace.h"
#include "obs/invariant_checker.h"
#include "obs/trace_json.h"
#include "vm/swap.h"

namespace its {
namespace {

#ifndef ITS_GOLDEN_DIR
#error "ITS_GOLDEN_DIR must point at the checked-in golden directory"
#endif

using core::PolicyKind;
using core::SimMetrics;
using obs::EventKind;

// ---------------------------------------------------------------------------
// RetryPolicy arithmetic.

TEST(RetryPolicy, ExponentialBackoffWithCap) {
  vm::RetryPolicy rp(5, 1000, 2.0, 6000);
  EXPECT_EQ(rp.max_retries(), 5u);
  EXPECT_EQ(rp.backoff(1), 1000);
  EXPECT_EQ(rp.backoff(2), 2000);
  EXPECT_EQ(rp.backoff(3), 4000);
  EXPECT_EQ(rp.backoff(4), 6000);  // 8000 capped
  EXPECT_EQ(rp.backoff(5), 6000);
  EXPECT_EQ(rp.max_total_backoff(), 1000 + 2000 + 4000 + 6000 + 6000);
}

TEST(RetryPolicy, FloorsAndClamps) {
  // A zero base still waits ≥ 1 ns; a shrinking multiplier is clamped to
  // 1.0 so the ladder never decreases.
  vm::RetryPolicy zero_base(3, 0, 2.0, 1000);
  EXPECT_GE(zero_base.backoff(1), 1);
  vm::RetryPolicy shrinking(3, 500, 0.25, 1000);
  EXPECT_EQ(shrinking.backoff(1), 500);
  EXPECT_EQ(shrinking.backoff(3), 500);
  vm::RetryPolicy none(0, 1000, 2.0, 1000);
  EXPECT_EQ(none.max_total_backoff(), 0);
}

// ---------------------------------------------------------------------------
// FaultInjector unit behaviour.

TEST(FaultInjector, DisabledIsInert) {
  fault::FaultInjector inj;  // default: disabled
  EXPECT_FALSE(inj.enabled());
  EXPECT_EQ(inj.inflate_media_latency(0, 3000, false), 3000);
  EXPECT_FALSE(inj.media_error(false, true));
  EXPECT_FALSE(inj.link_error(true));
  EXPECT_EQ(inj.stats().extra_latency, 0);
  EXPECT_EQ(inj.stats().media_errors + inj.stats().link_errors +
                inj.stats().internal_redos,
            0u);
}

TEST(FaultInjector, DeterministicPerSeed) {
  fault::FaultProfile p = *fault::profile_by_name("hostile");
  p.seed = 99;
  fault::FaultInjector a(p), b(p);
  for (int i = 0; i < 2000; ++i) {
    const its::SimTime base = static_cast<its::SimTime>(i) * 100;
    EXPECT_EQ(a.inflate_media_latency(base, 3000, i % 2),
              b.inflate_media_latency(base, 3000, i % 2));
    EXPECT_EQ(a.media_error(false, true), b.media_error(false, true));
    EXPECT_EQ(a.link_error(true), b.link_error(true));
  }
  EXPECT_EQ(a.stats().tail_events, b.stats().tail_events);
  EXPECT_EQ(a.stats().extra_latency, b.stats().extra_latency);

  // A different seed must diverge somewhere over 2000 draws.
  fault::FaultProfile q = p;
  q.seed = 100;
  fault::FaultInjector c(p), d(q);
  bool diverged = false;
  for (int i = 0; i < 2000 && !diverged; ++i)
    diverged = c.inflate_media_latency(0, 3000, false) !=
               d.inflate_media_latency(0, 3000, false);
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, TailDrawsAreClampedAndNeverShrinkLatency) {
  fault::FaultProfile p;
  p.enabled = true;
  p.latency.tail = fault::TailKind::kPareto;
  p.latency.tail_prob = 1.0;  // every draw is a tail
  p.latency.pareto_alpha = 0.5;  // heavy: unclamped draws would be huge
  p.latency.pareto_xm = 1000.0;
  p.latency.max_extra = 50'000;
  fault::FaultInjector inj(p);
  for (int i = 0; i < 500; ++i) {
    its::Duration t = inj.inflate_media_latency(0, 3000, false);
    EXPECT_GE(t, 3000);
    EXPECT_LE(t, 3000 + 50'000);
  }
  EXPECT_EQ(inj.stats().tail_events, 500u);
}

TEST(FaultInjector, BurstWindows) {
  fault::FaultProfile p;
  p.enabled = true;
  p.latency.burst_period = 1000;
  p.latency.burst_len = 200;
  p.latency.burst_multiplier = 4.0;
  fault::FaultInjector inj(p);
  EXPECT_TRUE(inj.in_burst(0));
  EXPECT_TRUE(inj.in_burst(199));
  EXPECT_FALSE(inj.in_burst(200));
  EXPECT_FALSE(inj.in_burst(999));
  EXPECT_TRUE(inj.in_burst(1000));
  // Inside a burst the whole service time is multiplied; outside it is not.
  EXPECT_GE(inj.inflate_media_latency(100, 3000, false), 3000 * 4);
  EXPECT_EQ(inj.inflate_media_latency(500, 3000, false), 3000);
}

TEST(FaultInjector, NamedProfiles) {
  for (auto name : fault::profile_names())
    EXPECT_TRUE(fault::profile_by_name(name).has_value()) << name;
  EXPECT_FALSE(fault::profile_by_name("none")->enabled);
  EXPECT_TRUE(fault::profile_by_name("hostile")->enabled);
  EXPECT_TRUE(fault::profile_by_name("outage")->outage.enabled());
  EXPECT_TRUE(fault::profile_by_name("hostile")->outage.enabled());
  EXPECT_FALSE(fault::profile_by_name("tail")->outage.enabled());
  EXPECT_FALSE(fault::profile_by_name("no-such-profile").has_value());
}

TEST(FaultInjector, OutageWindowsStallTheDevice) {
  fault::FaultProfile p;
  p.enabled = true;
  p.outage.period = 1000;
  p.outage.length = 200;
  fault::FaultInjector inj(p);
  EXPECT_TRUE(inj.in_outage(0));
  EXPECT_TRUE(inj.in_outage(199));
  EXPECT_FALSE(inj.in_outage(200));
  EXPECT_FALSE(inj.in_outage(999));
  EXPECT_TRUE(inj.in_outage(1000));
  // A request posted inside the window queues until the window closes; one
  // posted outside starts immediately.
  EXPECT_EQ(inj.outage_clear(100), 200u);
  EXPECT_EQ(inj.outage_clear(500), 500u);

  // Past the death point the outage never clears — callers must consult
  // in_outage and treat the device as gone.
  fault::FaultProfile dead;
  dead.enabled = true;
  dead.outage.dead_at = 5000;
  fault::FaultInjector dinj(dead);
  EXPECT_FALSE(dinj.in_outage(4999));
  EXPECT_TRUE(dinj.in_outage(5000));
  EXPECT_EQ(dinj.outage_clear(6000), 6000u);
}

// ---------------------------------------------------------------------------
// Whole-simulation properties.  One small batch keeps each run ~a second.

core::ExperimentConfig small_config() {
  core::ExperimentConfig cfg;
  cfg.gen.length_scale = 0.02;
  cfg.gen.footprint_scale = 0.25;
  cfg.sim.seed = 42;
  return cfg;
}

const core::BatchSpec& test_batch() { return core::paper_batches()[1]; }

SimMetrics run_profile(const char* profile, PolicyKind policy,
                       obs::EventTrace* et = nullptr,
                       std::uint64_t fault_seed = 7) {
  core::ExperimentConfig cfg = small_config();
  cfg.sim.fault = *fault::profile_by_name(profile);
  cfg.sim.fault.seed = fault_seed;
  auto traces = core::batch_traces(test_batch(), cfg.gen);
  return core::run_batch_policy(test_batch(), policy, cfg, traces, et);
}

bool metrics_equal(const SimMetrics& a, const SimMetrics& b) {
  return a.makespan == b.makespan && a.cpu_busy == b.cpu_busy &&
         a.idle.mem_stall == b.idle.mem_stall &&
         a.idle.busy_wait == b.idle.busy_wait &&
         a.idle.ctx_switch == b.idle.ctx_switch &&
         a.idle.no_runnable == b.idle.no_runnable &&
         a.major_faults == b.major_faults && a.io_errors == b.io_errors &&
         a.io_retries == b.io_retries &&
         a.retry_exhausted == b.retry_exhausted &&
         a.deadline_aborts == b.deadline_aborts &&
         a.mode_fallbacks == b.mode_fallbacks &&
         a.degraded_time == b.degraded_time &&
         a.stolen_time == b.stolen_time;
}

TEST(FaultSim, DeterministicReplay) {
  obs::EventTrace t1, t2;
  SimMetrics m1 = run_profile("hostile", PolicyKind::kIts, &t1);
  SimMetrics m2 = run_profile("hostile", PolicyKind::kIts, &t2);
  EXPECT_TRUE(metrics_equal(m1, m2));
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    const obs::Event &a = t1.events()[i], &b = t2.events()[i];
    ASSERT_TRUE(a.ts == b.ts && a.kind == b.kind && a.pid == b.pid &&
                a.a == b.a && a.b == b.b && a.c == b.c)
        << "event " << i << " differs between identical replays";
  }
  // And the injection did something worth replaying.
  EXPECT_GT(m1.io_errors, 0u);

  // A different injector seed must not produce the same timeline.
  SimMetrics m3 = run_profile("hostile", PolicyKind::kIts, nullptr, 8);
  EXPECT_FALSE(metrics_equal(m1, m3));
}

TEST(FaultSim, InvariantsHoldUnderEveryProfile) {
  for (auto name : fault::profile_names()) {
    for (PolicyKind k : {PolicyKind::kSync, PolicyKind::kIts}) {
      obs::EventTrace et;
      SimMetrics m = run_profile(std::string(name).c_str(), k, &et);
      obs::CheckResult res = obs::check_invariants(et, m);
      EXPECT_TRUE(res.ok()) << "profile " << name << ", policy "
                            << core::policy_name(k) << ":\n"
                            << res.summary();
      // Exact makespan reconciliation, asserted directly as well.
      EXPECT_EQ(m.cpu_busy + m.idle.busy_wait + m.idle.ctx_switch +
                    m.idle.no_runnable,
                m.makespan)
          << "profile " << name << ", policy " << core::policy_name(k);
    }
  }
}

TEST(FaultSim, InvariantsHoldForAllPoliciesUnderHostile) {
  for (PolicyKind k : core::kAllPolicies) {
    obs::EventTrace et;
    SimMetrics m = run_profile("hostile", k, &et);
    obs::CheckResult res = obs::check_invariants(et, m);
    EXPECT_TRUE(res.ok()) << core::policy_name(k) << ":\n" << res.summary();
  }
}

TEST(FaultSim, WatchdogFallsBackAndRecoversPreexecState) {
  obs::EventTrace et;
  SimMetrics m = run_profile("hostile", PolicyKind::kIts, &et);
  // The watchdog fired: at least one sync wait aborted and fell back.
  EXPECT_GT(m.deadline_aborts, 0u);
  EXPECT_GT(m.mode_fallbacks, 0u);
  EXPECT_EQ(m.deadline_aborts, m.mode_fallbacks);
  EXPECT_GT(m.degraded_time, 0);

  // At least one abort recovered from a pre-execute episode: the engine ran
  // inside the watchdog window, its state was discarded, and the abort
  // followed immediately (PreexecEnd directly before DeadlineAbort, same
  // pid — the recovery the acceptance criteria require).
  bool recovered = false;
  const auto& ev = et.events();
  for (std::size_t i = 1; i < ev.size() && !recovered; ++i)
    recovered = ev[i].kind == EventKind::kDeadlineAbort &&
                ev[i - 1].kind == EventKind::kPreexecEnd &&
                ev[i].pid == ev[i - 1].pid;
  EXPECT_TRUE(recovered);

  // Every fallback pairs with an abort at the same instant on the same pid
  // (the checker enforces this too; keep a direct witness here).
  EXPECT_EQ(et.count(EventKind::kDeadlineAbort),
            et.count(EventKind::kModeFallback));
}

TEST(FaultSim, RetriesAreBounded) {
  for (auto name : fault::profile_names()) {
    SimMetrics m = run_profile(std::string(name).c_str(), PolicyKind::kIts);
    const std::uint64_t posts =
        m.major_faults + m.prefetch_issued + m.page_cache_misses;
    const fault::FaultProfile fp = *fault::profile_by_name(name);
    EXPECT_LE(m.io_retries, std::uint64_t{fp.max_retries} * posts)
        << "profile " << name;
    EXPECT_EQ(m.io_errors, m.io_retries) << "profile " << name;
  }
}

TEST(FaultSim, DisabledProfileLeavesResilienceCountersZero) {
  SimMetrics m = run_profile("none", PolicyKind::kIts);
  EXPECT_EQ(m.io_errors, 0u);
  EXPECT_EQ(m.io_retries, 0u);
  EXPECT_EQ(m.retry_exhausted, 0u);
  EXPECT_EQ(m.deadline_aborts, 0u);
  EXPECT_EQ(m.mode_fallbacks, 0u);
  EXPECT_EQ(m.degraded_time, 0);
  // The outage substrate is fully inert too: no health time is accounted,
  // no frames are carved, no pool traffic exists.
  EXPECT_EQ(m.health_healthy_time + m.health_degraded_time +
                m.health_offline_time + m.health_recovering_time,
            0);
  EXPECT_EQ(m.pool_stores + m.pool_hits + m.pool_drains + m.drain_bytes, 0u);
  EXPECT_EQ(m.faults_served_degraded, 0u);
}

// ---------------------------------------------------------------------------
// Device-outage state machine + fallback pool (docs/robustness.md).

TEST(OutageSim, DeterministicReplayIncludingHealthTransitions) {
  obs::EventTrace t1, t2;
  SimMetrics m1 = run_profile("outage", PolicyKind::kIts, &t1);
  SimMetrics m2 = run_profile("outage", PolicyKind::kIts, &t2);
  EXPECT_TRUE(metrics_equal(m1, m2));
  EXPECT_EQ(m1.health_offline_time, m2.health_offline_time);
  EXPECT_EQ(m1.pool_stores, m2.pool_stores);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    const obs::Event &a = t1.events()[i], &b = t2.events()[i];
    ASSERT_TRUE(a.ts == b.ts && a.kind == b.kind && a.pid == b.pid &&
                a.a == b.a && a.b == b.b && a.c == b.c)
        << "event " << i << " differs between identical outage replays";
  }
  // The outage schedule actually fired, and every transition is on record.
  EXPECT_GT(m1.health_offline_time, 0);
  EXPECT_GT(t1.count(EventKind::kHealthTransition), 0u);
}

TEST(OutageSim, AvailabilityCountersPartitionTheMakespan) {
  for (PolicyKind k : core::kAllPolicies) {
    obs::EventTrace et;
    SimMetrics m = run_profile("outage", k, &et);
    EXPECT_EQ(m.health_healthy_time + m.health_degraded_time +
                  m.health_offline_time + m.health_recovering_time,
              m.makespan)
        << core::policy_name(k);
    obs::CheckResult res = obs::check_invariants(et, m);
    EXPECT_TRUE(res.ok()) << core::policy_name(k) << ":\n" << res.summary();
  }
}

TEST(OutageSim, FaultsEnteredUnhealthyAreCounted) {
  obs::EventTrace et;
  SimMetrics m = run_profile("outage", PolicyKind::kSync, &et);
  std::uint64_t unhealthy_begins = 0;
  for (const auto& e : et.events())
    if (e.kind == EventKind::kFaultBegin && e.b != 0) ++unhealthy_begins;
  EXPECT_EQ(m.faults_served_degraded, unhealthy_begins);
  // The scheduled windows are long enough that some faults land in them.
  EXPECT_GT(m.faults_served_degraded, 0u);
}

TEST(OutageSim, HostileProfileExercisesThePool) {
  obs::EventTrace et;
  SimMetrics m = run_profile("hostile", PolicyKind::kIts, &et);
  obs::CheckResult res = obs::check_invariants(et, m);
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(et.count(EventKind::kPoolStore), m.pool_stores);
  EXPECT_EQ(et.count(EventKind::kPoolLoad), m.pool_hits);
  EXPECT_EQ(et.count(EventKind::kPoolDrain), m.pool_drains);
  EXPECT_EQ(m.drain_bytes, m.pool_drains * its::kPageSize);
}

// ---------------------------------------------------------------------------
// Golden snapshot of the canonical hostile run.
//
// One batch × all five policies under the `hostile` profile at fixed sim
// and injector seeds.  Regenerate after an intentional behaviour change:
//   ITS_UPDATE_GOLDEN=1 ./build/tests/fault_test

const char* kFaultGoldenPath = ITS_GOLDEN_DIR "/fault_metrics.golden";

void emit_fault_metrics(std::ostream& os, const std::string& key,
                        const SimMetrics& m) {
  os << key << ".makespan=" << m.makespan << '\n';
  os << key << ".cpu_busy=" << m.cpu_busy << '\n';
  os << key << ".idle.busy_wait=" << m.idle.busy_wait << '\n';
  os << key << ".idle.ctx_switch=" << m.idle.ctx_switch << '\n';
  os << key << ".idle.no_runnable=" << m.idle.no_runnable << '\n';
  os << key << ".major_faults=" << m.major_faults << '\n';
  os << key << ".stolen_time=" << m.stolen_time << '\n';
  os << key << ".io_errors=" << m.io_errors << '\n';
  os << key << ".io_retries=" << m.io_retries << '\n';
  os << key << ".retry_exhausted=" << m.retry_exhausted << '\n';
  os << key << ".deadline_aborts=" << m.deadline_aborts << '\n';
  os << key << ".mode_fallbacks=" << m.mode_fallbacks << '\n';
  os << key << ".degraded_time=" << m.degraded_time << '\n';
  os << key << ".health_healthy_time=" << m.health_healthy_time << '\n';
  os << key << ".health_degraded_time=" << m.health_degraded_time << '\n';
  os << key << ".health_offline_time=" << m.health_offline_time << '\n';
  os << key << ".health_recovering_time=" << m.health_recovering_time << '\n';
  os << key << ".pool_stores=" << m.pool_stores << '\n';
  os << key << ".pool_hits=" << m.pool_hits << '\n';
  os << key << ".pool_drains=" << m.pool_drains << '\n';
  os << key << ".faults_served_degraded=" << m.faults_served_degraded << '\n';
}

TEST(FaultGolden, HostileRunMatchesSnapshot) {
  std::ostringstream os;
  os << "# its_sim fault golden — regenerate with ITS_UPDATE_GOLDEN=1 "
        "./fault_test\n";
  os << "# config: batch1 length_scale=0.02 footprint_scale=0.25 seed=42 "
        "fault=hostile fault_seed=7\n";
  for (PolicyKind k : core::kAllPolicies) {
    SimMetrics m = run_profile("hostile", k);
    emit_fault_metrics(os, std::string(core::policy_name(k)), m);
  }
  std::string actual = os.str();

  if (const char* update = std::getenv("ITS_UPDATE_GOLDEN");
      update != nullptr && std::string(update) == "1") {
    std::ofstream out(kFaultGoldenPath, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << kFaultGoldenPath;
    out << actual;
    GTEST_SKIP() << "regenerated " << kFaultGoldenPath;
  }

  std::ifstream in(kFaultGoldenPath);
  ASSERT_TRUE(in.good()) << "missing golden file " << kFaultGoldenPath
                         << " — run ITS_UPDATE_GOLDEN=1 ./fault_test";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "hostile-profile metrics diverged; if intentional, regenerate with "
         "ITS_UPDATE_GOLDEN=1 ./fault_test and commit the diff";
}

// ---------------------------------------------------------------------------
// Export round-trips.

TEST(FaultExport, CsvCarriesResilienceColumns) {
  core::BatchResult r;
  r.spec = &test_batch();
  SimMetrics m = run_profile("hostile", PolicyKind::kIts);
  r.by_policy.emplace(PolicyKind::kIts, m);
  std::string csv = core::metrics_csv({&r, 1});

  std::istringstream is(csv);
  std::string header, row;
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, row));
  ASSERT_NE(header.find(
                "io_errors,io_retries,retry_exhausted,deadline_aborts,"
                "mode_fallbacks,degraded_ns"),
            std::string::npos);
  // Look columns up by header name so appending new counters to the CSV
  // does not invalidate this test.
  auto split = [](const std::string& line) {
    std::vector<std::string> fields;
    std::istringstream ls(line);
    for (std::string f; std::getline(ls, f, ',');) fields.push_back(f);
    return fields;
  };
  const std::vector<std::string> cols = split(header);
  const std::vector<std::string> fields = split(row);
  ASSERT_EQ(cols.size(), fields.size());
  auto field = [&](const std::string& name) {
    auto it = std::find(cols.begin(), cols.end(), name);
    EXPECT_NE(it, cols.end()) << "no CSV column named " << name;
    return std::stoull(
        fields[static_cast<std::size_t>(it - cols.begin())]);
  };
  EXPECT_EQ(field("io_errors"), m.io_errors);
  EXPECT_EQ(field("io_retries"), m.io_retries);
  EXPECT_EQ(field("retry_exhausted"), m.retry_exhausted);
  EXPECT_EQ(field("deadline_aborts"), m.deadline_aborts);
  EXPECT_EQ(field("mode_fallbacks"), m.mode_fallbacks);
  EXPECT_EQ(field("degraded_ns"),
            static_cast<std::uint64_t>(m.degraded_time));
}

TEST(FaultExport, ChromeTraceRoundTripsResilienceEvents) {
  obs::EventTrace et;
  SimMetrics m = run_profile("hostile", PolicyKind::kIts, &et);
  ASSERT_GT(m.io_errors, 0u);
  ASSERT_GT(m.deadline_aborts, 0u);

  std::stringstream json;
  obs::write_chrome_trace(json, et);
  auto parsed = obs::parse_chrome_trace(json);

  auto count_named = [&](std::string_view name) {
    std::uint64_t n = 0;
    for (const auto& e : parsed)
      if (e.ph != "M" && e.name == name) ++n;
    return n;
  };
  EXPECT_EQ(count_named("io_error"), m.io_errors);
  EXPECT_EQ(count_named("io_retry"), m.io_retries);
  EXPECT_EQ(count_named("deadline_abort"), m.deadline_aborts);
  EXPECT_EQ(count_named("mode_fallback"), m.mode_fallbacks);
}

// ---------------------------------------------------------------------------
// The checker rejects malformed resilience timelines.

TEST(FaultChecker, RejectsRetryWithoutError) {
  obs::EventTrace et;
  et.record(EventKind::kIoRetry, 100, obs::kDevicePid, 1, 1, 50);
  SimMetrics m;
  m.io_retries = 1;
  EXPECT_FALSE(obs::check_invariants(et, m).ok());
}

TEST(FaultChecker, RejectsMismatchedRetryPair) {
  obs::EventTrace et;
  et.record(EventKind::kIoError, 100, obs::kDevicePid, 1, 1, 0);
  // Wrong repost time: ts != error.ts + backoff.
  et.record(EventKind::kIoRetry, 300, obs::kDevicePid, 1, 1, 50);
  SimMetrics m;
  m.io_errors = 1;
  m.io_retries = 1;
  EXPECT_FALSE(obs::check_invariants(et, m).ok());
}

TEST(FaultChecker, RejectsDanglingError) {
  obs::EventTrace et;
  et.record(EventKind::kIoError, 100, obs::kDevicePid, 1, 1, 0);
  SimMetrics m;
  m.io_errors = 1;
  EXPECT_FALSE(obs::check_invariants(et, m).ok());
}

TEST(FaultChecker, RejectsFallbackWithoutAbort) {
  obs::EventTrace et;
  et.record(EventKind::kModeFallback, 100, 0, 1, 500, 0);
  SimMetrics m;
  m.mode_fallbacks = 1;
  m.degraded_time = 500;
  EXPECT_FALSE(obs::check_invariants(et, m).ok());
}

TEST(FaultChecker, RejectsDegradedTimeMismatch) {
  obs::EventTrace et;
  SimMetrics m;
  m.degraded_time = 123;  // no kModeFallback events back this up
  EXPECT_FALSE(obs::check_invariants(et, m).ok());
}

TEST(FaultChecker, AcceptsWellFormedResilienceTimeline) {
  obs::EventTrace et;
  SimMetrics m;
  et.record(EventKind::kIoError, 100, obs::kDevicePid, 7, 1, 0);
  et.record(EventKind::kIoRetry, 150, obs::kDevicePid, 7, 1, 50);
  m.io_errors = 1;
  m.io_retries = 1;
  obs::CheckResult res = obs::check_invariants(et, m);
  EXPECT_TRUE(res.ok()) << res.summary();
}

// ---------------------------------------------------------------------------
// ... and malformed availability timelines.

namespace hk {
constexpr std::uint64_t kHealthy = 0, kDegraded = 1, kOffline = 2,
                        kRecovering = 3;
}  // namespace hk

TEST(FaultChecker, RejectsIllegalHealthEdge) {
  obs::EventTrace et;
  // healthy → offline skips the mandatory degraded hop.
  et.record(EventKind::kHealthTransition, 100, obs::kDevicePid, hk::kHealthy,
            hk::kOffline);
  SimMetrics m;
  m.makespan = 1000;
  m.cpu_busy = 1000;
  m.health_healthy_time = 100;
  m.health_offline_time = 900;
  EXPECT_FALSE(obs::check_invariants(et, m).ok());
}

TEST(FaultChecker, RejectsBrokenHealthChain) {
  obs::EventTrace et;
  et.record(EventKind::kHealthTransition, 100, obs::kDevicePid, hk::kHealthy,
            hk::kDegraded);
  // Next edge claims to leave offline — but the device was degraded.
  et.record(EventKind::kHealthTransition, 200, obs::kDevicePid, hk::kOffline,
            hk::kRecovering);
  SimMetrics m;
  m.makespan = 1000;
  m.cpu_busy = 1000;
  EXPECT_FALSE(obs::check_invariants(et, m).ok());
}

TEST(FaultChecker, RejectsTimeInStateMismatch) {
  obs::EventTrace et;
  et.record(EventKind::kHealthTransition, 100, obs::kDevicePid, hk::kHealthy,
            hk::kDegraded);
  et.record(EventKind::kHealthTransition, 300, obs::kDevicePid, hk::kDegraded,
            hk::kHealthy);
  SimMetrics m;
  m.makespan = 1000;
  m.cpu_busy = 1000;
  m.health_healthy_time = 800;
  m.health_degraded_time = 123;  // the events say 200
  EXPECT_FALSE(obs::check_invariants(et, m).ok());
}

TEST(FaultChecker, RejectsPoolCountMismatch) {
  obs::EventTrace et;
  et.record(EventKind::kPoolStore, 100, 0, 7, 2000);
  SimMetrics m;
  m.pool_stores = 2;  // only one kPoolStore on record
  EXPECT_FALSE(obs::check_invariants(et, m).ok());
}

TEST(FaultChecker, RejectsDrainByteMismatch) {
  obs::EventTrace et;
  et.record(EventKind::kPoolDrain, 100, 0, 7, its::kPageSize);
  SimMetrics m;
  m.pool_drains = 1;
  m.drain_bytes = 17;  // the event says kPageSize
  EXPECT_FALSE(obs::check_invariants(et, m).ok());
}

TEST(FaultChecker, RejectsDegradedFaultCountMismatch) {
  obs::EventTrace et;
  et.record(EventKind::kHealthTransition, 0, obs::kDevicePid, hk::kHealthy,
            hk::kDegraded);
  et.record(EventKind::kFaultBegin, 100, 0, 7, hk::kDegraded);
  et.record(EventKind::kFaultEnd, 200, 0, 7);
  SimMetrics m;
  m.makespan = 1000;
  m.cpu_busy = 1000;
  m.major_faults = 1;
  m.health_degraded_time = 1000;
  m.faults_served_degraded = 0;  // the FaultBegin operand says 1
  EXPECT_FALSE(obs::check_invariants(et, m).ok());
}

TEST(FaultChecker, AcceptsWellFormedAvailabilityTimeline) {
  obs::EventTrace et;
  et.record(EventKind::kHealthTransition, 100, obs::kDevicePid, hk::kHealthy,
            hk::kDegraded);
  et.record(EventKind::kHealthTransition, 100, obs::kDevicePid, hk::kDegraded,
            hk::kOffline);
  et.record(EventKind::kHealthTransition, 300, obs::kDevicePid, hk::kOffline,
            hk::kRecovering);
  et.record(EventKind::kHealthTransition, 400, obs::kDevicePid,
            hk::kRecovering, hk::kHealthy);
  et.record(EventKind::kPoolStore, 150, 0, 7, 2000);
  et.record(EventKind::kPoolLoad, 200, 0, 7, 1000);
  SimMetrics m;
  m.makespan = 1000;
  m.cpu_busy = 1000;
  m.health_healthy_time = 700;  // [0,100) + [400,1000)
  m.health_offline_time = 200;  // [100,300)
  m.health_recovering_time = 100;  // [300,400)
  m.pool_stores = 1;
  m.pool_hits = 1;
  obs::CheckResult res = obs::check_invariants(et, m);
  EXPECT_TRUE(res.ok()) << res.summary();
}

}  // namespace
}  // namespace its
