// Tests for the CFS-style fair scheduler (ablation alternative to the
// paper's SCHED_RR).
#include <gtest/gtest.h>

#include <memory>

#include "sched/cfs.h"
#include "trace/instr.h"

namespace its::sched {
namespace {

std::shared_ptr<const trace::Trace> tiny_trace() {
  auto t = std::make_shared<trace::Trace>("tiny");
  t->push_back(trace::Instr::compute(1, 1, 0, 0));
  return t;
}

class CfsTest : public ::testing::Test {
 protected:
  CfsTest() {
    for (int i = 0; i < 3; ++i)
      procs_.push_back(std::make_unique<Process>(
          static_cast<its::Pid>(i), "p" + std::to_string(i), 10 * (i + 1),
          tiny_trace()));
  }
  CfsConfig cfg_{.sched_latency = 12000, .min_granularity = 1000};
  std::vector<std::unique_ptr<Process>> procs_;
};

TEST_F(CfsTest, PicksMinimumVruntime) {
  CfsScheduler s(cfg_);
  for (auto& p : procs_) s.add(p.get());
  Process* first = s.pick();
  ASSERT_NE(first, nullptr);
  s.account(*first, 5000);  // consume CPU
  s.yield(first);
  // first now has the largest vruntime; the others (still 0) go first.
  Process* second = s.pick();
  EXPECT_NE(second, first);
}

TEST_F(CfsTest, TieBreaksByPidDeterministically) {
  CfsScheduler s(cfg_);
  for (auto& p : procs_) s.add(p.get());
  EXPECT_EQ(s.pick(), procs_[0].get());  // all vruntime 0 → lowest pid
}

TEST_F(CfsTest, HigherPriorityAccruesSlower) {
  CfsScheduler s(cfg_);
  s.add(procs_[0].get());  // priority 10
  s.add(procs_[2].get());  // priority 30
  s.account(*procs_[0], 3000);
  s.account(*procs_[2], 3000);
  // Equal wall time: the high-priority process accrues less vruntime.
  EXPECT_GT(s.vruntime(*procs_[0]), s.vruntime(*procs_[2]));
}

TEST_F(CfsTest, SliceProportionalToWeight) {
  CfsScheduler s(cfg_);
  for (auto& p : procs_) s.add(p.get());
  // Weights 10/20/30 of 60 → 2000/4000/6000 ns of the 12 µs latency.
  EXPECT_EQ(s.slice_for(*procs_[0]), 2000u);
  EXPECT_EQ(s.slice_for(*procs_[1]), 4000u);
  EXPECT_EQ(s.slice_for(*procs_[2]), 6000u);
}

TEST_F(CfsTest, SliceFloorApplies) {
  CfsScheduler s({.sched_latency = 1200, .min_granularity = 1000});
  for (auto& p : procs_) s.add(p.get());
  EXPECT_EQ(s.slice_for(*procs_[0]), 1000u);  // share 200 < floor
}

TEST_F(CfsTest, BlockAndWakeWithSleeperFairness) {
  CfsScheduler s(cfg_);
  for (auto& p : procs_) s.add(p.get());
  Process* p = s.pick();
  s.account(*p, 100);
  s.block(p);
  EXPECT_EQ(p->state(), ProcState::kBlocked);
  // Run the others far ahead.
  for (int round = 0; round < 10; ++round) {
    Process* q = s.pick();
    ASSERT_NE(q, nullptr);
    s.account(*q, 50000);
    s.yield(q);
  }
  s.wake(p);
  // Sleeper fairness: p resumes bounded behind min_vruntime, so it is the
  // next pick, but its vruntime is not stuck at its tiny pre-sleep value.
  EXPECT_EQ(s.pick(), p);
  EXPECT_GT(s.vruntime(*p), 100u);
}

TEST_F(CfsTest, PeekNextMatchesPick) {
  CfsScheduler s(cfg_);
  for (auto& p : procs_) s.add(p.get());
  const Process* peeked = s.peek_next();
  EXPECT_EQ(s.pick(), peeked);
}

TEST_F(CfsTest, EmptyQueueBehaviour) {
  CfsScheduler s(cfg_);
  EXPECT_EQ(s.pick(), nullptr);
  EXPECT_EQ(s.peek_next(), nullptr);
  EXPECT_FALSE(s.any_ready());
}

TEST_F(CfsTest, WakeNonBlockedThrows) {
  CfsScheduler s(cfg_);
  s.add(procs_[0].get());
  EXPECT_THROW(s.wake(procs_[0].get()), std::logic_error);
}

TEST_F(CfsTest, AccountUnknownProcessThrows) {
  CfsScheduler s(cfg_);
  EXPECT_THROW(s.account(*procs_[0], 10), std::logic_error);
}

TEST_F(CfsTest, AddNullThrows) {
  CfsScheduler s(cfg_);
  EXPECT_THROW(s.add(nullptr), std::invalid_argument);
}

TEST_F(CfsTest, FairnessOverManyRounds) {
  // Two equal-priority processes must receive (nearly) equal CPU when
  // always charged their granted slice.
  auto a = std::make_unique<Process>(0, "a", 20, tiny_trace());
  auto b = std::make_unique<Process>(1, "b", 20, tiny_trace());
  CfsScheduler s(cfg_);
  s.add(a.get());
  s.add(b.get());
  its::Duration ran_a = 0, ran_b = 0;
  for (int i = 0; i < 100; ++i) {
    Process* p = s.pick();
    its::Duration d = s.slice_for(*p);
    s.account(*p, d);
    (p == a.get() ? ran_a : ran_b) += d;
    s.yield(p);
  }
  EXPECT_NEAR(static_cast<double>(ran_a) / static_cast<double>(ran_b), 1.0, 0.1);
}

TEST_F(CfsTest, WeightedShareOverManyRounds) {
  // Priority 30 vs 10 should converge to a ~3:1 CPU share.
  auto lo = std::make_unique<Process>(0, "lo", 10, tiny_trace());
  auto hi = std::make_unique<Process>(1, "hi", 30, tiny_trace());
  CfsScheduler s(cfg_);
  s.add(lo.get());
  s.add(hi.get());
  its::Duration ran_lo = 0, ran_hi = 0;
  for (int i = 0; i < 400; ++i) {
    Process* p = s.pick();
    its::Duration d = s.slice_for(*p);
    s.account(*p, d);
    (p == lo.get() ? ran_lo : ran_hi) += d;
    s.yield(p);
  }
  double share = static_cast<double>(ran_hi) / static_cast<double>(ran_lo);
  EXPECT_NEAR(share, 3.0, 0.5);
}

}  // namespace
}  // namespace its::sched
