// Tests for trace analysis: page profiles / working-set estimation (the
// paper's §4.1 definition), locality statistics, and exact page-granularity
// reuse distances.
#include <gtest/gtest.h>

#include "trace/analysis.h"
#include "trace/instr.h"
#include "trace/workloads.h"

namespace its::trace {
namespace {

Trace loads_at(std::initializer_list<its::VirtAddr> addrs) {
  Trace t;
  for (auto a : addrs) t.push_back(Instr::load(a, 8, 1, 0));
  return t;
}

constexpr its::VirtAddr kP0 = 0x100000;  // page 0x100
constexpr its::VirtAddr kP1 = 0x101000;
constexpr its::VirtAddr kP2 = 0x102000;
constexpr its::VirtAddr kP3 = 0x103000;

TEST(PageProfile, CountsPerPage) {
  Trace t = loads_at({kP0, kP0, kP0, kP1, kP1, kP2});
  PageProfile p = profile_pages(t);
  EXPECT_EQ(p.total_accesses, 6u);
  EXPECT_EQ(p.distinct_pages, 3u);
  ASSERT_EQ(p.counts_desc.size(), 3u);
  EXPECT_EQ(p.counts_desc[0], 3u);  // sorted descending
  EXPECT_EQ(p.counts_desc[2], 1u);
  EXPECT_EQ(p.footprint_bytes(), 3 * its::kPageSize);
}

TEST(PageProfile, WorkingSetCoverage) {
  // 90 accesses to one page, 10 spread over ten pages.
  Trace t;
  for (int i = 0; i < 90; ++i) t.push_back(Instr::load(kP0, 8, 1, 0));
  for (int i = 0; i < 10; ++i)
    t.push_back(Instr::load(kP1 + static_cast<its::VirtAddr>(i) * its::kPageSize, 8, 1, 0));
  PageProfile p = profile_pages(t);
  // 90% of accesses are covered by the single hot page.
  EXPECT_EQ(p.working_set_bytes(0.90), its::kPageSize);
  // Full coverage needs all 11 pages.
  EXPECT_EQ(p.working_set_bytes(1.0), 11 * its::kPageSize);
  // Degenerate coverages clamp.
  EXPECT_EQ(p.working_set_bytes(0.0), 0u);
}

TEST(PageProfile, EmptyTrace) {
  PageProfile p = profile_pages(Trace{});
  EXPECT_EQ(p.working_set_bytes(0.99), 0u);
  EXPECT_EQ(p.footprint_bytes(), 0u);
}

TEST(Locality, SequentialStreamScoresHigh) {
  Trace t;
  for (int i = 0; i < 1000; ++i)
    t.push_back(Instr::load(kP0 + static_cast<its::VirtAddr>(i) * 64, 64, 1, 0));
  LocalityStats s = analyze_locality(t);
  EXPECT_GT(s.sequentiality, 0.99);
  EXPECT_GT(s.page_locality, 0.99);
  EXPECT_EQ(s.distinct_strides, 1u);
  EXPECT_GT(s.dominant_stride_share, 0.99);
}

TEST(Locality, RandomStreamScoresLow) {
  Trace t;
  std::uint64_t x = 12345;
  for (int i = 0; i < 1000; ++i) {
    x = x * 6364136223846793005ull + 1;
    t.push_back(Instr::load(kP0 + (x % (1u << 26)), 8, 1, 0));
  }
  LocalityStats s = analyze_locality(t);
  EXPECT_LT(s.sequentiality, 0.05);
  EXPECT_LT(s.page_locality, 0.05);
  EXPECT_GT(s.distinct_strides, 10u);
}

TEST(Locality, EmptyAndSingleRef) {
  EXPECT_EQ(analyze_locality(Trace{}).mem_refs, 0u);
  LocalityStats s = analyze_locality(loads_at({kP0}));
  EXPECT_EQ(s.mem_refs, 1u);
  EXPECT_EQ(s.sequentiality, 0.0);
}

TEST(Reuse, ColdAccessesCounted) {
  ReuseProfile r = analyze_reuse(loads_at({kP0, kP1, kP2}));
  EXPECT_EQ(r.cold_accesses, 3u);
  EXPECT_TRUE(r.distances.empty());
}

TEST(Reuse, ExactStackDistances) {
  // Access pattern P0 P1 P2 P0: the P0 re-access saw 2 distinct pages since.
  ReuseProfile r = analyze_reuse(loads_at({kP0, kP1, kP2, kP0}));
  ASSERT_EQ(r.distances.size(), 1u);
  EXPECT_EQ(r.distances[0], 2u);
}

TEST(Reuse, ImmediateReuseIsZeroDistance) {
  ReuseProfile r = analyze_reuse(loads_at({kP0, kP0}));
  ASSERT_EQ(r.distances.size(), 1u);
  EXPECT_EQ(r.distances[0], 0u);
}

TEST(Reuse, RepeatedCycleDistances) {
  // P0 P1 P0 P1: both re-accesses have distance 1.
  ReuseProfile r = analyze_reuse(loads_at({kP0, kP1, kP0, kP1}));
  ASSERT_EQ(r.distances.size(), 2u);
  EXPECT_EQ(r.distances[0], 1u);
  EXPECT_EQ(r.distances[1], 1u);
}

TEST(Reuse, QuantileMonotone) {
  ReuseProfile r = analyze_reuse(loads_at({kP0, kP1, kP2, kP3, kP0, kP3}));
  EXPECT_LE(r.quantile_pages(0.0), r.quantile_pages(1.0));
  EXPECT_EQ(ReuseProfile{}.quantile_pages(0.5), 0u);
}

TEST(Analysis, WorkloadClassesSeparate) {
  // The analyzers must tell the workload classes apart: streaming caffe
  // scans vs pointer-chasing randwalk.
  GeneratorConfig cfg;
  cfg.length_scale = 0.05;
  LocalityStats caffe = analyze_locality(generate(WorkloadId::kCaffe, cfg));
  LocalityStats rw = analyze_locality(generate(WorkloadId::kRandomWalk, cfg));
  EXPECT_GT(caffe.page_locality, rw.page_locality);
  EXPECT_GT(caffe.sequentiality, rw.sequentiality);
}

TEST(Analysis, WorkingSetOrderingMatchesSpecs) {
  // deepsjeng's measured working set must be far below randwalk's.
  GeneratorConfig cfg;
  cfg.length_scale = 0.25;
  auto ws = [&](WorkloadId id) {
    return profile_pages(generate(id, cfg)).working_set_bytes(0.99);
  };
  EXPECT_LT(ws(WorkloadId::kDeepSjeng), ws(WorkloadId::kRandomWalk));
}

}  // namespace
}  // namespace its::trace
