// Tests for src/mem: set-associative cache, 3-level hierarchy, TLB, and the
// pre-execute cache's per-byte INV semantics.
#include <gtest/gtest.h>

#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "mem/preexec_cache.h"
#include "mem/tlb.h"
#include "util/types.h"

namespace its::mem {
namespace {

CacheConfig tiny_cache() { return {1024, 2, 64, 1}; }  // 8 sets × 2 ways

TEST(SetAssocCache, MissThenHit) {
  SetAssocCache c(tiny_cache());
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x103F));  // same line
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(SetAssocCache, LruEvictsOldest) {
  SetAssocCache c(tiny_cache());  // 8 sets: lines with same (line % 8) collide
  // Three lines mapping to set 0: line numbers 0, 8, 16 → addrs 0, 0x200, 0x400.
  c.access(0x000);
  c.access(0x200);
  c.access(0x000);   // refresh line 0
  c.access(0x400);   // evicts line 8 (LRU)
  EXPECT_TRUE(c.probe(0x000));
  EXPECT_FALSE(c.probe(0x200));
  EXPECT_TRUE(c.probe(0x400));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(SetAssocCache, FillDoesNotCountHitOrMiss) {
  SetAssocCache c(tiny_cache());
  c.fill(0x1000);
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, 0u);
  EXPECT_TRUE(c.probe(0x1000));
}

TEST(SetAssocCache, InvalidateSingleLine) {
  SetAssocCache c(tiny_cache());
  c.access(0x1000);
  EXPECT_TRUE(c.invalidate(0x1000));
  EXPECT_FALSE(c.probe(0x1000));
  EXPECT_FALSE(c.invalidate(0x1000));  // second time: not present
  EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(SetAssocCache, InvalidateRangeDropsWholePage) {
  SetAssocCache c({64 * 1024, 8, 64, 1});
  for (std::uint64_t a = 0x4000; a < 0x5000; a += 64) c.access(a);
  c.invalidate_range(0x4000, its::kPageSize);
  for (std::uint64_t a = 0x4000; a < 0x5000; a += 64) EXPECT_FALSE(c.probe(a));
}

TEST(SetAssocCache, InvalidateAll) {
  SetAssocCache c(tiny_cache());
  c.access(0x0);
  c.access(0x40);
  c.invalidate_all();
  EXPECT_EQ(c.lines_resident(), 0u);
}

TEST(SetAssocCache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache({1024, 0, 64, 1}), std::invalid_argument);
  EXPECT_THROW(SetAssocCache({1024, 2, 48, 1}), std::invalid_argument);  // not pow2
  EXPECT_THROW(SetAssocCache({100, 3, 64, 1}), std::invalid_argument);
}

TEST(SetAssocCache, ProbeHasNoSideEffects) {
  SetAssocCache c(tiny_cache());
  EXPECT_FALSE(c.probe(0x1000));
  EXPECT_EQ(c.stats().hits + c.stats().misses, 0u);
}

class CacheWaySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(CacheWaySweep, FullyUtilisesAssociativity) {
  unsigned ways = GetParam();
  SetAssocCache c({64ull * ways, ways, 64, 1});  // exactly 1 set
  for (unsigned i = 0; i < ways; ++i) c.access(i * 64);
  for (unsigned i = 0; i < ways; ++i) EXPECT_TRUE(c.probe(i * 64)) << i;
  c.access(ways * 64);  // one more: evicts exactly one
  EXPECT_EQ(c.lines_resident(), ways);
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheWaySweep, ::testing::Values(1, 2, 4, 8, 16));

TEST(Hierarchy, LatenciesSumPerLevel) {
  HierarchyConfig cfg;  // l1 1 ns, l2 4 ns, llc 14 ns, dram 50 ns
  CacheHierarchy h(cfg);
  AccessResult r = h.access(0x10000, 8);
  EXPECT_EQ(r.level, HitLevel::kMemory);
  EXPECT_EQ(r.latency, 1u + 4 + 14 + 50);
  r = h.access(0x10000, 8);
  EXPECT_EQ(r.level, HitLevel::kL1);
  EXPECT_EQ(r.latency, 1u);
}

TEST(Hierarchy, InclusiveFillOnMiss) {
  CacheHierarchy h;
  h.access(0x20000, 8);
  EXPECT_TRUE(h.l1().probe(0x20000));
  EXPECT_TRUE(h.l2().probe(0x20000));
  EXPECT_TRUE(h.llc().probe(0x20000));
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  HierarchyConfig cfg;
  cfg.l1 = {128, 2, 64, 1};  // 1 set × 2 ways: tiny L1
  CacheHierarchy h(cfg);
  h.access(0x0000, 8);
  h.access(0x1000, 8);
  h.access(0x2000, 8);  // evicts 0x0000 from L1, still in L2
  AccessResult r = h.access(0x0000, 8);
  EXPECT_EQ(r.level, HitLevel::kL2);
  EXPECT_EQ(r.latency, 1u + 4);
}

TEST(Hierarchy, WarmMakesArchitecturalAccessHit) {
  CacheHierarchy h;
  h.warm(0x30000, 64);
  AccessResult r = h.access(0x30000, 8);
  EXPECT_EQ(r.level, HitLevel::kL1);
  // warm() itself must not create hit/miss counts.
  EXPECT_EQ(h.l1().stats().misses, 0u);
}

TEST(Hierarchy, LineSpanningAccessChargesSlowerLine) {
  CacheHierarchy h;
  h.warm(0x40000, 64);            // first line cached
  AccessResult r = h.access(0x4003C, 8);  // spans into uncached second line
  EXPECT_EQ(r.level, HitLevel::kMemory);
}

TEST(Hierarchy, InvalidatePageDropsAllLevels) {
  CacheHierarchy h;
  for (std::uint64_t a = 0x50000; a < 0x51000; a += 64) h.access(a, 8);
  h.invalidate_page(0x50000);
  EXPECT_FALSE(h.probe(0x50000));
  EXPECT_FALSE(h.probe(0x50FC0));
}

TEST(Hierarchy, LlcMissCounter) {
  CacheHierarchy h;
  h.access(0x60000, 8);
  h.access(0x60000, 8);
  h.access(0x61000, 8);
  EXPECT_EQ(h.llc_misses(), 2u);
  EXPECT_EQ(h.total_accesses(), 3u);
  h.reset_stats();
  EXPECT_EQ(h.llc_misses(), 0u);
}

TEST(Tlb, HitAfterInsert) {
  Tlb tlb(4);
  EXPECT_FALSE(tlb.lookup(10));
  tlb.insert(10);
  EXPECT_TRUE(tlb.lookup(10));
  EXPECT_EQ(tlb.stats().hits, 1u);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, LruEviction) {
  Tlb tlb(2);
  tlb.insert(1);
  tlb.insert(2);
  tlb.lookup(1);   // 1 now MRU
  tlb.insert(3);   // evicts 2
  EXPECT_TRUE(tlb.lookup(1));
  EXPECT_FALSE(tlb.lookup(2));
  EXPECT_TRUE(tlb.lookup(3));
}

TEST(Tlb, InsertExistingRefreshes) {
  Tlb tlb(2);
  tlb.insert(1);
  tlb.insert(2);
  tlb.insert(1);  // refresh, no growth
  EXPECT_EQ(tlb.size(), 2u);
  tlb.insert(3);  // evicts 2 (LRU), not 1
  EXPECT_TRUE(tlb.lookup(1));
  EXPECT_FALSE(tlb.lookup(2));
}

TEST(Tlb, FlushEmptiesAndCounts) {
  Tlb tlb(8);
  tlb.insert(1);
  tlb.insert(2);
  tlb.flush();
  EXPECT_EQ(tlb.size(), 0u);
  EXPECT_FALSE(tlb.lookup(1));
  EXPECT_EQ(tlb.stats().flushes, 1u);
}

TEST(Tlb, InvalidateSingleEntry) {
  Tlb tlb(8);
  tlb.insert(5);
  tlb.invalidate(5);
  EXPECT_FALSE(tlb.lookup(5));
  tlb.invalidate(99);  // absent: no-op
}

TEST(Tlb, RejectsZeroCapacity) { EXPECT_THROW(Tlb(0), std::invalid_argument); }

PreexecCacheConfig tiny_px() { return {2048, 2, 64}; }  // 16 sets × 2 ways

TEST(PreexecCache, StoreThenLoadValid) {
  PreexecCache px(tiny_px());
  px.store(0x100, 8, /*invalid=*/false);
  PxLookup r = px.lookup(0x100, 8);
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.any_invalid);
}

TEST(PreexecCache, InvalidStorePoisonsBytes) {
  PreexecCache px(tiny_px());
  px.store(0x200, 16, /*invalid=*/true);
  PxLookup r = px.lookup(0x200, 8);
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.any_invalid);
  EXPECT_EQ(px.stats().invalid_bytes_written, 16u);
}

TEST(PreexecCache, ValidOverwriteClearsInv) {
  PreexecCache px(tiny_px());
  px.store(0x300, 8, true);
  px.store(0x300, 8, false);  // fresh valid data supersedes
  EXPECT_FALSE(px.lookup(0x300, 8).any_invalid);
}

TEST(PreexecCache, PartialOverlapReportsIncomplete) {
  PreexecCache px(tiny_px());
  px.store(0x400, 4, false);
  PxLookup r = px.lookup(0x400, 8);  // upper 4 bytes never written
  EXPECT_TRUE(r.found);
  EXPECT_FALSE(r.complete);
}

TEST(PreexecCache, DisjointRangeMisses) {
  PreexecCache px(tiny_px());
  px.store(0x500, 8, false);
  PxLookup r = px.lookup(0x540, 8);  // different line
  EXPECT_FALSE(r.found);
  EXPECT_EQ(px.stats().load_misses, 1u);
}

TEST(PreexecCache, LineSpanningStore) {
  PreexecCache px(tiny_px());
  px.store(0x7F8, 16, true);  // spans lines 0x7C0 and 0x800
  EXPECT_TRUE(px.lookup(0x7F8, 8).any_invalid);
  EXPECT_TRUE(px.lookup(0x800, 8).any_invalid);
}

TEST(PreexecCache, PidKeySeparatesProcesses) {
  PreexecCache px(tiny_px());
  auto k1 = PreexecCache::key(1, 0x1000);
  auto k2 = PreexecCache::key(2, 0x1000);
  EXPECT_NE(k1, k2);
  px.store(k1, 8, true);
  EXPECT_FALSE(px.lookup(k2, 8).found);
}

TEST(PreexecCache, ClearDropsEverything) {
  PreexecCache px(tiny_px());
  px.store(0x100, 8, false);
  px.clear();
  EXPECT_EQ(px.lines_resident(), 0u);
  EXPECT_FALSE(px.lookup(0x100, 8).found);
}

TEST(PreexecCache, EvictionReclaimsLru) {
  PreexecCache px({256, 2, 64});  // 2 sets × 2 ways
  // Three lines in set 0: line numbers 0, 2, 4 → addrs 0x0, 0x80, 0x100.
  px.store(0x00, 8, false);
  px.store(0x80, 8, false);
  px.lookup(0x00, 8);      // refresh
  px.store(0x100, 8, false);  // evicts 0x80
  EXPECT_TRUE(px.lookup(0x00, 8).found);
  EXPECT_FALSE(px.lookup(0x80, 8).found);
}

TEST(PreexecCache, RejectsNon64ByteLines) {
  EXPECT_THROW(PreexecCache({1024, 2, 32}), std::invalid_argument);
}

}  // namespace
}  // namespace its::mem
