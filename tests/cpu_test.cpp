// Tests for src/cpu: INV-bit register file, shadow checkpoint (state
// recovery), store buffer forwarding, and the fault-aware pre-execute
// engine's Fig. 3 store/load flows.
#include <gtest/gtest.h>

#include <vector>

#include "cpu/preexec_engine.h"
#include "cpu/register_file.h"
#include "cpu/store_buffer.h"
#include "mem/hierarchy.h"
#include "mem/preexec_cache.h"
#include "trace/trace.h"
#include "util/types.h"
#include "vm/mm.h"

namespace its::cpu {
namespace {

using trace::Instr;

TEST(RegisterFile, ZeroRegisterAlwaysValid) {
  RegisterFile rf;
  rf.set_invalid(0, true);
  EXPECT_FALSE(rf.is_invalid(0));
}

TEST(RegisterFile, SetAndClear) {
  RegisterFile rf;
  rf.set_invalid(5, true);
  EXPECT_TRUE(rf.is_invalid(5));
  EXPECT_FALSE(rf.is_invalid(6));
  rf.set_invalid(5, false);
  EXPECT_FALSE(rf.is_invalid(5));
}

TEST(RegisterFile, PropagateCascades) {
  RegisterFile rf;
  rf.set_invalid(3, true);
  rf.propagate(7, 3, 0);  // src1 invalid → dst invalid
  EXPECT_TRUE(rf.is_invalid(7));
  rf.propagate(7, 0, 0);  // both sources valid → dst revalidated
  EXPECT_FALSE(rf.is_invalid(7));
}

TEST(RegisterFile, InvalidCountTracksMask) {
  RegisterFile rf;
  rf.set_invalid(1, true);
  rf.set_invalid(2, true);
  EXPECT_EQ(rf.invalid_count(), 2u);
  rf.clear_all();
  EXPECT_EQ(rf.invalid_count(), 0u);
}

TEST(ShadowRegisterFile, CheckpointRestoreRoundTrip) {
  RegisterFile rf;
  rf.set_invalid(4, true);
  ShadowRegisterFile shadow;
  shadow.checkpoint(rf);
  rf.set_invalid(9, true);
  rf.set_invalid(4, false);
  shadow.restore(rf);
  EXPECT_TRUE(rf.is_invalid(4));
  EXPECT_FALSE(rf.is_invalid(9));
  EXPECT_TRUE(shadow.has_checkpoint());
}

TEST(StoreBuffer, ForwardsYoungestOverlap) {
  StoreBuffer sb(8);
  sb.push({0x100, 8, false});
  sb.push({0x100, 8, true});  // younger, invalid
  SbHit h = sb.lookup(0x100, 4);
  EXPECT_TRUE(h.found);
  EXPECT_TRUE(h.invalid);
}

TEST(StoreBuffer, PartialOverlapCounts) {
  StoreBuffer sb(8);
  sb.push({0x100, 8, false});
  EXPECT_TRUE(sb.lookup(0x104, 8).found);   // overlaps 4 bytes
  EXPECT_FALSE(sb.lookup(0x108, 8).found);  // adjacent, no overlap
}

TEST(StoreBuffer, OverflowRetiresOldest) {
  StoreBuffer sb(2);
  sb.push({0x100, 8, false});
  sb.push({0x200, 8, false});
  auto retired = sb.push({0x300, 8, true});
  ASSERT_TRUE(retired);
  EXPECT_EQ(retired->addr, 0x100u);
  EXPECT_EQ(sb.size(), 2u);
}

TEST(StoreBuffer, DrainReturnsFifoOrderAndEmpties) {
  StoreBuffer sb(4);
  sb.push({0x1, 1, false});
  sb.push({0x2, 1, true});
  auto all = sb.drain();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].addr, 0x1u);
  EXPECT_EQ(all[1].addr, 0x2u);
  EXPECT_TRUE(sb.empty());
}

// ---------------------------------------------------------------------------
// PreexecEngine fixture: a tiny mapped/unmapped address space and a real
// cache hierarchy.
// ---------------------------------------------------------------------------
class PreexecEngineTest : public ::testing::Test {
 protected:
  static constexpr its::Vpn kMapped = 0x100;    // present in DRAM
  static constexpr its::Vpn kMapped2 = 0x101;   // present in DRAM
  static constexpr its::Vpn kSwapped = 0x102;   // still on the device

  PreexecEngineTest()
      : caches_(), px_(), mm_(1, footprint()) {
    mm_.pte(kMapped)->map(10);
    mm_.pte(kMapped2)->map(11);
  }

  static std::vector<its::Vpn> footprint() { return {kMapped, kMapped2, kSwapped}; }

  static its::VirtAddr va(its::Vpn vpn, unsigned off = 0) {
    return (vpn << its::kPageShift) + off;
  }

  PreexecEngine make_engine(const PreexecConfig& cfg = {}) {
    return PreexecEngine(cfg, caches_, px_);
  }

  mem::CacheHierarchy caches_;
  mem::PreexecCache px_;
  RegisterFile rf_;
  vm::MemoryDescriptor mm_;
};

TEST_F(PreexecEngineTest, TooSmallBudgetDoesNotRun) {
  trace::Trace t;
  t.push_back(Instr::load(va(kSwapped), 8, 1, 0));
  auto eng = make_engine();
  EpisodeResult ep = eng.run(t, 0, rf_, mm_, 5);
  EXPECT_FALSE(ep.ran);
  EXPECT_EQ(ep.used, 0u);
}

TEST_F(PreexecEngineTest, WarmsMemoryResidentLoads) {
  trace::Trace t;
  t.push_back(Instr::load(va(kSwapped), 8, 1, 0));  // faulting record
  t.push_back(Instr::load(va(kMapped, 0x40), 8, 2, 0));
  t.push_back(Instr::load(va(kMapped2, 0x80), 8, 3, 0));
  auto eng = make_engine();
  EpisodeResult ep = eng.run(t, 0, rf_, mm_, 3000);
  EXPECT_TRUE(ep.ran);
  EXPECT_EQ(ep.lines_warmed, 2u);
  // The warmed lines must hit when re-executed architecturally.
  EXPECT_TRUE(caches_.probe((10ull << its::kPageShift) + 0x40));
  EXPECT_TRUE(caches_.probe((11ull << its::kPageShift) + 0x80));
  // Warming must not pollute architectural hit/miss statistics.
  EXPECT_EQ(caches_.llc_misses(), 0u);
}

TEST_F(PreexecEngineTest, FaultingDestinationIsPoisoned) {
  trace::Trace t;
  t.push_back(Instr::load(va(kSwapped), 8, 1, 0));       // fault: r1 poisoned
  t.push_back(Instr::load(va(kMapped), 8, 2, /*base=*/1));  // addr depends on r1
  auto eng = make_engine();
  EpisodeResult ep = eng.run(t, 0, rf_, mm_, 3000);
  EXPECT_EQ(ep.lines_warmed, 0u);  // dependent load skipped
  EXPECT_GE(ep.invalid_ops, 1u);
}

TEST_F(PreexecEngineTest, ComputePropagatesPoison) {
  trace::Trace t;
  t.push_back(Instr::load(va(kSwapped), 8, 1, 0));  // r1 poisoned
  t.push_back(Instr::compute(1, 5, 1, 0));          // r5 <- f(r1): poisoned
  t.push_back(Instr::load(va(kMapped), 8, 2, 5));   // depends on r5: skipped
  auto eng = make_engine();
  EpisodeResult ep = eng.run(t, 0, rf_, mm_, 3000);
  EXPECT_EQ(ep.lines_warmed, 0u);
}

TEST_F(PreexecEngineTest, StateRecoveryRestoresRegisterFile) {
  trace::Trace t;
  t.push_back(Instr::load(va(kSwapped), 8, 1, 0));
  t.push_back(Instr::load(va(kSwapped, 0x10), 8, 2, 0));  // also poisons r2
  auto eng = make_engine();
  rf_.set_invalid(7, true);  // pre-existing state must survive
  eng.run(t, 0, rf_, mm_, 3000);
  EXPECT_FALSE(rf_.is_invalid(1));  // episode poison rolled back
  EXPECT_FALSE(rf_.is_invalid(2));
  EXPECT_TRUE(rf_.is_invalid(7));   // checkpointed state restored
}

TEST_F(PreexecEngineTest, StoreToSwappedPageGoesToPreexecCacheAndSetsPteInv) {
  trace::Trace t;
  t.push_back(Instr::load(va(kSwapped), 8, 1, 0));             // fault
  t.push_back(Instr::store(va(kSwapped, 0x40), 8, /*data=*/0, /*base=*/0));
  auto eng = make_engine();
  eng.run(t, 0, rf_, mm_, 3000);
  // Fig. 3a (0): INV bytes in the pre-execute cache + PTE INV bit.
  auto key = mem::PreexecCache::key(1, va(kSwapped, 0x40));
  EXPECT_TRUE(px_.lookup(key, 8).any_invalid);
  EXPECT_TRUE(mm_.pte(kSwapped)->inv());
}

TEST_F(PreexecEngineTest, ValidStoreForwardsToLaterLoad) {
  trace::Trace t;
  t.push_back(Instr::load(va(kSwapped), 8, 1, 0));                  // fault
  t.push_back(Instr::store(va(kMapped, 0x200), 8, /*data=*/0, 0));  // valid store
  t.push_back(Instr::load(va(kMapped, 0x200), 8, 4, 0));            // forwarded
  auto eng = make_engine();
  EpisodeResult ep = eng.run(t, 0, rf_, mm_, 3000);
  EXPECT_GE(ep.stores_buffered, 1u);
  EXPECT_FALSE(rf_.is_invalid(4));  // restored anyway, but no crash path
  EXPECT_EQ(ep.invalid_ops, 0u);
}

TEST_F(PreexecEngineTest, InvalidStorePoisonsLaterLoadViaBuffer) {
  trace::Trace t;
  t.push_back(Instr::load(va(kSwapped), 8, 1, 0));                // r1 poisoned
  t.push_back(Instr::store(va(kMapped, 0x300), 8, /*data=*/1, 0));  // bogus data
  t.push_back(Instr::load(va(kMapped, 0x300), 8, 4, 0));          // reads poison
  auto eng = make_engine();
  EpisodeResult ep = eng.run(t, 0, rf_, mm_, 3000);
  EXPECT_GE(ep.invalid_ops, 2u);  // the store and the forwarded load
  EXPECT_TRUE(mm_.pte(kMapped)->inv());  // Fig. 3a: invalid store sets PTE INV
}

TEST_F(PreexecEngineTest, PteInvBitPoisonsCachedLoads) {
  trace::Trace t;
  mm_.pte(kMapped)->set_inv(true);  // Fig. 3b (3)
  t.push_back(Instr::load(va(kSwapped), 8, 1, 0));
  t.push_back(Instr::load(va(kMapped, 0x80), 8, 2, 0));
  auto eng = make_engine();
  EpisodeResult ep = eng.run(t, 0, rf_, mm_, 3000);
  EXPECT_EQ(ep.lines_warmed, 0u);
  EXPECT_GE(ep.invalid_ops, 1u);
}

TEST_F(PreexecEngineTest, RetiredStoresLandInPreexecCache) {
  PreexecConfig cfg;
  trace::Trace t;
  t.push_back(Instr::load(va(kSwapped), 8, 1, 0));
  t.push_back(Instr::store(va(kMapped, 0x100), 8, /*data=*/0, 0));
  auto eng = make_engine(cfg);
  eng.run(t, 0, rf_, mm_, 3000);  // drain at episode end retires the store
  auto key = mem::PreexecCache::key(1, va(kMapped, 0x100));
  mem::PxLookup r = px_.lookup(key, 8);
  EXPECT_TRUE(r.found);
  EXPECT_FALSE(r.any_invalid);
}

TEST_F(PreexecEngineTest, WindowCapStopsEpisode) {
  PreexecConfig cfg;
  cfg.max_records = 3;
  trace::Trace t;
  t.push_back(Instr::load(va(kSwapped), 8, 1, 0));
  for (int i = 0; i < 10; ++i) t.push_back(Instr::compute(1, 2, 0, 0));
  auto eng = make_engine(cfg);
  EpisodeResult ep = eng.run(t, 0, rf_, mm_, 100000);
  EXPECT_EQ(ep.records, 3u);
}

TEST_F(PreexecEngineTest, FillCapStopsEpisode) {
  PreexecConfig cfg;
  cfg.max_warm_fills = 1;
  trace::Trace t;
  t.push_back(Instr::load(va(kSwapped), 8, 1, 0));
  t.push_back(Instr::load(va(kMapped, 0x000), 8, 2, 0));
  t.push_back(Instr::load(va(kMapped, 0x400), 8, 3, 0));
  auto eng = make_engine(cfg);
  EpisodeResult ep = eng.run(t, 0, rf_, mm_, 100000);
  EXPECT_EQ(ep.lines_warmed, 1u);
}

TEST_F(PreexecEngineTest, BudgetBoundsTimeUsed) {
  trace::Trace t;
  t.push_back(Instr::load(va(kSwapped), 8, 1, 0));
  for (int i = 0; i < 500; ++i) t.push_back(Instr::compute(10, 2, 0, 0));
  auto eng = make_engine();
  its::Duration budget = 200;
  EpisodeResult ep = eng.run(t, 0, rf_, mm_, budget);
  EXPECT_TRUE(ep.ran);
  EXPECT_LE(ep.used, budget);
}

TEST_F(PreexecEngineTest, TotalsAccumulateAcrossEpisodes) {
  trace::Trace t;
  t.push_back(Instr::load(va(kSwapped), 8, 1, 0));
  t.push_back(Instr::load(va(kMapped), 8, 2, 0));
  auto eng = make_engine();
  eng.run(t, 0, rf_, mm_, 3000);
  eng.run(t, 0, rf_, mm_, 3000);
  EXPECT_EQ(eng.totals().episodes, 2u);
  EXPECT_GE(eng.totals().records, 2u);
}

}  // namespace
}  // namespace its::cpu
