#include "fault/fault_injector.h"
#include "obs/event_trace.h"
#include "storage/device_health.h"
#include "util/types.h"
#include "vm/fallback_pool.h"

unsigned long long survive(const OutageWindow& w) {
  HealthFsm fsm{w, Probe{}, Ticks{}};
  PoolLedger pool{Probe{}, Ticks{}};
  return fsm.now.ns + pool.cost.ns;
}
