#pragma once

#include "fault/fault_injector.h"
#include "obs/event_trace.h"
#include "util/types.h"

struct HealthFsm {
  OutageWindow window;
  Probe probe;
  Ticks now;
};
