#pragma once

#include "obs/event_trace.h"
#include "util/types.h"

struct PoolLedger {
  Probe probe;
  Ticks cost;
};
