#pragma once

#include "util/types.h"

struct Probe {
  Ticks at;
};
