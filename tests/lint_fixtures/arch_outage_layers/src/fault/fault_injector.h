#pragma once

#include "util/types.h"

struct OutageWindow {
  Ticks open;
};
