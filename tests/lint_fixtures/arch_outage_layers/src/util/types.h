#pragma once

struct Ticks {
  unsigned long long ns = 0;
};
