#include "obs/event_trace.h"

namespace its::obs {

char phase_of(EventKind k) {
  switch (k) {
    case EventKind::kAlpha:
      return 'B';
    case EventKind::kBeta:
      return 'E';
  }
  return 'i';
}

}  // namespace its::obs
