// Minimal in-sync registry: two kinds, derived count, matching assert.
#pragma once
#include <cstddef>

namespace its::obs {

enum class EventKind : unsigned char {
  kAlpha,
  kBeta,
};

inline constexpr std::size_t kNumEventKinds =
    static_cast<std::size_t>(EventKind::kBeta) + 1;
static_assert(kNumEventKinds == 2, "registry fixture count");

}  // namespace its::obs
