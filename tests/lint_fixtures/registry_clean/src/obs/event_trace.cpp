#include "obs/event_trace.h"

namespace its::obs {

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kAlpha:
      return "alpha";
    case EventKind::kBeta:
      return "beta";
  }
  return "unknown";
}

}  // namespace its::obs
