#include "obs/event_trace.h"

namespace its::obs {

bool process_timeline(EventKind k) {
  switch (k) {
    case EventKind::kAlpha:
      return true;
    case EventKind::kBeta:
      return false;
  }
  return true;
}

}  // namespace its::obs
