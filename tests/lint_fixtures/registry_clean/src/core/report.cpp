#include <ostream>

#include "core/metrics.h"

namespace its::core {

void write_metrics_csv(std::ostream& os, const SimMetrics& m) {
  os << m.major_faults << ',' << m.idle.busy_wait << '\n';
}

}  // namespace its::core
