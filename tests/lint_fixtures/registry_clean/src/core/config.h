#pragma once

namespace its::core {

struct SimConfig {
  unsigned knob = 1;
};

}  // namespace its::core
