#pragma once
#include <cstdint>

namespace its::core {

struct IdleBreakdown {
  std::uint64_t busy_wait = 0;
};

struct SimMetrics {
  std::uint64_t major_faults = 0;
  IdleBreakdown idle{};
};

}  // namespace its::core
