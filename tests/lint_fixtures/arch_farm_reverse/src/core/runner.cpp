#include "farm/worker.h"

int runner_value() { return Worker{}.counters.u.v + Worker{}.u.v; }
