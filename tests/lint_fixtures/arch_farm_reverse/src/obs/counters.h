#pragma once

#include "util/u.h"

struct Counters {
  U u;
};
