#pragma once

#include "obs/counters.h"
#include "util/u.h"

struct Worker {
  Counters counters;
  U u;
};
