// conc-guarded fixture: a lock-owning class with unguarded members.
#pragma once
#include <cstddef>
#include <mutex>

namespace fix {

class Counter {
 public:
  void bump();

 private:
  std::mutex mu_;
  std::size_t count_ = 0;
  bool dirty_ = false;
  const std::size_t limit_ = 64;
};

}  // namespace fix
