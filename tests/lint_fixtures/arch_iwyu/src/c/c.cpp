#include "b/b.h"

int from_transitive(const Beta& b) {
  Alpha copy = b.a;
  return copy.v;
}
