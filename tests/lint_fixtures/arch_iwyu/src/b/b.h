#pragma once

#include "a/a.h"

struct Beta {
  Alpha a;
};
