#pragma once

struct Used {
  int v = 0;
};

struct Orphan {
  int w = 0;
};
