#include "a/a.h"

int use_it() { return Used{}.v; }
