#pragma once

#include "y/y.h"

struct Xs {
  Ys* y = nullptr;
};
