#pragma once

#include "z/z.h"

struct Ys {
  Zs* z = nullptr;
};
