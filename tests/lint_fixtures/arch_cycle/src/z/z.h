#pragma once

#include "x/x.h"

struct Zs {
  Xs* x = nullptr;
};
