// Drifted serving registry: the four request-lifecycle kinds were appended
// and the count correctly re-derived from the last enumerator, but the
// static_assert tripwire still pins the pre-serving size.
#pragma once
#include <cstddef>

namespace its::obs {

enum class EventKind : unsigned char {
  kFaultBegin,
  kFaultEnd,
  kRequestArrive,
  kRequestAdmit,
  kRequestDone,
  kSloViolation,
};

inline constexpr std::size_t kNumEventKinds =
    static_cast<std::size_t>(EventKind::kSloViolation) + 1;
static_assert(kNumEventKinds == 2, "bump me when the enum grows");

}  // namespace its::obs
