#include "obs/event_trace.h"

namespace its::obs {

// The checker replays arrive/admit/done but nobody taught it the
// violation kind: exactly one reg-invariant finding (kSloViolation).
bool replayable(EventKind k) {
  switch (k) {
    case EventKind::kFaultBegin:
    case EventKind::kFaultEnd:
    case EventKind::kRequestArrive:
    case EventKind::kRequestAdmit:
    case EventKind::kRequestDone:
      return true;
    default:
      return false;
  }
}

}  // namespace its::obs
