#include "obs/event_trace.h"

namespace its::obs {

// The Chrome-trace mapping covers every kind — reg-chrome-map must stay
// quiet so the fixture isolates reg-kind-name + reg-invariant +
// reg-kind-count.
char phase_of(EventKind k) {
  switch (k) {
    case EventKind::kFaultBegin:
      return 'B';
    case EventKind::kFaultEnd:
      return 'E';
    case EventKind::kRequestArrive:
    case EventKind::kRequestAdmit:
      return 'i';
    case EventKind::kRequestDone:
    case EventKind::kSloViolation:
      return 'e';
  }
  return 'i';
}

}  // namespace its::obs
