#include "obs/event_trace.h"

namespace its::obs {

// The serve kinds never got names: four reg-kind-name findings, one per
// request-lifecycle kind.
const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kFaultBegin:
      return "fault_begin";
    case EventKind::kFaultEnd:
      return "fault_end";
    default:
      return "unknown";
  }
}

}  // namespace its::obs
