// Fixture: vocabulary-typed raw declarations that need the its:: aliases.
#include "util/types.h"

namespace its::sim {

std::uint64_t retire_deadline = 0;
std::uint64_t queue_vaddr = 0;
double warm_latency = 0.0;
std::uint64_t spill_bytes = 0;
std::uint64_t victim_vpn = 0;

void absorb(std::uint64_t stall_ns, unsigned fill_count);

}  // namespace its::sim
