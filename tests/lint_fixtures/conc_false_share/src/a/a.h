// conc-false-share fixture: adjacent atomics with no padding.
#pragma once
#include <atomic>
#include <cstdint>

namespace fix {

struct HotCounters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

struct PaddedCounters {
  std::atomic<std::uint64_t> hits{0};
  alignas(64) std::atomic<std::uint64_t> misses{0};
};

}  // namespace fix
