// Fixture: narrowing and floating promotions of 64-bit quantities.
#include "util/types.h"

namespace its::sim {

double leak(its::Duration service_cost, its::Bytes moved_bytes) {
  unsigned clipped = static_cast<unsigned>(service_cost);
  double scaled = static_cast<double>(moved_bytes);
  uint32_t trimmed = service_cost;
  return scaled + clipped + trimmed;
}

}  // namespace its::sim
