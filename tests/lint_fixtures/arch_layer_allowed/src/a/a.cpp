#include "a/a.h"

#include "b/b.h"  // its-lint: allow(arch-layer): fixture exercises the suppression path

int alpha_beta() { return Alpha{}.v + Beta{}.a.v; }
