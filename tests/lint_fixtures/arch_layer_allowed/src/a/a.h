#pragma once

struct Alpha {
  int v = 0;
};
