#include "obs/event_trace.h"

namespace its::obs {

// kind_name() kept up: every outage kind is named here, so only the count
// and the Chrome-trace mapping have drifted in this tree.
const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kFaultBegin:
      return "fault_begin";
    case EventKind::kFaultEnd:
      return "fault_end";
    case EventKind::kHealthTransition:
      return "health_transition";
    case EventKind::kPoolStore:
      return "pool_store";
    case EventKind::kPoolLoad:
      return "pool_load";
    case EventKind::kPoolDrain:
      return "pool_drain";
  }
  return "unknown";
}

}  // namespace its::obs
