#include "obs/event_trace.h"

namespace its::obs {

// The four outage kinds never got a Chrome-trace mapping: reg-chrome-map
// must flag each one.
char phase_of(EventKind k) {
  switch (k) {
    case EventKind::kFaultBegin:
      return 'B';
    case EventKind::kFaultEnd:
      return 'E';
    default:
      return 'i';
  }
}

}  // namespace its::obs
