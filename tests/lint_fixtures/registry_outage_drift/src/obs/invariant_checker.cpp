#include "obs/event_trace.h"

namespace its::obs {

// The checker references every kind (so reg-invariant stays quiet and the
// fixture isolates reg-kind-count + reg-chrome-map).
bool replayable(EventKind k) {
  switch (k) {
    case EventKind::kFaultBegin:
    case EventKind::kFaultEnd:
    case EventKind::kHealthTransition:
    case EventKind::kPoolStore:
    case EventKind::kPoolLoad:
    case EventKind::kPoolDrain:
      return true;
  }
  return false;
}

}  // namespace its::obs
