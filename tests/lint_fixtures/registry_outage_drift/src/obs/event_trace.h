// Drifted outage registry: the four device-outage kinds (kHealthTransition,
// kPoolStore, kPoolLoad, kPoolDrain) were appended to the enum, but the
// hand-written count and its static_assert still say 2.
#pragma once
#include <cstddef>

namespace its::obs {

enum class EventKind : unsigned char {
  kFaultBegin,
  kFaultEnd,
  kHealthTransition,
  kPoolStore,
  kPoolLoad,
  kPoolDrain,
};

inline constexpr std::size_t kNumEventKinds = 2;
static_assert(kNumEventKinds == 2, "bump me when the enum grows");

}  // namespace its::obs
