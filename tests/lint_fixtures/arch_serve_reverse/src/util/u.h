#pragma once

struct U {
  int v = 0;
};
