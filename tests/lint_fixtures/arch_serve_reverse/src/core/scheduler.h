#pragma once

#include "serve/admission.h"
#include "util/u.h"

struct Scheduler {
  Admission gate;
  U u;
};
