#include "core/scheduler.h"

int scheduler_value() { return Scheduler{}.gate.u.v + Scheduler{}.u.v; }
