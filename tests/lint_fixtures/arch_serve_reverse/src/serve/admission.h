#pragma once

#include "util/u.h"

struct Admission {
  U u;
};
