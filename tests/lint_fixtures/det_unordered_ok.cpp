// det-unordered-iter fixture: the identical loop is fine here — this
// file never names EventTrace or SimMetrics, so hash order cannot reach
// an event stream or a metrics accumulator.
#include <cstdint>
#include <unordered_map>

std::uint64_t sum_counts(
    const std::unordered_map<std::uint32_t, std::uint64_t>& counts) {
  std::uint64_t total = 0;
  for (const auto& kv : counts) total += kv.second;
  return total;
}
