#include "b/b.h"

int beta_default() { return Beta{}.a.v; }
