#include "b/b.h"

#include "a/a.h"

int beta_value(const Beta& b) { return Alpha{b.a}.v; }
