// det-clock fixture: host-clock reads, one banned identifier per line.
#include <chrono>
#include <ctime>

long long hybrid_now() {
  auto mono = std::chrono::steady_clock::now().time_since_epoch().count();
  auto wall = std::chrono::system_clock::now().time_since_epoch().count();
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  return mono + wall + ts.tv_nsec;
}
