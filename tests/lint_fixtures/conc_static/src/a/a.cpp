// conc-shared-static fixture: mutable static and global state.
#include <cstddef>
#include <vector>

namespace fix {

std::size_t g_hits = 0;
static std::vector<int> g_scratch;
const std::size_t kLimit = 64;
thread_local std::size_t tl_depth = 0;

std::size_t next_id() {
  static std::size_t counter = 0;
  return ++counter;
}

}  // namespace fix
