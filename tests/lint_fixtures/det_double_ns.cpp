// det-double-ns fixture: nanosecond quantities held or accumulated in
// floating point.
struct Window {
  unsigned long long finish_time;
};

double total_ns = 0.0;

double mean_finish(const Window* w, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += w[i].finish_time;
  return sum / n;
}
