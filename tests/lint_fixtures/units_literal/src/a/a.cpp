// Fixture: unsuffixed time-scale magnitudes in time contexts.
#include "util/types.h"

namespace its::sim {

struct Knobs {
  its::Duration settle_delay = 4000;
  its::SimTime first_wake = 0;
};

its::Duration pad(its::Duration cost) {
  its::Duration padded = cost + 2000;
  if (cost > 16000) return padded;
  return cost / 1000;  // unit conversion: exempt
}

}  // namespace its::sim
