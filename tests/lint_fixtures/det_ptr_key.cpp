// det-ptr-key fixture: ordered containers keyed by pointer iterate in
// allocation-address order, which varies run to run.
#include <map>
#include <set>

struct Proc {
  int pid;
};

std::map<const Proc*, int> credit;
std::set<Proc*> blocked;
