// det-rand fixture, farm flavour: entropy in steal-victim selection or
// sweep-start shuffling breaks the run farm's bit-identical contract
// (src/farm/ sweeps victims in a fixed ring order instead).
#include <cstddef>
#include <random>

std::size_t entropy_victim(std::size_t workers) {
  std::random_device rd;
  return rd() % workers;
}

std::size_t shuffled_sweep_start(std::size_t workers) {
  std::mt19937 gen;
  return gen() % workers;
}
