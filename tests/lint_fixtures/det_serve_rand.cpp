// det-rand fixture, serving flavour: entropy in the open-loop arrival
// sampler would make every latency percentile non-replayable across runs.
// The real sampler (src/serve/arrival.cpp) draws exponential gaps and
// burst dwells from the seeded util::Rng stream instead.
#include <cstdint>
#include <random>

std::uint64_t entropy_arrival_gap() {
  std::random_device rd;
  return rd() % 1000000;
}

std::uint64_t unseeded_burst_dwell() {
  std::mt19937 gen;
  return gen() % 1000000;
}
