// Fixture: the sanctioned quantity algebra — must produce zero findings.
#include "util/types.h"

namespace its::sim {

its::Duration charge(its::SimTime start, its::SimTime end) {
  its::Duration gap = end - start;
  its::SimTime wake = end + gap;
  its::Duration padded = its::round_up(gap, 16);
  its::Bytes window = 4_KiB;
  its::Vpn vpn = its::vpn_of(window);
  if (wake > end) return padded;
  return gap + padded;
}

}  // namespace its::sim
