// Fixture: hand-rolled page arithmetic instead of the types.h helpers.
#include "util/types.h"

namespace its::sim {

std::uint64_t split(its::VirtAddr fault_addr) {
  std::uint64_t vpn_raw = fault_addr >> 12;
  std::uint64_t off = fault_addr & 0xfff;
  its::VirtAddr base = fault_addr & ~0xfff;
  its::Bytes page = 1 << 12;
  return vpn_raw + off + base + page;
}

}  // namespace its::sim
