#pragma once

#include "obs/event_trace.h"
#include "storage/device_health.h"
#include "util/types.h"

struct PoolLedger {
  Probe probe;
  HealthFsm fsm;
  Ticks cost;
};
