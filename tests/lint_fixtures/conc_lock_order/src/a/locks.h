// conc-lock-order fixture: two globals taken in opposite orders.
#pragma once
#include <mutex>

namespace fix {
extern std::mutex g_alpha;
extern std::mutex g_beta;
void alpha_then_beta();
void beta_then_alpha();
}  // namespace fix
