#include "a/locks.h"

#include <mutex>

namespace fix {

std::mutex g_alpha;
std::mutex g_beta;

void alpha_then_beta() {
  std::lock_guard<std::mutex> a(g_alpha);
  std::lock_guard<std::mutex> b(g_beta);
}

}  // namespace fix
