#include "a/locks.h"

#include <mutex>

namespace fix {

void beta_then_alpha() {
  std::lock_guard<std::mutex> b(g_beta);
  std::lock_guard<std::mutex> a(g_alpha);
}

}  // namespace fix
