// Fixture: raw products that wrap at full-scale trace lengths.
#include "util/types.h"

namespace its::sim {

its::Duration bill(its::Duration unit_cost, std::uint64_t repeat_count) {
  its::Duration square = unit_cost * unit_cost;
  its::Duration total = unit_cost * repeat_count;
  return square + total;
}

}  // namespace its::sim
