// det-rand fixture: a suppression without a reason is itself a finding
// (lint-bad-suppress) and does NOT silence the original det-rand one.
#include <random>

int reasonless() {
  std::mt19937 gen;  // its-lint: allow(det-rand)
  return static_cast<int>(gen());
}

int unknown_rule() {
  std::mt19937 gen2;  // its-lint: allow(not-a-rule): misspelled id
  return static_cast<int>(gen2());
}
