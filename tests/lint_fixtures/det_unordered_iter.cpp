// det-unordered-iter fixture: hash-order iteration in a file that is on
// the event path (it names EventTrace), feeding an accumulated output.
#include <cstdint>
#include <unordered_map>

namespace its::obs {
class EventTrace;
}

std::uint64_t sum_counts(
    const std::unordered_map<std::uint32_t, std::uint64_t>& counts,
    its::obs::EventTrace* trace) {
  std::uint64_t total = 0;
  for (const auto& kv : counts) total += kv.second;
  (void)trace;
  return total;
}
