// conc-atomic-order fixture: bare atomic ops vs explicit memory_order.
#include <atomic>

namespace fix {

std::atomic<int> g_count{0};

void bad_store() { g_count.store(1); }
void bad_load() { (void)g_count.load(); }
void bad_rmw() { g_count.fetch_add(2); }
void good_store() { g_count.store(1, std::memory_order_release); }
int good_load() { return g_count.load(std::memory_order_acquire); }
void bad_incr() { ++g_count; }

}  // namespace fix
