// Fixture: every dimension mix the units pass rejects.
#include "util/types.h"

namespace its::sim {

its::SimTime deadline_for(its::SimTime now, its::Duration grace) {
  its::SimTime wake = now + grace;  // legal: SimTime + Duration
  its::SimTime sum = now + wake;
  its::Bytes span_bytes = 4096;
  its::Duration d = grace - now;
  if (grace < now) return wake;
  if (wake < span_bytes) return wake;
  its::Vpn vpn = 7;
  its::Bytes mixed_bytes = vpn + span_bytes;
  return sum;
}

}  // namespace its::sim
