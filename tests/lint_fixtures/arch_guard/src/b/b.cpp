#include "a/a.h"

int alpha_value() { return Alpha{}.v; }
