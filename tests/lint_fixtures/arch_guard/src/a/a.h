struct Alpha {
  int v = 0;
};
