#include "a/a.h"

#include "b/b.h"

int alpha_beta() { return Alpha{}.v + Beta{}.a.v; }
