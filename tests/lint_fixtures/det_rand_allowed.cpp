// det-rand fixture: a reasoned suppression silences the finding, both as
// a trailing comment (guards its own line) and as a whole-line comment
// (guards the next line).
#include <random>

unsigned trailing_and_whole_line(unsigned seed) {
  std::mt19937 gen;  // its-lint: allow(det-rand): reseeded right below
  gen.seed(seed);
  // its-lint: allow(det-rand): fixture exercises the whole-line form
  std::random_device rd;
  return static_cast<unsigned>(gen()) + rd();
}
