#include "obs/event_trace.h"

namespace its::obs {

// kAlpha is never referenced by any invariant.
bool device_timeline(EventKind k) {
  return k == EventKind::kBeta || k == EventKind::kGamma;
}

}  // namespace its::obs
