#include "obs/event_trace.h"

namespace its::obs {

// kGamma was added to the enum but never named here.
const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kAlpha:
      return "alpha";
    case EventKind::kBeta:
      return "beta";
    default:
      return "unknown";
  }
}

}  // namespace its::obs
