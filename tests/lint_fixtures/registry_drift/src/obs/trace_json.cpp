#include "obs/event_trace.h"

namespace its::obs {

// kBeta has no Chrome-trace mapping.
char phase_of(EventKind k) {
  switch (k) {
    case EventKind::kAlpha:
      return 'B';
    case EventKind::kGamma:
      return 'E';
    default:
      return 'i';
  }
}

}  // namespace its::obs
