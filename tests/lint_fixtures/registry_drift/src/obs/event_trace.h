// Drifted registry: three kinds, a stale hand-written count, no assert.
#pragma once
#include <cstddef>

namespace its::obs {

enum class EventKind : unsigned char {
  kAlpha,
  kBeta,
  kGamma,
};

inline constexpr std::size_t kNumEventKinds = 2;

}  // namespace its::obs
