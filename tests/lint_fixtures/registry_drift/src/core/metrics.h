#pragma once
#include <cstdint>

namespace its::core {

struct SimMetrics {
  std::uint64_t major_faults = 0;
  std::uint64_t dropped_events = 0;  // accumulated, never reported
};

}  // namespace its::core
