#pragma once

namespace its::core {

struct SimConfig {
  unsigned knob = 1;
  unsigned hidden_knob = 2;  // never documented
};

}  // namespace its::core
