// det-rand fixture: every trigger class fires exactly once per site.
#include <cstdlib>
#include <random>

int unseeded_defaults() {
  std::mt19937 gen;
  std::mt19937_64 wide{};
  std::random_device rd;
  return static_cast<int>(gen() + wide() + rd());
}

int libc_rand() { return std::rand(); }
