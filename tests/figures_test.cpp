// End-to-end figure-shape regression tests.
//
// Runs a scaled-down version of the paper's evaluation and asserts the
// *orderings* each figure reports (who wins, not absolute numbers) so that
// refactors cannot silently break the reproduction.  The full-scale
// numbers live in EXPERIMENTS.md and the bench binaries.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/experiment.h"

namespace its::core {
namespace {

class FigureShapes : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    // The figure orderings are defined for the fault-free reproduction; the
    // CI job that forces a fault profile over the whole suite perturbs the
    // latency distribution and legitimately reshuffles the close races
    // (docs/robustness.md).
    if (const char* fp = std::getenv("ITS_FAULT_PROFILE");
        fp != nullptr && std::string(fp) != "none")
      GTEST_SKIP() << "figure shapes are fault-free; ITS_FAULT_PROFILE=" << fp;
  }

  static const BatchResult& result(std::size_t batch_idx) {
    static std::map<std::size_t, BatchResult> cache;
    auto it = cache.find(batch_idx);
    if (it == cache.end()) {
      ExperimentConfig cfg;
      cfg.gen.length_scale = 0.15;  // quick but structurally faithful
      it = cache.emplace(batch_idx,
                         run_batch_all(paper_batches()[batch_idx], cfg)).first;
    }
    return it->second;
  }

  static double idle(const BatchResult& r, PolicyKind k) {
    return total_idle_ns(r.by_policy.at(k));
  }
};

TEST_P(FigureShapes, Fig4aPolicyOrdering) {
  const BatchResult& r = result(GetParam());
  // Fig. 4a: Async > Sync > {Sync_Runahead, Sync_Prefetch} > ITS.
  EXPECT_GT(idle(r, PolicyKind::kAsync), idle(r, PolicyKind::kSync));
  EXPECT_GT(idle(r, PolicyKind::kSync), idle(r, PolicyKind::kSyncRunahead));
  EXPECT_GT(idle(r, PolicyKind::kSyncRunahead), idle(r, PolicyKind::kIts));
  EXPECT_GT(idle(r, PolicyKind::kSyncPrefetch), idle(r, PolicyKind::kIts));
}

TEST_P(FigureShapes, Fig4aItsSavingsInPaperBallpark) {
  const BatchResult& r = result(GetParam());
  double vs_async = 1.0 - idle(r, PolicyKind::kIts) / idle(r, PolicyKind::kAsync);
  double vs_sync = 1.0 - idle(r, PolicyKind::kIts) / idle(r, PolicyKind::kSync);
  // Paper: 61-66% vs Async, 17-43% vs Sync.  Allow generous slack — this
  // is a scaled run — but the savings must stay material.
  EXPECT_GT(vs_async, 0.40);
  EXPECT_LT(vs_async, 0.80);
  EXPECT_GT(vs_sync, 0.15);
  EXPECT_LT(vs_sync, 0.65);
}

TEST_P(FigureShapes, Fig4bPrefetchingPoliciesCutMajorFaults) {
  const BatchResult& r = result(GetParam());
  auto majors = [&](PolicyKind k) { return r.by_policy.at(k).major_faults; };
  EXPECT_LT(majors(PolicyKind::kIts), majors(PolicyKind::kSync) / 2);
  EXPECT_LT(majors(PolicyKind::kSyncPrefetch), majors(PolicyKind::kSync));
  // Non-prefetching policies have identical fault behaviour.
  EXPECT_EQ(majors(PolicyKind::kSync), majors(PolicyKind::kSyncRunahead));
}

TEST_P(FigureShapes, Fig4cRunaheadLowestMissesItsSecond) {
  const BatchResult& r = result(GetParam());
  auto misses = [&](PolicyKind k) { return r.by_policy.at(k).llc_misses; };
  EXPECT_LT(misses(PolicyKind::kSyncRunahead), misses(PolicyKind::kIts));
  EXPECT_LT(misses(PolicyKind::kIts), misses(PolicyKind::kSync));
  EXPECT_LT(misses(PolicyKind::kIts), misses(PolicyKind::kSyncPrefetch));
}

TEST_P(FigureShapes, Fig5aItsFastestForTopPriorities) {
  const BatchResult& r = result(GetParam());
  double its_top = r.by_policy.at(PolicyKind::kIts).avg_finish_top_half();
  for (PolicyKind k : {PolicyKind::kAsync, PolicyKind::kSync,
                       PolicyKind::kSyncRunahead, PolicyKind::kSyncPrefetch})
    EXPECT_GT(r.by_policy.at(k).avg_finish_top_half(), its_top) << policy_name(k);
}

TEST_P(FigureShapes, Fig5bItsNotWorseForBottomPriorities) {
  const BatchResult& r = result(GetParam());
  double its_bot = r.by_policy.at(PolicyKind::kIts).avg_finish_bottom_half();
  // §3.3: the sacrificed processes' "finish time will not be increased".
  for (PolicyKind k : {PolicyKind::kAsync, PolicyKind::kSync,
                       PolicyKind::kSyncRunahead})
    EXPECT_GT(r.by_policy.at(k).avg_finish_bottom_half(), its_bot) << policy_name(k);
  // Sync_Prefetch is the closest competitor; allow a small tolerance at
  // this reduced scale.
  EXPECT_GT(r.by_policy.at(PolicyKind::kSyncPrefetch).avg_finish_bottom_half(),
            0.95 * its_bot);
}

INSTANTIATE_TEST_SUITE_P(AllBatches, FigureShapes, ::testing::Range<std::size_t>(0, 4),
                         [](const auto& param_info) {
                           return std::string(
                               paper_batches()[param_info.param].name);
                         });

}  // namespace
}  // namespace its::core
