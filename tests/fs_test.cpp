// Tests for the file-I/O path: filesystem metadata, page cache semantics,
// file workload generators, and end-to-end simulation of read/write
// syscalls through the page cache.
#include <gtest/gtest.h>

#include <memory>

#include "core/simulator.h"
#include "fs/file_system.h"
#include "fs/page_cache.h"
#include "fs/workloads.h"
#include "trace/instr.h"

namespace its::fs {
namespace {

TEST(FileSystem, RegisterAndGrow) {
  FileSystem fs;
  fs.ensure_file(3, 1000);
  EXPECT_TRUE(fs.exists(3));
  EXPECT_EQ(fs.size_of(3), 1000u);
  fs.ensure_file(3, 500);  // never shrinks
  EXPECT_EQ(fs.size_of(3), 1000u);
  fs.ensure_file(3, 2000);
  EXPECT_EQ(fs.size_of(3), 2000u);
  EXPECT_EQ(fs.file_count(), 1u);
  EXPECT_EQ(fs.total_bytes(), 2000u);
}

TEST(FileSystem, ZeroSizeRejected) {
  FileSystem fs;
  EXPECT_THROW(fs.ensure_file(1, 0), std::invalid_argument);
}

TEST(FileSystem, AccessValidation) {
  FileSystem fs;
  fs.ensure_file(1, 8192);
  fs.check_access(1, 0, 4096);
  fs.check_access(1, 4096, 4096);
  EXPECT_THROW(fs.check_access(1, 8000, 4096), std::out_of_range);
  EXPECT_THROW(fs.check_access(2, 0, 1), std::out_of_range);
}

TEST(FileSystem, PageKeysNeverCollide) {
  EXPECT_NE(FileSystem::page_key(1, 7), FileSystem::page_key(2, 7));
  EXPECT_NE(FileSystem::page_key(1, 7), FileSystem::page_key(1, 8));
}

TEST(PageCache, HitAfterInsert) {
  PageCache pc(16 * its::kPageSize);
  EXPECT_FALSE(pc.lookup(42).hit);
  pc.insert(42, 100);
  PcLookup l = pc.lookup(42);
  EXPECT_TRUE(l.hit);
  EXPECT_EQ(l.ready_at, 100u);
  EXPECT_EQ(pc.stats().hits, 1u);
  EXPECT_EQ(pc.stats().misses, 1u);
}

TEST(PageCache, LruEviction) {
  PageCache pc(2 * its::kPageSize);
  pc.insert(1, 0);
  pc.insert(2, 0);
  pc.lookup(1);      // refresh 1
  pc.insert(3, 0);   // evicts 2
  EXPECT_TRUE(pc.contains(1));
  EXPECT_FALSE(pc.contains(2));
  EXPECT_TRUE(pc.contains(3));
}

TEST(PageCache, DirtyEvictionProducesWriteback) {
  PageCache pc(1 * its::kPageSize);
  pc.insert(1, 0, /*dirty=*/true);
  auto wb = pc.insert(2, 0);
  ASSERT_TRUE(wb.has_value());
  EXPECT_EQ(wb->key, 1u);
  EXPECT_EQ(pc.stats().dirty_writebacks, 1u);
}

TEST(PageCache, CleanEvictionIsSilent) {
  PageCache pc(1 * its::kPageSize);
  pc.insert(1, 0, /*dirty=*/false);
  EXPECT_FALSE(pc.insert(2, 0).has_value());
}

TEST(PageCache, ReinsertKeepsEarlierReadyTime) {
  PageCache pc(4 * its::kPageSize);
  pc.insert(5, 1000);
  pc.insert(5, 500);  // readahead raced demand: keep the sooner time
  EXPECT_EQ(pc.lookup(5).ready_at, 500u);
}

TEST(PageCache, MarkDirtyOnlyWhenResident) {
  PageCache pc(4 * its::kPageSize);
  EXPECT_FALSE(pc.mark_dirty(9));
  pc.insert(9, 0);
  EXPECT_TRUE(pc.mark_dirty(9));
  // Dirty page must write back when flushed.
  auto wbs = pc.flush();
  ASSERT_EQ(wbs.size(), 1u);
  EXPECT_EQ(wbs[0].key, 9u);
  EXPECT_EQ(pc.resident_pages(), 0u);
}

TEST(PageCache, MinimumOnePage) {
  PageCache pc(1);  // sub-page budget still yields capacity 1
  EXPECT_EQ(pc.capacity_pages(), 1u);
}

TEST(FileWorkloads, GeneratorsProduceFileOps) {
  FileWorkloadConfig cfg;
  cfg.records = 5000;
  auto scan = make_log_scan(8ull << 20, cfg);
  auto kv = make_kv_store(8ull << 20, 0.3, cfg);
  auto mix = make_analytics_mix(8ull << 20, 4ull << 20, cfg);
  EXPECT_GT(scan.stats().file_reads, 0u);
  EXPECT_EQ(scan.stats().file_writes, 0u);
  EXPECT_GT(kv.stats().file_writes, 0u);
  EXPECT_GT(mix.stats().file_reads, 0u);
  EXPECT_GT(mix.stats().mem_refs, 0u);  // the mix also touches the heap
  // file_sizes() must report every referenced file.
  EXPECT_EQ(scan.file_sizes().size(), 1u);
  EXPECT_EQ(kv.file_sizes().size(), 2u);  // data + write-ahead log
}

TEST(FileWorkloads, DeterministicInSeed) {
  FileWorkloadConfig cfg;
  cfg.records = 2000;
  cfg.seed = 9;
  EXPECT_EQ(make_kv_store(4ull << 20, 0.2, cfg), make_kv_store(4ull << 20, 0.2, cfg));
}

// --- End-to-end through the simulator -------------------------------------

std::shared_ptr<const trace::Trace> file_trace(std::initializer_list<trace::Instr> v) {
  auto t = std::make_shared<trace::Trace>("f");
  for (const auto& i : v) t->push_back(i);
  return t;
}

core::SimConfig sim_config() {
  core::SimConfig cfg;
  cfg.slice_min = 50'000;
  cfg.slice_max = 8'000'000;
  cfg.page_cache_bytes = 64 * its::kPageSize;
  return cfg;
}

TEST(FileIoSim, ColdReadMissesThenHits) {
  core::Simulator sim(sim_config(), core::PolicyKind::kSync);
  sim.add_process(std::make_unique<sched::Process>(
      0, "p", 30,
      file_trace({trace::Instr::file_read(0, 0, 4096, 1),
                  trace::Instr::compute(100, 2, 0, 0),
                  trace::Instr::file_read(0, 0, 4096, 3)})));
  core::SimMetrics m = sim.run();
  EXPECT_EQ(m.file_reads, 2u);
  EXPECT_EQ(m.page_cache_misses, 1u);
  EXPECT_EQ(m.page_cache_hits, 1u);
  EXPECT_GT(m.idle.busy_wait, 0u);  // the miss waited on the device
  EXPECT_EQ(m.major_faults, 0u);    // no VM activity at all
}

TEST(FileIoSim, WritesAreWritebackNotWriteThrough) {
  core::SimConfig cfg = sim_config();
  core::Simulator sim(cfg, core::PolicyKind::kSync);
  sim.add_process(std::make_unique<sched::Process>(
      0, "p", 30, file_trace({trace::Instr::file_write(1, 0, 4096, 1)})));
  core::SimMetrics m = sim.run();
  EXPECT_EQ(m.file_writes, 1u);
  EXPECT_EQ(m.idle.busy_wait, 0u);  // write hits the cache, no foreground I/O
  EXPECT_EQ(sim.dma().page_writes(), 0u);  // not yet evicted
}

TEST(FileIoSim, DirtyEvictionReachesDevice) {
  core::SimConfig cfg = sim_config();
  cfg.page_cache_bytes = 2 * its::kPageSize;  // tiny cache forces eviction
  core::Simulator sim(cfg, core::PolicyKind::kSync);
  auto t = std::make_shared<trace::Trace>("wr");
  for (unsigned i = 0; i < 8; ++i)
    t->push_back(trace::Instr::file_write(1, i * 4096, 4096, 1));
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, t));
  core::SimMetrics m = sim.run();
  EXPECT_GT(m.file_writebacks, 0u);
  EXPECT_GT(sim.dma().page_writes(), 0u);
}

TEST(FileIoSim, ItsReadaheadCutsMisses) {
  auto run_policy = [](core::PolicyKind k) {
    core::Simulator sim(sim_config(), k);
    auto t = std::make_shared<trace::Trace>("seq");
    for (unsigned i = 0; i < 32; ++i) {
      t->push_back(trace::Instr::file_read(0, i * 4096, 4096, 1));
      t->push_back(trace::Instr::compute(20000, 2, 0, 0));
    }
    sim.add_process(std::make_unique<sched::Process>(0, "p", 30, t));
    return sim.run();
  };
  core::SimMetrics sync = run_policy(core::PolicyKind::kSync);
  core::SimMetrics its_m = run_policy(core::PolicyKind::kIts);
  // ITS readahead turns the sequential scan's misses into timely hits.
  EXPECT_LT(its_m.page_cache_misses, sync.page_cache_misses);
  EXPECT_LT(its_m.idle.busy_wait, sync.idle.busy_wait);
}

TEST(FileIoSim, AsyncFileMissBlocksAndRestarts) {
  core::Simulator sim(sim_config(), core::PolicyKind::kAsync);
  sim.add_process(std::make_unique<sched::Process>(
      0, "p", 30,
      file_trace({trace::Instr::file_read(0, 0, 4096, 1),
                  trace::Instr::file_read(0, 4096, 4096, 2)})));
  core::SimMetrics m = sim.run();
  EXPECT_EQ(m.file_reads, 2u);
  EXPECT_EQ(m.async_switches, 2u);
  EXPECT_EQ(m.idle.busy_wait, 0u);
}

TEST(FileIoSim, MultiPageReadSpansCachePages) {
  core::Simulator sim(sim_config(), core::PolicyKind::kSync);
  // 16 KiB read at page-aligned offset touches 4 cache pages... size is
  // uint16 so use 4 × 4 KiB reads back-to-back instead of one huge one.
  auto t = std::make_shared<trace::Trace>("big");
  t->push_back(trace::Instr::file_read(0, 2048, 8192, 1));  // spans 3 pages
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, t));
  core::SimMetrics m = sim.run();
  EXPECT_EQ(m.page_cache_misses, 3u);
}

TEST(FileIoSim, MixedWorkloadSharesDevice) {
  core::SimConfig cfg = sim_config();
  cfg.dram_bytes = 16ull << 20;
  core::Simulator sim(cfg, core::PolicyKind::kIts);
  FileWorkloadConfig fcfg;
  fcfg.records = 20000;
  sim.add_process(std::make_unique<sched::Process>(
      0, "mix", 30,
      std::make_shared<const trace::Trace>(
          make_analytics_mix(16ull << 20, 8ull << 20, fcfg))));
  core::SimMetrics m = sim.run();
  EXPECT_GT(m.file_reads, 0u);
  EXPECT_GT(m.major_faults, 0u);  // both I/O paths active
}

}  // namespace
}  // namespace its::fs
