// Tests for the CSV report writer and the CLI argument parser.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/report.h"
#include "util/args.h"

namespace its {
namespace {

core::BatchResult fake_result() {
  core::BatchResult r;
  r.spec = &core::paper_batches()[0];
  core::SimMetrics m;
  m.idle.mem_stall = 100;
  m.idle.busy_wait = 200;
  m.major_faults = 7;
  m.llc_misses = 42;
  m.makespan = 12345;
  core::ProcessOutcome p;
  p.pid = 0;
  p.name = "wrf";
  p.priority = 30;
  p.metrics.finish_time = 999;
  p.metrics.major_faults = 7;
  m.processes.push_back(p);
  r.by_policy.emplace(core::PolicyKind::kSync, m);
  return r;
}

TEST(ReportCsv, MetricsHeaderAndRow) {
  auto r = fake_result();
  std::string csv = core::metrics_csv({&r, 1});
  std::istringstream is(csv);
  std::string header, row, extra;
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, row));
  EXPECT_FALSE(std::getline(is, extra));  // one policy → one row
  EXPECT_NE(header.find("idle_total_ns"), std::string::npos);
  EXPECT_NE(row.find("No_Data_Intensive,Sync,0,300,100,200"), std::string::npos);
  // Same column count in header and row.
  auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(commas(header), commas(row));
}

TEST(ReportCsv, ProcessesRows) {
  auto r = fake_result();
  std::ostringstream os;
  core::write_processes_csv(os, {&r, 1});
  std::string out = os.str();
  EXPECT_NE(out.find("No_Data_Intensive,Sync,0,wrf,30,999,7"), std::string::npos);
}

TEST(ReportCsv, SaveCreatesDirectoryAndFiles) {
  auto dir = std::filesystem::temp_directory_path() / "its_report_test" / "nested";
  std::filesystem::remove_all(dir.parent_path());
  auto r = fake_result();
  core::save_csv_files(dir.string(), {&r, 1});
  EXPECT_TRUE(std::filesystem::exists(dir / "its_metrics.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir / "its_processes.csv"));
  std::filesystem::remove_all(dir.parent_path());
}

util::Args make_args(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return util::Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, EqualsSyntax) {
  auto a = make_args({"--batch=3", "--policy=ITS"});
  EXPECT_EQ(a.get_u64("batch", 0), 3u);
  EXPECT_EQ(a.get_string("policy", ""), "ITS");
}

TEST(Args, SpaceSyntax) {
  auto a = make_args({"--seed", "99"});
  EXPECT_EQ(a.get_u64("seed", 0), 99u);
}

TEST(Args, BareBooleanFlag) {
  auto a = make_args({"--list", "--batch=1"});
  EXPECT_TRUE(a.has("list"));
  EXPECT_FALSE(a.has("missing"));
  EXPECT_EQ(a.get_u64("batch", 0), 1u);
}

TEST(Args, DefaultsWhenAbsent) {
  auto a = make_args({});
  EXPECT_EQ(a.get_u64("x", 42), 42u);
  EXPECT_DOUBLE_EQ(a.get_double("y", 1.5), 1.5);
  EXPECT_EQ(a.get_string("z", "dflt"), "dflt");
}

TEST(Args, PositionalCollected) {
  auto a = make_args({"pos1", "--k=v", "pos2"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "pos1");
  EXPECT_EQ(a.positional()[1], "pos2");
}

TEST(Args, MalformedNumberThrows) {
  auto a = make_args({"--n=12x"});
  EXPECT_THROW(a.get_u64("n", 0), std::invalid_argument);
  auto b = make_args({"--f=1.2.3"});
  EXPECT_THROW(b.get_double("f", 0), std::invalid_argument);
}

TEST(Args, EntirelyNonNumericThrowsInvalidArgument) {
  // Regression: std::stoull's own exception must be translated, not leak
  // through as an unhandled std::invalid_argument("stoull") terminate.
  auto a = make_args({"--batch=xx"});
  try {
    a.get_u64("batch", 0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("batch"), std::string::npos)
        << "error must name the flag";
  }
  auto b = make_args({"--scale=abc"});
  EXPECT_THROW(b.get_double("scale", 0), std::invalid_argument);
  // Out-of-range numerics are also translated.
  auto c = make_args({"--n=99999999999999999999999999"});
  EXPECT_THROW(c.get_u64("n", 0), std::invalid_argument);
}

TEST(Args, UnknownFlagDetection) {
  auto a = make_args({"--good=1", "--typo=2"});
  auto unknown = a.unknown({"good"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Args, DoubleParsing) {
  auto a = make_args({"--scale=0.25"});
  EXPECT_DOUBLE_EQ(a.get_double("scale", 1.0), 0.25);
}

}  // namespace
}  // namespace its
