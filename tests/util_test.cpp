// Tests for src/util: RNG determinism and distributions, statistics
// accumulators, table formatting.
#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/types.h"

namespace its::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123, 7), b(123, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u32() == b.next_u32();
  EXPECT_LT(same, 5);
}

TEST(Rng, DifferentStreamsDiverge) {
  Rng a(1, 1), b(1, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u32() == b.next_u32();
  EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowOneIsZero) {
  Rng r(5);
  EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng r(7);
  bool lo = false, hi = false;
  for (int i = 0; i < 20000; ++i) {
    auto v = r.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    lo |= v == 3;
    hi |= v == 6;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(13);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(Rng, ZipfInRange) {
  Rng r(19);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.zipf(1000, 0.9), 1000u);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks) {
  Rng r(23);
  std::uint64_t low = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) low += r.zipf(10000, 1.0) < 100;
  // Under Zipf(1.0), ranks < 100 of 10000 carry roughly half the mass.
  EXPECT_GT(low, static_cast<std::uint64_t>(n) * 35 / 100);
}

TEST(Rng, ZipfDegenerateN) {
  Rng r(29);
  EXPECT_EQ(r.zipf(1, 1.0), 0u);
}

TEST(Rng, GeometricMeanMatches) {
  Rng r(31);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric(0.25));
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeEqualsCombined) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    double v = i * 0.7 - 3;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStat copy = a;
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), copy.count());
  EXPECT_DOUBLE_EQ(a.mean(), copy.mean());
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(LogHistogram, BucketsByPowerOfTwo) {
  LogHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);  // {0,1}
  EXPECT_EQ(h.bucket(1), 2u);  // {2,3}
  EXPECT_EQ(h.bucket(2), 1u);  // {4..7}
}

TEST(LogHistogram, QuantileMonotone) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
  EXPECT_EQ(h.quantile(0.0), h.quantile(-1.0));  // clamped
}

TEST(LogHistogram, EmptyQuantileIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a, b;
  a.add(10);
  b.add(1000);
  b.add(7);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
}

TEST(Table, AlignsAndPrints) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, RejectsBadRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(std::uint64_t{1234567}), "1,234,567");
  EXPECT_EQ(Table::fmt(std::uint64_t{999}), "999");
}

TEST(Types, LiteralsAndHelpers) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_us, 2000u);
  EXPECT_EQ(1_ms, 1000000u);
  EXPECT_EQ(its::vpn_of(0x12345), 0x12u);
  EXPECT_EQ(its::page_base(0x12345), 0x12000u);
  EXPECT_EQ(its::line_of(0x87), 0x2u);
}

TEST(Types, MulOverflowDetection) {
  EXPECT_FALSE(its::mul_overflows(0, ~0ull));
  EXPECT_FALSE(its::mul_overflows(~0ull, 1));
  EXPECT_FALSE(its::mul_overflows(1ull << 32, (1ull << 32) - 1));
  EXPECT_TRUE(its::mul_overflows(1ull << 32, 1ull << 32));
  EXPECT_TRUE(its::mul_overflows(~0ull, 2));
}

TEST(Types, SaturatingMulClampsInsteadOfWrapping) {
  EXPECT_EQ(its::saturating_mul(3, 7), 21u);
  EXPECT_EQ(its::saturating_mul(~0ull, 1), ~0ull);
  // The wrapping product would be a small bogus number; the clamp rails.
  EXPECT_EQ(its::saturating_mul(1ull << 33, 1ull << 33), ~0ull);
  EXPECT_EQ(its::saturating_mul(~0ull, ~0ull), ~0ull);
}

TEST(Types, CheckedMulSaturatesInRelease) {
  // NDEBUG builds compile the assert out; the contract is "never wraps".
  EXPECT_EQ(its::checked_mul(1000, 1000), 1000000u);
#ifdef NDEBUG
  EXPECT_EQ(its::checked_mul(1ull << 40, 1ull << 40), ~0ull);
#endif
}

TEST(Types, SaturatingAddClamps) {
  EXPECT_EQ(its::saturating_add(1, 2), 3u);
  EXPECT_EQ(its::saturating_add(~0ull, 0), ~0ull);
  EXPECT_EQ(its::saturating_add(~0ull - 1, 1), ~0ull);
  EXPECT_EQ(its::saturating_add(~0ull, 1), ~0ull);
  EXPECT_EQ(its::saturating_add(~0ull, ~0ull), ~0ull);
  EXPECT_EQ(its::saturating_add(~0ull, its::kDurationMax), its::kDurationMax);
}

TEST(Types, DurationBetweenClampsUnderflow) {
  EXPECT_EQ(its::duration_between(10, 3), 7u);
  EXPECT_EQ(its::duration_between(5, 5), 0u);
#ifdef NDEBUG
  // Inverted order must never manufacture a ~2^64 ns "duration".
  EXPECT_EQ(its::duration_between(3, 10), 0u);
#endif
}

TEST(Types, RoundUpAndDown) {
  EXPECT_EQ(its::round_up(0, 16), 0u);
  EXPECT_EQ(its::round_up(1, 16), 16u);
  EXPECT_EQ(its::round_up(16, 16), 16u);
  EXPECT_EQ(its::round_up(17, 16), 32u);
  // Within one quantum of the rail: saturate, don't wrap past zero.
  EXPECT_EQ(its::round_up(~0ull - 3, 16), ~0ull);
  EXPECT_EQ(its::round_down(0, 16), 0u);
  EXPECT_EQ(its::round_down(15, 16), 0u);
  EXPECT_EQ(its::round_down(17, 16), 16u);
  EXPECT_EQ(its::round_down(~0ull, 16), ~0ull - 15);
}

TEST(Types, DurationLiteralsSaturate) {
  EXPECT_EQ(7_us, 7000u);
  EXPECT_EQ(800_ms, 800000000u);
  EXPECT_EQ(2_s, 2000000000u);
  // 2^64 ns is ~18446744073.7 s: the first wrapping _s literal clamps.
  EXPECT_EQ(18446744073_s, 18446744073000000000u);
  EXPECT_EQ(18446744074_s, ~0ull);
  EXPECT_EQ(99999999999999_s, ~0ull);
}

TEST(Types, SizeLiteralsSaturate) {
  EXPECT_EQ(16_GiB, 17179869184u);
  // 2^64 B is 16 Ei = 17179869184 Gi: one past that clamps.
  EXPECT_EQ(17179869183_GiB, 17179869183ull << 30);
  EXPECT_EQ(17179869184_GiB, ~0ull);
}

TEST(Types, Wide128AddCarriesAndClamps) {
  its::Wide128 w;
  w.add(~0ull);
  EXPECT_TRUE(w.fits_u64());
  EXPECT_EQ(w.clamped(), ~0ull);
  w.add(1);  // carries into hi
  EXPECT_FALSE(w.fits_u64());
  EXPECT_EQ(w.hi, 1u);
  EXPECT_EQ(w.lo, 0u);
  EXPECT_EQ(w.clamped(), ~0ull);
}

TEST(Types, WideMulIsFullWidth) {
  EXPECT_EQ(its::wide_mul(3, 7), (its::Wide128{0, 21}));
  EXPECT_EQ(its::wide_mul(1ull << 32, 1ull << 32), (its::Wide128{1, 0}));
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1.
  EXPECT_EQ(its::wide_mul(~0ull, ~0ull), (its::Wide128{~0ull - 1, 1}));
  EXPECT_TRUE(its::wide_mul(1ull << 40, 1ull << 23).fits_u64());
  EXPECT_FALSE(its::wide_mul(1ull << 40, 1ull << 24).fits_u64());
  EXPECT_EQ(its::wide_mul(1ull << 40, 1ull << 24).clamped(), ~0ull);
}

}  // namespace
}  // namespace its::util
