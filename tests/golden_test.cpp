// Golden-run regression suite.
//
// Runs every paper batch under every policy at a fixed seed and compares
// the integer SimMetrics fields against a checked-in snapshot
// (tests/golden/metrics.golden).  Any change to fault handling, idle
// accounting, prefetching, stealing or scheduling shows up as a concrete
// per-field diff instead of a silently shifted figure.
//
// To regenerate after an intentional behaviour change:
//
//   ITS_UPDATE_GOLDEN=1 ./build/tests/golden_test
//
// then review the golden-file diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/batch.h"
#include "core/experiment.h"
#include "core/policy.h"

namespace its::core {
namespace {

#ifndef ITS_GOLDEN_DIR
#error "ITS_GOLDEN_DIR must point at the checked-in golden directory"
#endif

const char* kGoldenPath = ITS_GOLDEN_DIR "/metrics.golden";

ExperimentConfig golden_config() {
  ExperimentConfig cfg;
  cfg.gen.length_scale = 0.02;
  cfg.gen.footprint_scale = 0.25;
  cfg.sim.seed = 42;
  return cfg;
}

void emit_metrics(std::ostream& os, const std::string& key,
                  const SimMetrics& m) {
  os << key << ".makespan=" << m.makespan << '\n';
  os << key << ".cpu_busy=" << m.cpu_busy << '\n';
  os << key << ".idle.mem_stall=" << m.idle.mem_stall << '\n';
  os << key << ".idle.busy_wait=" << m.idle.busy_wait << '\n';
  os << key << ".idle.ctx_switch=" << m.idle.ctx_switch << '\n';
  os << key << ".idle.no_runnable=" << m.idle.no_runnable << '\n';
  os << key << ".major_faults=" << m.major_faults << '\n';
  os << key << ".minor_faults=" << m.minor_faults << '\n';
  os << key << ".llc_misses=" << m.llc_misses << '\n';
  os << key << ".prefetch_issued=" << m.prefetch_issued << '\n';
  os << key << ".prefetch_useful=" << m.prefetch_useful << '\n';
  os << key << ".preexec_episodes=" << m.preexec_episodes << '\n';
  os << key << ".async_switches=" << m.async_switches << '\n';
  os << key << ".evictions=" << m.evictions << '\n';
  os << key << ".stolen_time=" << m.stolen_time << '\n';
}

/// The full snapshot: 4 batches × 5 policies at the fixed seed, traces
/// shared across policies exactly as the figure benches share them.
std::string snapshot() {
  ExperimentConfig cfg = golden_config();
  std::ostringstream os;
  os << "# its_sim golden metrics — regenerate with ITS_UPDATE_GOLDEN=1 "
        "./golden_test\n";
  os << "# config: length_scale=0.02 footprint_scale=0.25 seed=42\n";
  for (std::size_t bi = 0; bi < paper_batches().size(); ++bi) {
    const BatchSpec& batch = paper_batches()[bi];
    auto traces = batch_traces(batch, cfg.gen);
    for (PolicyKind k : kAllPolicies) {
      SimMetrics m = run_batch_policy(batch, k, cfg, traces);
      emit_metrics(os,
                   "batch" + std::to_string(bi) + "." +
                       std::string(policy_name(k)),
                   m);
    }
  }
  return os.str();
}

TEST(GoldenRun, MetricsMatchCheckedInSnapshot) {
  // The snapshot is defined for the fault-free simulator; the CI job that
  // forces a fault profile over the whole suite legitimately diverges.
  if (const char* fp = std::getenv("ITS_FAULT_PROFILE");
      fp != nullptr && std::string(fp) != "none")
    GTEST_SKIP() << "golden snapshot is fault-free; ITS_FAULT_PROFILE=" << fp;

  std::string actual = snapshot();

  if (const char* update = std::getenv("ITS_UPDATE_GOLDEN");
      update != nullptr && std::string(update) == "1") {
    std::ofstream out(kGoldenPath, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << actual;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in.good())
      << "missing golden file " << kGoldenPath
      << " — run ITS_UPDATE_GOLDEN=1 ./golden_test to create it";
  std::ostringstream expected;
  expected << in.rdbuf();

  if (actual == expected.str()) return;

  // Report the first few differing lines so the failure names the metric
  // that moved, not just "files differ".
  std::istringstream as(actual), es(expected.str());
  std::string aline, eline;
  int lineno = 0, reported = 0;
  std::ostringstream diff;
  while (reported < 8) {
    bool amore = static_cast<bool>(std::getline(as, aline));
    bool emore = static_cast<bool>(std::getline(es, eline));
    if (!amore && !emore) break;
    ++lineno;
    if (!amore) aline = "<eof>";
    if (!emore) eline = "<eof>";
    if (aline != eline) {
      diff << "  line " << lineno << ":\n    golden: " << eline
           << "\n    actual: " << aline << '\n';
      ++reported;
    }
  }
  FAIL() << "metrics diverged from " << kGoldenPath << ":\n"
         << diff.str()
         << "if the change is intentional, regenerate with "
            "ITS_UPDATE_GOLDEN=1 ./golden_test and commit the diff";
}

}  // namespace
}  // namespace its::core
