// Tests for tools/its_lint: every rule must fire exactly where the
// fixtures under tests/lint_fixtures/ violate it, reasoned suppressions
// must silence findings, and the cross-file registry rules must accept an
// in-sync mini-tree and flag a drifted one.
//
// ITS_LINT_FIXTURE_DIR is injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.h"

namespace its::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(ITS_LINT_FIXTURE_DIR) + "/" + name;
}

SourceFile load_fixture(const std::string& name) {
  SourceFile f;
  std::string err;
  EXPECT_TRUE(SourceFile::load(fixture(name), &f, &err)) << err;
  return f;
}

/// (rule, line) pairs of `findings`, sorted, for whole-set comparisons.
std::vector<std::pair<Rule, std::size_t>> locations(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<Rule, std::size_t>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  std::sort(out.begin(), out.end());
  return out;
}

bool has_finding(const std::vector<Finding>& findings, Rule r,
                 std::string_view needle) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == r && f.message.find(needle) != std::string::npos;
  });
}

// ---------------------------------------------------------------------------
// Tokenizer.

TEST(LintTokenizer, StripsCommentsAndLiteralsButKeepsLines) {
  std::string code =
      "int a; // rand()\n"
      "/* rand() spans\n   lines */ int b = 'x';\n"
      "const char* s = \"std::rand()\";\n";
  std::string stripped = strip_comments_and_strings(code);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(code.begin(), code.end(), '\n'));
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int b ="), std::string::npos);
}

TEST(LintTokenizer, RawStringsAndDigitSeparatorsSurvive) {
  // 5'000 must not open a char literal; the raw string must be blanked.
  std::string code =
      "int n = 5'000;\n"
      "auto r = R\"(srand(1))\";\n"
      "int m = 7;\n";
  std::string stripped = strip_comments_and_strings(code);
  EXPECT_EQ(stripped.find("srand"), std::string::npos);
  EXPECT_NE(stripped.find("int m = 7;"), std::string::npos);
}

TEST(LintTokenizer, ContainsWordRespectsBoundaries) {
  EXPECT_TRUE(contains_word("std::rand();", "rand"));
  EXPECT_FALSE(contains_word("unordered_map", "map"));
  EXPECT_FALSE(contains_word("random_device", "rand"));
}

// ---------------------------------------------------------------------------
// Determinism rules, one fixture per rule.

TEST(LintDeterminism, DetRandFiresOnEveryTrigger) {
  auto f = load_fixture("det_rand.cpp");
  auto got = locations(lint_file(f));
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kDetRand, 6},   // std::mt19937 gen;
      {Rule::kDetRand, 7},   // std::mt19937_64 wide{};
      {Rule::kDetRand, 8},   // std::random_device rd;
      {Rule::kDetRand, 12},  // std::rand()
  };
  EXPECT_EQ(got, want);
}

TEST(LintDeterminism, DetClockFiresPerBannedIdentifier) {
  auto f = load_fixture("det_clock.cpp");
  auto got = locations(lint_file(f));
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kDetClock, 6},  // steady_clock
      {Rule::kDetClock, 7},  // system_clock
      {Rule::kDetClock, 9},  // timespec_get
  };
  EXPECT_EQ(got, want);
}

TEST(LintDeterminism, DetUnorderedIterFiresOnlyOnEventPathFiles) {
  auto bad = load_fixture("det_unordered_iter.cpp");
  auto got = locations(lint_file(bad));
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kDetUnorderedIter, 14},  // for (const auto& kv : counts)
  };
  EXPECT_EQ(got, want);

  // Same loop, no EventTrace/SimMetrics in the file: out of scope.
  auto ok = load_fixture("det_unordered_ok.cpp");
  EXPECT_TRUE(lint_file(ok).empty());
}

TEST(LintDeterminism, DetPtrKeyFiresOnPointerKeyedOrderedContainers) {
  auto f = load_fixture("det_ptr_key.cpp");
  auto got = locations(lint_file(f));
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kDetPtrKey, 10},  // std::map<const Proc*, int>
      {Rule::kDetPtrKey, 11},  // std::set<Proc*>
  };
  EXPECT_EQ(got, want);
}

TEST(LintDeterminism, DetDoubleNsFiresOnDeclAndAccumulation) {
  auto f = load_fixture("det_double_ns.cpp");
  auto got = locations(lint_file(f));
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kDetDoubleNs, 7},   // double total_ns = 0.0;
      {Rule::kDetDoubleNs, 11},  // sum += w[i].finish_time;
  };
  EXPECT_EQ(got, want);
}

TEST(LintDeterminism, RateNamesAreNotNanosecondQuantities) {
  // `per`-named doubles are rates (bytes/ns), not ns totals.
  auto f = SourceFile::from_text(
      "src/fake/rates.h", "double copy_bytes_per_ns = 16.0;\n"
                          "double ns_per_instr = 1.0;\n");
  EXPECT_TRUE(lint_file(f).empty());
}

TEST(LintDeterminism, RngHomeAndFaultLayerAreExemptFromDetRand) {
  const std::string decl = "std::mt19937 gen;\n";
  EXPECT_TRUE(lint_file(SourceFile::from_text("src/util/rng.h", decl)).empty());
  EXPECT_TRUE(
      lint_file(SourceFile::from_text("src/fault/injector.cpp", decl)).empty());
  EXPECT_FALSE(
      lint_file(SourceFile::from_text("src/core/sim.cpp", decl)).empty());
}

// ---------------------------------------------------------------------------
// Suppressions.

TEST(LintSuppress, ReasonedAllowSilencesTrailingAndWholeLineForms) {
  auto f = load_fixture("det_rand_allowed.cpp");
  EXPECT_TRUE(lint_file(f).empty());
}

TEST(LintSuppress, ReasonlessOrUnknownAllowIsItselfAFinding) {
  auto f = load_fixture("det_rand_bad_suppress.cpp");
  auto got = locations(lint_file(f));
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kDetRand, 6},       // original finding survives
      {Rule::kDetRand, 11},      // ditto for the unknown-rule form
      {Rule::kBadSuppress, 6},   // allow(det-rand) without a reason
      {Rule::kBadSuppress, 11},  // allow(not-a-rule)
  };
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(LintSuppress, AllowOnlyCoversItsOwnRule) {
  // A det-clock suppression must not silence a det-rand finding.
  auto f = SourceFile::from_text(
      "src/fake/wrong_rule.cpp",
      "#include <random>\n"
      "std::mt19937 gen;  // its-lint: allow(det-clock): wrong rule\n");
  auto findings = lint_file(f);
  EXPECT_TRUE(has_finding(findings, Rule::kDetRand, "unseeded"));
}

// ---------------------------------------------------------------------------
// Registry rules over the fixture mini-trees.

TEST(LintRegistry, CleanTreeHasNoFindings) {
  std::vector<std::string> errors;
  auto findings =
      scan_registry(registry_inputs_for_root(fixture("registry_clean")),
                    &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_TRUE(findings.empty());
}

TEST(LintRegistry, DriftedTreeFlagsEveryRegistryRule) {
  std::vector<std::string> errors;
  auto findings = scan_registry(
      registry_inputs_for_root(fixture("registry_drift")), &errors);
  EXPECT_TRUE(errors.empty());

  EXPECT_TRUE(has_finding(findings, Rule::kRegKindName, "kGamma"));
  EXPECT_TRUE(has_finding(findings, Rule::kRegChromeMap, "kBeta"));
  EXPECT_TRUE(has_finding(findings, Rule::kRegInvariant, "kAlpha"));
  EXPECT_TRUE(has_finding(findings, Rule::kRegKindCount, "kGamma"));
  EXPECT_TRUE(has_finding(findings, Rule::kRegKindCount, "static_assert"));
  EXPECT_TRUE(has_finding(findings, Rule::kRegMetricsReport, "dropped_events"));
  EXPECT_TRUE(has_finding(findings, Rule::kRegConfigDoc, "hidden_knob"));

  // Nothing in-sync may be flagged.
  EXPECT_FALSE(has_finding(findings, Rule::kRegKindName, "kAlpha"));
  EXPECT_FALSE(has_finding(findings, Rule::kRegMetricsReport, "major_faults"));
  EXPECT_FALSE(has_finding(findings, Rule::kRegConfigDoc, "'knob'"));
}

// ---------------------------------------------------------------------------
// Parsers.

TEST(LintParsers, EnumBodyInOrder) {
  auto f = load_fixture("registry_drift/src/obs/event_trace.h");
  auto kinds = parse_enum_body(f, "EventKind");
  std::vector<std::string> want = {"kAlpha", "kBeta", "kGamma"};
  EXPECT_EQ(kinds, want);
}

TEST(LintParsers, StructFieldsSkipFunctionsAndKeepBraceInit) {
  auto f = SourceFile::from_text(
      "src/fake/s.h",
      "struct Demo {\n"
      "  unsigned a = 1;\n"
      "  Nested nested{};\n"
      "  std::uint64_t big = 512ull << 20;\n"
      "  int helper() const { return 0; }\n"
      "  double rate = 2.5;\n"
      "};\n");
  auto fields = parse_struct_fields(f, "Demo");
  std::vector<std::string> want = {"a", "nested", "big", "rate"};
  EXPECT_EQ(fields, want);
}

// ---------------------------------------------------------------------------
// Exit codes: the ctest/CI contract.

TEST(LintExitCodes, PerRuleAndMixed) {
  EXPECT_EQ(exit_code_for(Rule::kDetRand), 10);
  EXPECT_EQ(exit_code_for(Rule::kBadSuppress),
            10 + static_cast<int>(Rule::kBadSuppress));

  LintResult clean;
  EXPECT_EQ(clean.exit_code(), kExitClean);

  LintResult one;
  one.findings.push_back({"f.cpp", 1, Rule::kDetClock, "m"});
  EXPECT_EQ(one.exit_code(), exit_code_for(Rule::kDetClock));

  LintResult mixed = one;
  mixed.findings.push_back({"f.cpp", 2, Rule::kDetRand, "m"});
  EXPECT_EQ(mixed.exit_code(), kExitMixed);

  LintResult errored;
  errored.errors.push_back("unreadable");
  EXPECT_EQ(errored.exit_code(), kExitUsage);
}

// Seeding any fixture's violation into a src/ path must produce findings —
// the property the lint.src_clean ctest gate relies on.
TEST(LintGate, FixtureViolationsWouldFailTheSrcGate) {
  for (const char* name :
       {"det_rand.cpp", "det_clock.cpp", "det_unordered_iter.cpp",
        "det_ptr_key.cpp", "det_double_ns.cpp"}) {
    SourceFile fixture_file = load_fixture(name);
    SourceFile as_src = fixture_file;
    as_src.path = "src/seeded/" + std::string(name);
    LintResult r;
    r.findings = lint_file(as_src);
    EXPECT_FALSE(r.findings.empty()) << name;
    EXPECT_NE(r.exit_code(), kExitClean) << name;
  }
}

}  // namespace
}  // namespace its::lint
