// Tests for tools/its_lint: every rule must fire exactly where the
// fixtures under tests/lint_fixtures/ violate it, reasoned suppressions
// must silence findings, and the cross-file registry rules must accept an
// in-sync mini-tree and flag a drifted one.
//
// ITS_LINT_FIXTURE_DIR is injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace its::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(ITS_LINT_FIXTURE_DIR) + "/" + name;
}

SourceFile load_fixture(const std::string& name) {
  SourceFile f;
  std::string err;
  EXPECT_TRUE(SourceFile::load(fixture(name), &f, &err)) << err;
  return f;
}

/// (rule, line) pairs of `findings`, sorted, for whole-set comparisons.
std::vector<std::pair<Rule, std::size_t>> locations(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<Rule, std::size_t>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  std::sort(out.begin(), out.end());
  return out;
}

bool has_finding(const std::vector<Finding>& findings, Rule r,
                 std::string_view needle) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == r && f.message.find(needle) != std::string::npos;
  });
}

// ---------------------------------------------------------------------------
// Tokenizer.

TEST(LintTokenizer, StripsCommentsAndLiteralsButKeepsLines) {
  std::string code =
      "int a; // rand()\n"
      "/* rand() spans\n   lines */ int b = 'x';\n"
      "const char* s = \"std::rand()\";\n";
  std::string stripped = strip_comments_and_strings(code);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(code.begin(), code.end(), '\n'));
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int b ="), std::string::npos);
}

TEST(LintTokenizer, RawStringsAndDigitSeparatorsSurvive) {
  // 5'000 must not open a char literal; the raw string must be blanked.
  std::string code =
      "int n = 5'000;\n"
      "auto r = R\"(srand(1))\";\n"
      "int m = 7;\n";
  std::string stripped = strip_comments_and_strings(code);
  EXPECT_EQ(stripped.find("srand"), std::string::npos);
  EXPECT_NE(stripped.find("int m = 7;"), std::string::npos);
}

TEST(LintTokenizer, ContainsWordRespectsBoundaries) {
  EXPECT_TRUE(contains_word("std::rand();", "rand"));
  EXPECT_FALSE(contains_word("unordered_map", "map"));
  EXPECT_FALSE(contains_word("random_device", "rand"));
}

// ---------------------------------------------------------------------------
// Determinism rules, one fixture per rule.

TEST(LintDeterminism, DetRandFiresOnEveryTrigger) {
  auto f = load_fixture("det_rand.cpp");
  auto got = locations(lint_file(f));
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kDetRand, 6},   // std::mt19937 gen;
      {Rule::kDetRand, 7},   // std::mt19937_64 wide{};
      {Rule::kDetRand, 8},   // std::random_device rd;
      {Rule::kDetRand, 12},  // std::rand()
  };
  EXPECT_EQ(got, want);
}

TEST(LintDeterminism, DetClockFiresPerBannedIdentifier) {
  auto f = load_fixture("det_clock.cpp");
  auto got = locations(lint_file(f));
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kDetClock, 6},  // steady_clock
      {Rule::kDetClock, 7},  // system_clock
      {Rule::kDetClock, 9},  // timespec_get
  };
  EXPECT_EQ(got, want);
}

TEST(LintDeterminism, DetUnorderedIterFiresOnlyOnEventPathFiles) {
  auto bad = load_fixture("det_unordered_iter.cpp");
  auto got = locations(lint_file(bad));
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kDetUnorderedIter, 14},  // for (const auto& kv : counts)
  };
  EXPECT_EQ(got, want);

  // Same loop, no EventTrace/SimMetrics in the file: out of scope.
  auto ok = load_fixture("det_unordered_ok.cpp");
  EXPECT_TRUE(lint_file(ok).empty());
}

TEST(LintDeterminism, DetPtrKeyFiresOnPointerKeyedOrderedContainers) {
  auto f = load_fixture("det_ptr_key.cpp");
  auto got = locations(lint_file(f));
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kDetPtrKey, 10},  // std::map<const Proc*, int>
      {Rule::kDetPtrKey, 11},  // std::set<Proc*>
  };
  EXPECT_EQ(got, want);
}

TEST(LintDeterminism, DetDoubleNsFiresOnDeclAndAccumulation) {
  auto f = load_fixture("det_double_ns.cpp");
  auto got = locations(lint_file(f));
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kDetDoubleNs, 7},   // double total_ns = 0.0;
      {Rule::kDetDoubleNs, 11},  // sum += w[i].finish_time;
  };
  EXPECT_EQ(got, want);
}

TEST(LintDeterminism, RateNamesAreNotNanosecondQuantities) {
  // `per`-named doubles are rates (bytes/ns), not ns totals.
  auto f = SourceFile::from_text(
      "src/fake/rates.h", "double copy_bytes_per_ns = 16.0;\n"
                          "double ns_per_instr = 1.0;\n");
  EXPECT_TRUE(lint_file(f).empty());
}

TEST(LintDeterminism, DetRandCoversFarmVictimSelection) {
  auto f = load_fixture("det_farm_rand.cpp");
  auto got = locations(lint_file(f));
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kDetRand, 8},   // std::random_device rd;
      {Rule::kDetRand, 13},  // std::mt19937 gen;
  };
  EXPECT_EQ(got, want);

  // Seeded into src/farm/ the same code fails the src gate: the farm
  // layer has no rng exemption (only util/rng.h and fault/ do), so
  // entropy can never sneak into the bit-deterministic scheduler.
  SourceFile as_src = f;
  as_src.path = "src/farm/steal.cpp";
  LintResult r;
  r.findings = lint_file(as_src);
  EXPECT_EQ(r.exit_code(), exit_code_for(Rule::kDetRand));
}

TEST(LintDeterminism, DetRandCoversServeArrivalSampler) {
  auto f = load_fixture("det_serve_rand.cpp");
  auto got = locations(lint_file(f));
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kDetRand, 9},   // std::random_device rd;
      {Rule::kDetRand, 14},  // std::mt19937 gen;
  };
  EXPECT_EQ(got, want);

  // Seeded into src/serve/ the same code fails the src gate: the serving
  // layer has no rng exemption, so the arrival sampler can only draw from
  // the seeded util::Rng stream and every percentile row stays replayable.
  SourceFile as_src = f;
  as_src.path = "src/serve/arrival.cpp";
  LintResult r;
  r.findings = lint_file(as_src);
  EXPECT_EQ(r.exit_code(), exit_code_for(Rule::kDetRand));
}

TEST(LintDeterminism, RngHomeAndFaultLayerAreExemptFromDetRand) {
  const std::string decl = "std::mt19937 gen;\n";
  EXPECT_TRUE(lint_file(SourceFile::from_text("src/util/rng.h", decl)).empty());
  EXPECT_TRUE(
      lint_file(SourceFile::from_text("src/fault/injector.cpp", decl)).empty());
  EXPECT_FALSE(
      lint_file(SourceFile::from_text("src/core/sim.cpp", decl)).empty());
}

// ---------------------------------------------------------------------------
// Suppressions.

TEST(LintSuppress, ReasonedAllowSilencesTrailingAndWholeLineForms) {
  auto f = load_fixture("det_rand_allowed.cpp");
  EXPECT_TRUE(lint_file(f).empty());
}

TEST(LintSuppress, ReasonlessOrUnknownAllowIsItselfAFinding) {
  auto f = load_fixture("det_rand_bad_suppress.cpp");
  auto got = locations(lint_file(f));
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kDetRand, 6},       // original finding survives
      {Rule::kDetRand, 11},      // ditto for the unknown-rule form
      {Rule::kBadSuppress, 6},   // allow(det-rand) without a reason
      {Rule::kBadSuppress, 11},  // allow(not-a-rule)
  };
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(LintSuppress, AllowOnlyCoversItsOwnRule) {
  // A det-clock suppression must not silence a det-rand finding.
  auto f = SourceFile::from_text(
      "src/fake/wrong_rule.cpp",
      "#include <random>\n"
      "std::mt19937 gen;  // its-lint: allow(det-clock): wrong rule\n");
  auto findings = lint_file(f);
  EXPECT_TRUE(has_finding(findings, Rule::kDetRand, "unseeded"));
}

// ---------------------------------------------------------------------------
// Registry rules over the fixture mini-trees.

TEST(LintRegistry, CleanTreeHasNoFindings) {
  std::vector<std::string> errors;
  auto findings =
      scan_registry(registry_inputs_for_root(fixture("registry_clean")),
                    &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_TRUE(findings.empty());
}

TEST(LintRegistry, DriftedTreeFlagsEveryRegistryRule) {
  std::vector<std::string> errors;
  auto findings = scan_registry(
      registry_inputs_for_root(fixture("registry_drift")), &errors);
  EXPECT_TRUE(errors.empty());

  EXPECT_TRUE(has_finding(findings, Rule::kRegKindName, "kGamma"));
  EXPECT_TRUE(has_finding(findings, Rule::kRegChromeMap, "kBeta"));
  EXPECT_TRUE(has_finding(findings, Rule::kRegInvariant, "kAlpha"));
  EXPECT_TRUE(has_finding(findings, Rule::kRegKindCount, "kGamma"));
  EXPECT_TRUE(has_finding(findings, Rule::kRegKindCount, "static_assert"));
  EXPECT_TRUE(has_finding(findings, Rule::kRegMetricsReport, "dropped_events"));
  EXPECT_TRUE(has_finding(findings, Rule::kRegConfigDoc, "hidden_knob"));

  // Nothing in-sync may be flagged.
  EXPECT_FALSE(has_finding(findings, Rule::kRegKindName, "kAlpha"));
  EXPECT_FALSE(has_finding(findings, Rule::kRegMetricsReport, "major_faults"));
  EXPECT_FALSE(has_finding(findings, Rule::kRegConfigDoc, "'knob'"));
}

TEST(LintRegistry, UnregisteredOutageKindsTripCountAndChromeMap) {
  // The device-outage kinds (kHealthTransition, kPoolStore, kPoolLoad,
  // kPoolDrain) appended to the enum without bumping the registry: four
  // reg-chrome-map findings (one per kind, whole-file) plus two exact
  // reg-kind-count findings — the stale `kNumEventKinds = 2` definition
  // on line 18 and the `static_assert` still pinning 2 on line 19.
  std::vector<std::string> errors;
  auto findings = scan_registry(
      registry_inputs_for_root(fixture("registry_outage_drift")), &errors);
  EXPECT_TRUE(errors.empty());

  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kRegChromeMap, 0},   // kHealthTransition
      {Rule::kRegChromeMap, 0},   // kPoolStore
      {Rule::kRegChromeMap, 0},   // kPoolLoad
      {Rule::kRegChromeMap, 0},   // kPoolDrain
      {Rule::kRegKindCount, 18},  // inline constexpr ... kNumEventKinds = 2;
      {Rule::kRegKindCount, 19},  // static_assert(kNumEventKinds == 2, ...)
  };
  EXPECT_EQ(locations(findings), want);

  for (const char* kind :
       {"kHealthTransition", "kPoolStore", "kPoolLoad", "kPoolDrain"}) {
    EXPECT_TRUE(has_finding(findings, Rule::kRegChromeMap, kind)) << kind;
    // Fully registered elsewhere: named and replayed.
    EXPECT_FALSE(has_finding(findings, Rule::kRegKindName, kind)) << kind;
    EXPECT_FALSE(has_finding(findings, Rule::kRegInvariant, kind)) << kind;
  }
}

TEST(LintRegistry, HalfRegisteredServeKindsTripNameInvariantAndAssert) {
  // The mirror image of the outage-drift tree: the four request-lifecycle
  // kinds are mapped for Chrome but unnamed in kind_name(), the checker
  // misses kSloViolation, and the count is correctly re-derived from the
  // last enumerator while the static_assert still pins 2.
  std::vector<std::string> errors;
  auto findings = scan_registry(
      registry_inputs_for_root(fixture("registry_serve_drift")), &errors);
  EXPECT_TRUE(errors.empty());

  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kRegKindName, 0},    // kRequestArrive
      {Rule::kRegKindName, 0},    // kRequestAdmit
      {Rule::kRegKindName, 0},    // kRequestDone
      {Rule::kRegKindName, 0},    // kSloViolation
      {Rule::kRegInvariant, 0},   // kSloViolation never replayed
      {Rule::kRegKindCount, 20},  // static_assert(kNumEventKinds == 2, ...)
  };
  EXPECT_EQ(locations(findings), want);

  for (const char* kind :
       {"kRequestArrive", "kRequestAdmit", "kRequestDone", "kSloViolation"}) {
    EXPECT_TRUE(has_finding(findings, Rule::kRegKindName, kind)) << kind;
    // The Chrome-trace mapping is complete in this tree.
    EXPECT_FALSE(has_finding(findings, Rule::kRegChromeMap, kind)) << kind;
  }
  EXPECT_TRUE(has_finding(findings, Rule::kRegInvariant, "kSloViolation"));
  EXPECT_FALSE(has_finding(findings, Rule::kRegInvariant, "kRequestDone"));
}

// ---------------------------------------------------------------------------
// Parsers.

TEST(LintParsers, EnumBodyInOrder) {
  auto f = load_fixture("registry_drift/src/obs/event_trace.h");
  auto kinds = parse_enum_body(f, "EventKind");
  std::vector<std::string> want = {"kAlpha", "kBeta", "kGamma"};
  EXPECT_EQ(kinds, want);
}

TEST(LintParsers, StructFieldsSkipFunctionsAndKeepBraceInit) {
  auto f = SourceFile::from_text(
      "src/fake/s.h",
      "struct Demo {\n"
      "  unsigned a = 1;\n"
      "  Nested nested{};\n"
      "  std::uint64_t big = 512ull << 20;\n"
      "  int helper() const { return 0; }\n"
      "  double rate = 2.5;\n"
      "};\n");
  auto fields = parse_struct_fields(f, "Demo");
  std::vector<std::string> want = {"a", "nested", "big", "rate"};
  EXPECT_EQ(fields, want);
}

// ---------------------------------------------------------------------------
// Exit codes: the ctest/CI contract.

TEST(LintExitCodes, PerRuleAndLowestWins) {
  EXPECT_EQ(exit_code_for(Rule::kDetRand), 10);
  EXPECT_EQ(exit_code_for(Rule::kBadSuppress),
            10 + static_cast<int>(Rule::kBadSuppress));
  EXPECT_EQ(exit_code_for(Rule::kArchLayer),
            10 + static_cast<int>(Rule::kArchLayer));

  LintResult clean;
  EXPECT_EQ(clean.exit_code(), kExitClean);

  LintResult one;
  one.findings.push_back({"f.cpp", 1, Rule::kDetClock, "m"});
  EXPECT_EQ(one.exit_code(), exit_code_for(Rule::kDetClock));

  // Several distinct rules: the LOWEST (most specific documented) firing
  // rule's code wins — never a catch-all — regardless of finding order.
  LintResult mixed = one;
  mixed.findings.push_back({"f.cpp", 2, Rule::kDetRand, "m"});
  mixed.findings.push_back({"a.h", 3, Rule::kArchDeadApi, "m"});
  EXPECT_EQ(mixed.exit_code(), exit_code_for(Rule::kDetRand));

  LintResult errored;
  errored.errors.push_back("unreadable");
  EXPECT_EQ(errored.exit_code(), kExitUsage);
}

// Seeding any fixture's violation into a src/ path must produce findings —
// the property the lint.src_clean ctest gate relies on.
TEST(LintGate, FixtureViolationsWouldFailTheSrcGate) {
  for (const char* name :
       {"det_rand.cpp", "det_clock.cpp", "det_unordered_iter.cpp",
        "det_ptr_key.cpp", "det_double_ns.cpp"}) {
    SourceFile fixture_file = load_fixture(name);
    SourceFile as_src = fixture_file;
    as_src.path = "src/seeded/" + std::string(name);
    LintResult r;
    r.findings = lint_file(as_src);
    EXPECT_FALSE(r.findings.empty()) << name;
    EXPECT_NE(r.exit_code(), kExitClean) << name;
  }
}

// ---------------------------------------------------------------------------
// Architecture rules over the fixture mini-trees.

std::vector<Finding> arch_scan(const std::string& tree,
                               ModuleGraph* graph = nullptr,
                               std::vector<std::string>* errors = nullptr) {
  ModuleGraph local_graph;
  std::vector<std::string> local_errors;
  const bool own_errors = errors == nullptr;
  if (graph == nullptr) graph = &local_graph;
  if (own_errors) errors = &local_errors;
  auto findings =
      scan_architecture(arch_options_for_root(fixture(tree)), graph, errors);
  if (own_errors) EXPECT_TRUE(local_errors.empty());
  return findings;
}

TEST(LintArch, CleanTreeHasNoFindings) {
  EXPECT_TRUE(arch_scan("arch_clean").empty());
}

TEST(LintArch, LayerViolationFiresOnTheIncludeLine) {
  auto findings = arch_scan("arch_layer_violation");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, Rule::kArchLayer);
  EXPECT_EQ(findings[0].file, "src/a/a.cpp");
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("'a' may not depend on 'b'"),
            std::string::npos);
}

TEST(LintArch, OutageModulesRespectTheLayerManifest) {
  // A mini-tree mirroring the device-outage modules' real include edges
  // (storage: util fault obs; vm: util obs; core on top of both) is
  // accepted without a single finding.
  EXPECT_TRUE(arch_scan("arch_outage_layers").empty());
}

TEST(LintArch, FallbackPoolReachingIntoStorageIsALayerFinding) {
  // vm sits beside storage, not above it: the pool consuming the health
  // FSM directly (instead of core mediating) is exactly one arch-layer
  // finding on the offending include line.
  auto findings = arch_scan("arch_outage_reverse");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, Rule::kArchLayer);
  EXPECT_EQ(findings[0].file, "src/vm/fallback_pool.h");
  EXPECT_EQ(findings[0].line, 4u);
  EXPECT_NE(findings[0].message.find("'vm' may not depend on 'storage'"),
            std::string::npos);
}

TEST(LintArch, FarmReverseEdgeIntoObsIsALayerFinding) {
  // The run farm sits below obs in the manifest; a farm header reaching
  // back into obs (say, to publish worker counters directly) is exactly
  // one arch-layer finding on the offending include line.
  auto findings = arch_scan("arch_farm_reverse");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, Rule::kArchLayer);
  EXPECT_EQ(findings[0].file, "src/farm/worker.h");
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("'farm' may not depend on 'obs'"),
            std::string::npos);
}

TEST(LintArch, CoreReachingIntoServeIsALayerFinding) {
  // serve is the top layer: it drives core through the admission gate and
  // retire hook.  core importing a serve header (say, to consult the gate
  // inline) inverts that and is exactly one arch-layer finding on the
  // offending include line.
  auto findings = arch_scan("arch_serve_reverse");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, Rule::kArchLayer);
  EXPECT_EQ(findings[0].file, "src/core/scheduler.h");
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("'core' may not depend on 'serve'"),
            std::string::npos);
}

TEST(LintArch, ReasonedAllowSilencesALayerFinding) {
  EXPECT_TRUE(arch_scan("arch_layer_allowed").empty());
}

TEST(LintArch, CycleReportsTheFullCanonicalPath) {
  auto findings = arch_scan("arch_cycle");
  EXPECT_TRUE(has_finding(
      findings, Rule::kArchCycle,
      "src/x/x.h -> src/y/y.h -> src/z/z.h -> src/x/x.h"));
  // One report per cycle, not one per DFS entry point.
  EXPECT_EQ(std::count_if(findings.begin(), findings.end(),
                          [](const Finding& f) {
                            return f.rule == Rule::kArchCycle;
                          }),
            1);
}

TEST(LintArch, IwyuFlagsTransitiveOnlySymbolUse) {
  auto findings = arch_scan("arch_iwyu");
  auto got = locations(findings);
  std::vector<std::pair<Rule, std::size_t>> want = {{Rule::kArchIwyu, 4}};
  EXPECT_EQ(got, want);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/c/c.cpp");
  EXPECT_NE(findings[0].message.find("'Alpha' is defined in \"a/a.h\""),
            std::string::npos);
}

TEST(LintArch, DeadApiFlagsTheOrphanOnly) {
  auto findings = arch_scan("arch_dead_api");
  auto got = locations(findings);
  std::vector<std::pair<Rule, std::size_t>> want = {{Rule::kArchDeadApi, 7}};
  EXPECT_EQ(got, want);
  EXPECT_TRUE(has_finding(findings, Rule::kArchDeadApi, "'Orphan'"));
  EXPECT_FALSE(has_finding(findings, Rule::kArchDeadApi, "'Used'"));
}

TEST(LintArch, MissingPragmaOnceIsAGuardFinding) {
  auto findings = arch_scan("arch_guard");
  auto got = locations(findings);
  std::vector<std::pair<Rule, std::size_t>> want = {{Rule::kArchGuard, 1}};
  EXPECT_EQ(got, want);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/a/a.h");
}

TEST(LintArch, DotOutputListsModulesAndEdges) {
  ModuleGraph graph;
  arch_scan("arch_clean", &graph);
  std::ostringstream dot;
  print_dot(dot, graph);
  EXPECT_NE(dot.str().find("digraph its_modules"), std::string::npos);
  EXPECT_NE(dot.str().find("\"a\";"), std::string::npos);
  EXPECT_NE(dot.str().find("\"b\" -> \"a\";"), std::string::npos);
}

TEST(LintArch, ManifestRejectsForwardDeps) {
  // A dependency must be declared on an earlier line, so a cycle is
  // inexpressible in the manifest itself.
  auto f = SourceFile::from_text("docs/architecture.layers",
                                 "a: b\nb: a\n");
  std::vector<ManifestRow> rows;
  std::vector<std::string> errors;
  EXPECT_FALSE(parse_manifest(f, &rows, &errors));
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("not declared on an earlier line"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// The repo-head gate: the manifest is exact, so the head scans clean and
// deleting ANY allowed edge turns lint.src_clean red.

#ifdef ITS_LINT_REPO_ROOT
TEST(LintArchGate, RepoHeadIsArchClean) {
  ModuleGraph graph;
  std::vector<std::string> errors;
  auto findings = scan_architecture(
      arch_options_for_root(ITS_LINT_REPO_ROOT), &graph, &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_TRUE(findings.empty())
      << findings.size() << " finding(s), first: "
      << (findings.empty() ? "" : findings[0].message);
  EXPECT_FALSE(graph.modules.empty());
  EXPECT_FALSE(graph.edges.empty());
}

TEST(LintArchGate, DeletingAnyManifestEdgeFails) {
  ArchOptions opts = arch_options_for_root(ITS_LINT_REPO_ROOT);
  SourceFile manifest;
  std::string err;
  ASSERT_TRUE(SourceFile::load(opts.manifest_path, &manifest, &err)) << err;
  std::vector<ManifestRow> rows;
  std::vector<std::string> errors;
  ASSERT_TRUE(parse_manifest(manifest, &rows, &errors));

  std::size_t edges_tried = 0;
  for (const ManifestRow& row : rows) {
    for (const std::string& drop : row.deps) {
      // Rewrite the manifest with this one edge removed.
      std::string mutated;
      for (const ManifestRow& r : rows) {
        mutated += r.module + ":";
        for (const std::string& d : r.deps)
          if (&r != &row || d != drop) mutated += " " + d;
        mutated += "\n";
      }
      const std::string path =
          testing::TempDir() + "its_lint_gate_manifest.layers";
      {
        std::ofstream out(path);
        ASSERT_TRUE(out.good());
        out << mutated;
      }
      ArchOptions cut = opts;
      cut.manifest_path = path;
      ModuleGraph graph;
      std::vector<std::string> scan_errors;
      auto findings = scan_architecture(cut, &graph, &scan_errors);
      EXPECT_TRUE(scan_errors.empty());
      EXPECT_TRUE(has_finding(findings, Rule::kArchLayer,
                              "'" + row.module + "'"))
          << "deleting " << row.module << " -> " << drop
          << " produced no arch-layer finding";
      LintResult r;
      r.findings = std::move(findings);
      EXPECT_NE(r.exit_code(), kExitClean);
      ++edges_tried;
    }
  }
  EXPECT_GT(edges_tried, 10u);  // the real graph is well-connected
}
#endif  // ITS_LINT_REPO_ROOT

// ---------------------------------------------------------------------------
// Concurrency rules over the fixture mini-trees.

std::vector<Finding> conc_scan(const std::string& tree,
                               LockGraph* graph = nullptr) {
  LockGraph local_graph;
  if (graph == nullptr) graph = &local_graph;
  std::vector<std::string> errors;
  auto findings =
      scan_concurrency(conc_options_for_root(fixture(tree)), graph, &errors);
  EXPECT_TRUE(errors.empty());
  return findings;
}

TEST(LintConc, GuardedFiresOnEveryUnguardedMutableMember) {
  auto findings = conc_scan("conc_guarded");
  auto got = locations(findings);
  // count_ and dirty_ lack GUARDED_BY; mu_ (the lock itself) and the
  // const limit_ are exempt.
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kConcGuarded, 14}, {Rule::kConcGuarded, 15}};
  EXPECT_EQ(got, want);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "src/a/a.h");
  EXPECT_TRUE(has_finding(findings, Rule::kConcGuarded, "'count_'"));
  EXPECT_TRUE(has_finding(findings, Rule::kConcGuarded, "'dirty_'"));
}

TEST(LintConc, LockOrderCycleReportsTheFullCanonicalPath) {
  LockGraph graph;
  auto findings = conc_scan("conc_lock_order", &graph);
  auto got = locations(findings);
  // Anchored at the witness of the cycle's first edge: a.cpp takes
  // g_beta while holding g_alpha on line 12.
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kConcLockOrder, 12}};
  EXPECT_EQ(got, want);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/a/a.cpp");
  EXPECT_NE(findings[0].message.find("g_alpha -> g_beta -> g_alpha"),
            std::string::npos);
  // Both directions are edges of the witnessed graph.
  auto has_edge = [&](const std::string& from, const std::string& to) {
    return std::any_of(graph.edges.begin(), graph.edges.end(),
                       [&](const LockGraph::Edge& e) {
                         return e.from == from && e.to == to;
                       });
  };
  EXPECT_TRUE(has_edge("g_alpha", "g_beta"));
  EXPECT_TRUE(has_edge("g_beta", "g_alpha"));
}

TEST(LintConc, AtomicOrderFiresOnBareAccessesOnly) {
  auto findings = conc_scan("conc_atomic");
  auto got = locations(findings);
  // store/load/fetch_add without memory_order plus ++; the two accesses
  // that spell their ordering are clean.
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kConcAtomicOrder, 8},
      {Rule::kConcAtomicOrder, 9},
      {Rule::kConcAtomicOrder, 10},
      {Rule::kConcAtomicOrder, 13}};
  EXPECT_EQ(got, want);
}

TEST(LintConc, SharedStaticFlagsMutableStateOnly) {
  auto findings = conc_scan("conc_static");
  auto got = locations(findings);
  // A mutable global, a mutable file-static, and a function-local
  // static; const/thread_local stay exempt.
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kConcSharedStatic, 7},
      {Rule::kConcSharedStatic, 8},
      {Rule::kConcSharedStatic, 13}};
  EXPECT_EQ(got, want);
}

TEST(LintConc, FalseShareFlagsAdjacentUnpaddedSyncMembers) {
  auto findings = conc_scan("conc_false_share");
  auto got = locations(findings);
  // HotCounters' adjacent atomics fire (on the second member);
  // PaddedCounters separates them with alignas and stays clean.
  std::vector<std::pair<Rule, std::size_t>> want = {
      {Rule::kConcFalseShare, 10}};
  EXPECT_EQ(got, want);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("HotCounters"), std::string::npos);
}

TEST(LintConc, ReasonedAllowSilencesAConcFinding) {
  SourceFile f = SourceFile::from_text(
      "src/a/a.h",
      "#pragma once\n"
      "#include <mutex>\n"
      "class C {\n"
      "  std::mutex mu_;\n"
      "  // its-lint: allow(conc-guarded): set once before threads start\n"
      "  int x_ = 0;\n"
      "};\n");
  auto findings = scan_concurrency_files({f}, nullptr);
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : findings[0].message);
}

TEST(LintConc, LockDotOutputListsLocksAndEdges) {
  LockGraph graph;
  conc_scan("conc_lock_order", &graph);
  std::ostringstream dot;
  print_lock_dot(dot, graph);
  EXPECT_NE(dot.str().find("digraph its_locks"), std::string::npos);
  EXPECT_NE(dot.str().find("\"g_alpha\";"), std::string::npos);
  EXPECT_NE(dot.str().find("\"g_alpha\" -> \"g_beta\";"), std::string::npos);
  EXPECT_NE(dot.str().find("\"g_beta\" -> \"g_alpha\";"), std::string::npos);
}

TEST(LintExitCodes, ConcRulesMapTo28Through32) {
  EXPECT_EQ(exit_code_for(Rule::kConcGuarded), 28);
  EXPECT_EQ(exit_code_for(Rule::kConcLockOrder), 29);
  EXPECT_EQ(exit_code_for(Rule::kConcAtomicOrder), 30);
  EXPECT_EQ(exit_code_for(Rule::kConcSharedStatic), 31);
  EXPECT_EQ(exit_code_for(Rule::kConcFalseShare), 32);
}

// ---------------------------------------------------------------------------
// The conc repo-head gate: src/ is conc-clean, the farm's annotations are
// load-bearing (stripping any one GUARDED_BY turns lint.src_clean red),
// and the committed docs/locks.dot matches a fresh scan byte for byte.

#ifdef ITS_LINT_REPO_ROOT
TEST(LintConcGate, RepoHeadIsConcClean) {
  LockGraph graph;
  std::vector<std::string> errors;
  auto findings = scan_concurrency(
      conc_options_for_root(ITS_LINT_REPO_ROOT), &graph, &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_TRUE(findings.empty())
      << findings.size() << " finding(s), first: "
      << (findings.empty() ? "" : findings[0].message);
  // The farm's lock hierarchy is the graph: both Farm locks nest over
  // the per-worker deque lock, and the caller lock nests over the
  // handshake lock.
  EXPECT_GE(graph.locks.size(), 3u);
  EXPECT_GE(graph.edges.size(), 3u);
}

TEST(LintConcGate, StrippingAnyGuardFromDequeFails) {
  SourceFile original;
  std::string err;
  ASSERT_TRUE(SourceFile::load(
      std::string(ITS_LINT_REPO_ROOT) + "/src/farm/deque.h", &original,
      &err))
      << err;
  std::size_t guards_tried = 0;
  for (std::size_t li = 0; li < original.raw_lines.size(); ++li) {
    // Only annotations in code count — the doc comment mentions the
    // macro too, and stripping prose must not be expected to fire.
    if (original.code_lines[li].find("GUARDED_BY") == std::string::npos)
      continue;
    std::string text;
    for (std::size_t k = 0; k < original.raw_lines.size(); ++k) {
      std::string line = original.raw_lines[k];
      if (k == li) {
        std::size_t at = line.find(" GUARDED_BY(mu_)");
        ASSERT_NE(at, std::string::npos) << "line " << li + 1;
        line.erase(at, std::string(" GUARDED_BY(mu_)").size());
      }
      text += line;
      text += '\n';
    }
    SourceFile mutated = SourceFile::from_text("src/farm/deque.h", text);
    auto findings = scan_concurrency_files({mutated}, nullptr);
    EXPECT_TRUE(has_finding(findings, Rule::kConcGuarded, "TaskDeque"))
        << "stripping the guard on line " << li + 1
        << " produced no conc-guarded finding";
    LintResult r;
    r.findings = std::move(findings);
    EXPECT_NE(r.exit_code(), kExitClean);
    ++guards_tried;
  }
  EXPECT_EQ(guards_tried, 4u);  // ring_, head_, count_, max_depth_
}

TEST(LintConcGate, LocksDotMatchesGeneratedGraph) {
  LockGraph graph;
  std::vector<std::string> errors;
  scan_concurrency(conc_options_for_root(ITS_LINT_REPO_ROOT), &graph,
                   &errors);
  ASSERT_TRUE(errors.empty());
  std::ostringstream generated;
  print_lock_dot(generated, graph);

  std::ifstream committed(std::string(ITS_LINT_REPO_ROOT) +
                          "/docs/locks.dot");
  ASSERT_TRUE(committed.good()) << "docs/locks.dot is missing";
  std::ostringstream on_disk;
  on_disk << committed.rdbuf();
  // Byte-identical: regenerate with
  //   its_lint --root . --conc-only --lock-dot docs/locks.dot
  // whenever the lock hierarchy changes.
  EXPECT_EQ(on_disk.str(), generated.str());
}
#endif  // ITS_LINT_REPO_ROOT

// ---------------------------------------------------------------------------
// --json: the machine-readable report round-trips.

/// Minimal extractor for the flat one-finding-per-object schema
/// docs/static-analysis.md documents: no nesting inside a finding, so
/// field scans within one object body are unambiguous.
std::string json_str_field(const std::string& obj, const std::string& key) {
  std::size_t at = obj.find("\"" + key + "\":\"");
  if (at == std::string::npos) return "";
  at += key.size() + 4;
  std::string out;
  for (std::size_t i = at; i < obj.size() && obj[i] != '"'; ++i) {
    if (obj[i] == '\\') ++i;
    out += obj[i];
  }
  return out;
}

long json_int_field(const std::string& obj, const std::string& key) {
  std::size_t at = obj.find("\"" + key + "\":");
  if (at == std::string::npos) return -1;
  return std::stol(obj.substr(at + key.size() + 3));
}

TEST(LintJson, FixtureRunRoundTrips) {
  LintOptions opts;
  opts.root = fixture("arch_layer_violation");
  opts.arch_only = true;
  LintResult r = run_lint(opts);
  ASSERT_EQ(r.findings.size(), 1u);

  std::ostringstream os;
  print_json(os, r);
  const std::string json = os.str();

  // One finding object between the brackets.
  std::size_t open = json.find("\"findings\":[");
  std::size_t obj_start = json.find('{', open + 1);
  std::size_t obj_end = json.find('}', obj_start);
  ASSERT_NE(obj_end, std::string::npos);
  const std::string obj = json.substr(obj_start, obj_end - obj_start + 1);

  EXPECT_EQ(json_str_field(obj, "file"), r.findings[0].file);
  EXPECT_EQ(json_int_field(obj, "line"),
            static_cast<long>(r.findings[0].line));
  EXPECT_EQ(json_str_field(obj, "rule"), "arch-layer");
  EXPECT_EQ(json_int_field(obj, "exit_code"),
            exit_code_for(Rule::kArchLayer));
  EXPECT_EQ(json_str_field(obj, "message"), r.findings[0].message);

  // The top-level exit_code matches the LintResult contract.
  std::size_t tail = json.rfind("\"exit_code\":");
  EXPECT_EQ(std::stol(json.substr(tail + 12)), r.exit_code());
  EXPECT_NE(json.find("\"errors\":[]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Units rules over the fixture mini-trees — one tree per rule, exact
// (rule, line) locations, plus the sanctioned-algebra tree that must scan
// clean.

std::vector<Finding> units_scan(const std::string& tree) {
  std::vector<std::string> errors;
  auto findings =
      scan_units(units_options_for_root(fixture(tree)), &errors);
  EXPECT_TRUE(errors.empty());
  return findings;
}

TEST(LintUnits, SanctionedAlgebraTreeIsClean) {
  auto findings = units_scan("units_clean");
  EXPECT_TRUE(findings.empty())
      << findings.size() << " finding(s), first: "
      << (findings.empty() ? "" : findings[0].message);
}

TEST(LintUnits, MixedArithFiresOnEveryIllegalCombination) {
  auto findings = units_scan("units_mixed");
  // 8: SimTime + SimTime; 10: Duration - SimTime; 11: Duration vs SimTime
  // compare; 12: time vs space compare; 14: pages + bytes.  Line 7's
  // SimTime + Duration is legal and must NOT appear.
  EXPECT_EQ(locations(findings),
            (std::vector<std::pair<Rule, std::size_t>>{
                {Rule::kUnitsMixedArith, 8},
                {Rule::kUnitsMixedArith, 10},
                {Rule::kUnitsMixedArith, 11},
                {Rule::kUnitsMixedArith, 12},
                {Rule::kUnitsMixedArith, 14}}));
}

TEST(LintUnits, AliasDeclFiresOnVocabularyTypedRawDeclarations) {
  auto findings = units_scan("units_alias");
  // Declarations and the uint64_t parameter; the `unsigned fill_count`
  // parameter is count vocabulary and stays legal.
  EXPECT_EQ(locations(findings),
            (std::vector<std::pair<Rule, std::size_t>>{
                {Rule::kUnitsAliasDecl, 6},
                {Rule::kUnitsAliasDecl, 7},
                {Rule::kUnitsAliasDecl, 8},
                {Rule::kUnitsAliasDecl, 9},
                {Rule::kUnitsAliasDecl, 10},
                {Rule::kUnitsAliasDecl, 12}}));
  EXPECT_TRUE(has_finding(findings, Rule::kUnitsAliasDecl, "retire_deadline"));
  EXPECT_TRUE(has_finding(findings, Rule::kUnitsAliasDecl, "stall_ns"));
}

TEST(LintUnits, RawLiteralFiresInTimeContextsButNotDivision) {
  auto findings = units_scan("units_literal");
  // 7: member initializer; 12: addition; 13: comparison.  Line 14's
  // `cost / 1000` is a unit conversion and must NOT appear.
  EXPECT_EQ(locations(findings),
            (std::vector<std::pair<Rule, std::size_t>>{
                {Rule::kUnitsRawLiteral, 7},
                {Rule::kUnitsRawLiteral, 12},
                {Rule::kUnitsRawLiteral, 13}}));
}

TEST(LintUnits, NarrowFiresOnCastsAndNarrowDecls) {
  auto findings = units_scan("units_narrow");
  // 7: static_cast<unsigned>(Duration); 8: static_cast<double>(Bytes);
  // 9: uint32_t initialized from a Duration.
  EXPECT_EQ(locations(findings),
            (std::vector<std::pair<Rule, std::size_t>>{
                {Rule::kUnitsNarrow, 7},
                {Rule::kUnitsNarrow, 8},
                {Rule::kUnitsNarrow, 9}}));
}

TEST(LintUnits, OverflowFiresOnRawDurationProducts) {
  auto findings = units_scan("units_overflow");
  // 7: Duration * Duration; 8: Duration * count.
  EXPECT_EQ(locations(findings),
            (std::vector<std::pair<Rule, std::size_t>>{
                {Rule::kUnitsOverflow, 7},
                {Rule::kUnitsOverflow, 8}}));
}

TEST(LintUnits, ShiftPageFiresOnManualPageArithmetic) {
  auto findings = units_scan("units_shift");
  // 7: >> 12; 8: & 0xfff; 9: & ~0xfff; 10: literal << 12.
  EXPECT_EQ(locations(findings),
            (std::vector<std::pair<Rule, std::size_t>>{
                {Rule::kUnitsShiftPage, 7},
                {Rule::kUnitsShiftPage, 8},
                {Rule::kUnitsShiftPage, 9},
                {Rule::kUnitsShiftPage, 10}}));
}

TEST(LintUnits, ReasonedAllowSilencesAUnitsFinding) {
  SourceFile f = SourceFile::from_text(
      "src/a/a.cpp",
      "its::SimTime plan(its::SimTime now) {\n"
      "  // its-lint: allow(units-mixed-arith): fixture exercises the allow\n"
      "  its::SimTime sum = now + now;\n"
      "  return sum;\n"
      "}\n");
  EXPECT_TRUE(scan_units_files({f}).empty());

  // The same text without the reason keeps the finding.
  SourceFile bare = SourceFile::from_text(
      "src/a/a.cpp",
      "its::SimTime plan(its::SimTime now) {\n"
      "  its::SimTime sum = now + now;\n"
      "  return sum;\n"
      "}\n");
  auto findings = scan_units_files({bare});
  EXPECT_EQ(locations(findings),
            (std::vector<std::pair<Rule, std::size_t>>{
                {Rule::kUnitsMixedArith, 2}}));
}

TEST(LintUnits, TypesHeaderItselfIsExempt) {
  // util/types.h defines the algebra; its own helper internals (raw
  // uint64_t products inside saturating_mul etc.) must not fire.
  SourceFile f = SourceFile::from_text(
      "src/util/types.h",
      "constexpr its::Duration prod(its::Duration a, its::Duration b) {\n"
      "  return a * b;\n"
      "}\n");
  EXPECT_TRUE(scan_units_files({f}).empty());
}

TEST(LintUnitsExitCodes, UnitsRulesArePinnedAt33Through38) {
  EXPECT_EQ(exit_code_for(Rule::kUnitsMixedArith), 33);
  EXPECT_EQ(exit_code_for(Rule::kUnitsAliasDecl), 34);
  EXPECT_EQ(exit_code_for(Rule::kUnitsRawLiteral), 35);
  EXPECT_EQ(exit_code_for(Rule::kUnitsNarrow), 36);
  EXPECT_EQ(exit_code_for(Rule::kUnitsOverflow), 37);
  EXPECT_EQ(exit_code_for(Rule::kUnitsShiftPage), 38);
}

// ---------------------------------------------------------------------------
// The units repo-head gate: src/ carries zero units findings, and the
// typed aliases are load-bearing — stripping one re-fires the rule.

#ifdef ITS_LINT_REPO_ROOT
TEST(LintUnitsGate, RepoHeadIsUnitsClean) {
  std::vector<std::string> errors;
  auto findings =
      scan_units(units_options_for_root(ITS_LINT_REPO_ROOT), &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_TRUE(findings.empty())
      << findings.size() << " finding(s), first: "
      << (findings.empty() ? "" : findings[0].file + ": " +
                                      findings[0].message);
}

TEST(LintUnitsGate, StrippingATypedAliasFails) {
  SourceFile original;
  std::string err;
  ASSERT_TRUE(SourceFile::load(
      std::string(ITS_LINT_REPO_ROOT) + "/src/core/config.h", &original,
      &err))
      << err;
  std::string text;
  for (const std::string& line : original.raw_lines) {
    text += line;
    text += '\n';
  }
  const std::string typed = "its::Duration ctx_switch_cost";
  const std::size_t at = text.find(typed);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, typed.size(), "std::uint64_t ctx_switch_cost");
  SourceFile mutated = SourceFile::from_text("src/core/config.h", text);
  auto findings = scan_units_files({mutated});
  EXPECT_TRUE(has_finding(findings, Rule::kUnitsAliasDecl,
                          "ctx_switch_cost"));
  LintResult r;
  r.findings = std::move(findings);
  EXPECT_NE(r.exit_code(), kExitClean);
}
#endif  // ITS_LINT_REPO_ROOT

}  // namespace
}  // namespace its::lint
