// Chaos soak harness (ctest label: soak; CI runs it under asan+ubsan).
//
// Hammers the device-outage state machine and the compressed-DRAM fallback
// pool with seeded *randomized* fault schedules — outage period, window
// length, recovery span, phase, error/timeout trip counts and pool sizing
// all drawn from a deterministic chaos RNG — and pins down three
// guarantees per trial:
//
//   * byte-identical results across farm widths (--jobs 1/2/8): randomized
//     schedules must not open any nondeterminism the fixed profiles miss;
//   * invariant-clean timelines: every chaos trial's event trace passes
//     obs::check_invariants, including the availability-partition and
//     pool-reconciliation families;
//   * deterministic replay: re-running a trial reproduces the metrics and
//     the event timeline exactly, kHealthTransition events included.
//
// When a trial fails, the harness writes a repro bundle
// (soak_repro_<trial>.txt in the working directory — CI uploads it as an
// artifact) carrying every parameter needed to rerun the exact schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch.h"
#include "core/experiment.h"
#include "core/policy.h"
#include "fault/fault_injector.h"
#include "obs/event_trace.h"
#include "obs/invariant_checker.h"
#include "vm/fallback_pool.h"

namespace its {
namespace {

using core::PolicyKind;
using core::SimMetrics;

// ---------------------------------------------------------------------------
// Chaos schedule generation.

/// Everything needed to reproduce one chaos trial exactly.
struct ChaosTrial {
  std::size_t id = 0;
  const char* base_profile = "errors";  ///< Named profile the trial mutates.
  std::uint64_t fault_seed = 0;
  PolicyKind policy = PolicyKind::kIts;
  fault::OutageModelConfig outage{};
  vm::FallbackPoolConfig pool{};
};

/// Deterministic chaos: the master seed fans out through one mt19937_64 so
/// the whole schedule set is a pure function of (kMasterSeed, n).
std::vector<ChaosTrial> make_trials(std::uint64_t master_seed, std::size_t n) {
  std::mt19937_64 rng(master_seed);
  const char* bases[] = {"errors", "bursty", "hostile"};
  std::vector<ChaosTrial> trials(n);
  for (std::size_t i = 0; i < n; ++i) {
    ChaosTrial& t = trials[i];
    t.id = i;
    t.base_profile = bases[rng() % std::size(bases)];
    t.fault_seed = 1 + rng() % 10'000;
    t.policy = core::kAllPolicies[i % std::size(core::kAllPolicies)];
    t.outage.period = 600'000 + rng() % 2'400'000;
    t.outage.length = 40'000 + rng() % (t.outage.period / 2);
    t.outage.recovery = 20'000 + rng() % 180'000;
    t.outage.phase = rng() % t.outage.period;
    t.outage.degrade_errors = static_cast<unsigned>(rng() % 7);     // 0 = off
    t.outage.offline_timeouts = static_cast<unsigned>(rng() % 5);   // 0 = off
    t.outage.error_outage = 20'000 + rng() % 130'000;
    t.outage.degraded_hold = 50'000 + rng() % 250'000;
    t.pool.frames = 4 + rng() % 61;
    t.pool.ratio = 1.0 + static_cast<double>(rng() % 3);
    t.pool.compress_cost = 500 + rng() % 3'000;
    t.pool.decompress_cost = 250 + rng() % 1'500;
  }
  return trials;
}

constexpr std::uint64_t kMasterSeed = 0xC0FFEE;
constexpr std::size_t kTrials = 6;

const core::BatchSpec& soak_batch() { return core::paper_batches()[1]; }

core::ExperimentConfig trial_config(const ChaosTrial& t) {
  core::ExperimentConfig cfg;
  cfg.gen.length_scale = 0.01;  // half the fault suite: 3 widths × n trials
  cfg.gen.footprint_scale = 0.25;
  cfg.sim.seed = 42;
  cfg.sim.fault = *fault::profile_by_name(t.base_profile);
  cfg.sim.fault.seed = t.fault_seed;
  cfg.sim.fault.outage = t.outage;
  cfg.sim.fallback_pool = t.pool;
  return cfg;
}

SimMetrics run_trial(const ChaosTrial& t, obs::EventTrace* et = nullptr) {
  core::ExperimentConfig cfg = trial_config(t);
  auto traces = core::batch_traces(soak_batch(), cfg.gen);
  return core::run_batch_policy(soak_batch(), t.policy, cfg, traces, et);
}

// ---------------------------------------------------------------------------
// Repro bundles.

std::string describe_trial(const ChaosTrial& t) {
  std::ostringstream os;
  os << "trial=" << t.id << '\n'
     << "master_seed=" << kMasterSeed << '\n'
     << "base_profile=" << t.base_profile << '\n'
     << "fault_seed=" << t.fault_seed << '\n'
     << "policy=" << core::policy_name(t.policy) << '\n'
     << "batch=1 length_scale=0.01 footprint_scale=0.25 sim_seed=42\n"
     << "outage.period=" << t.outage.period << '\n'
     << "outage.length=" << t.outage.length << '\n'
     << "outage.recovery=" << t.outage.recovery << '\n'
     << "outage.phase=" << t.outage.phase << '\n'
     << "outage.degrade_errors=" << t.outage.degrade_errors << '\n'
     << "outage.offline_timeouts=" << t.outage.offline_timeouts << '\n'
     << "outage.error_outage=" << t.outage.error_outage << '\n'
     << "outage.degraded_hold=" << t.outage.degraded_hold << '\n'
     << "pool.frames=" << t.pool.frames << '\n'
     << "pool.ratio=" << t.pool.ratio << '\n'
     << "pool.compress_cost=" << t.pool.compress_cost << '\n'
     << "pool.decompress_cost=" << t.pool.decompress_cost << '\n';
  return os.str();
}

/// Writes soak_repro_<id>.txt next to the test binary; CI uploads the
/// bundle as an artifact so a failed schedule can be replayed locally by
/// pasting the parameters into a ChaosTrial.
void write_repro_bundle(const ChaosTrial& t, const std::string& reason) {
  const std::string path = "soak_repro_" + std::to_string(t.id) + ".txt";
  std::ofstream out(path, std::ios::trunc);
  out << "# its_sim soak repro bundle — rebuild the ChaosTrial below and\n"
         "# call run_trial() to replay the failing schedule.\n"
      << "reason=" << reason << '\n'
      << describe_trial(t);
  ADD_FAILURE() << "soak trial " << t.id << " failed (" << reason
                << ") — repro bundle written to " << path << "\n"
                << describe_trial(t);
}

std::string emit_metrics(const SimMetrics& m) {
  std::ostringstream os;
  os << m.makespan << ' ' << m.cpu_busy << ' ' << m.idle.mem_stall << ' '
     << m.idle.busy_wait << ' ' << m.idle.ctx_switch << ' '
     << m.idle.no_runnable << ' ' << m.major_faults << ' ' << m.io_errors
     << ' ' << m.io_retries << ' ' << m.deadline_aborts << ' '
     << m.mode_fallbacks << ' ' << m.stolen_time << ' '
     << m.health_healthy_time << ' ' << m.health_degraded_time << ' '
     << m.health_offline_time << ' ' << m.health_recovering_time << ' '
     << m.pool_stores << ' ' << m.pool_hits << ' ' << m.pool_drains << ' '
     << m.drain_bytes << ' ' << m.faults_served_degraded;
  return os.str();
}

// ---------------------------------------------------------------------------
// The soak itself.

TEST(SoakChaos, SchedulesAreDeterministicAndActuallyChaotic) {
  std::vector<ChaosTrial> a = make_trials(kMasterSeed, kTrials);
  std::vector<ChaosTrial> b = make_trials(kMasterSeed, kTrials);
  ASSERT_EQ(a.size(), kTrials);
  bool any_differ = false;
  for (std::size_t i = 0; i < kTrials; ++i) {
    EXPECT_EQ(describe_trial(a[i]), describe_trial(b[i]))
        << "chaos generation is not a pure function of the master seed";
    EXPECT_TRUE(a[i].outage.enabled()) << "trial " << i << " has no outages";
    if (i > 0 && a[i].outage.period != a[0].outage.period) any_differ = true;
  }
  EXPECT_TRUE(any_differ) << "every trial drew the same schedule";
}

TEST(SoakChaos, ByteIdenticalAcrossFarmWidths) {
  const std::vector<ChaosTrial> trials = make_trials(kMasterSeed, kTrials);
  auto sweep = [&](unsigned jobs) {
    return core::run_sim_tasks(trials.size(), jobs, [&](std::size_t i) {
      return run_trial(trials[i]);
    });
  };
  const std::vector<SimMetrics> reference = sweep(1);
  std::vector<std::string> serial;
  for (const SimMetrics& m : reference) serial.push_back(emit_metrics(m));
  for (unsigned jobs : {2u, 8u}) {
    const std::vector<SimMetrics> wide = sweep(jobs);
    ASSERT_EQ(wide.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      if (emit_metrics(wide[i]) != serial[i])
        write_repro_bundle(trials[i],
                           "--jobs " + std::to_string(jobs) +
                               " diverged from serial: " +
                               emit_metrics(wide[i]) + " vs " + serial[i]);
  }
  // The soak must actually exercise the outage machinery somewhere.
  std::uint64_t offline = 0, pooled = 0;
  for (const SimMetrics& m : reference) {
    offline += m.health_offline_time;
    pooled += m.pool_stores;
  }
  EXPECT_GT(offline, 0u) << "no trial ever took the device offline";
  EXPECT_GT(pooled, 0u) << "no trial ever stored a page in the fallback pool";
}

TEST(SoakChaos, EveryTrialIsInvariantClean) {
  for (const ChaosTrial& t : make_trials(kMasterSeed, kTrials)) {
    obs::EventTrace et;
    SimMetrics m = run_trial(t, &et);
    obs::CheckResult r = obs::check_invariants(et, m);
    if (!r.ok()) write_repro_bundle(t, "invariant violation: " + r.summary());
    // The availability counters partition the makespan exactly.
    const its::Duration avail = m.health_healthy_time +
                                m.health_degraded_time +
                                m.health_offline_time +
                                m.health_recovering_time;
    if (avail != m.makespan)
      write_repro_bundle(t, "availability partition broke: " +
                                std::to_string(avail) + " != makespan " +
                                std::to_string(m.makespan));
  }
}

TEST(SoakChaos, DeterministicReplayEventByEvent) {
  // Replay the two most eventful trials (first and last) and require the
  // full timeline — health transitions and pool traffic included — to
  // match event by event.
  const std::vector<ChaosTrial> trials = make_trials(kMasterSeed, kTrials);
  for (std::size_t pick : {std::size_t{0}, trials.size() - 1}) {
    const ChaosTrial& t = trials[pick];
    obs::EventTrace t1, t2;
    SimMetrics m1 = run_trial(t, &t1);
    SimMetrics m2 = run_trial(t, &t2);
    if (emit_metrics(m1) != emit_metrics(m2)) {
      write_repro_bundle(t, "metrics changed between identical replays");
      continue;
    }
    ASSERT_EQ(t1.size(), t2.size());
    for (std::size_t i = 0; i < t1.size(); ++i) {
      const obs::Event &a = t1.events()[i], &b = t2.events()[i];
      if (!(a.ts == b.ts && a.kind == b.kind && a.pid == b.pid &&
            a.a == b.a && a.b == b.b && a.c == b.c)) {
        write_repro_bundle(t, "event " + std::to_string(i) +
                                  " differs between identical replays");
        break;
      }
    }
  }
}

TEST(SoakChaos, PermanentDeathIsDeterministic) {
  // A dead_at schedule may legitimately lose a page (vm::PageLostError) —
  // the soak's contract is that whichever way a schedule falls, it falls
  // the same way every time, with the same final word.
  ChaosTrial t = make_trials(kMasterSeed, kTrials)[0];
  t.id = 900;  // distinct repro-bundle name
  t.outage.dead_at = 2'000'000;
  auto attempt = [&]() -> std::string {
    try {
      return "completed: " + emit_metrics(run_trial(t));
    } catch (const vm::PageLostError& e) {
      return "page_lost: pid=" + std::to_string(e.pid) +
             " vpn=" + std::to_string(e.vpn) + " what=" + e.what();
    }
  };
  const std::string first = attempt();
  const std::string second = attempt();
  if (first != second)
    write_repro_bundle(t, "dead-device outcome flapped: \"" + first +
                              "\" vs \"" + second + "\"");
}

}  // namespace
}  // namespace its
