// Perf-gate suite (ctest label: perf) for the its_bench snapshot schema
// and comparator (tools/its_bench/snapshot.h).
//
// The live ctest/CI gate runs its_bench against a committed baseline with
// a deliberately loose tolerance so shared-runner noise never flakes
// tier-1; *this* suite pins the strict semantics deterministically with
// synthetic snapshots:
//   * JSON round-trip — to_json(parse(to_json(s))) is the identity;
//   * tolerance boundaries — +14% passes at the default 15% gate, +16%
//     fails, same for the macro runs/sec drop;
//   * an injected 2x micro slowdown exits non-zero (the acceptance
//     criterion for the gate catching real regressions);
//   * missing baseline and machine-fingerprint mismatch warn-and-skip
//     (exit 0) instead of failing — cross-machine deltas are noise.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "snapshot.h"

namespace its::perf {
namespace {

Snapshot make_baseline() {
  Snapshot s;
  s.revision = "baseline-rev";
  s.machine = {8, "gcc 13.2", "RelWithDebInfo"};
  s.micro = {{"page_table_walk", 10.0},
             {"cache_access", 50.0},
             {"dma_post_page", 12.5}};
  s.macro = {8, 20, 500.0, 40.0, 2500.0, 5.0};
  s.serve = {120, 20.0, 1200.0, 1500.0};
  return s;
}

// ---------------------------------------------------------------------------
// Schema round-trip.

TEST(BenchSnapshot, JsonRoundTripIsIdentity) {
  Snapshot s = make_baseline();
  Snapshot r = parse_snapshot(to_json(s));
  EXPECT_EQ(r.schema_version, s.schema_version);
  EXPECT_EQ(r.revision, s.revision);
  EXPECT_EQ(r.machine, s.machine);
  ASSERT_EQ(r.micro.size(), s.micro.size());
  for (std::size_t i = 0; i < s.micro.size(); ++i) {
    EXPECT_EQ(r.micro[i].name, s.micro[i].name);
    EXPECT_DOUBLE_EQ(r.micro[i].ns_per_op, s.micro[i].ns_per_op);
  }
  EXPECT_EQ(r.macro.jobs, s.macro.jobs);
  EXPECT_EQ(r.macro.runs, s.macro.runs);
  EXPECT_DOUBLE_EQ(r.macro.wall_ms, s.macro.wall_ms);
  EXPECT_DOUBLE_EQ(r.macro.runs_per_sec, s.macro.runs_per_sec);
  EXPECT_DOUBLE_EQ(r.macro.serial_wall_ms, s.macro.serial_wall_ms);
  EXPECT_DOUBLE_EQ(r.macro.speedup, s.macro.speedup);
  EXPECT_EQ(r.serve.requests, s.serve.requests);
  EXPECT_DOUBLE_EQ(r.serve.p99_ms, s.serve.p99_ms);
  EXPECT_DOUBLE_EQ(r.serve.req_per_sec, s.serve.req_per_sec);
  EXPECT_DOUBLE_EQ(r.serve.wall_ms, s.serve.wall_ms);
  // And the serialised form is stable (fixed field order).
  EXPECT_EQ(to_json(r), to_json(s));
}

TEST(BenchSnapshot, RoundTripSurvivesAwkwardValues) {
  Snapshot s = make_baseline();
  s.revision = "quote\"back\\slash";
  s.micro.push_back({"tiny", 0.00012345});
  s.micro.push_back({"huge", 3.9e9});
  Snapshot r = parse_snapshot(to_json(s));
  EXPECT_EQ(r.revision, s.revision);
  EXPECT_DOUBLE_EQ(r.micro.back().ns_per_op, 3.9e9);
  EXPECT_DOUBLE_EQ(r.micro[r.micro.size() - 2].ns_per_op, 0.00012345);
}

TEST(BenchSnapshot, MalformedJsonThrowsWithPosition) {
  EXPECT_THROW(parse_snapshot("{"), std::runtime_error);
  EXPECT_THROW(parse_snapshot(""), std::runtime_error);
  EXPECT_THROW(parse_snapshot("{\"schema_version\": 1}"), std::runtime_error);
  try {
    parse_snapshot("{\"schema_version\": oops}");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(BenchSnapshot, SaveLoadFileRoundTrip) {
  Snapshot s = make_baseline();
  std::string path = testing::TempDir() + "/bench_gate_roundtrip.json";
  ASSERT_TRUE(save_snapshot(path, s));
  Snapshot r = load_snapshot(path);
  EXPECT_EQ(to_json(r), to_json(s));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Tolerance logic.

TEST(BenchCompare, WithinToleranceIsPass) {
  Snapshot base = make_baseline();
  Snapshot cur = base;
  cur.micro[0].ns_per_op = 11.4;          // +14% < 15% gate
  cur.macro.runs_per_sec = 40.0 * 0.86;   // -14% drop
  CompareReport rep = compare_snapshots(base, cur);
  EXPECT_EQ(rep.status, CompareStatus::kPass);
  EXPECT_EQ(exit_code(rep.status), 0);
}

TEST(BenchCompare, MicroRegressionPastToleranceFails) {
  Snapshot base = make_baseline();
  Snapshot cur = base;
  cur.micro[0].ns_per_op = 11.6;  // +16% > 15% gate
  CompareReport rep = compare_snapshots(base, cur);
  EXPECT_EQ(rep.status, CompareStatus::kRegressed);
  EXPECT_NE(exit_code(rep.status), 0);
  bool named = false;
  for (const auto& l : rep.lines)
    named |= l.find("FAIL") != std::string::npos &&
             l.find("page_table_walk") != std::string::npos;
  EXPECT_TRUE(named) << "the report must name the regressed metric";
}

TEST(BenchCompare, MacroThroughputDropPastToleranceFails) {
  Snapshot base = make_baseline();
  Snapshot cur = base;
  cur.macro.runs_per_sec = 40.0 * 0.84;  // -16% runs/sec
  EXPECT_EQ(compare_snapshots(base, cur).status, CompareStatus::kRegressed);
}

TEST(BenchCompare, ServingThroughputDropPastToleranceFails) {
  Snapshot base = make_baseline();
  Snapshot cur = base;
  cur.serve.req_per_sec = 1200.0 * 0.84;  // -16% sustained req/sec
  EXPECT_EQ(compare_snapshots(base, cur).status, CompareStatus::kRegressed);
  cur.serve.req_per_sec = 1200.0 * 0.86;  // -14%: inside the 15% gate
  EXPECT_EQ(compare_snapshots(base, cur).status, CompareStatus::kPass);
}

TEST(BenchCompare, ServingP99GateBreakFailsRegardlessOfTolerance) {
  // A run whose p99 broke the fixed gate records 0 sustained req/sec —
  // that must read as a regression even at the loosest tolerance.
  Snapshot base = make_baseline();
  Snapshot cur = base;
  cur.serve.req_per_sec = 0.0;
  cur.serve.p99_ms = 80.0;
  CompareReport rep = compare_snapshots(base, cur, 10.0);
  EXPECT_EQ(rep.status, CompareStatus::kRegressed);
  bool named = false;
  for (const auto& l : rep.lines)
    named |= l.find("p99 gate broke") != std::string::npos;
  EXPECT_TRUE(named) << "the report must name the broken serving gate";
}

TEST(BenchCompare, PreServingBaselineSkipsTheServingAxis) {
  // Snapshots taken before the serving macro existed parse with an
  // all-zero serve block; the comparator must not fail them.
  Snapshot base = make_baseline();
  base.serve = {};
  Snapshot cur = make_baseline();
  CompareReport rep = compare_snapshots(base, cur);
  EXPECT_EQ(rep.status, CompareStatus::kPass);
  bool noted = false;
  for (const auto& l : rep.lines)
    noted |= l.find("new serving macro") != std::string::npos;
  EXPECT_TRUE(noted);
}

TEST(BenchCompare, CustomToleranceMovesTheGate) {
  Snapshot base = make_baseline();
  Snapshot cur = base;
  cur.micro[1].ns_per_op = 50.0 * 1.4;  // +40%
  EXPECT_EQ(compare_snapshots(base, cur, 0.5).status, CompareStatus::kPass);
  EXPECT_EQ(compare_snapshots(base, cur, 0.15).status,
            CompareStatus::kRegressed);
}

TEST(BenchCompare, InjectedDoubleSlowdownExitsNonZero) {
  // The acceptance criterion: double every substrate cost (what a 2x
  // slowdown in micro_substrates would measure) and the gate must trip.
  Snapshot base = make_baseline();
  Snapshot cur = base;
  for (Metric& m : cur.micro) m.ns_per_op *= 2.0;
  CompareReport rep = compare_snapshots(base, cur);
  EXPECT_EQ(rep.status, CompareStatus::kRegressed);
  EXPECT_EQ(exit_code(rep.status), 1);
}

TEST(BenchCompare, ImprovementsNeverFail) {
  Snapshot base = make_baseline();
  Snapshot cur = base;
  for (Metric& m : cur.micro) m.ns_per_op *= 0.3;
  cur.macro.runs_per_sec *= 4.0;
  EXPECT_EQ(compare_snapshots(base, cur).status, CompareStatus::kPass);
}

TEST(BenchCompare, RenamedMetricsAreNotedNotFailed) {
  Snapshot base = make_baseline();
  Snapshot cur = base;
  cur.micro[2].name = "dma_post_page_v2";  // rename: one missing, one new
  CompareReport rep = compare_snapshots(base, cur);
  EXPECT_EQ(rep.status, CompareStatus::kPass);
  bool missing = false, added = false;
  for (const auto& l : rep.lines) {
    missing |= l.find("missing") != std::string::npos;
    added |= l.find("new metric") != std::string::npos;
  }
  EXPECT_TRUE(missing);
  EXPECT_TRUE(added);
}

// ---------------------------------------------------------------------------
// Warn-and-skip semantics: a PR must never be blocked by an absent or
// foreign baseline, only by a measured regression.

TEST(BenchCompare, MissingBaselineWarnsAndSkips) {
  Snapshot cur = make_baseline();
  CompareReport rep = compare_against_file(
      testing::TempDir() + "/definitely_not_there.json", cur);
  EXPECT_EQ(rep.status, CompareStatus::kSkippedMissing);
  EXPECT_EQ(exit_code(rep.status), 0);
  ASSERT_FALSE(rep.lines.empty());
  EXPECT_NE(rep.lines[0].find("skip"), std::string::npos);
}

TEST(BenchCompare, CorruptBaselineFileWarnsAndSkips) {
  std::string path = testing::TempDir() + "/bench_gate_corrupt.json";
  std::ofstream(path) << "{ not json";
  Snapshot cur = make_baseline();
  CompareReport rep = compare_against_file(path, cur);
  EXPECT_EQ(rep.status, CompareStatus::kSkippedSchema);
  EXPECT_EQ(exit_code(rep.status), 0);
  std::remove(path.c_str());
}

TEST(BenchCompare, FingerprintMismatchWarnsAndSkips) {
  Snapshot base = make_baseline();
  Snapshot cur = base;
  for (Metric& m : cur.micro) m.ns_per_op *= 10.0;  // huge "regression"...
  cur.machine.cpus = 1;                             // ...on another machine
  CompareReport rep = compare_snapshots(base, cur);
  EXPECT_EQ(rep.status, CompareStatus::kSkippedFingerprint);
  EXPECT_EQ(exit_code(rep.status), 0);

  cur.machine = base.machine;
  cur.machine.compiler = "clang 17.0";
  EXPECT_EQ(compare_snapshots(base, cur).status,
            CompareStatus::kSkippedFingerprint);

  cur.machine = base.machine;
  cur.machine.build = "Debug";
  EXPECT_EQ(compare_snapshots(base, cur).status,
            CompareStatus::kSkippedFingerprint);
}

TEST(BenchCompare, SchemaVersionMismatchWarnsAndSkips) {
  Snapshot base = make_baseline();
  Snapshot cur = base;
  cur.schema_version = kSchemaVersion + 1;
  for (Metric& m : cur.micro) m.ns_per_op *= 10.0;
  CompareReport rep = compare_snapshots(base, cur);
  EXPECT_EQ(rep.status, CompareStatus::kSkippedSchema);
  EXPECT_EQ(exit_code(rep.status), 0);
}

TEST(BenchSnapshot, HostMachineIsPopulated) {
  Machine m = host_machine();
  EXPECT_GE(m.cpus, 1u);
  EXPECT_FALSE(m.compiler.empty());
  EXPECT_FALSE(m.build.empty());
}

}  // namespace
}  // namespace its::perf
