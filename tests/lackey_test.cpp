// Tests for Valgrind Lackey trace ingestion.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/lackey.h"

namespace its::trace {
namespace {

TEST(Lackey, ParsesAllRecordKinds) {
  std::istringstream is(
      "I  0400d7d4,8\n"
      " L 04842f60,8\n"
      " S 04842f68,4\n"
      " M 0484ab50,4\n");
  Trace t = parse_lackey(is, "t", {.instr_fold = 1});
  // 1 compute + 1 load + 1 store + (load + store) from M.
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0].op, Op::kCompute);
  EXPECT_EQ(t[1].op, Op::kLoad);
  EXPECT_EQ(t[1].addr, 0x04842f60u);
  EXPECT_EQ(t[1].size, 8);
  EXPECT_EQ(t[2].op, Op::kStore);
  EXPECT_EQ(t[3].op, Op::kLoad);
  EXPECT_EQ(t[4].op, Op::kStore);
  EXPECT_EQ(t[3].addr, t[4].addr);
}

TEST(Lackey, FoldsInstructionFetches) {
  std::istringstream is(
      "I 1000,4\nI 1004,4\nI 1008,4\nI 100c,4\n L 2000,8\nI 1010,4\n");
  Trace t = parse_lackey(is, "t", {.instr_fold = 4});
  // 4 I-lines fold into one compute(4); the trailing single I flushes at EOF.
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].op, Op::kCompute);
  EXPECT_EQ(t[0].repeat, 4);
  EXPECT_EQ(t[1].op, Op::kLoad);
  EXPECT_EQ(t[2].op, Op::kCompute);
  EXPECT_EQ(t[2].repeat, 1);
}

TEST(Lackey, PartialFoldFlushesBeforeMemoryOp) {
  std::istringstream is("I 1000,4\nI 1004,4\n S 3000,8\n");
  Trace t = parse_lackey(is, "t", {.instr_fold = 8});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].repeat, 2);  // flushed early so ordering is preserved
  EXPECT_EQ(t[1].op, Op::kStore);
}

TEST(Lackey, LenientSkipsGarbage) {
  std::istringstream is(
      "==12345== lackey output header\n"
      "program printed something\n"
      " L 4000,8\n"
      " L deadbeef\n"  // malformed: no size
      " L 5000,8\n");
  Trace t = parse_lackey(is, "t");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].addr, 0x4000u);
  EXPECT_EQ(t[1].addr, 0x5000u);
}

TEST(Lackey, StrictThrowsOnGarbage) {
  std::istringstream is("X 4000,8\n");
  EXPECT_THROW(parse_lackey(is, "t", {.lenient = false}), LackeyParseError);
  std::istringstream is2(" L nonsense\n");
  EXPECT_THROW(parse_lackey(is2, "t", {.lenient = false}), LackeyParseError);
}

TEST(Lackey, MaxRecordsBound) {
  std::ostringstream gen;
  for (int i = 0; i < 1000; ++i) gen << " L " << std::hex << 0x1000 + i * 8 << ",8\n";
  std::istringstream is(gen.str());
  Trace t = parse_lackey(is, "t", {.max_records = 100});
  EXPECT_EQ(t.size(), 100u);
}

TEST(Lackey, HexPrefixAccepted) {
  std::istringstream is(" L 0x7fff0000,8\n");
  Trace t = parse_lackey(is, "t");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].addr, 0x7fff0000u);
}

TEST(Lackey, OversizeAccessClamped) {
  std::istringstream is(" L 1000,100000\n");
  Trace t = parse_lackey(is, "t");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].size, 0xffff);
}

TEST(Lackey, RoundTripThroughWriter) {
  std::istringstream is(
      "I 1000,4\nI 1004,4\n L 2000,8\n S 3000,16\n");
  Trace t = parse_lackey(is, "orig", {.instr_fold = 2});
  std::stringstream out;
  write_lackey(out, t);
  Trace back = parse_lackey(out, "back", {.instr_fold = 2});
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back[i].op, t[i].op) << i;
    if (t[i].is_mem()) {
      EXPECT_EQ(back[i].addr, t[i].addr) << i;
      EXPECT_EQ(back[i].size, t[i].size) << i;
    }
  }
}

TEST(Lackey, MissingFileThrows) {
  EXPECT_THROW(load_lackey_file("/no/such/file.lk"), LackeyParseError);
}

}  // namespace
}  // namespace its::trace
