// Tests for src/core policies: the five I/O-mode policies' fault plans, the
// §3.2 priority test, and the ITS ablation knock-outs.
#include <gtest/gtest.h>

#include <memory>

#include "core/policy.h"
#include "storage/device_health.h"
#include "trace/instr.h"

namespace its::core {
namespace {

std::shared_ptr<const trace::Trace> tiny_trace() {
  auto t = std::make_shared<trace::Trace>("tiny");
  t->push_back(trace::Instr::load(0x560000000000ull, 8, 1, 0));
  return t;
}

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest()
      : low_(0, "low", 10, tiny_trace()),
        high_(1, "high", 50, tiny_trace()),
        sched_(1000, 2000) {}

  sched::Process low_;
  sched::Process high_;
  sched::RRScheduler sched_;
};

TEST_F(PolicyTest, PolicyNamesMatchPaper) {
  EXPECT_EQ(policy_name(PolicyKind::kAsync), "Async");
  EXPECT_EQ(policy_name(PolicyKind::kSync), "Sync");
  EXPECT_EQ(policy_name(PolicyKind::kSyncRunahead), "Sync_Runahead");
  EXPECT_EQ(policy_name(PolicyKind::kSyncPrefetch), "Sync_Prefetch");
  EXPECT_EQ(policy_name(PolicyKind::kIts), "ITS");
}

TEST_F(PolicyTest, FactoryProducesMatchingKinds) {
  for (PolicyKind k : kAllPolicies) {
    auto p = make_policy(k);
    EXPECT_EQ(p->kind(), k);
    EXPECT_EQ(p->name(), policy_name(k));
  }
}

TEST_F(PolicyTest, IsLowPriorityComparesAgainstNextToBeRun) {
  // §3.2: the current process is low-priority iff its priority is lower
  // than the next-to-be-run process's.
  sched_.add(&high_);  // head of queue: priority 50
  EXPECT_TRUE(is_low_priority(low_, sched_));
  EXPECT_FALSE(is_low_priority(high_, sched_));
}

TEST_F(PolicyTest, EmptyQueueMeansHighPriority) {
  EXPECT_FALSE(is_low_priority(low_, sched_));
}

TEST_F(PolicyTest, AsyncAlwaysGivesWay) {
  auto p = make_policy(PolicyKind::kAsync);
  FaultPlan plan = p->plan_major_fault(high_, sched_, storage::DeviceHealth::kHealthy);
  EXPECT_TRUE(plan.go_async);
  EXPECT_FALSE(p->uses_preexec_cache());
  EXPECT_FALSE(p->runahead_on_llc_miss());
}

TEST_F(PolicyTest, SyncBusyWaits) {
  auto p = make_policy(PolicyKind::kSync);
  FaultPlan plan = p->plan_major_fault(high_, sched_, storage::DeviceHealth::kHealthy);
  EXPECT_FALSE(plan.go_async);
  EXPECT_EQ(plan.prefetch, PrefetchKind::kNone);
  EXPECT_FALSE(plan.preexec);
}

TEST_F(PolicyTest, SyncRunaheadRunsOnLlcMissesOnly) {
  auto p = make_policy(PolicyKind::kSyncRunahead);
  EXPECT_TRUE(p->runahead_on_llc_miss());
  EXPECT_TRUE(p->uses_preexec_cache());
  // §4.1 footnote 4: traditional runahead does NOT work the fault window.
  FaultPlan plan = p->plan_major_fault(high_, sched_, storage::DeviceHealth::kHealthy);
  EXPECT_FALSE(plan.preexec);
  EXPECT_FALSE(plan.go_async);
}

TEST_F(PolicyTest, SyncPrefetchUsesPageOnPageUnits) {
  auto p = make_policy(PolicyKind::kSyncPrefetch);
  FaultPlan plan = p->plan_major_fault(high_, sched_, storage::DeviceHealth::kHealthy);
  EXPECT_EQ(plan.prefetch, PrefetchKind::kPop);
  EXPECT_FALSE(plan.preexec);
  EXPECT_FALSE(p->uses_preexec_cache());
}

TEST_F(PolicyTest, ItsSelfImprovingForHighPriority) {
  auto p = make_policy(PolicyKind::kIts);
  sched_.add(&low_);  // next-to-be-run has priority 10
  FaultPlan plan = p->plan_major_fault(high_, sched_, storage::DeviceHealth::kHealthy);
  EXPECT_FALSE(plan.go_async);
  EXPECT_EQ(plan.prefetch, PrefetchKind::kVa);
  EXPECT_TRUE(plan.preexec);
  EXPECT_TRUE(p->uses_preexec_cache());
}

TEST_F(PolicyTest, ItsSelfSacrificingForLowPriority) {
  auto p = make_policy(PolicyKind::kIts);
  sched_.add(&high_);
  FaultPlan plan = p->plan_major_fault(low_, sched_, storage::DeviceHealth::kHealthy);
  EXPECT_TRUE(plan.go_async);
}

TEST_F(PolicyTest, ItsAloneActsSelfImproving) {
  // After higher-priority processes finish, a low-priority process gets
  // the self-improving treatment ("more concentrated attention", §1).
  auto p = make_policy(PolicyKind::kIts);
  FaultPlan plan = p->plan_major_fault(low_, sched_, storage::DeviceHealth::kHealthy);
  EXPECT_FALSE(plan.go_async);
  EXPECT_EQ(plan.prefetch, PrefetchKind::kVa);
}

TEST_F(PolicyTest, ItsKnockoutNoSacrifice) {
  auto p = make_its_policy({.self_sacrificing = false});
  sched_.add(&high_);
  FaultPlan plan = p->plan_major_fault(low_, sched_, storage::DeviceHealth::kHealthy);
  EXPECT_FALSE(plan.go_async);
  EXPECT_EQ(plan.prefetch, PrefetchKind::kVa);
}

TEST_F(PolicyTest, ItsKnockoutNoPrefetch) {
  auto p = make_its_policy({.page_prefetch = false});
  FaultPlan plan = p->plan_major_fault(high_, sched_, storage::DeviceHealth::kHealthy);
  EXPECT_EQ(plan.prefetch, PrefetchKind::kNone);
  EXPECT_TRUE(plan.preexec);
}

TEST_F(PolicyTest, ItsKnockoutNoPreexec) {
  auto p = make_its_policy({.pre_execute = false});
  FaultPlan plan = p->plan_major_fault(high_, sched_, storage::DeviceHealth::kHealthy);
  EXPECT_FALSE(plan.preexec);
  // No pre-execute cache ⇒ the LLC is not halved.
  EXPECT_FALSE(p->uses_preexec_cache());
}

TEST_F(PolicyTest, EveryPolicyGivesWayToAnOfflineDevice) {
  // Busy-waiting a device that is not serving can never be repaid: all the
  // sync-family policies must convert to asynchronous completion.
  for (PolicyKind k : kAllPolicies) {
    auto p = make_policy(k);
    FaultPlan plan =
        p->plan_major_fault(high_, sched_, storage::DeviceHealth::kOffline);
    EXPECT_TRUE(plan.go_async)
        << p->name() << " busy-waits a device in state "
        << storage::health_name(storage::DeviceHealth::kOffline);
  }
}

TEST_F(PolicyTest, UnhealthyDeviceGetsNoPrefetchTraffic) {
  auto sp = make_policy(PolicyKind::kSyncPrefetch);
  EXPECT_EQ(sp->plan_major_fault(high_, sched_,
                                 storage::DeviceHealth::kDegraded)
                .prefetch,
            PrefetchKind::kNone);
  // ITS keeps pre-execution (it touches no device) but drops the prefetch.
  auto its = make_policy(PolicyKind::kIts);
  FaultPlan plan = its->plan_major_fault(high_, sched_,
                                         storage::DeviceHealth::kRecovering);
  EXPECT_EQ(plan.prefetch, PrefetchKind::kNone);
  EXPECT_TRUE(plan.preexec);
}

TEST_F(PolicyTest, EqualPriorityIsNotLow) {
  sched::Process peer(2, "peer", 10, tiny_trace());
  sched_.add(&peer);  // same priority as low_
  EXPECT_FALSE(is_low_priority(low_, sched_));
}

}  // namespace
}  // namespace its::core
