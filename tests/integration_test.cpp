// Cross-module integration tests: experiment runner (parallel vs serial),
// swap clustering, CSV export of real runs, file-op trace plumbing, and
// split-LLC effects.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/report.h"
#include "core/simulator.h"
#include "core/experiment.h"
#include "trace/instr.h"

namespace its::core {
namespace {

using trace::Instr;

constexpr its::VirtAddr kBase = 0x560000000000ull;

ExperimentConfig tiny_experiment() {
  ExperimentConfig cfg;
  cfg.gen.length_scale = 0.02;
  cfg.gen.footprint_scale = 0.25;
  return cfg;
}

TEST(Experiment, ParallelEqualsSerial) {
  // The run farm must be a pure performance feature: identical
  // deterministic results at any worker count.
  ExperimentConfig par = tiny_experiment();
  par.jobs = 8;
  ExperimentConfig ser = tiny_experiment();
  ser.jobs = 1;
  BatchResult a = run_batch_all(paper_batches()[0], par);
  BatchResult b = run_batch_all(paper_batches()[0], ser);
  for (PolicyKind k : kAllPolicies) {
    const SimMetrics& ma = a.by_policy.at(k);
    const SimMetrics& mb = b.by_policy.at(k);
    EXPECT_EQ(ma.idle.total(), mb.idle.total()) << policy_name(k);
    EXPECT_EQ(ma.major_faults, mb.major_faults) << policy_name(k);
    EXPECT_EQ(ma.makespan, mb.makespan) << policy_name(k);
    EXPECT_EQ(ma.llc_misses, mb.llc_misses) << policy_name(k);
  }
}

TEST(Experiment, RepeatedRunsVaryOnlyByPriorityShuffle) {
  ExperimentConfig cfg = tiny_experiment();
  RepeatedMetrics r =
      run_batch_policy_repeated(paper_batches()[0], PolicyKind::kSync, cfg, 4);
  EXPECT_EQ(r.idle_total.count(), 4u);
  EXPECT_GT(r.idle_total.mean(), 0.0);
  // Priorities only change scheduling, not the workload: fault counts vary
  // little (capacity effects only).
  EXPECT_LT(r.major_faults.stddev() / r.major_faults.mean(), 0.25);
}

TEST(Simulator, SwapClusterTurnsSiblingsIntoMinorFaults) {
  SimConfig cfg;
  cfg.slice_min = 50'000;
  cfg.slice_max = 8'000'000;
  cfg.swap_cluster_pages = 4;
  Simulator sim(cfg, PolicyKind::kSync);
  auto t = std::make_shared<trace::Trace>("cluster");
  // Touch 8 consecutive pages with compute gaps: pages 1-3 of each aligned
  // 4-cluster ride along with page 0's fault.
  for (unsigned i = 0; i < 8; ++i) {
    t->push_back(Instr::load(kBase + i * its::kPageSize, 8, 1, 0));
    t->push_back(Instr::compute(5000, 2, 0, 0));
  }
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, t));
  SimMetrics m = sim.run();
  EXPECT_EQ(m.major_faults, 2u);  // one per aligned cluster
  EXPECT_EQ(m.minor_faults, 6u);  // siblings arrive as swap-cache pages
}

TEST(Simulator, ClusterOneIsPlainFaulting) {
  SimConfig cfg;
  cfg.swap_cluster_pages = 1;
  Simulator sim(cfg, PolicyKind::kSync);
  auto t = std::make_shared<trace::Trace>("nocluster");
  for (unsigned i = 0; i < 4; ++i)
    t->push_back(Instr::load(kBase + i * its::kPageSize, 8, 1, 0));
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, t));
  SimMetrics m = sim.run();
  EXPECT_EQ(m.major_faults, 4u);
  EXPECT_EQ(m.minor_faults, 0u);
}

TEST(Simulator, SplitLlcCostsItsSomeMisses) {
  // The pre-execute cache carve-out halves the LLC: with prefetch and
  // pre-execution disabled, ITS-with-carve-out must miss at least as often
  // as plain Sync on an LLC-straining scan.
  auto run_with = [](std::unique_ptr<IoPolicy> policy) {
    SimConfig cfg;
    Simulator sim(cfg, std::move(policy));
    auto t = std::make_shared<trace::Trace>("scan");
    // Working set ~6 MiB: fits 8 MiB LLC, strains the halved 4 MiB one.
    for (int round = 0; round < 3; ++round)
      for (unsigned i = 0; i < 6 * 1024 * 1024 / 64; i += 1)
        t->push_back(Instr::load(kBase + (i * 64) % (6u << 20), 64, 1, 0));
    sim.add_process(std::make_unique<sched::Process>(0, "p", 30, t));
    return sim.run();
  };
  SimMetrics sync = run_with(make_policy(PolicyKind::kSync));
  SimMetrics carved = run_with(make_its_policy(
      {.self_sacrificing = false, .page_prefetch = false, .pre_execute = true}));
  EXPECT_GT(carved.llc_misses, sync.llc_misses);
}

TEST(Report, RealGridRoundTripsThroughCsv) {
  ExperimentConfig cfg = tiny_experiment();
  BatchResult r = run_batch_all(paper_batches()[0], cfg);
  std::string csv = metrics_csv({&r, 1});
  // One header + five policy rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 6);
  for (PolicyKind k : kAllPolicies)
    EXPECT_NE(csv.find(std::string(policy_name(k))), std::string::npos);
  std::ostringstream procs;
  write_processes_csv(procs, {&r, 1});
  std::string pcsv = procs.str();
  // 5 policies × 6 processes + header.
  EXPECT_EQ(std::count(pcsv.begin(), pcsv.end(), '\n'), 31);
}

TEST(TraceFileOps, StatsAndFactories) {
  trace::Trace t;
  t.push_back(Instr::file_read(3, 4096, 512, 7));
  t.push_back(Instr::file_write(3, 8192, 256, 2));
  t.push_back(Instr::load(kBase, 8, 1, 0));
  trace::TraceStats s = t.stats();
  EXPECT_EQ(s.file_reads, 1u);
  EXPECT_EQ(s.file_writes, 1u);
  EXPECT_EQ(s.file_bytes, 768u);
  EXPECT_EQ(s.mem_refs, 1u);               // file ops are not memory refs
  EXPECT_EQ(s.footprint_pages, 1u);        // file offsets are not VAs
  auto sizes = t.file_sizes();
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0].first, 3);
  EXPECT_EQ(sizes[0].second, 8192u + 256u);
  EXPECT_TRUE(t[0].is_file());
  EXPECT_FALSE(t[0].is_mem());
}

TEST(Simulator, GrindingHaltsAreImpossible) {
  // A pathological trace — every record faults on the same evicted page
  // under a one-frame DRAM — must still terminate.
  SimConfig cfg;
  cfg.dram_bytes = 1 * its::kPageSize;  // one frame: every switch evicts
  Simulator sim(cfg, PolicyKind::kSync);
  auto t = std::make_shared<trace::Trace>("pathological");
  for (int i = 0; i < 50; ++i) {
    t->push_back(Instr::load(kBase, 8, 1, 0));
    t->push_back(Instr::load(kBase + 4 * its::kPageSize, 8, 1, 0));
  }
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, t));
  SimMetrics m = sim.run();
  EXPECT_GE(m.major_faults, 99u);  // thrash: nearly every touch refaults
}

}  // namespace
}  // namespace its::core
