// Edge-case regression tests for the metrics helpers: the priority-half
// finish-time split (Fig. 5a/5b) on degenerate process lists, and the DRAM
// sizing round-up used by every experiment.
#include <gtest/gtest.h>

#include "core/batch.h"
#include "core/metrics.h"

namespace its::core {
namespace {

ProcessOutcome proc(its::Pid pid, int priority, its::SimTime finish) {
  ProcessOutcome p;
  p.pid = pid;
  p.priority = priority;
  p.metrics.finish_time = finish;
  return p;
}

TEST(AvgFinish, EmptyListIsZeroNotNan) {
  SimMetrics m;
  EXPECT_EQ(m.avg_finish_top_half(), 0.0);
  EXPECT_EQ(m.avg_finish_bottom_half(), 0.0);
}

TEST(AvgFinish, SingleProcessBelongsToTopHalfOnly) {
  SimMetrics m;
  m.processes.push_back(proc(0, 30, 1000));
  EXPECT_DOUBLE_EQ(m.avg_finish_top_half(), 1000.0);
  // A one-element list has an empty bottom half — not a copy of the top.
  EXPECT_EQ(m.avg_finish_bottom_half(), 0.0);
}

TEST(AvgFinish, OddCountMiddleProcessCountedExactlyOnce) {
  SimMetrics m;
  m.processes.push_back(proc(0, 30, 300));  // highest priority
  m.processes.push_back(proc(1, 20, 200));  // middle
  m.processes.push_back(proc(2, 10, 100));  // lowest
  // Top half = ceil(3/2) = 2 highest-priority processes; bottom = the rest.
  EXPECT_DOUBLE_EQ(m.avg_finish_top_half(), (300.0 + 200.0) / 2.0);
  EXPECT_DOUBLE_EQ(m.avg_finish_bottom_half(), 100.0);
}

TEST(AvgFinish, EvenCountSplitsCleanly) {
  SimMetrics m;
  for (int i = 0; i < 4; ++i)
    m.processes.push_back(proc(static_cast<its::Pid>(i), 40 - 10 * i,
                               100u * static_cast<its::SimTime>(i + 1)));
  EXPECT_DOUBLE_EQ(m.avg_finish_top_half(), (100.0 + 200.0) / 2.0);
  EXPECT_DOUBLE_EQ(m.avg_finish_bottom_half(), (300.0 + 400.0) / 2.0);
}

TEST(AvgFinish, PriorityTiesBreakByPid) {
  SimMetrics m;
  m.processes.push_back(proc(1, 30, 500));
  m.processes.push_back(proc(0, 30, 100));
  // Same priority: pid 0 sorts first, so it alone forms the top half.
  EXPECT_DOUBLE_EQ(m.avg_finish_top_half(), 100.0);
  EXPECT_DOUBLE_EQ(m.avg_finish_bottom_half(), 500.0);
}

TEST(DramBytesFor, AlwaysPageAligned) {
  for (const BatchSpec& b : paper_batches()) {
    for (double scale : {1.0, 0.25, 0.1, 0.013}) {
      std::uint64_t bytes = dram_bytes_for(b, 1.12, scale);
      EXPECT_EQ(bytes % its::kPageSize, 0u)
          << b.name << " scale=" << scale;
    }
  }
}

TEST(DramBytesFor, RoundsUpNotDown) {
  const BatchSpec& b = paper_batches()[0];
  std::uint64_t exact = dram_bytes_for(b, 1.0, 1.0);
  // Nudging the headroom up by less than a page's worth must never shrink
  // the allocation below the unrounded product.
  std::uint64_t nudged = dram_bytes_for(b, 1.0 + 1e-9, 1.0);
  EXPECT_GE(nudged, exact);
  EXPECT_GE(dram_bytes_for(b, 1.12, 1.0),
            static_cast<std::uint64_t>(
                static_cast<double>(dram_bytes_for(b, 1.0, 1.0)) * 1.11));
}

TEST(DramBytesFor, NeverReturnsZeroFrames) {
  // An extreme footprint scale used to truncate to zero bytes, handing the
  // simulator a DRAM with no frames at all.
  const BatchSpec& b = paper_batches()[0];
  EXPECT_GE(dram_bytes_for(b, 1.0, 1e-18), its::kPageSize);
  EXPECT_GE(dram_bytes_for(b, 1e-18, 1e-18), its::kPageSize);
}

}  // namespace
}  // namespace its::core
