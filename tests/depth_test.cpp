// Depth tests: corner cases across substrates that the per-module suites
// do not reach — parameterised cache geometries, DMA saturation, engine
// edge conditions, scheduler fairness, and analysis on real generators.
#include <gtest/gtest.h>

#include <memory>

#include "cpu/preexec_engine.h"
#include "mem/hierarchy.h"
#include "sched/scheduler.h"
#include "storage/dma.h"
#include "trace/analysis.h"
#include "trace/workloads.h"
#include "util/types.h"
#include "vm/mm.h"

namespace its {
namespace {

// --- Cache geometry sweeps -------------------------------------------------

class LlcGeometry : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LlcGeometry, WorkingSetFitsExactly) {
  mem::HierarchyConfig cfg;
  cfg.llc = {GetParam() << 20, 16, 64, 14};
  mem::CacheHierarchy h(cfg);
  const std::uint64_t lines = (GetParam() << 20) / 64;
  // Fill exactly to capacity, then re-scan: everything must still hit the
  // LLC (no conflict evictions for a sequential fill of a 16-way cache).
  for (std::uint64_t i = 0; i < lines; ++i) h.access(i * 64, 8);
  std::uint64_t before = h.llc_misses();
  for (std::uint64_t i = 0; i < lines; ++i) h.access(i * 64, 8);
  EXPECT_EQ(h.llc_misses(), before);
  // One line beyond capacity starts evicting.
  h.access(lines * 64, 8);
  EXPECT_EQ(h.llc_misses(), before + 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LlcGeometry, ::testing::Values(1, 2, 4, 8));

TEST(Hierarchy, RepeatedAccessStaysInL1) {
  mem::CacheHierarchy h;
  h.access(0x1000, 8);
  for (int i = 0; i < 100; ++i) {
    auto r = h.access(0x1000, 8);
    EXPECT_EQ(r.level, mem::HitLevel::kL1);
  }
  EXPECT_EQ(h.l1().stats().hits, 100u);
}

// --- DMA saturation ----------------------------------------------------------

TEST(DmaDepth, LinkSaturationSpacesCompletions) {
  // With all channels busy-free, back-to-back page reads complete spaced by
  // the link transfer time once the media phase overlaps.
  storage::DmaController dma({.read_latency = 3000, .write_latency = 3000,
                              .channels = 8},
                             {.lanes = 4, .gbytes_per_sec_per_lane = 3.983});
  its::Duration xfer = dma.link().transfer_time(its::kPageSize);
  its::SimTime prev = dma.post_page(0, storage::Dir::kRead);
  for (int i = 1; i < 8; ++i) {
    its::SimTime t = dma.post_page(0, storage::Dir::kRead);
    EXPECT_EQ(t - prev, xfer);
    prev = t;
  }
}

TEST(DmaDepth, ReadsAndWritesShareTheLink) {
  storage::DmaController dma;
  its::SimTime r1 = dma.post_page(0, storage::Dir::kRead);
  // A swap-out posted at t=0 grabs the link first (its link phase precedes
  // the media write), delaying nothing for the read's media phase but
  // contending for the link afterwards.
  storage::DmaController dma2;
  dma2.post_page(0, storage::Dir::kWrite);
  its::SimTime r2 = dma2.post_page(0, storage::Dir::kRead);
  EXPECT_GE(r2, r1);  // write traffic cannot make reads faster
}

TEST(DmaDepth, LargeTransfersScaleLinearly) {
  storage::DmaController dma;
  its::SimTime one = dma.post(0, storage::Dir::kRead, its::kPageSize);
  storage::DmaController dma2;
  its::SimTime sixteen = dma2.post(0, storage::Dir::kRead, 16 * its::kPageSize);
  // Media latency is shared; the transfer part scales ~16x.
  EXPECT_GT(sixteen, one);
  EXPECT_LT(sixteen, 16 * one);
}

// --- Pre-execute engine edges ------------------------------------------------

class EngineEdge : public ::testing::Test {
 protected:
  EngineEdge() : mm_(1, {{0x100, 0x101}}) { mm_.pte(0x100)->map(1); }
  mem::CacheHierarchy caches_;
  mem::PreexecCache px_;
  cpu::RegisterFile rf_;
  vm::MemoryDescriptor mm_;
};

TEST_F(EngineEdge, EmptyLookaheadStillRestores) {
  // Fault on the last record: no lookahead exists, but checkpoint/restore
  // must stay balanced.
  trace::Trace t;
  t.push_back(trace::Instr::load(0x101000, 8, 1, 0));
  cpu::PreexecEngine eng({}, caches_, px_);
  rf_.set_invalid(9, true);
  auto ep = eng.run(t, 0, rf_, mm_, 3000);
  EXPECT_TRUE(ep.ran);
  EXPECT_EQ(ep.records, 0u);
  EXPECT_TRUE(rf_.is_invalid(9));   // restored
  EXPECT_FALSE(rf_.is_invalid(1));  // poison rolled back
}

TEST_F(EngineEdge, StoreWithPoisonedAddressBaseIsSkippedEntirely) {
  trace::Trace t;
  t.push_back(trace::Instr::load(0x101000, 8, 1, 0));        // fault → r1 INV
  t.push_back(trace::Instr::store(0x100000, 8, 0, /*base=*/1));  // addr via r1
  cpu::PreexecEngine eng({}, caches_, px_);
  auto ep = eng.run(t, 0, rf_, mm_, 3000);
  EXPECT_GE(ep.invalid_ops, 1u);
  // Nothing may have been allocated anywhere for an unknown address.
  EXPECT_EQ(px_.lines_resident(), 0u);
  EXPECT_EQ(ep.stores_buffered, 0u);
}

TEST_F(EngineEdge, FaultOnStoreRecordPoisonsNothing) {
  trace::Trace t;
  t.push_back(trace::Instr::store(0x101000, 8, 2, 0));  // faulting store
  t.push_back(trace::Instr::load(0x100000, 8, 3, 0));   // independent load
  cpu::PreexecEngine eng({}, caches_, px_);
  auto ep = eng.run(t, 0, rf_, mm_, 3000);
  EXPECT_EQ(ep.lines_warmed, 1u);  // the load proceeds
}

TEST_F(EngineEdge, RepeatCapInComputeRespectsBudget) {
  trace::Trace t;
  t.push_back(trace::Instr::load(0x101000, 8, 1, 0));
  t.push_back(trace::Instr::compute(60000, 2, 0, 0));  // huge folded burst
  cpu::PreexecEngine eng({}, caches_, px_);
  auto ep = eng.run(t, 0, rf_, mm_, 500);
  EXPECT_LE(ep.used, 500u);
}

// --- Scheduler fairness -------------------------------------------------------

TEST(RRDepth, EqualPrioritiesRotateFairly) {
  auto trace_ptr = [] {
    auto t = std::make_shared<trace::Trace>("t");
    t->push_back(trace::Instr::compute(1, 1, 0, 0));
    return t;
  }();
  sched::RRScheduler s(100, 200);
  std::vector<std::unique_ptr<sched::Process>> procs;
  for (int i = 0; i < 4; ++i) {
    procs.push_back(std::make_unique<sched::Process>(static_cast<its::Pid>(i),
                                                     "p", 20, trace_ptr));
    s.add(procs.back().get());
  }
  // Three full rotations must visit everyone equally, in FIFO order.
  for (int round = 0; round < 3; ++round)
    for (int i = 0; i < 4; ++i) {
      sched::Process* p = s.pick();
      EXPECT_EQ(p, procs[static_cast<std::size_t>(i)].get());
      s.yield(p);
    }
}

// --- Analysis over real generators ---------------------------------------------

TEST(AnalysisDepth, ReuseDistancesSeparateCacheFriendliness) {
  trace::GeneratorConfig cfg;
  cfg.length_scale = 0.05;
  auto q90 = [&](trace::WorkloadId id) {
    return trace::analyze_reuse(trace::generate(id, cfg)).quantile_pages(0.9);
  };
  // deepsjeng's tight transposition table reuses pages at far shorter
  // distances than randwalk's dependent random hops.
  EXPECT_LT(q90(trace::WorkloadId::kDeepSjeng), q90(trace::WorkloadId::kRandomWalk));
}

TEST(AnalysisDepth, StreamingWorkloadsDominatedByOneStride) {
  trace::GeneratorConfig cfg;
  cfg.length_scale = 0.05;
  auto caffe = trace::analyze_locality(trace::generate(trace::WorkloadId::kCaffe, cfg));
  auto g500 =
      trace::analyze_locality(trace::generate(trace::WorkloadId::kGraph500Sssp, cfg));
  EXPECT_GT(caffe.dominant_stride_share, g500.dominant_stride_share);
}

TEST(AnalysisDepth, WorkingSetBelowFootprintForSkewedWorkloads) {
  trace::GeneratorConfig cfg;
  cfg.length_scale = 0.25;
  trace::PageProfile p =
      trace::profile_pages(trace::generate(trace::WorkloadId::kDeepSjeng, cfg));
  // Zipf-hot probes: 99% of touches need far fewer pages than the footprint.
  EXPECT_LT(p.working_set_bytes(0.99), p.footprint_bytes());
  EXPECT_LT(p.working_set_bytes(0.50), p.working_set_bytes(0.99));
}

// --- PTE / page-table depth -----------------------------------------------------

TEST(VmDepth, LevelsMappedProgresses) {
  vm::PageTable pt;
  its::VirtAddr va = 0x7fff12345000ull;
  EXPECT_EQ(pt.levels_mapped(va), 1u);
  pt.ensure(va);
  EXPECT_EQ(pt.levels_mapped(va), 4u);
  // A sibling VA sharing only the PGD entry sees partial depth.
  its::VirtAddr sibling = va + (1ull << 30);  // different PUD entry
  EXPECT_EQ(pt.levels_mapped(sibling), 2u);
}

TEST(VmDepth, PteFlagOrthogonality) {
  vm::Pte p;
  p.set_pfn(0xABCDE);
  p.set_accessed(true);
  p.set_dirty(true);
  p.set_inv(true);
  EXPECT_EQ(p.pfn(), 0xABCDEu);
  p.set_pfn(0x11111);
  EXPECT_TRUE(p.accessed());
  EXPECT_TRUE(p.dirty());
  EXPECT_TRUE(p.inv());
  EXPECT_EQ(p.pfn(), 0x11111u);
}

}  // namespace
}  // namespace its
