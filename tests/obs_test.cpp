// Observability-layer tests: EventTrace mechanics, the InvariantChecker
// over every paper batch × policy and over fuzzed configurations, rejection
// of corrupted/truncated timelines, and the Chrome JSON round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <tuple>

#include "core/batch.h"
#include "core/experiment.h"
#include "obs/event_trace.h"
#include "obs/invariant_checker.h"
#include "obs/trace_json.h"

namespace its::obs {
namespace {

using core::ExperimentConfig;
using core::PolicyKind;
using core::SimMetrics;

ExperimentConfig tiny_experiment() {
  ExperimentConfig cfg;
  cfg.gen.length_scale = 0.02;
  cfg.gen.footprint_scale = 0.25;
  return cfg;
}

SimMetrics run_traced(std::size_t batch_idx, PolicyKind policy,
                      const ExperimentConfig& cfg, EventTrace& et) {
  const core::BatchSpec& b = core::paper_batches()[batch_idx];
  return core::run_batch_policy(b, policy, cfg,
                                core::batch_traces(b, cfg.gen), &et);
}

// ---------------------------------------------------------------------------
// EventTrace mechanics.

TEST(EventTrace, RecordsAndAggregates) {
  EventTrace et(8);
  et.set_policy(3);
  et.record(EventKind::kCtxSwitch, 10, 1, 0, 7000);
  et.record(EventKind::kCtxSwitch, 20, 2, 0, 7000);
  et.record(EventKind::kFaultEnd, 30, 1, 99, 500, 200);
  EXPECT_EQ(et.size(), 3u);
  EXPECT_EQ(et.count(EventKind::kCtxSwitch), 2u);
  EXPECT_EQ(et.sum_b(EventKind::kCtxSwitch), 14000u);
  EXPECT_EQ(et.sum_c(EventKind::kFaultEnd), 200u);
  EXPECT_EQ(et.events()[0].policy, 3);
  EXPECT_EQ(et.dropped(), 0u);
  et.clear();
  EXPECT_TRUE(et.empty());
}

TEST(EventTrace, CapCountsDroppedInsteadOfGrowing) {
  EventTrace et(4, 2);
  for (int i = 0; i < 5; ++i)
    et.record(EventKind::kEvict, static_cast<its::SimTime>(i), 0,
              static_cast<std::uint64_t>(i));
  EXPECT_EQ(et.size(), 2u);
  EXPECT_EQ(et.dropped(), 3u);
}

TEST(EventTrace, KindNamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kNumEventKinds; ++i) {
    std::string_view n = kind_name(static_cast<EventKind>(i));
    EXPECT_FALSE(n.empty()) << i;
    EXPECT_TRUE(names.insert(n).second) << "duplicate name " << n;
  }
}

// ---------------------------------------------------------------------------
// Invariants hold on every paper batch under every policy.

class InvariantsGrid
    : public ::testing::TestWithParam<std::tuple<int, PolicyKind>> {};

TEST_P(InvariantsGrid, TimelineReconcilesWithMetrics) {
  auto [batch_idx, policy] = GetParam();
  EventTrace et(std::size_t{1} << 18);
  SimMetrics m = run_traced(static_cast<std::size_t>(batch_idx), policy,
                            tiny_experiment(), et);
  ASSERT_GT(et.size(), 0u);
  CheckResult res = check_invariants(et, m);
  EXPECT_TRUE(res.ok()) << res.summary();
}

INSTANTIATE_TEST_SUITE_P(
    AllBatchesAllPolicies, InvariantsGrid,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::ValuesIn(core::kAllPolicies)),
    [](const auto& param_info) {
      return "batch" + std::to_string(std::get<0>(param_info.param)) + "_" +
             std::string(core::policy_name(std::get<1>(param_info.param)));
    });

// ---------------------------------------------------------------------------
// Fuzz: random configurations (policy, scheduler, clustering, prefetch
// degree, DRAM pressure, seed) all produce invariant-clean timelines.

class InvariantsFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(InvariantsFuzz, RandomConfigTimelineReconciles) {
  std::mt19937_64 rng(0x0b5eed00ull + GetParam());
  ExperimentConfig cfg = tiny_experiment();
  cfg.gen.length_scale = 0.01;
  cfg.sim.seed = rng();
  cfg.sim.swap_cluster_pages = 1u << (rng() % 3);        // 1, 2 or 4
  cfg.sim.va_prefetch.degree = 1 + static_cast<unsigned>(rng() % 12);
  cfg.sim.ctx_switch_cost = 1000 + rng() % 12000;
  cfg.sim.ull.read_latency = 1000 + rng() % 9000;
  cfg.sim.ull.write_latency = cfg.sim.ull.read_latency;
  if (rng() % 2) cfg.sim.scheduler = core::SchedulerKind::kCfs;
  // Occasionally starve DRAM so eviction/steal paths get exercised hard.
  cfg.dram_headroom = (rng() % 3 == 0) ? 0.45 : 1.12;
  PolicyKind policy = core::kAllPolicies[rng() % std::size(core::kAllPolicies)];
  std::size_t batch_idx = rng() % core::paper_batches().size();

  EventTrace et(std::size_t{1} << 18);
  SimMetrics m = run_traced(batch_idx, policy, cfg, et);
  ASSERT_GT(et.size(), 0u);
  CheckResult res = check_invariants(et, m);
  EXPECT_TRUE(res.ok())
      << "policy=" << core::policy_name(policy) << " batch=" << batch_idx
      << " cluster=" << cfg.sim.swap_cluster_pages
      << " headroom=" << cfg.dram_headroom << '\n'
      << res.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantsFuzz, ::testing::Range(0u, 24u));

// ---------------------------------------------------------------------------
// The checker must reject broken timelines, not just accept good ones.

TEST(InvariantChecker, RejectsDroppedFaultEnd) {
  EventTrace et(std::size_t{1} << 18);
  SimMetrics m = run_traced(1, PolicyKind::kSync, tiny_experiment(), et);
  CheckResult clean = check_invariants(et, m);
  ASSERT_TRUE(clean.ok()) << clean.summary();

  auto& events = et.events_mut();
  auto it = std::find_if(events.begin(), events.end(), [](const Event& e) {
    return e.kind == EventKind::kFaultEnd;
  });
  ASSERT_NE(it, events.end()) << "expected at least one fault in the run";
  events.erase(it);
  CheckResult res = check_invariants(et, m);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.summary().find("fault"), std::string::npos) << res.summary();
}

TEST(InvariantChecker, RejectsOutOfOrderTimeline) {
  EventTrace et(std::size_t{1} << 18);
  SimMetrics m = run_traced(1, PolicyKind::kIts, tiny_experiment(), et);
  auto& events = et.events_mut();
  // Find two same-pid events (DMA completions are exempt from ordering)
  // and swap their timestamps.
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].kind == EventKind::kDmaComplete ||
        events[i - 1].kind == EventKind::kDmaComplete)
      continue;
    if (events[i].pid == events[i - 1].pid &&
        events[i].ts > events[i - 1].ts) {
      std::swap(events[i].ts, events[i - 1].ts);
      break;
    }
  }
  EXPECT_FALSE(check_invariants(et, m).ok());
}

TEST(InvariantChecker, RejectsPerturbedMetrics) {
  EventTrace et(std::size_t{1} << 18);
  SimMetrics m = run_traced(1, PolicyKind::kIts, tiny_experiment(), et);
  ASSERT_TRUE(check_invariants(et, m).ok());
  SimMetrics bad = m;
  bad.major_faults += 1;
  EXPECT_FALSE(check_invariants(et, bad).ok());
  bad = m;
  bad.stolen_time += 12345;
  EXPECT_FALSE(check_invariants(et, bad).ok());
  bad = m;
  bad.idle.busy_wait += 777;
  EXPECT_FALSE(check_invariants(et, bad).ok());
}

TEST(InvariantChecker, RejectsTruncatedTrace) {
  EventTrace et(16, 16);  // absurdly small cap: guaranteed to drop events
  SimMetrics m = run_traced(0, PolicyKind::kSync, tiny_experiment(), et);
  ASSERT_GT(et.dropped(), 0u);
  CheckResult res = check_invariants(et, m);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.summary().find("dropped"), std::string::npos) << res.summary();
}

TEST(InvariantChecker, DmaCompletionsStampedAfterIssue) {
  EventTrace et(std::size_t{1} << 18);
  run_traced(1, PolicyKind::kAsync, tiny_experiment(), et);
  std::size_t dma = 0;
  for (const Event& e : et.events()) {
    if (e.kind != EventKind::kDmaComplete) continue;
    ++dma;
    EXPECT_EQ(e.pid, kDevicePid);
    EXPECT_GE(e.ts, static_cast<its::SimTime>(e.b))
        << "completion before issue";
    EXPECT_GT(e.a, 0u) << "zero-byte DMA";
  }
  EXPECT_GT(dma, 0u);
}

// ---------------------------------------------------------------------------
// Chrome trace JSON round-trip.

TEST(TraceJson, RoundTripPreservesEveryEvent) {
  EventTrace et(std::size_t{1} << 18);
  SimMetrics m = run_traced(1, PolicyKind::kIts, tiny_experiment(), et);
  ASSERT_TRUE(check_invariants(et, m).ok());

  ExportOptions opts;
  opts.policy = "ITS";
  opts.process_names = {"wrf", "blender", "community",
                        "caffe", "deepsjeng", "random_walk"};
  std::stringstream ss;
  write_chrome_trace(ss, et, opts);

  std::vector<ParsedEvent> parsed = parse_chrome_trace(ss);
  std::size_t meta = 0, data = 0, begins = 0, ends = 0;
  for (const ParsedEvent& e : parsed) {
    if (e.ph == "M") {
      ++meta;
      continue;
    }
    ++data;
    if (e.ph == "B") ++begins;
    if (e.ph == "E") ++ends;
  }
  // Every recorded event maps to exactly one non-metadata entry except
  // fault/pre-execute windows, which become a B/E pair.
  std::uint64_t windows = et.count(EventKind::kFaultBegin) +
                          et.count(EventKind::kFaultEnd) +
                          et.count(EventKind::kPreexecBegin) +
                          et.count(EventKind::kPreexecEnd);
  EXPECT_EQ(data, et.size());
  EXPECT_EQ(begins + ends, windows);
  EXPECT_EQ(begins, ends);
  EXPECT_GE(meta, opts.process_names.size());
  EXPECT_EQ(parsed.front().ph, "M");
}

TEST(TraceJson, TimestampsKeepNanosecondPrecision) {
  EventTrace et;
  et.record(EventKind::kEvict, 1234567, 0, 1, 2);  // 1234.567 µs
  et.record(EventKind::kEvict, 1, 0, 1, 2);        // 0.001 µs
  std::stringstream ss;
  write_chrome_trace(ss, et);
  std::vector<ParsedEvent> parsed = parse_chrome_trace(ss);
  std::vector<double> ts;
  for (const ParsedEvent& e : parsed)
    if (e.ph != "M") ts.push_back(e.ts_us);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts[0], 1234.567);
  EXPECT_DOUBLE_EQ(ts[1], 0.001);
}

TEST(TraceJson, EscapesProcessNames) {
  EventTrace et;
  et.record(EventKind::kSchedPick, 5, 0);
  ExportOptions opts;
  opts.policy = "ITS";
  opts.process_names = {"we\"ird\\name"};
  std::stringstream ss;
  write_chrome_trace(ss, et, opts);
  std::string out = ss.str();
  EXPECT_NE(out.find("we\\\"ird\\\\name"), std::string::npos);
  // Still parseable.
  std::stringstream in(out);
  EXPECT_FALSE(parse_chrome_trace(in).empty());
}

}  // namespace
}  // namespace its::obs
