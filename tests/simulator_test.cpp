// Integration tests for the core simulation engine: fault classification,
// idle-time accounting per policy, prefetch arrival → minor faults,
// eviction under memory pressure, determinism, and scheduling dynamics.
#include <gtest/gtest.h>

#include <memory>

#include "core/simulator.h"
#include "trace/instr.h"

namespace its::core {
namespace {

using trace::Instr;

constexpr its::VirtAddr kBase = 0x560000000000ull;

std::shared_ptr<const trace::Trace> make_trace(
    std::initializer_list<Instr> instrs, const std::string& name = "t") {
  auto t = std::make_shared<trace::Trace>(name);
  for (const auto& i : instrs) t->push_back(i);
  return t;
}

/// Sequential page-touch trace with `gap_ns` of compute between touches.
std::shared_ptr<const trace::Trace> page_walker(unsigned pages, unsigned gap_ns) {
  auto t = std::make_shared<trace::Trace>("walker");
  for (unsigned i = 0; i < pages; ++i) {
    t->push_back(Instr::load(kBase + i * its::kPageSize, 8, 1, 0));
    if (gap_ns)
      t->push_back(Instr::compute(static_cast<std::uint16_t>(gap_ns), 2, 0, 0));
  }
  return t;
}

SimConfig small_config() {
  SimConfig cfg;
  cfg.slice_min = 50'000;
  cfg.slice_max = 8'000'000;
  return cfg;
}

/// Uncontended page swap-in time under the default storage model.
its::Duration page_io_ns(const SimConfig& cfg) {
  storage::DmaController dma(cfg.ull, cfg.pcie);
  return dma.post_page(0, storage::Dir::kRead);
}

TEST(Simulator, SingleProcessRunsToCompletion) {
  Simulator sim(small_config(), PolicyKind::kSync);
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, page_walker(4, 100)));
  SimMetrics m = sim.run();
  ASSERT_EQ(m.processes.size(), 1u);
  EXPECT_EQ(m.major_faults, 4u);  // every cold touch is a major fault
  EXPECT_EQ(m.minor_faults, 0u);
  EXPECT_GT(m.processes[0].metrics.finish_time, 0u);
  EXPECT_EQ(m.makespan, m.processes[0].metrics.finish_time);
  // 4 loads + 4 folded compute records of 100 ops each.
  EXPECT_EQ(m.processes[0].metrics.instructions, 4u + 4u * 100u);
}

TEST(Simulator, SyncBusyWaitEqualsIoTime) {
  SimConfig cfg = small_config();
  Simulator sim(cfg, PolicyKind::kSync);
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, page_walker(3, 50)));
  SimMetrics m = sim.run();
  EXPECT_EQ(m.idle.busy_wait, 3 * page_io_ns(cfg));
  EXPECT_EQ(m.idle.ctx_switch, 0u);     // nothing to switch to
  EXPECT_EQ(m.idle.no_runnable, 0u);    // never blocks
  EXPECT_EQ(m.async_switches, 0u);
}

TEST(Simulator, AsyncChargesOneSwitchPerFault) {
  SimConfig cfg = small_config();
  Simulator sim(cfg, PolicyKind::kAsync);
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, page_walker(5, 50)));
  SimMetrics m = sim.run();
  EXPECT_EQ(m.async_switches, 5u);
  EXPECT_EQ(m.idle.ctx_switch, 5 * cfg.ctx_switch_cost);
  EXPECT_EQ(m.idle.busy_wait, 0u);
  // The 7 µs switch fully covers the 3.3 µs swap-in: no residual idle.
  EXPECT_EQ(m.idle.no_runnable, 0u);
}

TEST(Simulator, AsyncSlowDeviceLeavesResidualIdle) {
  SimConfig cfg = small_config();
  cfg.ull.read_latency = 20'000;  // 20 µs media: slower than the switch
  Simulator sim(cfg, PolicyKind::kAsync);
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, page_walker(5, 50)));
  SimMetrics m = sim.run();
  // Alone on the machine, the part of the I/O the switch does not cover is
  // genuine whole-machine idle.
  EXPECT_GT(m.idle.no_runnable, 0u);
}

TEST(Simulator, SecondTouchHitsCache) {
  Simulator sim(small_config(), PolicyKind::kSync);
  sim.add_process(std::make_unique<sched::Process>(
      0, "p", 30,
      make_trace({Instr::load(kBase, 8, 1, 0), Instr::compute(10, 2, 0, 0),
                  Instr::load(kBase, 8, 3, 0)})));
  SimMetrics m = sim.run();
  EXPECT_EQ(m.major_faults, 1u);
  EXPECT_EQ(m.llc_misses, 1u);  // second touch is an L1 hit
}

TEST(Simulator, ItsPrefetchTurnsMajorsIntoMinors) {
  SimConfig cfg = small_config();
  Simulator sim(cfg, PolicyKind::kIts);
  // Alone ⇒ self-improving: the VA prefetcher fetches the next pages during
  // the first fault; 20 µs of compute gives the DMA time to land them.
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, page_walker(4, 20000)));
  SimMetrics m = sim.run();
  EXPECT_EQ(m.major_faults, 1u);
  EXPECT_EQ(m.minor_faults, 3u);
  EXPECT_GE(m.prefetch_issued, 3u);
  EXPECT_EQ(m.prefetch_useful, 3u);
  EXPECT_GE(m.preexec_episodes, 1u);
}

TEST(Simulator, SyncPrefetchUsesAlignedUnits) {
  SimConfig cfg = small_config();
  cfg.pop_prefetch.unit_pages = 4;
  Simulator sim(cfg, PolicyKind::kSyncPrefetch);
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, page_walker(4, 20000)));
  SimMetrics m = sim.run();
  EXPECT_EQ(m.major_faults, 1u);
  EXPECT_EQ(m.minor_faults, 3u);
}

TEST(Simulator, EvictionUnderMemoryPressure) {
  SimConfig cfg = small_config();
  cfg.dram_bytes = 8 * its::kPageSize;
  Simulator sim(cfg, PolicyKind::kSync);
  auto t = std::make_shared<trace::Trace>("thrash");
  for (int round = 0; round < 2; ++round)
    for (unsigned i = 0; i < 16; ++i)
      t->push_back(Instr::load(kBase + i * its::kPageSize, 8, 1, 0));
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, t));
  SimMetrics m = sim.run();
  EXPECT_GT(m.evictions, 0u);
  EXPECT_GT(m.major_faults, 16u);  // re-touches of evicted pages fault again
}

TEST(Simulator, DirtyEvictionWritesBack) {
  SimConfig cfg = small_config();
  cfg.dram_bytes = 4 * its::kPageSize;
  Simulator sim(cfg, PolicyKind::kSync);
  auto t = std::make_shared<trace::Trace>("dirty");
  for (unsigned i = 0; i < 8; ++i)
    t->push_back(Instr::store(kBase + i * its::kPageSize, 8, 1, 0));
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, t));
  sim.run();
  EXPECT_GT(sim.swap().stats().swap_outs, 0u);
}

TEST(Simulator, CleanEvictionDoesNotWriteBack) {
  SimConfig cfg = small_config();
  cfg.dram_bytes = 4 * its::kPageSize;
  Simulator sim(cfg, PolicyKind::kSync);
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, page_walker(8, 10)));
  sim.run();
  EXPECT_EQ(sim.swap().stats().swap_outs, 0u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = []() {
    Simulator sim(small_config(), PolicyKind::kIts);
    sim.add_process(std::make_unique<sched::Process>(0, "a", 30, page_walker(16, 500)));
    sim.add_process(std::make_unique<sched::Process>(1, "b", 50, page_walker(16, 700)));
    return sim.run();
  };
  SimMetrics a = run_once();
  SimMetrics b = run_once();
  EXPECT_EQ(a.idle.total(), b.idle.total());
  EXPECT_EQ(a.major_faults, b.major_faults);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.processes[0].metrics.finish_time, b.processes[0].metrics.finish_time);
}

TEST(Simulator, RoundRobinSharesCpu) {
  SimConfig cfg = small_config();
  cfg.slice_min = 1000;
  cfg.slice_max = 2000;
  Simulator sim(cfg, PolicyKind::kSync);
  sim.add_process(std::make_unique<sched::Process>(0, "a", 10, page_walker(4, 2000)));
  sim.add_process(std::make_unique<sched::Process>(1, "b", 20, page_walker(4, 2000)));
  SimMetrics m = sim.run();
  // Slice expiries force real context switches between the two processes.
  EXPECT_GT(m.idle.ctx_switch, 0u);
  EXPECT_GT(m.processes[0].metrics.finish_time, 0u);
  EXPECT_GT(m.processes[1].metrics.finish_time, 0u);
}

TEST(Simulator, ItsLowPriorityGivesWay) {
  SimConfig cfg = small_config();
  cfg.slice_min = 100'000;
  cfg.slice_max = 200'000;
  Simulator sim(cfg, PolicyKind::kIts);
  // Low-priority process faults a lot; high-priority computes a lot so it
  // sits in the run queue when the low-priority process faults.
  sim.add_process(std::make_unique<sched::Process>(0, "low", 10, page_walker(8, 100)));
  auto heavy = std::make_shared<trace::Trace>("heavy");
  for (int i = 0; i < 200; ++i) heavy->push_back(Instr::compute(5000, 1, 0, 0));
  sim.add_process(std::make_unique<sched::Process>(1, "high", 60, heavy));
  SimMetrics m = sim.run();
  EXPECT_GT(m.async_switches, 0u);  // self-sacrificing engaged
}

TEST(Simulator, ExitReclaimReleasesAllFrames) {
  Simulator sim(small_config(), PolicyKind::kSync);
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, page_walker(8, 10)));
  sim.run();
  EXPECT_EQ(sim.frames().used_frames(), 0u);
}

TEST(Simulator, RejectsSparsePids) {
  Simulator sim(small_config(), PolicyKind::kSync);
  EXPECT_THROW(sim.add_process(std::make_unique<sched::Process>(
                   5, "p", 30, page_walker(1, 0))),
               std::invalid_argument);
}

TEST(Simulator, RunWithoutProcessesThrows) {
  Simulator sim(small_config(), PolicyKind::kSync);
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulator, PreexecCachePoliciesHalveLlc) {
  SimConfig cfg = small_config();
  Simulator with(cfg, PolicyKind::kIts);
  Simulator without(cfg, PolicyKind::kSync);
  EXPECT_EQ(with.caches().config().llc.size_bytes,
            cfg.hierarchy.llc.size_bytes / 2);
  EXPECT_EQ(without.caches().config().llc.size_bytes,
            cfg.hierarchy.llc.size_bytes);
}

TEST(Simulator, TlbFlushOnContextSwitch) {
  SimConfig cfg = small_config();
  cfg.slice_min = 1000;
  cfg.slice_max = 1500;
  Simulator sim(cfg, PolicyKind::kSync);
  sim.add_process(std::make_unique<sched::Process>(0, "a", 10, page_walker(3, 1000)));
  sim.add_process(std::make_unique<sched::Process>(1, "b", 20, page_walker(3, 1000)));
  sim.run();
  EXPECT_GT(sim.tlb().stats().flushes, 0u);
}

TEST(Simulator, StolenTimeOnlyForStealingPolicies) {
  auto run_policy = [](PolicyKind k) {
    Simulator sim(small_config(), k);
    sim.add_process(std::make_unique<sched::Process>(0, "p", 30, page_walker(6, 300)));
    return sim.run();
  };
  EXPECT_EQ(run_policy(PolicyKind::kSync).stolen_time, 0u);
  EXPECT_EQ(run_policy(PolicyKind::kAsync).stolen_time, 0u);
  EXPECT_GT(run_policy(PolicyKind::kIts).stolen_time, 0u);
}

TEST(Simulator, CustomPolicyInjection) {
  // A policy that always goes async regardless of priority (sanity for the
  // injectable-policy constructor).
  class AlwaysAsync final : public IoPolicy {
   public:
    PolicyKind kind() const override { return PolicyKind::kAsync; }
    FaultPlan plan_major_fault(const sched::Process&, const sched::Scheduler&,
                               storage::DeviceHealth) override {
      return {.go_async = true};
    }
  };
  Simulator sim(small_config(), std::make_unique<AlwaysAsync>());
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, page_walker(3, 10)));
  SimMetrics m = sim.run();
  EXPECT_EQ(m.async_switches, 3u);
}

TEST(Simulator, PollingRecoveryQuantisesWaits) {
  SimConfig interrupt_cfg = small_config();
  SimConfig polling_cfg = small_config();
  polling_cfg.preexec.recovery_trigger = cpu::RecoveryTrigger::kPolling;
  polling_cfg.preexec.poll_period = 2000;

  auto run_with = [](const SimConfig& cfg) {
    Simulator sim(cfg, PolicyKind::kIts);
    sim.add_process(std::make_unique<sched::Process>(0, "p", 30, page_walker(6, 30000)));
    return sim.run();
  };
  SimMetrics intr = run_with(interrupt_cfg);
  SimMetrics poll = run_with(polling_cfg);
  // §3.4.3: polling resumes at the next timer check, so waits round up.
  EXPECT_GT(poll.idle.busy_wait, intr.idle.busy_wait);
  EXPECT_GE(poll.makespan, intr.makespan);
}

TEST(Simulator, CfsSchedulerRunsBatchesToCompletion) {
  SimConfig cfg = small_config();
  cfg.scheduler = SchedulerKind::kCfs;
  cfg.cfs.sched_latency = 1'000'000;
  cfg.cfs.min_granularity = 50'000;
  Simulator sim(cfg, PolicyKind::kIts);
  sim.add_process(std::make_unique<sched::Process>(0, "a", 10, page_walker(8, 2000)));
  sim.add_process(std::make_unique<sched::Process>(1, "b", 30, page_walker(8, 2000)));
  SimMetrics m = sim.run();
  EXPECT_EQ(m.processes.size(), 2u);
  for (const auto& p : m.processes) EXPECT_GT(p.metrics.finish_time, 0u);
}

TEST(Simulator, StridePrefetcherPolicyWorksEndToEnd) {
  SimConfig cfg = small_config();
  Simulator sim(cfg, make_its_policy({.prefetcher = PrefetchKind::kStride}));
  // Sequential page walker: stride 1 trains after two faults.
  sim.add_process(std::make_unique<sched::Process>(0, "p", 30, page_walker(8, 20000)));
  SimMetrics m = sim.run();
  EXPECT_GT(m.prefetch_issued, 0u);
  EXPECT_LT(m.major_faults, 8u);  // some touches became minor faults
}

TEST(Simulator, InFlightFaultWaitsOnlyRemainder) {
  // Touching a page whose prefetch is still in flight must cost less than a
  // full swap-in.
  SimConfig cfg = small_config();
  Simulator sim(cfg, PolicyKind::kIts);
  // Touch page 0, then immediately page 1 (prefetch landed it in flight).
  sim.add_process(std::make_unique<sched::Process>(
      0, "p", 30,
      make_trace({Instr::load(kBase, 8, 1, 0),
                  Instr::load(kBase + its::kPageSize, 8, 2, 0)})));
  SimMetrics m = sim.run();
  // Both touches are majors (the second hits an in-flight page), but the
  // second wait is only the transfer remainder.
  EXPECT_EQ(m.major_faults, 2u);
  EXPECT_LT(m.idle.busy_wait, 2 * page_io_ns(cfg));
}

}  // namespace
}  // namespace its::core
