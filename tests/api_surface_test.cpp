// Pins the public API surface its_lint's arch-dead-api rule tracks.
//
// Most of these types are reachable only through accessors (`stats()`,
// `totals()`), so ordinary tests consume them via `auto` and never spell
// the name — which is exactly the situation arch-dead-api flags.  Naming
// each type here keeps it covered AND asserts its semantics: field
// defaults, accessor return types, and the arithmetic relations between
// the constants.  A symbol nothing (including this file) wants to name
// any more should be deleted, not re-listed here.
#include <gtest/gtest.h>

#include "cpu/preexec_engine.h"
#include "fault/fault_injector.h"
#include "fs/file_system.h"
#include "fs/page_cache.h"
#include "mem/cache.h"
#include "mem/preexec_cache.h"
#include "mem/tlb.h"
#include "obs/event_trace.h"
#include "obs/invariant_checker.h"
#include "sched/process.h"
#include "sched/scheduler.h"
#include "trace/instr.h"
#include "trace/lackey.h"
#include "trace/trace.h"
#include "trace/trace_io.h"
#include "util/types.h"
#include "vm/frame_pool.h"
#include "vm/page_table.h"
#include "vm/prefetch.h"
#include "vm/swap.h"

#include <memory>
#include <sstream>
#include <type_traits>

namespace its {
namespace {

// ---------------------------------------------------------------- util --

TEST(ApiSurface, CacheLineConstantsAgree) {
  static_assert(kCacheLineSize == 1ull << kCacheLineShift);
  // line_of() is the shift the constants promise.
  EXPECT_EQ(line_of(kCacheLineSize - 1), 0u);
  EXPECT_EQ(line_of(kCacheLineSize), 1u);
}

TEST(ApiSurface, SizeAndDurationLiterals) {
  static_assert(1_GiB == (1ull << 30));
  static_assert(1_GiB == 1024 * 1_MiB);
  static_assert(1_ns == Duration{1});
  static_assert(1_s == 1'000'000'000_ns);
  static_assert(1_s == 1000 * 1_ms);
}

TEST(ApiSurface, PfnOfMirrorsVpnOf) {
  static_assert(std::is_same_v<decltype(pfn_of(PhysAddr{0})), Pfn>);
  EXPECT_EQ(pfn_of(3 * kPageSize + 17), 3u);
  EXPECT_EQ(pfn_of(kPageOffsetMask), 0u);
}

// --------------------------------------------------------------- trace --

TEST(ApiSurface, LackeyOptionsBoundParsing) {
  std::istringstream is(
      "I  04000000,4\n"
      " L 05000000,8\n"
      " S 05000100,4\n"
      "garbage line\n");
  trace::LackeyOptions opts;
  opts.instr_fold = 1;
  opts.max_records = 2;
  opts.lenient = true;
  trace::Trace t = trace::parse_lackey(is, "capped", opts);
  EXPECT_EQ(t.size(), opts.max_records);
}

TEST(ApiSurface, TraceIoErrcNamesAndNameCap) {
  static_assert(trace::kMaxTraceNameLen == 1u << 16);
  EXPECT_EQ(trace::errc_name(trace::TraceIoErrc::kBadMagic), "bad_magic");
  EXPECT_EQ(trace::errc_name(trace::TraceIoErrc::kNameTooLong),
            "name_too_long");
  EXPECT_EQ(trace::errc_name(trace::TraceIoErrc::kWriteFailed),
            "write_failed");
}

// ----------------------------------------------------------------- mem --

TEST(ApiSurface, TlbStatsCountHitsAndMisses) {
  mem::Tlb tlb(4);
  EXPECT_FALSE(tlb.lookup(7));
  tlb.insert(7);
  EXPECT_TRUE(tlb.lookup(7));
  const mem::TlbStats& s = tlb.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.flushes, 0u);
}

TEST(ApiSurface, CacheStatsMissRatio) {
  mem::SetAssocCache cache(mem::CacheConfig{});
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  const mem::CacheStats& s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_DOUBLE_EQ(s.miss_ratio(), 0.5);
}

TEST(ApiSurface, PreexecCacheStatsCountStores) {
  mem::PreexecCache px;
  px.store(0x1000, 8, /*invalid=*/false);
  const mem::PreexecCacheStats& s = px.stats();
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.invalid_bytes_written, 0u);
}

// ----------------------------------------------------------------- cpu --

TEST(ApiSurface, PreexecTotalsIsTheEngineAccumulator) {
  static_assert(
      std::is_same_v<decltype(std::declval<const cpu::PreexecEngine&>()
                                  .totals()),
                     const cpu::PreexecTotals&>);
  cpu::PreexecTotals t;
  EXPECT_EQ(t.episodes, 0u);
  EXPECT_EQ(t.time_used, 0u);
}

// --------------------------------------------------------------- fault --

TEST(ApiSurface, LatencyModelConfigDefaultsToNoTail) {
  fault::LatencyModelConfig lat;
  EXPECT_EQ(lat.tail, fault::TailKind::kNone);
  EXPECT_EQ(lat.tail_prob, 0.0);
  fault::FaultProfile profile;
  profile.latency = lat;
  EXPECT_EQ(profile.latency.tail, fault::TailKind::kNone);
}

TEST(ApiSurface, FaultStatsStartInert) {
  fault::FaultInjector inert;
  EXPECT_FALSE(inert.enabled());
  const fault::FaultStats& s = inert.stats();
  EXPECT_EQ(s.media_errors, 0u);
  EXPECT_EQ(s.extra_latency, 0u);
}

// ------------------------------------------------------------------ fs --

TEST(ApiSurface, MaxFilesMatchesFileIdRange) {
  // Every FileId value must index sizes_ — the cap IS the id range.
  static_assert(fs::kMaxFiles ==
                std::size_t{1} << (8 * sizeof(fs::FileId)));
  fs::FileSystem f;
  f.ensure_file(fs::FileId{0}, 4096);
  f.ensure_file(fs::FileId{255}, 4096);
  EXPECT_EQ(f.file_count(), 2u);
}

TEST(ApiSurface, FsStatsAreCallerVisible) {
  fs::FileSystem f;
  f.stats().reads += 3;
  const fs::FsStats& s = std::as_const(f).stats();
  EXPECT_EQ(s.reads, 3u);
  EXPECT_EQ(s.writes, 0u);
}

TEST(ApiSurface, WritebackCarriesTheEvictedKey) {
  fs::PageCache pc(kPageSize);  // one-page budget
  EXPECT_FALSE(pc.insert(1, 0, /*dirty=*/true).has_value());
  std::optional<fs::Writeback> wb = pc.insert(2, 0);
  ASSERT_TRUE(wb.has_value());
  EXPECT_EQ(wb->key, 1u);
  ASSERT_TRUE(pc.mark_dirty(2));
  std::vector<fs::Writeback> dirty = pc.flush();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0].key, 2u);
  const fs::PageCacheStats& s = pc.stats();
  EXPECT_EQ(s.insertions, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.dirty_writebacks, 1u);  // flush() reports, only evictions count
}

// ------------------------------------------------------------------ vm --

TEST(ApiSurface, FramePoolStatsCountAllocations) {
  vm::FramePool pool(4 * kPageSize);
  ASSERT_TRUE(pool.try_alloc(1, 0).has_value());
  const vm::FramePoolStats& s = pool.stats();
  EXPECT_EQ(s.allocations, 1u);
  EXPECT_EQ(s.releases, 0u);
}

TEST(ApiSurface, EntriesPerLevelMatchesIndexWidth) {
  // Each level index is 9 bits (x86-64 4-level paging).
  static_assert(vm::kEntriesPerLevel == 512u);
  EXPECT_EQ(vm::pgd_index(~VirtAddr{0}), vm::kEntriesPerLevel - 1);
}

TEST(ApiSurface, PrefetcherObsIsTheSharedTraceHook) {
  vm::VaPrefetcher va;
  obs::EventTrace trace;
  SimTime clock = 0;
  vm::PrefetcherObs& hook = va;  // the base-class observability interface
  hook.attach_trace(&trace, &clock);
  EXPECT_EQ(trace.events().size(), 0u);
}

TEST(ApiSurface, SwapStatsCountSlotTraffic) {
  vm::SwapArea swap;
  swap.record_swap_out(1, 7);
  swap.record_swap_in(1, 7);
  const vm::SwapStats& s = swap.stats();
  EXPECT_EQ(s.slots_allocated, 1u);
  EXPECT_EQ(s.swap_outs, 1u);
  EXPECT_EQ(s.swap_ins, 1u);
}

// --------------------------------------------------------------- sched --

TEST(ApiSurface, SchedulerStatsCountDecisions) {
  auto t = std::make_shared<trace::Trace>("tiny");
  t->push_back(trace::Instr::compute(4, 2, 1, 0));
  sched::Process p(1, "t", 10, t);
  sched::RRScheduler rr;
  rr.add(&p);
  ASSERT_EQ(rr.pick(), &p);
  rr.yield(&p);
  const sched::SchedulerStats& s = rr.stats();
  EXPECT_EQ(s.picks, 1u);
  EXPECT_EQ(s.yields, 1u);
  EXPECT_EQ(s.blocks, 0u);
}

// ----------------------------------------------------------------- obs --

TEST(ApiSurface, RunTotalsDriveTheCheckerDirectly) {
  // The non-template overload: an empty trace with all-zero totals is
  // trivially consistent.
  obs::EventTrace trace;
  obs::RunTotals totals;
  obs::CheckConfig cfg;
  EXPECT_TRUE(obs::check_invariants(trace, totals, cfg).ok());

  // An unaccounted makespan breaks reconciliation (4) beyond the
  // granularity slack.
  totals.makespan = 10;
  cfg.granularity = 1;
  EXPECT_FALSE(obs::check_invariants(trace, totals, cfg).ok());
  cfg.granularity = 10;
  EXPECT_TRUE(obs::check_invariants(trace, totals, cfg).ok());
}

}  // namespace
}  // namespace its
