// util::QuantileDigest: exact-vs-streaming equivalence.
//
// The digest replaced the sort-and-index quantile in trace/analysis.cpp and
// carries the serving scenario's latency percentiles (serve/scenario.h), so
// these tests pin both contracts: in exact mode it IS the order statistic
// ⌊q·(n−1)⌋ the analysis always computed, and in sketch mode it stays
// within one log-linear sub-bucket of it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/quantile.h"
#include "util/rng.h"

namespace its::util {
namespace {

/// The reference: the exact order statistic at index ⌊q·(n−1)⌋ of the
/// sorted population — the formula ReuseProfile::quantile_pages used before
/// the digest existed.
std::uint64_t sorted_quantile(std::vector<std::uint64_t> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// A latency-shaped population: mostly small values with a heavy tail, the
/// worst case for a histogram sketch (wide dynamic range).
std::vector<std::uint64_t> latency_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t base = 1'000 + rng.next_u64() % 500'000;  // ~µs service
    if (rng.next_double() < 0.02) base *= 1'000;            // ~ms tail
    v.push_back(base);
  }
  return v;
}

const double kQuantiles[] = {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0};

TEST(QuantileDigest, EmptyDigestAnswersZero) {
  QuantileDigest d;
  EXPECT_TRUE(d.empty());
  EXPECT_TRUE(d.exact());
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.min(), 0u);
  EXPECT_EQ(d.max(), 0u);
  EXPECT_EQ(d.quantile(0.99), 0u);
}

TEST(QuantileDigest, ExactModeIsTheSortedOrderStatistic) {
  auto samples = latency_samples(1'000, 7);
  QuantileDigest d;  // default limit 4096 > 1000: stays exact
  for (std::uint64_t s : samples) d.add(s);
  ASSERT_TRUE(d.exact());
  EXPECT_EQ(d.count(), samples.size());
  for (double q : kQuantiles)
    EXPECT_EQ(d.quantile(q), sorted_quantile(samples, q)) << "q=" << q;
  EXPECT_EQ(d.min(), *std::min_element(samples.begin(), samples.end()));
  EXPECT_EQ(d.max(), *std::max_element(samples.begin(), samples.end()));
}

TEST(QuantileDigest, SketchModeStaysWithinOneSubBucket) {
  auto samples = latency_samples(100'000, 11);
  QuantileDigest d(1'024);  // force the spill long before the end
  for (std::uint64_t s : samples) d.add(s);
  ASSERT_FALSE(d.exact());
  EXPECT_EQ(d.count(), samples.size());
  // min/max are tracked outside the buckets and stay exact.
  EXPECT_EQ(d.min(), *std::min_element(samples.begin(), samples.end()));
  EXPECT_EQ(d.max(), *std::max_element(samples.begin(), samples.end()));
  for (double q : kQuantiles) {
    std::uint64_t want = sorted_quantile(samples, q);
    std::uint64_t got = d.quantile(q);
    // Bucket lower bound: never above the truth, and the 32-per-octave
    // log-linear grid bounds the gap at one sub-bucket (~1/32 relative).
    EXPECT_LE(got, want) << "q=" << q;
    EXPECT_GE(got, want - want / 16) << "q=" << q << " got=" << got
                                     << " want=" << want;
  }
}

TEST(QuantileDigest, ExactAndStreamingAgreeOnTheSamePopulation) {
  // The serving suite's contract: whether a tier's latencies fit the exact
  // buffer or spill, the reported percentile ladder describes the same
  // distribution.  Feed one population to both configurations.
  auto samples = latency_samples(20'000, 3);
  QuantileDigest exact(samples.size());  // never spills
  QuantileDigest sketch(0);              // spills on the first add
  for (std::uint64_t s : samples) {
    exact.add(s);
    sketch.add(s);
  }
  ASSERT_TRUE(exact.exact());
  ASSERT_FALSE(sketch.exact());
  for (double q : kQuantiles) {
    std::uint64_t e = exact.quantile(q);
    std::uint64_t s = sketch.quantile(q);
    EXPECT_LE(s, e) << "q=" << q;
    EXPECT_GE(s, e - e / 16) << "q=" << q << " exact=" << e << " sketch=" << s;
  }
}

TEST(QuantileDigest, MergeOfExactPartsMatchesSingleDigest) {
  auto a = latency_samples(500, 21);
  auto b = latency_samples(700, 22);
  QuantileDigest da, db, all;
  for (std::uint64_t s : a) {
    da.add(s);
    all.add(s);
  }
  for (std::uint64_t s : b) {
    db.add(s);
    all.add(s);
  }
  da.merge(db);
  ASSERT_TRUE(da.exact());  // 1200 < default limit: merge stays exact
  EXPECT_EQ(da.count(), all.count());
  for (double q : kQuantiles) EXPECT_EQ(da.quantile(q), all.quantile(q));
  EXPECT_EQ(da.min(), all.min());
  EXPECT_EQ(da.max(), all.max());
}

TEST(QuantileDigest, MergeOfSketchPartsMatchesSingleSketch) {
  // Bucket counts add, so merging spilled digests is byte-equivalent to
  // one digest that saw the concatenated stream — the per-tier → fleet
  // aggregation path in serve::run_serve.
  auto a = latency_samples(5'000, 31);
  auto b = latency_samples(5'000, 32);
  QuantileDigest da(100), db(100), all(100);
  for (std::uint64_t s : a) {
    da.add(s);
    all.add(s);
  }
  for (std::uint64_t s : b) {
    db.add(s);
    all.add(s);
  }
  da.merge(db);
  ASSERT_FALSE(da.exact());
  EXPECT_EQ(da.count(), all.count());
  for (double q : kQuantiles) EXPECT_EQ(da.quantile(q), all.quantile(q));
}

TEST(QuantileDigest, MergeSpillsWhenCombinedPopulationOverflowsLimit) {
  QuantileDigest da(8), db(8);
  for (std::uint64_t v = 1; v <= 6; ++v) da.add(v * 100);
  for (std::uint64_t v = 1; v <= 6; ++v) db.add(v * 100);
  ASSERT_TRUE(da.exact());
  da.merge(db);  // 12 > 8: must fold into the sketch, not overflow
  EXPECT_FALSE(da.exact());
  EXPECT_EQ(da.count(), 12u);
  EXPECT_EQ(da.max(), 600u);
}

TEST(QuantileDigest, SmallValuesMapOneToOneInSketchMode) {
  // Values below one octave's sub-bucket width have dedicated buckets, so
  // tiny populations survive the spill without any error at all.
  QuantileDigest d(0);
  for (std::uint64_t v = 0; v < 32; ++v) d.add(v);
  ASSERT_FALSE(d.exact());
  EXPECT_EQ(d.quantile(0.0), 0u);
  EXPECT_EQ(d.quantile(1.0), 31u);
  EXPECT_EQ(d.quantile(0.5), sorted_quantile({0,  1,  2,  3,  4,  5,  6,  7,
                                              8,  9,  10, 11, 12, 13, 14, 15,
                                              16, 17, 18, 19, 20, 21, 22, 23,
                                              24, 25, 26, 27, 28, 29, 30, 31},
                                             0.5));
}

}  // namespace
}  // namespace its::util
