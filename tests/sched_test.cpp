// Tests for src/sched: PCB construction and the SCHED_RR scheduler with
// NICE-derived slices.
#include <gtest/gtest.h>

#include <memory>

#include "sched/process.h"
#include "sched/scheduler.h"
#include "trace/instr.h"
#include "trace/trace.h"

namespace its::sched {
namespace {

std::shared_ptr<const trace::Trace> tiny_trace() {
  auto t = std::make_shared<trace::Trace>("tiny");
  t->push_back(trace::Instr::load(0x560000000000ull, 8, 1, 0));
  t->push_back(trace::Instr::compute(4, 2, 1, 0));
  return t;
}

TEST(Process, ConstructionBuildsAddressSpace) {
  Process p(3, "tiny", 40, tiny_trace());
  EXPECT_EQ(p.pid(), 3u);
  EXPECT_EQ(p.priority(), 40);
  EXPECT_EQ(p.mm().footprint_pages(), 1u);
  EXPECT_EQ(p.state(), ProcState::kReady);
  EXPECT_EQ(p.pc(), 0u);
  EXPECT_FALSE(p.at_end());
}

TEST(Process, RejectsEmptyTrace) {
  auto empty = std::make_shared<trace::Trace>("empty");
  EXPECT_THROW(Process(1, "x", 1, empty), std::invalid_argument);
}

TEST(Process, PcAdvancesToEnd) {
  Process p(1, "t", 10, tiny_trace());
  p.advance_pc();
  p.advance_pc();
  EXPECT_TRUE(p.at_end());
}

TEST(Process, SliceConsumption) {
  Process p(1, "t", 10, tiny_trace());
  p.set_slice(100);
  p.consume_slice(40);
  EXPECT_EQ(p.slice_remaining(), 60u);
  p.consume_slice(1000);  // saturates at zero
  EXPECT_EQ(p.slice_remaining(), 0u);
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : sched_(1000, 9000) {
    for (int i = 0; i < 3; ++i)
      procs_.push_back(std::make_unique<Process>(
          static_cast<its::Pid>(i), "p" + std::to_string(i), 10 * (i + 1),
          tiny_trace()));
  }
  RRScheduler sched_;
  std::vector<std::unique_ptr<Process>> procs_;
};

TEST_F(SchedulerTest, RoundRobinOrder) {
  for (auto& p : procs_) sched_.add(p.get());
  EXPECT_EQ(sched_.pick(), procs_[0].get());
  EXPECT_EQ(sched_.pick(), procs_[1].get());
  sched_.yield(procs_[0].get());
  EXPECT_EQ(sched_.pick(), procs_[2].get());
  EXPECT_EQ(sched_.pick(), procs_[0].get());  // requeued at tail
  EXPECT_EQ(sched_.pick(), nullptr);
}

TEST_F(SchedulerTest, PickGrantsPriorityScaledSlice) {
  for (auto& p : procs_) sched_.add(p.get());
  // Priorities 10, 20, 30 → slices 1000, 5000, 9000 (linear interpolation).
  Process* a = sched_.pick();
  Process* b = sched_.pick();
  Process* c = sched_.pick();
  EXPECT_EQ(a->slice_remaining(), 1000u);
  EXPECT_EQ(b->slice_remaining(), 5000u);
  EXPECT_EQ(c->slice_remaining(), 9000u);
  EXPECT_EQ(a->state(), ProcState::kRunning);
}

TEST_F(SchedulerTest, SinglePriorityGetsMaxSlice) {
  RRScheduler s(5, 800);
  Process p(0, "only", 42, tiny_trace());
  s.add(&p);
  EXPECT_EQ(s.slice_for(p), 800u);
}

TEST_F(SchedulerTest, PeekNextDoesNotDequeue) {
  for (auto& p : procs_) sched_.add(p.get());
  EXPECT_EQ(sched_.peek_next(), procs_[0].get());
  EXPECT_EQ(sched_.ready_count(), 3u);
}

TEST_F(SchedulerTest, PeekEmptyIsNull) { EXPECT_EQ(sched_.peek_next(), nullptr); }

TEST_F(SchedulerTest, BlockAndWake) {
  sched_.add(procs_[0].get());
  sched_.add(procs_[1].get());
  Process* p = sched_.pick();
  sched_.block(p);
  EXPECT_EQ(p->state(), ProcState::kBlocked);
  EXPECT_EQ(sched_.ready_count(), 1u);
  sched_.wake(p);
  EXPECT_EQ(p->state(), ProcState::kReady);
  // Woken process goes to the tail.
  EXPECT_EQ(sched_.pick(), procs_[1].get());
  EXPECT_EQ(sched_.pick(), p);
}

TEST_F(SchedulerTest, WakingNonBlockedThrows) {
  sched_.add(procs_[0].get());
  EXPECT_THROW(sched_.wake(procs_[0].get()), std::logic_error);
}

TEST_F(SchedulerTest, AddNullThrows) {
  EXPECT_THROW(sched_.add(nullptr), std::invalid_argument);
}

TEST_F(SchedulerTest, StatsCount) {
  for (auto& p : procs_) sched_.add(p.get());
  Process* p = sched_.pick();
  sched_.yield(p);
  p = sched_.pick();
  sched_.block(p);
  sched_.wake(p);
  EXPECT_EQ(sched_.stats().picks, 2u);
  EXPECT_EQ(sched_.stats().yields, 1u);
  EXPECT_EQ(sched_.stats().blocks, 1u);
  EXPECT_EQ(sched_.stats().wakes, 1u);
}

class SliceInterpolation : public ::testing::TestWithParam<int> {};

TEST_P(SliceInterpolation, SliceWithinConfiguredRange) {
  RRScheduler s(5'000'000, 800'000'000);  // the paper's 5–800 ms
  std::vector<std::unique_ptr<Process>> procs;
  for (int i = 0; i < 6; ++i)
    procs.push_back(std::make_unique<Process>(static_cast<its::Pid>(i), "p",
                                              10 * (i + 1), tiny_trace()));
  for (auto& p : procs) s.add(p.get());
  const std::size_t idx = static_cast<std::size_t>(GetParam());
  its::Duration slice = s.slice_for(*procs[idx]);
  EXPECT_GE(slice, 5'000'000u);
  EXPECT_LE(slice, 800'000'000u);
  if (idx > 0) {
    EXPECT_GT(slice, s.slice_for(*procs[idx - 1]));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSixPriorities, SliceInterpolation,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace its::sched
