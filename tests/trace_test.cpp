// Tests for src/trace: instruction records, the Trace container, binary
// round-trips, and the nine workload generators.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <unordered_set>

#include "trace/instr.h"
#include "trace/trace.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"

namespace its::trace {
namespace {

TEST(Instr, FactoriesSetFields) {
  Instr c = Instr::compute(5, 3, 1, 2);
  EXPECT_EQ(c.op, Op::kCompute);
  EXPECT_EQ(c.repeat, 5);
  EXPECT_EQ(c.dst, 3);
  EXPECT_FALSE(c.is_mem());

  Instr l = Instr::load(0x1000, 8, 4, 2, 1);
  EXPECT_EQ(l.op, Op::kLoad);
  EXPECT_EQ(l.addr, 0x1000u);
  EXPECT_EQ(l.size, 8);
  EXPECT_EQ(l.dst, 4);
  EXPECT_EQ(l.src1, 2);
  EXPECT_EQ(l.src2, 1);
  EXPECT_TRUE(l.is_mem());

  Instr s = Instr::store(0x2000, 16, 7, 3);
  EXPECT_EQ(s.op, Op::kStore);
  EXPECT_EQ(s.src1, 7);
  EXPECT_EQ(s.src2, 3);
  EXPECT_TRUE(s.is_mem());
}

TEST(Instr, ComputeRepeatNeverZero) {
  Instr c = Instr::compute(0, 1, 0, 0);
  EXPECT_EQ(c.repeat, 1);
}

TEST(TraceContainer, StatsCountEverything) {
  Trace t("test");
  t.push_back(Instr::compute(10, 1, 0, 0));
  t.push_back(Instr::load(0x1000, 8, 2, 0));
  t.push_back(Instr::store(0x1F00, 64, 2));  // within page 1
  t.push_back(Instr::load(0x5000, 8, 3, 0));
  TraceStats s = t.stats();
  EXPECT_EQ(s.records, 4u);
  EXPECT_EQ(s.instructions, 13u);  // 10 folded + 3 memory
  EXPECT_EQ(s.mem_refs, 3u);
  EXPECT_EQ(s.loads, 2u);
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.footprint_pages, 2u);  // pages 1 and 5
  EXPECT_EQ(s.min_addr, 0x1000u);
  EXPECT_EQ(s.max_addr, 0x5007u);
}

TEST(TraceContainer, PageSpanningAccessCountsBothPages) {
  Trace t;
  t.push_back(Instr::load(0x1FFC, 8, 1, 0));  // crosses page 1 → 2
  EXPECT_EQ(t.stats().footprint_pages, 2u);
  auto pages = t.touched_pages();
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0], 1u);
  EXPECT_EQ(pages[1], 2u);
}

TEST(TraceContainer, TouchedPagesSortedUnique) {
  Trace t;
  t.push_back(Instr::load(0x5000, 8, 1, 0));
  t.push_back(Instr::load(0x1000, 8, 1, 0));
  t.push_back(Instr::load(0x5008, 8, 1, 0));
  auto pages = t.touched_pages();
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0], 1u);
  EXPECT_EQ(pages[1], 5u);
}

TEST(TraceContainer, EmptyTraceStats) {
  Trace t;
  TraceStats s = t.stats();
  EXPECT_EQ(s.records, 0u);
  EXPECT_EQ(s.footprint_pages, 0u);
  EXPECT_TRUE(t.empty());
}

TEST(TraceIo, RoundTripPreservesEverything) {
  Trace t("roundtrip");
  for (int i = 0; i < 1000; ++i) {
    t.push_back(Instr::load(0x1000 + static_cast<its::VirtAddr>(i) * 64, 8,
                            static_cast<std::uint8_t>(i % 31 + 1), 0));
    t.push_back(Instr::compute(static_cast<std::uint16_t>(i % 7 + 1), 1, 2, 3));
  }
  std::stringstream ss;
  write_trace(ss, t);
  Trace back = read_trace(ss);
  EXPECT_EQ(back, t);
  EXPECT_EQ(back.name(), "roundtrip");
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream ss;
  ss << "garbage-not-a-trace-file-at-all";
  EXPECT_THROW(read_trace(ss), TraceIoError);
}

TEST(TraceIo, RejectsTruncatedStream) {
  Trace t("x");
  t.push_back(Instr::compute(1, 1, 0, 0));
  std::stringstream ss;
  write_trace(ss, t);
  std::string whole = ss.str();
  std::stringstream cut(whole.substr(0, whole.size() - 5));
  EXPECT_THROW(read_trace(cut), TraceIoError);
}

TEST(TraceIo, FileRoundTrip) {
  Trace t("file-test");
  t.push_back(Instr::store(0xdead000, 4, 9));
  auto path = std::filesystem::temp_directory_path() / "its_trace_test.bin";
  save_trace_file(path.string(), t);
  Trace back = load_trace_file(path.string());
  EXPECT_EQ(back, t);
  std::filesystem::remove(path);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace_file("/nonexistent/dir/trace.bin"), TraceIoError);
}

// -- Hardened loader: typed errors with byte offsets ------------------------

namespace {
/// Serialises a one-record trace ("x", one compute op) and returns the raw
/// bytes.  Layout: magic @0 (8), name_len @8 (4), name @12 (1), count @13
/// (8), record @21 (16).
std::string one_record_bytes() {
  Trace t("x");
  t.push_back(Instr::compute(1, 1, 0, 0));
  std::stringstream ss;
  write_trace(ss, t);
  return ss.str();
}

TraceIoError capture_error(const std::string& bytes) {
  std::stringstream ss(bytes);
  try {
    read_trace(ss);
  } catch (const TraceIoError& e) {
    return e;
  }
  throw std::logic_error("expected read_trace to throw");
}
}  // namespace

TEST(TraceIo, BadMagicCarriesCodeAndOffset) {
  TraceIoError e = capture_error("garbage-not-a-trace-file-at-all");
  EXPECT_EQ(e.code(), TraceIoErrc::kBadMagic);
  EXPECT_EQ(e.offset(), 0u);
}

TEST(TraceIo, TruncatedHeaderReportsFieldOffset) {
  // Cut inside the name_len field: the error points at byte 8 where the
  // field begins.
  TraceIoError e = capture_error(one_record_bytes().substr(0, 10));
  EXPECT_EQ(e.code(), TraceIoErrc::kTruncated);
  EXPECT_EQ(e.offset(), 8u);
}

TEST(TraceIo, OversizedNameLenRejectedBeforeAllocation) {
  std::string bytes = one_record_bytes();
  // name_len := 0xFFFFFFFF — an allocation bomb if taken at face value.
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = '\xff';
  TraceIoError e = capture_error(bytes);
  EXPECT_EQ(e.code(), TraceIoErrc::kNameTooLong);
  EXPECT_EQ(e.offset(), 8u);
}

TEST(TraceIo, OversizedCountRejectedBeforeAllocation) {
  std::string bytes = one_record_bytes();
  // count := 2^56 — promises far more records than the stream holds.
  for (std::size_t i = 0; i < 8; ++i) bytes[13 + i] = (i == 7) ? '\x01' : '\0';
  TraceIoError e = capture_error(bytes);
  EXPECT_EQ(e.code(), TraceIoErrc::kCountTooLarge);
  EXPECT_EQ(e.offset(), 13u);
}

TEST(TraceIo, TruncatedRecordPayloadRejected) {
  // Cutting the last bytes of the record leaves count promising one record
  // with fewer than sizeof(Instr) bytes behind it.
  std::string whole = one_record_bytes();
  TraceIoError e = capture_error(whole.substr(0, whole.size() - 5));
  EXPECT_EQ(e.code(), TraceIoErrc::kCountTooLarge);
  EXPECT_EQ(e.offset(), 13u);
}

TEST(TraceIo, OutOfRangeOpcodeRejected) {
  std::string bytes = one_record_bytes();
  bytes[21 + 8] = '\x09';  // op byte of record 0: beyond kFileWrite
  TraceIoError e = capture_error(bytes);
  EXPECT_EQ(e.code(), TraceIoErrc::kBadOpcode);
  EXPECT_EQ(e.offset(), 21u);
}

TEST(TraceIo, ComputeWithZeroRepeatRejected) {
  std::string bytes = one_record_bytes();
  bytes[21 + 14] = '\0';  // repeat u16 of record 0
  bytes[21 + 15] = '\0';
  TraceIoError e = capture_error(bytes);
  EXPECT_EQ(e.code(), TraceIoErrc::kBadRecord);
  EXPECT_EQ(e.offset(), 21u);
}

TEST(TraceIo, ErrorMessageNamesCodeAndOffset) {
  TraceIoError e = capture_error(one_record_bytes().substr(0, 10));
  std::string what = e.what();
  EXPECT_NE(what.find("truncated"), std::string::npos);
  EXPECT_NE(what.find("byte 8"), std::string::npos);
}

TEST(Workloads, RegistryHasNineEntries) {
  auto all = all_workloads();
  ASSERT_EQ(all.size(), kNumWorkloads);
  std::unordered_set<std::string_view> names;
  unsigned data_intensive = 0;
  for (const auto& s : all) {
    names.insert(s.name);
    data_intensive += s.data_intensive ? 1 : 0;
    EXPECT_GT(s.footprint_bytes, 0u);
    EXPECT_LE(s.hot_bytes, s.footprint_bytes);
    EXPECT_GT(s.records, 0u);
  }
  EXPECT_EQ(names.size(), kNumWorkloads);  // names unique
  EXPECT_EQ(data_intensive, 3u);           // paper: three data-intensive traces
}

TEST(Workloads, FindByName) {
  EXPECT_EQ(find_workload("caffe"), WorkloadId::kCaffe);
  EXPECT_EQ(find_workload("graph500"), WorkloadId::kGraph500Sssp);
  EXPECT_EQ(find_workload("not-a-workload"), std::nullopt);
}

class GeneratorTest : public ::testing::TestWithParam<WorkloadId> {};

TEST_P(GeneratorTest, ProducesRequestedLength) {
  GeneratorConfig cfg;
  cfg.length_scale = 0.05;
  Trace t = generate(GetParam(), cfg);
  const WorkloadSpec& spec = spec_for(GetParam());
  auto want = static_cast<std::uint64_t>(static_cast<double>(spec.records) * 0.05);
  EXPECT_GE(t.size(), want);
  EXPECT_LT(t.size(), want + 64);  // generators overshoot at most one burst
  EXPECT_EQ(t.name(), spec.name);
}

TEST_P(GeneratorTest, AddressesStayInsideRegion) {
  GeneratorConfig cfg;
  cfg.length_scale = 0.05;
  Trace t = generate(GetParam(), cfg);
  const WorkloadSpec& spec = spec_for(GetParam());
  for (const auto& in : t.records()) {
    if (!in.is_mem()) continue;
    EXPECT_GE(in.addr, kHeapBase);
    EXPECT_LT(in.addr + in.size, kHeapBase + spec.footprint_bytes);
  }
}

TEST_P(GeneratorTest, DeterministicInSeed) {
  GeneratorConfig cfg;
  cfg.length_scale = 0.02;
  cfg.seed = 777;
  EXPECT_EQ(generate(GetParam(), cfg), generate(GetParam(), cfg));
}

TEST_P(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig a, b;
  a.length_scale = b.length_scale = 0.02;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(generate(GetParam(), a), generate(GetParam(), b));
}

TEST_P(GeneratorTest, HasBothComputeAndMemory) {
  GeneratorConfig cfg;
  cfg.length_scale = 0.05;
  TraceStats s = generate(GetParam(), cfg).stats();
  EXPECT_GT(s.mem_refs, 0u);
  EXPECT_GT(s.instructions, s.mem_refs);  // some compute exists
  double mem_ratio = static_cast<double>(s.mem_refs) / static_cast<double>(s.records);
  EXPECT_GT(mem_ratio, 0.10);
  EXPECT_LT(mem_ratio, 0.95);
}

TEST_P(GeneratorTest, FootprintScaleShrinksRegion) {
  GeneratorConfig big, small;
  big.length_scale = small.length_scale = 0.05;
  small.footprint_scale = 0.25;
  auto fp_big = generate(GetParam(), big).stats().max_addr;
  auto fp_small = generate(GetParam(), small).stats().max_addr;
  EXPECT_LT(fp_small, fp_big);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, GeneratorTest,
    ::testing::Values(WorkloadId::kCaffe, WorkloadId::kWrf, WorkloadId::kBlender,
                      WorkloadId::kXz, WorkloadId::kDeepSjeng, WorkloadId::kCommunity,
                      WorkloadId::kRandomWalk, WorkloadId::kPageRank,
                      WorkloadId::kGraph500Sssp),
    [](const auto& param_info) {
      return std::string(spec_for(param_info.param).name);
    });

TEST(Workloads, DataIntensiveRegionsAreSparse) {
  // The graph workloads must leave untouched holes in their regions —
  // that is what defeats spatial prefetching (DESIGN.md).
  for (WorkloadId id :
       {WorkloadId::kRandomWalk, WorkloadId::kGraph500Sssp}) {
    GeneratorConfig cfg;
    cfg.length_scale = 1.0;
    Trace t = generate(id, cfg);
    const WorkloadSpec& spec = spec_for(id);
    double touched_frac = static_cast<double>(t.stats().footprint_pages) /
                          static_cast<double>(spec.footprint_bytes >> its::kPageShift);
    EXPECT_LT(touched_frac, 0.75) << spec.name;
  }
}

TEST(Workloads, PointerChasingWorkloadsHaveDependentLoads) {
  // randwalk/graph500 loads must form register dependence chains so the
  // pre-execute engine's INV poisoning has something to bite on.
  for (WorkloadId id : {WorkloadId::kRandomWalk, WorkloadId::kGraph500Sssp,
                        WorkloadId::kDeepSjeng}) {
    GeneratorConfig cfg;
    cfg.length_scale = 0.05;
    Trace t = generate(id, cfg);
    bool dependent = false;
    for (const auto& in : t.records())
      if (in.op == Op::kLoad && in.src1 != 0) dependent = true;
    EXPECT_TRUE(dependent) << spec_for(id).name;
  }
}

TEST(Workloads, SequentialWorkloadsUseIndependentAddresses) {
  GeneratorConfig cfg;
  cfg.length_scale = 0.05;
  Trace t = generate(WorkloadId::kWrf, cfg);
  for (const auto& in : t.records()) {
    if (in.op == Op::kLoad) {
      EXPECT_EQ(in.src1, 0) << "wrf loads are stencil-indexed";
    }
  }
}

}  // namespace
}  // namespace its::trace
