// Tests for src/vm: PTE bit layout, the 4-level page table and its cursor,
// the frame pool's CLOCK policy, the swap area, the memory descriptor's
// fault taxonomy, and both prefetchers.
#include <gtest/gtest.h>

#include <vector>

#include "obs/event_trace.h"
#include "util/types.h"
#include "vm/fallback_pool.h"
#include "vm/frame_pool.h"
#include "vm/mm.h"
#include "vm/page_table.h"
#include "vm/prefetch.h"
#include "vm/pte.h"
#include "vm/swap.h"

namespace its::vm {
namespace {

TEST(Pte, DefaultIsSwappedOut) {
  Pte p;
  EXPECT_TRUE(p.swapped_out());
  EXPECT_FALSE(p.present());
  EXPECT_FALSE(p.swap_cached());
  EXPECT_FALSE(p.in_flight());
}

TEST(Pte, MapSetsPresentAndClearsTransferStates) {
  Pte p;
  p.set_in_flight(true);
  p.set_pfn(42);
  p.map(42);
  EXPECT_TRUE(p.present());
  EXPECT_FALSE(p.in_flight());
  EXPECT_FALSE(p.swap_cached());
  EXPECT_EQ(p.pfn(), 42u);
}

TEST(Pte, UnmapClearsEverythingTransient) {
  Pte p;
  p.map(7);
  p.set_accessed(true);
  p.set_dirty(true);
  p.unmap();
  EXPECT_TRUE(p.swapped_out());
  EXPECT_FALSE(p.accessed());
  EXPECT_FALSE(p.dirty());
  EXPECT_EQ(p.pfn(), 0u);
}

TEST(Pte, InvBitIndependent) {
  Pte p;
  p.map(3);
  p.set_inv(true);
  EXPECT_TRUE(p.inv());
  EXPECT_TRUE(p.present());
  p.set_inv(false);
  EXPECT_FALSE(p.inv());
}

TEST(Pte, PfnFieldBoundaries) {
  Pte p;
  its::Pfn big = (1ull << 36) - 1;  // bits 12..47
  p.set_pfn(big);
  EXPECT_EQ(p.pfn(), big);
  EXPECT_FALSE(p.present());  // set_pfn must not disturb flags
}

TEST(PageTableIndices, MatchX86Layout) {
  its::VirtAddr va = 0;
  va |= 0x1ull << 39;  // pgd index 1
  va |= 0x2ull << 30;  // pud index 2
  va |= 0x3ull << 21;  // pmd index 3
  va |= 0x4ull << 12;  // pte index 4
  EXPECT_EQ(pgd_index(va), 1u);
  EXPECT_EQ(pud_index(va), 2u);
  EXPECT_EQ(pmd_index(va), 3u);
  EXPECT_EQ(pte_index(va), 4u);
}

TEST(PageTable, LookupOnEmptyIsNull) {
  PageTable pt;
  EXPECT_EQ(pt.lookup(0x123456789000ull), nullptr);
  EXPECT_EQ(pt.levels_mapped(0x123456789000ull), 1u);
}

TEST(PageTable, EnsureCreatesAllLevels) {
  PageTable pt;
  its::VirtAddr va = 0x560000001000ull;
  Pte& pte = pt.ensure(va);
  EXPECT_EQ(pt.lookup(va), &pte);
  EXPECT_EQ(pt.levels_mapped(va), 4u);
  // PGD + PUD + PMD + PT = 4 tables beyond nothing.
  EXPECT_EQ(pt.tables_allocated(), 4u);
}

TEST(PageTable, SiblingsShareIntermediateTables) {
  PageTable pt;
  pt.ensure(0x560000001000ull);
  auto before = pt.tables_allocated();
  pt.ensure(0x560000002000ull);  // same leaf table
  EXPECT_EQ(pt.tables_allocated(), before);
  pt.ensure(0x560000200000ull);  // next PMD entry: one new leaf PT
  EXPECT_EQ(pt.tables_allocated(), before + 1);
}

TEST(PageTable, CursorWalksSequentialPtes) {
  PageTable pt;
  its::Vpn base = 0x560000000000ull >> 12;
  for (its::Vpn v = base; v < base + 16; ++v) pt.ensure(v << 12).set_pfn(v - base);
  auto cur = pt.cursor_at(base);
  for (its::Vpn want = base; want < base + 16; ++want) {
    its::Vpn got = 0;
    Pte* pte = cur.next(got);
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(got, want);
  }
  EXPECT_EQ(cur.slots_examined(), 16u);
}

TEST(PageTable, CursorCrossesPmdBoundary) {
  PageTable pt;
  // Last PTE of one leaf table and first PTE of the next (Fig. 2 step 7).
  its::VirtAddr last_in_pt = 0x5600001FF000ull;   // pte index 511
  its::VirtAddr first_next = 0x560000200000ull;   // next PMD entry
  pt.ensure(last_in_pt);
  pt.ensure(first_next);
  auto cur = pt.cursor_at(its::vpn_of(last_in_pt));
  its::Vpn got = 0;
  EXPECT_NE(cur.next(got), nullptr);
  EXPECT_EQ(got, its::vpn_of(last_in_pt));
  EXPECT_NE(cur.next(got), nullptr);
  EXPECT_EQ(got, its::vpn_of(first_next));
}

TEST(PageTable, CursorStopsAtUnpopulatedTable) {
  PageTable pt;
  pt.ensure(0x5600001FF000ull);  // only this leaf table exists
  auto cur = pt.cursor_at(its::vpn_of(0x5600001FF000ull));
  its::Vpn got = 0;
  EXPECT_NE(cur.next(got), nullptr);
  EXPECT_EQ(cur.next(got), nullptr);  // next PMD entry absent → give up
}

TEST(FramePool, AllocUntilFull) {
  FramePool pool(4 * its::kPageSize);
  EXPECT_EQ(pool.num_frames(), 4u);
  for (its::Vpn i = 0; i < 4; ++i) EXPECT_TRUE(pool.try_alloc(1, i).has_value());
  EXPECT_FALSE(pool.try_alloc(1, 99).has_value());
  EXPECT_EQ(pool.used_frames(), 4u);
}

TEST(FramePool, ReleaseRecycles) {
  FramePool pool(2 * its::kPageSize);
  auto a = pool.try_alloc(1, 10);
  pool.try_alloc(1, 11);
  pool.release(*a);
  EXPECT_EQ(pool.free_frames(), 1u);
  auto b = pool.try_alloc(2, 20);
  ASSERT_TRUE(b);
  EXPECT_EQ(pool.info(*b).owner, 2u);
  EXPECT_EQ(pool.info(*b).vpn, 20u);
}

TEST(FramePool, ClockSkipsPinned) {
  FramePool pool(2 * its::kPageSize);
  auto a = pool.try_alloc(1, 1);
  auto b = pool.try_alloc(1, 2);
  pool.pin(*a);
  auto victim = pool.clock_victim();
  ASSERT_TRUE(victim);
  EXPECT_EQ(*victim, *b);
}

TEST(FramePool, ClockGivesSecondChance) {
  FramePool pool(2 * its::kPageSize);
  auto a = pool.try_alloc(1, 1);
  auto b = pool.try_alloc(1, 2);
  pool.mark_referenced(*a);
  // a is referenced: first victim must be b (a gets its second chance).
  auto victim = pool.clock_victim();
  ASSERT_TRUE(victim);
  EXPECT_EQ(*victim, *b);
  (void)a;
}

TEST(FramePool, ClockEventuallyTakesReferencedFrame) {
  FramePool pool(1 * its::kPageSize);
  auto a = pool.try_alloc(1, 1);
  pool.mark_referenced(*a);
  auto victim = pool.clock_victim();  // clears ref bit, second sweep takes it
  ASSERT_TRUE(victim);
  EXPECT_EQ(*victim, *a);
}

TEST(FramePool, AllPinnedMeansNoVictim) {
  FramePool pool(2 * its::kPageSize);
  pool.pin(*pool.try_alloc(1, 1));
  pool.pin(*pool.try_alloc(1, 2));
  EXPECT_FALSE(pool.clock_victim().has_value());
}

TEST(FramePool, DoubleReleaseThrows) {
  FramePool pool(its::kPageSize);
  auto a = pool.try_alloc(1, 1);
  pool.release(*a);
  EXPECT_THROW(pool.release(*a), std::logic_error);
}

TEST(FramePool, RejectsZeroSize) { EXPECT_THROW(FramePool(0), std::invalid_argument); }

TEST(SwapArea, SlotAllocationStable) {
  SwapArea swap;
  auto s1 = swap.slot_for(1, 100);
  auto s2 = swap.slot_for(1, 101);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(swap.slot_for(1, 100), s1);  // idempotent
  EXPECT_EQ(swap.slots_in_use(), 2u);
}

TEST(SwapArea, PerProcessNamespaces) {
  SwapArea swap;
  EXPECT_NE(swap.slot_for(1, 100), swap.slot_for(2, 100));
}

TEST(SwapArea, CapacityEnforced) {
  SwapArea swap(2);
  swap.slot_for(1, 1);
  swap.slot_for(1, 2);
  EXPECT_THROW(swap.slot_for(1, 3), std::runtime_error);
}

TEST(SwapArea, SwapInRequiresSlot) {
  SwapArea swap;
  EXPECT_THROW(swap.record_swap_in(1, 5), std::logic_error);
  swap.slot_for(1, 5);
  swap.record_swap_in(1, 5);
  EXPECT_EQ(swap.stats().swap_ins, 1u);
}

TEST(SwapArea, SwapOutAllocatesSlot) {
  SwapArea swap;
  swap.record_swap_out(3, 9);
  EXPECT_TRUE(swap.has_slot(3, 9));
  EXPECT_EQ(swap.stats().swap_outs, 1u);
}

std::vector<its::Vpn> make_footprint(its::Vpn base, unsigned n) {
  std::vector<its::Vpn> v;
  for (unsigned i = 0; i < n; ++i) v.push_back(base + i);
  return v;
}

TEST(MemoryDescriptor, ColdPagesAreMajorFaults) {
  auto fp = make_footprint(0x1000, 8);
  MemoryDescriptor mm(7, fp);
  EXPECT_EQ(mm.pid(), 7u);
  EXPECT_EQ(mm.footprint_pages(), 8u);
  for (its::Vpn v : fp) {
    EXPECT_EQ(mm.state(v), PageState::kSwapped);
    EXPECT_EQ(mm.classify(v), FaultType::kMajor);
  }
}

TEST(MemoryDescriptor, StateTransitions) {
  auto fp = make_footprint(0x2000, 2);
  MemoryDescriptor mm(1, fp);
  Pte* pte = mm.pte(0x2000);
  ASSERT_NE(pte, nullptr);

  pte->set_pfn(5);
  pte->set_in_flight(true);
  EXPECT_EQ(mm.state(0x2000), PageState::kInFlight);
  EXPECT_EQ(mm.classify(0x2000), FaultType::kMajor);

  pte->set_in_flight(false);
  pte->set_swap_cache(true);
  EXPECT_EQ(mm.state(0x2000), PageState::kSwapCache);
  EXPECT_EQ(mm.classify(0x2000), FaultType::kMinor);

  pte->map(5);
  EXPECT_EQ(mm.state(0x2000), PageState::kMapped);
  EXPECT_EQ(mm.classify(0x2000), FaultType::kNone);
}

TEST(MemoryDescriptor, OutsideAddressSpaceIsUnmapped) {
  MemoryDescriptor mm(1, make_footprint(0x3000, 1));
  EXPECT_EQ(mm.state(0x900000), PageState::kUnmapped);
  EXPECT_EQ(mm.classify(0x900000), FaultType::kMajor);
}

TEST(MemoryDescriptor, ResidencyBookkeeping) {
  MemoryDescriptor mm(1, make_footprint(0x4000, 4));
  EXPECT_EQ(mm.resident_pages(), 0u);
  mm.note_mapped();
  mm.note_mapped();
  mm.note_unmapped();
  EXPECT_EQ(mm.resident_pages(), 1u);
}

class VaPrefetcherTest : public ::testing::Test {
 protected:
  VaPrefetcherTest() : mm_(1, make_footprint(kBase, 32)) {}
  static constexpr its::Vpn kBase = 0x560000000ull >> 0;  // arbitrary vpn base
  MemoryDescriptor mm_;
};

TEST_F(VaPrefetcherTest, CollectsPagesAfterVictim) {
  VaPrefetcher pf({.degree = 4});
  PrefetchResult r = pf.collect(mm_, kBase + 2);
  ASSERT_EQ(r.pages.size(), 4u);
  EXPECT_EQ(r.pages[0], kBase + 3);
  EXPECT_EQ(r.pages[3], kBase + 6);
  EXPECT_GT(r.walk_cost, 0u);
}

TEST_F(VaPrefetcherTest, SkipsPresentPages) {
  VaPrefetcher pf({.degree = 3});
  mm_.pte(kBase + 3)->map(1);            // present
  mm_.pte(kBase + 4)->set_swap_cache(true);  // already in DRAM
  mm_.pte(kBase + 5)->set_in_flight(true);   // already in transit
  PrefetchResult r = pf.collect(mm_, kBase + 2);
  ASSERT_EQ(r.pages.size(), 3u);
  EXPECT_EQ(r.pages[0], kBase + 6);
  EXPECT_EQ(r.pages[1], kBase + 7);
  EXPECT_EQ(r.pages[2], kBase + 8);
}

TEST_F(VaPrefetcherTest, WalkBoundStopsSearch) {
  VaPrefetcher pf({.degree = 8, .max_slots = 4});
  for (its::Vpn v = kBase + 3; v < kBase + 32; ++v) mm_.pte(v)->map(1);
  PrefetchResult r = pf.collect(mm_, kBase + 2);
  EXPECT_TRUE(r.pages.empty());
  EXPECT_LE(r.slots_examined, 4u);
}

TEST_F(VaPrefetcherTest, WalkCostScalesWithSlots) {
  VaPrefetcher pf({.degree = 2, .per_slot_cost = 10});
  PrefetchResult r = pf.collect(mm_, kBase);
  EXPECT_EQ(r.walk_cost, r.slots_examined * 10);
}

TEST(PopPrefetcher, FetchesAlignedUnitMinusVictim) {
  MemoryDescriptor mm(1, make_footprint(0x8000, 16));
  PopPrefetcher pf({.unit_pages = 4});
  PrefetchResult r = pf.collect(mm, 0x8005);  // unit [0x8004, 0x8008)
  ASSERT_EQ(r.pages.size(), 3u);
  EXPECT_EQ(r.pages[0], 0x8004u);
  EXPECT_EQ(r.pages[1], 0x8006u);
  EXPECT_EQ(r.pages[2], 0x8007u);
}

TEST(PopPrefetcher, SkipsResidentPages) {
  MemoryDescriptor mm(1, make_footprint(0x8000, 8));
  mm.pte(0x8001)->map(2);
  PopPrefetcher pf({.unit_pages = 4});
  PrefetchResult r = pf.collect(mm, 0x8000);
  ASSERT_EQ(r.pages.size(), 2u);  // 0x8002, 0x8003 (0x8001 present)
}

TEST(StridePrefetcher, NeedsTrainingBeforePredicting) {
  MemoryDescriptor mm(1, make_footprint(0x9000, 64));
  StridePrefetcher pf({.degree = 2, .min_confidence = 2});
  EXPECT_TRUE(pf.collect(mm, 0x9000).pages.empty());  // first observation
  EXPECT_TRUE(pf.collect(mm, 0x9002).pages.empty());  // one delta: confidence 1
  PrefetchResult r = pf.collect(mm, 0x9004);          // confidence 2 → predict
  ASSERT_EQ(r.pages.size(), 2u);
  EXPECT_EQ(r.pages[0], 0x9006u);
  EXPECT_EQ(r.pages[1], 0x9008u);
  EXPECT_EQ(pf.stride_for(1), 2);
}

TEST(StridePrefetcher, StrideChangeResetsConfidence) {
  MemoryDescriptor mm(1, make_footprint(0x9000, 64));
  StridePrefetcher pf({.degree = 2, .min_confidence = 2});
  pf.collect(mm, 0x9000);
  pf.collect(mm, 0x9001);
  pf.collect(mm, 0x9002);            // trained on stride 1
  EXPECT_EQ(pf.stride_for(1), 1);
  EXPECT_TRUE(pf.collect(mm, 0x9010).pages.empty());  // break: retrain
  EXPECT_EQ(pf.stride_for(1), 0);
}

TEST(StridePrefetcher, SkipsResidentPages) {
  MemoryDescriptor mm(1, make_footprint(0x9000, 64));
  mm.pte(0x9006)->map(1);
  StridePrefetcher pf({.degree = 2, .min_confidence = 2});
  pf.collect(mm, 0x9000);
  pf.collect(mm, 0x9002);
  PrefetchResult r = pf.collect(mm, 0x9004);
  ASSERT_EQ(r.pages.size(), 1u);  // 0x9006 resident, only 0x9008 collected
  EXPECT_EQ(r.pages[0], 0x9008u);
}

TEST(StridePrefetcher, PerProcessState) {
  MemoryDescriptor mm1(1, make_footprint(0x9000, 16));
  MemoryDescriptor mm2(2, make_footprint(0x9000, 16));
  StridePrefetcher pf({.degree = 1, .min_confidence = 2});
  pf.collect(mm1, 0x9000);
  pf.collect(mm1, 0x9001);
  pf.collect(mm1, 0x9002);
  EXPECT_EQ(pf.stride_for(1), 1);
  EXPECT_EQ(pf.stride_for(2), 0);  // pid 2 never observed
}

TEST(StridePrefetcher, NegativeStride) {
  MemoryDescriptor mm(1, make_footprint(0x9000, 64));
  StridePrefetcher pf({.degree = 1, .min_confidence = 2});
  pf.collect(mm, 0x9010);
  pf.collect(mm, 0x900E);
  PrefetchResult r = pf.collect(mm, 0x900C);
  ASSERT_EQ(r.pages.size(), 1u);
  EXPECT_EQ(r.pages[0], 0x900Au);
  EXPECT_EQ(pf.stride_for(1), -2);
}

TEST(PopPrefetcher, UnitAtRegionEdgeHandlesMissingPtes) {
  MemoryDescriptor mm(1, make_footprint(0x8000, 2));  // only 2 pages exist
  PopPrefetcher pf({.unit_pages = 8});
  PrefetchResult r = pf.collect(mm, 0x8000);
  // Pages beyond the footprint may not exist — collect must not crash and
  // may include 0x8001 only... (pages after 0x8001 exist as empty leaf
  // slots in the same table, which are legitimate swap-resident targets).
  for (its::Vpn v : r.pages) EXPECT_NE(v, 0x8000u);
}

// ---------------------------------------------------------------------------
// Fallback-pool substrate: carve_tail + the compressed-DRAM pool itself.

TEST(FramePool, CarveTailRemovesHighFramesFromCirculation) {
  FramePool pool(4 * its::kPageSize);
  EXPECT_EQ(pool.carve_tail(2), 2u);
  // Only two frames remain allocatable.
  EXPECT_TRUE(pool.try_alloc(1, 0).has_value());
  EXPECT_TRUE(pool.try_alloc(1, 1).has_value());
  EXPECT_FALSE(pool.try_alloc(1, 2).has_value());
  // Carved frames are pinned: the CLOCK hand never evicts them.
  EXPECT_FALSE(pool.clock_victim().has_value() &&
               pool.info(*pool.clock_victim()).pinned);
}

TEST(FramePool, CarveTailAlwaysLeavesOneUsableFrame) {
  FramePool pool(3 * its::kPageSize);
  EXPECT_EQ(pool.carve_tail(99), 2u);  // clamped: one frame must survive
  FramePool tiny(its::kPageSize);
  EXPECT_EQ(tiny.carve_tail(1), 0u);
}

TEST(FallbackPool, DefaultIsDisabledAndInert) {
  FallbackPool pool;
  EXPECT_FALSE(pool.enabled());
  EXPECT_EQ(pool.capacity_pages(), 0u);
  EXPECT_FALSE(pool.store(1, 7));
  EXPECT_FALSE(pool.load(1, 7));
  EXPECT_FALSE(pool.pop_drain().has_value());
  const FallbackPoolStats& s = pool.stats();
  EXPECT_EQ(s.stores + s.hits + s.drains + s.full_rejects + s.peak_pages, 0u);
}

TEST(FallbackPool, StoreLoadRoundTripEmitsEvents) {
  obs::EventTrace et;
  its::SimTime clock = 500;
  FallbackPool pool({.ratio = 2.0, .compress_cost = 111, .decompress_cost = 55},
                    /*carved_frames=*/2);
  pool.attach_trace(&et, &clock);
  ASSERT_TRUE(pool.enabled());
  EXPECT_EQ(pool.capacity_pages(), 4u);

  EXPECT_TRUE(pool.store(1, 0x10));
  EXPECT_TRUE(pool.contains(1, 0x10));
  EXPECT_FALSE(pool.store(1, 0x10));  // duplicate store is refused
  EXPECT_TRUE(pool.load(1, 0x10));
  EXPECT_FALSE(pool.contains(1, 0x10));
  EXPECT_FALSE(pool.load(1, 0x10));  // gone after the hit

  ASSERT_EQ(et.size(), 2u);
  EXPECT_EQ(et.events()[0].kind, obs::EventKind::kPoolStore);
  EXPECT_EQ(et.events()[0].b, 111u);
  EXPECT_EQ(et.events()[1].kind, obs::EventKind::kPoolLoad);
  EXPECT_EQ(et.events()[1].b, 55u);
  EXPECT_EQ(pool.stats().stores, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(FallbackPool, CapacityIsEnforcedAndDrainIsFifo) {
  FallbackPool pool({.ratio = 1.0}, 2);  // capacity: 2 pages
  EXPECT_TRUE(pool.store(1, 10));
  EXPECT_TRUE(pool.store(2, 20));
  EXPECT_TRUE(pool.full());
  EXPECT_FALSE(pool.store(3, 30));
  EXPECT_EQ(pool.stats().full_rejects, 1u);
  EXPECT_EQ(pool.stats().peak_pages, 2u);

  auto first = pool.pop_drain();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->first, 1u);   // oldest store drains first
  EXPECT_EQ(first->second, 10u);
  auto second = pool.pop_drain();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->first, 2u);
  EXPECT_FALSE(pool.pop_drain().has_value());
  EXPECT_EQ(pool.stats().drains, 2u);
}

TEST(FallbackPool, DropPidDiscardsOnlyThatProcess) {
  FallbackPool pool({.ratio = 4.0}, 2);
  pool.store(1, 10);
  pool.store(2, 20);
  pool.store(1, 11);
  pool.drop_pid(1);
  EXPECT_EQ(pool.pooled_pages(), 1u);
  EXPECT_FALSE(pool.contains(1, 10));
  EXPECT_TRUE(pool.contains(2, 20));
  EXPECT_EQ(pool.stats().drains, 0u);  // a drop is not a drain
  pool.reset();
  EXPECT_EQ(pool.pooled_pages(), 0u);
  EXPECT_EQ(pool.stats().stores, 0u);
}

}  // namespace
}  // namespace its::vm
