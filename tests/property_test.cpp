// Property tests: invariants that must hold for every (policy, scheduler,
// seed, cluster) combination — conservation of work, fault accounting
// identities, metric sanity.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/simulator.h"
#include "trace/workloads.h"

namespace its::core {
namespace {

struct Combo {
  PolicyKind policy;
  SchedulerKind scheduler;
  std::uint64_t seed;
  unsigned cluster;
};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  std::string s{policy_name(info.param.policy)};
  s += info.param.scheduler == SchedulerKind::kCfs ? "_cfs" : "_rr";
  s += "_s" + std::to_string(info.param.seed);
  s += "_c" + std::to_string(info.param.cluster);
  return s;
}

class SimulatorProperty : public ::testing::TestWithParam<Combo> {
 protected:
  /// Two small real workloads with contended DRAM.
  static SimMetrics run(const Combo& c, std::uint64_t* trace_instructions) {
    trace::GeneratorConfig gen;
    gen.length_scale = 0.03;
    gen.footprint_scale = 0.25;
    gen.seed = c.seed;

    SimConfig cfg;
    cfg.slice_min = 50'000;
    cfg.slice_max = 2'000'000;
    cfg.scheduler = c.scheduler;
    cfg.swap_cluster_pages = c.cluster;
    cfg.seed = c.seed;
    cfg.dram_bytes = 8ull << 20;  // tight: forces evictions

    Simulator sim(cfg, c.policy);
    std::uint64_t instrs = 0;
    const trace::WorkloadId ids[] = {trace::WorkloadId::kXz,
                                     trace::WorkloadId::kRandomWalk,
                                     trace::WorkloadId::kDeepSjeng};
    for (unsigned i = 0; i < 3; ++i) {
      auto t = std::make_shared<const trace::Trace>(trace::generate(ids[i], gen));
      instrs += t->stats().instructions;
      sim.add_process(std::make_unique<sched::Process>(
          static_cast<its::Pid>(i), std::string(trace::spec_for(ids[i]).name),
          static_cast<int>(10 + 20 * i), t));
    }
    if (trace_instructions != nullptr) *trace_instructions = instrs;
    return sim.run();
  }
};

TEST_P(SimulatorProperty, InstructionConservation) {
  // Every trace instruction executes architecturally exactly once,
  // regardless of policy, scheduler, faults, or pre-execution.
  std::uint64_t expected = 0;
  SimMetrics m = run(GetParam(), &expected);
  std::uint64_t executed = 0;
  for (const auto& p : m.processes) executed += p.metrics.instructions;
  EXPECT_EQ(executed, expected);
}

TEST_P(SimulatorProperty, EveryTouchedPageFaultsAtLeastOnce) {
  SimMetrics m = run(GetParam(), nullptr);
  for (const auto& p : m.processes) {
    // First touch of each page is a major or minor fault; evictions can
    // only add re-faults.
    EXPECT_GE(p.metrics.major_faults + p.metrics.minor_faults, 1u) << p.name;
  }
  EXPECT_GT(m.major_faults, 0u);
}

TEST_P(SimulatorProperty, PrefetchAccountingBounds) {
  SimMetrics m = run(GetParam(), nullptr);
  // Cluster siblings count as issued readahead, so usefulness is a true
  // ratio: every consumed swap-cache page was issued first.
  EXPECT_LE(m.prefetch_useful, m.prefetch_issued);
  if ((GetParam().policy == PolicyKind::kSync ||
       GetParam().policy == PolicyKind::kAsync ||
       GetParam().policy == PolicyKind::kSyncRunahead) &&
      GetParam().cluster <= 1) {
    EXPECT_EQ(m.prefetch_issued, 0u);
  }
}

TEST_P(SimulatorProperty, FinishTimesWithinMakespan) {
  SimMetrics m = run(GetParam(), nullptr);
  its::SimTime last = 0;
  for (const auto& p : m.processes) {
    EXPECT_GT(p.metrics.finish_time, 0u);
    EXPECT_LE(p.metrics.finish_time, m.makespan);
    last = std::max(last, p.metrics.finish_time);
  }
  EXPECT_EQ(last, m.makespan);
}

TEST_P(SimulatorProperty, IdleComponentsNonNegativeAndBounded) {
  SimMetrics m = run(GetParam(), nullptr);
  EXPECT_EQ(m.idle.total(), m.idle.mem_stall + m.idle.busy_wait +
                                m.idle.ctx_switch + m.idle.no_runnable);
  // Idle time cannot exceed the whole run.
  EXPECT_LE(m.idle.total(), m.makespan);
}

TEST_P(SimulatorProperty, AsyncSwitchesOnlyFromGiveWayPolicies) {
  SimMetrics m = run(GetParam(), nullptr);
  switch (GetParam().policy) {
    case PolicyKind::kSync:
    case PolicyKind::kSyncRunahead:
    case PolicyKind::kSyncPrefetch:
      EXPECT_EQ(m.async_switches, 0u);
      break;
    case PolicyKind::kAsync:
      EXPECT_EQ(m.async_switches, m.major_faults);
      break;
    case PolicyKind::kIts:
      EXPECT_LE(m.async_switches, m.major_faults);
      break;
  }
}

TEST_P(SimulatorProperty, DeterministicReplay) {
  SimMetrics a = run(GetParam(), nullptr);
  SimMetrics b = run(GetParam(), nullptr);
  EXPECT_EQ(a.idle.total(), b.idle.total());
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.major_faults, b.major_faults);
  EXPECT_EQ(a.llc_misses, b.llc_misses);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimulatorProperty,
    ::testing::Values(
        Combo{PolicyKind::kAsync, SchedulerKind::kRoundRobin, 1, 1},
        Combo{PolicyKind::kSync, SchedulerKind::kRoundRobin, 1, 1},
        Combo{PolicyKind::kSyncRunahead, SchedulerKind::kRoundRobin, 1, 1},
        Combo{PolicyKind::kSyncPrefetch, SchedulerKind::kRoundRobin, 1, 1},
        Combo{PolicyKind::kIts, SchedulerKind::kRoundRobin, 1, 1},
        Combo{PolicyKind::kIts, SchedulerKind::kRoundRobin, 2, 1},
        Combo{PolicyKind::kIts, SchedulerKind::kRoundRobin, 3, 4},
        Combo{PolicyKind::kSync, SchedulerKind::kRoundRobin, 2, 8},
        Combo{PolicyKind::kIts, SchedulerKind::kCfs, 1, 1},
        Combo{PolicyKind::kSync, SchedulerKind::kCfs, 1, 1},
        Combo{PolicyKind::kAsync, SchedulerKind::kCfs, 2, 2}),
    combo_name);

}  // namespace
}  // namespace its::core
