// Tests for src/storage: PCIe link model, ULL device channels, and the DMA
// controller composition.
#include <gtest/gtest.h>

#include "fault/fault_injector.h"
#include "obs/event_trace.h"
#include "storage/device_health.h"
#include "storage/dma.h"
#include "storage/pcie_link.h"
#include "storage/ull_device.h"
#include "util/types.h"

namespace its::storage {
namespace {

TEST(PcieLink, TransferTimeMatchesBandwidth) {
  PcieLink link({.lanes = 4, .gbytes_per_sec_per_lane = 3.983});
  // 4 KiB over 15.932 B/ns ≈ 258 ns (ceil).
  EXPECT_EQ(link.transfer_time(4096), 258u);
  EXPECT_EQ(link.transfer_time(0), 0u);
  EXPECT_NEAR(link.bytes_per_ns(), 15.932, 1e-9);
}

TEST(PcieLink, SingleLane) {
  PcieLink link({.lanes = 1, .gbytes_per_sec_per_lane = 1.0});
  EXPECT_EQ(link.transfer_time(1000), 1000u);
}

TEST(PcieLink, TransfersSerialise) {
  PcieLink link({.lanes = 1, .gbytes_per_sec_per_lane = 1.0});
  its::SimTime t1 = link.schedule(0, 100);    // [0, 100)
  its::SimTime t2 = link.schedule(0, 100);    // queued: [100, 200)
  its::SimTime t3 = link.schedule(500, 100);  // link idle at 200: [500, 600)
  EXPECT_EQ(t1, 100u);
  EXPECT_EQ(t2, 200u);
  EXPECT_EQ(t3, 600u);
  EXPECT_EQ(link.bytes_moved(), 300u);
  EXPECT_EQ(link.transfers(), 3u);
}

TEST(PcieLink, ResetClearsState) {
  PcieLink link;
  link.schedule(0, 4096);
  link.reset();
  EXPECT_EQ(link.busy_until(), 0u);
  EXPECT_EQ(link.bytes_moved(), 0u);
}

TEST(PcieLink, RejectsZeroLanes) {
  EXPECT_THROW(PcieLink({.lanes = 0}), std::invalid_argument);
  EXPECT_THROW(PcieLink({.lanes = 4, .gbytes_per_sec_per_lane = 0.0}),
               std::invalid_argument);
}

TEST(UllDevice, SingleReadTakesMediaLatency) {
  UllDevice dev({.read_latency = 3000, .write_latency = 5000, .channels = 4});
  EXPECT_EQ(dev.schedule(100, false), 3100u);
  EXPECT_EQ(dev.reads(), 1u);
  EXPECT_EQ(dev.writes(), 0u);
}

TEST(UllDevice, WritesUseWriteLatency) {
  UllDevice dev({.read_latency = 3000, .write_latency = 5000, .channels = 4});
  EXPECT_EQ(dev.schedule(0, true), 5000u);
  EXPECT_EQ(dev.writes(), 1u);
}

TEST(UllDevice, ChannelsOverlapRequests) {
  UllDevice dev({.read_latency = 3000, .write_latency = 3000, .channels = 4});
  // Four simultaneous reads: all finish at 3000 (one per channel).
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dev.schedule(0, false), 3000u);
  // Fifth queues behind the earliest channel.
  EXPECT_EQ(dev.schedule(0, false), 6000u);
}

TEST(UllDevice, EarliestFreeTracksChannels) {
  UllDevice dev({.read_latency = 1000, .write_latency = 1000, .channels = 2});
  EXPECT_EQ(dev.earliest_free(), 0u);
  dev.schedule(0, false);
  EXPECT_EQ(dev.earliest_free(), 0u);  // second channel still free
  dev.schedule(0, false);
  EXPECT_EQ(dev.earliest_free(), 1000u);
}

TEST(UllDevice, RejectsZeroChannels) {
  EXPECT_THROW(UllDevice({.read_latency = 1, .write_latency = 1, .channels = 0}),
               std::invalid_argument);
}

TEST(UllDevice, ResetClearsChannels) {
  UllDevice dev;
  dev.schedule(0, false);
  dev.reset();
  EXPECT_EQ(dev.earliest_free(), 0u);
  EXPECT_EQ(dev.reads(), 0u);
}

TEST(Dma, ReadIsMediaThenLink) {
  DmaController dma({.read_latency = 3000, .write_latency = 3000, .channels = 8},
                    {.lanes = 4, .gbytes_per_sec_per_lane = 3.983});
  // 3000 media + 258 link.
  EXPECT_EQ(dma.post_page(0, Dir::kRead), 3258u);
  EXPECT_EQ(dma.page_reads(), 1u);
}

TEST(Dma, WriteIsLinkThenMedia) {
  DmaController dma({.read_latency = 3000, .write_latency = 4000, .channels = 8},
                    {.lanes = 4, .gbytes_per_sec_per_lane = 3.983});
  EXPECT_EQ(dma.post_page(0, Dir::kWrite), 4258u);
  EXPECT_EQ(dma.page_writes(), 1u);
}

TEST(Dma, BatchedReadsOverlapOnChannels) {
  DmaController dma({.read_latency = 3000, .write_latency = 3000, .channels = 8},
                    {.lanes = 4, .gbytes_per_sec_per_lane = 3.983});
  // 8 pages posted together: media times overlap; the link serialises the
  // eight 258 ns transfers after the shared 3 µs media phase.
  its::SimTime last = 0;
  for (int i = 0; i < 8; ++i) last = dma.post_page(0, Dir::kRead);
  EXPECT_EQ(last, 3000u + 8 * 258u);
  // Far cheaper than 8 serial reads (8 × 3258).
  EXPECT_LT(last, 8 * 3258u);
}

TEST(Dma, ChannelQueueingDelaysNinthRead) {
  DmaController dma({.read_latency = 3000, .write_latency = 3000, .channels = 8},
                    {.lanes = 4, .gbytes_per_sec_per_lane = 3.983});
  for (int i = 0; i < 8; ++i) dma.post_page(0, Dir::kRead);
  // Ninth read waits for a channel: media done at 6000, link free by then.
  EXPECT_EQ(dma.post_page(0, Dir::kRead), 6258u);
}

TEST(Dma, ResetRestoresIdle) {
  DmaController dma;
  dma.post_page(0, Dir::kRead);
  dma.reset();
  EXPECT_EQ(dma.page_reads(), 0u);
  EXPECT_EQ(dma.post_page(0, Dir::kRead), dma.device().config().read_latency +
                                              dma.link().transfer_time(its::kPageSize));
}

class DmaLatencySweep : public ::testing::TestWithParam<its::Duration> {};

TEST_P(DmaLatencySweep, ReadLatencyScalesWithMedia) {
  its::Duration media = GetParam();
  DmaController dma({.read_latency = media, .write_latency = media, .channels = 8}, {});
  its::SimTime done = dma.post_page(0, Dir::kRead);
  EXPECT_EQ(done, media + dma.link().transfer_time(its::kPageSize));
}

INSTANTIATE_TEST_SUITE_P(MediaLatencies, DmaLatencySweep,
                         ::testing::Values(1000, 3000, 10000, 25000));

// ---------------------------------------------------------------------------
// Device-health FSM (storage/device_health.h).

TEST(DeviceHealth, NamesAreStable) {
  EXPECT_EQ(health_name(DeviceHealth::kHealthy), "healthy");
  EXPECT_EQ(health_name(DeviceHealth::kDegraded), "degraded");
  EXPECT_EQ(health_name(DeviceHealth::kOffline), "offline");
  EXPECT_EQ(health_name(DeviceHealth::kRecovering), "recovering");
}

TEST(DeviceHealth, DisabledMonitorIsInert) {
  DeviceHealthMonitor mon;  // all-zero config
  EXPECT_FALSE(mon.enabled());
  mon.poll(1'000'000);
  mon.note_error(1'000'000);
  mon.note_timeout(1'000'000);
  mon.finalize(2'000'000);
  EXPECT_EQ(mon.state(), DeviceHealth::kHealthy);
  for (auto h : {DeviceHealth::kHealthy, DeviceHealth::kDegraded,
                 DeviceHealth::kOffline, DeviceHealth::kRecovering})
    EXPECT_EQ(mon.time_in(h), 0);
}

TEST(DeviceHealth, ScheduledWindowWalksTheFsm) {
  fault::OutageModelConfig cfg;
  cfg.period = 1000;
  cfg.length = 200;
  cfg.recovery = 100;
  obs::EventTrace et;
  DeviceHealthMonitor mon(cfg);
  mon.attach_trace(&et);
  ASSERT_TRUE(mon.enabled());

  mon.poll(100);  // window opened at t = 0 (phase 0)
  EXPECT_EQ(mon.state(), DeviceHealth::kOffline);
  mon.poll(250);
  EXPECT_EQ(mon.state(), DeviceHealth::kRecovering);
  mon.poll(500);
  EXPECT_EQ(mon.state(), DeviceHealth::kHealthy);
  mon.finalize(2000);  // boundary: the second window reopens exactly here

  // Two full periods: 200 ns offline + 100 ns recovering + 700 ns healthy
  // each, and the partition is exact.
  EXPECT_EQ(mon.time_in(DeviceHealth::kOffline), 400);
  EXPECT_EQ(mon.time_in(DeviceHealth::kRecovering), 200);
  EXPECT_EQ(mon.time_in(DeviceHealth::kHealthy), 1400);
  EXPECT_EQ(mon.time_in(DeviceHealth::kDegraded), 0);
  EXPECT_EQ(mon.time_in(DeviceHealth::kHealthy) +
                mon.time_in(DeviceHealth::kDegraded) +
                mon.time_in(DeviceHealth::kOffline) +
                mon.time_in(DeviceHealth::kRecovering),
            2000);

  // Every emitted edge is legal; a healthy→offline jump expands via
  // degraded at the same timestamp.
  ASSERT_GT(et.size(), 0u);
  const auto& ev = et.events();
  EXPECT_EQ(ev[0].ts, 0u);
  EXPECT_EQ(ev[0].a, static_cast<std::uint64_t>(DeviceHealth::kHealthy));
  EXPECT_EQ(ev[0].b, static_cast<std::uint64_t>(DeviceHealth::kDegraded));
  EXPECT_EQ(ev[1].ts, 0u);
  EXPECT_EQ(ev[1].a, static_cast<std::uint64_t>(DeviceHealth::kDegraded));
  EXPECT_EQ(ev[1].b, static_cast<std::uint64_t>(DeviceHealth::kOffline));
  for (std::size_t i = 1; i < ev.size(); ++i)
    EXPECT_EQ(ev[i].a, ev[i - 1].b) << "broken transition chain at " << i;
}

TEST(DeviceHealth, ErrorRunTripsDegradedAndClears) {
  fault::OutageModelConfig cfg;
  cfg.degrade_errors = 2;
  cfg.degraded_hold = 100;
  DeviceHealthMonitor mon(cfg);
  mon.note_error(10);
  EXPECT_EQ(mon.state(), DeviceHealth::kHealthy);  // run of 1: below trip
  mon.note_error(20);
  EXPECT_EQ(mon.state(), DeviceHealth::kDegraded);  // run of 2: tripped
  mon.poll(200);  // degraded_hold expired at 120
  EXPECT_EQ(mon.state(), DeviceHealth::kHealthy);
  EXPECT_EQ(mon.time_in(DeviceHealth::kDegraded), 100);
  mon.note_ok(210);  // resets the run: next error starts from scratch
  mon.note_error(220);
  EXPECT_EQ(mon.state(), DeviceHealth::kHealthy);
}

TEST(DeviceHealth, TimeoutRunForcesAnErrorOutage) {
  fault::OutageModelConfig cfg;
  cfg.offline_timeouts = 1;
  cfg.error_outage = 50;
  cfg.recovery = 25;
  DeviceHealthMonitor mon(cfg);
  mon.note_timeout(100);
  EXPECT_EQ(mon.state(), DeviceHealth::kOffline);
  mon.poll(160);
  EXPECT_EQ(mon.state(), DeviceHealth::kRecovering);
  mon.finalize(300);
  EXPECT_EQ(mon.state(), DeviceHealth::kHealthy);
  EXPECT_EQ(mon.time_in(DeviceHealth::kOffline), 50);
  EXPECT_EQ(mon.time_in(DeviceHealth::kRecovering), 25);
}

TEST(DeviceHealth, DeadAtIsPermanent) {
  fault::OutageModelConfig cfg;
  cfg.dead_at = 500;
  DeviceHealthMonitor mon(cfg);
  mon.finalize(1000);
  EXPECT_EQ(mon.state(), DeviceHealth::kOffline);
  EXPECT_EQ(mon.time_in(DeviceHealth::kHealthy), 500);
  EXPECT_EQ(mon.time_in(DeviceHealth::kOffline), 500);
  mon.reset();
  EXPECT_EQ(mon.state(), DeviceHealth::kHealthy);
  EXPECT_EQ(mon.time_in(DeviceHealth::kOffline), 0);
}

}  // namespace
}  // namespace its::storage
