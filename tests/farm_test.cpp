// Work-stealing run-farm suite (ctest label: farm).
//
// Three layers of guarantees:
//   * TaskDeque unit behaviour — LIFO owner pops, FIFO steal-half from the
//     front (including the single-element race window), ring wrap-around
//     and growth, depth accounting;
//   * Farm execution semantics — every task runs exactly once at any
//     width, results collect by submission index, nested calls run inline,
//     exceptions propagate, thousands of no-op tasks drain (stress), the
//     stats ledger balances, ITS_JOBS is honoured;
//   * the bit-determinism matrix — the same experiments at --jobs 1/2/8
//     and under a shuffled submission order produce byte-identical metrics
//     CSVs, and a --jobs 8 run reproduces the checked-in golden files
//     (tests/golden/metrics.golden, fault_metrics.golden) byte for byte.
//
// The whole suite also runs under TSAN in CI (-DITS_SANITIZE=thread);
// docs/performance.md describes the farm design these tests pin down.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/experiment.h"
#include "core/policy.h"
#include "core/report.h"
#include "farm/deque.h"
#include "farm/farm.h"
#include "fault/fault_injector.h"

namespace its {
namespace {

#ifndef ITS_GOLDEN_DIR
#error "ITS_GOLDEN_DIR must point at the checked-in golden directory"
#endif

using core::PolicyKind;
using core::SimMetrics;

// ---------------------------------------------------------------------------
// TaskDeque.

TEST(TaskDeque, OwnerPopsLifo) {
  farm::TaskDeque d;
  for (std::uint64_t t = 0; t < 4; ++t) d.push_back(t);
  std::uint64_t got = 0;
  for (std::uint64_t expect : {3u, 2u, 1u, 0u}) {
    ASSERT_TRUE(d.try_pop_back(&got));
    EXPECT_EQ(got, expect);
  }
  EXPECT_FALSE(d.try_pop_back(&got));
  EXPECT_TRUE(d.empty());
}

TEST(TaskDeque, StealFromEmptyReturnsZero) {
  farm::TaskDeque d;
  std::uint64_t out[4];
  EXPECT_EQ(d.steal_half(out, 4), 0u);
  // Emptied-then-stolen: the pop wins, the thief sees nothing.
  d.push_back(7);
  std::uint64_t got = 0;
  ASSERT_TRUE(d.try_pop_back(&got));
  EXPECT_EQ(d.steal_half(out, 4), 0u);
}

TEST(TaskDeque, SingleElementStealTakesIt) {
  // The classic Chase-Lev race window: one task, owner and thief both
  // reaching for it.  Under the mutex exactly one side gets it; a thief
  // arriving first takes the single element.
  farm::TaskDeque d;
  d.push_back(42);
  std::uint64_t out[4];
  ASSERT_EQ(d.steal_half(out, 4), 1u);
  EXPECT_EQ(out[0], 42u);
  std::uint64_t got = 0;
  EXPECT_FALSE(d.try_pop_back(&got));
}

TEST(TaskDeque, StealHalfTakesOldestHalfInFifoOrder) {
  farm::TaskDeque d;
  for (std::uint64_t t = 0; t < 7; ++t) d.push_back(t);
  std::uint64_t out[8];
  // ceil(7/2) == 4, from the front: 0,1,2,3.
  ASSERT_EQ(d.steal_half(out, 8), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  // Owner still pops its freshest work last-in-first-out.
  std::uint64_t got = 0;
  ASSERT_TRUE(d.try_pop_back(&got));
  EXPECT_EQ(got, 6u);
  EXPECT_EQ(d.size(), 2u);
}

TEST(TaskDeque, StealHalfHonoursMaxOut) {
  farm::TaskDeque d;
  for (std::uint64_t t = 0; t < 10; ++t) d.push_back(t);
  std::uint64_t out[2];
  ASSERT_EQ(d.steal_half(out, 2), 2u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 1u);
  EXPECT_EQ(d.size(), 8u);
}

TEST(TaskDeque, WrapAroundPreservesFifoFront) {
  // Drive head_ around the ring: fill, drain from the front, refill past
  // the physical end.  Steals must still see oldest-first order.
  farm::TaskDeque d(4);
  std::uint64_t out[16];
  for (std::uint64_t t = 0; t < 3; ++t) d.push_back(t);
  ASSERT_EQ(d.steal_half(out, 16), 2u);  // head advances to slot 2
  for (std::uint64_t t = 3; t < 6; ++t) d.push_back(t);  // wraps
  ASSERT_EQ(d.size(), 4u);
  ASSERT_EQ(d.steal_half(out, 16), 2u);
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(out[1], 3u);
  std::uint64_t got = 0;
  ASSERT_TRUE(d.try_pop_back(&got));
  EXPECT_EQ(got, 5u);
  ASSERT_TRUE(d.try_pop_back(&got));
  EXPECT_EQ(got, 4u);
  EXPECT_TRUE(d.empty());
}

TEST(TaskDeque, GrowthPreservesOrderAcrossWrap) {
  farm::TaskDeque d(2);
  std::uint64_t out[64];
  // Misalign head first, then overflow the tiny ring several times over.
  d.push_back(100);
  ASSERT_EQ(d.steal_half(out, 1), 1u);
  for (std::uint64_t t = 0; t < 33; ++t) d.push_back(t);
  EXPECT_EQ(d.size(), 33u);
  ASSERT_EQ(d.steal_half(out, 64), 17u);  // ceil(33/2)
  for (std::uint64_t i = 0; i < 17; ++i) EXPECT_EQ(out[i], i);
  std::uint64_t got = 0;
  ASSERT_TRUE(d.try_pop_back(&got));
  EXPECT_EQ(got, 32u);
}

TEST(TaskDeque, MaxDepthIsHighWaterMark) {
  farm::TaskDeque d;
  EXPECT_EQ(d.max_depth(), 0u);
  for (std::uint64_t t = 0; t < 5; ++t) d.push_back(t);
  std::uint64_t got = 0;
  d.try_pop_back(&got);
  d.try_pop_back(&got);
  d.push_back(9);
  EXPECT_EQ(d.max_depth(), 5u);
  EXPECT_EQ(d.size(), 4u);
}

// Owner-vs-thief hammer on the single-element race window: the owner
// pushes one task and immediately pops it back while a thief spins on
// steal_half, so nearly every round contends for a deque of size one.
// Exactly one side must win each task — under TSAN (CI runs this suite
// with -DITS_SANITIZE=thread) this also proves the mutex discipline in
// deque.cpp is data-race-free, not merely count-correct.
TEST(TaskDeque, SingleElementOwnerVsThiefRaceIsExactlyOnce) {
  constexpr std::uint64_t kRounds = 20000;
  farm::TaskDeque d(2);
  std::atomic<bool> ready{false};
  std::atomic<bool> done{false};
  std::vector<std::uint64_t> owner_got, thief_got;
  owner_got.reserve(kRounds);
  thief_got.reserve(kRounds);

  std::thread thief([&] {
    ready.store(true, std::memory_order_release);
    std::uint64_t out[4];
    for (;;) {
      const std::size_t n = d.steal_half(out, 4);
      for (std::size_t i = 0; i < n; ++i) thief_got.push_back(out[i]);
      if (n == 0 && done.load(std::memory_order_acquire) && d.empty()) break;
    }
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

  for (std::uint64_t t = 0; t < kRounds; ++t) {
    d.push_back(t);
    // Every 16th task is left in the deque: it sits at the *front* (the
    // owner pops the back), so only the thief can take it — guaranteeing
    // the steal path runs even if the thief loses every size-1 race.
    if (t % 16 == 0) continue;
    std::uint64_t back = 0;
    if (d.try_pop_back(&back)) owner_got.push_back(back);
  }
  done.store(true, std::memory_order_release);
  thief.join();

  ASSERT_EQ(owner_got.size() + thief_got.size(), kRounds);
  std::vector<unsigned> seen(kRounds, 0);
  for (std::uint64_t t : owner_got) ++seen[t];
  for (std::uint64_t t : thief_got) ++seen[t];
  for (std::uint64_t t = 0; t < kRounds; ++t)
    ASSERT_EQ(seen[t], 1u) << "task " << t;
  // The skipped tasks can only leave through steal_half, so the steal
  // path is guaranteed to have run under contention.
  EXPECT_GE(thief_got.size(), kRounds / 16);
}

// ---------------------------------------------------------------------------
// Farm execution semantics.

TEST(Farm, EveryTaskRunsExactlyOnceAtAnyWidth) {
  for (unsigned jobs : {1u, 2u, 8u}) {
    farm::Farm farm(jobs);
    EXPECT_EQ(farm.jobs(), jobs);
    std::vector<std::atomic<int>> hits(257);
    farm.run_indexed(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " at jobs=" << jobs;
  }
}

TEST(Farm, RunCollectKeysResultsBySubmissionIndex) {
  farm::Farm farm(4);
  std::vector<std::uint64_t> got = farm::run_collect<std::uint64_t>(
      farm, 100, [](std::size_t i) { return static_cast<std::uint64_t>(i * i); });
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], i * i);
}

TEST(Farm, ReusableAcrossBatches) {
  farm::Farm farm(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> ran{0};
    farm.run_indexed(31 + round, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 31 + round);
  }
}

TEST(Farm, NestedCallsRunInline) {
  farm::Farm outer(4);
  std::vector<std::atomic<int>> hits(64);
  outer.run_indexed(8, [&](std::size_t o) {
    EXPECT_TRUE(farm::Farm::in_worker());
    // A farmed helper invoked from inside a farm task must not deadlock:
    // the nested farm degrades to inline serial execution on this thread.
    farm::Farm inner(4);
    inner.run_indexed(8, [&](std::size_t i) { hits[o * 8 + i].fetch_add(1); });
  });
  EXPECT_FALSE(farm::Farm::in_worker());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Farm, FirstExceptionPropagatesAfterDrain) {
  for (unsigned jobs : {1u, 4u}) {
    farm::Farm farm(jobs);
    std::atomic<int> ran{0};
    try {
      farm.run_indexed(40, [&](std::size_t i) {
        if (i == 17) throw std::runtime_error("task 17 failed");
        ran.fetch_add(1);
      });
      FAIL() << "expected the task exception to propagate (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 17 failed");
    }
    // The batch drains: every non-throwing task still ran.
    EXPECT_EQ(ran.load(), 39);
    // The farm stays usable after a failed batch.
    std::atomic<int> again{0};
    farm.run_indexed(10, [&](std::size_t) { again.fetch_add(1); });
    EXPECT_EQ(again.load(), 10);
  }
}

TEST(Farm, StressThousandsOfNoopTasks) {
  farm::Farm farm(8);
  for (int round = 0; round < 3; ++round) {
    std::atomic<std::uint64_t> sum{0};
    const std::size_t n = 5000;
    farm.run_indexed(n, [&](std::size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n + 1) / 2);
  }
}

TEST(Farm, StatsLedgerBalances) {
  farm::Farm farm(4);
  const std::size_t n = 1000;
  farm.run_indexed(n, [](std::size_t) {});
  farm::FarmStats st = farm.stats();
  ASSERT_EQ(st.workers.size(), 4u);
  EXPECT_EQ(st.total_tasks(), n);
  double occ = 0.0;
  std::uint64_t stolen = 0;
  for (std::size_t w = 0; w < st.workers.size(); ++w) {
    const farm::WorkerStats& ws = st.workers[w];
    occ += st.occupancy(w);
    stolen += ws.stolen_tasks;
    EXPECT_GE(ws.max_queue_depth, ws.tasks_run > 0 ? 1u : 0u);
  }
  EXPECT_NEAR(occ, 1.0, 1e-9);
  EXPECT_EQ(stolen, st.total_stolen_tasks());
  EXPECT_LE(st.total_stolen_tasks(), n);
}

TEST(Farm, DefaultJobsHonoursItsJobsEnv) {
  ASSERT_EQ(setenv("ITS_JOBS", "3", 1), 0);
  EXPECT_EQ(farm::Farm::default_jobs(), 3u);
  farm::Farm farm(0);
  EXPECT_EQ(farm.jobs(), 3u);
  ASSERT_EQ(setenv("ITS_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(farm::Farm::default_jobs(), 1u);  // falls back, never 0
  ASSERT_EQ(unsetenv("ITS_JOBS"), 0);
  EXPECT_GE(farm::Farm::default_jobs(), 1u);
}

// ---------------------------------------------------------------------------
// The bit-determinism matrix (the farm's reason to exist).

core::ExperimentConfig golden_config() {
  core::ExperimentConfig cfg;
  cfg.gen.length_scale = 0.02;
  cfg.gen.footprint_scale = 0.25;
  cfg.sim.seed = 42;
  return cfg;
}

std::string grid_csv(unsigned jobs) {
  core::ExperimentConfig cfg = golden_config();
  cfg.jobs = jobs;
  std::vector<core::BatchResult> grid = core::run_grid_all(cfg);
  return core::metrics_csv(grid);
}

TEST(FarmDeterminism, MetricsCsvByteIdenticalAtJobs1_2_8) {
  const std::string serial = grid_csv(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(grid_csv(2), serial) << "--jobs 2 diverged from serial reference";
  EXPECT_EQ(grid_csv(8), serial) << "--jobs 8 diverged from serial reference";
}

TEST(FarmDeterminism, ShuffledSubmissionOrderIsByteIdentical) {
  // Submit the same (batch, policy) tasks in a permuted order and place
  // each result back at its original index: any dependence on execution
  // or submission order would move a byte.
  core::ExperimentConfig cfg = golden_config();
  const auto& batches = core::paper_batches();
  const std::size_t np = std::size(core::kAllPolicies);
  const std::size_t n = batches.size() * np;

  std::vector<std::vector<std::shared_ptr<const trace::Trace>>> traces;
  for (const auto& b : batches) traces.push_back(core::batch_traces(b, cfg.gen));

  auto run_cell = [&](std::size_t cell) {
    return core::run_batch_policy(batches[cell / np],
                                  core::kAllPolicies[cell % np], cfg,
                                  traces[cell / np]);
  };
  auto emit = [&](const std::vector<SimMetrics>& ms) {
    std::vector<core::BatchResult> grid(batches.size());
    for (std::size_t b = 0; b < batches.size(); ++b) {
      grid[b].spec = &batches[b];
      for (std::size_t p = 0; p < np; ++p)
        grid[b].by_policy.emplace(core::kAllPolicies[p], ms[b * np + p]);
    }
    return core::metrics_csv(grid);
  };

  std::vector<SimMetrics> in_order =
      core::run_sim_tasks(n, 8, [&](std::size_t i) { return run_cell(i); });

  // A fixed full-cycle permutation (stride 7 is coprime to 20).
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = (i * 7 + 3) % n;
  std::vector<std::size_t> check = perm;
  std::sort(check.begin(), check.end());
  ASSERT_TRUE(std::adjacent_find(check.begin(), check.end()) == check.end());

  std::vector<SimMetrics> shuffled_raw = core::run_sim_tasks(
      n, 8, [&](std::size_t i) { return run_cell(perm[i]); });
  std::vector<SimMetrics> shuffled(n);
  for (std::size_t i = 0; i < n; ++i) shuffled[perm[i]] = shuffled_raw[i];

  EXPECT_EQ(emit(shuffled), emit(in_order))
      << "a shuffled submission order changed the metrics CSV";
}

// The checked-in golden files are the strongest witness: they were
// recorded by the serial runner, so matching them from a farmed run proves
// the farm is invisible in the output.

void emit_metrics(std::ostream& os, const std::string& key,
                  const SimMetrics& m) {
  os << key << ".makespan=" << m.makespan << '\n';
  os << key << ".cpu_busy=" << m.cpu_busy << '\n';
  os << key << ".idle.mem_stall=" << m.idle.mem_stall << '\n';
  os << key << ".idle.busy_wait=" << m.idle.busy_wait << '\n';
  os << key << ".idle.ctx_switch=" << m.idle.ctx_switch << '\n';
  os << key << ".idle.no_runnable=" << m.idle.no_runnable << '\n';
  os << key << ".major_faults=" << m.major_faults << '\n';
  os << key << ".minor_faults=" << m.minor_faults << '\n';
  os << key << ".llc_misses=" << m.llc_misses << '\n';
  os << key << ".prefetch_issued=" << m.prefetch_issued << '\n';
  os << key << ".prefetch_useful=" << m.prefetch_useful << '\n';
  os << key << ".preexec_episodes=" << m.preexec_episodes << '\n';
  os << key << ".async_switches=" << m.async_switches << '\n';
  os << key << ".evictions=" << m.evictions << '\n';
  os << key << ".stolen_time=" << m.stolen_time << '\n';
}

TEST(FarmDeterminism, Jobs8ReproducesGoldenMetricsFile) {
  if (const char* fp = std::getenv("ITS_FAULT_PROFILE");
      fp != nullptr && std::string(fp) != "none")
    GTEST_SKIP() << "golden snapshot is fault-free; ITS_FAULT_PROFILE=" << fp;

  core::ExperimentConfig cfg = golden_config();
  cfg.jobs = 8;
  std::vector<core::BatchResult> grid = core::run_grid_all(cfg);

  std::ostringstream os;
  os << "# its_sim golden metrics — regenerate with ITS_UPDATE_GOLDEN=1 "
        "./golden_test\n";
  os << "# config: length_scale=0.02 footprint_scale=0.25 seed=42\n";
  for (std::size_t bi = 0; bi < grid.size(); ++bi)
    for (PolicyKind k : core::kAllPolicies)
      emit_metrics(os,
                   "batch" + std::to_string(bi) + "." +
                       std::string(core::policy_name(k)),
                   grid[bi].by_policy.at(k));

  std::ifstream in(ITS_GOLDEN_DIR "/metrics.golden");
  ASSERT_TRUE(in.good()) << "missing " << ITS_GOLDEN_DIR "/metrics.golden";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(os.str(), expected.str())
      << "a --jobs 8 farmed grid diverged from the serial-recorded golden "
         "file: the farm leaked into simulation results";
}

TEST(FarmDeterminism, Jobs8ReproducesFaultGoldenFile) {
  // The hostile-profile golden: per-sim FaultInjector streams must be
  // untouched by concurrency.  cfg.sim.fault is assigned explicitly, so
  // the CI-wide ITS_FAULT_PROFILE default cannot interfere.
  core::ExperimentConfig cfg = golden_config();
  cfg.sim.fault = *fault::profile_by_name("hostile");
  cfg.sim.fault.seed = 7;
  const core::BatchSpec& batch = core::paper_batches()[1];
  auto traces = core::batch_traces(batch, cfg.gen);

  std::vector<SimMetrics> ms = core::run_sim_tasks(
      std::size(core::kAllPolicies), 8, [&](std::size_t i) {
        return core::run_batch_policy(batch, core::kAllPolicies[i], cfg, traces);
      });

  std::ostringstream os;
  os << "# its_sim fault golden — regenerate with ITS_UPDATE_GOLDEN=1 "
        "./fault_test\n";
  os << "# config: batch1 length_scale=0.02 footprint_scale=0.25 seed=42 "
        "fault=hostile fault_seed=7\n";
  for (std::size_t i = 0; i < std::size(core::kAllPolicies); ++i) {
    const SimMetrics& m = ms[i];
    const std::string key{core::policy_name(core::kAllPolicies[i])};
    os << key << ".makespan=" << m.makespan << '\n';
    os << key << ".cpu_busy=" << m.cpu_busy << '\n';
    os << key << ".idle.busy_wait=" << m.idle.busy_wait << '\n';
    os << key << ".idle.ctx_switch=" << m.idle.ctx_switch << '\n';
    os << key << ".idle.no_runnable=" << m.idle.no_runnable << '\n';
    os << key << ".major_faults=" << m.major_faults << '\n';
    os << key << ".stolen_time=" << m.stolen_time << '\n';
    os << key << ".io_errors=" << m.io_errors << '\n';
    os << key << ".io_retries=" << m.io_retries << '\n';
    os << key << ".retry_exhausted=" << m.retry_exhausted << '\n';
    os << key << ".deadline_aborts=" << m.deadline_aborts << '\n';
    os << key << ".mode_fallbacks=" << m.mode_fallbacks << '\n';
    os << key << ".degraded_time=" << m.degraded_time << '\n';
    os << key << ".health_healthy_time=" << m.health_healthy_time << '\n';
    os << key << ".health_degraded_time=" << m.health_degraded_time << '\n';
    os << key << ".health_offline_time=" << m.health_offline_time << '\n';
    os << key << ".health_recovering_time=" << m.health_recovering_time << '\n';
    os << key << ".pool_stores=" << m.pool_stores << '\n';
    os << key << ".pool_hits=" << m.pool_hits << '\n';
    os << key << ".pool_drains=" << m.pool_drains << '\n';
    os << key << ".faults_served_degraded=" << m.faults_served_degraded << '\n';
  }

  std::ifstream in(ITS_GOLDEN_DIR "/fault_metrics.golden");
  ASSERT_TRUE(in.good()) << "missing " << ITS_GOLDEN_DIR "/fault_metrics.golden";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(os.str(), expected.str())
      << "a --jobs 8 farmed hostile run diverged from the fault golden file";
}

TEST(FarmDeterminism, HostileProfileCsvByteIdenticalAtJobs1_2_8) {
  // The hostile profile now schedules device outages, so every sim carries
  // the health monitor and fallback pool — state that must stay strictly
  // per-simulator.  Running the full grid under fault injection at three
  // widths is the sharpest probe for shared mutable state in that path.
  auto hostile_csv = [](unsigned jobs) {
    core::ExperimentConfig cfg = golden_config();
    cfg.sim.fault = *fault::profile_by_name("hostile");
    cfg.sim.fault.seed = 7;
    cfg.jobs = jobs;
    std::vector<core::BatchResult> grid = core::run_grid_all(cfg);
    return core::metrics_csv(grid);
  };
  const std::string serial = hostile_csv(1);
  ASSERT_FALSE(serial.empty());
  ASSERT_NE(serial.find("health_offline_time_ns"), std::string::npos)
      << "metrics CSV is missing the availability columns";
  EXPECT_EQ(hostile_csv(2), serial)
      << "--jobs 2 hostile run diverged from serial reference";
  EXPECT_EQ(hostile_csv(8), serial)
      << "--jobs 8 hostile run diverged from serial reference";
}

}  // namespace
}  // namespace its
