// Tests for batch construction and the experiment runner.
#include <gtest/gtest.h>

#include <set>

#include "core/batch.h"
#include "core/experiment.h"

namespace its::core {
namespace {

TEST(Batch, FourPaperBatches) {
  auto batches = paper_batches();
  ASSERT_EQ(batches.size(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(batches[i].data_intensive, i);
    EXPECT_EQ(batches[i].members.size(), 6u);
  }
}

TEST(Batch, AllBatchesShareWrfBlenderCommunity) {
  // §4.1: "All four process batches comprise Wrf, Blender, and community
  // detection."
  for (const auto& b : paper_batches()) {
    std::set<trace::WorkloadId> members(b.members.begin(), b.members.end());
    EXPECT_TRUE(members.contains(trace::WorkloadId::kWrf)) << b.name;
    EXPECT_TRUE(members.contains(trace::WorkloadId::kBlender)) << b.name;
    EXPECT_TRUE(members.contains(trace::WorkloadId::kCommunity)) << b.name;
    EXPECT_EQ(members.size(), 6u) << b.name << ": members must be distinct";
  }
}

TEST(Batch, DataIntensiveCountMatchesMembers) {
  for (const auto& b : paper_batches()) {
    unsigned di = 0;
    for (auto id : b.members) di += trace::spec_for(id).data_intensive ? 1u : 0u;
    EXPECT_EQ(di, b.data_intensive) << b.name;
  }
}

TEST(Batch, DramSizedToWorkingSets) {
  const BatchSpec& b = paper_batches()[0];
  std::uint64_t hot = 0;
  for (auto id : b.members) hot += trace::spec_for(id).hot_bytes;
  std::uint64_t dram = dram_bytes_for(b, 1.10);
  EXPECT_GE(dram, hot);
  EXPECT_LE(dram, hot + hot / 5);
  EXPECT_EQ(dram % its::kPageSize, 0u);
}

TEST(Batch, DramScalesWithFootprintScale) {
  const BatchSpec& b = paper_batches()[0];
  EXPECT_LT(dram_bytes_for(b, 1.1, 0.25), dram_bytes_for(b, 1.1, 1.0));
}

TEST(Batch, TracesMatchMembers) {
  trace::GeneratorConfig gen;
  gen.length_scale = 0.01;
  auto traces = batch_traces(paper_batches()[1], gen);
  ASSERT_EQ(traces.size(), 6u);
  EXPECT_EQ(traces[0]->name(), "wrf");
  EXPECT_EQ(traces[5]->name(), "randwalk");
}

TEST(Batch, ProcessesGetDistinctShuffledPriorities) {
  trace::GeneratorConfig gen;
  gen.length_scale = 0.01;
  const BatchSpec& b = paper_batches()[0];
  auto traces = batch_traces(b, gen);
  auto procs = build_processes(b, traces, /*seed=*/123);
  ASSERT_EQ(procs.size(), 6u);
  std::set<int> prios;
  for (const auto& p : procs) prios.insert(p->priority());
  EXPECT_EQ(prios.size(), 6u);
  EXPECT_EQ(*prios.begin(), 10);
  EXPECT_EQ(*prios.rbegin(), 60);
  // Pids dense in insertion order — the Simulator requires this.
  for (unsigned i = 0; i < 6; ++i) EXPECT_EQ(procs[i]->pid(), i);
}

TEST(Batch, PriorityShuffleDeterministicInSeed) {
  trace::GeneratorConfig gen;
  gen.length_scale = 0.01;
  const BatchSpec& b = paper_batches()[0];
  auto traces = batch_traces(b, gen);
  auto a = build_processes(b, traces, 7);
  auto c = build_processes(b, traces, 7);
  for (unsigned i = 0; i < 6; ++i) EXPECT_EQ(a[i]->priority(), c[i]->priority());
}

TEST(Batch, MismatchedTraceCountThrows) {
  trace::GeneratorConfig gen;
  gen.length_scale = 0.01;
  auto traces = batch_traces(paper_batches()[0], gen);
  traces.pop_back();
  EXPECT_THROW(build_processes(paper_batches()[0], traces, 1), std::invalid_argument);
}

class ScaledExperiment : public ::testing::Test {
 protected:
  static ExperimentConfig tiny() {
    ExperimentConfig cfg;
    cfg.gen.length_scale = 0.02;
    cfg.gen.footprint_scale = 0.25;
    return cfg;
  }
};

TEST_F(ScaledExperiment, AllPoliciesComplete) {
  BatchResult r = run_batch_all(paper_batches()[1], tiny());
  for (PolicyKind k : kAllPolicies) {
    const SimMetrics& m = r.by_policy.at(k);
    EXPECT_EQ(m.processes.size(), 6u) << policy_name(k);
    for (const auto& p : m.processes)
      EXPECT_GT(p.metrics.finish_time, 0u) << policy_name(k) << "/" << p.name;
    EXPECT_GT(m.idle.total(), 0u);
    EXPECT_GT(m.major_faults, 0u);
  }
}

TEST_F(ScaledExperiment, PolicyInvariantsHold) {
  BatchResult r = run_batch_all(paper_batches()[1], tiny());
  const SimMetrics& async = r.by_policy.at(PolicyKind::kAsync);
  const SimMetrics& sync = r.by_policy.at(PolicyKind::kSync);
  const SimMetrics& its = r.by_policy.at(PolicyKind::kIts);
  const SimMetrics& pre = r.by_policy.at(PolicyKind::kSyncPrefetch);

  EXPECT_EQ(async.stolen_time, 0u);
  EXPECT_EQ(sync.stolen_time, 0u);
  // Sync chooses async only to give way to an offline device — possible
  // when the ambient CI fault profile (ITS_FAULT_PROFILE) schedules
  // outages, and then only on faults entered unhealthy; with injection
  // off, faults_served_degraded is zero and this stays the strict form.
  EXPECT_LE(sync.async_switches, sync.faults_served_degraded);
  // Every Async fault switches, except demand reads served straight from
  // the compressed-DRAM fallback pool (no device wait to hide).
  EXPECT_EQ(async.async_switches + async.pool_hits, async.major_faults);
  EXPECT_GT(its.prefetch_issued, 0u);
  EXPECT_GT(pre.prefetch_issued, 0u);
  // Prefetching policies convert majors into minors.
  EXPECT_LT(its.major_faults, sync.major_faults);
  EXPECT_LT(pre.major_faults, sync.major_faults);
  // Async busy-waits never.
  EXPECT_EQ(async.idle.busy_wait, 0u);
}

TEST_F(ScaledExperiment, NormalizedIsOneForIts) {
  BatchResult r = run_batch_all(paper_batches()[0], tiny());
  EXPECT_DOUBLE_EQ(r.normalized(PolicyKind::kIts, total_idle_ns), 1.0);
  EXPECT_GT(r.normalized(PolicyKind::kAsync, total_idle_ns), 1.0);
}

TEST_F(ScaledExperiment, ExtractorsMatchMetrics) {
  ExperimentConfig cfg = tiny();
  SimMetrics m = run_batch_policy(paper_batches()[0], PolicyKind::kSync, cfg);
  EXPECT_DOUBLE_EQ(total_idle_ns(m), static_cast<double>(m.idle.total()));
  EXPECT_DOUBLE_EQ(major_faults(m), static_cast<double>(m.major_faults));
  EXPECT_DOUBLE_EQ(llc_misses(m), static_cast<double>(m.llc_misses));
  EXPECT_GT(top_half_finish(m), 0.0);
  EXPECT_GT(bottom_half_finish(m), 0.0);
}

TEST_F(ScaledExperiment, TopBottomSplitUsesPriorities) {
  SimMetrics m;
  for (int i = 0; i < 6; ++i) {
    ProcessOutcome o;
    o.pid = static_cast<its::Pid>(i);
    o.priority = 10 * (i + 1);
    o.metrics.finish_time =
        100u * static_cast<its::SimTime>(i + 1);  // higher priority finished later
    m.processes.push_back(o);
  }
  // Top half = priorities 60, 50, 40 → finishes 600, 500, 400 → mean 500.
  EXPECT_DOUBLE_EQ(m.avg_finish_top_half(), 500.0);
  EXPECT_DOUBLE_EQ(m.avg_finish_bottom_half(), 200.0);
}

}  // namespace
}  // namespace its::core
