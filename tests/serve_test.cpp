// Serving-scenario determinism + SLO accounting (`ctest -L serve`).
//
// Pins the serve/ contracts ISSUE-level acceptance depends on: the arrival
// schedule replays bit-identically from the seed, farmed sweeps emit
// byte-identical CSVs at any --jobs width, the per-tier metric snapshot
// matches tests/golden/serve_metrics.golden, the request-lifecycle
// invariants hold on a traced run (and the checker rejects corrupted
// request timelines), and its_cli's --slo-p99 gate exits with code 6.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/policy.h"
#include "obs/event_trace.h"
#include "obs/invariant_checker.h"
#include "serve/arrival.h"
#include "serve/report.h"
#include "serve/scenario.h"
#include "serve/sweep.h"
#include "util/quantile.h"
#include "util/types.h"

namespace its::serve {
namespace {

#ifndef ITS_GOLDEN_DIR
#error "ITS_GOLDEN_DIR must point at the checked-in golden directory"
#endif

const char* kGoldenPath = ITS_GOLDEN_DIR "/serve_metrics.golden";

/// A small, fast serving point: a bursty 10 ms window at ~2000 req/s over
/// an overcommitted pool — a couple dozen requests, enough to exercise
/// admission, retirement and SLO scoring under every policy.
ServeConfig tiny_serve() {
  ServeConfig cfg;
  cfg.arrivals.model = ArrivalModel::kMmpp;
  cfg.arrivals.rate_rps = 2'000.0;
  cfg.duration = 10'000'000;
  cfg.admit_limit = 12;
  cfg.overcommit = 2.0;
  return cfg;
}

bool fault_profile_active() {
  const char* fp = std::getenv("ITS_FAULT_PROFILE");
  return fp != nullptr && std::string(fp) != "none";
}

// ---------------------------------------------------------------------------
// Arrival schedule: pure in the config, replayable from the seed.

TEST(ServeArrivals, ScheduleReplaysBitIdenticallyFromSeed) {
  ServeConfig cfg = tiny_serve();
  std::vector<Request> a = generate_requests(cfg);
  std::vector<Request> b = generate_requests(cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].arrive, b[i].arrive);
    EXPECT_EQ(a[i].tier, b[i].tier);
  }
}

TEST(ServeArrivals, ScheduleIsWellFormed) {
  ServeConfig cfg = tiny_serve();
  std::vector<Request> reqs = generate_requests(cfg);
  ASSERT_FALSE(reqs.empty());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].id, i) << "ids must be dense 0..n-1";
    EXPECT_LT(reqs[i].arrive, static_cast<its::SimTime>(cfg.duration));
    EXPECT_LT(reqs[i].tier, cfg.tiers.size());
    if (i > 0) {
      EXPECT_GE(reqs[i].arrive, reqs[i - 1].arrive);
    }
  }
}

TEST(ServeArrivals, DifferentSeedsProduceDifferentSchedules) {
  ServeConfig cfg = tiny_serve();
  std::vector<Request> a = generate_requests(cfg);
  cfg.arrivals.seed = 43;
  std::vector<Request> b = generate_requests(cfg);
  bool differ = a.size() != b.size();
  for (std::size_t i = 0; !differ && i < a.size(); ++i)
    differ = a[i].arrive != b[i].arrive || a[i].tier != b[i].tier;
  EXPECT_TRUE(differ) << "seed must steer the arrival schedule";
}

TEST(ServeArrivals, MaxRequestsCapsTheSchedule) {
  ServeConfig cfg = tiny_serve();
  cfg.max_requests = 5;
  EXPECT_EQ(generate_requests(cfg).size(), 5u);
}

TEST(ServeArrivals, PoissonAndMmppDrawDistinctStreams) {
  ServeConfig cfg = tiny_serve();
  cfg.arrivals.model = ArrivalModel::kPoisson;
  std::vector<Request> poisson = generate_requests(cfg);
  cfg.arrivals.model = ArrivalModel::kMmpp;
  std::vector<Request> mmpp = generate_requests(cfg);
  ASSERT_FALSE(poisson.empty());
  ASSERT_FALSE(mmpp.empty());
  bool differ = poisson.size() != mmpp.size();
  for (std::size_t i = 0; !differ && i < poisson.size(); ++i)
    differ = poisson[i].arrive != mmpp[i].arrive;
  EXPECT_TRUE(differ) << "burst modulation must reshape the gaps";
}

// ---------------------------------------------------------------------------
// Config plumbing.

TEST(ServeConfigTest, DefaultTiersSharesSumToOne) {
  std::vector<TierSpec> tiers = default_tiers();
  ASSERT_EQ(tiers.size(), 3u);
  double total = 0.0;
  for (const TierSpec& t : tiers) {
    EXPECT_FALSE(t.name.empty());
    EXPECT_GT(t.share, 0.0);
    EXPECT_GT(t.slo_ns, 0) << t.name << " must promise an SLO";
    total += t.share;
  }
  EXPECT_DOUBLE_EQ(total, 1.0);
  // Gold is the latency-sensitive tier: tightest SLO, highest priority.
  EXPECT_LT(tiers[0].slo_ns, tiers[1].slo_ns);
  EXPECT_LT(tiers[1].slo_ns, tiers[2].slo_ns);
  EXPECT_GT(tiers[0].priority, tiers[2].priority);
}

TEST(ServeConfigTest, DramBytesScaleInverselyWithOvercommit) {
  ServeConfig cfg = tiny_serve();
  cfg.overcommit = 1.0;
  std::uint64_t fits = serve_dram_bytes(cfg);
  cfg.overcommit = 4.0;
  std::uint64_t quarter = serve_dram_bytes(cfg);
  ASSERT_GT(fits, 0u);
  ASSERT_GT(quarter, 0u);
  // Integer page rounding allows slack; the ratio must still be ~4×.
  EXPECT_GT(fits, 3 * quarter);
  EXPECT_LT(fits, 5 * quarter);
}

// ---------------------------------------------------------------------------
// run_serve: lifecycle accounting.

TEST(ServeRun, LifecycleCountsReconcile) {
  ServeMetrics m = run_serve(tiny_serve(), core::PolicyKind::kIts);
  EXPECT_GT(m.arrivals, 0u);
  EXPECT_EQ(m.arrivals, m.admits + m.rejects);
  EXPECT_EQ(m.completed, m.admits);
  EXPECT_EQ(m.completed, m.latency.count());
  EXPECT_LE(m.slo_violations, m.completed);
  std::uint64_t arrivals = 0, admits = 0, violations = 0, completed = 0;
  for (const TierMetrics& t : m.tiers) {
    EXPECT_EQ(t.arrivals, t.admits + t.rejects);
    EXPECT_EQ(t.completed, t.latency.count());
    arrivals += t.arrivals;
    admits += t.admits;
    completed += t.completed;
    violations += t.slo_violations;
  }
  EXPECT_EQ(arrivals, m.arrivals);
  EXPECT_EQ(admits, m.admits);
  EXPECT_EQ(completed, m.completed);
  EXPECT_EQ(violations, m.slo_violations);
  EXPECT_GT(m.requests_per_sec(), 0.0);
}

TEST(ServeRun, AdmitLimitForcesRejectsUnderOverload) {
  ServeConfig cfg = tiny_serve();
  cfg.admit_limit = 2;  // throttle hard: the burst must overflow the gate
  ServeMetrics m = run_serve(cfg, core::PolicyKind::kSync);
  EXPECT_GT(m.rejects, 0u);
  EXPECT_EQ(m.arrivals, m.admits + m.rejects);
}

// ---------------------------------------------------------------------------
// Farmed sweeps: byte-identical CSVs at any --jobs width.

TEST(ServeSweep, CsvBytesIdenticalAcrossJobsWidths) {
  ServeConfig base = tiny_serve();
  const double overcommits[] = {1.0, 2.0};
  const core::PolicyKind policies[] = {core::PolicyKind::kSync,
                                       core::PolicyKind::kIts};
  std::string serial =
      serve_csv(run_serve_sweep(base, overcommits, policies, 1));
  ASSERT_FALSE(serial.empty());
  for (unsigned jobs : {2u, 8u}) {
    std::string farmed =
        serve_csv(run_serve_sweep(base, overcommits, policies, jobs));
    EXPECT_EQ(serial, farmed) << "--jobs=" << jobs
                              << " must not change a single byte";
  }
}

TEST(ServeSweep, CsvShapeIsOneRowPerTierPlusAggregate) {
  ServeConfig base = tiny_serve();
  const double overcommits[] = {2.0};
  const core::PolicyKind policies[] = {core::PolicyKind::kIts};
  std::vector<ServePoint> points =
      run_serve_sweep(base, overcommits, policies, 1);
  ASSERT_EQ(points.size(), 1u);
  std::ostringstream os;
  write_serve_csv(os, points);
  std::istringstream is(os.str());
  std::string header;
  ASSERT_TRUE(std::getline(is, header));
  EXPECT_EQ(header,
            "policy,overcommit,tier,slo_ns,arrivals,admits,rejects,completed,"
            "slo_violations,p50_ns,p99_ns,p999_ns,max_ns,makespan_ns");
  std::size_t rows = 0;
  std::string line;
  bool saw_all = false;
  while (std::getline(is, line)) {
    ++rows;
    saw_all = saw_all || line.find(",all,") != std::string::npos;
  }
  EXPECT_EQ(rows, base.tiers.size() + 1);
  EXPECT_TRUE(saw_all) << "aggregate `all` row missing:\n" << os.str();
}

// ---------------------------------------------------------------------------
// Golden snapshot: per-tier serving metrics at the fixed seed.

void emit_tier(std::ostream& os, const std::string& key,
               const TierMetrics& t) {
  os << key << ".arrivals=" << t.arrivals << '\n';
  os << key << ".admits=" << t.admits << '\n';
  os << key << ".rejects=" << t.rejects << '\n';
  os << key << ".completed=" << t.completed << '\n';
  os << key << ".slo_violations=" << t.slo_violations << '\n';
  os << key << ".p50=" << t.latency.quantile(0.50) << '\n';
  os << key << ".p99=" << t.latency.quantile(0.99) << '\n';
  os << key << ".p999=" << t.latency.quantile(0.999) << '\n';
  os << key << ".max=" << t.latency.max() << '\n';
}

std::string snapshot() {
  ServeConfig cfg = tiny_serve();
  std::ostringstream os;
  os << "# serve golden metrics — regenerate with ITS_UPDATE_GOLDEN=1 "
        "./serve_test\n";
  os << "# config: mmpp rate=2000 duration=10ms admit=12 overcommit=2 "
        "seed=42\n";
  for (core::PolicyKind k : core::kAllPolicies) {
    ServeMetrics m = run_serve(cfg, k);
    std::string key(core::policy_name(k));
    os << key << ".makespan=" << m.sim.makespan << '\n';
    for (const TierMetrics& t : m.tiers) emit_tier(os, key + "." + t.name, t);
    TierMetrics all;
    all.arrivals = m.arrivals;
    all.admits = m.admits;
    all.rejects = m.rejects;
    all.completed = m.completed;
    all.slo_violations = m.slo_violations;
    all.latency = m.latency;
    emit_tier(os, key + ".all", all);
  }
  return os.str();
}

TEST(ServeGolden, MetricsMatchCheckedInSnapshot) {
  if (fault_profile_active())
    GTEST_SKIP() << "golden snapshot is fault-free";

  std::string actual = snapshot();

  if (const char* update = std::getenv("ITS_UPDATE_GOLDEN");
      update != nullptr && std::string(update) == "1") {
    std::ofstream out(kGoldenPath, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << actual;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in.good())
      << "missing golden file " << kGoldenPath
      << " — run ITS_UPDATE_GOLDEN=1 ./serve_test to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "serving metrics diverged; if intentional, regenerate with "
         "ITS_UPDATE_GOLDEN=1 ./serve_test and commit the diff";
}

// ---------------------------------------------------------------------------
// Request-lifecycle invariants on a traced run, plus checker negatives.

obs::EventTrace traced_run(ServeMetrics* out,
                           core::PolicyKind policy = core::PolicyKind::kIts) {
  obs::EventTrace et(std::size_t{1} << 18);
  *out = run_serve(tiny_serve(), policy, &et);
  return et;
}

TEST(ServeInvariants, TracedRunPassesTheChecker) {
  ServeMetrics m;
  obs::EventTrace et = traced_run(&m);
  EXPECT_EQ(et.count(obs::EventKind::kRequestArrive), m.arrivals);
  EXPECT_EQ(et.count(obs::EventKind::kRequestAdmit), m.admits);
  EXPECT_EQ(et.count(obs::EventKind::kRequestDone), m.completed);
  EXPECT_EQ(et.count(obs::EventKind::kSloViolation), m.slo_violations);
  obs::CheckResult res = obs::check_invariants(et, m.sim);
  EXPECT_TRUE(res.ok()) << res.summary();
}

TEST(ServeInvariants, CheckerRejectsUnreconciledLatency) {
  ServeMetrics m;
  obs::EventTrace et = traced_run(&m);
  auto& events = et.events_mut();
  auto it = std::find_if(events.begin(), events.end(), [](const obs::Event& e) {
    return e.kind == obs::EventKind::kRequestDone;
  });
  ASSERT_NE(it, events.end());
  it->b += 1;  // latency no longer equals done.ts − arrive.ts
  obs::CheckResult res = obs::check_invariants(et, m.sim);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.summary().find("reconcile"), std::string::npos)
      << res.summary();
}

TEST(ServeInvariants, CheckerRejectsRetireWithoutAdmission) {
  ServeMetrics m;
  obs::EventTrace et = traced_run(&m);
  auto& events = et.events_mut();
  auto it = std::find_if(events.begin(), events.end(), [](const obs::Event& e) {
    return e.kind == obs::EventKind::kRequestAdmit;
  });
  ASSERT_NE(it, events.end());
  events.erase(it);
  obs::CheckResult res = obs::check_invariants(et, m.sim);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.summary().find("admission"), std::string::npos)
      << res.summary();
}

TEST(ServeInvariants, CheckerRejectsDuplicateArrival) {
  ServeMetrics m;
  obs::EventTrace et = traced_run(&m);
  auto& events = et.events_mut();
  auto it = std::find_if(events.begin(), events.end(), [](const obs::Event& e) {
    return e.kind == obs::EventKind::kRequestArrive;
  });
  ASSERT_NE(it, events.end());
  events.insert(it, *it);  // same id arrives twice
  obs::CheckResult res = obs::check_invariants(et, m.sim);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.summary().find("twice"), std::string::npos) << res.summary();
}

TEST(ServeInvariants, CheckerRejectsSloViolationWithinSlo) {
  // Plain sync burns the burst backlog as idle time, so this run reliably
  // breaks SLOs — which is exactly what this negative needs to corrupt.
  ServeMetrics m;
  obs::EventTrace et = traced_run(&m, core::PolicyKind::kSync);
  auto& events = et.events_mut();
  auto it = std::find_if(events.begin(), events.end(), [](const obs::Event& e) {
    return e.kind == obs::EventKind::kSloViolation;
  });
  ASSERT_NE(it, events.end()) << "sync run produced no SLO violations";
  it->c = it->b + 1;  // claim the SLO was wider than the latency
  obs::CheckResult res = obs::check_invariants(et, m.sim);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.summary().find("within"), std::string::npos) << res.summary();
}

// ---------------------------------------------------------------------------
// its_cli --slo-p99 gate: exit code 6 on breach, 0 when the gate holds.

#ifdef ITS_CLI_BIN
int run_cli(const std::string& flags) {
  // Pin the fault profile so a hostile CI environment cannot turn the gate
  // exit into an outage exit (codes 4/5).
  std::string cmd = std::string("ITS_FAULT_PROFILE=none \"") + ITS_CLI_BIN +
                    "\" --scenario=serve --policy=ITS --duration-ms=5 "
                    "--arrival-rate=1000 --admit-limit=8 " +
                    flags + " > /dev/null 2>&1";
  int rc = std::system(cmd.c_str());
  if (rc == -1 || !WIFEXITED(rc)) return -1;
  return WEXITSTATUS(rc);
}

TEST(ServeCli, SloGateBreachExitsSix) {
  EXPECT_EQ(run_cli("--slo-p99=1"), 6)
      << "a 1 ns p99 gate cannot hold — the CLI must exit kSloGateFailed";
}

TEST(ServeCli, SloGateHoldsExitsZero) {
  EXPECT_EQ(run_cli("--slo-p99=1000000000000"), 0);
}
#endif  // ITS_CLI_BIN

}  // namespace
}  // namespace its::serve
