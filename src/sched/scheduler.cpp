#include "sched/scheduler.h"

#include "obs/event_trace.h"
#include "sched/process.h"
#include "util/types.h"

#include <algorithm>
#include <stdexcept>

// RRScheduler implementation; see sched/cfs.cpp for the CFS alternative.

namespace its::sched {

void RRScheduler::add(Process* p) {
  if (p == nullptr) throw std::invalid_argument("RRScheduler: null process");
  if (!have_prio_) {
    prio_lo_ = prio_hi_ = p->priority();
    have_prio_ = true;
  } else {
    prio_lo_ = std::min(prio_lo_, p->priority());
    prio_hi_ = std::max(prio_hi_, p->priority());
  }
  p->set_state(ProcState::kReady);
  queue_.push_back(p);
}

Process* RRScheduler::pick() {
  if (queue_.empty()) return nullptr;
  Process* p = queue_.front();
  queue_.pop_front();
  p->set_state(ProcState::kRunning);
  p->set_slice(slice_for(*p));
  ++stats_.picks;
  note(obs::EventKind::kSchedPick, *p);
  return p;
}

void RRScheduler::yield(Process* p) {
  p->set_state(ProcState::kReady);
  queue_.push_back(p);
  ++stats_.yields;
}

void RRScheduler::block(Process* p) {
  p->set_state(ProcState::kBlocked);
  ++stats_.blocks;
  note(obs::EventKind::kSchedBlock, *p);
}

void RRScheduler::wake(Process* p) {
  if (p->state() != ProcState::kBlocked)
    throw std::logic_error("RRScheduler: waking a non-blocked process");
  p->set_state(ProcState::kReady);
  queue_.push_back(p);
  ++stats_.wakes;
  note(obs::EventKind::kSchedWake, *p);
}

const Process* RRScheduler::peek_next() const {
  return queue_.empty() ? nullptr : queue_.front();
}

its::Duration RRScheduler::slice_for(const Process& p) const {
  if (!have_prio_ || prio_hi_ == prio_lo_) return slice_max_;
  double f = static_cast<double>(p.priority() - prio_lo_) /
             static_cast<double>(prio_hi_ - prio_lo_);
  return slice_min_ +
         static_cast<its::Duration>(f * static_cast<double>(slice_max_ - slice_min_));
}

}  // namespace its::sched
