#include "sched/cfs.h"

#include "obs/event_trace.h"
#include "sched/process.h"
#include "util/types.h"

#include <algorithm>
#include <stdexcept>

namespace its::sched {

namespace {
/// Reference weight: a process at this weight accrues vruntime 1:1.
constexpr std::uint64_t kBaseWeight = 30;
}  // namespace

std::uint64_t CfsScheduler::weight_of(const Process& p) {
  return p.priority() > 0 ? static_cast<std::uint64_t>(p.priority()) : 1;
}

void CfsScheduler::add(Process* p) {
  if (p == nullptr) throw std::invalid_argument("CfsScheduler: null process");
  p->set_state(ProcState::kReady);
  vrun_[p] = min_vruntime_;
  weight_sum_ += weight_of(*p);
  ready_.push_back(p);
}

std::vector<Process*>::iterator CfsScheduler::min_ready() {
  return std::min_element(ready_.begin(), ready_.end(),
                          [&](const Process* a, const Process* b) {
                            auto va = vrun_.at(a), vb = vrun_.at(b);
                            if (va != vb) return va < vb;
                            return a->pid() < b->pid();  // deterministic tie-break
                          });
}

std::vector<Process*>::const_iterator CfsScheduler::min_ready() const {
  return std::min_element(ready_.begin(), ready_.end(),
                          [&](const Process* a, const Process* b) {
                            auto va = vrun_.at(a), vb = vrun_.at(b);
                            if (va != vb) return va < vb;
                            return a->pid() < b->pid();
                          });
}

Process* CfsScheduler::pick() {
  if (ready_.empty()) return nullptr;
  auto it = min_ready();
  Process* p = *it;
  ready_.erase(it);
  min_vruntime_ = std::max(min_vruntime_, vrun_.at(p));
  p->set_state(ProcState::kRunning);
  p->set_slice(slice_for(*p));
  ++stats_.picks;
  note(obs::EventKind::kSchedPick, *p);
  return p;
}

void CfsScheduler::yield(Process* p) {
  p->set_state(ProcState::kReady);
  ready_.push_back(p);
  ++stats_.yields;
}

void CfsScheduler::block(Process* p) {
  p->set_state(ProcState::kBlocked);
  ++stats_.blocks;
  note(obs::EventKind::kSchedBlock, *p);
}

void CfsScheduler::wake(Process* p) {
  if (p->state() != ProcState::kBlocked)
    throw std::logic_error("CfsScheduler: waking a non-blocked process");
  // Sleeper fairness: a long sleeper resumes near the current minimum, not
  // with a huge credit that would starve everyone else.
  auto& v = vrun_.at(p);
  v = std::max(v, min_vruntime_ > cfg_.sched_latency / 2
                      ? min_vruntime_ - cfg_.sched_latency / 2
                      : 0);
  p->set_state(ProcState::kReady);
  ready_.push_back(p);
  ++stats_.wakes;
  note(obs::EventKind::kSchedWake, *p);
}

const Process* CfsScheduler::peek_next() const {
  if (ready_.empty()) return nullptr;
  return *min_ready();
}

its::Duration CfsScheduler::slice_for(const Process& p) const {
  if (weight_sum_ == 0) return cfg_.min_granularity;
  its::Duration share = cfg_.sched_latency * weight_of(p) / weight_sum_;
  return std::max(share, cfg_.min_granularity);
}

void CfsScheduler::account(Process& p, its::Duration d) {
  auto it = vrun_.find(&p);
  if (it == vrun_.end()) throw std::logic_error("CfsScheduler: unknown process");
  it->second += d * kBaseWeight / weight_of(p);
}

its::Duration CfsScheduler::vruntime(const Process& p) const {
  return vrun_.at(&p);
}

}  // namespace its::sched
