// CFS-style fair scheduler — an alternative discipline for ablations.
//
// Not part of the paper's setup (which uses SCHED_RR); included to study
// how the ITS priority-aware selection behaves under weighted fair
// scheduling: minimum-vruntime dispatch, priority-proportional weights,
// sleeper fairness on wake-up, and a latency-target slice
// (`sched_latency` split by weight share).
#pragma once

#include "sched/process.h"
#include "sched/scheduler.h"
#include "util/types.h"

#include <unordered_map>
#include <vector>

namespace its::sched {

struct CfsConfig {
  its::Duration sched_latency = 24_ms;     ///< Target rotation period.
  its::Duration min_granularity = 50_us;   ///< Slice floor (mini-scale).
};

class CfsScheduler final : public Scheduler {
 public:
  explicit CfsScheduler(const CfsConfig& cfg = {}) : cfg_(cfg) {}

  void add(Process* p) override;
  Process* pick() override;
  void yield(Process* p) override;
  void block(Process* p) override;
  void wake(Process* p) override;
  const Process* peek_next() const override;
  its::Duration slice_for(const Process& p) const override;

  /// Charges weighted virtual runtime: vruntime += d × base / weight(p).
  void account(Process& p, its::Duration d) override;

  bool any_ready() const override { return !ready_.empty(); }
  std::size_t ready_count() const override { return ready_.size(); }

  /// Virtual runtime of a process (test hook).
  its::Duration vruntime(const Process& p) const;

  /// Weight grows with priority; proportional share follows Linux's
  /// intent (higher priority ⇒ more CPU), simplified to weight = priority.
  static std::uint64_t weight_of(const Process& p);

 private:
  std::vector<Process*>::iterator min_ready();
  std::vector<Process*>::const_iterator min_ready() const;

  CfsConfig cfg_;
  std::vector<Process*> ready_;
  std::unordered_map<const Process*, its::Duration> vrun_;
  its::Duration min_vruntime_ = 0;
  std::uint64_t weight_sum_ = 0;  ///< Weights of all registered processes.
};

}  // namespace its::sched
