// Process control block.
//
// Each simulated process executes one trace under its own memory descriptor
// and register file.  Priorities are assigned by the batch builder (the
// paper assigns them randomly); the scheduler maps priority to a SCHED_RR
// time slice via the NICE mechanism (5 ms lowest … 800 ms highest).
#pragma once

#include "cpu/register_file.h"
#include "trace/trace.h"
#include "util/types.h"
#include "vm/mm.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace its::sched {

enum class ProcState : std::uint8_t { kReady, kRunning, kBlocked, kFinished };

/// Per-process outcome metrics (Fig. 5 reports finish times; Fig. 4b/4c are
/// sums of the fault/miss members across the batch).
struct ProcessMetrics {
  std::uint64_t instructions = 0;
  std::uint64_t mem_refs = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t minor_faults = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t prefetches_received = 0;  ///< Prefetched pages this process consumed.
  its::Duration mem_stall = 0;   ///< ns stalled on cache misses / TLB walks.
  its::Duration busy_wait = 0;   ///< ns of un-stolen synchronous fault wait.
  its::Duration stolen = 0;      ///< ns of fault wait converted to useful work.
  its::SimTime finish_time = 0;  ///< Simulation time at trace completion.
};

class Process {
 public:
  Process(its::Pid pid, std::string name, int priority,
          std::shared_ptr<const trace::Trace> trace);

  its::Pid pid() const { return pid_; }
  const std::string& name() const { return name_; }
  int priority() const { return priority_; }

  const trace::Trace& trace() const { return *trace_; }
  std::size_t pc() const { return pc_; }
  void advance_pc() { ++pc_; }
  bool at_end() const { return pc_ >= trace_->size(); }

  vm::MemoryDescriptor& mm() { return mm_; }
  cpu::RegisterFile& rf() { return rf_; }

  ProcState state() const { return state_; }
  void set_state(ProcState s) { state_ = s; }

  its::Duration slice_remaining() const { return slice_; }
  void set_slice(its::Duration s) { slice_ = s; }
  void consume_slice(its::Duration d) { slice_ = d >= slice_ ? 0 : slice_ - d; }

  ProcessMetrics& metrics() { return metrics_; }
  const ProcessMetrics& metrics() const { return metrics_; }

 private:
  its::Pid pid_;
  std::string name_;
  int priority_;
  std::shared_ptr<const trace::Trace> trace_;
  std::size_t pc_ = 0;
  vm::MemoryDescriptor mm_;
  cpu::RegisterFile rf_;
  ProcState state_ = ProcState::kReady;
  its::Duration slice_ = 0;
  ProcessMetrics metrics_;
};

}  // namespace its::sched
