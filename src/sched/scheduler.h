// Schedulers.
//
// The paper's mini-kernel uses SCHED_RR with NICE-derived time slices
// (§4.1): "the time slice allocated to the highest and lowest priority
// processes is set to 800 ms and 5 ms", one FIFO run queue for all runnable
// processes.  `RRScheduler` implements that; `Scheduler` is the interface
// the simulator and the I/O-mode policies program against, so alternative
// disciplines (see sched/cfs.h) can be swapped in for ablations.
//
// `peek_next()` exposes the next-to-be-run process — the comparison point
// of the priority-aware thread selection policy (§3.2).
#pragma once

#include "obs/event_trace.h"
#include "sched/process.h"
#include "util/types.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace its::sched {

struct SchedulerStats {
  std::uint64_t picks = 0;
  std::uint64_t yields = 0;
  std::uint64_t blocks = 0;
  std::uint64_t wakes = 0;
};

/// Scheduling discipline interface (single CPU).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Registers a process and makes it runnable.
  virtual void add(Process* p) = 0;

  /// Dequeues the next runnable process, grants it a fresh slice, and marks
  /// it running; nullptr if nothing is runnable.
  virtual Process* pick() = 0;

  /// Returns a running process to the runnable set (slice expiry / yield).
  virtual void yield(Process* p) = 0;

  /// Marks a (previously picked) process blocked.
  virtual void block(Process* p) = 0;

  /// Makes a blocked process runnable again.
  virtual void wake(Process* p) = 0;

  /// The process `pick()` would return next, without dequeuing.
  virtual const Process* peek_next() const = 0;

  /// The slice `pick()` would grant this process right now.
  virtual its::Duration slice_for(const Process& p) const = 0;

  /// Charges `d` of CPU consumption to `p` (needed by disciplines that
  /// track virtual runtime; RR ignores it).
  virtual void account(Process& p, its::Duration d) { (void)p, (void)d; }

  virtual bool any_ready() const = 0;
  virtual std::size_t ready_count() const = 0;

  const SchedulerStats& stats() const { return stats_; }

  /// Connects the discipline to the simulator's event recorder and clock
  /// (both owned by the caller; nullptr detaches).  Scheduling decisions
  /// then emit kSchedPick/kSchedBlock/kSchedWake events.
  void attach_trace(obs::EventTrace* trace, const its::SimTime* clock) {
    trace_ = trace;
    clock_ = clock;
  }

 protected:
  /// Records a scheduling event for `p` at the current sim time.
  void note(obs::EventKind k, const Process& p) const {
    if (trace_ != nullptr) trace_->record(k, *clock_, p.pid());
  }

  SchedulerStats stats_;
  obs::EventTrace* trace_ = nullptr;
  const its::SimTime* clock_ = nullptr;
};

/// SCHED_RR: one FIFO queue, NICE-style slices linearly interpolated
/// between the registered priority extremes.
class RRScheduler final : public Scheduler {
 public:
  RRScheduler(its::Duration slice_min = 5_ms, its::Duration slice_max = 800_ms)
      : slice_min_(slice_min), slice_max_(slice_max) {}

  void add(Process* p) override;
  Process* pick() override;
  void yield(Process* p) override;
  void block(Process* p) override;
  void wake(Process* p) override;
  const Process* peek_next() const override;

  /// NICE-style slice: linear interpolation between the registered
  /// priority extremes.  A single-priority batch gets slice_max.
  its::Duration slice_for(const Process& p) const override;

  bool any_ready() const override { return !queue_.empty(); }
  std::size_t ready_count() const override { return queue_.size(); }

 private:
  its::Duration slice_min_;
  its::Duration slice_max_;
  int prio_lo_ = 0;
  int prio_hi_ = 0;
  bool have_prio_ = false;
  std::deque<Process*> queue_;
};

}  // namespace its::sched
