#include "sched/process.h"

#include "trace/trace.h"
#include "util/types.h"

#include <stdexcept>

namespace its::sched {

namespace {
std::vector<its::Vpn> footprint_of(const trace::Trace& t) { return t.touched_pages(); }
}  // namespace

Process::Process(its::Pid pid, std::string name, int priority,
                 std::shared_ptr<const trace::Trace> trace)
    : pid_(pid),
      name_(std::move(name)),
      priority_(priority),
      trace_(std::move(trace)),
      mm_(pid, footprint_of(*trace_)) {
  if (!trace_ || trace_->empty())
    throw std::invalid_argument("Process: trace must be non-empty");
}

}  // namespace its::sched
