#include "fault/fault_injector.h"

#include "util/rng.h"
#include "util/types.h"

#include <algorithm>
#include <cmath>

namespace its::fault {

namespace {

/// Injected latencies are quantised to this many nanoseconds.  The tail
/// draws go through libm (exp/log/cos/pow), whose last-ulp behaviour can
/// differ across libc versions; snapping to a coarse grid keeps the golden
/// fault metrics bit-identical across toolchains.
constexpr its::Duration kLatencyQuantum = 16;

/// Standard normal via Box–Muller on the injector's own PCG32 stream (libm
/// only; <random> distributions are not cross-platform deterministic).
double gaussian(util::Rng& rng) {
  double u1 = rng.next_double();
  double u2 = rng.next_double();
  if (u1 <= 0.0) u1 = 1e-12;  // log(0) guard
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.141592653589793 * u2);
}

}  // namespace

FaultInjector::FaultInjector(const FaultProfile& profile)
    : cfg_(profile), rng_(profile.seed) {}

bool FaultInjector::in_burst(its::SimTime t) const {
  const auto& lm = cfg_.latency;
  if (lm.burst_period == 0 || lm.burst_len == 0) return false;
  return (t % lm.burst_period) < lm.burst_len;
}

bool FaultInjector::in_outage(its::SimTime t) const {
  if (!cfg_.enabled) return false;
  const auto& o = cfg_.outage;
  if (o.dead_at > 0 && t >= o.dead_at) return true;
  if (o.period == 0 || o.length == 0) return false;
  return ((t + o.phase) % o.period) < o.length;
}

its::SimTime FaultInjector::outage_clear(its::SimTime t) const {
  if (!cfg_.enabled) return t;
  const auto& o = cfg_.outage;
  if (o.dead_at > 0 && t >= o.dead_at) return t;  // permanent; see header
  if (o.period == 0 || o.length == 0) return t;
  const its::Duration into = (t + o.phase) % o.period;
  if (into < o.length) return t + (o.length - into);
  return t;
}

its::Duration FaultInjector::tail_draw() {
  const auto& lm = cfg_.latency;
  if (lm.tail == TailKind::kNone || lm.tail_prob <= 0.0) return 0;
  if (!rng_.chance(lm.tail_prob)) return 0;
  double extra = 0.0;
  switch (lm.tail) {
    case TailKind::kLognormal:
      extra = std::exp(lm.lognormal_mu + lm.lognormal_sigma * gaussian(rng_));
      break;
    case TailKind::kPareto: {
      double u = rng_.next_double();
      if (u <= 0.0) u = 1e-12;
      extra = lm.pareto_xm * std::pow(u, -1.0 / lm.pareto_alpha);
      break;
    }
    case TailKind::kNone:
      return 0;
  }
  ++stats_.tail_events;
  auto d = static_cast<its::Duration>(
      // its-lint: allow(units-narrow): randomized tail draw scales in doubles
      std::min(extra, static_cast<double>(lm.max_extra)));
  return its::round_down(d, kLatencyQuantum);
}

its::Duration FaultInjector::inflate_media_latency(its::SimTime start,
                                                   its::Duration base,
                                                   bool /*write*/) {
  if (!cfg_.enabled) return base;
  its::Duration total = base + tail_draw();
  if (in_burst(start) && cfg_.latency.burst_multiplier > 1.0) {
    auto scaled = static_cast<its::Duration>(
        // its-lint: allow(units-narrow): burst multiplier is a double factor
        static_cast<double>(total) * cfg_.latency.burst_multiplier);
    total = its::round_down(scaled, kLatencyQuantum);
    total = std::max(total, base);
  }
  stats_.extra_latency += total - base;
  return total;
}

bool FaultInjector::media_error(bool write, bool surfaced) {
  if (!cfg_.enabled) return false;
  double rate = write ? cfg_.write_error_rate : cfg_.read_error_rate;
  if (rate <= 0.0 || !rng_.chance(rate)) return false;
  if (surfaced)
    ++stats_.media_errors;
  else
    ++stats_.internal_redos;
  return true;
}

bool FaultInjector::link_error(bool surfaced) {
  if (!cfg_.enabled) return false;
  if (cfg_.link_error_rate <= 0.0 || !rng_.chance(cfg_.link_error_rate))
    return false;
  if (surfaced)
    ++stats_.link_errors;
  else
    ++stats_.internal_redos;
  return true;
}

void FaultInjector::reset() {
  rng_ = util::Rng(cfg_.seed);
  stats_ = FaultStats{};
}

std::optional<FaultProfile> profile_by_name(std::string_view name) {
  FaultProfile p;
  if (name == "none") return p;  // enabled == false
  p.enabled = true;
  if (name == "tail") {
    p.latency.tail = TailKind::kLognormal;
    p.latency.tail_prob = 0.08;
    p.latency.lognormal_mu = 9.2;   // median extra ≈ 10 µs
    p.latency.lognormal_sigma = 0.8;
    return p;
  }
  if (name == "bursty") {
    p.latency.burst_period = 400_us;  // every 400 µs ...
    p.latency.burst_len = 80_us;      // ... an 80 µs degraded window
    p.latency.burst_multiplier = 6.0;
    return p;
  }
  if (name == "errors") {
    p.read_error_rate = 0.03;
    p.write_error_rate = 0.01;
    p.link_error_rate = 0.005;
    return p;
  }
  if (name == "outage") {
    // Pure scheduled outages — no per-op faults, no RNG draws: the whole
    // fault timeline is clock arithmetic, so replay is trivially exact.
    p.outage.period = 1500_us;     // every 1.5 ms ...
    p.outage.length = 200_us;      // ... the device is gone for 200 µs
    p.outage.recovery = 100_us;    // then drains/retrains for 100 µs
    return p;
  }
  if (name == "hostile") {
    p.read_error_rate = 0.03;
    p.write_error_rate = 0.01;
    p.link_error_rate = 0.005;
    p.latency.tail = TailKind::kPareto;
    p.latency.tail_prob = 0.1;
    p.latency.pareto_alpha = 1.3;
    p.latency.pareto_xm = 2000.0;
    p.latency.burst_period = 400_us;
    p.latency.burst_len = 60_us;
    p.latency.burst_multiplier = 4.0;
    p.outage.period = 2_ms;        // sustained resets on top of everything
    p.outage.length = 150_us;
    p.outage.recovery = 80_us;
    p.outage.degrade_errors = 4;   // error-run trips degraded mode
    p.outage.offline_timeouts = 3; // sync-abort run trips an error outage
    return p;
  }
  return std::nullopt;
}

const std::vector<std::string_view>& profile_names() {
  static const std::vector<std::string_view> names{
      "none", "tail", "bursty", "errors", "outage", "hostile"};
  return names;
}

}  // namespace its::fault
