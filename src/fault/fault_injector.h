// Deterministic device/DMA fault injection.
//
// The paper's premise is that ULL swap reads are *reliably* ~3 µs, so
// busy-waiting beats a 7 µs context switch.  Real Z-NAND-class devices are
// not that well behaved: reads hit tail latencies (media retries, ECC
// re-reads), links drop TLPs, and whole windows of time degrade when the
// device garbage-collects.  This module models those pathologies so the
// I/O-mode policies can be evaluated under realistic failure conditions:
//
//   * a LatencyModel — base media latency plus a lognormal or Pareto tail
//     and periodic burst windows that multiply service time;
//   * per-device error rates — media read/write errors and link transfer
//     errors, surfaced to callers that can retry (demand reads) and
//     absorbed as internal redo latency by fire-and-forget paths.
//
// Everything is driven by one seeded PCG32 stream, so a (seed, profile)
// pair reproduces the exact same fault timeline on every run — the
// property the deterministic-replay tests pin down.  With
// `FaultProfile::enabled == false` the injector is inert: no RNG draws, no
// latency change, bit-identical simulation to a build without it.
#pragma once

#include "util/rng.h"
#include "util/types.h"

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace its::fault {

/// Shape of the latency tail added on top of the base media latency.
enum class TailKind : std::uint8_t { kNone, kLognormal, kPareto };

struct LatencyModelConfig {
  TailKind tail = TailKind::kNone;
  double tail_prob = 0.0;        ///< Per-operation probability of a tail draw.
  // Lognormal tail: extra = exp(mu + sigma · z) ns, z ~ N(0,1).
  double lognormal_mu = 8.0;     ///< ln(3000) ≈ 8 → median extra ≈ one media read.
  double lognormal_sigma = 1.0;
  // Pareto tail: extra = xm · u^(-1/alpha) ns, u ~ U(0,1).
  double pareto_alpha = 1.5;
  double pareto_xm = 1000.0;     ///< Scale (minimum tail draw), ns.
  its::Duration max_extra = 200_us;  ///< Clamp on any single tail draw.
  // Burst windows (device-wide degradation, e.g. internal GC): while
  // (t mod burst_period) < burst_len the whole service time is multiplied.
  its::Duration burst_period = 0;  ///< 0 = no bursts.
  its::Duration burst_len = 0;
  double burst_multiplier = 1.0;
};

/// Sustained device outages — firmware GC stalls, link retraining,
/// controller resets — as opposed to the per-operation pathologies above.
/// Scheduled windows are purely clock-driven (no RNG draws), so an outage
/// schedule is reproducible from the profile alone; the error/timeout
/// thresholds feed the storage::DeviceHealthMonitor state machine
/// (docs/robustness.md).  All-zero (the default) means no outage model.
struct OutageModelConfig {
  // Scheduled offline windows: while ((t + phase) mod period) < length the
  // device accepts no work; completions stall until the window ends.
  its::Duration period = 0;    ///< 0 = no scheduled outages.
  its::Duration length = 0;    ///< Offline span per period, ns.
  its::Duration recovery = 0;  ///< Recovering span appended after each window.
  its::Duration phase = 0;     ///< Offset of the first window, ns.
  /// Permanent death: the device goes offline at this timestamp and never
  /// recovers — demand reads that miss the fallback pool are *lost* (the
  /// CLI maps that to exit code 5).  0 = never.
  its::SimTime dead_at = 0;
  // Error-driven transitions, consumed by storage::DeviceHealthMonitor.
  unsigned degrade_errors = 0;     ///< Consecutive I/O errors → degraded. 0 = off.
  unsigned offline_timeouts = 0;   ///< Consecutive sync aborts → offline. 0 = off.
  its::Duration error_outage = 50_us;    ///< Offline span after a timeout trip.
  its::Duration degraded_hold = 100_us;  ///< Quiet time before degraded clears.

  bool enabled() const {
    return (period > 0 && length > 0) || dead_at > 0 || degrade_errors > 0 ||
           offline_timeouts > 0;
  }
};

/// One complete fault-resilience configuration: what to inject and how the
/// kernel-side swap path responds (retry budget, backoff, sync deadline).
struct FaultProfile {
  bool enabled = false;        ///< Master switch: false = bit-identical sim.
  std::uint64_t seed = 1;      ///< Injector RNG stream (independent of sim seed).

  // Per-operation error rates.
  double read_error_rate = 0.0;   ///< Media read fails (detected at completion).
  double write_error_rate = 0.0;  ///< Media program fails.
  double link_error_rate = 0.0;   ///< Link transfer fails (any direction).

  LatencyModelConfig latency{};

  // Swap-path retry/backoff policy (consumed by vm::RetryPolicy).
  unsigned max_retries = 3;           ///< Bounded retries per demand read.
  its::Duration backoff_base = 1_us;  ///< First backoff.
  double backoff_mult = 2.0;          ///< Exponential growth per retry.
  its::Duration backoff_cap = 64_us;  ///< Ceiling on any single backoff.

  /// Graceful-degradation watchdog: a synchronous busy-wait that would
  /// exceed this deadline is aborted and the fault falls back to
  /// asynchronous mode.  0 = auto (2 × ctx_switch_cost — the point where
  /// paying for a switch-out/switch-in pair beats spinning).
  its::Duration sync_deadline = 0;

  /// Sustained-outage model (scheduled windows + health-FSM thresholds).
  OutageModelConfig outage{};
};

struct FaultStats {
  std::uint64_t media_errors = 0;   ///< Media errors surfaced to a retrier.
  std::uint64_t link_errors = 0;    ///< Link errors surfaced to a retrier.
  std::uint64_t internal_redos = 0; ///< Errors absorbed by fire-and-forget ops.
  std::uint64_t tail_events = 0;    ///< Operations that drew a latency tail.
  its::Duration extra_latency = 0;  ///< Σ injected latency beyond base, ns.
};

/// Seeded, deterministic fault source.  One instance per Simulator; the
/// storage devices consult it on every scheduled operation.
class FaultInjector {
 public:
  FaultInjector() = default;  ///< Disabled (inert) injector.
  explicit FaultInjector(const FaultProfile& profile);

  bool enabled() const { return cfg_.enabled; }
  const FaultProfile& profile() const { return cfg_; }

  /// Full service time for a media operation with base latency `base`
  /// starting at `start`: base + clamped tail draw, burst-multiplied.
  /// Returns `base` unchanged (and draws nothing) when disabled.
  its::Duration inflate_media_latency(its::SimTime start, its::Duration base,
                                      bool write);

  /// Draws a media error for one operation.  `surfaced` says whether the
  /// caller will handle the error (retry path) or absorb it (internal redo)
  /// — only the stats bucket differs.
  bool media_error(bool write, bool surfaced);

  /// Draws a link error for one transfer.
  bool link_error(bool surfaced);

  /// True while `t` falls inside a configured burst window.
  bool in_burst(its::SimTime t) const;

  /// True while `t` falls inside a scheduled outage window (or past a
  /// permanent `dead_at`).  Pure clock arithmetic — never draws RNG.
  bool in_outage(its::SimTime t) const;

  /// Earliest time ≥ `t` at which the device accepts work again: the end
  /// of the scheduled outage window covering `t`, or `t` itself when the
  /// device is up.  Past a permanent `dead_at` the device never clears;
  /// this returns `t` and callers must consult in_outage() first.
  its::SimTime outage_clear(its::SimTime t) const;

  const FaultStats& stats() const { return stats_; }

  /// Re-seeds the RNG from the profile and zeroes the stats.
  void reset();

 private:
  its::Duration tail_draw();

  FaultProfile cfg_{};
  util::Rng rng_{};
  FaultStats stats_{};
};

/// Named profile presets for the CLI (`--fault-profile=`), the CI's
/// env-driven hostile runs, and the ablation bench:
///   none     injection disabled (the default simulator)
///   tail     lognormal read-latency tail, no errors
///   bursty   periodic burst windows (device GC), no errors
///   errors   media/link error rates, no tail
///   outage   scheduled whole-device outage windows, no per-op faults
///   hostile  errors + Pareto tail + bursts + outages — the worst of everything
std::optional<FaultProfile> profile_by_name(std::string_view name);

/// The preset names accepted by profile_by_name, for error messages.
const std::vector<std::string_view>& profile_names();

}  // namespace its::fault
