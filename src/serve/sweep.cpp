#include "serve/sweep.h"

#include "core/policy.h"
#include "farm/farm.h"
#include "serve/scenario.h"

#include <cstddef>
#include <functional>

namespace its::serve {

std::vector<ServePoint> run_serve_sweep(
    const ServeConfig& base, std::span<const double> overcommits,
    std::span<const core::PolicyKind> policies, unsigned jobs) {
  const std::size_t n = overcommits.size() * policies.size();
  std::vector<ServePoint> out(n);
  farm::Farm farm(jobs);
  farm.run_indexed(n, [&](std::size_t i) {
    const std::size_t pi = i / overcommits.size();
    const std::size_t oi = i % overcommits.size();
    ServeConfig cfg = base;
    cfg.overcommit = overcommits[oi];
    ServePoint& pt = out[i];
    pt.policy = policies[pi];
    pt.overcommit = overcommits[oi];
    pt.metrics = run_serve(cfg, policies[pi]);
  });
  return out;
}

}  // namespace its::serve
