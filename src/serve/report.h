// Machine-readable serving results.
//
// One row per (policy, overcommit, tier) plus an `all` aggregate row per
// sweep point: lifecycle counters, SLO violations, and the streaming
// percentile ladder (p50/p99/p999/max in ns).  Every cell is either an
// integer or a fixed-precision ratio, so the bytes are reproducible — the
// determinism tests compare whole files across --jobs widths.
#pragma once

#include "serve/sweep.h"

#include <iosfwd>
#include <span>
#include <string>

namespace its::serve {

/// Header + rows for every sweep point.
void write_serve_csv(std::ostream& os, std::span<const ServePoint> points);

/// Convenience: formats write_serve_csv into a string.
std::string serve_csv(std::span<const ServePoint> points);

/// Writes serve_csv to `path`; throws std::runtime_error on I/O failure.
void save_serve_csv(const std::string& path, std::span<const ServePoint> points);

}  // namespace its::serve
