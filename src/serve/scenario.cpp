#include "serve/scenario.h"

#include "core/config.h"
#include "core/policy.h"
#include "core/simulator.h"
#include "fault/fault_injector.h"
#include "obs/event_trace.h"
#include "sched/process.h"
#include "serve/arrival.h"
#include "trace/trace.h"
#include "trace/workloads.h"
#include "util/rng.h"
#include "util/types.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <utility>

namespace its::serve {

std::vector<TierSpec> default_tiers() {
  // Gold pays for latency on a small working set; bronze's data-intensive
  // requests are exactly the memory hogs an overcommitted pool punishes.
  return {
      {"gold", trace::WorkloadId::kDeepSjeng, 0.5, 60, 2'000'000},
      {"silver", trace::WorkloadId::kXz, 0.3, 40, 8'000'000},
      {"bronze", trace::WorkloadId::kRandomWalk, 0.2, 20, 30'000'000},
  };
}

ServeConfig::ServeConfig() {
  // Serving requests run mini-scale templates; scale the SCHED_RR slice
  // range the same way ExperimentConfig does so interleaving matches.
  sim.slice_min = 50_us;
  sim.slice_max = 8_ms;
  // CI's hostile job forces every scenario under a named fault profile,
  // exactly like the batch experiments (docs/robustness.md).
  if (const char* env = std::getenv("ITS_FAULT_PROFILE"))
    if (auto p = fault::profile_by_name(env)) sim.fault = *p;
}

namespace {

double total_share(const std::vector<TierSpec>& tiers) {
  double s = 0.0;
  for (const TierSpec& t : tiers) s += std::max(t.share, 0.0);
  return s > 0.0 ? s : 1.0;
}

}  // namespace

std::vector<Request> generate_requests(const ServeConfig& cfg) {
  ArrivalGenerator gaps(cfg.arrivals);
  // Tier draws ride an independent stream of the same seed so adding a
  // tier never perturbs the arrival instants.
  util::Rng tier_rng(cfg.arrivals.seed, 0x73657276656e74ull);
  const double shares = total_share(cfg.tiers);

  std::vector<Request> out;
  // The scenario clock starts at 0, so the open-loop window's Duration is
  // also the last admissible arrival instant.
  const its::SimTime horizon = its::SimTime{0} + cfg.duration;
  its::SimTime t = 0;
  for (;;) {
    t += gaps.next_gap();
    if (t > horizon) break;
    if (cfg.max_requests != 0 && out.size() >= cfg.max_requests) break;
    const double r = tier_rng.next_double() * shares;
    double cum = 0.0;
    std::uint32_t tier = 0;
    for (std::uint32_t i = 0; i < cfg.tiers.size(); ++i) {
      cum += std::max(cfg.tiers[i].share, 0.0);
      if (r < cum) {
        tier = i;
        break;
      }
      tier = i;  // numeric slack lands in the last tier
    }
    out.push_back(Request{out.size(), t, tier});
  }
  return out;
}

std::uint64_t serve_dram_bytes(const ServeConfig& cfg) {
  const double shares = total_share(cfg.tiers);
  double mean_hot = 0.0;
  for (const TierSpec& t : cfg.tiers) {
    const trace::WorkloadSpec& spec = trace::spec_for(t.workload);
    mean_hot += (std::max(t.share, 0.0) / shares) *
                // its-lint: allow(units-narrow): share-weighted sizing estimate
                static_cast<double>(spec.hot_bytes) * cfg.footprint_scale;
  }
  const double slots = cfg.admit_limit != 0 ? cfg.admit_limit : 1.0;
  const double bytes = mean_hot * slots / std::max(cfg.overcommit, 0.01);
  const std::uint64_t page_aligned =
      (static_cast<std::uint64_t>(bytes) + its::kPageSize - 1) &
      ~(its::kPageSize - 1);
  // Floor: enough frames that pinned in-flight transfers can never starve
  // the allocator even under the widest prefetch degree.
  return std::max<std::uint64_t>(page_aligned, 64 * its::kPageSize);
}

double ServeMetrics::requests_per_sec() const {
  if (sim.makespan == 0) return 0.0;
  return static_cast<double>(completed) /
         // its-lint: allow(units-narrow): throughput rate, not ns accounting
         (static_cast<double>(sim.makespan) * 1e-9);
}

ServeMetrics run_serve(const ServeConfig& cfg, core::PolicyKind policy,
                       obs::EventTrace* etrace) {
  using obs::EventKind;

  ServeMetrics out;
  for (const TierSpec& t : cfg.tiers) {
    TierMetrics tm;
    tm.name = t.name;
    tm.slo_ns = t.slo_ns;
    out.tiers.push_back(std::move(tm));
  }

  const std::vector<Request> reqs = generate_requests(cfg);
  if (reqs.empty()) return out;

  core::SimConfig sim_cfg = cfg.sim;
  sim_cfg.dram_bytes = serve_dram_bytes(cfg);
  core::Simulator sim(sim_cfg, policy);
  if (etrace != nullptr) sim.set_trace(etrace);

  // One template trace per tier, shared by every request of that tier —
  // each process still owns its address space and page tables.
  std::vector<std::shared_ptr<const trace::Trace>> templates;
  templates.reserve(cfg.tiers.size());
  for (const TierSpec& t : cfg.tiers) {
    trace::GeneratorConfig g;
    g.footprint_scale = cfg.footprint_scale;
    g.length_scale = cfg.length_scale;
    g.seed = cfg.arrivals.seed;
    templates.push_back(
        std::make_shared<trace::Trace>(trace::generate(t.workload, g)));
  }

  for (const Request& rq : reqs) {
    const TierSpec& t = cfg.tiers[rq.tier];
    sim.add_process_at(
        rq.arrive,
        std::make_unique<sched::Process>(
            static_cast<its::Pid>(rq.id),
            t.name + "-" + std::to_string(rq.id), t.priority,
            templates[rq.tier]));
  }

  // The admission gate and retire hook close the request lifecycle: the
  // recorded arrive timestamp is the one retirement reconciles against, so
  // the checker's latency invariant holds to the nanosecond.
  std::vector<its::SimTime> arrived_at(reqs.size(), 0);
  unsigned in_flight = 0;
  sim.set_admission_gate([&](sched::Process& p) {
    const Request& rq = reqs[p.pid()];
    TierMetrics& tm = out.tiers[rq.tier];
    ++tm.arrivals;
    ++out.arrivals;
    if (etrace != nullptr)
      etrace->record(EventKind::kRequestArrive, sim.now(), p.pid(), rq.id,
                     rq.tier);
    if (cfg.admit_limit != 0 && in_flight >= cfg.admit_limit) {
      ++tm.rejects;
      ++out.rejects;
      return false;
    }
    ++in_flight;
    ++tm.admits;
    ++out.admits;
    arrived_at[p.pid()] = sim.now();
    if (etrace != nullptr)
      etrace->record(EventKind::kRequestAdmit, sim.now(), p.pid(), rq.id,
                     rq.tier);
    return true;
  });
  sim.set_retire_hook([&](sched::Process& p) {
    const Request& rq = reqs[p.pid()];
    const TierSpec& t = cfg.tiers[rq.tier];
    TierMetrics& tm = out.tiers[rq.tier];
    --in_flight;
    const its::Duration lat = sim.now() - arrived_at[p.pid()];
    ++tm.completed;
    ++out.completed;
    tm.latency.add(lat);
    out.latency.add(lat);
    if (etrace != nullptr)
      etrace->record(EventKind::kRequestDone, sim.now(), p.pid(), rq.id, lat,
                     rq.tier);
    if (t.slo_ns != 0 && lat > t.slo_ns) {
      ++tm.slo_violations;
      ++out.slo_violations;
      if (etrace != nullptr)
        etrace->record(EventKind::kSloViolation, sim.now(), p.pid(), rq.id,
                       lat, t.slo_ns);
    }
  });

  out.sim = sim.run();
  return out;
}

}  // namespace its::serve
