// Deterministic open-loop arrival processes.
//
// The serving scenario (serve/scenario.h) is open-loop: requests arrive on
// their own schedule whether or not the machine keeps up — the regime where
// tail latency, not makespan, is the figure of merit.  Two interarrival
// models are provided, both seeded and fully deterministic on util::Rng
// (PCG32), so an arrival stream replays bit-identically from its seed:
//
//   kPoisson  memoryless arrivals at a fixed mean rate — the classic
//             open-loop baseline.
//   kMmpp     a two-state Markov-modulated Poisson process: a quiet state
//             at the base rate and a burst state at `burst_rate_mult`
//             times it, with exponentially distributed dwell times.  The
//             long-run fraction of time spent bursting is
//             `burst_fraction`; bursts are what separate p999 from p50.
//
// All gap and dwell state is integer nanoseconds (its::Duration); doubles
// appear only transiently inside the inverse-CDF draw, and every draw is
// rounded to an integral gap >= 1 ns before it touches generator state, so
// downstream event ordering never depends on floating-point tie-breaking.
#pragma once

#include "util/rng.h"
#include "util/types.h"

#include <cstdint>
#include <optional>
#include <string_view>

namespace its::serve {

enum class ArrivalModel : std::uint8_t { kPoisson, kMmpp };

std::string_view arrival_model_name(ArrivalModel m);
/// Case-sensitive lookup ("poisson", "mmpp"); nullopt on unknown names.
std::optional<ArrivalModel> find_arrival_model(std::string_view name);

struct ArrivalConfig {
  ArrivalModel model = ArrivalModel::kPoisson;
  double rate_rps = 2'000.0;      ///< Mean arrival rate, requests per second.
  double burst_rate_mult = 8.0;   ///< MMPP burst-state rate multiplier.
  double burst_fraction = 0.1;    ///< Long-run fraction of time in burst.
  its::Duration mean_burst = 2_ms;  ///< Mean burst dwell.
  std::uint64_t seed = 42;        ///< Stream seed; same seed, same stream.
};

/// Draws successive interarrival gaps.  Construction resets the stream, so
/// two generators built from equal configs emit identical gap sequences.
class ArrivalGenerator {
 public:
  explicit ArrivalGenerator(const ArrivalConfig& cfg);

  /// Next interarrival gap in integer ns, always >= 1.
  its::Duration next_gap();

 private:
  static its::Duration quiet_dwell_mean(const ArrivalConfig& cfg);
  its::Duration mean_gap() const;
  its::Duration exp_gap(its::Duration mean);

  ArrivalConfig cfg_;
  util::Rng rng_;
  bool burst_ = false;
  its::Duration dwell_left_ = 0;
};

}  // namespace its::serve
