// Farmed serving sweeps — the engine behind bench/fig_serve_latency and
// bench/abl_serve_overcommit.
//
// Each (policy, overcommit) point is one independent run_serve task on the
// work-stealing farm; results are collected by submission index, so the
// sweep is byte-identical at any --jobs width (the same contract as
// core::run_grid_all — tests/serve_test.cpp pins it on the CSV bytes).
#pragma once

#include "core/policy.h"
#include "serve/scenario.h"

#include <span>
#include <vector>

namespace its::serve {

struct ServePoint {
  core::PolicyKind policy = core::PolicyKind::kIts;
  double overcommit = 1.0;
  ServeMetrics metrics;
};

/// Runs `base` at every (policy × overcommit ratio) combination on the run
/// farm.  `jobs` = 0 uses the default width, 1 the serial reference; the
/// result order is policies-major, ratios-minor regardless of width.
std::vector<ServePoint> run_serve_sweep(
    const ServeConfig& base, std::span<const double> overcommits,
    std::span<const core::PolicyKind> policies, unsigned jobs = 0);

}  // namespace its::serve
