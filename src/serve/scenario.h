// The multi-tenant open-loop serving scenario.
//
// Turns the batch simulator into a service: a seeded arrival stream
// (serve/arrival.h) spawns short-lived processes — one per request — into a
// heavily overcommitted frame pool, an admission gate caps concurrency, and
// every retirement is scored against its tenant tier's latency SLO.  This
// is the ROADMAP's production-scale setting: the paper's four fixed
// six-process batches prove ITS wins on makespan; here thousands of
// arrivals contend for DRAM sized *below* the aggregate working set and
// the figure of merit is p99/p999 latency and SLO-violation count per
// tier (docs/serving.md).
//
// Determinism contract: a ServeConfig plus a policy fully determines the
// run — the arrival stream, tier draws, admission decisions and therefore
// every latency sample replay bit-identically from the seed, and farmed
// sweeps (serve/sweep.h) are byte-identical at any --jobs width.
#pragma once

#include "core/config.h"
#include "core/metrics.h"
#include "core/policy.h"
#include "serve/arrival.h"
#include "trace/workloads.h"
#include "util/quantile.h"
#include "util/types.h"

#include <cstdint>
#include <string>
#include <vector>

namespace its::obs {
class EventTrace;
}

namespace its::serve {

/// One tenant/priority tier: which workload template its requests execute,
/// how much of the arrival stream it owns, and the latency it promised.
struct TierSpec {
  std::string name;
  trace::WorkloadId workload = trace::WorkloadId::kDeepSjeng;
  double share = 1.0;        ///< Fraction of arrivals drawn into this tier.
  int priority = 30;         ///< Process priority (maps to the RR slice).
  its::Duration slo_ns = 0;  ///< Per-request latency SLO; 0 = no SLO.
};

/// The default three-tenant mix: a latency-sensitive gold tier on a small
/// working set, a mid silver tier, and a data-intensive bronze tier whose
/// requests are exactly the memory hogs overcommit punishes.
std::vector<TierSpec> default_tiers();

struct ServeConfig {
  ArrivalConfig arrivals;
  std::vector<TierSpec> tiers = default_tiers();
  its::Duration duration = 50_ms;       ///< Arrival window (open loop).
  std::uint64_t max_requests = 0;       ///< Hard cap on arrivals; 0 = none.
  unsigned admit_limit = 24;   ///< Max in-flight admitted requests; 0 = ∞.
  double overcommit = 2.0;     ///< Admitted working set : DRAM ratio.
  double footprint_scale = 0.05;  ///< Workload template footprint scaling.
  double length_scale = 0.01;     ///< Workload template length scaling.
  core::SimConfig sim;         ///< Base config; dram_bytes derived below.

  ServeConfig();
};

/// One scheduled request of the open-loop stream.
struct Request {
  std::uint64_t id = 0;       ///< Dense 0..n-1 — doubles as the pid.
  its::SimTime arrive = 0;    ///< Scheduled arrival, ns.
  std::uint32_t tier = 0;     ///< Index into ServeConfig::tiers.
};

/// Materialises the arrival schedule: gaps from the arrival generator,
/// tiers drawn share-weighted from an independent seeded stream.  Pure in
/// `cfg` — calling it twice is the replay-determinism test.
std::vector<Request> generate_requests(const ServeConfig& cfg);

/// DRAM sizing that realises cfg.overcommit: the frame pool holds
/// admit_limit share-weighted mean working sets divided by the overcommit
/// ratio, so 1.0 fits every admitted request and 4.0 fits a quarter.
std::uint64_t serve_dram_bytes(const ServeConfig& cfg);

/// Per-tier SLO account: lifecycle counters plus a streaming latency
/// digest (util/quantile.h) for p50/p99/p999.
struct TierMetrics {
  std::string name;
  its::Duration slo_ns = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t admits = 0;
  std::uint64_t rejects = 0;
  std::uint64_t completed = 0;
  std::uint64_t slo_violations = 0;
  util::QuantileDigest latency;
};

struct ServeMetrics {
  core::SimMetrics sim;          ///< The underlying simulator account.
  std::vector<TierMetrics> tiers;
  std::uint64_t arrivals = 0;    ///< Always admits + rejects.
  std::uint64_t admits = 0;
  std::uint64_t rejects = 0;
  std::uint64_t completed = 0;
  std::uint64_t slo_violations = 0;
  util::QuantileDigest latency;  ///< All tiers merged.

  /// Sustained throughput: completed requests per second of sim time.
  double requests_per_sec() const;
};

/// Runs one serving scenario under `policy`.  When `etrace` is non-null the
/// request lifecycle (kRequestArrive/kRequestAdmit/kRequestDone/
/// kSloViolation) is recorded alongside the simulator's own events and the
/// obs::InvariantChecker can reconcile every latency to the nanosecond.
ServeMetrics run_serve(const ServeConfig& cfg, core::PolicyKind policy,
                       obs::EventTrace* etrace = nullptr);

}  // namespace its::serve
