#include "serve/arrival.h"

#include "util/types.h"

#include <algorithm>
#include <cmath>

namespace its::serve {

std::string_view arrival_model_name(ArrivalModel m) {
  switch (m) {
    case ArrivalModel::kPoisson: return "poisson";
    case ArrivalModel::kMmpp:    return "mmpp";
  }
  return "unknown";
}

std::optional<ArrivalModel> find_arrival_model(std::string_view name) {
  if (name == "poisson") return ArrivalModel::kPoisson;
  if (name == "mmpp") return ArrivalModel::kMmpp;
  return std::nullopt;
}

ArrivalGenerator::ArrivalGenerator(const ArrivalConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  // The stream opens in the quiet state with a full dwell ahead of it.
  if (cfg_.model == ArrivalModel::kMmpp)
    dwell_left_ = exp_gap(quiet_dwell_mean(cfg_));
}

its::Duration ArrivalGenerator::quiet_dwell_mean(const ArrivalConfig& cfg) {
  // Long-run burst fraction f = mean_burst / (mean_burst + mean_quiet).
  const double f = std::clamp(cfg.burst_fraction, 0.001, 0.999);
  // its-lint: allow(units-narrow): burst-fraction algebra runs in doubles
  const double mean = static_cast<double>(cfg.mean_burst) * (1.0 - f) / f;
  return std::max<its::Duration>(static_cast<its::Duration>(mean), 1);
}

its::Duration ArrivalGenerator::mean_gap() const {
  const double gap = 1e9 / std::max(cfg_.rate_rps, 1e-3);
  return std::max<its::Duration>(static_cast<its::Duration>(gap), 1);
}

its::Duration ArrivalGenerator::exp_gap(its::Duration mean) {
  // Inverse-CDF exponential; 1 - U keeps the argument strictly positive.
  // The only floating-point step in the generator: the draw is rounded to
  // an integral gap >= 1 ns before it touches any state.
  const double draw =
      -std::log(1.0 - rng_.next_double()) * static_cast<double>(mean);
  return std::max<its::Duration>(static_cast<its::Duration>(draw), 1);
}

its::Duration ArrivalGenerator::next_gap() {
  const its::Duration base = mean_gap();
  if (cfg_.model == ArrivalModel::kPoisson) return exp_gap(base);
  // MMPP: draw at the current state's rate; a gap that outlives the state's
  // remaining dwell is discarded (memorylessness makes the redraw exact)
  // and the state flips after consuming the dwell.
  its::Duration elapsed = 0;
  for (;;) {
    const its::Duration mean =
        burst_ ? std::max<its::Duration>(
                     static_cast<its::Duration>(
                         // its-lint: allow(units-narrow): rate scaling factor
                         static_cast<double>(base) /
                         std::max(cfg_.burst_rate_mult, 1.0)),
                     1)
               : base;
    const its::Duration gap = exp_gap(mean);
    if (gap <= dwell_left_) {
      dwell_left_ -= gap;
      return elapsed + gap;  // gap >= 1, so the total is too.
    }
    elapsed += dwell_left_;
    burst_ = !burst_;
    dwell_left_ = exp_gap(burst_ ? cfg_.mean_burst : quiet_dwell_mean(cfg_));
  }
}

}  // namespace its::serve
