#include "serve/report.h"

#include "core/policy.h"
#include "serve/scenario.h"
#include "serve/sweep.h"
#include "util/quantile.h"
#include "util/types.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace its::serve {

namespace {

void row(std::ostream& os, const ServePoint& pt, const char* tier,
         its::Duration slo_ns, std::uint64_t arrivals, std::uint64_t admits,
         std::uint64_t rejects, std::uint64_t completed,
         std::uint64_t violations, const util::QuantileDigest& lat,
         its::SimTime makespan) {
  char oc[32];
  std::snprintf(oc, sizeof oc, "%.2f", pt.overcommit);
  os << core::policy_name(pt.policy) << ',' << oc << ',' << tier << ','
     << slo_ns << ',' << arrivals << ',' << admits << ',' << rejects << ','
     << completed << ',' << violations << ',' << lat.quantile(0.50) << ','
     << lat.quantile(0.99) << ',' << lat.quantile(0.999) << ',' << lat.max()
     << ',' << makespan << '\n';
}

}  // namespace

void write_serve_csv(std::ostream& os, std::span<const ServePoint> points) {
  os << "policy,overcommit,tier,slo_ns,arrivals,admits,rejects,completed,"
        "slo_violations,p50_ns,p99_ns,p999_ns,max_ns,makespan_ns\n";
  for (const ServePoint& pt : points) {
    const ServeMetrics& m = pt.metrics;
    for (const TierMetrics& tm : m.tiers)
      row(os, pt, tm.name.c_str(), tm.slo_ns, tm.arrivals, tm.admits,
          tm.rejects, tm.completed, tm.slo_violations, tm.latency,
          m.sim.makespan);
    row(os, pt, "all", 0, m.arrivals, m.admits, m.rejects, m.completed,
        m.slo_violations, m.latency, m.sim.makespan);
  }
}

std::string serve_csv(std::span<const ServePoint> points) {
  std::ostringstream ss;
  write_serve_csv(ss, points);
  return ss.str();
}

void save_serve_csv(const std::string& path,
                    std::span<const ServePoint> points) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("serve: cannot write " + path);
  write_serve_csv(f, points);
  if (!f) throw std::runtime_error("serve: write failed for " + path);
}

}  // namespace its::serve
