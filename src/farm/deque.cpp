#include "farm/deque.h"

#include "util/mutex.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace its::farm {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

TaskDeque::TaskDeque(std::size_t capacity) {
  // Constructors run before the object is shared; the analysis (and the
  // conc pass) exempt them from the lock requirement.
  ring_.resize(round_up_pow2(capacity < 2 ? 2 : capacity));
}

void TaskDeque::push_back(std::uint64_t task) {
  util::MutexLock l(mu_);
  if (count_ == ring_.size()) grow_locked();
  ring_[(head_ + count_) & (ring_.size() - 1)] = task;
  ++count_;
  if (count_ > max_depth_) max_depth_ = count_;
}

bool TaskDeque::try_pop_back(std::uint64_t* task) {
  util::MutexLock l(mu_);
  if (count_ == 0) return false;
  --count_;
  *task = ring_[(head_ + count_) & (ring_.size() - 1)];
  return true;
}

std::size_t TaskDeque::steal_half(std::uint64_t* out, std::size_t max_out) {
  util::MutexLock l(mu_);
  std::size_t take = (count_ + 1) / 2;  // half, rounded up: a 1-deep deque is stealable
  if (take > max_out) take = max_out;
  for (std::size_t i = 0; i < take; ++i) {
    out[i] = ring_[head_];
    head_ = (head_ + 1) & (ring_.size() - 1);
  }
  count_ -= take;
  return take;
}

std::size_t TaskDeque::size() const {
  util::MutexLock l(mu_);
  return count_;
}

std::size_t TaskDeque::max_depth() const {
  util::MutexLock l(mu_);
  return max_depth_;
}

void TaskDeque::grow_locked() {
  std::vector<std::uint64_t> bigger(ring_.size() * 2);
  for (std::size_t i = 0; i < count_; ++i)
    bigger[i] = ring_[(head_ + i) & (ring_.size() - 1)];
  ring_ = std::move(bigger);
  head_ = 0;
}

}  // namespace its::farm
