// farm — the work-stealing run farm.
//
// Executes batches of *independent* tasks (in this repo: whole simulation
// runs, each owning its RNG and event clock) across a fixed pool of worker
// threads.  Each worker owns a cache-line-aligned slot holding its task
// deque and counters; a worker whose deque runs dry steals half of a
// victim's queue (farm/deque.h).  Determinism contract: tasks are named by
// their submission index and results are collected by that index, so the
// output of a farm run is byte-identical at any worker count and under any
// steal interleaving — the golden files do not know the farm exists.  The
// determinism matrix (tests/farm_test.cpp, ctest -L farm) and the TSAN CI
// job enforce this; docs/performance.md describes the design.
//
// Lock discipline (docs/concurrency.md): every mutable member is either
// GUARDED_BY(mu_), atomic with explicit memory_order at each access, or
// immutable after construction — annotated for clang -Wthread-safety and
// checked portably by its_lint's conc pass.
#pragma once

#include "farm/deque.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace its::farm {

/// Per-worker counters, written only by the owning worker during a run and
/// safe to read once `run_indexed` has returned.
struct WorkerStats {
  std::uint64_t tasks_run = 0;     ///< Tasks this worker executed.
  std::uint64_t steals = 0;        ///< Successful steal_half visits.
  std::uint64_t stolen_tasks = 0;  ///< Tasks acquired by stealing.
  std::uint64_t steal_misses = 0;  ///< Victims found empty.
  std::size_t max_queue_depth = 0; ///< High-water mark of the own deque.
};

/// Aggregated view over every worker, returned by Farm::stats().
struct FarmStats {
  std::vector<WorkerStats> workers;

  std::uint64_t total_tasks() const;
  std::uint64_t total_steals() const;
  std::uint64_t total_stolen_tasks() const;

  /// Fraction of all executed tasks that worker `w` ran — the farm's
  /// occupancy/balance measure (1/jobs each when perfectly balanced).
  double occupancy(std::size_t w) const;
};

/// A fixed-width work-stealing thread pool.
///
/// `Farm(1)` spawns no threads and runs tasks inline in submission order —
/// the exact serial semantics of the pre-farm code — so `--jobs 1` is
/// always available as the bit-for-bit reference execution.  Nested
/// `run_indexed` calls from inside a farm task also run inline, which
/// makes composing farmed helpers (a farmed sweep whose tasks call a
/// farmed grid) deadlock-free by construction.
class Farm {
 public:
  /// `jobs` worker threads; 0 means default_jobs().
  explicit Farm(unsigned jobs = 0);
  ~Farm();

  Farm(const Farm&) = delete;
  Farm& operator=(const Farm&) = delete;

  /// Worker width (≥ 1).
  unsigned jobs() const { return static_cast<unsigned>(slots_.size()); }

  /// Runs task(0), …, task(n-1), blocking until every task finished.
  /// Tasks must be independent; they may run in any order on any worker.
  /// The first exception a task throws is rethrown here after the batch
  /// drains (remaining tasks still run).  Not reentrant from two external
  /// threads; calls from inside a farm task execute inline.
  void run_indexed(std::size_t n,
                   const std::function<void(std::size_t)>& task)
      EXCLUDES(run_mu_, mu_);

  /// Per-worker counters.  Call only while no run is in flight.
  FarmStats stats() const;

  /// ITS_JOBS environment override, else std::thread::hardware_concurrency
  /// (never 0).
  static unsigned default_jobs();

  /// True on a thread currently executing a farm task.
  static bool in_worker();

 private:
  /// One worker's world, padded to its own cache line so deque and
  /// counter traffic never false-shares with a neighbour.
  struct alignas(util::kDestructiveInterferenceSize) Slot {
    TaskDeque deque;
    WorkerStats stats;
  };

  void worker_main(unsigned w);
  /// Exploit-own-deque / explore-victims loop for the current batch.
  void drain(unsigned w, const std::function<void(std::size_t)>& task);
  void execute(unsigned w, const std::function<void(std::size_t)>& task,
               std::uint64_t id);

  // Sized in the constructor, immutable afterwards; workers index their
  // own slot lock-free by design.
  // its-lint: allow(conc-guarded): immutable after construction
  std::vector<std::unique_ptr<Slot>> slots_;
  // Spawned in the constructor, joined in the destructor, never touched
  // in between.
  // its-lint: allow(conc-guarded): ctor/dtor-only access
  std::vector<std::thread> threads_;

  util::Mutex run_mu_;  ///< Serialises external run_indexed callers.

  /// The batch-handshake lock, on its own cache line so worker handshake
  /// traffic never false-shares with the caller-serialisation lock above
  /// (its_lint conc-false-share).
  alignas(util::kDestructiveInterferenceSize) mutable util::Mutex mu_;
  util::CondVar cv_work_;  ///< Signals a new batch (epoch_ bumped).
  util::CondVar cv_done_;  ///< Signals batch completion to the master.
  const std::function<void(std::size_t)>* task_ GUARDED_BY(mu_) = nullptr;
  std::uint64_t epoch_ GUARDED_BY(mu_) = 0;  ///< Batch generation counter.
  std::size_t busy_ GUARDED_BY(mu_) = 0;     ///< Workers inside drain().
  std::exception_ptr error_ GUARDED_BY(mu_); ///< First task failure.
  bool stop_ GUARDED_BY(mu_) = false;        ///< Destructor shutdown flag.
  /// Unfinished tasks this epoch.  Deliberately *not* guarded: drain()
  /// polls it lock-free on the task fast path, so every access states its
  /// memory_order explicitly (acquire loads pair with the release store in
  /// run_indexed and the acq_rel fetch_sub in execute — the exemplar for
  /// its_lint's conc-atomic-order rule).
  std::atomic<std::size_t> remaining_{0};
};

/// Farms `task` over [0, n) and collects the results keyed by submission
/// index — the deterministic-collection helper every caller should use.
template <typename R>
std::vector<R> run_collect(Farm& farm, std::size_t n,
                           const std::function<R(std::size_t)>& task) {
  std::vector<R> out(n);
  farm.run_indexed(n, [&](std::size_t i) { out[i] = task(i); });
  return out;
}

}  // namespace its::farm
