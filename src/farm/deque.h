// Per-worker task deque for the run farm.
//
// Chase-Lev shape: the owning worker pushes and pops at the back (LIFO —
// the freshest task is the one whose inputs are warmest), thieves take
// from the front (FIFO — the oldest tasks are the ones the owner will get
// to last) and take *half* the queue per steal so one visit rebalances a
// loaded victim instead of trickling tasks over one at a time (the
// exploit/explore scheduler shape; see docs/performance.md).
//
// Tasks are plain submission indices; the farm owns the callable.  A small
// mutex guards each deque: a task here is an entire simulation run
// (milliseconds to seconds), so queue operations are nowhere near the hot
// path and an uncontended lock keeps every interleaving — including the
// single-element owner-vs-thief race window — trivially correct and
// ThreadSanitizer-clean (tests/farm_test.cpp hammers exactly that window
// under TSan).  The members are GUARDED_BY(mu_) so clang -Wthread-safety
// proves the discipline and its_lint's conc-guarded rule keeps the
// annotations present on every compiler (docs/concurrency.md).
#pragma once

#include "util/mutex.h"
#include "util/thread_annotations.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace its::farm {

/// Work-stealing double-ended queue of task indices.
///
/// Storage is a power-of-two ring buffer that doubles when full, so
/// wrap-around is routine rather than a capacity error; FIFO order of the
/// front is preserved across growth and wrap.
class TaskDeque {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit TaskDeque(std::size_t capacity = 64);

  /// Owner: enqueue a task at the back.
  void push_back(std::uint64_t task);

  /// Owner: dequeue the most recently pushed task.  Returns false when
  /// the deque is empty (the thief may have emptied it concurrently).
  bool try_pop_back(std::uint64_t* task);

  /// Thief: remove up to half the queue (rounded up, capped at `max_out`)
  /// from the *front*, oldest first, into `out`.  Returns the number
  /// taken; 0 means the deque was empty.  Stealing from a single-element
  /// deque takes that element — the classic race window the mutex closes.
  std::size_t steal_half(std::uint64_t* out, std::size_t max_out);

  /// Tasks currently queued (racy snapshot between owner and thieves).
  std::size_t size() const;

  bool empty() const { return size() == 0; }

  /// High-water mark of `size()` since construction (per-worker queue
  /// depth counter surfaced through farm::FarmStats).
  std::size_t max_depth() const;

 private:
  /// Doubles the ring, re-laying tasks out from slot 0.  Caller holds mu_.
  void grow_locked() REQUIRES(mu_);

  mutable util::Mutex mu_;
  std::vector<std::uint64_t> ring_ GUARDED_BY(mu_);  ///< Power-of-two size.
  std::size_t head_ GUARDED_BY(mu_) = 0;       ///< Index of the oldest task.
  std::size_t count_ GUARDED_BY(mu_) = 0;      ///< Tasks currently queued.
  std::size_t max_depth_ GUARDED_BY(mu_) = 0;  ///< High-water mark of count_.
};

}  // namespace its::farm
