#include "farm/farm.h"

#include "util/mutex.h"

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <memory>
#include <thread>

namespace its::farm {

namespace {
/// Set while a thread is executing farm tasks, so nested run_indexed
/// calls degrade to inline serial execution instead of deadlocking on a
/// pool whose workers are all busy running their callers.
thread_local bool tl_in_worker = false;

/// Cap on tasks moved per steal visit; steal_half never needs more than
/// half the largest queue a victim realistically accumulates, and a fixed
/// buffer keeps the explore path allocation-free.
constexpr std::size_t kStealBatch = 64;
}  // namespace

std::uint64_t FarmStats::total_tasks() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.tasks_run;
  return n;
}

std::uint64_t FarmStats::total_steals() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.steals;
  return n;
}

std::uint64_t FarmStats::total_stolen_tasks() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.stolen_tasks;
  return n;
}

double FarmStats::occupancy(std::size_t w) const {
  std::uint64_t total = total_tasks();
  if (total == 0 || w >= workers.size()) return 0.0;
  return static_cast<double>(workers[w].tasks_run) /
         static_cast<double>(total);
}

unsigned Farm::default_jobs() {
  if (const char* env = std::getenv("ITS_JOBS")) {
    unsigned v = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (v > 0) return v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool Farm::in_worker() { return tl_in_worker; }

Farm::Farm(unsigned jobs) {
  if (jobs == 0) jobs = default_jobs();
  slots_.reserve(jobs);
  for (unsigned w = 0; w < jobs; ++w) slots_.push_back(std::make_unique<Slot>());
  // jobs == 1 keeps the calling thread as the only executor: no worker
  // threads, no handshakes — the serial reference execution.
  if (jobs == 1) return;
  threads_.reserve(jobs);
  for (unsigned w = 0; w < jobs; ++w)
    threads_.emplace_back([this, w] { worker_main(w); });
}

Farm::~Farm() {
  {
    util::MutexLock l(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Farm::run_indexed(std::size_t n,
                       const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  if (threads_.empty() || tl_in_worker) {
    // Serial reference path (jobs == 1) and the nested-call fallback.
    // Same contract as the threaded path: the batch drains fully and the
    // first failure is rethrown at the end.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        task(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    // Only the single-owner serial farm may touch slot 0's counters here;
    // a nested call runs on a worker whose own execute() already counts.
    if (threads_.empty()) slots_[0]->stats.tasks_run += n;
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  util::MutexLock serial(run_mu_);
  {
    util::MutexLock l(mu_);
    // Round-robin initial distribution; stealing rebalances from there.
    for (std::size_t i = 0; i < n; ++i)
      slots_[i % slots_.size()]->deque.push_back(i);
    task_ = &task;
    error_ = nullptr;
    remaining_.store(n, std::memory_order_release);
    ++epoch_;
  }
  cv_work_.notify_all();

  std::exception_ptr first_error;
  {
    util::MutexLock l(mu_);
    // Explicit wait loop, not a predicate lambda: a lambda body is
    // analyzed as a separate unannotated function, so -Wthread-safety
    // would lose the fact that busy_ is only ever read under mu_.
    // Waiting for busy_ == 0 (not just remaining_ == 0) guarantees no
    // worker still holds a pointer into this call's `task` when we return.
    while (remaining_.load(std::memory_order_acquire) != 0 || busy_ != 0)
      cv_done_.wait(l);
    task_ = nullptr;
    first_error = error_;
    error_ = nullptr;
  }
  if (first_error) std::rethrow_exception(first_error);
}

void Farm::worker_main(unsigned w) {
  tl_in_worker = true;
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    {
      util::MutexLock l(mu_);
      while (!stop_ && epoch_ == seen) cv_work_.wait(l);
      if (stop_) return;
      seen = epoch_;
      task = task_;
      if (task == nullptr) continue;  // stale wake between batches
      ++busy_;  // same lock hold as the task_ read: the master cannot
                // retire `task` until this worker leaves drain()
    }
    drain(w, *task);
    {
      util::MutexLock l(mu_);
      --busy_;
    }
    cv_done_.notify_all();
  }
}

void Farm::drain(unsigned w, const std::function<void(std::size_t)>& task) {
  Slot& self = *slots_[w];
  std::array<std::uint64_t, kStealBatch> loot;
  std::uint64_t id = 0;
  while (remaining_.load(std::memory_order_acquire) > 0) {
    // Exploit: own deque, newest first.
    if (self.deque.try_pop_back(&id)) {
      execute(w, task, id);
      continue;
    }
    // Explore: sweep victims in a fixed ring order, taking half a queue
    // per visit.  Deterministic victim order keeps the farm free of
    // entropy (its_lint det-rand applies here too); fairness comes from
    // each worker starting the sweep at its own successor.
    bool got = false;
    for (std::size_t off = 1; off < slots_.size() && !got; ++off) {
      Slot& victim = *slots_[(w + off) % slots_.size()];
      std::size_t k = victim.deque.steal_half(loot.data(), loot.size());
      if (k == 0) {
        ++self.stats.steal_misses;
        continue;
      }
      ++self.stats.steals;
      self.stats.stolen_tasks += k;
      // Run the oldest stolen task now; queue the rest locally.
      for (std::size_t i = 1; i < k; ++i) self.deque.push_back(loot[i]);
      execute(w, task, loot[0]);
      got = true;
    }
    if (!got) std::this_thread::yield();
  }
}

void Farm::execute(unsigned w, const std::function<void(std::size_t)>& task,
                   std::uint64_t id) {
  try {
    task(static_cast<std::size_t>(id));
  } catch (...) {
    util::MutexLock l(mu_);
    if (!error_) error_ = std::current_exception();
  }
  ++slots_[w]->stats.tasks_run;
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the batch: wake the master (lock pairs the notify with
    // its cv_done_ wait).
    util::MutexLock l(mu_);
    cv_done_.notify_all();
  }
}

FarmStats Farm::stats() const {
  FarmStats s;
  s.workers.reserve(slots_.size());
  for (const auto& slot : slots_) {
    WorkerStats w = slot->stats;
    w.max_queue_depth = slot->deque.max_depth();
    s.workers.push_back(w);
  }
  return s;
}

}  // namespace its::farm
