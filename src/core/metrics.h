// Batch-level simulation metrics.
//
// "The definition of CPU idle time is the time that the CPU's progress
// cannot proceed because it is waiting for the completion of memory or
// storage requests" (§4.2.1).  We keep the breakdown explicit so each
// policy's behaviour is auditable: memory stalls, un-stolen busy waits,
// context-switch overhead, and whole-machine idle (every process blocked).
#pragma once

#include "sched/process.h"
#include "util/types.h"

#include <cstdint>
#include <string>
#include <vector>

namespace its::core {

struct IdleBreakdown {
  its::Duration mem_stall = 0;    ///< Cache-miss/TLB-walk service time.
  its::Duration busy_wait = 0;    ///< Sync fault wait not converted to work.
  its::Duration ctx_switch = 0;   ///< 7 µs per switch, incl. async switches.
  its::Duration no_runnable = 0;  ///< Every process blocked on I/O.

  its::Duration total() const {
    return mem_stall + busy_wait + ctx_switch + no_runnable;
  }
};

/// Snapshot of one process's outcome.
struct ProcessOutcome {
  its::Pid pid = 0;
  std::string name;
  int priority = 0;
  sched::ProcessMetrics metrics;
};

struct SimMetrics {
  IdleBreakdown idle;
  its::SimTime makespan = 0;  ///< Time the last process finished.

  /// Total time the CPU retired work on behalf of some process (compute,
  /// fault handlers, syscalls, cache service).  Memory stalls are part of
  /// this (mem_stall ⊆ cpu_busy); busy waits, context switches and
  /// no-runnable gaps are not, so by construction
  ///   cpu_busy + busy_wait + ctx_switch + no_runnable == makespan
  /// — the reconciliation the obs::InvariantChecker enforces.
  its::Duration cpu_busy = 0;

  // Batch-wide sums (Fig. 4b / 4c).
  std::uint64_t major_faults = 0;
  std::uint64_t minor_faults = 0;
  std::uint64_t llc_misses = 0;

  // Mechanism accounting.
  // File-I/O path (zero unless traces issue read/write syscalls).
  std::uint64_t file_reads = 0;
  std::uint64_t file_writes = 0;
  std::uint64_t page_cache_hits = 0;
  std::uint64_t page_cache_misses = 0;
  std::uint64_t file_writebacks = 0;

  std::uint64_t prefetch_issued = 0;    ///< Pages posted to DMA by prefetchers.
  std::uint64_t prefetch_useful = 0;    ///< Prefetched pages later touched.
  std::uint64_t preexec_episodes = 0;
  std::uint64_t preexec_lines_warmed = 0;
  std::uint64_t async_switches = 0;     ///< Faults serviced asynchronously.
  std::uint64_t evictions = 0;          ///< Frames reclaimed under pressure.
  its::Duration stolen_time = 0;        ///< Wait time converted to work.

  // Fault-injection resilience (all zero with injection disabled).
  std::uint64_t io_errors = 0;          ///< Demand-read attempts that failed.
  std::uint64_t io_retries = 0;         ///< Failed attempts reposted (with backoff).
  std::uint64_t retry_exhausted = 0;    ///< Reads that burned the whole retry budget.
  std::uint64_t deadline_aborts = 0;    ///< Sync busy-waits aborted by the watchdog.
  std::uint64_t mode_fallbacks = 0;     ///< Aborts that fell back to async mode.
  its::Duration degraded_time = 0;      ///< ns faults spent completing in background
                                        ///< after a deadline abort.

  // Device-outage availability (all zero with the outage model disabled;
  // reconciled exactly against kHealthTransition/kPool* events by the
  // obs::InvariantChecker — see docs/robustness.md).
  its::Duration health_healthy_time = 0;    ///< ns device spent healthy.
  its::Duration health_degraded_time = 0;   ///< ns device spent degraded.
  its::Duration health_offline_time = 0;    ///< ns device spent offline.
  its::Duration health_recovering_time = 0; ///< ns device spent recovering.
  std::uint64_t pool_stores = 0;            ///< Pages compressed to the fallback pool.
  std::uint64_t pool_hits = 0;              ///< Demand reads served from the pool.
  std::uint64_t pool_drains = 0;            ///< Pooled pages drained back on recovery.
  its::Bytes drain_bytes = 0;               ///< Bytes written back by the drain.
  std::uint64_t faults_served_degraded = 0; ///< Major faults entered while unhealthy.

  std::vector<ProcessOutcome> processes;

  /// Mean finish time over the ceil(n/2) highest-priority processes
  /// (Fig. 5a) or the floor(n/2) lowest (Fig. 5b).
  double avg_finish_top_half() const;
  double avg_finish_bottom_half() const;

  double prefetch_accuracy() const {
    return prefetch_issued
               ? static_cast<double>(prefetch_useful) / static_cast<double>(prefetch_issued)
               : 0.0;
  }
};

}  // namespace its::core
