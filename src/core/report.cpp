#include "core/report.h"

#include "core/experiment.h"
#include "core/metrics.h"
#include "core/policy.h"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace its::core {

void write_metrics_csv(std::ostream& os, std::span<const BatchResult> grid) {
  os << "batch,policy,cpu_busy_ns,idle_total_ns,mem_stall_ns,busy_wait_ns,"
        "ctx_switch_ns,no_runnable_ns,major_faults,minor_faults,llc_misses,"
        "prefetch_issued,prefetch_useful,preexec_episodes,preexec_lines_warmed,"
        "async_switches,evictions,stolen_ns,makespan_ns,top50_finish_ns,"
        "bottom50_finish_ns,io_errors,io_retries,retry_exhausted,"
        "deadline_aborts,mode_fallbacks,degraded_ns,file_reads,file_writes,"
        "file_writebacks,page_cache_hits,page_cache_misses,"
        "health_healthy_time_ns,health_degraded_time_ns,"
        "health_offline_time_ns,health_recovering_time_ns,pool_stores,"
        "pool_hits,pool_drains,drain_bytes,faults_served_degraded\n";
  for (const auto& r : grid) {
    for (PolicyKind k : kAllPolicies) {
      auto it = r.by_policy.find(k);
      if (it == r.by_policy.end()) continue;
      const SimMetrics& m = it->second;
      os << r.spec->name << ',' << policy_name(k) << ',' << m.cpu_busy << ','
         << m.idle.total() << ','
         << m.idle.mem_stall << ',' << m.idle.busy_wait << ',' << m.idle.ctx_switch
         << ',' << m.idle.no_runnable << ',' << m.major_faults << ','
         << m.minor_faults << ',' << m.llc_misses << ',' << m.prefetch_issued << ','
         << m.prefetch_useful << ',' << m.preexec_episodes << ','
         << m.preexec_lines_warmed << ',' << m.async_switches << ',' << m.evictions
         << ',' << m.stolen_time << ',' << m.makespan << ','
         << static_cast<std::uint64_t>(m.avg_finish_top_half()) << ','
         << static_cast<std::uint64_t>(m.avg_finish_bottom_half()) << ','
         << m.io_errors << ',' << m.io_retries << ',' << m.retry_exhausted
         << ',' << m.deadline_aborts << ',' << m.mode_fallbacks << ','
         << m.degraded_time << ',' << m.file_reads << ',' << m.file_writes
         << ',' << m.file_writebacks << ',' << m.page_cache_hits << ','
         << m.page_cache_misses << ',' << m.health_healthy_time << ','
         << m.health_degraded_time << ',' << m.health_offline_time << ','
         << m.health_recovering_time << ',' << m.pool_stores << ','
         << m.pool_hits << ',' << m.pool_drains << ',' << m.drain_bytes << ','
         << m.faults_served_degraded << '\n';
    }
  }
}

void write_processes_csv(std::ostream& os, std::span<const BatchResult> grid) {
  os << "batch,policy,pid,process,priority,finish_ns,major_faults,minor_faults,"
        "llc_misses,mem_stall_ns,busy_wait_ns,stolen_ns\n";
  for (const auto& r : grid) {
    for (PolicyKind k : kAllPolicies) {
      auto it = r.by_policy.find(k);
      if (it == r.by_policy.end()) continue;
      for (const auto& p : it->second.processes) {
        os << r.spec->name << ',' << policy_name(k) << ',' << p.pid << ','
           << p.name << ',' << p.priority << ',' << p.metrics.finish_time << ','
           << p.metrics.major_faults << ',' << p.metrics.minor_faults << ','
           << p.metrics.llc_misses << ',' << p.metrics.mem_stall << ','
           << p.metrics.busy_wait << ',' << p.metrics.stolen << '\n';
      }
    }
  }
}

std::string metrics_csv(std::span<const BatchResult> grid) {
  std::ostringstream ss;
  write_metrics_csv(ss, grid);
  return ss.str();
}

void save_csv_files(const std::string& dir, std::span<const BatchResult> grid) {
  std::filesystem::create_directories(dir);
  auto open = [&](const std::string& name) {
    std::ofstream f(dir + "/" + name);
    if (!f) throw std::runtime_error("report: cannot write " + dir + "/" + name);
    return f;
  };
  auto m = open("its_metrics.csv");
  write_metrics_csv(m, grid);
  auto p = open("its_processes.csv");
  write_processes_csv(p, grid);
}

}  // namespace its::core
