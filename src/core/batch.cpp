#include "core/batch.h"

#include "sched/process.h"
#include "trace/trace.h"
#include "trace/workloads.h"
#include "util/rng.h"
#include "util/types.h"

#include <algorithm>
#include <stdexcept>

namespace its::core {

using trace::WorkloadId;

namespace {
constexpr std::array<BatchSpec, 4> kBatches{{
    {"No_Data_Intensive", 0,
     {WorkloadId::kWrf, WorkloadId::kBlender, WorkloadId::kCommunity,
      WorkloadId::kCaffe, WorkloadId::kDeepSjeng, WorkloadId::kXz}},
    {"1_Data_Intensive", 1,
     {WorkloadId::kWrf, WorkloadId::kBlender, WorkloadId::kCommunity,
      WorkloadId::kCaffe, WorkloadId::kDeepSjeng, WorkloadId::kRandomWalk}},
    {"2_Data_Intensive", 2,
     {WorkloadId::kWrf, WorkloadId::kBlender, WorkloadId::kCommunity,
      WorkloadId::kDeepSjeng, WorkloadId::kRandomWalk, WorkloadId::kGraph500Sssp}},
    {"3_Data_Intensive", 3,
     {WorkloadId::kWrf, WorkloadId::kBlender, WorkloadId::kCommunity,
      WorkloadId::kRandomWalk, WorkloadId::kGraph500Sssp, WorkloadId::kPageRank}},
}};
}  // namespace

std::span<const BatchSpec> paper_batches() { return kBatches; }

std::uint64_t dram_bytes_for(const BatchSpec& batch, double headroom,
                             double footprint_scale) {
  std::uint64_t hot = 0;
  for (auto id : batch.members) hot += trace::spec_for(id).hot_bytes;
  auto bytes = static_cast<std::uint64_t>(static_cast<double>(hot) * headroom *
                                          footprint_scale);
  // Round up to a page boundary, but never below one page: an extreme
  // footprint_scale must not hand the simulator a zero-frame DRAM.
  std::uint64_t rounded = (bytes + its::kPageSize - 1) & ~its::kPageOffsetMask;
  return std::max(rounded, its::kPageSize);
}

std::vector<std::shared_ptr<const trace::Trace>> batch_traces(
    const BatchSpec& batch, const trace::GeneratorConfig& cfg) {
  std::vector<std::shared_ptr<const trace::Trace>> out;
  out.reserve(batch.members.size());
  for (auto id : batch.members)
    out.push_back(std::make_shared<const trace::Trace>(trace::generate(id, cfg)));
  return out;
}

std::vector<std::unique_ptr<sched::Process>> build_processes(
    const BatchSpec& batch,
    const std::vector<std::shared_ptr<const trace::Trace>>& traces,
    std::uint64_t seed) {
  if (traces.size() != batch.members.size())
    throw std::invalid_argument("build_processes: traces/members size mismatch");

  // Distinct priorities 10..60, Fisher–Yates shuffled by the seed (the
  // paper assigns priorities randomly).
  std::vector<int> prio;
  prio.reserve(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i)
    prio.push_back(static_cast<int>(10 * (i + 1)));
  util::Rng rng(seed, 0x5eedull);
  for (std::size_t i = prio.size(); i > 1; --i)
    std::swap(prio[i - 1], prio[rng.below(i)]);

  std::vector<std::unique_ptr<sched::Process>> procs;
  procs.reserve(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    procs.push_back(std::make_unique<sched::Process>(
        static_cast<its::Pid>(i), std::string(trace::spec_for(batch.members[i]).name),
        prio[i], traces[i]));
  }
  return procs;
}

}  // namespace its::core
