#include "core/experiment.h"

#include "core/batch.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/policy.h"
#include "core/simulator.h"
#include "obs/event_trace.h"
#include "trace/trace.h"

#include <array>
#include <future>

namespace its::core {

SimMetrics run_batch_policy(const BatchSpec& batch, PolicyKind policy,
                            const ExperimentConfig& cfg) {
  return run_batch_policy(batch, policy, cfg, batch_traces(batch, cfg.gen));
}

SimMetrics run_batch_policy(
    const BatchSpec& batch, PolicyKind policy, const ExperimentConfig& cfg,
    const std::vector<std::shared_ptr<const trace::Trace>>& traces,
    obs::EventTrace* etrace) {
  SimConfig sc = cfg.sim;
  sc.dram_bytes = dram_bytes_for(batch, cfg.dram_headroom, cfg.gen.footprint_scale);
  Simulator sim(sc, policy);
  sim.set_trace(etrace);
  for (auto& p : build_processes(batch, traces, sc.seed)) sim.add_process(std::move(p));
  return sim.run();
}

BatchResult run_batch_all(const BatchSpec& batch, const ExperimentConfig& cfg) {
  BatchResult r;
  r.spec = &batch;
  auto traces = batch_traces(batch, cfg.gen);
  if (cfg.parallel) {
    // Each policy's simulation is fully independent (own Simulator, shared
    // immutable traces), so the five runs execute concurrently.  Results
    // stay deterministic: concurrency never touches a simulator's state.
    std::array<std::future<SimMetrics>, std::size(kAllPolicies)> futs;
    for (std::size_t i = 0; i < std::size(kAllPolicies); ++i)
      futs[i] = std::async(std::launch::async, [&, i] {
        return run_batch_policy(batch, kAllPolicies[i], cfg, traces);
      });
    for (std::size_t i = 0; i < std::size(kAllPolicies); ++i)
      r.by_policy.emplace(kAllPolicies[i], futs[i].get());
    return r;
  }
  for (PolicyKind k : kAllPolicies)
    r.by_policy.emplace(k, run_batch_policy(batch, k, cfg, traces));
  return r;
}

double BatchResult::normalized(PolicyKind k, double (*extract)(const SimMetrics&)) const {
  double base = extract(by_policy.at(PolicyKind::kIts));
  double v = extract(by_policy.at(k));
  return base > 0.0 ? v / base : 0.0;
}

RepeatedMetrics run_batch_policy_repeated(const BatchSpec& batch, PolicyKind policy,
                                          const ExperimentConfig& cfg,
                                          unsigned repeats) {
  RepeatedMetrics out;
  auto traces = batch_traces(batch, cfg.gen);
  for (unsigned i = 0; i < repeats; ++i) {
    ExperimentConfig c = cfg;
    c.sim.seed = cfg.sim.seed + i;
    SimMetrics m = run_batch_policy(batch, policy, c, traces);
    out.idle_total.add(static_cast<double>(m.idle.total()));
    out.major_faults.add(static_cast<double>(m.major_faults));
    out.llc_misses.add(static_cast<double>(m.llc_misses));
    out.top_finish.add(m.avg_finish_top_half());
    out.bottom_finish.add(m.avg_finish_bottom_half());
  }
  return out;
}

double total_idle_ns(const SimMetrics& m) {
  return static_cast<double>(m.idle.total());
}
double major_faults(const SimMetrics& m) { return static_cast<double>(m.major_faults); }
double llc_misses(const SimMetrics& m) { return static_cast<double>(m.llc_misses); }
double top_half_finish(const SimMetrics& m) { return m.avg_finish_top_half(); }
double bottom_half_finish(const SimMetrics& m) { return m.avg_finish_bottom_half(); }

}  // namespace its::core
