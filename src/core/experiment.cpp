#include "core/experiment.h"

#include "core/batch.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/policy.h"
#include "core/simulator.h"
#include "farm/farm.h"
#include "obs/event_trace.h"
#include "trace/trace.h"

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace its::core {

SimMetrics run_batch_policy(const BatchSpec& batch, PolicyKind policy,
                            const ExperimentConfig& cfg) {
  return run_batch_policy(batch, policy, cfg, batch_traces(batch, cfg.gen));
}

SimMetrics run_batch_policy(
    const BatchSpec& batch, PolicyKind policy, const ExperimentConfig& cfg,
    const std::vector<std::shared_ptr<const trace::Trace>>& traces,
    obs::EventTrace* etrace) {
  SimConfig sc = cfg.sim;
  sc.dram_bytes = dram_bytes_for(batch, cfg.dram_headroom, cfg.gen.footprint_scale);
  Simulator sim(sc, policy);
  sim.set_trace(etrace);
  for (auto& p : build_processes(batch, traces, sc.seed)) sim.add_process(std::move(p));
  return sim.run();
}

BatchResult run_batch_all(const BatchSpec& batch, const ExperimentConfig& cfg) {
  // Each policy's simulation is fully independent (own Simulator, shared
  // immutable traces), so the five runs are farm tasks.  Collection is
  // keyed by submission index: deterministic at any worker count.
  BatchResult r;
  r.spec = &batch;
  auto traces = batch_traces(batch, cfg.gen);
  farm::Farm farm(cfg.jobs);
  std::vector<SimMetrics> ms = farm::run_collect<SimMetrics>(
      farm, std::size(kAllPolicies), [&](std::size_t i) {
        return run_batch_policy(batch, kAllPolicies[i], cfg, traces);
      });
  for (std::size_t i = 0; i < std::size(kAllPolicies); ++i)
    r.by_policy.emplace(kAllPolicies[i], std::move(ms[i]));
  return r;
}

std::vector<BatchResult> run_grid_all(const ExperimentConfig& cfg) {
  const auto batches = paper_batches();
  farm::Farm farm(cfg.jobs);

  // Phase 1: per-batch trace generation (deterministic in (workload, cfg)).
  std::vector<std::vector<std::shared_ptr<const trace::Trace>>> traces =
      farm::run_collect<std::vector<std::shared_ptr<const trace::Trace>>>(
          farm, batches.size(),
          [&](std::size_t b) { return batch_traces(batches[b], cfg.gen); });

  // Phase 2: every (batch, policy) pair is one work-stealing task.
  const std::size_t policies = std::size(kAllPolicies);
  std::vector<SimMetrics> ms = farm::run_collect<SimMetrics>(
      farm, batches.size() * policies, [&](std::size_t i) {
        std::size_t b = i / policies;
        return run_batch_policy(batches[b], kAllPolicies[i % policies], cfg,
                                traces[b]);
      });

  std::vector<BatchResult> grid(batches.size());
  for (std::size_t b = 0; b < batches.size(); ++b) {
    grid[b].spec = &batches[b];
    for (std::size_t p = 0; p < policies; ++p)
      grid[b].by_policy.emplace(kAllPolicies[p], std::move(ms[b * policies + p]));
  }
  return grid;
}

std::vector<SimMetrics> run_sim_tasks(
    std::size_t n, unsigned jobs,
    const std::function<SimMetrics(std::size_t)>& task) {
  farm::Farm farm(jobs);
  return farm::run_collect<SimMetrics>(farm, n, task);
}

double BatchResult::normalized(PolicyKind k, double (*extract)(const SimMetrics&)) const {
  double base = extract(by_policy.at(PolicyKind::kIts));
  double v = extract(by_policy.at(k));
  return base > 0.0 ? v / base : 0.0;
}

RepeatedMetrics run_batch_policy_repeated(const BatchSpec& batch, PolicyKind policy,
                                          const ExperimentConfig& cfg,
                                          unsigned repeats) {
  RepeatedMetrics out;
  auto traces = batch_traces(batch, cfg.gen);
  // The repeats are independent (seed offset per run), so they farm out;
  // folding into the RunningStats afterwards in submission order keeps the
  // floating-point accumulation identical to the serial loop.
  std::vector<SimMetrics> ms =
      run_sim_tasks(repeats, cfg.jobs, [&](std::size_t i) {
        ExperimentConfig c = cfg;
        c.sim.seed = cfg.sim.seed + i;
        return run_batch_policy(batch, policy, c, traces);
      });
  for (const SimMetrics& m : ms) {
    out.idle_total.add(static_cast<double>(m.idle.total()));
    out.major_faults.add(static_cast<double>(m.major_faults));
    out.llc_misses.add(static_cast<double>(m.llc_misses));
    out.top_finish.add(m.avg_finish_top_half());
    out.bottom_finish.add(m.avg_finish_bottom_half());
  }
  return out;
}

double total_idle_ns(const SimMetrics& m) {
  return static_cast<double>(m.idle.total());
}
double major_faults(const SimMetrics& m) { return static_cast<double>(m.major_faults); }
double llc_misses(const SimMetrics& m) { return static_cast<double>(m.llc_misses); }
double top_half_finish(const SimMetrics& m) { return m.avg_finish_top_half(); }
double bottom_half_finish(const SimMetrics& m) { return m.avg_finish_bottom_half(); }

}  // namespace its::core
