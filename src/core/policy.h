// I/O-mode policies: the paper's four baselines plus the ITS contribution.
//
// A policy answers one question per major fault — what should the CPU do
// while the swap-in is in flight? — plus two static capability queries
// (does it carve the LLC for a pre-execute cache, and does it also run
// runahead on LLC misses).  All mechanics (DMA posting, context switching,
// prefetch issue, pre-execute episodes) live in the Simulator; policies are
// pure decision logic, which is exactly the shape of §3.2's "priority-aware
// thread selection policy".
#pragma once

#include "sched/process.h"
#include "sched/scheduler.h"
#include "storage/device_health.h"

#include <cstdint>
#include <memory>
#include <string_view>

namespace its::core {

enum class PolicyKind : std::uint8_t {
  kAsync,         ///< Traditional asynchronous I/O: context-switch on fault.
  kSync,          ///< Busy-wait synchronous I/O (Intel/IBM advocacy).
  kSyncRunahead,  ///< Sync + runahead pre-execution on LLC misses and faults.
  kSyncPrefetch,  ///< Sync + page-on-page unit prefetching.
  kIts,           ///< The paper: priority-aware self-improving/self-sacrificing.
};

inline constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::kAsync, PolicyKind::kSync, PolicyKind::kSyncRunahead,
    PolicyKind::kSyncPrefetch, PolicyKind::kIts};

std::string_view policy_name(PolicyKind k);

/// Which prefetcher a fault plan engages.  kVa is the paper's Fig. 2 walk;
/// kPop is the Sync_Prefetch unit baseline; kStride is an extension for
/// the prefetcher-kind ablation.
enum class PrefetchKind : std::uint8_t { kNone, kVa, kPop, kStride };

/// Decision for one major fault.
struct FaultPlan {
  bool go_async = false;  ///< Context-switch out; I/O completes in background.
  PrefetchKind prefetch = PrefetchKind::kNone;
  bool preexec = false;   ///< Pre-execute during the leftover wait.
};

class IoPolicy {
 public:
  virtual ~IoPolicy() = default;

  virtual PolicyKind kind() const = 0;
  std::string_view name() const { return policy_name(kind()); }

  /// True if half the LLC is carved out as the pre-execute cache.
  virtual bool uses_preexec_cache() const { return false; }

  /// True if pre-execution also triggers while servicing LLC misses
  /// (traditional runahead; the paper's Sync_Runahead baseline).
  virtual bool runahead_on_llc_miss() const { return false; }

  /// Decision for a major fault of `cur`, given scheduler state and the
  /// swap device's current health (storage/device_health.h).  Policies must
  /// never plan a busy-wait against an offline device and should not feed
  /// prefetches to a degraded one; with the outage model disabled `health`
  /// is always kHealthy and every policy decides exactly as before.
  virtual FaultPlan plan_major_fault(const sched::Process& cur,
                                     const sched::Scheduler& sched,
                                     storage::DeviceHealth health) = 0;
};

std::unique_ptr<IoPolicy> make_policy(PolicyKind kind);

/// Knock-out switches for the ITS components (ablation studies): disable
/// the self-sacrificing thread, the page-prefetch policy, or the
/// fault-aware pre-execute policy independently.
struct ItsOptions {
  bool self_sacrificing = true;
  bool page_prefetch = true;
  bool pre_execute = true;
  /// Prefetcher used by the self-improving thread when page_prefetch is on.
  PrefetchKind prefetcher = PrefetchKind::kVa;
};

std::unique_ptr<IoPolicy> make_its_policy(const ItsOptions& opts);

/// The §3.2 priority test, exposed for reuse and testing: the current
/// process is low-priority iff its priority is lower than the
/// next-to-be-run process's.  With an empty run queue the process counts
/// as high-priority (nobody to give way to).
bool is_low_priority(const sched::Process& cur, const sched::Scheduler& sched);

}  // namespace its::core
