#include "core/policy.h"

#include "sched/process.h"
#include "sched/scheduler.h"
#include "storage/device_health.h"

#include <stdexcept>

namespace its::core {

std::string_view policy_name(PolicyKind k) {
  switch (k) {
    case PolicyKind::kAsync: return "Async";
    case PolicyKind::kSync: return "Sync";
    case PolicyKind::kSyncRunahead: return "Sync_Runahead";
    case PolicyKind::kSyncPrefetch: return "Sync_Prefetch";
    case PolicyKind::kIts: return "ITS";
  }
  return "?";
}

bool is_low_priority(const sched::Process& cur, const sched::Scheduler& sched) {
  const sched::Process* next = sched.peek_next();
  return next != nullptr && cur.priority() < next->priority();
}

namespace {

class AsyncPolicy final : public IoPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kAsync; }
  FaultPlan plan_major_fault(const sched::Process&, const sched::Scheduler&,
                             storage::DeviceHealth) override {
    return {.go_async = true};
  }
};

class SyncPolicy final : public IoPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kSync; }
  FaultPlan plan_major_fault(const sched::Process&, const sched::Scheduler&,
                             storage::DeviceHealth health) override {
    // Spinning on a device that is not serving is pure waste: give way and
    // let the fault complete in the background once the device returns.
    if (health == storage::DeviceHealth::kOffline) return {.go_async = true};
    return {};  // pure busy wait
  }
};

// Traditional runahead (§4.1 footnote 4): pre-execution happens while
// servicing LLC misses; page-fault waits are plain busy waits — working the
// fault window is exactly what distinguishes ITS's fault-aware pre-execution.
class SyncRunaheadPolicy final : public IoPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kSyncRunahead; }
  bool uses_preexec_cache() const override { return true; }
  bool runahead_on_llc_miss() const override { return true; }
  FaultPlan plan_major_fault(const sched::Process&, const sched::Scheduler&,
                             storage::DeviceHealth health) override {
    if (health == storage::DeviceHealth::kOffline) return {.go_async = true};
    return {};
  }
};

class SyncPrefetchPolicy final : public IoPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kSyncPrefetch; }
  FaultPlan plan_major_fault(const sched::Process&, const sched::Scheduler&,
                             storage::DeviceHealth health) override {
    if (health == storage::DeviceHealth::kOffline) return {.go_async = true};
    // A degraded or recovering device gets no extra prefetch traffic.
    if (health != storage::DeviceHealth::kHealthy) return {};
    return {.prefetch = PrefetchKind::kPop};
  }
};

/// The contribution (§3.2–§3.4): self-sacrificing thread for low-priority
/// processes (asynchronous give-way), self-improving thread for
/// high-priority processes (virtual-address page prefetch + fault-aware
/// pre-execution in the stolen wait).
class ItsPolicy final : public IoPolicy {
 public:
  explicit ItsPolicy(const ItsOptions& opts = {}) : opts_(opts) {}

  PolicyKind kind() const override { return PolicyKind::kIts; }
  bool uses_preexec_cache() const override { return opts_.pre_execute; }
  FaultPlan plan_major_fault(const sched::Process& cur,
                             const sched::Scheduler& sched,
                             storage::DeviceHealth health) override {
    // Degraded-mode routing: an offline device turns every fault into a
    // self-sacrificing give-way — busy-waiting cannot be repaid.
    if (health == storage::DeviceHealth::kOffline) return {.go_async = true};
    if (opts_.self_sacrificing && is_low_priority(cur, sched))
      return {.go_async = true};
    const bool healthy = health == storage::DeviceHealth::kHealthy;
    return {.prefetch = opts_.page_prefetch && healthy ? opts_.prefetcher
                                                       : PrefetchKind::kNone,
            .preexec = opts_.pre_execute};
  }

 private:
  ItsOptions opts_;
};

}  // namespace

std::unique_ptr<IoPolicy> make_its_policy(const ItsOptions& opts) {
  return std::make_unique<ItsPolicy>(opts);
}

std::unique_ptr<IoPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAsync: return std::make_unique<AsyncPolicy>();
    case PolicyKind::kSync: return std::make_unique<SyncPolicy>();
    case PolicyKind::kSyncRunahead: return std::make_unique<SyncRunaheadPolicy>();
    case PolicyKind::kSyncPrefetch: return std::make_unique<SyncPrefetchPolicy>();
    case PolicyKind::kIts: return std::make_unique<ItsPolicy>();
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

}  // namespace its::core
