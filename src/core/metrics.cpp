#include "core/metrics.h"

#include "util/types.h"

#include <algorithm>

namespace its::core {

namespace {
double avg_finish(const std::vector<ProcessOutcome>& procs, bool top) {
  if (procs.empty()) return 0.0;
  std::vector<const ProcessOutcome*> sorted;
  sorted.reserve(procs.size());
  for (const auto& p : procs) sorted.push_back(&p);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    if (a->priority != b->priority) return a->priority > b->priority;
    return a->pid < b->pid;
  });
  // Top half = the ceil(n/2) highest-priority processes, bottom half = the
  // floor(n/2) remaining ones; the halves never overlap (for odd n the
  // middle process belongs to the top half only).
  std::size_t top_count = (sorted.size() + 1) / 2;
  std::size_t begin = top ? 0 : top_count;
  std::size_t end = top ? top_count : sorted.size();
  if (begin == end) return 0.0;  // bottom half of a single-process list
  // Sum in the integer domain: accumulating nanoseconds in a double loses
  // ulps past 2^53 and makes the mean depend on addition order.
  its::Duration sum = 0;
  for (std::size_t i = begin; i < end; ++i)
    sum += sorted[i]->metrics.finish_time;
  // its-lint: allow(units-narrow): derived report mean; summed as integers
  return static_cast<double>(sum) / static_cast<double>(end - begin);
}
}  // namespace

double SimMetrics::avg_finish_top_half() const { return avg_finish(processes, true); }
double SimMetrics::avg_finish_bottom_half() const { return avg_finish(processes, false); }

}  // namespace its::core
