#include "core/metrics.h"

#include <algorithm>

namespace its::core {

namespace {
double avg_finish(const std::vector<ProcessOutcome>& procs, bool top) {
  if (procs.empty()) return 0.0;
  std::vector<const ProcessOutcome*> sorted;
  sorted.reserve(procs.size());
  for (const auto& p : procs) sorted.push_back(&p);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    if (a->priority != b->priority) return a->priority > b->priority;
    return a->pid < b->pid;
  });
  std::size_t half = (sorted.size() + (top ? 1 : 0)) / 2;
  std::size_t begin = top ? 0 : half;
  std::size_t end = top ? half : sorted.size();
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i)
    sum += static_cast<double>(sorted[i]->metrics.finish_time);
  return sum / static_cast<double>(end - begin);
}
}  // namespace

double SimMetrics::avg_finish_top_half() const { return avg_finish(processes, true); }
double SimMetrics::avg_finish_bottom_half() const { return avg_finish(processes, false); }

}  // namespace its::core
