// Top-level simulation configuration.
//
// Defaults reproduce the paper's §4.1 setup: 16-way 8 MB LLC (halved when a
// pre-execute cache is configured), 50 ns DRAM, 3 µs Z-NAND-class ULL
// storage behind a 4-lane PCIe link, 7 µs context switches (measured on the
// authors' i7-7800X), SCHED_RR slices of 5–800 ms.
#pragma once

#include "cpu/preexec_engine.h"
#include "fault/fault_injector.h"
#include "mem/hierarchy.h"
#include "mem/preexec_cache.h"
#include "sched/cfs.h"
#include "storage/pcie_link.h"
#include "storage/ull_device.h"
#include "util/types.h"
#include "vm/fallback_pool.h"
#include "vm/prefetch.h"

#include <cstdint>

namespace its::core {

/// Scheduling discipline for the mini-kernel.  The paper's setup is
/// SCHED_RR; CFS exists for the scheduler ablation.
enum class SchedulerKind : std::uint8_t { kRoundRobin, kCfs };

struct SimConfig {
  // -- CPU --------------------------------------------------------------
  double ns_per_instr = 1.0;  ///< ALU throughput (≈1 GHz, IPC 1).

  // -- Memory system ------------------------------------------------------
  mem::HierarchyConfig hierarchy{};      ///< 8 MB LLC default; see note above.
  mem::PreexecCacheConfig px_cache{};    ///< 4 MB — half of the LLC.
  unsigned tlb_entries = 64;
  its::Duration tlb_walk_cost = 24;      ///< ns, 4-level table walk.

  // -- Mini-kernel costs ---------------------------------------------------
  its::Duration minor_fault_cost = 350;     ///< ns — metadata-only fault.
  its::Duration major_fault_sw_cost = 700;  ///< ns — kernel entry + handler.
  its::Duration ctx_switch_cost = 7_us;     ///< Paper's measured 7 µs.
  its::Duration kernel_thread_entry = 300;  ///< ns — §3.2: "hundreds of ns".

  // -- Storage --------------------------------------------------------------
  storage::UllConfig ull{};     ///< 3 µs media, 8 channels.
  storage::PcieConfig pcie{};   ///< 4 lanes × 3.983 GB/s.
  its::Bytes dram_bytes = 256_MiB;  ///< Sized per batch (working set).

  /// Pages swapped in per major fault as one aligned cluster (Linux
  /// page-cluster): 1 = single page (ULL default).  Larger clusters model
  /// the bigger I/O sizes the paper's §1 motivates ("this resource
  /// inefficiency becomes more pronounced … with larger I/O sizes like
  /// huge page management"): one DMA of cluster × 4 KiB, sibling pages
  /// land in the swap cache.
  unsigned swap_cluster_pages = 1;

  // -- File I/O path (§1 footnote 1) -----------------------------------------
  its::Bytes page_cache_bytes = 32_MiB;  ///< Static DRAM carve-out.
  its::Duration syscall_cost = 250;        ///< ns — read/write syscall entry.
  double copy_bytes_per_ns = 16.0;         ///< Page-cache ↔ user-buffer memcpy.
  unsigned file_readahead_pages = 4;       ///< Readahead when the plan prefetches.

  // -- Scheduler -------------------------------------------------------------
  SchedulerKind scheduler = SchedulerKind::kRoundRobin;
  its::Duration slice_min = 5_ms;        ///< SCHED_RR floor.
  its::Duration slice_max = 800_ms;      ///< SCHED_RR ceiling.
  sched::CfsConfig cfs{};                              ///< Used when scheduler == kCfs.

  // -- Policies ---------------------------------------------------------------
  vm::VaPrefetcherConfig va_prefetch{};        ///< ITS page-prefetch (Fig. 2 walk).
  vm::PopPrefetcherConfig pop_prefetch{};      ///< Sync_Prefetch unit.
  vm::StridePrefetcherConfig stride_prefetch{};///< Ablation alternative.
  cpu::PreexecConfig preexec{};                ///< Fault-aware pre-execution.

  // -- Fault injection & resilience (fault/fault_injector.h) -------------------
  /// Disabled by default: the simulator is bit-identical to a build without
  /// the fault layer.  When enabled, the storage devices inject tail
  /// latencies and errors, demand reads retry with backoff
  /// (vm::RetryPolicy), and the sync busy-wait watchdog may abort a wait
  /// and fall back to asynchronous mode (see docs/robustness.md).
  fault::FaultProfile fault{};

  /// Compressed-DRAM fallback pool for device outages (vm/fallback_pool.h).
  /// Frames are carved from the DRAM pool tail only when `fault.outage` is
  /// enabled; otherwise the pool is inert and the simulation bit-identical.
  vm::FallbackPoolConfig fallback_pool{};

  // -- Reproducibility ----------------------------------------------------------
  std::uint64_t seed = 42;  ///< Priority shuffling and generator seeding.
};

}  // namespace its::core
