// Process batches — §4.1's four six-process mixes.
//
// "We build four synthesis process batches by selecting six processes among
// the nine traces … All four process batches comprise Wrf, Blender, and
// community detection."  DRAM is sized to the batch's aggregate working set
// ("the DRAM size is tailored to match the working set"), which is what
// makes the processes contend for memory.
#pragma once

#include "sched/process.h"
#include "trace/trace.h"
#include "trace/workloads.h"

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace its::core {

struct BatchSpec {
  std::string_view name;
  unsigned data_intensive = 0;  ///< Number of data-intensive members.
  std::array<trace::WorkloadId, 6> members;
};

/// The paper's four batches, ordered by data-intensive process count.
std::span<const BatchSpec> paper_batches();

/// DRAM bytes for a batch: the sum of the members' working sets times a
/// small headroom factor, rounded up to a page.
std::uint64_t dram_bytes_for(const BatchSpec& batch, double headroom = 1.10,
                             double footprint_scale = 1.0);

/// Generates (or returns memoised) traces for a batch.  Traces are
/// deterministic in (workload, cfg), so sharing across policy runs is safe.
std::vector<std::shared_ptr<const trace::Trace>> batch_traces(
    const BatchSpec& batch, const trace::GeneratorConfig& cfg = {});

/// Builds the six PCBs with randomly shuffled distinct priorities
/// (10,20,…,60), deterministic in `seed`.
std::vector<std::unique_ptr<sched::Process>> build_processes(
    const BatchSpec& batch,
    const std::vector<std::shared_ptr<const trace::Trace>>& traces,
    std::uint64_t seed);

}  // namespace its::core
