// The ITS simulation engine.
//
// A discrete-event, trace-driven, multiprogrammed single-CPU simulator: the
// clock advances by charging instruction, cache, fault and context-switch
// costs; a completion queue delivers DMA arrivals (asynchronous fault
// wake-ups and prefetched-page arrivals).  The active IoPolicy decides, per
// major fault, whether the process busy-waits, steals the wait (prefetch /
// pre-execute), or gives way asynchronously — everything else is shared
// mechanics, so the five policies are compared on identical substrates.
//
// See DESIGN.md for the idle-time accounting contract.
#pragma once

#include "core/config.h"
#include "core/metrics.h"
#include "core/policy.h"
#include "cpu/preexec_engine.h"
#include "fault/fault_injector.h"
#include "fs/file_system.h"
#include "fs/page_cache.h"
#include "mem/hierarchy.h"
#include "mem/preexec_cache.h"
#include "mem/tlb.h"
#include "obs/event_trace.h"
#include "sched/process.h"
#include "sched/scheduler.h"
#include "storage/device_health.h"
#include "storage/dma.h"
#include "trace/instr.h"
#include "util/types.h"
#include "vm/fallback_pool.h"
#include "vm/frame_pool.h"
#include "vm/prefetch.h"
#include "vm/swap.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

namespace its::core {

class Simulator {
 public:
  Simulator(const SimConfig& cfg, PolicyKind policy);

  /// Injects a custom policy (ablations, user extensions).
  Simulator(const SimConfig& cfg, std::unique_ptr<IoPolicy> policy);

  /// Transfers ownership of a PCB into the simulation.  Pids must be
  /// assigned 0..n-1 in insertion order (build_processes guarantees this).
  void add_process(std::unique_ptr<sched::Process> p);

  /// Like add_process, but defers the process's entry into the scheduler to
  /// sim-time `start` — the open-loop arrival primitive the serving
  /// scenario (serve/scenario.h) is built on.  At `start` the admission
  /// gate decides whether the process joins the run queue or retires on the
  /// spot having run nothing.  `start == 0` is exactly add_process.
  void add_process_at(its::SimTime start, std::unique_ptr<sched::Process> p);

  /// Admission policy for deferred arrivals: return false to reject (the
  /// process retires immediately with empty metrics and the retire hook is
  /// not called).  Unset admits everything.
  void set_admission_gate(std::function<bool(sched::Process&)> gate) {
    gate_ = std::move(gate);
  }

  /// Called from finish() after a process's metrics are final — the serving
  /// layer stamps request retirement (latency, SLO verdict) here.
  void set_retire_hook(std::function<void(sched::Process&)> hook) {
    retire_ = std::move(hook);
  }

  /// Runs every process to completion and returns the metrics.
  SimMetrics run();

  /// Attaches a structured event recorder (nullptr detaches).  Attach
  /// before run(): the obs::InvariantChecker reconciles event counts
  /// against the final metrics and a partial timeline will not balance.
  /// With no trace attached the instrumentation is a null-pointer check
  /// per site — benches are unaffected.
  void set_trace(obs::EventTrace* trace);
  obs::EventTrace* trace() const { return trace_; }

  // Introspection for tests.
  its::SimTime now() const { return clock_; }
  const mem::CacheHierarchy& caches() const { return caches_; }
  const mem::Tlb& tlb() const { return tlb_; }
  const vm::FramePool& frames() const { return frames_; }
  const vm::SwapArea& swap() const { return swap_; }
  const storage::DmaController& dma() const { return dma_; }
  const fault::FaultInjector& fault_injector() const { return finj_; }
  const storage::DeviceHealthMonitor& device_health() const { return health_; }
  const vm::FallbackPool& fallback_pool() const { return pool_; }
  const vm::RetryPolicy& retry_policy() const { return retry_; }
  const fs::FileSystem& filesystem() const { return files_; }
  const fs::PageCache& page_cache() const { return pcache_; }
  const IoPolicy& policy() const { return *policy_; }
  const sched::Scheduler& scheduler() const { return *sched_; }

 private:
  enum class EventType : std::uint8_t {
    kWakeFault,
    kPageArrive,
    kWakeFile,
    kProcArrive,  ///< Deferred process entry (open-loop arrivals).
  };
  struct Event {
    its::SimTime time;
    std::uint64_t seq;  ///< Tie-break for determinism.
    EventType type;
    its::Pid pid;
    its::Vpn vpn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  /// Composite (pid, vpn) key for the TLB and the arrival map.
  static std::uint64_t key_of(its::Pid pid, its::Vpn vpn) {
    return its::pid_key(pid, vpn);
  }

  static mem::HierarchyConfig hierarchy_for(const SimConfig& cfg, const IoPolicy& p);
  static std::unique_ptr<sched::Scheduler> make_scheduler(const SimConfig& cfg);

  sched::Process& proc(its::Pid pid) { return *procs_[pid]; }

  void run_slice(sched::Process& p);
  /// Executes one memory record to completion; false if the process blocked
  /// (asynchronous fault) and the slice must end.
  bool do_mem_access(sched::Process& p, const trace::Instr& in);
  void do_translated_access(sched::Process& p, const trace::Instr& in, its::Vpn vpn);
  /// Returns true when the fault completed synchronously (retry the touch).
  bool handle_major_fault(sched::Process& p, its::Vpn vpn);
  /// Watchdog fallback: busy-waits only up to `window`, stealing what the
  /// plan allows, then aborts the in-place wait and converts the fault to
  /// asynchronous completion (wake at `done`).  Always returns false (the
  /// process blocked).
  bool abort_sync_wait(sched::Process& p, its::Vpn vpn, its::SimTime done,
                       const FaultPlan& plan, its::Duration window);
  /// Effective watchdog deadline for a sync busy-wait; 0 = watchdog off.
  its::Duration sync_deadline() const;
  /// Posts a demand read through the fault-aware DMA path, retrying failed
  /// attempts with the swap retry policy's backoff.  Returns the final
  /// completion time; identical to a plain post when injection is off.
  its::SimTime post_read_resilient(its::SimTime t, its::Bytes bytes,
                                   std::uint64_t tag);
  /// Serves one file read/write syscall record; false if the process
  /// blocked (asynchronous page-cache miss) — the record restarts on wake.
  bool do_file_op(sched::Process& p, const trace::Instr& in);
  /// Serves one page-cache miss within a file op; false if blocked.
  bool file_miss(sched::Process& p, std::uint64_t key, fs::FileId file,
                 std::uint64_t page_index);
  void issue_prefetches(sched::Process& p, its::Vpn victim, PrefetchKind kind,
                        its::Duration& utilized);
  /// Allocates and pins a frame and marks the PTE in-flight (the DMA post
  /// and arrival bookkeeping stay with the caller).
  void begin_swap_in(sched::Process& p, its::Vpn vpn);
  void complete_swap_in(sched::Process& p, its::Vpn vpn);

  its::Pfn alloc_frame(its::Pid pid, its::Vpn vpn);
  void evict_frame(its::Pfn pfn);

  /// Advances the device-health FSM to `clock_` and, when the device is
  /// back to serving (healthy or recovering), drains the fallback pool to
  /// the swap device.  A no-op when the outage model is disabled.
  void poll_health();
  /// Writes every pooled page back to the swap device (recovery drain).
  void drain_pool();
  /// True once the outage model's permanent-death point has passed: pages
  /// whose only copy is on the device (and not in the pool) are lost.
  bool device_dead() const;

  /// Charges `d` of useful CPU time (compute, handlers, cache service):
  /// wait_in_place plus the cpu_busy accounting.
  void advance(sched::Process& p, its::Duration d);
  /// Lets wall-clock pass for `p` without retiring work (busy waits).  The
  /// caller accounts the time to the proper idle bucket.
  void wait_in_place(sched::Process& p, its::Duration d);
  void charge_ctx_switch(its::Pid pid);
  void charge_stall(sched::Process& p, its::Duration d);
  void push_event(its::SimTime t, EventType type, its::Pid pid, its::Vpn vpn);
  void process_due_events();
  void finish(sched::Process& p);

  SimConfig cfg_;
  std::unique_ptr<IoPolicy> policy_;
  mem::CacheHierarchy caches_;
  mem::PreexecCache px_;
  cpu::PreexecEngine engine_;
  mem::Tlb tlb_;
  vm::FramePool frames_;
  vm::SwapArea swap_;
  fault::FaultInjector finj_;
  storage::DeviceHealthMonitor health_;
  vm::FallbackPool pool_;
  vm::RetryPolicy retry_;
  fs::FileSystem files_;
  fs::PageCache pcache_;
  storage::DmaController dma_;
  vm::VaPrefetcher va_pf_;
  vm::PopPrefetcher pop_pf_;
  vm::StridePrefetcher stride_pf_;
  std::unique_ptr<sched::Scheduler> sched_;

  std::vector<std::unique_ptr<sched::Process>> procs_;
  std::vector<its::SimTime> start_at_;  ///< Per-pid deferred entry time.
  std::function<bool(sched::Process&)> gate_;
  std::function<void(sched::Process&)> retire_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::unordered_map<std::uint64_t, its::SimTime> arrival_;  ///< (pid,vpn) → DMA done.

  its::SimTime clock_ = 0;
  std::uint64_t seq_ = 0;
  bool any_ran_ = false;
  bool switch_prepaid_ = false;  ///< Next cross-process dispatch already paid.
  its::Pid last_pid_ = 0;
  unsigned finished_ = 0;
  SimMetrics m_;
  obs::EventTrace* trace_ = nullptr;
};

}  // namespace its::core
