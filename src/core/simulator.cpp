#include "core/simulator.h"

#include "core/config.h"
#include "core/metrics.h"
#include "core/policy.h"
#include "cpu/preexec_engine.h"
#include "fs/file_system.h"
#include "fs/page_cache.h"
#include "mem/hierarchy.h"
#include "obs/event_trace.h"
#include "sched/cfs.h"
#include "sched/process.h"
#include "sched/scheduler.h"
#include "storage/device_health.h"
#include "storage/dma.h"
#include "trace/instr.h"
#include "util/types.h"
#include "vm/fallback_pool.h"
#include "vm/frame_pool.h"
#include "vm/mm.h"
#include "vm/prefetch.h"
#include "vm/pte.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace its::core {

using obs::EventKind;
using sched::ProcState;
using sched::Process;
using trace::Instr;
using trace::Op;

mem::HierarchyConfig Simulator::hierarchy_for(const SimConfig& cfg, const IoPolicy& p) {
  mem::HierarchyConfig h = cfg.hierarchy;
  // §4.1: "a half size of the LLC will be configured as the pre-execute
  // cache for both Sync_Runahead and ITS" — the mechanism pays in LLC area.
  if (p.uses_preexec_cache()) h.llc.size_bytes /= 2;
  return h;
}

Simulator::Simulator(const SimConfig& cfg, PolicyKind policy)
    : Simulator(cfg, make_policy(policy)) {}

Simulator::Simulator(const SimConfig& cfg, std::unique_ptr<IoPolicy> policy)
    : cfg_(cfg),
      policy_(std::move(policy)),
      caches_(hierarchy_for(cfg, *policy_)),
      px_(cfg.px_cache),
      engine_(cfg.preexec, caches_, px_),
      tlb_(cfg.tlb_entries),
      frames_(cfg.dram_bytes),
      swap_(),
      finj_(cfg.fault),
      retry_(cfg.fault.max_retries, cfg.fault.backoff_base,
             cfg.fault.backoff_mult, cfg.fault.backoff_cap),
      pcache_(cfg.page_cache_bytes),
      dma_(cfg.ull, cfg.pcie),
      va_pf_(cfg.va_prefetch),
      pop_pf_(cfg.pop_prefetch),
      stride_pf_(cfg.stride_prefetch),
      sched_(make_scheduler(cfg)) {
  // The devices consult the injector on every operation; with the profile
  // disabled the injector is inert and the devices behave exactly as the
  // perfect-device model.
  dma_.attach_fault(&finj_);
  // The outage substrate exists only when the profile schedules outages:
  // the health monitor arms and the fallback pool carves DRAM frames off
  // the pool tail.  Otherwise both stay default-constructed (inert) and the
  // simulation is bit-identical to a build without them.
  if (finj_.enabled() && cfg_.fault.outage.enabled()) {
    health_ = storage::DeviceHealthMonitor(cfg_.fault.outage);
    const std::uint64_t want = std::min<std::uint64_t>(
        cfg_.fallback_pool.frames, frames_.num_frames() / 4);
    pool_ = vm::FallbackPool(cfg_.fallback_pool, frames_.carve_tail(want));
  }
}

std::unique_ptr<sched::Scheduler> Simulator::make_scheduler(const SimConfig& cfg) {
  switch (cfg.scheduler) {
    case SchedulerKind::kCfs:
      return std::make_unique<sched::CfsScheduler>(cfg.cfs);
    case SchedulerKind::kRoundRobin:
      break;
  }
  return std::make_unique<sched::RRScheduler>(cfg.slice_min, cfg.slice_max);
}

void Simulator::set_trace(obs::EventTrace* trace) {
  trace_ = trace;
  if (trace != nullptr)
    trace->set_policy(static_cast<std::uint8_t>(policy_->kind()));
  // Components that emit their own events share the recorder and the clock.
  sched_->attach_trace(trace, &clock_);
  swap_.attach_trace(trace, &clock_);
  dma_.attach_trace(trace);
  health_.attach_trace(trace);
  pool_.attach_trace(trace, &clock_);
  va_pf_.attach_trace(trace, &clock_);
  pop_pf_.attach_trace(trace, &clock_);
  stride_pf_.attach_trace(trace, &clock_);
}

void Simulator::add_process(std::unique_ptr<Process> p) {
  add_process_at(0, std::move(p));
}

void Simulator::add_process_at(its::SimTime start, std::unique_ptr<Process> p) {
  if (p->pid() != procs_.size())
    throw std::invalid_argument("Simulator: pids must be dense 0..n-1");
  // Register any files the trace reads or writes (shared namespace).
  for (auto [file, size] : p->trace().file_sizes()) files_.ensure_file(file, size);
  procs_.push_back(std::move(p));
  start_at_.push_back(start);
}

SimMetrics Simulator::run() {
  if (procs_.empty()) throw std::logic_error("Simulator: no processes");
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    if (start_at_[i] == 0)
      sched_->add(procs_[i].get());
    else
      push_event(start_at_[i], EventType::kProcArrive,
                 static_cast<its::Pid>(i), 0);
  }

  while (finished_ < procs_.size()) {
    Process* p = sched_->pick();
    if (p == nullptr) {
      // Whole machine blocked on I/O: jump to the next completion.
      if (events_.empty()) throw std::logic_error("Simulator: deadlock (no events)");
      its::SimTime t = events_.top().time;
      if (t > clock_) {
        m_.idle.no_runnable += t - clock_;
        clock_ = t;
      }
      process_due_events();
      continue;
    }
    // A blocking fault pre-pays exactly the dispatch that follows it; the
    // credit never carries past this pick (if the blocked process itself
    // resumes first, the machine went through the idle thread and no
    // further switch happened).
    const bool prepaid = switch_prepaid_;
    switch_prepaid_ = false;
    if (any_ran_ && p->pid() != last_pid_ && !prepaid) charge_ctx_switch(p->pid());
    any_ran_ = true;
    last_pid_ = p->pid();
    run_slice(*p);
  }

  m_.makespan = clock_;
  if (health_.enabled()) {
    // Close the availability books: integrate the FSM to the makespan so
    // the four time-in-state counters partition it exactly (the
    // obs::InvariantChecker reconciles this to the nanosecond).
    health_.finalize(clock_);
    m_.health_healthy_time = health_.time_in(storage::DeviceHealth::kHealthy);
    m_.health_degraded_time = health_.time_in(storage::DeviceHealth::kDegraded);
    m_.health_offline_time = health_.time_in(storage::DeviceHealth::kOffline);
    m_.health_recovering_time =
        health_.time_in(storage::DeviceHealth::kRecovering);
  }
  m_.pool_stores = pool_.stats().stores;
  m_.pool_hits = pool_.stats().hits;
  m_.pool_drains = pool_.stats().drains;
  m_.drain_bytes = pool_.stats().drains * its::kPageSize;
  m_.file_reads = files_.stats().reads;
  m_.file_writes = files_.stats().writes;
  m_.page_cache_hits = pcache_.stats().hits;
  m_.page_cache_misses = pcache_.stats().misses;
  m_.file_writebacks = pcache_.stats().dirty_writebacks;
  m_.processes.clear();
  for (const auto& p : procs_)
    m_.processes.push_back({p->pid(), p->name(), p->priority(), p->metrics()});
  return m_;
}

void Simulator::run_slice(Process& p) {
  for (;;) {
    process_due_events();
    if (p.at_end()) {
      finish(p);
      return;
    }
    if (p.slice_remaining() == 0 && sched_->any_ready()) {
      sched_->yield(&p);
      return;
    }
    const Instr& in = p.trace()[p.pc()];
    if (in.op == Op::kCompute) {
      auto cost = static_cast<its::Duration>(static_cast<double>(in.repeat) *
                                             cfg_.ns_per_instr);
      advance(p, std::max<its::Duration>(cost, 1));
      p.metrics().instructions += in.repeat;
      p.advance_pc();
      continue;
    }
    if (in.is_file()) {
      if (!do_file_op(p, in)) return;  // blocked asynchronously
      p.metrics().instructions += 1;
      p.advance_pc();
      continue;
    }
    if (!do_mem_access(p, in)) return;  // blocked asynchronously
    p.metrics().instructions += 1;
    p.metrics().mem_refs += 1;
    p.advance_pc();
  }
}

bool Simulator::do_mem_access(Process& p, const Instr& in) {
  const its::Vpn vpn = its::vpn_of(in.addr);
  for (;;) {
    switch (p.mm().classify(vpn)) {
      case vm::FaultType::kNone:
        do_translated_access(p, in, vpn);
        return true;
      case vm::FaultType::kMinor: {
        // Prefetched page sitting in the swap cache: map it (metadata only).
        advance(p, cfg_.minor_fault_cost);
        ++p.metrics().minor_faults;
        ++m_.minor_faults;
        ++p.metrics().prefetches_received;
        ++m_.prefetch_useful;
        if (trace_) trace_->record(EventKind::kPrefetchHit, clock_, p.pid(), vpn);
        vm::Pte* pte = p.mm().pte(vpn);
        pte->map(pte->pfn());
        pte->set_inv(false);  // fresh-from-device data is valid
        p.mm().note_mapped();
        break;  // retry: now mapped
      }
      case vm::FaultType::kMajor:
        if (!handle_major_fault(p, vpn)) return false;
        break;  // retry: now mapped
    }
  }
}

void Simulator::do_translated_access(Process& p, const Instr& in, its::Vpn vpn) {
  if (!tlb_.lookup(key_of(p.pid(), vpn))) {
    advance(p, cfg_.tlb_walk_cost);
    charge_stall(p, cfg_.tlb_walk_cost);
    tlb_.insert(key_of(p.pid(), vpn));
  }
  vm::Pte* pte = p.mm().pte(vpn);
  pte->set_accessed(true);
  if (in.op == Op::kStore) pte->set_dirty(true);
  frames_.mark_referenced(pte->pfn());

  its::PhysAddr phys = (pte->pfn() << its::kPageShift) | (in.addr & its::kPageOffsetMask);
  mem::AccessResult r = caches_.access(phys, in.size);
  advance(p, r.latency);
  charge_stall(p, r.latency - cfg_.hierarchy.l1.hit_latency);

  if (r.llc_miss()) {
    ++p.metrics().llc_misses;
    ++m_.llc_misses;
    if (policy_->runahead_on_llc_miss()) {
      // Traditional runahead: pre-execute under the DRAM service shadow.
      // The stall itself is still idle time (the process cannot proceed);
      // the payoff arrives as future cache hits (Fig. 4c).
      auto ep = engine_.run(p.trace(), p.pc(), p.rf(), p.mm(),
                            cfg_.hierarchy.dram_latency);
      if (ep.ran) {
        its::Duration stolen =
            std::min<its::Duration>(ep.used, cfg_.hierarchy.dram_latency);
        p.metrics().stolen += stolen;
        m_.stolen_time += stolen;
        ++m_.preexec_episodes;
        m_.preexec_lines_warmed += ep.lines_warmed;
        if (trace_) {
          trace_->record(EventKind::kPreexecBegin, clock_, p.pid(), p.pc());
          trace_->record(EventKind::kPreexecEnd, clock_, p.pid(), p.pc(),
                         ep.used, stolen);
        }
      }
    }
  }
}

its::Duration Simulator::sync_deadline() const {
  if (!finj_.enabled()) return 0;
  // "Auto" deadline: once the wait exceeds a switch-out/switch-in pair the
  // synchronous mode stopped being profitable (§2's crossover argument).
  return cfg_.fault.sync_deadline != 0 ? cfg_.fault.sync_deadline
                                       : 2 * cfg_.ctx_switch_cost;
}

its::SimTime Simulator::post_read_resilient(its::SimTime t, its::Bytes bytes,
                                            std::uint64_t tag) {
  if (!finj_.enabled()) return dma_.post(t, storage::Dir::kRead, bytes);
  for (unsigned attempt = 1;; ++attempt) {
    if (attempt > retry_.max_retries()) {
      // Retry budget exhausted: the transient-fault model says the device's
      // own recovery serves this attempt — an unchecked post cannot fail,
      // so a hostile profile can never wedge the simulation.
      if (retry_.max_retries() > 0) ++m_.retry_exhausted;
      return dma_.post(t, storage::Dir::kRead, bytes);
    }
    storage::PostResult r = dma_.post_checked(t, storage::Dir::kRead, bytes);
    if (!r.error) return r.done;
    // The failure is detected when the attempt completes; the kernel backs
    // off (exponential, capped) and reposts.  Both events live on the
    // device timeline, stamped with their future detection/repost times.
    ++m_.io_errors;
    // The FSM sees the error at post time (monotone with the simulation
    // clock); the trace keeps the future detection stamp.
    health_.note_error(clock_);
    const its::Duration backoff = retry_.backoff(attempt);
    ++m_.io_retries;
    if (trace_) {
      trace_->record(EventKind::kIoError, r.done, obs::kDevicePid, tag,
                     attempt, static_cast<std::uint64_t>(storage::Dir::kRead));
      trace_->record(EventKind::kIoRetry, r.done + backoff, obs::kDevicePid,
                     tag, attempt, backoff);
    }
    t = r.done + backoff;
  }
}

bool Simulator::do_file_op(Process& p, const trace::Instr& in) {
  const bool read = in.op == Op::kFileRead;
  const fs::FileId file = in.src2;
  files_.check_access(file, in.addr, in.size);
  advance(p, cfg_.syscall_cost);

  const std::uint64_t first = in.addr >> its::kPageShift;
  const std::uint64_t last = (in.addr + (in.size ? in.size - 1 : 0)) >> its::kPageShift;
  for (std::uint64_t page = first; page <= last; ++page) {
    const std::uint64_t key = fs::FileSystem::page_key(file, page);
    fs::PcLookup look = pcache_.lookup(key);
    if (look.hit) {
      if (look.ready_at > clock_) {
        // Readahead still in flight: pay the remaining transfer time.
        its::Duration wait = look.ready_at - clock_;
        m_.idle.busy_wait += wait;
        p.metrics().busy_wait += wait;
        wait_in_place(p, wait);
        if (trace_)
          trace_->record(EventKind::kFileWait, clock_, p.pid(), key, wait, 0);
      }
      if (!read) {
        if (auto wb = pcache_.insert(key, clock_, /*dirty=*/true))
          dma_.post(clock_, storage::Dir::kWrite, its::kPageSize);
      }
      continue;
    }
    if (!read) {
      // Write miss: allocate the cache page and dirty it; the data reaches
      // the device on eviction (writeback) — no foreground I/O.
      if (auto wb = pcache_.insert(key, clock_, /*dirty=*/true))
        dma_.post(clock_, storage::Dir::kWrite, its::kPageSize);
      continue;
    }
    if (!file_miss(p, key, file, page)) return false;  // blocked
  }

  // User-buffer copy once the pages are resident.
  auto copy = static_cast<its::Duration>(static_cast<double>(in.size) /
                                         cfg_.copy_bytes_per_ns);
  advance(p, std::max<its::Duration>(copy, 1));
  auto& fstats = files_.stats();
  if (read) {
    ++fstats.reads;
    fstats.bytes_read += in.size;
  } else {
    ++fstats.writes;
    fstats.bytes_written += in.size;
  }
  return true;
}

bool Simulator::file_miss(Process& p, std::uint64_t key, fs::FileId file,
                          std::uint64_t page_index) {
  poll_health();
  its::SimTime done = post_read_resilient(clock_, its::kPageSize, key);
  FaultPlan plan = policy_->plan_major_fault(p, *sched_, health_.state());

  if (plan.go_async) {
    // Block until the page lands; the syscall restarts on wake (the landed
    // page then hits in the cache).  Same one-switch cost model as swap.
    if (auto wb = pcache_.insert(key, done))
      dma_.post(clock_, storage::Dir::kWrite, its::kPageSize);
    // The event carries the cache key so the wake-up can re-pin the page
    // as most-recently-used right before the syscall restarts (otherwise a
    // thrashing cache could evict it every round).
    push_event(done, EventType::kWakeFile, p.pid(), key);
    if (trace_) trace_->record(EventKind::kAsyncConvert, clock_, p.pid(), key);
    sched_->block(&p);
    charge_ctx_switch(p.pid());
    switch_prepaid_ = true;
    ++m_.async_switches;
    return false;
  }

  // Synchronous wait, with the same stealing opportunities as a swap fault.
  its::Duration wait = done - clock_;
  its::Duration utilized = 0;
  if (plan.prefetch != PrefetchKind::kNone) {
    // File readahead: the next sequential pages of the same file.
    utilized += cfg_.kernel_thread_entry;
    const std::uint64_t file_pages =
        (files_.size_of(file) + its::kPageSize - 1) >> its::kPageShift;
    for (unsigned k = 1; k <= cfg_.file_readahead_pages; ++k) {
      std::uint64_t next = page_index + k;
      if (next >= file_pages) break;
      std::uint64_t nkey = fs::FileSystem::page_key(file, next);
      if (pcache_.contains(nkey)) continue;
      its::SimTime t = dma_.post(clock_, storage::Dir::kRead, its::kPageSize);
      if (auto wb = pcache_.insert(nkey, t))
        dma_.post(clock_, storage::Dir::kWrite, its::kPageSize);
      ++m_.prefetch_issued;
      if (trace_)
        trace_->record(EventKind::kPrefetchIssue, clock_, p.pid(), nkey,
                       static_cast<std::uint64_t>(
                           obs::PrefetchSource::kFileReadahead));
    }
  }
  if (plan.preexec && utilized < wait) {
    auto ep = engine_.run(p.trace(), p.pc(), p.rf(), p.mm(), wait - utilized);
    if (ep.ran) {
      utilized += ep.used;
      ++m_.preexec_episodes;
      m_.preexec_lines_warmed += ep.lines_warmed;
      if (trace_) {
        trace_->record(EventKind::kPreexecBegin, clock_, p.pid(), p.pc());
        trace_->record(EventKind::kPreexecEnd, clock_, p.pid(), p.pc(), ep.used);
      }
    }
  }
  utilized = std::min(utilized, wait);
  m_.idle.busy_wait += wait;
  p.metrics().busy_wait += wait;
  m_.stolen_time += utilized;
  p.metrics().stolen += utilized;

  wait_in_place(p, wait);
  if (trace_)
    trace_->record(EventKind::kFileWait, clock_, p.pid(), key, wait, utilized);
  process_due_events();
  if (auto wb = pcache_.insert(key, clock_))
    dma_.post(clock_, storage::Dir::kWrite, its::kPageSize);
  return true;
}

bool Simulator::handle_major_fault(Process& p, its::Vpn vpn) {
  poll_health();
  ++p.metrics().major_faults;
  ++m_.major_faults;
  const storage::DeviceHealth entry_health = health_.state();
  if (entry_health != storage::DeviceHealth::kHealthy)
    ++m_.faults_served_degraded;
  if (trace_)
    trace_->record(EventKind::kFaultBegin, clock_, p.pid(), vpn,
                   static_cast<std::uint64_t>(entry_health));
  advance(p, cfg_.major_fault_sw_cost);  // kernel entry + handler: real work

  vm::Pte* pte = p.mm().pte(vpn);
  if (pte == nullptr) throw std::logic_error("major fault outside address space");

  its::SimTime done;
  if (pte->in_flight()) {
    // A prefetch already has the page in transit — wait out the remainder.
    done = arrival_.at(key_of(p.pid(), vpn));
  } else if (pool_.load(p.pid(), vpn)) {
    // Compressed-DRAM hit: the page's only fresh copy sits in the fallback
    // pool — decompress it on the faulting CPU, no device I/O at all.
    its::Pfn pfn = alloc_frame(p.pid(), vpn);
    vm::Pte* fresh = p.mm().pte(vpn);
    fresh->set_pfn(pfn);
    advance(p, pool_.decompress_cost());
    fresh->map(pfn);
    fresh->set_inv(false);
    p.mm().note_mapped();
    if (trace_) trace_->record(EventKind::kFaultEnd, clock_, p.pid(), vpn);
    return true;
  } else if (device_dead() && swap_.has_slot(p.pid(), vpn)) {
    // The only copy is on a permanently dead device and the pool missed:
    // this page is gone.  The CLI maps the error to exit code 5.
    throw vm::PageLostError(p.pid(), vpn,
                            "demand read from a dead device (pid " +
                                std::to_string(p.pid()) + ", vpn " +
                                std::to_string(vpn) + ") missed the pool");
  } else {
    // Collect the aligned swap cluster around the victim (page-cluster
    // readahead; cluster size 1 = just the victim).
    const unsigned cluster = std::max(cfg_.swap_cluster_pages, 1u);
    const its::Vpn base = vpn - (vpn % cluster);
    std::vector<its::Vpn> batch{vpn};
    for (its::Vpn v = base; v < base + cluster; ++v) {
      if (v == vpn) continue;
      const vm::Pte* sib = p.mm().pte(v);
      if (sib != nullptr && vm::Pte{sib->raw}.swapped_out()) batch.push_back(v);
    }
    for (its::Vpn v : batch) begin_swap_in(p, v);
    // One DMA covers the whole cluster; siblings become swap-cache pages
    // on arrival, exactly like prefetched pages — and count as issued
    // readahead so prefetch accuracy stays a true ratio.
    done = post_read_resilient(clock_, its::kPageSize * batch.size(), vpn);
    for (its::Vpn v : batch) {
      arrival_[key_of(p.pid(), v)] = done;
      if (v != vpn) {
        push_event(done, EventType::kPageArrive, p.pid(), v);
        ++m_.prefetch_issued;
        if (trace_)
          trace_->record(EventKind::kPrefetchIssue, clock_, p.pid(), v,
                         static_cast<std::uint64_t>(
                             obs::PrefetchSource::kSwapCluster));
      }
    }
  }

  if (done <= clock_) {  // transfer already complete
    complete_swap_in(p, vpn);
    if (trace_) trace_->record(EventKind::kFaultEnd, clock_, p.pid(), vpn);
    return true;
  }

  FaultPlan plan = policy_->plan_major_fault(p, *sched_, health_.state());
  // Belt and braces for custom policies: never busy-wait an offline device.
  // The stripped plan converts the fault to asynchronous completion on the
  // spot (window 0) — the watchdog's abort machinery does the bookkeeping.
  if (!plan.go_async && health_.state() == storage::DeviceHealth::kOffline)
    return abort_sync_wait(p, vpn, done, FaultPlan{}, 0);
  if (plan.go_async) {
    // Self-sacrificing path / Async baseline: give the CPU away and let the
    // DMA finish in the background.  Each asynchronous fault costs exactly
    // one context switch (save the faulter, restore the next runnable — the
    // paper's measured 7 µs); the dispatch that follows is that same switch,
    // so it is marked prepaid.
    push_event(done, EventType::kWakeFault, p.pid(), vpn);
    if (trace_) trace_->record(EventKind::kAsyncConvert, clock_, p.pid(), vpn);
    sched_->block(&p);
    charge_ctx_switch(p.pid());
    switch_prepaid_ = true;
    ++m_.async_switches;
    return false;
  }

  // Synchronous wait: [clock_, done).  Steal as much of it as the plan allows.
  its::Duration wait = done - clock_;

  // Graceful-degradation watchdog: with injection on, a tail-latency or
  // retry-inflated completion can push the wait far past the point where
  // busy-waiting beats a context-switch pair.  Rather than wedging the CPU
  // in place, abort the in-place wait at the deadline and fall back to the
  // asynchronous mode (somebody else must be runnable for the switch to buy
  // anything; otherwise waiting in place is still optimal).
  const its::Duration deadline = sync_deadline();
  if (deadline != 0 && wait > deadline && sched_->any_ready()) {
    health_.note_timeout(clock_);
    return abort_sync_wait(p, vpn, done, plan, deadline);
  }

  if (plan.preexec &&
      cfg_.preexec.recovery_trigger == cpu::RecoveryTrigger::kPolling) {
    // §3.4.3 polling trigger: the ITS thread notices the completed I/O only
    // at the next timer check, so the resume point is quantised up to the
    // poll period (the interrupt trigger resumes exactly at completion).
    const its::Duration period = std::max<its::Duration>(cfg_.preexec.poll_period, 1);
    wait = its::round_up(wait, period);
  }
  its::Duration utilized = 0;
  if (plan.prefetch != PrefetchKind::kNone)
    issue_prefetches(p, vpn, plan.prefetch, utilized);
  if (plan.preexec && utilized < wait) {
    auto ep = engine_.run(p.trace(), p.pc(), p.rf(), p.mm(), wait - utilized);
    if (ep.ran) {
      utilized += ep.used;
      ++m_.preexec_episodes;
      m_.preexec_lines_warmed += ep.lines_warmed;
      if (trace_) {
        trace_->record(EventKind::kPreexecBegin, clock_, p.pid(), p.pc());
        trace_->record(EventKind::kPreexecEnd, clock_, p.pid(), p.pc(), ep.used);
      }
    }
  }
  utilized = std::min(utilized, wait);

  // The whole wait is CPU idle time ("the time that the CPU's progress
  // cannot proceed", §4.2.1) — stealing it pays off later through fewer
  // faults and cache misses, the paper's supportive metrics.
  m_.idle.busy_wait += wait;
  p.metrics().busy_wait += wait;
  m_.stolen_time += utilized;
  p.metrics().stolen += utilized;

  wait_in_place(p, wait);  // clock == done for interrupt trigger; later for polling
  process_due_events();  // prefetched siblings may have arrived meanwhile
  complete_swap_in(p, vpn);
  if (trace_)
    trace_->record(EventKind::kFaultEnd, clock_, p.pid(), vpn, wait, utilized);
  return true;
}

bool Simulator::abort_sync_wait(Process& p, its::Vpn vpn, its::SimTime done,
                                const FaultPlan& plan, its::Duration window) {
  // The watchdog lets the sync wait run only up to `window`.  Everything the
  // plan can steal still happens inside the window — including a bounded
  // pre-execute episode whose architectural state is discarded on abort
  // (engine_.run works on scratch copies; the PTE/frame state set up by
  // begin_swap_in stays in flight and is recovered by the wake-up).
  its::Duration utilized = 0;
  if (plan.prefetch != PrefetchKind::kNone)
    issue_prefetches(p, vpn, plan.prefetch, utilized);
  if (plan.preexec && utilized < window) {
    auto ep = engine_.run(p.trace(), p.pc(), p.rf(), p.mm(), window - utilized);
    if (ep.ran) {
      utilized += ep.used;
      ++m_.preexec_episodes;
      m_.preexec_lines_warmed += ep.lines_warmed;
      if (trace_) {
        trace_->record(EventKind::kPreexecBegin, clock_, p.pid(), p.pc());
        trace_->record(EventKind::kPreexecEnd, clock_, p.pid(), p.pc(), ep.used);
      }
    }
  }
  utilized = std::min(utilized, window);

  // Only the window was busy-waited; the rest of the transfer completes in
  // the background while somebody else runs (degraded-mode time).
  m_.idle.busy_wait += window;
  p.metrics().busy_wait += window;
  m_.stolen_time += utilized;
  p.metrics().stolen += utilized;

  wait_in_place(p, window);
  process_due_events();

  const its::Duration remaining = done - clock_;
  ++m_.deadline_aborts;
  ++m_.mode_fallbacks;
  m_.degraded_time += remaining;
  if (trace_) {
    trace_->record(EventKind::kDeadlineAbort, clock_, p.pid(), vpn, window,
                   utilized);
    trace_->record(EventKind::kModeFallback, clock_, p.pid(), vpn, remaining);
  }

  // From here the fault is an asynchronous one: wake at `done`, one context
  // switch to hand the CPU over (counted in mode_fallbacks, not
  // async_switches — the policy never chose to go async).
  push_event(done, EventType::kWakeFault, p.pid(), vpn);
  sched_->block(&p);
  charge_ctx_switch(p.pid());
  switch_prepaid_ = true;
  return false;
}

void Simulator::issue_prefetches(Process& p, its::Vpn victim, PrefetchKind kind,
                                 its::Duration& utilized) {
  // §3.2: transitioning from the page fault handler into the ITS kernel
  // thread costs hundreds of nanoseconds — charged against the wait.
  utilized += cfg_.kernel_thread_entry;
  vm::PrefetchResult pr;
  switch (kind) {
    case PrefetchKind::kVa:
      pr = va_pf_.collect(p.mm(), victim);
      break;
    case PrefetchKind::kPop:
      pr = pop_pf_.collect(p.mm(), victim);
      break;
    case PrefetchKind::kStride:
      pr = stride_pf_.collect(p.mm(), victim);
      break;
    case PrefetchKind::kNone:
      return;
  }
  utilized += pr.walk_cost;
  for (its::Vpn cand : pr.pages) {
    begin_swap_in(p, cand);
    its::SimTime t = post_read_resilient(clock_, its::kPageSize, cand);
    arrival_[key_of(p.pid(), cand)] = t;
    push_event(t, EventType::kPageArrive, p.pid(), cand);
    ++m_.prefetch_issued;
    if (trace_)
      trace_->record(EventKind::kPrefetchIssue, clock_, p.pid(), cand,
                     static_cast<std::uint64_t>(obs::PrefetchSource::kPolicy));
  }
}

void Simulator::begin_swap_in(Process& p, its::Vpn vpn) {
  its::Pfn pfn = alloc_frame(p.pid(), vpn);
  vm::Pte* pte = p.mm().pte(vpn);
  pte->set_pfn(pfn);
  pte->set_in_flight(true);
  frames_.pin(pfn);  // unpinned when the transfer lands
  swap_.slot_for(p.pid(), vpn);
}

void Simulator::complete_swap_in(Process& p, its::Vpn vpn) {
  vm::Pte* pte = p.mm().pte(vpn);
  if (pte->in_flight()) {
    frames_.unpin(pte->pfn());
    swap_.record_swap_in(p.pid(), vpn);
    arrival_.erase(key_of(p.pid(), vpn));
    health_.note_ok(clock_);  // a demand transfer landed: the device serves
  }
  if (!pte->present()) {
    pte->map(pte->pfn());
    pte->set_inv(false);
    p.mm().note_mapped();
  }
}

its::Pfn Simulator::alloc_frame(its::Pid pid, its::Vpn vpn) {
  for (;;) {
    if (auto pfn = frames_.try_alloc(pid, vpn)) return *pfn;
    auto victim = frames_.clock_victim();
    if (!victim)
      throw std::runtime_error(
          "Simulator: every DRAM frame is pinned — DRAM too small for the "
          "prefetch degree");
    evict_frame(*victim);
  }
}

void Simulator::evict_frame(its::Pfn pfn) {
  const vm::FrameInfo& info = frames_.info(pfn);
  Process& owner = proc(info.owner);
  vm::Pte* pte = owner.mm().pte(info.vpn);
  if (pte == nullptr) throw std::logic_error("evicting frame with no PTE");
  if (pte->present()) owner.mm().note_unmapped();
  if (pte->dirty()) {
    poll_health();
    const storage::DeviceHealth h = health_.state();
    const bool device_down = h == storage::DeviceHealth::kDegraded ||
                             h == storage::DeviceHealth::kOffline;
    if (device_down && pool_.store(owner.pid(), info.vpn)) {
      // The device is not (reliably) serving: compress into the fallback
      // pool instead of writing out.  The compression burns foreground CPU
      // (zswap's trade); the page drains back on recovery.
      clock_ += pool_.compress_cost();
      m_.cpu_busy += pool_.compress_cost();
    } else if (device_dead()) {
      throw vm::PageLostError(owner.pid(), info.vpn,
                              "dirty page evicted past the device death "
                              "point with the fallback pool full");
    } else {
      // Fire-and-forget swap-out; it occupies device/link bandwidth only.
      dma_.post(clock_, storage::Dir::kWrite, its::kPageSize);
      swap_.record_swap_out(owner.pid(), info.vpn);
    }
  }
  pte->unmap();
  pte->set_inv(false);
  tlb_.invalidate(key_of(owner.pid(), info.vpn));
  caches_.invalidate_page(pfn << its::kPageShift);
  frames_.release(pfn);
  ++m_.evictions;
  if (trace_)
    trace_->record(EventKind::kEvict, clock_, owner.pid(), pfn, info.vpn);
}

void Simulator::poll_health() {
  if (!health_.enabled()) return;
  health_.poll(clock_);
  const storage::DeviceHealth h = health_.state();
  if ((h == storage::DeviceHealth::kHealthy ||
       h == storage::DeviceHealth::kRecovering) &&
      pool_.pooled_pages() > 0)
    drain_pool();
}

void Simulator::drain_pool() {
  // Recovery drain: every pooled page goes back to the swap device as a
  // background write (fire-and-forget, like a normal swap-out), oldest
  // first.  record_swap_out refreshes the slot so later demand reads hit
  // the device copy.
  while (auto page = pool_.pop_drain()) {
    dma_.post(clock_, storage::Dir::kWrite, its::kPageSize);
    swap_.record_swap_out(page->first, page->second);
  }
}

bool Simulator::device_dead() const {
  return finj_.enabled() && cfg_.fault.outage.dead_at > 0 &&
         clock_ >= cfg_.fault.outage.dead_at;
}

void Simulator::advance(Process& p, its::Duration d) {
  m_.cpu_busy += d;
  wait_in_place(p, d);
}

void Simulator::wait_in_place(Process& p, its::Duration d) {
  clock_ += d;
  p.consume_slice(d);
  sched_->account(p, d);  // vruntime-style disciplines track consumption
}

void Simulator::charge_ctx_switch(its::Pid pid) {
  if (trace_)
    trace_->record(EventKind::kCtxSwitch, clock_, pid, 0, cfg_.ctx_switch_cost);
  clock_ += cfg_.ctx_switch_cost;
  m_.idle.ctx_switch += cfg_.ctx_switch_cost;
  tlb_.flush();  // TLB shootdown — part of the hidden switch cost
}

void Simulator::charge_stall(Process& p, its::Duration d) {
  m_.idle.mem_stall += d;
  p.metrics().mem_stall += d;
}

void Simulator::push_event(its::SimTime t, EventType type, its::Pid pid, its::Vpn vpn) {
  events_.push(Event{t, seq_++, type, pid, vpn});
}

void Simulator::process_due_events() {
  while (!events_.empty() && events_.top().time <= clock_) {
    Event e = events_.top();
    events_.pop();
    Process& p = proc(e.pid);
    switch (e.type) {
      case EventType::kWakeFault:
        complete_swap_in(p, e.vpn);
        // The asynchronous fault's window closes when the kernel notices
        // the completion, i.e. now — stamped with clock_ so the pid's
        // timeline stays append-ordered.
        if (trace_) trace_->record(EventKind::kFaultEnd, clock_, e.pid, e.vpn);
        sched_->wake(&p);
        break;
      case EventType::kWakeFile:
        // Refresh the awaited page to MRU so the restarted syscall hits.
        if (auto wb = pcache_.insert(e.vpn, e.time))
          dma_.post(clock_, storage::Dir::kWrite, its::kPageSize);
        sched_->wake(&p);
        break;
      case EventType::kPageArrive: {
        vm::Pte* pte = p.mm().pte(e.vpn);
        if (pte != nullptr && pte->in_flight()) {
          pte->set_in_flight(false);
          pte->set_swap_cache(true);
          frames_.unpin(pte->pfn());
          swap_.record_swap_in(p.pid(), e.vpn);
          arrival_.erase(key_of(p.pid(), e.vpn));
        }
        break;
      }
      case EventType::kProcArrive:
        if (!gate_ || gate_(p)) {
          sched_->add(&p);
        } else {
          // Rejected at the door: retire untouched (empty metrics, no
          // retire hook) so the run loop's completion count still covers
          // the pid.
          p.set_state(ProcState::kFinished);
          p.metrics().finish_time = clock_;
          ++finished_;
        }
        break;
    }
  }
}

void Simulator::finish(Process& p) {
  p.set_state(ProcState::kFinished);
  p.metrics().finish_time = clock_;
  ++finished_;
  // Process exit reclaims its DRAM: survivors — notably the self-sacrificing
  // low-priority processes — inherit the freed frames ("low-priority
  // processes can receive more dedicated resources after the completion of
  // high-priority processes", §3.3).  The pool's per-owner index makes this
  // proportional to what the process owns, not to the whole pool — the
  // difference between O(P·F) and O(F) total at serving scale (a sorted
  // copy keeps the ascending-pfn eviction order the goldens pin down).
  std::vector<its::Pfn> owned = frames_.frames_of(p.pid());
  std::sort(owned.begin(), owned.end());
  for (its::Pfn pfn : owned) {
    const vm::FrameInfo& info = frames_.info(pfn);
    if (info.in_use && !info.pinned && info.owner == p.pid()) evict_frame(pfn);
  }
  // Anything the exit eviction just pooled (or older pooled pages of this
  // process) dies with it — no drain, no events, plain bookkeeping.  Swap
  // slots go the same way: without the release the device map only grows,
  // and a serving run retiring thousands of processes would drag every
  // swap lookup through an ever-larger table.  Pages whose DMA is still in
  // flight keep their slots — the arrival lands after this retirement and
  // records its swap-in against them.
  std::vector<its::Vpn> in_flight;
  for (its::Pfn pfn : owned) {
    const vm::FrameInfo& info = frames_.info(pfn);
    if (!info.in_use || info.owner != p.pid() || !info.pinned) continue;
    const vm::Pte* pte = p.mm().pte(info.vpn);
    if (pte != nullptr && pte->in_flight()) in_flight.push_back(info.vpn);
  }
  pool_.drop_pid(p.pid());
  swap_.drop_pid(p.pid(), in_flight);
  if (retire_) retire_(p);
}

}  // namespace its::core
