// Machine-readable result export.
//
// The bench binaries print human tables; this module writes the same data
// as CSV so results can be plotted / regression-tracked.  One row per
// (batch, policy) in `write_metrics_csv`, one row per process in
// `write_processes_csv`.
#pragma once

#include "core/experiment.h"

#include <iosfwd>
#include <span>
#include <string>

namespace its::core {

/// Header + one row per (batch, policy): idle breakdown, fault/miss counts,
/// mechanism counters, makespan and the two finish-time aggregates.
void write_metrics_csv(std::ostream& os, std::span<const BatchResult> grid);

/// Header + one row per process per (batch, policy).
void write_processes_csv(std::ostream& os, std::span<const BatchResult> grid);

/// Convenience: formats write_metrics_csv into a string.
std::string metrics_csv(std::span<const BatchResult> grid);

/// Writes both CSVs under `dir` as its_metrics.csv / its_processes.csv.
/// Throws std::runtime_error on I/O failure.
void save_csv_files(const std::string& dir, std::span<const BatchResult> grid);

}  // namespace its::core
