// Experiment runner — shared harness for the bench binaries and examples.
//
// Runs one batch under one or all policies with identical traces, DRAM
// sizing and priority assignment, so the only varying factor is the I/O
// mode policy — the paper's comparison methodology.
#pragma once

#include "core/batch.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/policy.h"
#include "fault/fault_injector.h"
#include "trace/trace.h"
#include "trace/workloads.h"
#include "util/stats.h"

#include <cstddef>
#include <cstdlib>
#include <functional>
#include <map>
#include <vector>

namespace its::obs {
class EventTrace;
}

namespace its::core {

struct ExperimentConfig {
  trace::GeneratorConfig gen{};  ///< Trace scaling knobs.
  SimConfig sim{};               ///< Base config; dram_bytes set per batch.
  double dram_headroom = 1.12;   ///< DRAM = Σ working sets × headroom.
  /// Run-farm width for multi-run entry points (run_batch_all, run_grid_all,
  /// run_sim_tasks, run_batch_policy_repeated): 0 = farm::Farm::default_jobs()
  /// (ITS_JOBS env or hardware_concurrency), 1 = serial reference execution.
  /// Results are bit-identical at every value (docs/performance.md).
  unsigned jobs = 0;

  ExperimentConfig() {
    // The mini traces are ~100x shorter than the paper's Valgrind captures;
    // scale the SCHED_RR slice range (paper: 5–800 ms) by the same factor so
    // the slice-to-runtime ratio — and hence multiprogrammed interleaving —
    // matches the original setup.
    sim.slice_min = 50_us;  // paper 5 ms / 100
    sim.slice_max = 8_ms;   // paper 800 ms / 100
    // CI's hostile job forces every experiment under a named fault profile
    // (docs/robustness.md).  Callers that assign sim.fault afterwards —
    // profile-specific tests, the golden fault run — still win.
    if (const char* env = std::getenv("ITS_FAULT_PROFILE"))
      if (auto p = fault::profile_by_name(env)) sim.fault = *p;
  }
};

/// Runs `batch` under `policy`, generating traces on the fly.
SimMetrics run_batch_policy(const BatchSpec& batch, PolicyKind policy,
                            const ExperimentConfig& cfg = {});

/// Same, but with pre-generated traces (reuse across policies).  When
/// `etrace` is non-null the simulator records its event timeline into it
/// (see obs/event_trace.h); pass nullptr for the zero-overhead default.
SimMetrics run_batch_policy(
    const BatchSpec& batch, PolicyKind policy, const ExperimentConfig& cfg,
    const std::vector<std::shared_ptr<const trace::Trace>>& traces,
    obs::EventTrace* etrace = nullptr);

struct BatchResult {
  const BatchSpec* spec = nullptr;
  std::map<PolicyKind, SimMetrics> by_policy;

  /// value / ITS-value convenience for the normalised figures.
  double normalized(PolicyKind k, double (*extract)(const SimMetrics&)) const;
};

/// Runs every policy over one batch with shared traces.
BatchResult run_batch_all(const BatchSpec& batch, const ExperimentConfig& cfg = {});

/// Runs every paper batch under every policy through one shared run farm:
/// per-batch trace generation fans out first, then all (batch, policy)
/// simulations execute as independent work-stealing tasks.  Results are
/// collected by submission index, so the grid is byte-identical at any
/// `cfg.jobs` — this is the engine behind every figure bench and
/// `its_cli --policy=all` (see docs/performance.md).
std::vector<BatchResult> run_grid_all(const ExperimentConfig& cfg = {});

/// Farms `n` independent simulation tasks over `jobs` workers (0 =
/// default width) and returns the metrics keyed by submission index —
/// the harness the ablation sweeps run on.  `task` must not depend on
/// execution order; nested calls from inside a farm task run inline.
std::vector<SimMetrics> run_sim_tasks(
    std::size_t n, unsigned jobs,
    const std::function<SimMetrics(std::size_t)>& task);

/// Aggregates over repeated runs with different seeds (the paper assigns
/// priorities randomly; this measures how sensitive a result is to the
/// assignment).  Traces are shared; only the priority shuffle varies.
struct RepeatedMetrics {
  util::RunningStat idle_total;     ///< ns
  util::RunningStat major_faults;
  util::RunningStat llc_misses;
  util::RunningStat top_finish;     ///< ns
  util::RunningStat bottom_finish;  ///< ns
};

RepeatedMetrics run_batch_policy_repeated(const BatchSpec& batch, PolicyKind policy,
                                          const ExperimentConfig& cfg,
                                          unsigned repeats);

// Extractors used by the figure benches.
double total_idle_ns(const SimMetrics& m);
double major_faults(const SimMetrics& m);
double llc_misses(const SimMetrics& m);
double top_half_finish(const SimMetrics& m);
double bottom_half_finish(const SimMetrics& m);

}  // namespace its::core
