// Minimal fixed-width table printer for benchmark harness output.
//
// The bench binaries print the same rows/series the paper's figures report;
// this helper keeps that output aligned and diff-friendly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace its::util {

/// Column-aligned text table.  Usage:
///   Table t({"batch", "Async", "Sync", "ITS"});
///   t.add_row({"0_intensive", "2.59", "1.21", "1.00"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision (helper for callers).
  static std::string fmt(double v, int precision = 3);
  /// Formats an integer with thousands separators.
  static std::string fmt(std::uint64_t v);

  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace its::util
