// Deterministic pseudo-random number generation for workload synthesis.
//
// PCG32 (O'Neill, 2014): small state, excellent statistical quality, and —
// critically for a simulator — fully deterministic across platforms so every
// experiment is reproducible from its seed.
#pragma once

#include <cstdint>

namespace its::util {

/// PCG32 generator.  Deterministic, seedable, copyable.
class Rng {
 public:
  /// Seeds the generator.  Two Rngs with equal (seed, stream) produce
  /// identical sequences.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull,
               std::uint64_t stream = 0xda3e39cb94b95bdbull);

  /// Uniform 32-bit value.
  std::uint32_t next_u32();

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire-style rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Zipf-distributed rank in [0, n) with exponent s.  Uses the rejection
  /// method of Hörmann & Derflinger; O(1) per draw, no precomputed tables,
  /// so it is usable for very large n (graph workload generators).
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Geometric draw: number of failures before first success, success
  /// probability p in (0, 1].
  std::uint64_t geometric(double p);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace its::util
