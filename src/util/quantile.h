// Streaming quantile digest: exact while small, log-linear sketch at scale.
//
// Serving-scale percentile tracking (serve/slo.h) needs p50/p99/p999 over
// millions of request latencies without retaining every sample; trace
// analysis (trace/analysis.cpp) needs bit-exact quantiles over a few
// thousand reuse distances.  One digest covers both: samples are kept
// verbatim up to `exact_limit`, so small populations answer with the exact
// order statistic (index ⌊q·(n−1)⌋ of the sorted samples — the formula
// ReuseProfile::quantile_pages always used); past the limit the digest
// collapses into an HDR-style log-linear histogram (every power-of-two
// octave split into 32 linear sub-buckets, ≲3% relative error) and stays
// O(1) per add.  Deterministic by construction — no sampling, no
// randomization — so farmed serving runs reproduce byte-identical
// percentile rows at any --jobs width.  Mergeable in both modes for
// per-tier → fleet aggregation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace its::util {

class QuantileDigest {
 public:
  /// Samples are exact up to `exact_limit` (0 = sketch from the start);
  /// the (exact_limit + 1)-th add folds everything into the sketch.
  explicit QuantileDigest(std::size_t exact_limit = kDefaultExactLimit);

  void add(std::uint64_t v);

  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  /// True while every sample is still held verbatim.
  bool exact() const { return sketch_.empty(); }

  std::uint64_t min() const { return n_ ? min_ : 0; }
  std::uint64_t max() const { return n_ ? max_ : 0; }

  /// q-quantile, q clamped to [0, 1].  Exact mode returns the order
  /// statistic at index ⌊q·(n−1)⌋; sketch mode returns the lower bound of
  /// the bucket containing that rank (an under-estimate by at most one
  /// sub-bucket width).  0 on an empty digest.
  std::uint64_t quantile(double q) const;

  /// Folds `other` into this digest.  The result is exact only if the
  /// combined population still fits this digest's exact limit.
  void merge(const QuantileDigest& other);

  static constexpr std::size_t kDefaultExactLimit = 4096;

 private:
  /// 32 linear sub-buckets per power-of-two octave over the full u64
  /// range; values below one octave's sub-bucket width map one-to-one.
  static constexpr std::uint32_t kSubBits = 5;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;
  static constexpr std::size_t kNumBuckets = 64 * kSubBuckets;

  static std::size_t bucket_of(std::uint64_t v);
  static std::uint64_t bucket_floor(std::size_t b);

  void spill_to_sketch();
  void sketch_add(std::uint64_t v);

  std::size_t exact_limit_;
  std::uint64_t n_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::vector<std::uint64_t> samples_;  ///< Exact mode; empty once spilled.
  std::vector<std::uint64_t> sketch_;   ///< kNumBuckets counts; empty = exact.
};

}  // namespace its::util
