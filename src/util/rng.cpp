#include "util/rng.h"

#include <cmath>

namespace its::util {

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ull + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Rng::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling over the top of the range to remove modulo bias.
  std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  if (n <= 1) return 0;
  // Rejection-inversion (Hörmann & Derflinger 1996) for the Zipf(s) law on
  // {1..n}; returns a 0-based rank.
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    // integral of x^-s
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double u) {
    if (s == 1.0) return std::exp(u);
    return std::pow(1.0 + u * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx0 = h(0.5) - 1.0;
  const double hn = h(nd + 0.5);
  for (;;) {
    double u = hx0 + next_double() * (hn - hx0);
    double x = h_inv(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    double kd = static_cast<double>(k);
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) return k - 1;
  }
}

std::uint64_t Rng::geometric(double p) {
  if (p >= 1.0) return 0;
  if (p <= 0.0) p = 1e-12;
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
}

}  // namespace its::util
