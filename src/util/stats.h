// Lightweight statistics primitives used by every simulator module.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace its::util {

/// Streaming mean/min/max/variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance; 0 if fewer than 2 samples.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel Welford merge).
  void merge(const RunningStat& other);

  void reset() { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Power-of-two bucketed histogram for latency-like values.
/// Bucket i holds values v with 2^i <= v < 2^(i+1); bucket 0 holds {0, 1}.
class LogHistogram {
 public:
  void add(std::uint64_t v);

  std::uint64_t count() const { return total_; }
  std::uint64_t bucket(std::size_t i) const { return i < buckets_.size() ? buckets_[i] : 0; }
  std::size_t bucket_count() const { return buckets_.size(); }

  /// Approximate quantile (q in [0,1]) by linear interpolation inside the
  /// containing bucket.  Returns 0 on an empty histogram.
  std::uint64_t quantile(double q) const;

  void merge(const LogHistogram& other);
  void reset();

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace its::util
