// Minimal command-line flag parser for the CLI driver and tools.
//
// Accepts `--key=value`, `--key value`, and bare boolean `--key`; anything
// else is positional.  No external dependencies, deterministic errors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace its::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  /// Value of `--name=...` / `--name ...`, if present.
  std::optional<std::string> get(std::string_view name) const;

  /// True if `--name` appeared (with or without a value).
  bool has(std::string_view name) const;

  /// Typed getters with defaults; throw std::invalid_argument on parse
  /// failure (a misspelt number should not silently become the default).
  std::uint64_t get_u64(std::string_view name, std::uint64_t def) const;
  double get_double(std::string_view name, double def) const;
  std::string get_string(std::string_view name, std::string def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were provided but never queried — typo detection.
  std::vector<std::string> unknown(std::initializer_list<std::string_view> known) const;

 private:
  struct Flag {
    std::string name;
    std::optional<std::string> value;
  };
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace its::util
