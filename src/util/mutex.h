// Annotated synchronization primitives.
//
// libstdc++'s std::mutex carries no Clang Thread Safety capability
// attributes, so GUARDED_BY(some_std_mutex) parses but enforces nothing.
// Mutex wraps std::mutex in a CAPABILITY type and MutexLock is the
// matching SCOPED_CAPABILITY guard, so annotated classes get real
// -Wthread-safety checking on clang (and its_lint's conc pass checks the
// annotation *presence* on every compiler — docs/concurrency.md).
//
// CondVar wraps std::condition_variable_any, which waits on any
// BasicLockable — i.e. directly on a MutexLock.  It deliberately offers
// no predicate overload: callers write an explicit `while (!ready)
// cv.wait(l);` loop, because a predicate lambda is analyzed as a separate
// unannotated function and silently loses the guarded-read checking the
// wrapper exists to provide (see Farm::run_indexed for the idiom).
#pragma once

#include "util/thread_annotations.h"

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace its::util {

/// Cache-line size used to pad hot synchronization members apart
/// (its_lint conc-false-share).  std::hardware_destructive_interference_
/// size would be the portable spelling, but its value may change with
/// compiler flags and releases; a pinned constant keeps struct layout —
/// and therefore the determinism fingerprint — toolchain-independent.
inline constexpr std::size_t kDestructiveInterferenceSize = 64;

/// std::mutex as a Clang Thread Safety capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII guard over Mutex (the project's lock_guard/unique_lock).  Also a
/// BasicLockable so CondVar::wait can release and reacquire it.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// BasicLockable surface for CondVar::wait only — the analysis sees the
  /// wait as a no-op on the capability, which is exactly right: the lock
  /// is held again whenever the caller's code runs.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// Condition variable that waits directly on a MutexLock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `l`, sleeps, reacquires `l` before returning.
  /// Spurious wakeups happen: always wait in a `while (!predicate)` loop.
  void wait(MutexLock& l) { cv_.wait(l); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace its::util
