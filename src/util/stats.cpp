#include "util/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace its::util {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  double delta = o.mean_ - mean_;
  std::uint64_t n = n_ + o.n_;
  double nd = static_cast<double>(n);
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) / nd;
  mean_ = (mean_ * static_cast<double>(n_) + o.mean_ * static_cast<double>(o.n_)) / nd;
  n_ = n;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

namespace {
std::size_t bucket_index(std::uint64_t v) {
  return v < 2 ? 0 : static_cast<std::size_t>(std::bit_width(v) - 1);
}
}  // namespace

void LogHistogram::add(std::uint64_t v) {
  std::size_t i = bucket_index(v);
  if (i >= buckets_.size()) buckets_.resize(i + 1, 0);
  ++buckets_[i];
  ++total_;
}

std::uint64_t LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] > target) {
      std::uint64_t lo = i == 0 ? 0 : (1ull << i);
      std::uint64_t hi = (i >= 63) ? ~0ull : (1ull << (i + 1)) - 1;
      double frac = static_cast<double>(target - seen) / static_cast<double>(buckets_[i]);
      return lo + static_cast<std::uint64_t>(frac * static_cast<double>(hi - lo));
    }
    seen += buckets_[i];
  }
  return 1ull << (buckets_.size() - 1);
}

void LogHistogram::merge(const LogHistogram& o) {
  if (o.buckets_.size() > buckets_.size()) buckets_.resize(o.buckets_.size(), 0);
  for (std::size_t i = 0; i < o.buckets_.size(); ++i) buckets_[i] += o.buckets_[i];
  total_ += o.total_;
}

void LogHistogram::reset() {
  buckets_.clear();
  total_ = 0;
}

}  // namespace its::util
