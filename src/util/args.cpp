#include "util/args.h"

#include <algorithm>
#include <stdexcept>

namespace its::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a.rfind("--", 0) != 0) {
      positional_.emplace_back(a);
      continue;
    }
    a.remove_prefix(2);
    auto eq = a.find('=');
    if (eq != std::string_view::npos) {
      flags_.push_back({std::string(a.substr(0, eq)), std::string(a.substr(eq + 1))});
      continue;
    }
    // `--key value` if the next token is not itself a flag.
    if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags_.push_back({std::string(a), std::string(argv[++i])});
    } else {
      flags_.push_back({std::string(a), std::nullopt});
    }
  }
}

std::optional<std::string> Args::get(std::string_view name) const {
  for (const auto& f : flags_)
    if (f.name == name) return f.value;
  return std::nullopt;
}

bool Args::has(std::string_view name) const {
  return std::any_of(flags_.begin(), flags_.end(),
                     [&](const Flag& f) { return f.name == name; });
}

std::uint64_t Args::get_u64(std::string_view name, std::uint64_t def) const {
  auto v = get(name);
  if (!v || v->empty()) return def;
  try {
    std::size_t pos = 0;
    std::uint64_t out = std::stoull(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing characters");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + std::string(name) + ": not an integer: " + *v);
  }
}

double Args::get_double(std::string_view name, double def) const {
  auto v = get(name);
  if (!v || v->empty()) return def;
  try {
    std::size_t pos = 0;
    double out = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing characters");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + std::string(name) + ": not a number: " + *v);
  }
}

std::string Args::get_string(std::string_view name, std::string def) const {
  auto v = get(name);
  return v ? *v : def;
}

std::vector<std::string> Args::unknown(
    std::initializer_list<std::string_view> known) const {
  std::vector<std::string> out;
  for (const auto& f : flags_)
    if (std::find(known.begin(), known.end(), f.name) == known.end())
      out.push_back(f.name);
  return out;
}

}  // namespace its::util
