// Clang Thread Safety Analysis attribute shim.
//
// The macros below expand to clang's capability attributes when the
// compiler understands them and to nothing everywhere else, so annotated
// code compiles identically under gcc while clang builds get static
// lock-discipline checking (-Wthread-safety, promoted to an error under
// ITS_WERROR — see the top-level CMakeLists.txt).  libstdc++'s std::mutex
// carries no capability attributes, which is why src/util/mutex.h wraps
// it in an annotated its::util::Mutex: GUARDED_BY on a raw std::mutex
// would parse but never be enforced.
//
// its_lint's conc pass (tools/its_lint/conc.cpp) is the portable half of
// the same contract: it requires GUARDED_BY on every mutable member of a
// lock-owning class regardless of the compiler, so the annotations cannot
// rot on a gcc-only machine.  docs/concurrency.md states the rules.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define ITS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ITS_THREAD_ANNOTATION(x)  // no-op: gcc and friends
#endif

/// A type whose instances are capabilities (locks).
#define CAPABILITY(x) ITS_THREAD_ANNOTATION(capability(x))

/// An RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY ITS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given lock.
#define GUARDED_BY(x) ITS_THREAD_ANNOTATION(guarded_by(x))

/// Function that must be called with the given lock(s) already held.
#define REQUIRES(...) ITS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the given lock(s) and returns holding them.
#define ACQUIRE(...) ITS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the given lock(s).
#define RELEASE(...) ITS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that must NOT be called with the given lock(s) held —
/// non-reentrancy documentation the analysis enforces at every call site.
#define EXCLUDES(...) ITS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
