// Fundamental simulator-wide types and constants.
//
// Every latency and timestamp in the simulator is an integer count of
// nanoseconds (SimTime).  Virtual and physical addresses are 64-bit, pages
// are the x86-64 4 KiB base pages the paper's mini-kernel manages.
#pragma once

#include <cstdint>

namespace its {

/// Simulation time in nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// Duration in nanoseconds.
using Duration = std::uint64_t;

/// A virtual address in some process's address space.
using VirtAddr = std::uint64_t;

/// A physical (DRAM) address.
using PhysAddr = std::uint64_t;

/// Virtual page number (VirtAddr >> kPageShift).
using Vpn = std::uint64_t;

/// Physical frame number (PhysAddr >> kPageShift).
using Pfn = std::uint64_t;

/// Process identifier.
using Pid = std::uint32_t;

inline constexpr std::uint64_t kPageShift = 12;
inline constexpr std::uint64_t kPageSize = 1ull << kPageShift;  // 4 KiB
inline constexpr std::uint64_t kPageOffsetMask = kPageSize - 1;

inline constexpr std::uint64_t kCacheLineShift = 6;
inline constexpr std::uint64_t kCacheLineSize = 1ull << kCacheLineShift;  // 64 B

/// Convenience literals for sizes.
inline constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
inline constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
inline constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

/// Convenience literals for durations (all convert to nanoseconds).
inline constexpr Duration operator""_ns(unsigned long long v) { return v; }
inline constexpr Duration operator""_us(unsigned long long v) { return v * 1000ull; }
inline constexpr Duration operator""_ms(unsigned long long v) { return v * 1000000ull; }
inline constexpr Duration operator""_s(unsigned long long v) { return v * 1000000000ull; }

constexpr Vpn vpn_of(VirtAddr a) { return a >> kPageShift; }
constexpr Pfn pfn_of(PhysAddr a) { return a >> kPageShift; }
constexpr VirtAddr page_base(VirtAddr a) { return a & ~kPageOffsetMask; }
constexpr std::uint64_t line_of(std::uint64_t a) { return a >> kCacheLineShift; }

/// An invalid sentinel for page/frame numbers.
inline constexpr std::uint64_t kInvalidPage = ~0ull;

/// Packs a process id with a 48-bit page number or virtual address into one
/// key (TLB tags, swap slots, pre-execute cache keys, arrival maps).
/// Canonical x86-64 user addresses keep the payload below 2^48; the mask
/// guards imported traces with exotic addresses from aliasing across pids.
constexpr std::uint64_t pid_key(Pid pid, std::uint64_t addr_or_vpn) {
  return (addr_or_vpn & ((1ull << 48) - 1)) | (static_cast<std::uint64_t>(pid) << 48);
}

}  // namespace its
