// Fundamental simulator-wide types, the quantity contract, and the checked
// arithmetic helpers that keep nanosecond accounting exact.
//
// Every latency and timestamp in the simulator is an integer count of
// nanoseconds.  Virtual and physical addresses are 64-bit, pages are the
// x86-64 4 KiB base pages the paper's mini-kernel manages.
//
// == The quantity contract ==================================================
//
// The aliases below are dimensional types, not interchangeable integers.
// `tools/its_lint`'s units pass (docs/static-analysis.md#units) enforces the
// algebra across the whole tree, so the aliases stay plain `uint64_t` —
// zero-overhead, bit-identical to untyped code — while the linter provides
// the dimension check the compiler cannot:
//
//   SimTime  − SimTime  → Duration      (duration_between asserts order)
//   SimTime  + Duration → SimTime       (advancing a clock)
//   Duration ± Duration → Duration
//   SimTime  + SimTime                  → units-mixed-arith finding
//   time  {+,−,<,==,…}  bytes/pages/addresses → units-mixed-arith finding
//   Duration × Duration, Duration × count     → units-overflow finding
//                                 (use checked_mul / saturating_mul / wide_mul)
//
// A `SimTime` is a point on the simulation timeline ("when"); a `Duration`
// is a distance along it ("how long").  `Bytes` is a byte count; `Vpn`/`Pfn`
// are page numbers; `VirtAddr`/`PhysAddr` are byte addresses.  Declaring a
// time/address/size quantity as bare `uint64_t` (or `double`) where an alias
// exists is itself a finding (units-alias-decl).
#pragma once

#include <cassert>
#include <cstdint>

namespace its {

/// Simulation time in nanoseconds since simulation start (a point in time).
using SimTime = std::uint64_t;

/// Duration in nanoseconds (a distance between two SimTime points).
using Duration = std::uint64_t;

/// A virtual address in some process's address space.
using VirtAddr = std::uint64_t;

/// A physical (DRAM) address.
using PhysAddr = std::uint64_t;

/// Virtual page number (VirtAddr >> kPageShift).
using Vpn = std::uint64_t;

/// Physical frame number (PhysAddr >> kPageShift).
using Pfn = std::uint64_t;

/// A byte count (capacities, transfer sizes, working sets).
using Bytes = std::uint64_t;

/// Process identifier.
using Pid = std::uint32_t;

/// Saturation rail for duration arithmetic: ~584 years of nanoseconds.
inline constexpr Duration kDurationMax = ~0ull;

inline constexpr std::uint64_t kPageShift = 12;
inline constexpr Bytes kPageSize = 1ull << kPageShift;  // 4 KiB
inline constexpr Bytes kPageOffsetMask = kPageSize - 1;

inline constexpr std::uint64_t kCacheLineShift = 6;
inline constexpr Bytes kCacheLineSize = 1ull << kCacheLineShift;  // 64 B

// -- Checked arithmetic ------------------------------------------------------
//
// At the 10-100x trace lengths the full-scale-trace work targets, a
// Duration*count product of two "safe-looking" operands silently wraps
// (2^64 ns is only ~584 years, but rate*count math multiplies *before* it
// divides).  These helpers are the sanctioned forms: the units lint pass
// flags raw products of dimensioned operands and points here.

/// True when a * b does not fit in 64 bits.
constexpr bool mul_overflows(std::uint64_t a, std::uint64_t b) {
  return b != 0 && a > ~0ull / b;
}

/// a * b, clamped to the maximum representable value instead of wrapping.
constexpr std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
  return mul_overflows(a, b) ? ~0ull : a * b;
}

/// a * b under the caller's claim that it fits: asserts in debug builds,
/// saturates (never wraps) in release builds.
constexpr std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b) {
  assert(!mul_overflows(a, b) && "checked_mul: 64-bit overflow");
  return saturating_mul(a, b);
}

/// a + b, clamped to the maximum representable value instead of wrapping.
constexpr std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  return a > ~0ull - b ? ~0ull : a + b;
}

/// The distance between two points on the simulation timeline.  `end` must
/// not precede `start` — asserted in debug builds, clamped to 0 in release
/// builds so accounting can never underflow into a ~2^64 ns "duration".
constexpr Duration duration_between(SimTime end, SimTime start) {
  assert(end >= start && "duration_between: end precedes start");
  return end >= start ? end - start : 0;
}

/// `v` rounded up to the next multiple of `quantum` (quantum >= 1) without
/// the raw Duration*Duration product of the ((v+q-1)/q)*q idiom; saturates
/// instead of wrapping when v sits within one quantum of the rail.
constexpr Duration round_up(Duration v, Duration quantum) {
  assert(quantum != 0 && "round_up: zero quantum");
  const Duration rem = v % quantum;
  return rem == 0 ? v : saturating_add(v, quantum - rem);
}

/// `v` truncated to a multiple of `quantum` — the checked spelling of the
/// (v / q) * q idiom, which the units lint reads as a raw Duration product.
constexpr Duration round_down(Duration v, Duration quantum) {
  assert(quantum != 0 && "round_down: zero quantum");
  return v - v % quantum;
}

/// Exact-width 128-bit accumulator for rate*count products that may exceed
/// 64 bits mid-computation (wide_mul) or sums of ~2^64-scale terms.  Not a
/// general integer: just the operations the accounting paths need, all
/// constexpr and deterministic.
struct Wide128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  constexpr Wide128& add(std::uint64_t v) {
    const std::uint64_t sum = lo + v;
    hi += sum < lo ? 1 : 0;
    lo = sum;
    return *this;
  }

  constexpr bool fits_u64() const { return hi == 0; }

  /// The low 64 bits when the value fits, else the saturation rail.
  constexpr std::uint64_t clamped() const { return hi == 0 ? lo : ~0ull; }

  friend constexpr bool operator==(const Wide128& a, const Wide128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

/// Full-width a * b: never wraps, never loses bits.  Divide or clamp the
/// result explicitly — the overflow decision becomes visible in the code.
constexpr Wide128 wide_mul(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t a_lo = a & 0xffffffffull, a_hi = a >> 32;
  const std::uint64_t b_lo = b & 0xffffffffull, b_hi = b >> 32;
  const std::uint64_t ll = a_lo * b_lo;
  const std::uint64_t lh = a_lo * b_hi;
  const std::uint64_t hl = a_hi * b_lo;
  const std::uint64_t hh = a_hi * b_hi;
  const std::uint64_t mid = (ll >> 32) + (lh & 0xffffffffull) + (hl & 0xffffffffull);
  Wide128 r;
  r.lo = (mid << 32) | (ll & 0xffffffffull);
  r.hi = hh + (lh >> 32) + (hl >> 32) + (mid >> 32);
  return r;
}

/// Convenience literals for sizes.  Saturating: a pathological literal
/// clamps to 2^64-1 instead of silently wrapping.
inline constexpr Bytes operator""_KiB(unsigned long long v) {
  return saturating_mul(v, 1ull << 10);
}
inline constexpr Bytes operator""_MiB(unsigned long long v) {
  return saturating_mul(v, 1ull << 20);
}
inline constexpr Bytes operator""_GiB(unsigned long long v) {
  return saturating_mul(v, 1ull << 30);
}

/// Convenience literals for durations (all convert to nanoseconds).
/// Saturating for the same reason: 19_s of headroom remain below 2^64 ns
/// only for ~584 simulated years, but a computed `operator""_s`-scale
/// product (v * 1e9) wraps for v >= 18446744074 — clamp, never wrap.
inline constexpr Duration operator""_ns(unsigned long long v) { return v; }
inline constexpr Duration operator""_us(unsigned long long v) {
  return saturating_mul(v, 1000ull);
}
inline constexpr Duration operator""_ms(unsigned long long v) {
  return saturating_mul(v, 1000ull * 1000ull);
}
inline constexpr Duration operator""_s(unsigned long long v) {
  return saturating_mul(v, 1000ull * 1000ull * 1000ull);
}

constexpr Vpn vpn_of(VirtAddr a) { return a >> kPageShift; }
constexpr Pfn pfn_of(PhysAddr a) { return a >> kPageShift; }
constexpr VirtAddr page_base(VirtAddr a) { return a & ~kPageOffsetMask; }
constexpr std::uint64_t line_of(std::uint64_t a) { return a >> kCacheLineShift; }

/// An invalid sentinel for page/frame numbers.
inline constexpr std::uint64_t kInvalidPage = ~0ull;

/// Packs a process id with a 48-bit page number or virtual address into one
/// key (TLB tags, swap slots, pre-execute cache keys, arrival maps).
/// Canonical x86-64 user addresses keep the payload below 2^48; the mask
/// guards imported traces with exotic addresses from aliasing across pids.
constexpr std::uint64_t pid_key(Pid pid, std::uint64_t addr_or_vpn) {
  return (addr_or_vpn & ((1ull << 48) - 1)) | (static_cast<std::uint64_t>(pid) << 48);
}

}  // namespace its
