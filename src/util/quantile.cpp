#include "util/quantile.h"

#include <algorithm>
#include <bit>

namespace its::util {

QuantileDigest::QuantileDigest(std::size_t exact_limit)
    : exact_limit_(exact_limit) {
  if (exact_limit_ > 0) samples_.reserve(std::min<std::size_t>(exact_limit_, 1024));
}

std::size_t QuantileDigest::bucket_of(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const auto e = static_cast<std::uint32_t>(63 - std::countl_zero(v));
  const std::uint64_t sub = (v - (std::uint64_t{1} << e)) >> (e - kSubBits);
  return static_cast<std::size_t>((e - kSubBits + 1) * kSubBuckets + sub);
}

std::uint64_t QuantileDigest::bucket_floor(std::size_t b) {
  if (b < kSubBuckets) return b;
  const std::size_t g = b / kSubBuckets;
  const std::size_t sub = b % kSubBuckets;
  const std::uint32_t e = static_cast<std::uint32_t>(g) + kSubBits - 1;
  return (std::uint64_t{1} << e) +
         (static_cast<std::uint64_t>(sub) << (e - kSubBits));
}

void QuantileDigest::sketch_add(std::uint64_t v) { ++sketch_[bucket_of(v)]; }

void QuantileDigest::spill_to_sketch() {
  if (!sketch_.empty()) return;
  sketch_.assign(kNumBuckets, 0);
  for (std::uint64_t v : samples_) sketch_add(v);
  samples_.clear();
  samples_.shrink_to_fit();
}

void QuantileDigest::add(std::uint64_t v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  if (sketch_.empty() && samples_.size() < exact_limit_) {
    samples_.push_back(v);
    return;
  }
  spill_to_sketch();
  sketch_add(v);
}

std::uint64_t QuantileDigest::quantile(double q) const {
  if (n_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(n_ - 1));
  if (exact()) {
    std::vector<std::uint64_t> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    return sorted[static_cast<std::size_t>(rank)];
  }
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < sketch_.size(); ++b) {
    cum += sketch_[b];
    if (cum > rank) return bucket_floor(b);
  }
  return max_;
}

void QuantileDigest::merge(const QuantileDigest& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  n_ += other.n_;
  if (exact() && other.exact() &&
      samples_.size() + other.samples_.size() <= exact_limit_) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    return;
  }
  spill_to_sketch();
  if (other.exact()) {
    for (std::uint64_t v : other.samples_) sketch_add(v);
  } else {
    for (std::size_t b = 0; b < kNumBuckets; ++b) sketch_[b] += other.sketch_[b];
  }
}

}  // namespace its::util
