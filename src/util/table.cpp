#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace its::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: header must be non-empty");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  int cnt = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (cnt && cnt % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++cnt;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "");
      os << cells[c];
      for (std::size_t p = cells[c].size(); p < w[c]; ++p) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < w.size(); ++c) {
    if (c) rule += "  ";
    rule += std::string(w[c], '-');
  }
  os << rule << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace its::util
