// Swap area — the ULL device's block space backing anonymous pages.
//
// The mini-kernel swaps process pages (the paper's "process I/O / swap
// I/O"): each (pid, vpn) owns one slot.  Content is not modelled (the
// simulator is trace-driven); the slot map exists so swap-in/out pairs can
// be validated and counted, and so device occupancy can be reported.
#pragma once

#include "obs/event_trace.h"
#include "util/types.h"

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace its::vm {

struct SwapStats {
  std::uint64_t slots_allocated = 0;
  std::uint64_t swap_ins = 0;   ///< Page reads from the device.
  std::uint64_t swap_outs = 0;  ///< Page writes to the device.
};

/// Swap-path retry/backoff policy for injected device errors (see
/// fault/fault_injector.h): a failed demand read is retried after an
/// exponentially growing, capped backoff, up to `max_retries` times; the
/// attempt after the last allowed retry is treated as served by the
/// device's own recovery (transient-fault model), so a simulation never
/// wedges on a hostile profile.  Pure arithmetic — the simulator owns the
/// clock and the DMA; this class only answers "how long until the next
/// attempt".
class RetryPolicy {
 public:
  RetryPolicy() = default;
  RetryPolicy(unsigned max_retries, its::Duration backoff_base,
              double backoff_mult, its::Duration backoff_cap);

  unsigned max_retries() const { return max_retries_; }

  /// Backoff before retry number `attempt` (1-based):
  /// min(base · mult^(attempt-1), cap), never below 1 ns.
  its::Duration backoff(unsigned attempt) const;

  /// Upper bound on the time the whole retry ladder can add beyond the
  /// attempts themselves (Σ backoffs) — the per-fault retry deadline.
  its::Duration max_total_backoff() const;

 private:
  unsigned max_retries_ = 3;
  its::Duration base_ = 1_us;
  double mult_ = 2.0;
  its::Duration cap_ = 64_us;
};

class SwapArea {
 public:
  /// `capacity_pages` bounds the device size (0 = unbounded).
  explicit SwapArea(std::uint64_t capacity_pages = 0)
      : capacity_(capacity_pages) {}

  /// Slot for (pid, vpn), allocating on first use.  Throws if the device
  /// is full.
  std::uint64_t slot_for(its::Pid pid, its::Vpn vpn);

  /// True if (pid, vpn) already owns a slot.
  bool has_slot(its::Pid pid, its::Vpn vpn) const;

  /// Records a page read (swap-in) of an existing slot.
  void record_swap_in(its::Pid pid, its::Vpn vpn);

  /// Records a page write (swap-out); allocates the slot if missing.
  void record_swap_out(its::Pid pid, its::Vpn vpn);

  /// Releases every slot owned by `pid` — the device space backing an
  /// address space dies with its process.  O(slots owned), not O(map):
  /// without this the slot map only ever grows, and a serving run that
  /// retires thousands of short-lived processes drags every lookup through
  /// an ever-colder table.  `keep` lists vpns whose slots must survive:
  /// pages whose DMA is still in flight at exit land after the drop and
  /// record their swap-in against the retained slot.
  void drop_pid(its::Pid pid, std::span<const its::Vpn> keep = {});

  std::uint64_t slots_in_use() const { return slots_.size(); }
  std::uint64_t capacity_pages() const { return capacity_; }
  const SwapStats& stats() const { return stats_; }

  /// Emits kSwapIn/kSwapOut events to `trace`, stamped from `*clock`.
  void attach_trace(obs::EventTrace* trace, const its::SimTime* clock) {
    trace_ = trace;
    clock_ = clock;
  }

 private:
  static std::uint64_t key(its::Pid pid, its::Vpn vpn) {
    return its::pid_key(pid, vpn);
  }

  std::uint64_t capacity_;
  std::uint64_t next_slot_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> slots_;
  /// Per-pid slot index so drop_pid never scans the whole map.
  std::unordered_map<its::Pid, std::vector<its::Vpn>> owned_;
  SwapStats stats_;
  obs::EventTrace* trace_ = nullptr;
  const its::SimTime* clock_ = nullptr;
};

}  // namespace its::vm
