// Swap area — the ULL device's block space backing anonymous pages.
//
// The mini-kernel swaps process pages (the paper's "process I/O / swap
// I/O"): each (pid, vpn) owns one slot.  Content is not modelled (the
// simulator is trace-driven); the slot map exists so swap-in/out pairs can
// be validated and counted, and so device occupancy can be reported.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "obs/event_trace.h"
#include "util/types.h"

namespace its::vm {

struct SwapStats {
  std::uint64_t slots_allocated = 0;
  std::uint64_t swap_ins = 0;   ///< Page reads from the device.
  std::uint64_t swap_outs = 0;  ///< Page writes to the device.
};

class SwapArea {
 public:
  /// `capacity_pages` bounds the device size (0 = unbounded).
  explicit SwapArea(std::uint64_t capacity_pages = 0)
      : capacity_(capacity_pages) {}

  /// Slot for (pid, vpn), allocating on first use.  Throws if the device
  /// is full.
  std::uint64_t slot_for(its::Pid pid, its::Vpn vpn);

  /// True if (pid, vpn) already owns a slot.
  bool has_slot(its::Pid pid, its::Vpn vpn) const;

  /// Records a page read (swap-in) of an existing slot.
  void record_swap_in(its::Pid pid, its::Vpn vpn);

  /// Records a page write (swap-out); allocates the slot if missing.
  void record_swap_out(its::Pid pid, its::Vpn vpn);

  std::uint64_t slots_in_use() const { return slots_.size(); }
  std::uint64_t capacity_pages() const { return capacity_; }
  const SwapStats& stats() const { return stats_; }

  /// Emits kSwapIn/kSwapOut events to `trace`, stamped from `*clock`.
  void attach_trace(obs::EventTrace* trace, const its::SimTime* clock) {
    trace_ = trace;
    clock_ = clock;
  }

 private:
  static std::uint64_t key(its::Pid pid, its::Vpn vpn) {
    return its::pid_key(pid, vpn);
  }

  std::uint64_t capacity_;
  std::uint64_t next_slot_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> slots_;
  SwapStats stats_;
  obs::EventTrace* trace_ = nullptr;
  const its::SimTime* clock_ = nullptr;
};

}  // namespace its::vm
