#include "vm/prefetch.h"

#include "util/types.h"
#include "vm/mm.h"
#include "vm/pte.h"

namespace its::vm {

PrefetchResult VaPrefetcher::collect(MemoryDescriptor& mm, its::Vpn victim) const {
  PrefetchResult r;
  r.pages.reserve(cfg_.degree);
  auto cur = mm.page_table().cursor_at(victim + 1);
  its::Vpn vpn = 0;
  while (r.pages.size() < cfg_.degree && cur.slots_examined() < cfg_.max_slots) {
    Pte* pte = cur.next(vpn);
    if (pte == nullptr) break;  // walked off the populated tables
    // Present-bit check (Fig. 2 step 6): skip pages already in DRAM or on
    // their way there.
    if (Pte{pte->raw}.swapped_out()) r.pages.push_back(vpn);
  }
  r.slots_examined = cur.slots_examined();
  r.walk_cost = r.slots_examined * cfg_.per_slot_cost;
  note_walk(mm.pid(), victim, r);
  return r;
}

PrefetchResult StridePrefetcher::collect(MemoryDescriptor& mm, its::Vpn victim) {
  PrefetchResult r;
  State& st = state_[mm.pid()];
  if (st.last != its::kInvalidPage) {
    auto delta = static_cast<std::int64_t>(victim) - static_cast<std::int64_t>(st.last);
    if (delta == st.stride && delta != 0) {
      ++st.confidence;
    } else {
      st.stride = delta;
      st.confidence = 1;
    }
  }
  st.last = victim;
  if (st.confidence >= cfg_.min_confidence && st.stride != 0) {
    for (unsigned k = 1; k <= cfg_.degree; ++k) {
      auto cand = static_cast<std::int64_t>(victim) + static_cast<std::int64_t>(k) * st.stride;
      if (cand < 0) break;
      ++r.slots_examined;
      const Pte* pte = mm.pte(static_cast<its::Vpn>(cand));
      if (pte != nullptr && pte->swapped_out())
        r.pages.push_back(static_cast<its::Vpn>(cand));
    }
  }
  r.walk_cost = r.slots_examined * cfg_.per_slot_cost;
  note_walk(mm.pid(), victim, r);
  return r;
}

std::int64_t StridePrefetcher::stride_for(its::Pid pid) const {
  auto it = state_.find(pid);
  if (it == state_.end() || it->second.confidence < cfg_.min_confidence) return 0;
  return it->second.stride;
}

PrefetchResult PopPrefetcher::collect(MemoryDescriptor& mm, its::Vpn victim) const {
  PrefetchResult r;
  const its::Vpn base = victim - (victim % cfg_.unit_pages);
  for (its::Vpn vpn = base; vpn < base + cfg_.unit_pages; ++vpn) {
    ++r.slots_examined;
    if (vpn == victim) continue;
    const Pte* pte = mm.pte(vpn);
    if (pte != nullptr && pte->swapped_out()) r.pages.push_back(vpn);
  }
  r.walk_cost = r.slots_examined * cfg_.per_slot_cost;
  note_walk(mm.pid(), victim, r);
  return r;
}

}  // namespace its::vm
