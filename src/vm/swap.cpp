#include "vm/swap.h"

#include "obs/event_trace.h"
#include "util/types.h"

#include <algorithm>
#include <stdexcept>

namespace its::vm {

RetryPolicy::RetryPolicy(unsigned max_retries, its::Duration backoff_base,
                         double backoff_mult, its::Duration backoff_cap)
    : max_retries_(max_retries),
      base_(backoff_base),
      mult_(backoff_mult < 1.0 ? 1.0 : backoff_mult),
      cap_(std::max<its::Duration>(backoff_cap, 1)) {}

its::Duration RetryPolicy::backoff(unsigned attempt) const {
  if (attempt == 0) attempt = 1;
  // its-lint: allow(units-narrow): exponential ladder multiplies in doubles
  double b = static_cast<double>(base_);
  for (unsigned i = 1; i < attempt; ++i) {
    b *= mult_;
    // its-lint: allow(units-narrow): cap compare in the double domain
    if (b >= static_cast<double>(cap_)) break;  // saturated
  }
  auto d = static_cast<its::Duration>(
      // its-lint: allow(units-narrow): rounding the saturated double draw
      std::min(b, static_cast<double>(cap_)));
  return std::max<its::Duration>(d, 1);
}

its::Duration RetryPolicy::max_total_backoff() const {
  its::Duration total = 0;
  for (unsigned a = 1; a <= max_retries_; ++a) total += backoff(a);
  return total;
}

std::uint64_t SwapArea::slot_for(its::Pid pid, its::Vpn vpn) {
  auto k = key(pid, vpn);
  auto it = slots_.find(k);
  if (it != slots_.end()) return it->second;
  if (capacity_ != 0 && slots_.size() >= capacity_)
    throw std::runtime_error("SwapArea: device full");
  std::uint64_t s = next_slot_++;
  slots_.emplace(k, s);
  owned_[pid].push_back(vpn);
  ++stats_.slots_allocated;
  return s;
}

void SwapArea::drop_pid(its::Pid pid, std::span<const its::Vpn> keep) {
  auto it = owned_.find(pid);
  if (it == owned_.end()) return;
  for (its::Vpn vpn : it->second) {
    if (std::find(keep.begin(), keep.end(), vpn) != keep.end()) continue;
    slots_.erase(key(pid, vpn));
  }
  if (keep.empty()) {
    owned_.erase(it);
  } else {
    it->second.assign(keep.begin(), keep.end());
  }
}

bool SwapArea::has_slot(its::Pid pid, its::Vpn vpn) const {
  return slots_.contains(key(pid, vpn));
}

void SwapArea::record_swap_in(its::Pid pid, its::Vpn vpn) {
  if (!has_slot(pid, vpn)) throw std::logic_error("SwapArea: swap-in of unallocated slot");
  ++stats_.swap_ins;
  if (trace_ != nullptr)
    trace_->record(obs::EventKind::kSwapIn, *clock_, pid, vpn);
}

void SwapArea::record_swap_out(its::Pid pid, its::Vpn vpn) {
  slot_for(pid, vpn);
  ++stats_.swap_outs;
  if (trace_ != nullptr)
    trace_->record(obs::EventKind::kSwapOut, *clock_, pid, vpn);
}

}  // namespace its::vm
