#include "vm/swap.h"

#include <stdexcept>

namespace its::vm {

std::uint64_t SwapArea::slot_for(its::Pid pid, its::Vpn vpn) {
  auto k = key(pid, vpn);
  auto it = slots_.find(k);
  if (it != slots_.end()) return it->second;
  if (capacity_ != 0 && slots_.size() >= capacity_)
    throw std::runtime_error("SwapArea: device full");
  std::uint64_t s = next_slot_++;
  slots_.emplace(k, s);
  ++stats_.slots_allocated;
  return s;
}

bool SwapArea::has_slot(its::Pid pid, its::Vpn vpn) const {
  return slots_.contains(key(pid, vpn));
}

void SwapArea::record_swap_in(its::Pid pid, its::Vpn vpn) {
  if (!has_slot(pid, vpn)) throw std::logic_error("SwapArea: swap-in of unallocated slot");
  ++stats_.swap_ins;
  if (trace_ != nullptr)
    trace_->record(obs::EventKind::kSwapIn, *clock_, pid, vpn);
}

void SwapArea::record_swap_out(its::Pid pid, its::Vpn vpn) {
  slot_for(pid, vpn);
  ++stats_.swap_outs;
  if (trace_ != nullptr)
    trace_->record(obs::EventKind::kSwapOut, *clock_, pid, vpn);
}

}  // namespace its::vm
