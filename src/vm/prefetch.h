// Page prefetchers.
//
// VaPrefetcher — the paper's virtual-address-based page prefetcher (§3.4.1,
// Fig. 2): during a synchronous fault wait it walks the faulting process's
// page table starting right after the victim page, skips pages already in
// DRAM (present-bit check), and collects up to `degree` swap-resident
// candidates; hitting the end of a PT it continues through the next PMD
// entry.  The walk itself costs CPU time — time stolen from the busy wait.
//
// PopPrefetcher — the Sync_Prefetch baseline (§4.1 footnote 5): "groups a
// static number of pages with continuous page id into a page-on-page unit
// and fetches an entire unit during handling a page fault" — an aligned
// unit around the victim, no locality judgement.
#pragma once

#include "obs/event_trace.h"
#include "util/types.h"
#include "vm/mm.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace its::vm {

struct PrefetchResult {
  std::vector<its::Vpn> pages;       ///< Swap-resident candidates to fetch.
  its::Duration walk_cost = 0;       ///< CPU ns spent finding them.
  std::uint64_t slots_examined = 0;  ///< PTE slots inspected.
};

/// Shared observability hook: each prefetcher emits one kPrefetchWalk event
/// per collect() describing the candidate walk (victim, slots, cost).
class PrefetcherObs {
 public:
  void attach_trace(obs::EventTrace* trace, const its::SimTime* clock) {
    trace_ = trace;
    clock_ = clock;
  }

 protected:
  void note_walk(its::Pid pid, its::Vpn victim, const PrefetchResult& r) const {
    if (trace_ != nullptr)
      trace_->record(obs::EventKind::kPrefetchWalk, *clock_, pid, victim,
                     r.slots_examined, r.walk_cost);
  }

 private:
  obs::EventTrace* trace_ = nullptr;
  const its::SimTime* clock_ = nullptr;
};

struct VaPrefetcherConfig {
  unsigned degree = 4;           ///< Candidate pages per fault (n in Fig. 2).
  std::uint64_t max_slots = 256; ///< Walk bound — give up on sparse spaces.
  its::Duration per_slot_cost = 6;  ///< ns per PTE slot examined.
};

class VaPrefetcher : public PrefetcherObs {
 public:
  explicit VaPrefetcher(const VaPrefetcherConfig& cfg = {}) : cfg_(cfg) {}

  /// Collects candidates after `victim` in `mm`'s virtual address space.
  PrefetchResult collect(MemoryDescriptor& mm, its::Vpn victim) const;

  const VaPrefetcherConfig& config() const { return cfg_; }

 private:
  VaPrefetcherConfig cfg_;
};

struct PopPrefetcherConfig {
  unsigned unit_pages = 4;          ///< Pages per page-on-page unit.
  its::Duration per_slot_cost = 6;  ///< ns per PTE inspected.
};

class PopPrefetcher : public PrefetcherObs {
 public:
  explicit PopPrefetcher(const PopPrefetcherConfig& cfg = {}) : cfg_(cfg) {}

  /// The victim's aligned unit, minus pages already in DRAM and the victim
  /// itself (it is being fetched by the fault handler already).
  PrefetchResult collect(MemoryDescriptor& mm, its::Vpn victim) const;

  const PopPrefetcherConfig& config() const { return cfg_; }

 private:
  PopPrefetcherConfig cfg_;
};

struct StridePrefetcherConfig {
  unsigned degree = 4;              ///< Predictions per confident fault.
  unsigned min_confidence = 2;      ///< Consecutive equal deltas required.
  its::Duration per_slot_cost = 6;  ///< ns per PTE inspected.
};

/// Stride prefetcher — an alternative to the paper's VA-walk prefetcher
/// (ablation `abl_prefetcher_kind`): learns the per-process delta between
/// consecutive fault victims and, once confident, fetches victim + k·stride.
/// Unlike the VA walk it can follow negative and multi-page strides, but it
/// needs training faults per stride change and predicts nothing on random
/// streams.
class StridePrefetcher : public PrefetcherObs {
 public:
  explicit StridePrefetcher(const StridePrefetcherConfig& cfg = {}) : cfg_(cfg) {}

  /// Observes `victim` for `mm`'s process and returns confident
  /// predictions (swap-resident pages only).  Stateful per pid.
  PrefetchResult collect(MemoryDescriptor& mm, its::Vpn victim);

  const StridePrefetcherConfig& config() const { return cfg_; }

  /// Learned (confident) stride for a process, 0 if untrained; test hook.
  std::int64_t stride_for(its::Pid pid) const;

 private:
  struct State {
    its::Vpn last = its::kInvalidPage;
    std::int64_t stride = 0;
    unsigned confidence = 0;
  };
  StridePrefetcherConfig cfg_;
  std::unordered_map<its::Pid, State> state_;
};

}  // namespace its::vm
