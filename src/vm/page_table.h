// Four-level x86-64 page table (PGD → PUD → PMD → PT), as walked by the
// paper's virtual-address-based page prefetcher (Fig. 2).
//
// Each level holds 512 entries indexed by 9 bits of the virtual address.
// A `Cursor` reproduces the prefetcher's traversal: starting right after
// the victim page it "iteratively increments the page table offset … and in
// cases where an insufficient number of candidate pages is gathered after
// walking through the entire page table, the policy reverts to traversing
// the next PMD entry in the PMD table to access an alternative page table".
#pragma once

#include "util/types.h"
#include "vm/pte.h"

#include <array>
#include <cstdint>
#include <memory>

namespace its::vm {

inline constexpr unsigned kEntriesPerLevel = 512;

constexpr unsigned pgd_index(its::VirtAddr a) { return (a >> 39) & 0x1ff; }
constexpr unsigned pud_index(its::VirtAddr a) { return (a >> 30) & 0x1ff; }
constexpr unsigned pmd_index(its::VirtAddr a) { return (a >> 21) & 0x1ff; }
constexpr unsigned pte_index(its::VirtAddr a) {
  return (a >> its::kPageShift) & 0x1ff;
}

class PageTable {
 public:
  PageTable();
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;
  PageTable(PageTable&&) = default;
  PageTable& operator=(PageTable&&) = default;
  ~PageTable();

  /// Full 4-level walk.  Returns nullptr if any intermediate level is
  /// absent (the VA was never populated).
  Pte* lookup(its::VirtAddr va);
  const Pte* lookup(its::VirtAddr va) const;

  /// Walk that allocates missing intermediate tables (page population).
  Pte& ensure(its::VirtAddr va);

  /// Number of levels that exist along the walk for `va` (1..4); used to
  /// charge page-walk cost.  4 means the PTE slot exists.
  unsigned levels_mapped(its::VirtAddr va) const;

  /// Number of allocated table nodes at all levels (memory accounting).
  std::uint64_t tables_allocated() const { return tables_; }

  /// Sequential PTE-slot cursor over ascending virtual pages.  Skips holes
  /// by stopping: `next()` returns nullptr once it reaches a VA whose leaf
  /// table does not exist (the prefetcher then gives up — nothing is mapped
  /// there).
  class Cursor {
   public:
    /// Advances to the next virtual page and returns its PTE slot, or
    /// nullptr if the walk left populated tables.  `vpn_out` receives the
    /// page the returned PTE describes.
    Pte* next(its::Vpn& vpn_out);

    /// PTE slots examined so far (cost accounting).
    std::uint64_t slots_examined() const { return examined_; }

   private:
    friend class PageTable;
    Cursor(PageTable& pt, its::Vpn start) : pt_(&pt), vpn_(start) {}
    PageTable* pt_;
    its::Vpn vpn_;
    std::uint64_t examined_ = 0;
  };

  /// Cursor whose first `next()` yields the PTE for `start`.
  Cursor cursor_at(its::Vpn start) { return Cursor(*this, start); }

 private:
  struct Pt {
    std::array<Pte, kEntriesPerLevel> e{};
  };
  struct Pmd {
    std::array<std::unique_ptr<Pt>, kEntriesPerLevel> t;
  };
  struct Pud {
    std::array<std::unique_ptr<Pmd>, kEntriesPerLevel> t;
  };
  struct Pgd {
    std::array<std::unique_ptr<Pud>, kEntriesPerLevel> t;
  };

  std::unique_ptr<Pgd> pgd_;
  std::uint64_t tables_ = 1;  // the PGD itself
};

}  // namespace its::vm
