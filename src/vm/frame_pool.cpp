#include "vm/frame_pool.h"

#include "util/types.h"

#include <stdexcept>

namespace its::vm {

FramePool::FramePool(its::Bytes dram_bytes) {
  std::uint64_t n = dram_bytes >> its::kPageShift;
  if (n == 0) throw std::invalid_argument("FramePool: DRAM must hold >= 1 frame");
  frames_.assign(n, FrameInfo{});
  free_.reserve(n);
  // Hand out low frames first for reproducibility.
  for (std::uint64_t i = n; i-- > 0;) free_.push_back(i);
  pos_.assign(n, kUnindexed);
}

void FramePool::index_insert(its::Pfn pfn, its::Pid owner) {
  std::vector<its::Pfn>& v = owned_[owner];
  pos_[pfn] = v.size();
  v.push_back(pfn);
}

void FramePool::index_remove(its::Pfn pfn, its::Pid owner) {
  if (pos_[pfn] == kUnindexed) return;  // carved frames are never tracked
  std::vector<its::Pfn>& v = owned_[owner];
  const its::Pfn last = v.back();
  v[pos_[pfn]] = last;
  pos_[last] = pos_[pfn];
  v.pop_back();
  pos_[pfn] = kUnindexed;
}

const std::vector<its::Pfn>& FramePool::frames_of(its::Pid owner) const {
  static const std::vector<its::Pfn> kNone;
  auto it = owned_.find(owner);
  return it == owned_.end() ? kNone : it->second;
}

FrameInfo& FramePool::at(its::Pfn pfn) {
  if (pfn >= frames_.size()) throw std::out_of_range("FramePool: bad pfn");
  return frames_[pfn];
}

const FrameInfo& FramePool::info(its::Pfn pfn) const {
  return const_cast<FramePool*>(this)->at(pfn);
}

std::optional<its::Pfn> FramePool::try_alloc(its::Pid owner, its::Vpn vpn) {
  if (free_.empty()) return std::nullopt;
  its::Pfn pfn = free_.back();
  free_.pop_back();
  FrameInfo& f = frames_[pfn];
  f = FrameInfo{};
  f.in_use = true;
  f.owner = owner;
  f.vpn = vpn;
  index_insert(pfn, owner);
  ++stats_.allocations;
  return pfn;
}

std::optional<its::Pfn> FramePool::clock_victim() {
  const std::uint64_t n = frames_.size();
  // Two full sweeps suffice: the first may clear every reference bit, the
  // second must then find an unreferenced, unpinned frame if one exists.
  for (std::uint64_t scanned = 0; scanned < 2 * n; ++scanned) {
    FrameInfo& f = frames_[hand_];
    std::uint64_t current = hand_;
    hand_ = (hand_ + 1) % n;
    ++stats_.clock_scans;
    if (!f.in_use || f.pinned) continue;
    if (f.referenced) {
      f.referenced = false;  // second chance
      continue;
    }
    return current;
  }
  return std::nullopt;
}

void FramePool::release(its::Pfn pfn) {
  FrameInfo& f = at(pfn);
  if (!f.in_use) throw std::logic_error("FramePool: releasing free frame");
  index_remove(pfn, f.owner);
  f = FrameInfo{};
  free_.push_back(pfn);
  ++stats_.releases;
}

void FramePool::assign(its::Pfn pfn, its::Pid owner, its::Vpn vpn) {
  FrameInfo& f = at(pfn);
  if (!f.in_use) throw std::logic_error("FramePool: assigning free frame");
  index_remove(pfn, f.owner);
  f.owner = owner;
  f.vpn = vpn;
  f.referenced = false;
  f.pinned = false;
  index_insert(pfn, owner);
}

std::uint64_t FramePool::carve_tail(std::uint64_t count) {
  // The constructor pushes high pfns first, so the tail of the pool sits
  // at the front of the free list; always keep at least one frame usable.
  if (free_.size() <= 1) return 0;
  count = std::min<std::uint64_t>(count, free_.size() - 1);
  for (std::uint64_t i = 0; i < count; ++i) {
    FrameInfo& f = frames_[free_[i]];
    f.in_use = true;
    f.pinned = true;
  }
  free_.erase(free_.begin(),
              free_.begin() + static_cast<std::ptrdiff_t>(count));
  return count;
}

void FramePool::pin(its::Pfn pfn) { at(pfn).pinned = true; }
void FramePool::unpin(its::Pfn pfn) { at(pfn).pinned = false; }
void FramePool::mark_referenced(its::Pfn pfn) { at(pfn).referenced = true; }

}  // namespace its::vm
