// Physical DRAM frame pool with CLOCK (second-chance) replacement.
//
// The paper sizes DRAM "to match the working set" of the batch; when every
// frame is in use, allocating for a fault or a prefetch evicts the CLOCK
// victim.  The pool tracks ownership (which process/virtual page holds each
// frame) so the simulator can unmap, invalidate caches, and schedule the
// swap-out write.  Frames receiving an in-flight DMA transfer are pinned.
#pragma once

#include "util/types.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace its::vm {

struct FrameInfo {
  bool in_use = false;
  bool pinned = false;
  bool referenced = false;  ///< CLOCK reference bit.
  its::Pid owner = 0;
  its::Vpn vpn = its::kInvalidPage;
};

struct FramePoolStats {
  std::uint64_t allocations = 0;
  std::uint64_t releases = 0;
  std::uint64_t clock_scans = 0;  ///< Frames examined by the CLOCK hand.
};

class FramePool {
 public:
  explicit FramePool(its::Bytes dram_bytes);

  std::uint64_t num_frames() const { return frames_.size(); }
  std::uint64_t free_frames() const { return free_.size(); }
  std::uint64_t used_frames() const { return num_frames() - free_frames(); }

  /// Takes a free frame, or nullopt if DRAM is full (caller must evict).
  std::optional<its::Pfn> try_alloc(its::Pid owner, its::Vpn vpn);

  /// Picks the next eviction victim by CLOCK: skips pinned frames, gives a
  /// second chance to referenced ones.  Returns nullopt only if every
  /// in-use frame is pinned.
  std::optional<its::Pfn> clock_victim();

  /// Returns a frame to the free list.
  void release(its::Pfn pfn);

  /// Re-assigns an in-use frame to a new owner (after eviction).
  void assign(its::Pfn pfn, its::Pid owner, its::Vpn vpn);

  void pin(its::Pfn pfn);
  void unpin(its::Pfn pfn);
  void mark_referenced(its::Pfn pfn);

  /// Carves up to `count` frames off the tail (highest pfns) of the free
  /// list for an external owner — the compressed fallback pool
  /// (vm/fallback_pool.h).  Carved frames are marked in-use and pinned so
  /// the CLOCK hand never considers them.  Call before the first
  /// allocation; returns the number actually carved.
  std::uint64_t carve_tail(std::uint64_t count);

  /// Frames currently allocated to `owner` (through try_alloc/assign), in
  /// unspecified order — sort a copy before any order-sensitive walk.
  /// Maintained O(1) per allocation/release so a process exit reclaims its
  /// DRAM in time proportional to what it owns, not to the whole pool
  /// (docs/serving.md profiles the difference at serving scale).  Carved
  /// frames (carve_tail) are never tracked.
  const std::vector<its::Pfn>& frames_of(its::Pid owner) const;

  const FrameInfo& info(its::Pfn pfn) const;
  const FramePoolStats& stats() const { return stats_; }

  its::PhysAddr phys_base(its::Pfn pfn) const { return pfn << its::kPageShift; }

 private:
  static constexpr std::size_t kUnindexed = static_cast<std::size_t>(-1);

  FrameInfo& at(its::Pfn pfn);
  void index_insert(its::Pfn pfn, its::Pid owner);
  void index_remove(its::Pfn pfn, its::Pid owner);

  std::vector<FrameInfo> frames_;
  std::vector<its::Pfn> free_;
  std::uint64_t hand_ = 0;
  FramePoolStats stats_;
  /// Owner → owned pfns, with per-frame positions for O(1) swap-removal.
  std::unordered_map<its::Pid, std::vector<its::Pfn>> owned_;
  std::vector<std::size_t> pos_;
};

}  // namespace its::vm
