// Compressed-DRAM fallback pool — zswap for a dead swap device.
//
// While the swap device is degraded or offline (storage/device_health.h),
// evicted dirty pages cannot be written out; instead of wedging or losing
// them, the mini-kernel compresses them into frames carved off the tail of
// the DRAM pool (FramePool::carve_tail).  A demand read consults the pool
// before touching the device, paying a modeled decompress latency instead
// of a media read; on recovery the simulator drains pooled pages back to
// the device as background writes.
//
// The pool is pure bookkeeping plus deterministic FIFO order: pages are
// keyed by (pid, vpn) and drained oldest-first via a monotone store
// sequence, so a given fault schedule always produces the same drain
// order.  With `capacity_pages() == 0` (no carve — the outage model off)
// every entry point is inert and the simulation is bit-identical.
#pragma once

#include "obs/event_trace.h"
#include "util/types.h"

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace its::vm {

/// Sizing and latency model for the fallback pool (SimConfig::fallback_pool;
/// docs/configuration.md).  Only consulted when the fault profile's outage
/// model is enabled — otherwise no frames are carved and the pool is inert.
struct FallbackPoolConfig {
  std::uint64_t frames = 64;   ///< Frames carved from the DRAM pool tail.
  double ratio = 3.0;          ///< Compression ratio: pages stored per frame.
  its::Duration compress_cost = 2_us;     ///< CPU cost to compress one page.
  its::Duration decompress_cost = 1_us;   ///< CPU cost to decompress one page.
};

/// A page was irrecoverably lost: the device is permanently dead and the
/// fallback pool could not cover it.  The CLI maps this to exit code 5.
struct PageLostError : std::runtime_error {
  PageLostError(its::Pid pid_, its::Vpn vpn_, const std::string& what)
      : std::runtime_error(what), pid(pid_), vpn(vpn_) {}
  its::Pid pid;
  its::Vpn vpn;
};

struct FallbackPoolStats {
  std::uint64_t stores = 0;      ///< Pages compressed into the pool.
  std::uint64_t hits = 0;        ///< Demand reads served from the pool.
  std::uint64_t drains = 0;      ///< Pages drained back to the device.
  std::uint64_t full_rejects = 0;///< Stores refused because the pool was full.
  std::uint64_t peak_pages = 0;  ///< High-water mark of pooled pages.
};

class FallbackPool {
 public:
  FallbackPool() = default;  ///< Disabled (zero-capacity) pool.

  /// `carved_frames` is what FramePool::carve_tail actually granted;
  /// capacity is carved_frames × ratio pages.
  FallbackPool(const FallbackPoolConfig& cfg, std::uint64_t carved_frames);

  bool enabled() const { return capacity_pages_ > 0; }
  std::uint64_t capacity_pages() const { return capacity_pages_; }
  std::uint64_t pooled_pages() const { return by_seq_.size(); }
  bool full() const { return pooled_pages() >= capacity_pages_; }

  its::Duration compress_cost() const { return cfg_.compress_cost; }
  its::Duration decompress_cost() const { return cfg_.decompress_cost; }

  bool contains(its::Pid pid, its::Vpn vpn) const {
    return by_key_.count(its::pid_key(pid, vpn)) != 0;
  }

  /// Compresses (pid, vpn) into the pool; emits kPoolStore.  Returns false
  /// (and counts a full_reject) when the pool is full or disabled.
  bool store(its::Pid pid, its::Vpn vpn);

  /// Serves a demand read from the pool, removing the page; emits
  /// kPoolLoad.  Returns false if the page is not pooled.
  bool load(its::Pid pid, its::Vpn vpn);

  /// Pops the oldest pooled page for the recovery drain; emits kPoolDrain.
  /// Returns nullopt when the pool is empty.
  std::optional<std::pair<its::Pid, its::Vpn>> pop_drain();

  /// Drops every page owned by `pid` (the process exited while pooled).
  void drop_pid(its::Pid pid);

  const FallbackPoolStats& stats() const { return stats_; }

  /// Emits kPoolStore/kPoolLoad/kPoolDrain to `trace`, stamped from
  /// `*clock` — the SwapArea::attach_trace idiom.
  void attach_trace(obs::EventTrace* trace, const its::SimTime* clock) {
    trace_ = trace;
    clock_ = clock;
  }

  void reset();

 private:
  FallbackPoolConfig cfg_{};
  std::uint64_t capacity_pages_ = 0;

  /// FIFO drain order via a monotone store sequence; std::map keeps the
  /// iteration deterministic (docs/determinism rules ban unordered walks).
  std::map<std::uint64_t, std::uint64_t> by_seq_;          // seq -> key
  std::unordered_map<std::uint64_t, std::uint64_t> by_key_;  // key -> seq
  std::uint64_t next_seq_ = 0;

  FallbackPoolStats stats_{};
  obs::EventTrace* trace_ = nullptr;
  const its::SimTime* clock_ = nullptr;
};

}  // namespace its::vm
