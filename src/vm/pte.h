// Page Table Entry — x86-64-style bit layout.
//
// Matches the layout the paper leans on: the physical frame number lives in
// bits 12..47 ("the policy retrieves its physical address located between
// bit positions 12 and 48 in the PT entry"), and the INV bit proposed in
// §3.4.2 occupies one of the spare control bits (we use bit 9; Linux keeps
// bits 9–11 software-defined).
//
// Additional software states used by the mini-kernel:
//   swap-cache : the page's data is in a DRAM frame (prefetched) but the
//                mapping is not yet established → touching it is a minor
//                fault (mapping cost, no I/O);
//   in-flight  : a DMA transfer into the frame is in progress → touching it
//                waits for the remaining transfer time.
// A PTE that is all-clear in these bits represents a swap-resident page
// (major fault on touch); every generated page starts swap-resident.
#pragma once

#include "util/types.h"

#include <cstdint>

namespace its::vm {

struct Pte {
  std::uint64_t raw = 0;

  static constexpr std::uint64_t kPresent = 1ull << 0;
  static constexpr std::uint64_t kAccessed = 1ull << 5;
  static constexpr std::uint64_t kDirty = 1ull << 6;
  static constexpr std::uint64_t kInv = 1ull << 9;        ///< Pre-execute poison.
  static constexpr std::uint64_t kSwapCache = 1ull << 10; ///< Data in frame, unmapped.
  static constexpr std::uint64_t kInFlight = 1ull << 11;  ///< DMA to frame in progress.
  static constexpr unsigned kPfnShift = 12;
  static constexpr std::uint64_t kPfnMask = ((1ull << 36) - 1) << kPfnShift;

  bool present() const { return raw & kPresent; }
  bool accessed() const { return raw & kAccessed; }
  bool dirty() const { return raw & kDirty; }
  bool inv() const { return raw & kInv; }
  bool swap_cached() const { return raw & kSwapCache; }
  bool in_flight() const { return raw & kInFlight; }

  /// True if the page's data lives only in the swap area (major fault).
  bool swapped_out() const {
    return (raw & (kPresent | kSwapCache | kInFlight)) == 0;
  }

  its::Pfn pfn() const { return (raw & kPfnMask) >> kPfnShift; }

  void set_present(bool v) { set(kPresent, v); }
  void set_accessed(bool v) { set(kAccessed, v); }
  void set_dirty(bool v) { set(kDirty, v); }
  void set_inv(bool v) { set(kInv, v); }
  void set_swap_cache(bool v) { set(kSwapCache, v); }
  void set_in_flight(bool v) { set(kInFlight, v); }

  void set_pfn(its::Pfn pfn) {
    raw = (raw & ~kPfnMask) | ((pfn << kPfnShift) & kPfnMask);
  }

  /// Map the PTE to `pfn` and mark it present (clears transfer states,
  /// preserves accessed/dirty/INV management to the caller).
  void map(its::Pfn pfn) {
    set_pfn(pfn);
    raw &= ~(kSwapCache | kInFlight);
    raw |= kPresent;
  }

  /// Return the PTE to the swap-resident state (eviction).
  void unmap() { raw &= ~(kPresent | kSwapCache | kInFlight | kAccessed | kDirty | kPfnMask); }

 private:
  void set(std::uint64_t bit, bool v) {
    if (v)
      raw |= bit;
    else
      raw &= ~bit;
  }
};

static_assert(sizeof(Pte) == 8);

}  // namespace its::vm
