#include "vm/page_table.h"

#include "util/types.h"
#include "vm/pte.h"

namespace its::vm {

PageTable::PageTable() : pgd_(std::make_unique<Pgd>()) {}
PageTable::~PageTable() = default;

Pte* PageTable::lookup(its::VirtAddr va) {
  Pud* pud = pgd_->t[pgd_index(va)].get();
  if (!pud) return nullptr;
  Pmd* pmd = pud->t[pud_index(va)].get();
  if (!pmd) return nullptr;
  Pt* pt = pmd->t[pmd_index(va)].get();
  if (!pt) return nullptr;
  return &pt->e[pte_index(va)];
}

const Pte* PageTable::lookup(its::VirtAddr va) const {
  return const_cast<PageTable*>(this)->lookup(va);
}

Pte& PageTable::ensure(its::VirtAddr va) {
  auto& pud = pgd_->t[pgd_index(va)];
  if (!pud) {
    pud = std::make_unique<Pud>();
    ++tables_;
  }
  auto& pmd = pud->t[pud_index(va)];
  if (!pmd) {
    pmd = std::make_unique<Pmd>();
    ++tables_;
  }
  auto& pt = pmd->t[pmd_index(va)];
  if (!pt) {
    pt = std::make_unique<Pt>();
    ++tables_;
  }
  return pt->e[pte_index(va)];
}

unsigned PageTable::levels_mapped(its::VirtAddr va) const {
  const Pud* pud = pgd_->t[pgd_index(va)].get();
  if (!pud) return 1;
  const Pmd* pmd = pud->t[pud_index(va)].get();
  if (!pmd) return 2;
  const Pt* pt = pmd->t[pmd_index(va)].get();
  if (!pt) return 3;
  return 4;
}

Pte* PageTable::Cursor::next(its::Vpn& vpn_out) {
  its::VirtAddr va = vpn_ << its::kPageShift;
  ++examined_;
  Pte* pte = pt_->lookup(va);
  if (pte == nullptr) return nullptr;  // left populated tables — give up
  vpn_out = vpn_;
  ++vpn_;
  return pte;
}

}  // namespace its::vm
