// Per-process memory descriptor (the mini-kernel's mm_struct).
//
// Owns the process's page table and classifies touches into the fault
// taxonomy the paper uses: major faults move data between storage and
// memory; minor faults only adjust metadata (§3.1 footnote 3).
#pragma once

#include "util/types.h"
#include "vm/page_table.h"
#include "vm/pte.h"

#include <cstdint>
#include <span>

namespace its::vm {

/// State of one virtual page, derived from its PTE.
enum class PageState : std::uint8_t {
  kUnmapped,   ///< Never part of the address space (no PTE slot).
  kSwapped,    ///< Data only in the swap area — touch ⇒ major fault.
  kSwapCache,  ///< Data in a DRAM frame, not mapped — touch ⇒ minor fault.
  kInFlight,   ///< DMA into the frame in progress — touch waits, then maps.
  kMapped,     ///< Present; regular translation.
};

/// Classification of one memory touch.
enum class FaultType : std::uint8_t { kNone, kMinor, kMajor };

class MemoryDescriptor {
 public:
  /// Builds the address space: every page in `footprint` gets a PTE slot in
  /// the swap-resident state (cold, swap-backed heap — see DESIGN.md).
  MemoryDescriptor(its::Pid pid, std::span<const its::Vpn> footprint);

  its::Pid pid() const { return pid_; }
  PageTable& page_table() { return pt_; }
  const PageTable& page_table() const { return pt_; }

  /// PTE slot for `vpn`, or nullptr if outside the address space.
  Pte* pte(its::Vpn vpn) { return pt_.lookup(vpn << its::kPageShift); }
  const Pte* pte(its::Vpn vpn) const { return pt_.lookup(vpn << its::kPageShift); }

  PageState state(its::Vpn vpn) const;

  /// Fault classification for touching `vpn` right now.  kInFlight pages
  /// classify as major (the process must wait for I/O).
  FaultType classify(its::Vpn vpn) const;

  std::uint64_t footprint_pages() const { return footprint_pages_; }
  std::uint64_t resident_pages() const { return resident_; }

  /// Residency bookkeeping — called by the kernel on map/unmap.
  void note_mapped() { ++resident_; }
  void note_unmapped() { --resident_; }

 private:
  its::Pid pid_;
  PageTable pt_;
  std::uint64_t footprint_pages_ = 0;
  std::uint64_t resident_ = 0;
};

}  // namespace its::vm
