#include "vm/mm.h"

#include "util/types.h"
#include "vm/pte.h"

namespace its::vm {

MemoryDescriptor::MemoryDescriptor(its::Pid pid, std::span<const its::Vpn> footprint)
    : pid_(pid) {
  for (its::Vpn vpn : footprint) {
    pt_.ensure(vpn << its::kPageShift);  // slot exists, raw == 0 ⇒ swapped out
    ++footprint_pages_;
  }
}

PageState MemoryDescriptor::state(its::Vpn vpn) const {
  const Pte* p = pte(vpn);
  if (p == nullptr) return PageState::kUnmapped;
  if (p->present()) return PageState::kMapped;
  if (p->in_flight()) return PageState::kInFlight;
  if (p->swap_cached()) return PageState::kSwapCache;
  return PageState::kSwapped;
}

FaultType MemoryDescriptor::classify(its::Vpn vpn) const {
  switch (state(vpn)) {
    case PageState::kMapped:
      return FaultType::kNone;
    case PageState::kSwapCache:
      return FaultType::kMinor;
    case PageState::kInFlight:
    case PageState::kSwapped:
    case PageState::kUnmapped:
      return FaultType::kMajor;
  }
  return FaultType::kMajor;
}

}  // namespace its::vm
