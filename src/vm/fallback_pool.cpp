#include "vm/fallback_pool.h"

#include "obs/event_trace.h"
#include "util/types.h"

#include <algorithm>

namespace its::vm {

namespace {

constexpr its::Pid pid_of_key(std::uint64_t key) {
  return static_cast<its::Pid>(key >> 48);
}

constexpr its::Vpn vpn_of_key(std::uint64_t key) {
  return key & ((1ull << 48) - 1);
}

}  // namespace

FallbackPool::FallbackPool(const FallbackPoolConfig& cfg,
                           std::uint64_t carved_frames)
    : cfg_(cfg) {
  const double ratio = std::max(cfg.ratio, 1.0);
  capacity_pages_ =
      static_cast<std::uint64_t>(static_cast<double>(carved_frames) * ratio);
}

bool FallbackPool::store(its::Pid pid, its::Vpn vpn) {
  if (!enabled() || full()) {
    if (enabled()) ++stats_.full_rejects;
    return false;
  }
  const std::uint64_t key = its::pid_key(pid, vpn);
  auto [it, fresh] = by_key_.try_emplace(key, next_seq_);
  if (!fresh) return false;  // already pooled: nothing to compress
  by_seq_.emplace(next_seq_, key);
  ++next_seq_;
  ++stats_.stores;
  stats_.peak_pages = std::max(stats_.peak_pages, pooled_pages());
  if (trace_)
    trace_->record(obs::EventKind::kPoolStore, *clock_, pid, vpn,
                   cfg_.compress_cost);
  return true;
}

bool FallbackPool::load(its::Pid pid, its::Vpn vpn) {
  const std::uint64_t key = its::pid_key(pid, vpn);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return false;
  by_seq_.erase(it->second);
  by_key_.erase(it);
  ++stats_.hits;
  if (trace_)
    trace_->record(obs::EventKind::kPoolLoad, *clock_, pid, vpn,
                   cfg_.decompress_cost);
  return true;
}

std::optional<std::pair<its::Pid, its::Vpn>> FallbackPool::pop_drain() {
  if (by_seq_.empty()) return std::nullopt;
  auto it = by_seq_.begin();
  const std::uint64_t key = it->second;
  by_key_.erase(key);
  by_seq_.erase(it);
  ++stats_.drains;
  const its::Pid pid = pid_of_key(key);
  const its::Vpn vpn = vpn_of_key(key);
  if (trace_)
    trace_->record(obs::EventKind::kPoolDrain, *clock_, pid, vpn,
                   its::kPageSize);
  return std::make_pair(pid, vpn);
}

void FallbackPool::drop_pid(its::Pid pid) {
  for (auto it = by_seq_.begin(); it != by_seq_.end();) {
    if (pid_of_key(it->second) == pid) {
      by_key_.erase(it->second);
      it = by_seq_.erase(it);
    } else {
      ++it;
    }
  }
}

void FallbackPool::reset() {
  by_seq_.clear();
  by_key_.clear();
  next_seq_ = 0;
  stats_ = FallbackPoolStats{};
}

}  // namespace its::vm
