// Fault-aware pre-execute engine (paper §3.4.2, Fig. 3).
//
// During a synchronous I/O wait the engine executes the instructions that
// follow the faulting one, under INV-bit poisoning rules, purely to warm
// the (main) cache hierarchy: "the real effects of the pre-execute policy
// are to populate the cache so that high-priority processes have better
// chances to finish earlier" (§3.1).  Pre-executed instructions re-execute
// architecturally when the process resumes — correctness is guaranteed by
// the state-recovery policy (shadow register file checkpoint/restore).
//
// Store flow (Fig. 3a): an invalid store (page still in storage, or bogus
// source data) allocates a pre-execute cache line with INV bytes and sets
// the PTE INV bit; a valid store goes to the store buffer (retiring into
// the pre-execute cache) and fetches its line into the main cache.
// Pre-execute stores never modify the main cache's or memory's data.
//
// Load flow (Fig. 3b): check store buffer → pre-execute cache → main cache
// (consult the PTE INV bit) → memory (fetch and warm: the payoff).
#pragma once

#include "cpu/register_file.h"
#include "cpu/store_buffer.h"
#include "mem/hierarchy.h"
#include "mem/preexec_cache.h"
#include "trace/instr.h"
#include "trace/trace.h"
#include "util/types.h"
#include "vm/mm.h"

#include <cstdint>

namespace its::cpu {

/// How the state-recovery policy detects I/O completion (§3.4.3): "The
/// state-recovery policy is triggered by either polling, where a timer
/// periodically checks I/O completion, or interruption, initiated by DMA
/// upon I/O completion."  Polling quantises the resume point to the poll
/// period; interruption resumes exactly at completion.
enum class RecoveryTrigger : std::uint8_t { kInterrupt, kPolling };

struct PreexecConfig {
  std::uint32_t max_records = 1024;      ///< Lookahead window per episode.
  std::uint32_t max_warm_fills = 64;     ///< MSHR/bandwidth cap per episode.
  its::Duration checkpoint_cost = 5;     ///< ns — hardware shadow-RF checkpoint (§3.4.3).
  its::Duration restore_cost = 5;        ///< ns — state recovery on exit.
  its::Duration issue_cost = 12;         ///< ns per overlapped memory fetch.
  its::Duration skip_cost = 1;           ///< ns per skipped invalid op.
  double ns_per_instr = 1.0;             ///< Pre-execute ALU throughput.
  RecoveryTrigger recovery_trigger = RecoveryTrigger::kInterrupt;
  its::Duration poll_period = 250;       ///< ns between polls (kPolling only).
};

struct EpisodeResult {
  its::Duration used = 0;            ///< CPU ns consumed (stolen from the wait).
  std::uint32_t records = 0;         ///< Records examined.
  std::uint32_t invalid_ops = 0;     ///< Instructions skipped as INV.
  std::uint32_t lines_warmed = 0;    ///< Main-cache lines fetched early.
  std::uint32_t stores_buffered = 0;
  bool ran = false;                  ///< False if the budget was too small.
};

struct PreexecTotals {
  std::uint64_t episodes = 0;
  std::uint64_t records = 0;
  std::uint64_t invalid_ops = 0;
  std::uint64_t lines_warmed = 0;
  its::Duration time_used = 0;
};

class PreexecEngine {
 public:
  PreexecEngine(const PreexecConfig& cfg, mem::CacheHierarchy& caches,
                mem::PreexecCache& px_cache);

  /// Runs one pre-execute episode for the process whose trace/registers/mm
  /// are given.  `fault_idx` is the record that faulted (its destination is
  /// the initial poison); execution starts at `fault_idx + 1` and stops on
  /// budget exhaustion, window exhaustion, fill-cap exhaustion, or trace
  /// end.  The register file is checkpointed on entry and restored on exit
  /// (state-recovery policy); both transitions are charged against the
  /// budget.
  EpisodeResult run(const trace::Trace& trace, std::size_t fault_idx,
                    RegisterFile& rf, vm::MemoryDescriptor& mm,
                    its::Duration budget);

  const PreexecTotals& totals() const { return totals_; }
  const PreexecConfig& config() const { return cfg_; }
  StoreBuffer& store_buffer() { return sb_; }

 private:
  /// Composite pre-execute-cache key for a process virtual address.
  static std::uint64_t px_key(its::Pid pid, its::VirtAddr va) {
    return mem::PreexecCache::key(pid, va);
  }

  void preexec_load(const trace::Instr& in, RegisterFile& rf,
                    vm::MemoryDescriptor& mm, EpisodeResult& ep);
  void preexec_store(const trace::Instr& in, RegisterFile& rf,
                     vm::MemoryDescriptor& mm, EpisodeResult& ep);
  void retire(const SbEntry& e);

  PreexecConfig cfg_;
  mem::CacheHierarchy& caches_;
  mem::PreexecCache& px_;
  StoreBuffer sb_;
  ShadowRegisterFile shadow_;
  PreexecTotals totals_;
};

}  // namespace its::cpu
