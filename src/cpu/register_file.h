// Architectural register file with INV (invalid) bits, plus the shadow
// register file used by the state-recovery policy.
//
// §3.4.2: "we expand the Register File (RF) by adding additional 'INV' bits
// for each register"; a pre-executed instruction whose source is INV
// cascades the mark to its destination.  §3.4.3: on ITS activation the RF
// state (program counter, stack pointer, branch history, return-address
// stack) is checkpointed to a shadow register file and restored before ITS
// terminates.  Values themselves are not tracked — the simulator is
// trace-driven — but validity is, which is what the pre-execute policy
// needs for correctness.
#pragma once

#include "trace/instr.h"

#include <cstdint>

namespace its::cpu {

class RegisterFile {
 public:
  /// Register 0 is the hard-wired zero register: always valid.
  bool is_invalid(std::uint8_t reg) const {
    return reg != 0 && (inv_ & (1ull << reg)) != 0;
  }

  void set_invalid(std::uint8_t reg, bool inv) {
    if (reg == 0) return;
    if (inv)
      inv_ |= 1ull << reg;
    else
      inv_ &= ~(1ull << reg);
  }

  /// Cascades invalidity: dst becomes INV iff any source is INV.
  void propagate(std::uint8_t dst, std::uint8_t src1, std::uint8_t src2) {
    set_invalid(dst, is_invalid(src1) || is_invalid(src2));
  }

  std::uint64_t inv_mask() const { return inv_; }
  void clear_all() { inv_ = 0; }
  unsigned invalid_count() const {
    return static_cast<unsigned>(__builtin_popcountll(inv_));
  }

 private:
  std::uint64_t inv_ = 0;
};

static_assert(its::trace::kNumRegs <= 64, "INV mask is 64 bits wide");

/// State-recovery policy checkpoint target (§3.4.3).  Checkpoint/restore
/// costs are charged by the pre-execute engine's cost model.
class ShadowRegisterFile {
 public:
  void checkpoint(const RegisterFile& rf) {
    saved_ = rf.inv_mask();
    valid_ = true;
  }

  /// Restores the RF to its checkpointed state; the checkpoint stays valid
  /// (it can be restored again, e.g. nested polling checks).
  void restore(RegisterFile& rf) const {
    rf.clear_all();
    for (unsigned r = 1; r < 64; ++r)
      if (saved_ & (1ull << r)) rf.set_invalid(static_cast<std::uint8_t>(r), true);
  }

  bool has_checkpoint() const { return valid_; }

 private:
  std::uint64_t saved_ = 0;
  bool valid_ = false;
};

}  // namespace its::cpu
