#include "cpu/store_buffer.h"

#include "util/types.h"

namespace its::cpu {

std::optional<SbEntry> StoreBuffer::push(const SbEntry& e) {
  std::optional<SbEntry> retired;
  if (entries_.size() >= capacity_) {
    retired = entries_.front();
    entries_.pop_front();
  }
  entries_.push_back(e);
  return retired;
}

SbHit StoreBuffer::lookup(its::VirtAddr addr, std::uint16_t size) const {
  // Scan youngest → oldest so the most recent overlapping store forwards.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (overlaps(*it, addr, size)) {
      bool covers = it->addr <= addr && addr + size <= it->addr + it->size;
      return {true, it->invalid, covers};
    }
  }
  return {};
}

std::vector<SbEntry> StoreBuffer::drain() {
  std::vector<SbEntry> out(entries_.begin(), entries_.end());
  entries_.clear();
  return out;
}

}  // namespace its::cpu
