#include "cpu/preexec_engine.h"

#include "cpu/register_file.h"
#include "cpu/store_buffer.h"
#include "mem/hierarchy.h"
#include "mem/preexec_cache.h"
#include "trace/instr.h"
#include "trace/trace.h"
#include "util/types.h"
#include "vm/mm.h"
#include "vm/pte.h"

#include <algorithm>

namespace its::cpu {

using trace::Instr;
using trace::Op;

PreexecEngine::PreexecEngine(const PreexecConfig& cfg, mem::CacheHierarchy& caches,
                             mem::PreexecCache& px_cache)
    : cfg_(cfg), caches_(caches), px_(px_cache) {}

void PreexecEngine::retire(const SbEntry& e) {
  px_.store(e.addr, e.size, e.invalid);
}

void PreexecEngine::preexec_load(const Instr& in, RegisterFile& rf,
                                 vm::MemoryDescriptor& mm, EpisodeResult& ep) {
  // Address registers poisoned ⇒ the address itself is bogus: skip entirely.
  if (rf.is_invalid(in.src1) || rf.is_invalid(in.src2)) {
    rf.set_invalid(in.dst, true);
    ++ep.invalid_ops;
    ep.used += cfg_.skip_cost;
    return;
  }

  const std::uint64_t key = px_key(mm.pid(), in.addr);

  // Fig. 3b (1): forward from in-flight pre-execute stores.  A store that
  // only partially covers the load cannot vouch for the remaining bytes —
  // conservative poison.
  SbHit sb = sb_.lookup(key, in.size);
  if (sb.found) {
    bool invalid = sb.invalid || !sb.complete;
    rf.set_invalid(in.dst, invalid);
    if (invalid) ++ep.invalid_ops;
    ep.used += cfg_.skip_cost;
    return;
  }

  // Fig. 3b (2): retired pre-execute stores live in the pre-execute cache.
  // A partial hit (some requested bytes never written) cannot vouch for the
  // missing bytes — treat the value as unknown (conservative poison).
  mem::PxLookup px = px_.lookup(key, in.size);
  if (px.found) {
    bool invalid = px.any_invalid || !px.complete;
    rf.set_invalid(in.dst, invalid);
    if (invalid) ++ep.invalid_ops;
    ep.used += cfg_.skip_cost;
    return;
  }

  // Fig. 3b (0): data still in the storage device ⇒ invalid, no nested I/O.
  vm::Pte* pte = mm.pte(its::vpn_of(in.addr));
  if (pte == nullptr || !pte->present()) {
    rf.set_invalid(in.dst, true);
    ++ep.invalid_ops;
    ep.used += cfg_.skip_cost;
    return;
  }

  // Fig. 3b (3): in DRAM/cache — the PTE INV bit arbitrates validity.
  if (pte->inv()) {
    rf.set_invalid(in.dst, true);
    ++ep.invalid_ops;
    ep.used += cfg_.skip_cost;
    return;
  }

  its::PhysAddr phys = (pte->pfn() << its::kPageShift) | (in.addr & its::kPageOffsetMask);
  // Clamp the warm to this page: the next virtual page maps to an
  // unrelated frame (or none at all).
  auto in_page = static_cast<unsigned>(
      std::min<std::uint64_t>(in.size, its::kPageSize - (in.addr & its::kPageOffsetMask)));
  rf.set_invalid(in.dst, false);
  if (caches_.probe(phys)) {
    ep.used += cfg_.skip_cost;  // already cached: nothing to gain
    return;
  }
  // Fig. 3b (4): only in memory ⇒ fetch early.  This fill is the payoff —
  // the architectural re-execution will hit.  Fetches overlap (runahead
  // MLP), so only the issue cost is charged.
  caches_.warm(phys, in_page);
  ++ep.lines_warmed;
  ep.used += cfg_.issue_cost;
}

void PreexecEngine::preexec_store(const Instr& in, RegisterFile& rf,
                                  vm::MemoryDescriptor& mm, EpisodeResult& ep) {
  // Store address base poisoned ⇒ target unknown: skip, nothing allocated.
  if (rf.is_invalid(in.src2)) {
    ++ep.invalid_ops;
    ep.used += cfg_.skip_cost;
    return;
  }
  const bool data_invalid = rf.is_invalid(in.src1);
  const std::uint64_t key = px_key(mm.pid(), in.addr);
  vm::Pte* pte = mm.pte(its::vpn_of(in.addr));

  // Fig. 3a (0): data page still in the storage device ⇒ the store is
  // invalid; allocate a pre-execute cache line with INV bytes and set the
  // PTE INV bit.
  if (pte == nullptr || !pte->present()) {
    px_.store(key, in.size, /*invalid=*/true);
    if (pte != nullptr) pte->set_inv(true);
    ++ep.invalid_ops;
    ep.used += cfg_.skip_cost;
    return;
  }

  // Fig. 3a (1): page in DRAM/cache — write the result into the store
  // buffer, INV bit tracking the data's status.
  if (auto retired = sb_.push({key, in.size, data_invalid})) retire(*retired);
  ++ep.stores_buffered;
  if (data_invalid) {
    pte->set_inv(true);
    ++ep.invalid_ops;
  }

  // Fig. 3a (2): if the line is in memory but not in the cache, fetch it
  // (clamped to this page — the next page maps elsewhere).
  its::PhysAddr phys = (pte->pfn() << its::kPageShift) | (in.addr & its::kPageOffsetMask);
  auto in_page = static_cast<unsigned>(
      std::min<std::uint64_t>(in.size, its::kPageSize - (in.addr & its::kPageOffsetMask)));
  if (!caches_.probe(phys)) {
    caches_.warm(phys, in_page);
    ++ep.lines_warmed;
    ep.used += cfg_.issue_cost;
  } else {
    ep.used += cfg_.skip_cost;
  }
}

EpisodeResult PreexecEngine::run(const trace::Trace& trace, std::size_t fault_idx,
                                 RegisterFile& rf, vm::MemoryDescriptor& mm,
                                 its::Duration budget) {
  EpisodeResult ep;
  const its::Duration overhead = cfg_.checkpoint_cost + cfg_.restore_cost;
  if (budget <= overhead + cfg_.skip_cost) return ep;  // not worth entering

  ep.ran = true;
  ep.used = cfg_.checkpoint_cost;
  shadow_.checkpoint(rf);
  sb_.clear();

  // The faulting instruction's destination holds bogus data until the
  // swap-in (or file read) completes — it is the episode's initial poison.
  if (fault_idx < trace.size() && (trace[fault_idx].op == Op::kLoad ||
                                   trace[fault_idx].op == Op::kFileRead))
    rf.set_invalid(trace[fault_idx].dst, true);

  const its::Duration usable = budget - cfg_.restore_cost;
  std::size_t idx = fault_idx + 1;
  while (idx < trace.size() && ep.records < cfg_.max_records &&
         ep.lines_warmed < cfg_.max_warm_fills && ep.used < usable) {
    const Instr& in = trace[idx++];
    ++ep.records;
    switch (in.op) {
      case Op::kCompute: {
        auto cost = static_cast<its::Duration>(
            static_cast<double>(in.repeat) * cfg_.ns_per_instr);
        cost = std::max<its::Duration>(cost, 1);
        ep.used += std::min(cost, usable - ep.used);
        rf.propagate(in.dst, in.src1, in.src2);
        break;
      }
      case Op::kLoad:
        preexec_load(in, rf, mm, ep);
        break;
      case Op::kStore:
        preexec_store(in, rf, mm, ep);
        break;
      case Op::kFileRead:
        // System calls cannot be pre-executed; the result is unknown.
        rf.set_invalid(in.dst, true);
        ++ep.invalid_ops;
        ep.used += cfg_.skip_cost;
        break;
      case Op::kFileWrite:
        ++ep.invalid_ops;  // side effect suppressed
        ep.used += cfg_.skip_cost;
        break;
    }
  }

  // Episode end: retire the store buffer into the pre-execute cache, then
  // run the state-recovery policy (restore the shadow register file).
  for (const auto& e : sb_.drain()) retire(e);
  shadow_.restore(rf);
  ep.used += cfg_.restore_cost;
  if (ep.used > budget) ep.used = budget;  // clamp final partial op

  ++totals_.episodes;
  totals_.records += ep.records;
  totals_.invalid_ops += ep.invalid_ops;
  totals_.lines_warmed += ep.lines_warmed;
  totals_.time_used += ep.used;
  return ep;
}

}  // namespace its::cpu
