// Store buffer with forwarding, used during pre-execution.
//
// Pre-execute stores park their (validity-tagged) results here; when an
// entry retires (FIFO overflow or episode end) it moves into the
// pre-execute cache so later pre-execute loads "dependent on these retired
// store instructions can be verified by checking the pre-execute cache"
// (§3.4.2).  Entries are keyed in the same (pid, vaddr) key space as the
// pre-execute cache.
#pragma once

#include "util/types.h"

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace its::cpu {

struct SbEntry {
  its::VirtAddr addr = 0;  ///< Composite (pid, vaddr) key of the first byte.
  std::uint16_t size = 0;
  bool invalid = false;  ///< Data written was bogus (INV source / fault).
};

struct SbHit {
  bool found = false;
  bool invalid = false;   ///< Forwarded data was bogus.
  bool complete = false;  ///< The youngest overlapping store covers the whole range.
};

class StoreBuffer {
 public:
  explicit StoreBuffer(std::size_t capacity = 56) : capacity_(capacity) {}

  /// Appends a store; if the buffer is full the oldest entry retires and is
  /// returned (the caller forwards it to the pre-execute cache).
  std::optional<SbEntry> push(const SbEntry& e);

  /// Youngest-entry-wins forwarding lookup over [addr, addr+size).
  SbHit lookup(its::VirtAddr addr, std::uint16_t size) const;

  /// Retires every entry (episode end); buffer becomes empty.
  std::vector<SbEntry> drain();

  void clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return entries_.empty(); }

 private:
  static bool overlaps(const SbEntry& e, its::VirtAddr addr,
                       std::uint16_t size) {
    return e.addr < addr + size && addr < e.addr + e.size;
  }

  std::size_t capacity_;
  std::deque<SbEntry> entries_;  // front = oldest
};

}  // namespace its::cpu
