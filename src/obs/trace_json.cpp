#include "obs/trace_json.h"

#include "obs/event_trace.h"
#include "util/types.h"

#include <cstdint>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_set>

namespace its::obs {

namespace {

/// Microseconds with nanosecond precision (Chrome's ts unit is µs).
std::string us(its::SimTime ns) {
  std::ostringstream ss;
  ss << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
  return ss.str();
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;  // strip control chars
    out += c;
  }
  return out;
}

/// The slice name a duration/complete event renders under.  Exhaustive on
/// purpose (no default): -Wswitch and its_lint's reg-chrome-map rule both
/// force a decision here when EventKind grows.
std::string_view slice_name(EventKind k) {
  switch (k) {
    case EventKind::kFaultBegin:
    case EventKind::kFaultEnd:
      return "fault";
    case EventKind::kPreexecBegin:
    case EventKind::kPreexecEnd:
      return "preexec";
    case EventKind::kFileWait:
    case EventKind::kPrefetchIssue:
    case EventKind::kPrefetchHit:
    case EventKind::kCtxSwitch:
    case EventKind::kAsyncConvert:
    case EventKind::kDmaComplete:
    case EventKind::kSchedPick:
    case EventKind::kSchedBlock:
    case EventKind::kSchedWake:
    case EventKind::kEvict:
    case EventKind::kSwapIn:
    case EventKind::kSwapOut:
    case EventKind::kPrefetchWalk:
    case EventKind::kIoError:
    case EventKind::kIoRetry:
    case EventKind::kDeadlineAbort:
    case EventKind::kModeFallback:
    case EventKind::kHealthTransition:
    case EventKind::kPoolStore:
    case EventKind::kPoolLoad:
    case EventKind::kPoolDrain:
    case EventKind::kRequestArrive:
    case EventKind::kRequestAdmit:
    case EventKind::kRequestDone:
    case EventKind::kSloViolation:
      return kind_name(k);
  }
  return kind_name(k);
}

/// Chrome trace_event phase for each kind: paired B/E slices for the fault
/// and pre-execute windows, complete (X) slices for windows recorded at
/// their end with a duration in `b`, and thread-scoped instants for the
/// point-in-time markers.
enum class Phase : std::uint8_t { kBegin, kEnd, kComplete, kInstant };

Phase phase_of(EventKind k) {
  switch (k) {
    case EventKind::kFaultBegin:
    case EventKind::kPreexecBegin:
      return Phase::kBegin;
    case EventKind::kFaultEnd:
    case EventKind::kPreexecEnd:
      return Phase::kEnd;
    case EventKind::kCtxSwitch:
    case EventKind::kFileWait:
      return Phase::kComplete;
    case EventKind::kPrefetchIssue:
    case EventKind::kPrefetchHit:
    case EventKind::kAsyncConvert:
    case EventKind::kDmaComplete:
    case EventKind::kSchedPick:
    case EventKind::kSchedBlock:
    case EventKind::kSchedWake:
    case EventKind::kEvict:
    case EventKind::kSwapIn:
    case EventKind::kSwapOut:
    case EventKind::kPrefetchWalk:
    case EventKind::kIoError:
    case EventKind::kIoRetry:
    case EventKind::kDeadlineAbort:
    case EventKind::kModeFallback:
    case EventKind::kHealthTransition:
    case EventKind::kPoolStore:
    case EventKind::kPoolLoad:
    case EventKind::kPoolDrain:
    case EventKind::kRequestArrive:
    case EventKind::kRequestAdmit:
    case EventKind::kSloViolation:
      return Phase::kInstant;
    case EventKind::kRequestDone:
      // Retirement carries the whole request latency in `b`; render it as
      // a complete slice spanning arrival → done on the process track.
      return Phase::kComplete;
  }
  return Phase::kInstant;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const EventTrace& trace,
                        const ExportOptions& opts) {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Track-name metadata: one per pid seen, plus the device track.
  std::unordered_set<its::Pid> named;
  auto name_track = [&](its::Pid pid) {
    if (!named.insert(pid).second) return;
    std::string label;
    if (pid == kDevicePid)
      label = "dma";
    else if (pid < opts.process_names.size())
      label = opts.process_names[pid];
    else
      label = "pid " + std::to_string(pid);
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << pid << ",\"args\":{\"name\":\"" << escape(label)
       << "\"}}";
  };

  for (const Event& e : trace.events()) {
    name_track(e.pid);
    sep();
    os << "{\"name\":\"" << slice_name(e.kind) << "\",";
    switch (phase_of(e.kind)) {
      case Phase::kBegin:
        os << "\"ph\":\"B\",\"ts\":" << us(e.ts);
        break;
      case Phase::kEnd:
        os << "\"ph\":\"E\",\"ts\":" << us(e.ts);
        break;
      case Phase::kComplete:
        // The recorded stamp is the window's end; draw the slice over it.
        os << "\"ph\":\"X\",\"ts\":" << us(e.ts >= e.b ? e.ts - e.b : 0)
           << ",\"dur\":" << us(e.b);
        break;
      case Phase::kInstant:
        os << "\"ph\":\"i\",\"s\":\"t\",\"ts\":" << us(e.ts);
        break;
    }
    os << ",\"pid\":" << e.pid << ",\"tid\":" << e.pid << ",\"args\":{\"a\":"
       << e.a << ",\"b\":" << e.b << ",\"c\":" << e.c << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ns\"";
  if (!opts.policy.empty())
    os << ",\"otherData\":{\"policy\":\"" << escape(opts.policy) << "\"}";
  os << "}\n";
}

void save_chrome_trace(const std::string& path, const EventTrace& trace,
                       const ExportOptions& opts) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("trace_json: cannot write " + path);
  write_chrome_trace(f, trace, opts);
  if (!f) throw std::runtime_error("trace_json: write failed for " + path);
}

namespace {

/// Extracts the value substring after `"key":` inside one JSON object.
std::string_view field_of(std::string_view obj, std::string_view key) {
  std::string needle = "\"" + std::string(key) + "\":";
  std::size_t at = obj.find(needle);
  if (at == std::string_view::npos) return {};
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  if (end < obj.size() && obj[end] == '"') {  // string value
    ++begin;
    end = begin;
    while (end < obj.size() && obj[end] != '"') {
      if (obj[end] == '\\') ++end;
      ++end;
    }
    return obj.substr(begin, end - begin);
  }
  while (end < obj.size() && obj[end] != ',' && obj[end] != '}' &&
         obj[end] != ']')
    ++end;
  return obj.substr(begin, end - begin);
}

}  // namespace

std::vector<ParsedEvent> parse_chrome_trace(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();

  const std::size_t array_at = text.find("\"traceEvents\"");
  if (array_at == std::string::npos)
    throw std::runtime_error("parse_chrome_trace: no traceEvents array");

  std::vector<ParsedEvent> out;
  std::size_t i = text.find('[', array_at);
  if (i == std::string::npos)
    throw std::runtime_error("parse_chrome_trace: malformed traceEvents");
  int array_depth = 0;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c == '[') {
      ++array_depth;
    } else if (c == ']') {
      if (--array_depth == 0) break;
    } else if (c == '{') {
      // One event object: scan to its matching brace (args may nest once).
      int depth = 0;
      std::size_t start = i;
      for (; i < text.size(); ++i) {
        if (text[i] == '{') ++depth;
        if (text[i] == '}' && --depth == 0) break;
      }
      if (depth != 0)
        throw std::runtime_error("parse_chrome_trace: unterminated object");
      std::string_view obj(text.data() + start, i - start + 1);
      ParsedEvent e;
      e.name = std::string(field_of(obj, "name"));
      e.ph = std::string(field_of(obj, "ph"));
      std::string_view ts = field_of(obj, "ts");
      if (!ts.empty()) e.ts_us = std::stod(std::string(ts));
      std::string_view pid = field_of(obj, "pid");
      if (!pid.empty())
        e.pid = static_cast<its::Pid>(std::stoull(std::string(pid)));
      out.push_back(std::move(e));
    }
  }
  return out;
}

}  // namespace its::obs
