#include "obs/invariant_checker.h"

#include "obs/event_trace.h"
#include "util/types.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>
#include <vector>

namespace its::obs {

namespace {

/// printf-style convenience for violation strings.
template <typename... Args>
std::string fmt(const char* f, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, f, args...);
  return std::string(buf);
}

struct OpenFault {
  bool open = false;
  its::Vpn vpn = 0;
  its::SimTime begin = 0;
};

/// Which timeline an event lives on — decides which ordering invariants
/// apply to it.  Exhaustive on purpose (no default): adding an EventKind
/// without deciding its timeline is exactly the drift -Wswitch and
/// its_lint's reg-invariant rule exist to catch.
enum class Timeline : std::uint8_t {
  kProcess,           ///< per-pid append order + makespan bound
  kDeviceCompletion,  ///< stamped with the (future) completion; ts >= issue
  kDeviceRetry,       ///< future detection/repost stamp; exempt from both
};

Timeline timeline_of(EventKind k) {
  switch (k) {
    case EventKind::kDmaComplete:
      return Timeline::kDeviceCompletion;
    case EventKind::kIoError:
    case EventKind::kIoRetry:
      // Exempt from per-pid append order and the makespan bound (a
      // prefetched read may still be erroring out after the last process
      // finished).
      return Timeline::kDeviceRetry;
    case EventKind::kFaultBegin:
    case EventKind::kFaultEnd:
    case EventKind::kFileWait:
    case EventKind::kPrefetchIssue:
    case EventKind::kPrefetchHit:
    case EventKind::kPreexecBegin:
    case EventKind::kPreexecEnd:
    case EventKind::kCtxSwitch:
    case EventKind::kAsyncConvert:
    case EventKind::kSchedPick:
    case EventKind::kSchedBlock:
    case EventKind::kSchedWake:
    case EventKind::kEvict:
    case EventKind::kSwapIn:
    case EventKind::kSwapOut:
    case EventKind::kPrefetchWalk:
    case EventKind::kDeadlineAbort:
    case EventKind::kModeFallback:
    case EventKind::kHealthTransition:
    case EventKind::kPoolStore:
    case EventKind::kPoolLoad:
    case EventKind::kPoolDrain:
    case EventKind::kRequestArrive:
    case EventKind::kRequestAdmit:
    case EventKind::kRequestDone:
    case EventKind::kSloViolation:
      return Timeline::kProcess;
  }
  return Timeline::kProcess;
}

/// Serving-lifecycle progress of one request id (arrive → admit → done).
/// A request that arrives and never admits is a reject; a request that
/// admits must retire before the trace ends.
struct ReqState {
  bool arrived = false;
  bool admitted = false;
  bool done = false;
  its::SimTime arrive_ts = 0;
  std::uint64_t tier = 0;
};

/// Legal edges of the device-health FSM (storage/device_health.h):
/// healthy→degraded, degraded→{offline,healthy}, offline→recovering,
/// recovering→{healthy,degraded}.  States are the DeviceHealth values
/// 0=healthy 1=degraded 2=offline 3=recovering carried in the
/// kHealthTransition operands.
bool legal_health_edge(std::uint64_t from, std::uint64_t to) {
  switch (from) {
    case 0: return to == 1;
    case 1: return to == 2 || to == 0;
    case 2: return to == 3;
    case 3: return to == 0 || to == 1;
  }
  return false;
}

const char* health_state_name(std::uint64_t s) {
  switch (s) {
    case 0: return "healthy";
    case 1: return "degraded";
    case 2: return "offline";
    case 3: return "recovering";
  }
  return "?";
}

}  // namespace

std::string CheckResult::summary() const {
  if (violations.empty()) return "ok";
  std::string s;
  for (const auto& v : violations) {
    if (!s.empty()) s += '\n';
    s += v;
  }
  return s;
}

CheckResult check_invariants(const EventTrace& trace, const RunTotals& m,
                             const CheckConfig& cfg) {
  CheckResult r;
  auto fail = [&](std::string msg) {
    // Cap the report: one broken invariant often floods every later event.
    if (r.violations.size() < 64) r.violations.push_back(std::move(msg));
  };

  if (trace.dropped() != 0) {
    fail(fmt("trace truncated: %" PRIu64 " events dropped by the buffer cap",
             trace.dropped()));
    return r;
  }

  std::unordered_map<its::Pid, its::SimTime> last_ts;
  std::unordered_map<its::Pid, OpenFault> open;
  // Retry/fallback pairing: the recorder emits kIoRetry immediately after
  // its kIoError, and kModeFallback immediately after its kDeadlineAbort.
  bool want_retry = false;
  Event pending_error{};
  bool want_fallback = false;
  Event pending_abort{};
  // Serving lifecycle: each request id walks arrive → admit → done, and a
  // kSloViolation must directly follow the kRequestDone it indicts.
  std::unordered_map<std::uint64_t, ReqState> requests;
  bool prev_was_done = false;
  Event pending_done{};
  // Health-FSM chain state: the device starts healthy at t = 0; every
  // kHealthTransition must continue from the previous state along a legal
  // edge.  Time-in-state is integrated alongside for the reconciliation
  // in section (6).
  std::uint64_t health_state = 0;
  its::SimTime health_ts = 0;
  its::Duration health_time[4] = {0, 0, 0, 0};
  std::uint64_t degraded_faults = 0;
  std::size_t idx = 0;
  for (const Event& e : trace.events()) {
    // (0) the byte on the wire must name a real kind (a corrupted or
    // version-skewed trace otherwise silently falls into the exemption
    // branches below).
    if (static_cast<std::size_t>(e.kind) >= kNumEventKinds) {
      fail(fmt("event %zu: unknown EventKind %u",
               idx, static_cast<unsigned>(e.kind)));
      ++idx;
      continue;
    }

    // (1) per-pid time ordering, in recording order.
    switch (timeline_of(e.kind)) {
      case Timeline::kDeviceCompletion:
        if (e.ts < e.b)
          fail(fmt("event %zu: DMA completion at %" PRIu64
                   " precedes its issue at %" PRIu64,
                   idx, e.ts, e.b));
        break;
      case Timeline::kDeviceRetry:
        break;
      case Timeline::kProcess: {
        auto [it, fresh] = last_ts.try_emplace(e.pid, e.ts);
        if (!fresh && e.ts < it->second)
          fail(fmt("event %zu (%s, pid %u): time %" PRIu64
                   " precedes the pid's previous event at %" PRIu64,
                   idx, std::string(kind_name(e.kind)).c_str(), e.pid, e.ts,
                   it->second));
        else
          it->second = e.ts;
        if (e.ts > m.makespan)
          fail(fmt("event %zu (%s, pid %u): time %" PRIu64
                   " is beyond the makespan %" PRIu64,
                   idx, std::string(kind_name(e.kind)).c_str(), e.pid, e.ts,
                   m.makespan));
        break;
      }
    }

    // (1b) every retry follows its error: kIoRetry must directly follow a
    // kIoError with the same tag and attempt, reposted exactly `backoff`
    // after detection.  Same-shape pairing for abort → fallback.
    if (want_retry) {
      want_retry = false;
      if (e.kind != EventKind::kIoRetry)
        fail(fmt("event %zu: io_error on tag %#" PRIx64
                 " (attempt %" PRIu64 ") not followed by its io_retry",
                 idx, pending_error.a, pending_error.b));
      else if (e.a != pending_error.a || e.b != pending_error.b ||
               e.ts != pending_error.ts + e.c)
        fail(fmt("event %zu: io_retry (tag %#" PRIx64 ", attempt %" PRIu64
                 ", ts %" PRIu64 ") does not match its io_error (tag %#"
                 PRIx64 ", attempt %" PRIu64 ", ts %" PRIu64 " + backoff %"
                 PRIu64 ")",
                 idx, e.a, e.b, e.ts, pending_error.a, pending_error.b,
                 pending_error.ts, e.c));
    } else if (e.kind == EventKind::kIoRetry) {
      fail(fmt("event %zu: io_retry on tag %#" PRIx64
               " without a preceding io_error",
               idx, e.a));
    }
    if (e.kind == EventKind::kIoError) {
      want_retry = true;
      pending_error = e;
    }

    if (want_fallback) {
      want_fallback = false;
      if (e.kind != EventKind::kModeFallback)
        fail(fmt("event %zu: deadline_abort (pid %u, vpn %#" PRIx64
                 ") not followed by its mode_fallback",
                 idx, pending_abort.pid, pending_abort.a));
      else if (e.pid != pending_abort.pid || e.a != pending_abort.a ||
               e.ts != pending_abort.ts)
        fail(fmt("event %zu: mode_fallback (pid %u, vpn %#" PRIx64
                 ", ts %" PRIu64 ") does not match its deadline_abort "
                 "(pid %u, vpn %#" PRIx64 ", ts %" PRIu64 ")",
                 idx, e.pid, e.a, e.ts, pending_abort.pid, pending_abort.a,
                 pending_abort.ts));
    } else if (e.kind == EventKind::kModeFallback) {
      fail(fmt("event %zu: mode_fallback on vpn %#" PRIx64
               " without a preceding deadline_abort",
               idx, e.a));
    }
    if (e.kind == EventKind::kDeadlineAbort) {
      want_fallback = true;
      pending_abort = e;
      if (e.c > e.b)
        fail(fmt("event %zu: deadline abort on vpn %#" PRIx64 " stole %"
                 PRIu64 " ns from a %" PRIu64 " ns window",
                 idx, e.a, e.c, e.b));
    }

    // (1c) serving lifecycle.  Request ids walk arrive → admit → done in
    // order; the Done operand `b` must reconcile the event timestamps
    // exactly (latency = done.ts − arrive.ts); an over-SLO retirement is
    // indicted by a kSloViolation that directly follows its kRequestDone
    // with the same id and latency.
    switch (e.kind) {
      case EventKind::kRequestArrive: {
        ReqState& q = requests[e.a];
        if (q.arrived)
          fail(fmt("event %zu: request %" PRIu64 " arrived twice", idx, e.a));
        q.arrived = true;
        q.arrive_ts = e.ts;
        q.tier = e.b;
        break;
      }
      case EventKind::kRequestAdmit: {
        ReqState& q = requests[e.a];
        if (!q.arrived)
          fail(fmt("event %zu: request %" PRIu64 " admitted before arriving",
                   idx, e.a));
        else if (q.admitted)
          fail(fmt("event %zu: request %" PRIu64 " admitted twice", idx, e.a));
        else if (e.b != q.tier)
          fail(fmt("event %zu: request %" PRIu64 " admitted into tier %" PRIu64
                   " but arrived in tier %" PRIu64,
                   idx, e.a, e.b, q.tier));
        else if (e.ts < q.arrive_ts)
          fail(fmt("event %zu: request %" PRIu64 " admitted at %" PRIu64
                   " before its arrival at %" PRIu64,
                   idx, e.a, e.ts, q.arrive_ts));
        q.admitted = true;
        break;
      }
      case EventKind::kRequestDone: {
        ReqState& q = requests[e.a];
        if (!q.admitted)
          fail(fmt("event %zu: request %" PRIu64 " retired without admission",
                   idx, e.a));
        else if (q.done)
          fail(fmt("event %zu: request %" PRIu64 " retired twice", idx, e.a));
        else if (e.c != q.tier)
          fail(fmt("event %zu: request %" PRIu64 " retired in tier %" PRIu64
                   " but arrived in tier %" PRIu64,
                   idx, e.a, e.c, q.tier));
        else if (e.ts < q.arrive_ts || e.b != e.ts - q.arrive_ts)
          fail(fmt("event %zu: request %" PRIu64 " latency %" PRIu64
                   " does not reconcile done %" PRIu64 " - arrive %" PRIu64,
                   idx, e.a, e.b, e.ts, q.arrive_ts));
        q.done = true;
        break;
      }
      case EventKind::kSloViolation:
        if (!prev_was_done || e.a != pending_done.a || e.b != pending_done.b)
          fail(fmt("event %zu: slo_violation for request %" PRIu64
                   " does not follow its request_done",
                   idx, e.a));
        else if (e.b <= e.c)
          fail(fmt("event %zu: slo_violation on request %" PRIu64
                   " with latency %" PRIu64 " within the %" PRIu64 " ns SLO",
                   idx, e.a, e.b, e.c));
        break;
      default:
        break;
    }
    prev_was_done = e.kind == EventKind::kRequestDone;
    if (prev_was_done) pending_done = e;

    // (2) fault window matching.
    switch (e.kind) {
      case EventKind::kFaultBegin: {
        OpenFault& f = open[e.pid];
        if (f.open)
          fail(fmt("event %zu: pid %u opens a fault on vpn %#" PRIx64
                   " while vpn %#" PRIx64 " is still open",
                   idx, e.pid, e.a, f.vpn));
        f = {true, e.a, e.ts};
        if (e.b != 0) ++degraded_faults;  // b = device health at entry
        break;
      }
      case EventKind::kHealthTransition: {
        if (e.a != health_state)
          fail(fmt("event %zu: health transition starts from %s but the "
                   "device was %s",
                   idx, health_state_name(e.a),
                   health_state_name(health_state)));
        if (e.a == e.b)
          fail(fmt("event %zu: health self-transition in state %s",
                   idx, health_state_name(e.a)));
        else if (!legal_health_edge(e.a, e.b))
          fail(fmt("event %zu: illegal health edge %s -> %s",
                   idx, health_state_name(e.a), health_state_name(e.b)));
        if (e.ts >= health_ts && health_state < 4)
          health_time[health_state] += e.ts - health_ts;
        health_state = e.b < 4 ? e.b : health_state;
        health_ts = e.ts;
        break;
      }
      case EventKind::kFaultEnd: {
        OpenFault& f = open[e.pid];
        if (!f.open)
          fail(fmt("event %zu: pid %u ends a fault on vpn %#" PRIx64
                   " that never began",
                   idx, e.pid, e.a));
        else if (f.vpn != e.a)
          fail(fmt("event %zu: pid %u ends fault vpn %#" PRIx64
                   " but vpn %#" PRIx64 " is the open one",
                   idx, e.pid, e.a, f.vpn));
        f.open = false;
        // (3) stolen ⊆ wait window.
        if (e.c > e.b)
          fail(fmt("event %zu: fault on vpn %#" PRIx64 " stole %" PRIu64
                   " ns from a %" PRIu64 " ns busy-wait window",
                   idx, e.a, e.c, e.b));
        break;
      }
      case EventKind::kFileWait:
        if (e.c > e.b)
          fail(fmt("event %zu: file wait on key %#" PRIx64 " stole %" PRIu64
                   " ns from a %" PRIu64 " ns window",
                   idx, e.a, e.c, e.b));
        break;
      default:
        break;
    }
    ++idx;
  }
  if (want_retry)
    fail(fmt("trace ends with an io_error on tag %#" PRIx64
             " (attempt %" PRIu64 ") that was never retried",
             pending_error.a, pending_error.b));
  if (want_fallback)
    fail(fmt("trace ends with a deadline_abort (pid %u, vpn %#" PRIx64
             ") that never fell back",
             pending_abort.pid, pending_abort.a));
  // Report still-open faults in pid order: `open` is hashed, and the
  // violation list must not depend on the standard library's bucket layout.
  std::vector<its::Pid> open_pids;
  open_pids.reserve(open.size());
  // its-lint: allow(det-unordered-iter): key collection for the sort below
  for (const auto& kv : open)
    if (kv.second.open) open_pids.push_back(kv.first);
  std::sort(open_pids.begin(), open_pids.end());
  for (its::Pid pid : open_pids) {
    const OpenFault& f = open[pid];
    fail(fmt("pid %u: fault on vpn %#" PRIx64 " opened at %" PRIu64
             " never ended",
             pid, f.vpn, f.begin));
  }
  // Every admitted request must retire before the trace ends; an arrival
  // that never admits is a reject, so arrivals = admits + rejects holds by
  // construction once this check passes.  Sorted for deterministic output.
  std::vector<std::uint64_t> dangling;
  // its-lint: allow(det-unordered-iter): key collection for the sort below
  for (const auto& kv : requests)
    if (kv.second.admitted && !kv.second.done) dangling.push_back(kv.first);
  std::sort(dangling.begin(), dangling.end());
  for (std::uint64_t id : dangling)
    fail(fmt("request %" PRIu64 " was admitted but never retired", id));

  // (4) idle breakdown + utilized CPU time reconcile with the makespan.
  // The makespan is a SimTime instant; the run's wall length is the same
  // number only because the simulation clock starts at 0 — make the
  // conversion explicit before comparing it with summed Durations.
  const its::Duration wall = its::duration_between(m.makespan, 0);
  const its::Duration accounted =
      m.cpu_busy + m.busy_wait + m.ctx_switch + m.no_runnable;
  const its::Duration diff =
      accounted > wall ? accounted - wall : wall - accounted;
  if (diff > cfg.granularity)
    fail(fmt("accounting leak: cpu_busy + busy_wait + ctx_switch + "
             "no_runnable = %" PRIu64 " but makespan = %" PRIu64,
             accounted, wall));
  if (m.mem_stall > m.cpu_busy)
    fail(fmt("mem_stall %" PRIu64 " exceeds total busy CPU time %" PRIu64,
             m.mem_stall, m.cpu_busy));

  // (5) event-derived totals == SimMetrics counters.
  auto expect_count = [&](EventKind k, std::uint64_t want, const char* field) {
    std::uint64_t got = trace.count(k);
    if (got != want)
      fail(fmt("%s: %" PRIu64 " %s events vs metrics %" PRIu64, field, got,
               std::string(kind_name(k)).c_str(), want));
  };
  expect_count(EventKind::kFaultBegin, m.major_faults, "major_faults");
  expect_count(EventKind::kFaultEnd, m.major_faults, "major_faults");
  expect_count(EventKind::kPrefetchIssue, m.prefetch_issued, "prefetch_issued");
  expect_count(EventKind::kPrefetchHit, m.prefetch_useful, "prefetch_useful");
  expect_count(EventKind::kPreexecBegin, m.preexec_episodes, "preexec_episodes");
  expect_count(EventKind::kPreexecEnd, m.preexec_episodes, "preexec_episodes");
  expect_count(EventKind::kAsyncConvert, m.async_switches, "async_switches");
  expect_count(EventKind::kEvict, m.evictions, "evictions");
  expect_count(EventKind::kIoError, m.io_errors, "io_errors");
  expect_count(EventKind::kIoRetry, m.io_retries, "io_retries");
  expect_count(EventKind::kDeadlineAbort, m.deadline_aborts, "deadline_aborts");
  expect_count(EventKind::kModeFallback, m.mode_fallbacks, "mode_fallbacks");

  const std::uint64_t degraded = trace.sum_b(EventKind::kModeFallback);
  if (degraded != m.degraded_time)
    fail(fmt("degraded windows from events %" PRIu64 " != degraded_time %" PRIu64,
             degraded, m.degraded_time));

  const std::uint64_t ctx = trace.sum_b(EventKind::kCtxSwitch);
  if (ctx != m.ctx_switch)
    fail(fmt("ctx-switch cost from events %" PRIu64 " != idle.ctx_switch %" PRIu64,
             ctx, m.ctx_switch));

  // An aborted sync wait busy-waits only its window (carried by the
  // kDeadlineAbort operands — the later kFaultEnd closes with b = c = 0).
  const std::uint64_t waits = trace.sum_b(EventKind::kFaultEnd) +
                              trace.sum_b(EventKind::kFileWait) +
                              trace.sum_b(EventKind::kDeadlineAbort);
  if (waits != m.busy_wait)
    fail(fmt("wait windows from events %" PRIu64 " != idle.busy_wait %" PRIu64,
             waits, m.busy_wait));

  const std::uint64_t stolen = trace.sum_c(EventKind::kFaultEnd) +
                               trace.sum_c(EventKind::kFileWait) +
                               trace.sum_c(EventKind::kPreexecEnd) +
                               trace.sum_c(EventKind::kDeadlineAbort);
  if (stolen != m.stolen_time)
    fail(fmt("stolen credits from events %" PRIu64 " != stolen_time %" PRIu64,
             stolen, m.stolen_time));

  // (6) device-outage availability: the four time-in-state counters
  // integrate the kHealthTransition timeline exactly and partition the
  // makespan, and each fallback-pool counter equals its event count.  A
  // run without the outage model (no transitions, all four counters zero)
  // skips the partition check — nothing to reconcile.
  const bool outage_active =
      trace.count(EventKind::kHealthTransition) != 0 ||
      m.health_healthy_time != 0 || m.health_degraded_time != 0 ||
      m.health_offline_time != 0 || m.health_recovering_time != 0;
  if (outage_active) {
    if (m.makespan >= health_ts && health_state < 4)
      health_time[health_state] += m.makespan - health_ts;  // final segment
    const struct {
      const char* name;
      its::Duration want;
      its::Duration got;
    } states[4] = {
        {"health_healthy_time", m.health_healthy_time, health_time[0]},
        {"health_degraded_time", m.health_degraded_time, health_time[1]},
        {"health_offline_time", m.health_offline_time, health_time[2]},
        {"health_recovering_time", m.health_recovering_time, health_time[3]},
    };
    for (const auto& s : states)
      if (s.got != s.want)
        fail(fmt("%s from events %" PRIu64 " != metrics %" PRIu64,
                 s.name, s.got, s.want));
    const its::Duration in_state =
        m.health_healthy_time + m.health_degraded_time +
        m.health_offline_time + m.health_recovering_time;
    const its::Duration span = its::duration_between(m.makespan, 0);
    if (in_state != span)
      fail(fmt("health time-in-state total %" PRIu64
               " does not partition the makespan %" PRIu64,
               in_state, span));
  }
  expect_count(EventKind::kPoolStore, m.pool_stores, "pool_stores");
  expect_count(EventKind::kPoolLoad, m.pool_hits, "pool_hits");
  expect_count(EventKind::kPoolDrain, m.pool_drains, "pool_drains");
  const std::uint64_t drained = trace.sum_b(EventKind::kPoolDrain);
  if (drained != m.drain_bytes)
    fail(fmt("drained bytes from events %" PRIu64 " != drain_bytes %" PRIu64,
             drained, m.drain_bytes));
  if (degraded_faults != m.faults_served_degraded)
    fail(fmt("degraded-entry faults from events %" PRIu64
             " != faults_served_degraded %" PRIu64,
             degraded_faults, m.faults_served_degraded));

  return r;
}

}  // namespace its::obs
