// Timeline well-formedness checker.
//
// Replays a recorded EventTrace against the run's final SimMetrics and
// asserts that the §4.2.1 idle-time accounting actually balances event by
// event, not just in aggregate:
//
//   1. events are time-ordered per pid (DMA completions excepted — they are
//      stamped with the future completion time at issue);
//   2. every kFaultBegin has exactly one matching kFaultEnd (same pid and
//      vpn, no two faults open at once for one pid) and no kFaultEnd closes
//      a fault that never began;
//   3. stolen time never exceeds its enclosing wait window: FaultEnd and
//      FileWait events carry (window, stolen) and stolen ≤ window;
//   4. the idle breakdown reconciles with the makespan:
//      cpu_busy + busy_wait + ctx_switch + no_runnable == makespan (within
//      `granularity`), and mem_stall ⊆ cpu_busy;
//   5. per-counter totals derived from events equal the SimMetrics fields:
//      faults, prefetch issued/useful, pre-execute episodes, async
//      switches, evictions, Σ ctx-switch cost, Σ wait windows == busy_wait,
//      Σ stolen credits == stolen_time.
//
// A trace that dropped events (buffer cap) is rejected outright — a
// truncated timeline cannot vouch for anything.
#pragma once

#include <string>
#include <vector>

#include "core/metrics.h"
#include "obs/event_trace.h"

namespace its::obs {

struct CheckConfig {
  /// Tolerance (ns) for the makespan reconciliation — "one event
  /// granularity".  The simulator's accounting is exact, so the default is
  /// a single nanosecond of slack.
  its::Duration granularity = 1;
};

struct CheckResult {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  /// All violations joined with newlines ("ok" when none).
  std::string summary() const;
};

/// Replays `trace` and cross-checks it against `metrics`.
CheckResult check_invariants(const EventTrace& trace,
                             const core::SimMetrics& metrics,
                             const CheckConfig& cfg = {});

}  // namespace its::obs
