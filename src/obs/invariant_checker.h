// Timeline well-formedness checker.
//
// Replays a recorded EventTrace against the run's final totals and
// asserts that the §4.2.1 idle-time accounting actually balances event by
// event, not just in aggregate:
//
//   1. events are time-ordered per pid (DMA completions excepted — they are
//      stamped with the future completion time at issue);
//   2. every kFaultBegin has exactly one matching kFaultEnd (same pid and
//      vpn, no two faults open at once for one pid) and no kFaultEnd closes
//      a fault that never began;
//   3. stolen time never exceeds its enclosing wait window: FaultEnd and
//      FileWait events carry (window, stolen) and stolen ≤ window;
//   4. the idle breakdown reconciles with the makespan:
//      cpu_busy + busy_wait + ctx_switch + no_runnable == makespan (within
//      `granularity`), and mem_stall ⊆ cpu_busy;
//   5. per-counter totals derived from events equal the run's counters:
//      faults, prefetch issued/useful, pre-execute episodes, async
//      switches, evictions, Σ ctx-switch cost, Σ wait windows == busy_wait,
//      Σ stolen credits == stolen_time.
//
// A trace that dropped events (buffer cap) is rejected outright — a
// truncated timeline cannot vouch for anything.
#pragma once

#include "obs/event_trace.h"
#include "util/types.h"

#include <string>
#include <vector>

namespace its::obs {

struct CheckConfig {
  /// Tolerance (ns) for the makespan reconciliation — "one event
  /// granularity".  The simulator's accounting is exact, so the default is
  /// a single nanosecond of slack.
  its::Duration granularity = 1;
};

/// The slice of a run's final counters the checker reconciles against.
/// obs is a leaf module (docs/architecture.layers): it may not include
/// core/metrics.h, so the totals cross this boundary as a flat struct and
/// the template adapter below copies them out of any metrics-shaped type.
struct RunTotals {
  its::SimTime makespan = 0;
  its::Duration cpu_busy = 0;
  its::Duration mem_stall = 0;
  its::Duration busy_wait = 0;
  its::Duration ctx_switch = 0;
  its::Duration no_runnable = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_useful = 0;
  std::uint64_t preexec_episodes = 0;
  std::uint64_t async_switches = 0;
  std::uint64_t evictions = 0;
  its::Duration stolen_time = 0;
  std::uint64_t io_errors = 0;
  std::uint64_t io_retries = 0;
  std::uint64_t deadline_aborts = 0;
  std::uint64_t mode_fallbacks = 0;
  its::Duration degraded_time = 0;
  // Device-outage availability (storage/device_health.h, vm/fallback_pool.h).
  its::Duration health_healthy_time = 0;
  its::Duration health_degraded_time = 0;
  its::Duration health_offline_time = 0;
  its::Duration health_recovering_time = 0;
  std::uint64_t pool_stores = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_drains = 0;
  its::Bytes drain_bytes = 0;
  std::uint64_t faults_served_degraded = 0;
};

struct CheckResult {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  /// All violations joined with newlines ("ok" when none).
  std::string summary() const;
};

/// Replays `trace` and cross-checks it against the run's totals.
CheckResult check_invariants(const EventTrace& trace, const RunTotals& totals,
                             const CheckConfig& cfg = {});

/// Adapter for core::SimMetrics (or anything with the same field shape):
/// flattens `metrics` into RunTotals so call sites keep passing their
/// metrics object directly without obs depending on its definition.
template <typename Metrics>
CheckResult check_invariants(const EventTrace& trace, const Metrics& metrics,
                             const CheckConfig& cfg = {}) {
  RunTotals t;
  t.makespan = metrics.makespan;
  t.cpu_busy = metrics.cpu_busy;
  t.mem_stall = metrics.idle.mem_stall;
  t.busy_wait = metrics.idle.busy_wait;
  t.ctx_switch = metrics.idle.ctx_switch;
  t.no_runnable = metrics.idle.no_runnable;
  t.major_faults = metrics.major_faults;
  t.prefetch_issued = metrics.prefetch_issued;
  t.prefetch_useful = metrics.prefetch_useful;
  t.preexec_episodes = metrics.preexec_episodes;
  t.async_switches = metrics.async_switches;
  t.evictions = metrics.evictions;
  t.stolen_time = metrics.stolen_time;
  t.io_errors = metrics.io_errors;
  t.io_retries = metrics.io_retries;
  t.deadline_aborts = metrics.deadline_aborts;
  t.mode_fallbacks = metrics.mode_fallbacks;
  t.degraded_time = metrics.degraded_time;
  t.health_healthy_time = metrics.health_healthy_time;
  t.health_degraded_time = metrics.health_degraded_time;
  t.health_offline_time = metrics.health_offline_time;
  t.health_recovering_time = metrics.health_recovering_time;
  t.pool_stores = metrics.pool_stores;
  t.pool_hits = metrics.pool_hits;
  t.pool_drains = metrics.pool_drains;
  t.drain_bytes = metrics.drain_bytes;
  t.faults_served_degraded = metrics.faults_served_degraded;
  return check_invariants(trace, t, cfg);
}

}  // namespace its::obs
