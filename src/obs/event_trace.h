// Structured event-trace recorder — the observability substrate.
//
// The simulator's hot paths emit typed events (fault windows, prefetch
// issues/hits, pre-execute episodes, context switches, async conversions,
// DMA completions, scheduler decisions, evictions) into a preallocated
// vector buffer.  Recording is a pointer check plus a push_back into
// reserved storage, and every call site is guarded with `if (trace_)` so a
// simulation without an attached trace pays a single predictable branch.
//
// The recorded timeline is the ground truth the InvariantChecker replays
// (obs/invariant_checker.h) and the Chrome trace_event exporter renders
// (obs/trace_json.h): §4.2.1's idle-time accounting becomes checkable per
// fault instead of only as end-of-run aggregates.
#pragma once

#include "util/types.h"

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace its::obs {

enum class EventKind : std::uint8_t {
  kFaultBegin,     ///< Major fault entered the handler.        a=vpn b=device health at entry
  kFaultEnd,       ///< Fault resolved (page mapped).           a=vpn b=busy-wait window c=stolen
  kFileWait,       ///< Sync wait on a page-cache page.         a=page key b=wait c=stolen
  kPrefetchIssue,  ///< Page posted to DMA by a prefetcher.     a=vpn/key b=source (PrefetchSource)
  kPrefetchHit,    ///< Minor fault consumed a prefetched page. a=vpn
  kPreexecBegin,   ///< Pre-execute episode started.            a=pc
  kPreexecEnd,     ///< Episode ended.                          a=pc b=used ns c=stolen credit
  kCtxSwitch,      ///< Context switch charged.                 b=cost ns
  kAsyncConvert,   ///< Fault converted to asynchronous mode.   a=vpn/key
  kDmaComplete,    ///< DMA transfer completion (device pid).   a=bytes b=issue time c=direction
  kSchedPick,      ///< Scheduler dispatched the process.
  kSchedBlock,     ///< Process blocked on I/O.
  kSchedWake,      ///< Blocked process became runnable.
  kEvict,          ///< Frame reclaimed under pressure.         a=pfn b=vpn
  kSwapIn,         ///< Swap slot read back from the device.    a=vpn
  kSwapOut,        ///< Swap slot written to the device.        a=vpn
  kPrefetchWalk,   ///< Prefetcher candidate walk.              a=victim b=slots examined c=walk ns
  // Fault-injection resilience (see fault/fault_injector.h).  IoError and
  // IoRetry live on the device timeline (kDevicePid) and are stamped with
  // the future detection/repost time, like kDmaComplete.
  kIoError,        ///< Demand read attempt failed.             a=vpn/key b=attempt c=direction
  kIoRetry,        ///< Failed attempt reposted after backoff.  a=vpn/key b=attempt c=backoff ns
  kDeadlineAbort,  ///< Watchdog aborted a sync busy-wait.      a=vpn b=waited window c=stolen
  kModeFallback,   ///< Aborted fault fell back to async mode.  a=vpn b=remaining (background) ns
  // Device-outage resilience (storage/device_health.h, vm/fallback_pool.h).
  // HealthTransition lives on the device timeline (kDevicePid); the pool
  // events carry the owning process.
  kHealthTransition, ///< Health FSM edge taken.                a=from b=to (DeviceHealth)
  kPoolStore,      ///< Page compressed into the fallback pool. a=vpn b=compress ns
  kPoolLoad,       ///< Demand read served from the pool.       a=vpn b=decompress ns
  kPoolDrain,      ///< Pooled page written back on recovery.   a=vpn b=bytes
  // Open-loop serving lifecycle (serve/scenario.h).  Every request event
  // carries the request id in `a`; Arrive/Admit are stamped at the arrival
  // instant, Done at retirement with the reconciled latency, and a
  // SloViolation immediately follows the Done it indicts.
  kRequestArrive,  ///< Open-loop request arrived.              a=req id b=tier
  kRequestAdmit,   ///< Request admitted (process spawned).     a=req id b=tier
  kRequestDone,    ///< Request retired.                        a=req id b=latency ns c=tier
  kSloViolation,   ///< Retired request broke its tier SLO.     a=req id b=latency ns c=slo ns
};

/// Derived from the lexically-last enumerator so adding a kind cannot leave
/// the count stale; the static_assert is the tripwire a reviewer sees when
/// the enum grows (update it together with kind_name(), the Chrome-trace
/// mapping in trace_json.cpp, and the invariant checker — its_lint's
/// registry rules enforce all four).
inline constexpr std::size_t kNumEventKinds =
    static_cast<std::size_t>(EventKind::kSloViolation) + 1;
static_assert(kNumEventKinds == 29,
              "EventKind grew: extend kind_name(), trace_json.cpp, and "
              "invariant_checker.cpp, then bump this count");

std::string_view kind_name(EventKind k);

/// Origin of a kPrefetchIssue, carried in Event::b.
enum class PrefetchSource : std::uint8_t {
  kSwapCluster = 0,  ///< Sibling page of an aligned swap cluster.
  kPolicy = 1,       ///< VA-walk / page-on-page / stride prefetcher.
  kFileReadahead = 2,
};

/// Pid stamped on events that belong to no process (DMA completions).
inline constexpr its::Pid kDevicePid = 0xFFFFFFFFu;

struct Event {
  its::SimTime ts;      ///< Sim-time at recording; kDmaComplete stamps the
                        ///< (future) completion instead.
  EventKind kind;
  std::uint8_t policy;  ///< PolicyKind of the run, set once on the trace.
  its::Pid pid;
  std::uint64_t a = 0;  ///< Primary operand — see the per-kind legend.
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

class EventTrace {
 public:
  /// `reserve_hint` preallocates the buffer; `max_events` (0 = unbounded)
  /// caps it — once full, further events are counted in dropped() instead
  /// of recorded, and the invariant checker refuses the truncated trace.
  explicit EventTrace(std::size_t reserve_hint = std::size_t{1} << 16,
                      std::size_t max_events = 0)
      : max_(max_events) {
    buf_.reserve(reserve_hint);
  }

  /// PolicyKind of the producing run, stamped onto every event.
  void set_policy(std::uint8_t policy) { policy_ = policy; }
  std::uint8_t policy() const { return policy_; }

  void record(EventKind k, its::SimTime ts, its::Pid pid, std::uint64_t a = 0,
              std::uint64_t b = 0, std::uint64_t c = 0) {
    if (max_ != 0 && buf_.size() >= max_) {
      ++dropped_;
      return;
    }
    buf_.push_back(Event{ts, k, policy_, pid, a, b, c});
  }

  const std::vector<Event>& events() const { return buf_; }
  /// Mutable view for tests that corrupt a trace on purpose.
  std::vector<Event>& events_mut() { return buf_; }

  std::size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  std::uint64_t dropped() const { return dropped_; }

  std::uint64_t count(EventKind k) const;
  /// Σ of the `b` operand over events of kind `k` (durations/costs).
  std::uint64_t sum_b(EventKind k) const;
  /// Σ of the `c` operand over events of kind `k` (stolen credits).
  std::uint64_t sum_c(EventKind k) const;

  void clear() {
    buf_.clear();
    dropped_ = 0;
  }

 private:
  std::size_t max_;
  std::uint8_t policy_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<Event> buf_;
};

}  // namespace its::obs
