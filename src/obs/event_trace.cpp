#include "obs/event_trace.h"

namespace its::obs {

std::string_view kind_name(EventKind k) {
  switch (k) {
    case EventKind::kFaultBegin:    return "fault_begin";
    case EventKind::kFaultEnd:      return "fault_end";
    case EventKind::kFileWait:      return "file_wait";
    case EventKind::kPrefetchIssue: return "prefetch_issue";
    case EventKind::kPrefetchHit:   return "prefetch_hit";
    case EventKind::kPreexecBegin:  return "preexec_begin";
    case EventKind::kPreexecEnd:    return "preexec_end";
    case EventKind::kCtxSwitch:     return "ctx_switch";
    case EventKind::kAsyncConvert:  return "async_convert";
    case EventKind::kDmaComplete:   return "dma_complete";
    case EventKind::kSchedPick:     return "sched_pick";
    case EventKind::kSchedBlock:    return "sched_block";
    case EventKind::kSchedWake:     return "sched_wake";
    case EventKind::kEvict:         return "evict";
    case EventKind::kSwapIn:        return "swap_in";
    case EventKind::kSwapOut:       return "swap_out";
    case EventKind::kPrefetchWalk:  return "prefetch_walk";
    case EventKind::kIoError:       return "io_error";
    case EventKind::kIoRetry:       return "io_retry";
    case EventKind::kDeadlineAbort: return "deadline_abort";
    case EventKind::kModeFallback:  return "mode_fallback";
    case EventKind::kHealthTransition: return "health_transition";
    case EventKind::kPoolStore:     return "pool_store";
    case EventKind::kPoolLoad:      return "pool_load";
    case EventKind::kPoolDrain:     return "pool_drain";
    case EventKind::kRequestArrive: return "request_arrive";
    case EventKind::kRequestAdmit:  return "request_admit";
    case EventKind::kRequestDone:   return "request_done";
    case EventKind::kSloViolation:  return "slo_violation";
  }
  return "unknown";
}

std::uint64_t EventTrace::count(EventKind k) const {
  std::uint64_t n = 0;
  for (const Event& e : buf_)
    if (e.kind == k) ++n;
  return n;
}

std::uint64_t EventTrace::sum_b(EventKind k) const {
  std::uint64_t s = 0;
  for (const Event& e : buf_)
    if (e.kind == k) s += e.b;
  return s;
}

std::uint64_t EventTrace::sum_c(EventKind k) const {
  std::uint64_t s = 0;
  for (const Event& e : buf_)
    if (e.kind == k) s += e.c;
  return s;
}

}  // namespace its::obs
