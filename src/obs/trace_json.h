// Chrome trace_event JSON export for EventTrace.
//
// `write_chrome_trace` emits the JSON Array/Object format that
// chrome://tracing and Perfetto (ui.perfetto.dev) load directly: fault and
// pre-execute windows become duration (B/E) slices on a per-process track,
// context switches and file waits become complete (X) slices, everything
// else becomes instant (i) markers.  Sim-time nanoseconds are exported as
// the microseconds the viewers expect (fractional, so no precision is lost).
//
// `parse_chrome_trace` reads back the subset this module writes — enough
// for round-trip tests and for external tools that only need (name, phase,
// timestamp, pid) tuples.  It is not a general JSON parser.
#pragma once

#include "obs/event_trace.h"
#include "util/types.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace its::obs {

struct ExportOptions {
  std::string policy;  ///< Run's policy name, recorded in otherData.
  /// Optional pid → process-name labels for the viewer's track headers.
  std::vector<std::string> process_names;
};

void write_chrome_trace(std::ostream& os, const EventTrace& trace,
                        const ExportOptions& opts = {});

/// Convenience: writes the trace to `path`; throws std::runtime_error on
/// I/O failure.
void save_chrome_trace(const std::string& path, const EventTrace& trace,
                       const ExportOptions& opts = {});

/// One traceEvents entry as read back by parse_chrome_trace.  Metadata
/// (ph == "M") entries are included; filter on `ph` as needed.
struct ParsedEvent {
  std::string name;
  std::string ph;
  double ts_us = 0.0;
  its::Pid pid = 0;
};

std::vector<ParsedEvent> parse_chrome_trace(std::istream& is);

}  // namespace its::obs
