#include "storage/pcie_link.h"

#include "util/types.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace its::storage {

PcieLink::PcieLink(const PcieConfig& cfg) {
  if (cfg.lanes == 0 || cfg.gbytes_per_sec_per_lane <= 0.0)
    throw std::invalid_argument("PcieLink: lanes and bandwidth must be positive");
  // 1 GB/s == 1 byte/ns.
  bytes_per_ns_ = static_cast<double>(cfg.lanes) * cfg.gbytes_per_sec_per_lane;
}

its::Duration PcieLink::transfer_time(its::Bytes bytes) const {
  return static_cast<its::Duration>(
      // its-lint: allow(units-narrow): bandwidth division runs in doubles
      std::ceil(static_cast<double>(bytes) / bytes_per_ns_));
}

its::SimTime PcieLink::schedule(its::SimTime ready, its::Bytes bytes,
                                bool* error_out) {
  its::SimTime start = std::max(ready, busy_until_);
  its::Duration t = transfer_time(bytes);
  if (inj_ != nullptr && inj_->enabled() &&
      inj_->link_error(/*surfaced=*/error_out != nullptr)) {
    if (error_out != nullptr)
      *error_out = true;
    else
      t += transfer_time(bytes);  // internal retransmit
  }
  busy_until_ = start + t;
  bytes_moved_ += bytes;
  ++transfers_;
  return busy_until_;
}

void PcieLink::reset() {
  busy_until_ = 0;
  bytes_moved_ = 0;
  transfers_ = 0;
}

}  // namespace its::storage
