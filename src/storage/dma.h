// DMA controller: composes the ULL device and the PCIe link.
//
// The page-fault handler (and the ITS page-prefetch policy) post page-sized
// transfers here; the controller returns the completion timestamp so the
// simulator can enqueue a wake-up/arrival event.  Reads traverse
// media-then-link; writes (swap-out) traverse link-then-media.  The CPU is
// never charged for DMA time — that is the whole point of the design.
#pragma once

#include "fault/fault_injector.h"
#include "obs/event_trace.h"
#include "storage/pcie_link.h"
#include "storage/ull_device.h"
#include "util/types.h"

#include <cstdint>

namespace its::storage {

enum class Dir : std::uint8_t { kRead, kWrite };  ///< kRead = storage → DRAM.

/// Outcome of a checked (fault-aware) transfer: when `error` is set the
/// data did not land; `done` is the time the failure is detected — the
/// attempt still occupied the media channel and the link until then.
struct PostResult {
  its::SimTime done = 0;
  bool error = false;
};

class DmaController {
 public:
  DmaController(const UllConfig& dev = {}, const PcieConfig& link = {});

  /// Posts one transfer of `bytes` at time `now`; returns completion time.
  /// Injected errors (if a FaultInjector is attached) are absorbed as
  /// internal device/link redo latency — this path never fails, so it fits
  /// fire-and-forget operations (writebacks, readahead).
  its::SimTime post(its::SimTime now, Dir dir, its::Bytes bytes);

  /// Fault-aware post for demand operations with a waiter that can retry:
  /// media and link errors surface in the result instead of being redone
  /// internally.  Identical to post() when no injector is attached.
  PostResult post_checked(its::SimTime now, Dir dir, its::Bytes bytes);

  /// Posts a page-sized (4 KiB) transfer.
  its::SimTime post_page(its::SimTime now, Dir dir) {
    return post(now, dir, its::kPageSize);
  }

  const UllDevice& device() const { return dev_; }
  const PcieLink& link() const { return link_; }

  std::uint64_t page_reads() const { return dev_.reads(); }
  std::uint64_t page_writes() const { return dev_.writes(); }

  /// Emits a kDmaComplete event per post.  Completions are stamped with the
  /// (future) completion time and the device pseudo-pid — the one event
  /// class exempt from the checker's append-order rule.
  void attach_trace(obs::EventTrace* trace) { trace_ = trace; }

  /// Connects device and link to the (caller-owned) fault injector;
  /// nullptr detaches.  Both consult it on every scheduled operation.
  void attach_fault(fault::FaultInjector* inj) {
    dev_.attach_fault(inj);
    link_.attach_fault(inj);
  }

  void reset();

 private:
  UllDevice dev_;
  PcieLink link_;
  obs::EventTrace* trace_ = nullptr;
};

}  // namespace its::storage
