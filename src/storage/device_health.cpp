#include "storage/device_health.h"

#include "fault/fault_injector.h"
#include "obs/event_trace.h"
#include "util/types.h"

#include <algorithm>

namespace its::storage {

namespace {

constexpr its::SimTime kNever = ~0ull;

/// Severity for max-combining concurrent contributions: a device that is
/// both inside a scheduled window (offline) and error-degraded is offline.
constexpr int severity(DeviceHealth h) {
  switch (h) {
    case DeviceHealth::kHealthy:    return 0;
    case DeviceHealth::kDegraded:   return 1;
    case DeviceHealth::kRecovering: return 2;
    case DeviceHealth::kOffline:    return 3;
  }
  return 0;
}

constexpr DeviceHealth worse(DeviceHealth a, DeviceHealth b) {
  return severity(a) >= severity(b) ? a : b;
}

constexpr std::size_t idx(DeviceHealth h) {
  return static_cast<std::size_t>(h);
}

/// Next hop along the legal edge set {H→D, D→O, D→H, O→R, R→H, R→D} on the
/// shortest path from `from` toward `to` (from != to).
DeviceHealth next_hop(DeviceHealth from, DeviceHealth to) {
  using H = DeviceHealth;
  switch (from) {
    case H::kHealthy:    return H::kDegraded;                       // via D
    case H::kDegraded:   return to == H::kHealthy ? H::kHealthy : H::kOffline;
    case H::kOffline:    return H::kRecovering;                     // via R
    case H::kRecovering: return to == H::kHealthy ? H::kHealthy : H::kDegraded;
  }
  return to;
}

}  // namespace

std::string_view health_name(DeviceHealth h) {
  switch (h) {
    case DeviceHealth::kHealthy:    return "healthy";
    case DeviceHealth::kDegraded:   return "degraded";
    case DeviceHealth::kOffline:    return "offline";
    case DeviceHealth::kRecovering: return "recovering";
  }
  return "?";
}

DeviceHealthMonitor::DeviceHealthMonitor(const fault::OutageModelConfig& cfg)
    : cfg_(cfg), enabled_(cfg.enabled()) {
  // Clamp the scheduled window so offline + recovering fit inside one
  // period — overlapping windows would make state_at ambiguous.
  if (cfg_.period > 0) {
    cfg_.length = std::min(cfg_.length, cfg_.period);
    cfg_.recovery = std::min(cfg_.recovery, cfg_.period - cfg_.length);
  }
}

DeviceHealth DeviceHealthMonitor::state_at(its::SimTime t) const {
  DeviceHealth sched = DeviceHealth::kHealthy;
  if (cfg_.dead_at > 0 && t >= cfg_.dead_at) {
    sched = DeviceHealth::kOffline;
  } else if (cfg_.period > 0 && cfg_.length > 0) {
    const its::Duration into = (t + cfg_.phase) % cfg_.period;
    if (into < cfg_.length)
      sched = DeviceHealth::kOffline;
    else if (into < cfg_.length + cfg_.recovery)
      sched = DeviceHealth::kRecovering;
  }
  DeviceHealth err = DeviceHealth::kHealthy;
  if (t < err_offline_until_)
    err = DeviceHealth::kOffline;
  else if (t < err_recover_until_)
    err = DeviceHealth::kRecovering;
  const DeviceHealth deg = t < degraded_until_ ? DeviceHealth::kDegraded
                                               : DeviceHealth::kHealthy;
  return worse(worse(sched, err), deg);
}

its::SimTime DeviceHealthMonitor::next_boundary(its::SimTime t) const {
  its::SimTime nb = kNever;
  const bool dead = cfg_.dead_at > 0 && t >= cfg_.dead_at;
  if (cfg_.dead_at > 0 && t < cfg_.dead_at) nb = std::min(nb, cfg_.dead_at);
  if (!dead && cfg_.period > 0 && cfg_.length > 0) {
    const its::Duration into = (t + cfg_.phase) % cfg_.period;
    its::SimTime next;
    if (into < cfg_.length)
      next = t + (cfg_.length - into);
    else if (into < cfg_.length + cfg_.recovery)
      next = t + (cfg_.length + cfg_.recovery - into);
    else
      next = t + (cfg_.period - into);
    nb = std::min(nb, next);
  }
  for (its::SimTime b : {degraded_until_, err_offline_until_, err_recover_until_})
    if (b > t) nb = std::min(nb, b);
  return nb;
}

void DeviceHealthMonitor::advance_to(its::SimTime t) {
  if (!enabled_ || t <= ts_) return;
  // Sync before integrating the first segment: a scheduled window can open
  // exactly at ts_ (e.g. phase 0 puts the device offline at t = 0).
  const DeviceHealth at = state_at(ts_);
  if (at != state_) transition_to(at, ts_);
  while (ts_ < t) {
    const its::SimTime stop = std::min(next_boundary(ts_), t);
    time_in_[idx(state_)] += stop - ts_;
    ts_ = stop;
    const DeviceHealth ns = state_at(ts_);
    if (ns != state_) transition_to(ns, ts_);
  }
}

void DeviceHealthMonitor::transition_to(DeviceHealth to, its::SimTime t) {
  while (state_ != to) {
    const DeviceHealth step = next_hop(state_, to);
    if (trace_)
      trace_->record(obs::EventKind::kHealthTransition, t, obs::kDevicePid,
                     static_cast<std::uint64_t>(state_),
                     static_cast<std::uint64_t>(step));
    state_ = step;
  }
}

void DeviceHealthMonitor::poll(its::SimTime t) { advance_to(t); }

void DeviceHealthMonitor::note_error(its::SimTime t) {
  if (!enabled_) return;
  advance_to(t);
  ++err_run_;
  if (cfg_.degrade_errors > 0 && err_run_ >= cfg_.degrade_errors) {
    degraded_until_ = std::max(degraded_until_, t + cfg_.degraded_hold);
    const DeviceHealth ns = state_at(ts_);
    if (ns != state_) transition_to(ns, ts_);
  }
}

void DeviceHealthMonitor::note_timeout(its::SimTime t) {
  if (!enabled_) return;
  advance_to(t);
  ++timeout_run_;
  if (cfg_.offline_timeouts > 0 && timeout_run_ >= cfg_.offline_timeouts) {
    timeout_run_ = 0;
    err_offline_until_ = std::max(err_offline_until_, t + cfg_.error_outage);
    err_recover_until_ = err_offline_until_ + cfg_.recovery;
    const DeviceHealth ns = state_at(ts_);
    if (ns != state_) transition_to(ns, ts_);
  }
}

void DeviceHealthMonitor::note_ok(its::SimTime t) {
  if (!enabled_) return;
  advance_to(t);
  err_run_ = 0;
  timeout_run_ = 0;
}

void DeviceHealthMonitor::finalize(its::SimTime makespan) {
  advance_to(makespan);
}

void DeviceHealthMonitor::reset() {
  state_ = DeviceHealth::kHealthy;
  ts_ = 0;
  time_in_ = {};
  err_run_ = 0;
  timeout_run_ = 0;
  degraded_until_ = 0;
  err_offline_until_ = 0;
  err_recover_until_ = 0;
}

}  // namespace its::storage
