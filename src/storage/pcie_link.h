// PCIe host-interface bandwidth model.
//
// The paper models "a 4-lane PCIe 5.x host interface between the DRAM and
// ULL devices, providing approximately 3.983 GB/s bandwidth per lane".
// Transfers serialise on the link; the DMA controller asks this class when
// a queued transfer of N bytes, ready at time T, finishes.
#pragma once

#include "fault/fault_injector.h"
#include "util/types.h"

#include <cstdint>

namespace its::storage {

struct PcieConfig {
  unsigned lanes = 4;
  double gbytes_per_sec_per_lane = 3.983;  ///< GB/s per lane (paper §4.1).
};

class PcieLink {
 public:
  explicit PcieLink(const PcieConfig& cfg = {});

  /// Pure function: time to move `bytes` at full link bandwidth.
  its::Duration transfer_time(its::Bytes bytes) const;

  /// Schedules a transfer that becomes ready at `ready`; returns its
  /// completion time.  Transfers are serialised in call order (FIFO link).
  ///
  /// With a fault injector attached the transfer may draw a link error.
  /// When `error_out` is non-null the error is surfaced for the caller to
  /// retry; when it is null the link retransmits internally (the transfer
  /// occupies the link twice).  Either way the bytes burn link time.
  its::SimTime schedule(its::SimTime ready, its::Bytes bytes,
                        bool* error_out = nullptr);

  /// Connects the link to the (caller-owned) fault injector; nullptr
  /// detaches.
  void attach_fault(fault::FaultInjector* inj) { inj_ = inj; }

  its::SimTime busy_until() const { return busy_until_; }
  std::uint64_t bytes_moved() const { return bytes_moved_; }
  std::uint64_t transfers() const { return transfers_; }

  /// Effective link bandwidth in bytes per nanosecond.
  double bytes_per_ns() const { return bytes_per_ns_; }

  void reset();

 private:
  double bytes_per_ns_;
  its::SimTime busy_until_ = 0;
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t transfers_ = 0;
  fault::FaultInjector* inj_ = nullptr;
};

}  // namespace its::storage
