// Device-health state machine — the outage-resilience substrate.
//
// The paper's busy-wait bet assumes the ULL device is *always there*.  A
// real Z-NAND device is not: firmware GC stalls, link retraining and
// controller resets take it away for milliseconds at a time.  This monitor
// tracks an explicit health FSM
//
//     healthy → degraded → offline → recovering → healthy
//
// driven deterministically by two signal classes (fault/fault_injector.h's
// OutageModelConfig):
//
//   * scheduled outage windows — pure clock arithmetic, no RNG: while
//     ((t + phase) mod period) < length the device is offline, then
//     recovering for `recovery` ns, then healthy again.  `dead_at` models a
//     permanent controller death.
//   * error-driven trips — a run of `degrade_errors` consecutive I/O errors
//     forces degraded (clearing after `degraded_hold` quiet ns); a run of
//     `offline_timeouts` consecutive sync-wait aborts forces an
//     `error_outage`-long offline window followed by recovery.
//
// The effective state at any instant is the most severe of all active
// contributions (offline > recovering > degraded > healthy).  Transitions
// are emitted as kHealthTransition events on the device timeline and only
// ever along the legal edges {H→D, D→O, D→H, O→R, R→H, R→D}; a larger jump
// (e.g. healthy straight into a scheduled window) expands into its legal
// hop sequence at the same timestamp.  Exact time-in-state accounting is
// integrated alongside, so obs::check_invariants can reconcile the four
// SimMetrics availability counters against the makespan to the nanosecond.
#pragma once

#include "fault/fault_injector.h"
#include "obs/event_trace.h"
#include "util/types.h"

#include <array>
#include <cstdint>
#include <string_view>

namespace its::storage {

/// Health of the swap device, ordered as the FSM progresses.  Numeric
/// values are stable — they ride in Event operands and metrics CSVs.
enum class DeviceHealth : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kOffline = 2,
  kRecovering = 3,
};

std::string_view health_name(DeviceHealth h);

/// Deterministic health FSM.  One instance per Simulator; all inputs are
/// stamped with the (monotone) simulation clock.  With an all-zero
/// OutageModelConfig the monitor is inert: state() stays healthy, no
/// events, all accumulators zero — bit-identical simulation.
class DeviceHealthMonitor {
 public:
  DeviceHealthMonitor() = default;
  explicit DeviceHealthMonitor(const fault::OutageModelConfig& cfg);

  bool enabled() const { return enabled_; }
  DeviceHealth state() const { return state_; }

  /// Advances the FSM to time `t`, emitting any transitions whose
  /// boundaries fall in (last, t].  Inert when disabled.
  void poll(its::SimTime t);

  /// A demand I/O attempt failed at `t` (surfaced media/link error).
  void note_error(its::SimTime t);

  /// A synchronous busy-wait was aborted by the watchdog at `t`.
  void note_timeout(its::SimTime t);

  /// A demand I/O completed cleanly at `t` — resets the error/timeout runs.
  void note_ok(its::SimTime t);

  /// Final accounting up to the makespan; call once, after the last event.
  void finalize(its::SimTime makespan);

  /// Attaches the event trace transitions are recorded into.
  void attach_trace(obs::EventTrace* trace) { trace_ = trace; }

  /// Exact ns spent in `h` over [0, last polled time).
  its::Duration time_in(DeviceHealth h) const {
    return time_in_[static_cast<std::size_t>(h)];
  }

  void reset();

 private:
  DeviceHealth state_at(its::SimTime t) const;
  its::SimTime next_boundary(its::SimTime t) const;
  void advance_to(its::SimTime t);
  void transition_to(DeviceHealth to, its::SimTime t);

  fault::OutageModelConfig cfg_{};
  bool enabled_ = false;
  obs::EventTrace* trace_ = nullptr;

  DeviceHealth state_ = DeviceHealth::kHealthy;
  its::SimTime ts_ = 0;  ///< Time the FSM has been advanced to.
  std::array<its::Duration, 4> time_in_{};

  // Error-driven contribution state.
  unsigned err_run_ = 0;
  unsigned timeout_run_ = 0;
  its::SimTime degraded_until_ = 0;
  its::SimTime err_offline_until_ = 0;
  its::SimTime err_recover_until_ = 0;
};

}  // namespace its::storage
