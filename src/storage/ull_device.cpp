#include "storage/ull_device.h"

#include "util/types.h"

#include <algorithm>
#include <stdexcept>

namespace its::storage {

UllDevice::UllDevice(const UllConfig& cfg) : cfg_(cfg) {
  if (cfg.channels == 0) throw std::invalid_argument("UllDevice: channels must be > 0");
  channel_free_.assign(cfg.channels, 0);
}

its::SimTime UllDevice::schedule(its::SimTime ready, bool write,
                                 bool* error_out) {
  auto it = std::min_element(channel_free_.begin(), channel_free_.end());
  its::SimTime start = std::max(ready, *it);
  its::Duration lat = write ? cfg_.write_latency : cfg_.read_latency;
  if (inj_ != nullptr && inj_->enabled()) {
    // A scheduled outage window stalls the whole device: requests queue
    // and service resumes when the window clears (fault/fault_injector.h).
    start = inj_->outage_clear(start);
    lat = inj_->inflate_media_latency(start, lat, write);
    if (inj_->media_error(write, /*surfaced=*/error_out != nullptr)) {
      if (error_out != nullptr)
        *error_out = true;
      else
        // Fire-and-forget op (writeback/readahead): the device firmware
        // redoes the access; nobody waits, but the channel stays occupied.
        lat += write ? cfg_.write_latency : cfg_.read_latency;
    }
  }
  *it = start + lat;
  if (write)
    ++writes_;
  else
    ++reads_;
  return *it;
}

its::SimTime UllDevice::earliest_free() const {
  return *std::min_element(channel_free_.begin(), channel_free_.end());
}

void UllDevice::reset() {
  std::fill(channel_free_.begin(), channel_free_.end(), 0);
  reads_ = 0;
  writes_ = 0;
}

}  // namespace its::storage
