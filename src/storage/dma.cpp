#include "storage/dma.h"

#include "obs/event_trace.h"
#include "storage/pcie_link.h"
#include "storage/ull_device.h"
#include "util/types.h"

namespace its::storage {

DmaController::DmaController(const UllConfig& dev, const PcieConfig& link)
    : dev_(dev), link_(link) {}

its::SimTime DmaController::post(its::SimTime now, Dir dir,
                                 its::Bytes bytes) {
  its::SimTime done;
  if (dir == Dir::kRead) {
    // Media read, then host transfer over the (serialising) link.
    its::SimTime media_done = dev_.schedule(now, /*write=*/false);
    done = link_.schedule(media_done, bytes);
  } else {
    // Swap-out: move data over the link first, then program the media.
    its::SimTime link_done = link_.schedule(now, bytes);
    done = dev_.schedule(link_done, /*write=*/true);
  }
  if (trace_ != nullptr)
    trace_->record(obs::EventKind::kDmaComplete, done, obs::kDevicePid, bytes,
                   now, static_cast<std::uint64_t>(dir));
  return done;
}

PostResult DmaController::post_checked(its::SimTime now, Dir dir,
                                       its::Bytes bytes) {
  PostResult r;
  if (dir == Dir::kRead) {
    its::SimTime media_done = dev_.schedule(now, /*write=*/false, &r.error);
    r.done = link_.schedule(media_done, bytes, &r.error);
  } else {
    its::SimTime link_done = link_.schedule(now, bytes, &r.error);
    r.done = dev_.schedule(link_done, /*write=*/true, &r.error);
  }
  if (trace_ != nullptr)
    trace_->record(obs::EventKind::kDmaComplete, r.done, obs::kDevicePid,
                   bytes, now, static_cast<std::uint64_t>(dir));
  return r;
}

void DmaController::reset() {
  dev_.reset();
  link_.reset();
}

}  // namespace its::storage
