// Ultra-Low-Latency storage device model (Samsung Z-NAND class).
//
// The device exposes `channels` independent media channels; each channel
// serves one request at a time with a fixed media latency (3 µs read per
// the paper).  Channel-level parallelism is what makes batched page
// prefetching profitable: n pages posted together overlap their media time.
#pragma once

#include "fault/fault_injector.h"
#include "util/types.h"

#include <cstdint>
#include <vector>

namespace its::storage {

struct UllConfig {
  its::Duration read_latency = 3_us;   ///< Paper: Z-NAND ~3 µs.
  its::Duration write_latency = 3_us;  ///< Program latency, same class.
  unsigned channels = 8;               ///< Internal parallelism.
};

class UllDevice {
 public:
  explicit UllDevice(const UllConfig& cfg = {});

  /// Schedules a media access that becomes ready at `ready`; returns the
  /// time the media access completes (data available for the host link).
  /// Requests pick the earliest-free channel.
  ///
  /// With a fault injector attached (and enabled) the media latency is
  /// inflated by the injector's tail/burst model and the operation may draw
  /// a media error.  When `error_out` is non-null a drawn error is surfaced
  /// (`*error_out` set true — the caller retries); when it is null the
  /// device redoes the operation internally, doubling its occupancy.
  /// A scheduled outage window (OutageModelConfig) stalls the start of
  /// service until the window clears — requests queue, none are dropped.
  its::SimTime schedule(its::SimTime ready, bool write,
                        bool* error_out = nullptr);

  /// Connects the device to the (caller-owned) fault injector; nullptr
  /// detaches.  Without one the device is the perfect fixed-latency model.
  void attach_fault(fault::FaultInjector* inj) { inj_ = inj; }

  const UllConfig& config() const { return cfg_; }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

  /// Earliest time any channel is free.
  its::SimTime earliest_free() const;

  void reset();

 private:
  UllConfig cfg_;
  std::vector<its::SimTime> channel_free_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  fault::FaultInjector* inj_ = nullptr;
};

}  // namespace its::storage
