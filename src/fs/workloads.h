// Synthetic file-I/O workloads — exercise the filesystem/page-cache path.
//
// These are *not* part of the paper's nine-trace suite (the paper evaluates
// process/swap I/O); they drive the file-I/O extension: a sequential log
// scanner, a Zipf-skewed key-value store, and a mixed analytics job that
// interleaves file reads with anonymous-memory processing (the case where
// swap faults and page-cache misses compete for the same device).
#pragma once

#include "trace/trace.h"
#include "util/types.h"

#include <cstdint>

namespace its::fs {

struct FileWorkloadConfig {
  std::uint64_t records = 120000;
  std::uint64_t seed = 1;
};

/// Sequential scan of one large log file (file 0) with light per-record
/// compute: page-cache readahead territory.
trace::Trace make_log_scan(its::Bytes file_bytes = 64_MiB,
                           const FileWorkloadConfig& cfg = {});

/// Key-value store over one data file (file 1): Zipf-skewed point reads, a
/// fraction of writes, an append-only log tail (file 2).
trace::Trace make_kv_store(its::Bytes file_bytes = 48_MiB,
                           double write_ratio = 0.2,
                           const FileWorkloadConfig& cfg = {});

/// Analytics mix: streams a column file (file 3) while building an
/// anonymous-memory hash table — file-I/O misses and swap faults share the
/// ULL device.
trace::Trace make_analytics_mix(its::Bytes file_bytes = 48_MiB,
                                its::Bytes heap_bytes = 24_MiB,
                                const FileWorkloadConfig& cfg = {});

}  // namespace its::fs
