#include "fs/workloads.h"

#include "trace/instr.h"
#include "trace/trace.h"
#include "trace/workloads.h"
#include "util/rng.h"
#include "util/types.h"

#include <algorithm>

namespace its::fs {

using trace::Instr;
using util::Rng;

trace::Trace make_log_scan(its::Bytes file_bytes,
                           const FileWorkloadConfig& cfg) {
  trace::Trace t("log_scan");
  t.reserve(cfg.records);
  Rng rng(cfg.seed, 0xf11eull);
  std::uint64_t off = 0;
  std::uint8_t reg = 1;
  while (t.size() < cfg.records) {
    t.push_back(Instr::file_read(0, off, 4096, reg));
    t.push_back(Instr::compute(static_cast<std::uint16_t>(4 + rng.below(8)), reg,
                               reg, 0));
    reg = reg == 31 ? 1 : reg + 1;
    off += 4096;
    if (off + 4096 > file_bytes) off = 0;  // next pass over the log
  }
  return t;
}

trace::Trace make_kv_store(its::Bytes file_bytes, double write_ratio,
                           const FileWorkloadConfig& cfg) {
  trace::Trace t("kv_store");
  t.reserve(cfg.records);
  Rng rng(cfg.seed, 0x6b76ull);
  const std::uint64_t slots = file_bytes / 256;  // 256-byte values
  std::uint64_t log_tail = 0;
  std::uint8_t reg = 1;
  while (t.size() < cfg.records) {
    std::uint64_t slot = rng.zipf(slots, 0.95);
    std::uint64_t off = slot * 256;
    if (rng.chance(write_ratio)) {
      t.push_back(Instr::file_write(1, off, 256, reg));
      // Durability: append to the write-ahead log.
      t.push_back(Instr::file_write(2, log_tail, 128, reg));
      log_tail = (log_tail + 128) % (8ull << 20);
    } else {
      t.push_back(Instr::file_read(1, off, 256, reg));
    }
    t.push_back(Instr::compute(3, reg, reg, 0));
    reg = reg == 31 ? 1 : reg + 1;
  }
  return t;
}

trace::Trace make_analytics_mix(its::Bytes file_bytes, its::Bytes heap_bytes,
                                const FileWorkloadConfig& cfg) {
  trace::Trace t("analytics_mix");
  t.reserve(cfg.records);
  Rng rng(cfg.seed, 0xa11aull);
  std::uint64_t off = 0;
  std::uint8_t reg = 1;
  while (t.size() < cfg.records) {
    // Stream a 4 KiB column chunk...
    t.push_back(Instr::file_read(3, off, 4096, reg));
    off = (off + 4096) % (file_bytes - 4096);
    // ...then update the anonymous hash table (random heap page).
    for (int k = 0; k < 3 && t.size() < cfg.records; ++k) {
      its::VirtAddr a = trace::kHeapBase + (rng.below(heap_bytes / 64)) * 64;
      t.push_back(Instr::load(a, 8, reg, 0));
      t.push_back(Instr::store(a, 8, reg));
      t.push_back(Instr::compute(2, reg, reg, 0));
    }
    reg = reg == 31 ? 1 : reg + 1;
  }
  return t;
}

}  // namespace its::fs
