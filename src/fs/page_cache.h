// Page cache — DRAM caching of file pages (the paper's file-I/O path).
//
// A fixed-budget LRU cache of (file, page) entries with dirty tracking and
// arrival timestamps: a page inserted by readahead is usable only once its
// DMA lands, so a premature read pays the remaining transfer time (the
// same partial-wait semantics as the swap path's in-flight pages).
// Evicting a dirty page produces a writeback the caller posts to the DMA
// engine.  The budget is carved from DRAM separately from the anonymous-
// page frame pool (a static split — see DESIGN.md).
#pragma once

#include "util/types.h"

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

namespace its::fs {

struct PageCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_writebacks = 0;
};

struct PcLookup {
  bool hit = false;
  its::SimTime ready_at = 0;  ///< When the data is usable (≤ now for a plain hit).
};

/// A dirty page evicted from the cache; the caller schedules the writeback.
struct Writeback {
  std::uint64_t key = 0;
};

class PageCache {
 public:
  /// `budget_bytes` rounds down to whole pages; at least one page.
  explicit PageCache(its::Bytes budget_bytes);

  std::uint64_t capacity_pages() const { return capacity_; }
  std::uint64_t resident_pages() const { return map_.size(); }

  /// Looks up `key`, refreshing LRU on hit.
  PcLookup lookup(std::uint64_t key);

  /// Inserts `key` with data usable at `ready_at` (now for demand reads,
  /// the DMA completion time for readahead).  Returns the dirty eviction
  /// this insertion forced, if any.  Re-inserting an existing key refreshes
  /// it (and keeps the earlier ready time if sooner).
  std::optional<Writeback> insert(std::uint64_t key, its::SimTime ready_at,
                                  bool dirty = false);

  /// Marks an existing entry dirty (file write into a cached page).
  /// Returns false if the key is not resident.
  bool mark_dirty(std::uint64_t key);

  /// True if `key` is resident (no LRU side effects).
  bool contains(std::uint64_t key) const { return map_.contains(key); }

  /// Evicts everything, returning the dirty set (unmount/sync).
  std::vector<Writeback> flush();

  const PageCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint64_t key;
    its::SimTime ready_at;
    bool dirty;
  };
  using Lru = std::list<Entry>;  // front = most recent

  std::uint64_t capacity_;
  Lru lru_;
  std::unordered_map<std::uint64_t, Lru::iterator> map_;
  PageCacheStats stats_;
};

}  // namespace its::fs
