// Mini filesystem — the metadata side of the paper's *file I/O* path.
//
// §1 footnote 1: "Each file I/O is triggered when the CPU runs read/write
// system calls, and it involves filesystem and page cache managements."
// The paper's evaluation focuses on process (swap) I/O; this module
// completes the mini-kernel with the second path: a flat namespace of
// files laid out on the ULL device, block-mapped at page granularity.
// Metadata is considered cached (dentry/inode hits), so lookups are a
// constant-cost key computation.
#pragma once

#include "util/types.h"

#include <array>
#include <cstdint>
#include <stdexcept>

namespace its::fs {

/// File identifier as carried in trace records (one byte).
using FileId = std::uint8_t;

inline constexpr std::size_t kMaxFiles = 256;

struct FsStats {
  std::uint64_t reads = 0;        ///< read() syscalls served.
  std::uint64_t writes = 0;       ///< write() syscalls served.
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

class FileSystem {
 public:
  /// Registers (or grows) a file to at least `size_bytes`.
  void ensure_file(FileId id, its::Bytes size_bytes);

  bool exists(FileId id) const { return sizes_[id] != 0; }
  std::uint64_t size_of(FileId id) const { return sizes_[id]; }

  /// Number of registered files.
  std::size_t file_count() const;

  /// Total bytes across all files (device occupancy).
  std::uint64_t total_bytes() const;

  /// Stable page-cache key for page `page_index` of file `id`.
  /// Bits 56..63 hold the file id, so keys never collide across files and
  /// never collide with process (pid ≤ 48-bit-shifted) keys.
  static std::uint64_t page_key(FileId id, std::uint64_t page_index) {
    return (static_cast<std::uint64_t>(id) << 56) | page_index;
  }

  /// Validates a [offset, offset+size) access; throws std::out_of_range if
  /// it runs past the registered end (a trace/programming error).
  void check_access(FileId id, std::uint64_t offset, std::uint32_t size) const;

  FsStats& stats() { return stats_; }
  const FsStats& stats() const { return stats_; }

 private:
  std::array<std::uint64_t, kMaxFiles> sizes_{};
  FsStats stats_;
};

}  // namespace its::fs
