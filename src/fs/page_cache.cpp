#include "fs/page_cache.h"

#include "util/types.h"

#include <algorithm>
#include <stdexcept>

namespace its::fs {

PageCache::PageCache(its::Bytes budget_bytes)
    : capacity_(std::max<std::uint64_t>(budget_bytes >> its::kPageShift, 1)) {}

PcLookup PageCache::lookup(std::uint64_t key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return {};
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return {true, it->second->ready_at};
}

std::optional<Writeback> PageCache::insert(std::uint64_t key, its::SimTime ready_at,
                                           bool dirty) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->ready_at = std::min(it->second->ready_at, ready_at);
    it->second->dirty = it->second->dirty || dirty;
    return std::nullopt;
  }
  std::optional<Writeback> wb;
  if (map_.size() >= capacity_) {
    Entry& victim = lru_.back();
    ++stats_.evictions;
    if (victim.dirty) {
      ++stats_.dirty_writebacks;
      wb = Writeback{victim.key};
    }
    map_.erase(victim.key);
    lru_.pop_back();
  }
  lru_.push_front({key, ready_at, dirty});
  map_[key] = lru_.begin();
  ++stats_.insertions;
  return wb;
}

bool PageCache::mark_dirty(std::uint64_t key) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  it->second->dirty = true;
  return true;
}

std::vector<Writeback> PageCache::flush() {
  std::vector<Writeback> out;
  for (const Entry& e : lru_)
    if (e.dirty) out.push_back({e.key});
  lru_.clear();
  map_.clear();
  return out;
}

}  // namespace its::fs
