#include "fs/file_system.h"

#include "util/types.h"

namespace its::fs {

void FileSystem::ensure_file(FileId id, its::Bytes size_bytes) {
  if (size_bytes == 0) throw std::invalid_argument("FileSystem: zero-size file");
  if (size_bytes > sizes_[id]) sizes_[id] = size_bytes;
}

std::size_t FileSystem::file_count() const {
  std::size_t n = 0;
  for (auto s : sizes_) n += s != 0 ? 1 : 0;
  return n;
}

std::uint64_t FileSystem::total_bytes() const {
  std::uint64_t total = 0;
  for (auto s : sizes_) total += s;
  return total;
}

void FileSystem::check_access(FileId id, std::uint64_t offset,
                              std::uint32_t size) const {
  if (!exists(id)) throw std::out_of_range("FileSystem: access to unregistered file");
  // Overflow-safe bounds check: offset + size may wrap.
  if (size > sizes_[id] || offset > sizes_[id] - size)
    throw std::out_of_range("FileSystem: access past end of file");
}

}  // namespace its::fs
