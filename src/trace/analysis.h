// Trace analysis — address-stream statistics the paper's methodology
// depends on.
//
// §4.1 defines the *working set* as "the minimum memory size capable of
// capturing over 99% of accesses resulting from CPU cache misses" and the
// *memory footprint* as "the total size of memory pages accessed by a
// process"; DRAM is sized to the working set.  This module measures both
// directly from a trace, plus the locality statistics (sequentiality,
// stride distribution, page reuse) that explain why the VA-walk prefetcher
// works on some workloads and not others.
#pragma once

#include "trace/trace.h"
#include "util/types.h"

#include <cstdint>
#include <map>
#include <vector>

namespace its::trace {

/// Page-granularity access profile of one trace.
struct PageProfile {
  /// Access count per touched page, descending (hottest first).
  std::vector<std::uint64_t> counts_desc;
  std::uint64_t total_accesses = 0;
  std::uint64_t distinct_pages = 0;

  /// Bytes of the hottest pages needed to cover `coverage` (0..1] of all
  /// page touches — the paper's working-set definition at page
  /// granularity.  Returns 0 for an empty profile.
  std::uint64_t working_set_bytes(double coverage) const;

  /// Memory footprint in bytes (distinct pages × page size).
  std::uint64_t footprint_bytes() const { return distinct_pages * its::kPageSize; }
};

/// Builds the page profile in one pass over the trace.
PageProfile profile_pages(const Trace& t);

/// Locality statistics over the memory-reference stream.
struct LocalityStats {
  std::uint64_t mem_refs = 0;
  /// Fraction of consecutive refs whose addresses are within one cache
  /// line (spatially sequential).
  double sequentiality = 0.0;
  /// Fraction of consecutive refs landing on the same or the next virtual
  /// page — what the VA-walk prefetcher can exploit.
  double page_locality = 0.0;
  /// Distinct stride values among consecutive refs (clipped to the
  /// most-common 64); fewer ⇒ more regular.
  std::size_t distinct_strides = 0;
  /// Share of the single most common stride.
  double dominant_stride_share = 0.0;
};

LocalityStats analyze_locality(const Trace& t);

/// Page-granularity reuse-distance histogram: for each re-access, the
/// number of distinct pages touched since the previous access to the same
/// page.  `quantile(q)` of the result approximates the resident-set size
/// needed to keep q of re-accesses DRAM hits under LRU.
struct ReuseProfile {
  std::vector<std::uint64_t> distances;  ///< One entry per re-access, unsorted.
  std::uint64_t cold_accesses = 0;       ///< First touches (infinite distance).

  /// q-quantile of reuse distances in pages (0 if no re-accesses).
  std::uint64_t quantile_pages(double q) const;
};

ReuseProfile analyze_reuse(const Trace& t);

}  // namespace its::trace
