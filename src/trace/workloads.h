// Synthetic workload generators — the paper's nine Valgrind-captured traces.
//
// §4.1 of the paper evaluates nine traces: six general-purpose processes
// (Caffe inference, SPEC Wrf / Blender / Xz / DeepSjeng, GraphChi community
// detection) and three data-intensive processes (Graph500 single-shortest-
// path, GraphChi random walk and PageRank).  We reproduce each as a
// parameterised generator that matches the workload's access-pattern *class*
// — streaming, stencil, window reuse, pointer chasing, interval-based graph
// processing, frontier expansion — along with its footprint and working-set
// ratio.  See DESIGN.md "Substitutions" for why this preserves the
// evaluation's behaviour.
#pragma once

#include "trace/trace.h"
#include "util/types.h"

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace its::trace {

enum class WorkloadId : std::uint8_t {
  kCaffe = 0,      ///< CaffeNet inference over 160 images: weight streaming + hot activations.
  kWrf,            ///< SPEC CPU2006 Wrf: 3-D stencil sweeps.
  kBlender,        ///< SPEC CPU2017 Blender: sequential scene scan + Zipf texture lookups.
  kXz,             ///< SPEC CPU2017 Xz: sequential input + sliding-window match finding.
  kDeepSjeng,      ///< SPEC CPU2017 DeepSjeng: pointer-chasing transposition table, small WS.
  kCommunity,      ///< GraphChi community detection: interval-sequential edges + vertex window.
  kRandomWalk,     ///< GraphChi random walk: dependent random vertex hops (data-intensive).
  kPageRank,       ///< GraphChi PageRank: sequential edges + scattered rank updates (data-intensive).
  kGraph500Sssp,   ///< Graph500 SSSP: frontier bursts over a huge graph (data-intensive).
};

inline constexpr std::size_t kNumWorkloads = 9;

/// Static description of a workload's mini-scale shape.
struct WorkloadSpec {
  WorkloadId id;
  std::string_view name;
  bool data_intensive;
  its::Bytes footprint_bytes;     ///< Total region touched (memory footprint).
  its::Bytes hot_bytes;           ///< Working set (≥99 % of post-cache-miss refs).
  std::uint64_t records;          ///< Trace records to emit at scale 1.0.
};

/// Scaling knobs applied on top of a WorkloadSpec.
struct GeneratorConfig {
  double footprint_scale = 1.0;  ///< Multiplies footprint/hot sizes.
  double length_scale = 1.0;     ///< Multiplies record count.
  std::uint64_t seed = 1;        ///< RNG seed; same seed → identical trace.
};

/// All nine workload specs, in WorkloadId order.
std::span<const WorkloadSpec> all_workloads();

/// Spec for one workload.
const WorkloadSpec& spec_for(WorkloadId id);

/// Case-sensitive lookup by name ("caffe", "wrf", ...).
std::optional<WorkloadId> find_workload(std::string_view name);

/// Generates the trace for `id` under `cfg`.
Trace generate(WorkloadId id, const GeneratorConfig& cfg = {});

/// The virtual address at which generated heaps start.
inline constexpr its::VirtAddr kHeapBase = 0x560000000000ull;

}  // namespace its::trace
