#include "trace/trace.h"

#include "trace/instr.h"
#include "util/types.h"

#include <algorithm>
#include <array>
#include <unordered_set>

namespace its::trace {

TraceStats Trace::stats() const {
  TraceStats s;
  s.records = instrs_.size();
  std::unordered_set<its::Vpn> pages;
  bool first_mem = true;
  for (const auto& i : instrs_) {
    if (i.op == Op::kCompute) {
      s.instructions += i.repeat;
      continue;
    }
    ++s.instructions;
    if (i.is_file()) {
      if (i.op == Op::kFileRead)
        ++s.file_reads;
      else
        ++s.file_writes;
      s.file_bytes += i.size;
      continue;  // file offsets are not virtual addresses
    }
    ++s.mem_refs;
    if (i.op == Op::kLoad)
      ++s.loads;
    else
      ++s.stores;
    its::VirtAddr last = i.addr + (i.size ? i.size - 1 : 0);
    if (first_mem) {
      s.min_addr = i.addr;
      s.max_addr = last;
      first_mem = false;
    } else {
      s.min_addr = std::min(s.min_addr, i.addr);
      s.max_addr = std::max(s.max_addr, last);
    }
    for (its::Vpn p = its::vpn_of(i.addr); p <= its::vpn_of(last); ++p) pages.insert(p);
  }
  s.footprint_pages = pages.size();
  return s;
}

std::vector<std::pair<std::uint8_t, std::uint64_t>> Trace::file_sizes() const {
  std::array<std::uint64_t, 256> ends{};
  for (const auto& i : instrs_) {
    if (!i.is_file()) continue;
    ends[i.src2] = std::max<std::uint64_t>(ends[i.src2], i.addr + i.size);
  }
  std::vector<std::pair<std::uint8_t, std::uint64_t>> out;
  for (unsigned f = 0; f < ends.size(); ++f)
    if (ends[f] != 0) out.emplace_back(static_cast<std::uint8_t>(f), ends[f]);
  return out;
}

std::vector<its::Vpn> Trace::touched_pages() const {
  std::unordered_set<its::Vpn> pages;
  for (const auto& i : instrs_) {
    if (!i.is_mem()) continue;
    its::VirtAddr last = i.addr + (i.size ? i.size - 1 : 0);
    for (its::Vpn p = its::vpn_of(i.addr); p <= its::vpn_of(last); ++p) pages.insert(p);
  }
  std::vector<its::Vpn> out(pages.begin(), pages.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace its::trace
