#include "trace/lackey.h"

#include "trace/instr.h"
#include "trace/trace.h"
#include "util/types.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>

namespace its::trace {

namespace {

/// Parses "ADDR,SIZE" with ADDR hex and SIZE decimal.  Returns false on
/// malformed input.
bool parse_access(std::string_view s, its::VirtAddr& addr, std::uint32_t& size) {
  auto comma = s.find(',');
  if (comma == std::string_view::npos) return false;
  std::string_view a = s.substr(0, comma);
  std::string_view z = s.substr(comma + 1);
  if (a.starts_with("0x") || a.starts_with("0X")) a.remove_prefix(2);
  auto r1 = std::from_chars(a.data(), a.data() + a.size(), addr, 16);
  if (r1.ec != std::errc{} || r1.ptr != a.data() + a.size()) return false;
  // Size may be followed by trailing junk (lackey pads); parse the prefix.
  auto r2 = std::from_chars(z.data(), z.data() + z.size(), size, 10);
  return r2.ec == std::errc{} && size > 0;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\r' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

}  // namespace

Trace parse_lackey(std::istream& is, const std::string& name,
                   const LackeyOptions& opts) {
  Trace t(name);
  std::string line;
  unsigned pending_instrs = 0;
  std::uint8_t reg = 1;
  auto next_reg = [&reg]() {
    std::uint8_t r = reg;
    reg = reg == 31 ? 1 : reg + 1;
    return r;
  };
  auto flush_instrs = [&]() {
    if (pending_instrs == 0) return;
    t.push_back(Instr::compute(static_cast<std::uint16_t>(pending_instrs),
                               next_reg(), 0, 0));
    pending_instrs = 0;
  };
  const unsigned fold = opts.instr_fold ? opts.instr_fold : 1;

  std::uint64_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (opts.max_records && t.size() >= opts.max_records) break;
    std::string_view s = trim(line);
    if (s.empty()) continue;
    char kind = s.front();
    if (kind != 'I' && kind != 'L' && kind != 'S' && kind != 'M') {
      if (opts.lenient) continue;
      throw LackeyParseError("lackey line " + std::to_string(lineno) +
                             ": unknown record kind");
    }
    std::string_view rest = trim(s.substr(1));
    its::VirtAddr addr = 0;
    std::uint32_t size = 0;
    if (!parse_access(rest, addr, size)) {
      if (opts.lenient) continue;
      throw LackeyParseError("lackey line " + std::to_string(lineno) +
                             ": malformed access");
    }
    auto sz = static_cast<std::uint16_t>(size > 0xffff ? 0xffff : size);
    switch (kind) {
      case 'I':
        if (++pending_instrs >= fold) flush_instrs();
        break;
      case 'L':
        flush_instrs();
        t.push_back(Instr::load(addr, sz, next_reg(), 0));
        break;
      case 'S':
        flush_instrs();
        t.push_back(Instr::store(addr, sz, next_reg()));
        break;
      case 'M': {  // modify = load + store of the same location
        flush_instrs();
        std::uint8_t r = next_reg();
        t.push_back(Instr::load(addr, sz, r, 0));
        t.push_back(Instr::store(addr, sz, r));
        break;
      }
      default:
        break;
    }
  }
  flush_instrs();
  return t;
}

Trace load_lackey_file(const std::string& path, const LackeyOptions& opts) {
  std::ifstream f(path);
  if (!f) throw LackeyParseError("cannot open lackey file: " + path);
  auto slash = path.find_last_of('/');
  return parse_lackey(f, slash == std::string::npos ? path : path.substr(slash + 1),
                      opts);
}

void write_lackey(std::ostream& os, const Trace& t) {
  char buf[64];
  for (const auto& in : t.records()) {
    switch (in.op) {
      case Op::kCompute:
        for (unsigned k = 0; k < in.repeat; ++k) os << "I  1000,4\n";
        break;
      case Op::kLoad:
        std::snprintf(buf, sizeof buf, " L %llx,%u\n",
                      static_cast<unsigned long long>(in.addr), in.size);
        os << buf;
        break;
      case Op::kStore:
        std::snprintf(buf, sizeof buf, " S %llx,%u\n",
                      static_cast<unsigned long long>(in.addr), in.size);
        os << buf;
        break;
      case Op::kFileRead:
      case Op::kFileWrite:
        // Lackey has no syscall records; file I/O is dropped on export.
        break;
    }
  }
}

}  // namespace its::trace
