#include "trace/trace_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace its::trace {

namespace {
constexpr std::uint64_t kMagic = 0x0001435254535449ull;  // "ITSTRC\1\0"

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw TraceIoError("trace stream truncated");
  return v;
}
}  // namespace

void write_trace(std::ostream& os, const Trace& t) {
  put(os, kMagic);
  auto name_len = static_cast<std::uint32_t>(t.name().size());
  put(os, name_len);
  os.write(t.name().data(), name_len);
  put(os, static_cast<std::uint64_t>(t.size()));
  auto recs = t.records();
  os.write(reinterpret_cast<const char*>(recs.data()),
           static_cast<std::streamsize>(recs.size_bytes()));
  if (!os) throw TraceIoError("trace write failed");
}

Trace read_trace(std::istream& is) {
  if (get<std::uint64_t>(is) != kMagic) throw TraceIoError("bad trace magic");
  auto name_len = get<std::uint32_t>(is);
  std::string name(name_len, '\0');
  is.read(name.data(), name_len);
  if (!is) throw TraceIoError("trace stream truncated");
  auto count = get<std::uint64_t>(is);
  Trace t(std::move(name));
  t.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) t.push_back(get<Instr>(is));
  return t;
}

void save_trace_file(const std::string& path, const Trace& t) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw TraceIoError("cannot open for write: " + path);
  write_trace(f, t);
}

Trace load_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw TraceIoError("cannot open for read: " + path);
  return read_trace(f);
}

}  // namespace its::trace
