#include "trace/trace_io.h"

#include "trace/instr.h"
#include "trace/trace.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace its::trace {

namespace {

constexpr std::uint64_t kMagic = 0x0001435254535449ull;  // "ITSTRC\1\0"

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

/// Cursor-tracking reader: every failure reports the byte offset where the
/// stream ran out or the field went bad.
struct Reader {
  std::istream& is;
  std::uint64_t off = 0;

  template <typename T>
  T get(const char* what) {
    T v{};
    is.read(reinterpret_cast<char*>(&v), sizeof v);
    if (!is)
      throw TraceIoError(TraceIoErrc::kTruncated, off,
                         std::string("trace stream truncated in ") + what);
    off += sizeof v;
    return v;
  }

  void get_bytes(char* dst, std::uint64_t n, const char* what) {
    is.read(dst, static_cast<std::streamsize>(n));
    if (!is)
      throw TraceIoError(TraceIoErrc::kTruncated, off,
                         std::string("trace stream truncated in ") + what);
    off += n;
  }

  /// Bytes left until EOF when the stream is seekable; max u64 otherwise.
  std::uint64_t remaining() {
    const std::istream::pos_type cur = is.tellg();
    if (cur == std::istream::pos_type(-1)) return ~0ull;
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end = is.tellg();
    is.seekg(cur);
    if (end == std::istream::pos_type(-1) || end < cur) return ~0ull;
    return static_cast<std::uint64_t>(end - cur);
  }
};

}  // namespace

std::string_view errc_name(TraceIoErrc c) {
  switch (c) {
    case TraceIoErrc::kOpenFailed:    return "open_failed";
    case TraceIoErrc::kBadMagic:      return "bad_magic";
    case TraceIoErrc::kTruncated:     return "truncated";
    case TraceIoErrc::kNameTooLong:   return "name_too_long";
    case TraceIoErrc::kCountTooLarge: return "count_too_large";
    case TraceIoErrc::kBadOpcode:     return "bad_opcode";
    case TraceIoErrc::kBadRecord:     return "bad_record";
    case TraceIoErrc::kWriteFailed:   return "write_failed";
  }
  return "unknown";
}

TraceIoError::TraceIoError(TraceIoErrc code, std::uint64_t offset,
                           const std::string& what)
    : std::runtime_error(what + " [" + std::string(errc_name(code)) +
                         " at byte " + std::to_string(offset) + "]"),
      code_(code),
      offset_(offset) {}

void write_trace(std::ostream& os, const Trace& t) {
  put(os, kMagic);
  auto name_len = static_cast<std::uint32_t>(t.name().size());
  put(os, name_len);
  os.write(t.name().data(), name_len);
  put(os, static_cast<std::uint64_t>(t.size()));
  auto recs = t.records();
  os.write(reinterpret_cast<const char*>(recs.data()),
           static_cast<std::streamsize>(recs.size_bytes()));
  if (!os) throw TraceIoError(TraceIoErrc::kWriteFailed, 0, "trace write failed");
}

Trace read_trace(std::istream& is) {
  Reader r{is};

  const std::uint64_t magic_off = r.off;
  if (r.get<std::uint64_t>("magic") != kMagic)
    throw TraceIoError(TraceIoErrc::kBadMagic, magic_off, "bad trace magic");

  const std::uint64_t name_len_off = r.off;
  const auto name_len = r.get<std::uint32_t>("name length");
  if (name_len > kMaxTraceNameLen)
    throw TraceIoError(TraceIoErrc::kNameTooLong, name_len_off,
                       "trace name length " + std::to_string(name_len) +
                           " exceeds the " +
                           std::to_string(kMaxTraceNameLen) + " byte cap");
  std::string name(name_len, '\0');
  if (name_len != 0) r.get_bytes(name.data(), name_len, "name");

  const std::uint64_t count_off = r.off;
  const auto count = r.get<std::uint64_t>("record count");
  // Before reserving anything, reject headers that promise more records
  // than the stream can possibly hold — a 4-byte corrupt count must not
  // become a multi-gigabyte allocation.
  const std::uint64_t left = r.remaining();
  if (count > left / sizeof(Instr))
    throw TraceIoError(TraceIoErrc::kCountTooLarge, count_off,
                       "record count " + std::to_string(count) +
                           " exceeds the " + std::to_string(left) +
                           " bytes remaining in the stream");

  Trace t(std::move(name));
  t.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::uint64_t rec_off = r.off;
    Instr in = r.get<Instr>("record");
    if (static_cast<std::uint8_t>(in.op) >
        static_cast<std::uint8_t>(Op::kFileWrite))
      throw TraceIoError(
          TraceIoErrc::kBadOpcode, rec_off,
          "record " + std::to_string(k) + " has opcode " +
              std::to_string(static_cast<unsigned>(in.op)));
    if (in.op == Op::kCompute && in.repeat == 0)
      throw TraceIoError(TraceIoErrc::kBadRecord, rec_off,
                         "record " + std::to_string(k) +
                             " is a compute op with repeat 0");
    t.push_back(in);
  }
  return t;
}

void save_trace_file(const std::string& path, const Trace& t) {
  std::ofstream f(path, std::ios::binary);
  if (!f)
    throw TraceIoError(TraceIoErrc::kOpenFailed, 0,
                       "cannot open for write: " + path);
  write_trace(f, t);
}

Trace load_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw TraceIoError(TraceIoErrc::kOpenFailed, 0,
                       "cannot open for read: " + path);
  return read_trace(f);
}

}  // namespace its::trace
