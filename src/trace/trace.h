// Trace container: an immutable-after-build sequence of Instr records plus
// derived address-space statistics that the simulator uses for DRAM sizing.
#pragma once

#include "trace/instr.h"
#include "util/types.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace its::trace {

/// Derived statistics over a trace's address stream.
struct TraceStats {
  std::uint64_t records = 0;        ///< Number of Instr records.
  std::uint64_t instructions = 0;   ///< Records with compute `repeat` expanded.
  std::uint64_t mem_refs = 0;       ///< Loads + stores.
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t file_reads = 0;     ///< read() syscall records.
  std::uint64_t file_writes = 0;    ///< write() syscall records.
  its::Bytes file_bytes = 0;        ///< Bytes moved through file I/O.
  std::uint64_t footprint_pages = 0;  ///< Distinct 4 KiB pages touched (VM only).
  its::VirtAddr min_addr = 0;
  its::VirtAddr max_addr = 0;  ///< Highest address touched (inclusive of size).
};

/// A finite instruction trace for one process.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  void reserve(std::size_t n) { instrs_.reserve(n); }
  void push_back(const Instr& i) { instrs_.push_back(i); }

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::size_t size() const { return instrs_.size(); }
  bool empty() const { return instrs_.empty(); }
  const Instr& operator[](std::size_t i) const { return instrs_[i]; }
  std::span<const Instr> records() const { return instrs_; }

  /// Computes derived statistics in one pass (O(records) time,
  /// O(footprint) memory for the distinct-page set).
  TraceStats stats() const;

  /// Set of distinct virtual pages touched, sorted ascending.
  std::vector<its::Vpn> touched_pages() const;

  /// Per-file maximum end offset referenced by file I/O records, as
  /// (file id, size) pairs — used to register files before simulation.
  std::vector<std::pair<std::uint8_t, std::uint64_t>> file_sizes() const;

  friend bool operator==(const Trace&, const Trace&) = default;

 private:
  std::string name_;
  std::vector<Instr> instrs_;
};

}  // namespace its::trace
