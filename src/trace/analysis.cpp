#include "trace/analysis.h"

#include "trace/trace.h"
#include "util/quantile.h"
#include "util/types.h"

#include <algorithm>
#include <unordered_map>

namespace its::trace {

std::uint64_t PageProfile::working_set_bytes(double coverage) const {
  if (total_accesses == 0) return 0;
  coverage = std::clamp(coverage, 0.0, 1.0);
  auto target = static_cast<std::uint64_t>(coverage * static_cast<double>(total_accesses));
  std::uint64_t seen = 0;
  std::uint64_t pages = 0;
  for (std::uint64_t c : counts_desc) {
    if (seen >= target) break;
    seen += c;
    ++pages;
  }
  return pages * its::kPageSize;
}

PageProfile profile_pages(const Trace& t) {
  std::unordered_map<its::Vpn, std::uint64_t> counts;
  for (const auto& in : t.records()) {
    if (!in.is_mem()) continue;
    ++counts[its::vpn_of(in.addr)];
  }
  PageProfile p;
  p.distinct_pages = counts.size();
  p.counts_desc.reserve(counts.size());
  for (const auto& [vpn, c] : counts) {
    p.counts_desc.push_back(c);
    p.total_accesses += c;
  }
  std::sort(p.counts_desc.begin(), p.counts_desc.end(), std::greater<>());
  return p;
}

LocalityStats analyze_locality(const Trace& t) {
  LocalityStats s;
  std::map<std::int64_t, std::uint64_t> strides;
  bool have_prev = false;
  its::VirtAddr prev = 0;
  for (const auto& in : t.records()) {
    if (!in.is_mem()) continue;
    ++s.mem_refs;
    if (have_prev) {
      auto delta = static_cast<std::int64_t>(in.addr) - static_cast<std::int64_t>(prev);
      std::uint64_t mag = delta < 0 ? static_cast<std::uint64_t>(-delta)
                                    : static_cast<std::uint64_t>(delta);
      if (mag <= its::kCacheLineSize) s.sequentiality += 1.0;
      its::Vpn pv = its::vpn_of(prev);
      its::Vpn cv = its::vpn_of(in.addr);
      if (cv == pv || cv == pv + 1) s.page_locality += 1.0;
      ++strides[delta];
    }
    prev = in.addr;
    have_prev = true;
  }
  if (s.mem_refs > 1) {
    double pairs = static_cast<double>(s.mem_refs - 1);
    s.sequentiality /= pairs;
    s.page_locality /= pairs;
    s.distinct_strides = std::min<std::size_t>(strides.size(), 64);
    std::uint64_t top = 0;
    for (const auto& [d, c] : strides) top = std::max(top, c);
    s.dominant_stride_share = static_cast<double>(top) / pairs;
  }
  return s;
}

namespace {
/// Fenwick tree over access indices, used for exact LRU stack distances at
/// page granularity.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}
  void add(std::size_t i, std::int64_t v) {
    for (++i; i < tree_.size(); i += i & (~i + 1)) tree_[i] += v;
  }
  std::int64_t prefix(std::size_t i) const {  // sum of [0, i]
    std::int64_t s = 0;
    for (++i; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }
  std::int64_t total() const { return prefix(tree_.size() - 2); }

 private:
  std::vector<std::int64_t> tree_;
};
}  // namespace

ReuseProfile analyze_reuse(const Trace& t) {
  // Classic Mattson stack-distance computation: one marker per page at its
  // most recent access index; the reuse distance of a re-access is the
  // number of markers strictly after the page's previous access.
  std::uint64_t refs = 0;
  for (const auto& in : t.records()) refs += in.is_mem() ? 1u : 0u;

  ReuseProfile r;
  Fenwick fw(refs + 1);
  std::unordered_map<its::Vpn, std::size_t> last;  // page → access index
  std::size_t idx = 0;
  for (const auto& in : t.records()) {
    if (!in.is_mem()) continue;
    its::Vpn vpn = its::vpn_of(in.addr);
    auto it = last.find(vpn);
    if (it == last.end()) {
      ++r.cold_accesses;
    } else {
      // Markers after the previous access, excluding the page's own marker.
      std::int64_t after = fw.total() - fw.prefix(it->second);
      r.distances.push_back(static_cast<std::uint64_t>(after));
      fw.add(it->second, -1);
    }
    fw.add(idx, +1);
    last[vpn] = idx;
    ++idx;
  }
  return r;
}

std::uint64_t ReuseProfile::quantile_pages(double q) const {
  if (distances.empty()) return 0;
  // Sized to the population, the digest stays in exact mode and returns
  // the order statistic at ⌊q·(n−1)⌋ — the same answer the ad-hoc
  // sort-and-index here always produced (tests/quantile_test.cpp pins the
  // equivalence).
  util::QuantileDigest d(distances.size());
  for (std::uint64_t v : distances) d.add(v);
  return d.quantile(q);
}

}  // namespace its::trace
