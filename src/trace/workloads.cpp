#include "trace/workloads.h"

#include "trace/instr.h"
#include "trace/trace.h"
#include "util/rng.h"
#include "util/types.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace its::trace {

namespace {

using its::util::Rng;

// Mini-scale shapes.  Footprints are ~100x smaller than the real benchmarks
// so a full 6-process batch simulates in under a second; the *ratios*
// (footprint vs working set vs DRAM) drive the evaluation and are preserved.
constexpr std::array<WorkloadSpec, kNumWorkloads> kSpecs{{
    {WorkloadId::kCaffe, "caffe", false, 24ull << 20, 12ull << 20, 520000},
    {WorkloadId::kWrf, "wrf", false, 20ull << 20, 10ull << 20, 520000},
    {WorkloadId::kBlender, "blender", false, 18ull << 20, 9ull << 20, 520000},
    {WorkloadId::kXz, "xz", false, 16ull << 20, 8ull << 20, 480000},
    {WorkloadId::kDeepSjeng, "deepsjeng", false, 12ull << 20, 4ull << 20, 480000},
    {WorkloadId::kCommunity, "community", false, 32ull << 20, 16ull << 20, 560000},
    // Data-intensive graph workloads address *sparse* regions: only about
    // half the pages in their footprint region are ever touched (real CSR
    // heaps are hole-ridden), which is what defeats spatial prefetching.
    {WorkloadId::kRandomWalk, "randwalk", true, 96ull << 20, 32ull << 20, 600000},
    {WorkloadId::kPageRank, "pagerank", true, 96ull << 20, 36ull << 20, 600000},
    {WorkloadId::kGraph500Sssp, "graph500", true, 128ull << 20, 40ull << 20, 620000},
}};

/// Emission helper shared by all generators: rotates destination registers,
/// remembers the register produced by the most recent load (for dependent /
/// pointer-chasing address bases), and tracks the record budget.
class Builder {
 public:
  Builder(const WorkloadSpec& spec, const GeneratorConfig& cfg)
      : trace_(std::string(spec.name)),
        rng_(cfg.seed, static_cast<std::uint64_t>(spec.id) + 0x9e37ull),
        budget_(static_cast<std::uint64_t>(static_cast<double>(spec.records) *
                                           cfg.length_scale)),
        footprint_(scale(spec.footprint_bytes, cfg.footprint_scale)),
        hot_(scale(spec.hot_bytes, cfg.footprint_scale)) {
    trace_.reserve(budget_);
  }

  static its::Bytes scale(its::Bytes bytes, double f) {
    // its-lint: allow(units-narrow): footprint scaling factor is a double
    auto v = static_cast<std::uint64_t>(static_cast<double>(bytes) * f);
    return std::max<std::uint64_t>(v & ~its::kPageOffsetMask, its::kPageSize);
  }

  bool done() const { return trace_.size() >= budget_; }
  std::uint64_t budget() const { return budget_; }
  Rng& rng() { return rng_; }
  std::uint64_t footprint() const { return footprint_; }
  std::uint64_t hot() const { return hot_; }

  /// Emits `n` folded compute ops reading the two most recent results.
  void compute(std::uint16_t n) {
    std::uint8_t d = fresh_reg();
    trace_.push_back(Instr::compute(n, d, prev1_, prev2_));
    rotate(d);
  }

  /// Emits a load with an always-valid (index-register) address base.
  /// Returns the destination register.
  std::uint8_t load(its::VirtAddr a, std::uint16_t size = 8) {
    std::uint8_t d = fresh_reg();
    trace_.push_back(Instr::load(clamp(a), size, d, /*addr_base=*/0));
    rotate(d);
    last_load_ = d;
    return d;
  }

  /// Emits a load whose address depends on the previous load's result
  /// (pointer chase): pre-execution must poison it once the chain breaks.
  std::uint8_t chase_load(its::VirtAddr a, std::uint16_t size = 8) {
    std::uint8_t d = fresh_reg();
    trace_.push_back(Instr::load(clamp(a), size, d, /*addr_base=*/last_load_));
    rotate(d);
    last_load_ = d;
    return d;
  }

  void store(its::VirtAddr a, std::uint16_t size = 8) {
    trace_.push_back(Instr::store(clamp(a), size, /*data_src=*/prev1_));
  }

  Trace take() && { return std::move(trace_); }

 private:
  its::VirtAddr clamp(its::VirtAddr a) const {
    // Keep every access inside [heap, heap + footprint).
    std::uint64_t off = (a - kHeapBase) % footprint_;
    return kHeapBase + off;
  }

  std::uint8_t fresh_reg() {
    std::uint8_t r = next_;
    next_ = (next_ == kNumRegs - 1) ? 1 : next_ + 1;
    return r;
  }
  void rotate(std::uint8_t d) {
    prev2_ = prev1_;
    prev1_ = d;
  }

  Trace trace_;
  Rng rng_;
  std::uint64_t budget_;
  std::uint64_t footprint_;
  std::uint64_t hot_;
  std::uint8_t next_ = 1;
  std::uint8_t prev1_ = 0;
  std::uint8_t prev2_ = 0;
  std::uint8_t last_load_ = 0;
};

// --- Caffe: layer-by-layer weight streaming + hot activation buffer. ------
Trace gen_caffe(const WorkloadSpec& s, const GeneratorConfig& cfg) {
  Builder b(s, cfg);
  const std::uint64_t weights = b.footprint() - b.hot();
  const its::VirtAddr act_base = kHeapBase + weights;
  its::VirtAddr wp = kHeapBase;
  while (!b.done()) {
    // Stream a 4 KiB weight tile sequentially in cache-line steps.
    for (int i = 0; i < 64 && !b.done(); ++i) {
      b.load(wp, 64);
      b.compute(3);
      if (i % 8 == 7) {
        its::VirtAddr a = act_base + b.rng().below(b.hot());
        b.load(a, 8);
        b.store(a, 8);
      }
      wp += 64;
    }
    if (wp >= kHeapBase + weights) wp = kHeapBase;  // next image / layer pass
  }
  return std::move(b).take();
}

// --- Wrf: 3-D stencil sweeps over a grid of doubles. ----------------------
Trace gen_wrf(const WorkloadSpec& s, const GeneratorConfig& cfg) {
  Builder b(s, cfg);
  const std::uint64_t cells = b.footprint() / 8;
  const std::uint64_t row = 512;          // cells per row
  const std::uint64_t plane = row * 64;   // cells per plane
  // Each stencil visit emits 9 records; stride the sweep so ~1.5 passes
  // cover the whole grid within the record budget (coarse-grained domain
  // decomposition — page-sequential, which is what the VA prefetcher sees).
  const std::uint64_t visits = std::max<std::uint64_t>(1, b.budget() / 9);
  const std::uint64_t stride = std::max<std::uint64_t>(1, (3 * cells / 2) / visits);
  std::uint64_t c = plane + row + 1 + b.rng().below(cells);
  while (!b.done()) {
    auto at = [&](std::uint64_t idx) { return kHeapBase + (idx % cells) * 8; };
    b.load(at(c), 8);
    b.load(at(c - 1), 8);
    b.load(at(c + 1), 8);
    b.load(at(c - row), 8);
    b.load(at(c + row), 8);
    b.load(at(c - plane), 8);
    b.load(at(c + plane), 8);
    b.compute(6);
    b.store(at(c), 8);
    c += stride;
  }
  return std::move(b).take();
}

// --- Blender: sequential scene scan + Zipf texture lookups. ---------------
Trace gen_blender(const WorkloadSpec& s, const GeneratorConfig& cfg) {
  Builder b(s, cfg);
  const std::uint64_t scene = b.footprint() / 2;
  const its::VirtAddr tex_base = kHeapBase + scene;
  const std::uint64_t tex = b.footprint() - scene;
  its::VirtAddr sp = kHeapBase;
  while (!b.done()) {
    b.load(sp, 64);  // geometry stream
    b.compute(8);
    // Texture sample: Zipf-skewed so the hot set ~= spec.hot.
    std::uint64_t t = b.rng().zipf(tex / 64, 0.9) * 64;
    b.load(tex_base + t, 16);
    b.compute(6);
    if (b.rng().chance(0.25)) b.store(sp, 16);  // framebuffer-ish write
    sp += 64;
    if (sp >= kHeapBase + scene) sp = kHeapBase;
  }
  return std::move(b).take();
}

// --- Xz: sequential input scan + sliding-window match finder. -------------
Trace gen_xz(const WorkloadSpec& s, const GeneratorConfig& cfg) {
  Builder b(s, cfg);
  const std::uint64_t window = b.hot();
  its::VirtAddr ip = kHeapBase + window;
  while (!b.done()) {
    b.load(ip, 64);  // read input
    b.compute(4);
    // Probe up to 3 candidate matches uniformly inside the trailing window.
    for (int k = 0; k < 3 && !b.done(); ++k) {
      std::uint64_t back = 64 + b.rng().below(window - 64);
      b.load(ip - back, 32);
      b.compute(2);
    }
    b.store(ip - window + (ip % window), 16);  // emit compressed block
    ip += 64;
  }
  return std::move(b).take();
}

// --- DeepSjeng: transposition-table pointer chasing, small working set. ---
Trace gen_deepsjeng(const WorkloadSpec& s, const GeneratorConfig& cfg) {
  Builder b(s, cfg);
  const std::uint64_t slots = b.footprint() / 64;
  const std::uint64_t hot_slots = b.hot() / 64;
  while (!b.done()) {
    // Probe: Zipf-hot slot, then a short dependent chain (bucket walk).
    std::uint64_t slot = b.rng().chance(0.92) ? b.rng().zipf(hot_slots, 1.05)
                                              : b.rng().below(slots);
    b.load(kHeapBase + slot * 64, 16);
    for (int d = 0; d < 2 && !b.done(); ++d) {
      slot = (slot * 2654435761ull + 17) % slots;
      b.chase_load(kHeapBase + slot * 64, 16);
    }
    b.compute(24);  // search/eval is compute-heavy
    if (b.rng().chance(0.3)) b.store(kHeapBase + slot * 64, 16);
  }
  return std::move(b).take();
}

// --- Community detection (GraphChi): interval-sequential edge scans. ------
Trace gen_community(const WorkloadSpec& s, const GeneratorConfig& cfg) {
  Builder b(s, cfg);
  const std::uint64_t edges = b.footprint() * 3 / 4;
  const its::VirtAddr vert_base = kHeapBase + edges;
  const std::uint64_t verts = b.footprint() - edges;
  // its-lint: allow(units-alias-decl): GraphChi "interval" is a vertex window
  const std::uint64_t interval = std::min<std::uint64_t>(verts, b.hot() / 4);
  its::VirtAddr ep = kHeapBase;
  std::uint64_t win = 0;
  while (!b.done()) {
    // GraphChi shards stream edges sequentially per interval...
    for (int i = 0; i < 32 && !b.done(); ++i) {
      b.load(ep, 16);
      b.compute(2);
      // ...while label updates hit vertices inside the current interval.
      std::uint64_t v = win + b.rng().below(interval);
      b.load(vert_base + v % verts, 8);
      b.store(vert_base + v % verts, 8);
      ep += 16;
    }
    if (ep >= kHeapBase + edges) {
      ep = kHeapBase;
      win = (win + interval) % verts;  // slide to next interval
    }
  }
  return std::move(b).take();
}

/// Scattered subset of a region's pages (CSR heaps are hole-ridden): each
/// page is active with probability `occupancy`.  Touches land only on
/// active pages, so the untouched neighbours become prefetch junk — the
/// effect that makes spatial prefetching inaccurate on graph workloads.
std::vector<std::uint32_t> sparse_pages(Rng& rng, std::uint64_t region_pages,
                                        double occupancy) {
  std::vector<std::uint32_t> pages;
  pages.reserve(static_cast<std::size_t>(static_cast<double>(region_pages) * occupancy) + 1);
  for (std::uint64_t p = 0; p < region_pages; ++p)
    if (rng.chance(occupancy)) pages.push_back(static_cast<std::uint32_t>(p));
  if (pages.empty()) pages.push_back(0);
  return pages;
}

// --- Random walk: dependent random hops over a sparse vertex region. ------
Trace gen_randwalk(const WorkloadSpec& s, const GeneratorConfig& cfg) {
  Builder b(s, cfg);
  auto active = sparse_pages(b.rng(), b.footprint() >> its::kPageShift, 0.5);
  const std::uint64_t hot_n = std::min<std::uint64_t>(
      active.size(), std::max<std::uint64_t>(1, b.hot() >> its::kPageShift));
  while (!b.done()) {
    // Each hop's address depends on the previous hop's loaded value.
    std::uint64_t page = b.rng().chance(0.7) ? active[b.rng().below(hot_n)]
                                             : active[b.rng().below(active.size())];
    its::VirtAddr a = kHeapBase + (static_cast<its::VirtAddr>(page) << its::kPageShift) +
                      b.rng().below(63) * 64;
    b.chase_load(a, 16);
    b.compute(2);
    if (b.rng().chance(0.15)) b.store(a, 8);
  }
  return std::move(b).take();
}

// --- PageRank: sequential edge scan + scattered sparse rank updates. ------
Trace gen_pagerank(const WorkloadSpec& s, const GeneratorConfig& cfg) {
  Builder b(s, cfg);
  const std::uint64_t edges = b.footprint() / 4;  // dense edge shard
  const its::VirtAddr rank_base = kHeapBase + edges;
  auto active =
      sparse_pages(b.rng(), (b.footprint() - edges) >> its::kPageShift, 0.5);
  its::VirtAddr ep = kHeapBase;
  while (!b.done()) {
    b.load(ep, 16);  // edge (src, dst)
    b.compute(1);
    // Scatter: uniform destination over the sparse rank region — the
    // data-intensive part that defeats locality-based prefetching.
    std::uint64_t page = active[b.rng().below(active.size())];
    its::VirtAddr a = rank_base + (static_cast<its::VirtAddr>(page) << its::kPageShift) +
                      b.rng().below(511) * 8;
    b.load(a, 8);
    b.store(a, 8);
    ep += 16;
    if (ep >= kHeapBase + edges) ep = kHeapBase;
  }
  return std::move(b).take();
}

// --- Graph500 SSSP: frontier expansion bursts over a sparse graph. --------
Trace gen_graph500(const WorkloadSpec& s, const GeneratorConfig& cfg) {
  Builder b(s, cfg);
  auto active = sparse_pages(b.rng(), b.footprint() >> its::kPageShift, 0.45);
  auto pick = [&]() {
    return kHeapBase +
           (static_cast<its::VirtAddr>(active[b.rng().below(active.size())])
            << its::kPageShift);
  };
  while (!b.done()) {
    // Pop a frontier vertex (random), then scan its adjacency run (short
    // sequential burst within the vertex's page), relaxing random
    // neighbours.
    its::VirtAddr adj = pick();
    std::uint64_t deg = 2 + b.rng().geometric(0.35);
    for (std::uint64_t e = 0; e < deg && !b.done(); ++e) {
      b.load(adj + (e % 64) * 64, 16);
      b.compute(1);
      its::VirtAddr dist = pick() + b.rng().below(511) * 8;
      b.chase_load(dist, 8);  // dist[neighbour] — depends on edge load
      if (b.rng().chance(0.4)) b.store(dist, 8);
    }
  }
  return std::move(b).take();
}

}  // namespace

std::span<const WorkloadSpec> all_workloads() { return kSpecs; }

const WorkloadSpec& spec_for(WorkloadId id) {
  auto idx = static_cast<std::size_t>(id);
  if (idx >= kSpecs.size()) throw std::out_of_range("bad WorkloadId");
  return kSpecs[idx];
}

std::optional<WorkloadId> find_workload(std::string_view name) {
  for (const auto& s : kSpecs)
    if (s.name == name) return s.id;
  return std::nullopt;
}

Trace generate(WorkloadId id, const GeneratorConfig& cfg) {
  const WorkloadSpec& s = spec_for(id);
  switch (id) {
    case WorkloadId::kCaffe: return gen_caffe(s, cfg);
    case WorkloadId::kWrf: return gen_wrf(s, cfg);
    case WorkloadId::kBlender: return gen_blender(s, cfg);
    case WorkloadId::kXz: return gen_xz(s, cfg);
    case WorkloadId::kDeepSjeng: return gen_deepsjeng(s, cfg);
    case WorkloadId::kCommunity: return gen_community(s, cfg);
    case WorkloadId::kRandomWalk: return gen_randwalk(s, cfg);
    case WorkloadId::kPageRank: return gen_pagerank(s, cfg);
    case WorkloadId::kGraph500Sssp: return gen_graph500(s, cfg);
  }
  throw std::out_of_range("bad WorkloadId");
}

}  // namespace its::trace
