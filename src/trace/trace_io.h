// Binary trace (de)serialisation.
//
// Format (little-endian):
//   magic     u64  'ITSTRC\1\0'
//   name_len  u32, name bytes
//   count     u64, count * sizeof(Instr) record bytes
//
// The paper captures traces with Valgrind and feeds them to its simulator;
// this module gives the same decoupling — generate once, re-run many times.
//
// The reader is defensive: truncated streams, corrupt headers, out-of-range
// opcodes and oversized length fields all raise TraceIoError with a typed
// reason and the byte offset of the defect, never UB or an allocation bomb.
#pragma once

#include "trace/trace.h"

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

namespace its::trace {

/// Why a trace failed to (de)serialise.
enum class TraceIoErrc {
  kOpenFailed,     ///< File could not be opened.
  kBadMagic,       ///< First 8 bytes are not the trace magic.
  kTruncated,      ///< Stream ended inside a header field or record.
  kNameTooLong,    ///< name_len exceeds kMaxTraceNameLen.
  kCountTooLarge,  ///< count promises more records than the stream holds.
  kBadOpcode,      ///< Record opcode outside the Op enum.
  kBadRecord,      ///< Record fields are internally inconsistent.
  kWriteFailed,    ///< Output stream error.
};

/// Loader sanity caps: a trace name is a short label, never a payload.
inline constexpr std::uint32_t kMaxTraceNameLen = 1u << 16;

std::string_view errc_name(TraceIoErrc c);

/// Thrown on malformed input or I/O failure.  `offset()` is the byte
/// position (from the start of the stream) where the defect was detected;
/// 0 when no position applies (e.g. open failures).
class TraceIoError : public std::runtime_error {
 public:
  TraceIoError(TraceIoErrc code, std::uint64_t offset, const std::string& what);

  TraceIoErrc code() const { return code_; }
  std::uint64_t offset() const { return offset_; }

 private:
  TraceIoErrc code_;
  std::uint64_t offset_;
};

void write_trace(std::ostream& os, const Trace& t);
Trace read_trace(std::istream& is);

void save_trace_file(const std::string& path, const Trace& t);
Trace load_trace_file(const std::string& path);

}  // namespace its::trace
