// Binary trace (de)serialisation.
//
// Format (little-endian):
//   magic     u64  'ITSTRC\1\0'
//   name_len  u32, name bytes
//   count     u64, count * sizeof(Instr) record bytes
//
// The paper captures traces with Valgrind and feeds them to its simulator;
// this module gives the same decoupling — generate once, re-run many times.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "trace/trace.h"

namespace its::trace {

/// Thrown on malformed input or I/O failure.
class TraceIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void write_trace(std::ostream& os, const Trace& t);
Trace read_trace(std::istream& is);

void save_trace_file(const std::string& path, const Trace& t);
Trace load_trace_file(const std::string& path);

}  // namespace its::trace
