// Trace instruction record.
//
// The simulator is trace-driven: each process is a finite sequence of
// instruction records captured (in the paper, via Valgrind) or synthesised
// (in this reproduction) ahead of time.  A record carries just enough
// architectural information for the fault-aware pre-execute engine to do
// INV-bit dependence tracking: an opcode, destination/source registers, and
// the virtual address touched by memory operations.
#pragma once

#include "util/types.h"

#include <cstdint>

namespace its::trace {

/// Number of architectural registers modelled. Register 0 is a hard-wired
/// zero register and is always valid (never poisoned by pre-execution).
inline constexpr unsigned kNumRegs = 32;

enum class Op : std::uint8_t {
  kCompute = 0,  ///< ALU work; `repeat` consecutive 1-cycle ops folded into one record.
  kLoad = 1,     ///< Memory read of `size` bytes at `addr` into `dst`.
  kStore = 2,    ///< Memory write of `size` bytes at `addr` from `src1`.
  // File I/O path (§1 footnote 1): read/write system calls served through
  // the filesystem + page cache.  `addr` is the byte offset inside the
  // file identified by `src2`.
  kFileRead = 3,   ///< read(fd=src2, offset=addr, len=size) into `dst`.
  kFileWrite = 4,  ///< write(fd=src2, offset=addr, len=size) from `src1`.
};

/// One trace record (16 bytes, trivially copyable — traces are serialised
/// as flat arrays of these).
struct Instr {
  its::VirtAddr addr = 0;   ///< Virtual address (loads/stores; 0 for compute).
  Op op = Op::kCompute;
  std::uint8_t dst = 0;     ///< Destination register (loads/compute).
  std::uint8_t src1 = 0;    ///< Source register (store data / addr base).
  std::uint8_t src2 = 0;    ///< Second source register (addr index).
  std::uint16_t size = 0;   ///< Access size in bytes (loads/stores).
  std::uint16_t repeat = 1; ///< Folded op count (compute only; >= 1).

  static Instr compute(std::uint16_t repeat, std::uint8_t dst, std::uint8_t s1,
                       std::uint8_t s2) {
    Instr i;
    i.op = Op::kCompute;
    i.repeat = repeat ? repeat : 1;
    i.dst = dst;
    i.src1 = s1;
    i.src2 = s2;
    return i;
  }
  static Instr load(its::VirtAddr a, std::uint16_t size, std::uint8_t dst,
                    std::uint8_t addr_base, std::uint8_t addr_index = 0) {
    Instr i;
    i.op = Op::kLoad;
    i.addr = a;
    i.size = size;
    i.dst = dst;
    i.src1 = addr_base;
    i.src2 = addr_index;
    return i;
  }
  static Instr store(its::VirtAddr a, std::uint16_t size, std::uint8_t data_src,
                     std::uint8_t addr_base = 0) {
    Instr i;
    i.op = Op::kStore;
    i.addr = a;
    i.size = size;
    i.src1 = data_src;
    i.src2 = addr_base;
    return i;
  }

  static Instr file_read(std::uint8_t file, std::uint64_t offset, std::uint16_t size,
                         std::uint8_t dst) {
    Instr i;
    i.op = Op::kFileRead;
    i.addr = offset;
    i.size = size;
    i.dst = dst;
    i.src2 = file;
    return i;
  }
  static Instr file_write(std::uint8_t file, std::uint64_t offset, std::uint16_t size,
                          std::uint8_t data_src) {
    Instr i;
    i.op = Op::kFileWrite;
    i.addr = offset;
    i.size = size;
    i.src1 = data_src;
    i.src2 = file;
    return i;
  }

  /// Virtual-memory data access (load/store) — *not* file I/O.
  bool is_mem() const { return op == Op::kLoad || op == Op::kStore; }
  /// File-I/O system call.
  bool is_file() const { return op == Op::kFileRead || op == Op::kFileWrite; }

  friend bool operator==(const Instr&, const Instr&) = default;
};

static_assert(sizeof(Instr) == 16, "Instr must stay 16 bytes (trace file ABI)");

}  // namespace its::trace
