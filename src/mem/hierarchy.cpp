#include "mem/hierarchy.h"

#include "util/types.h"

#include <algorithm>

namespace its::mem {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& cfg)
    : cfg_(cfg), l1_(cfg.l1), l2_(cfg.l2), llc_(cfg.llc) {}

AccessResult CacheHierarchy::access_line(its::PhysAddr addr) {
  if (l1_.access(addr)) return {HitLevel::kL1, cfg_.l1.hit_latency};
  if (l2_.access(addr)) {
    l1_.fill(addr);
    return {HitLevel::kL2, cfg_.l1.hit_latency + cfg_.l2.hit_latency};
  }
  if (llc_.access(addr)) {
    l2_.fill(addr);
    l1_.fill(addr);
    return {HitLevel::kLlc,
            cfg_.l1.hit_latency + cfg_.l2.hit_latency + cfg_.llc.hit_latency};
  }
  l2_.fill(addr);
  l1_.fill(addr);
  return {HitLevel::kMemory, cfg_.l1.hit_latency + cfg_.l2.hit_latency +
                                 cfg_.llc.hit_latency + cfg_.dram_latency};
}

AccessResult CacheHierarchy::access(its::PhysAddr addr, unsigned size) {
  unsigned line = cfg_.l1.line_size;
  its::PhysAddr first = addr / line;
  its::PhysAddr last = (addr + (size ? size - 1 : 0)) / line;
  AccessResult r = access_line(addr);
  for (its::PhysAddr l = first + 1; l <= last; ++l) {
    AccessResult r2 = access_line(l * line);
    // Split accesses proceed in parallel on a real core; charge the slower.
    if (r2.latency > r.latency) r = r2;
  }
  return r;
}

void CacheHierarchy::warm(its::PhysAddr addr, unsigned size) {
  unsigned line = cfg_.l1.line_size;
  its::PhysAddr first = addr / line;
  its::PhysAddr last = (addr + (size ? size - 1 : 0)) / line;
  for (its::PhysAddr l = first; l <= last; ++l) {
    its::PhysAddr a = l * line;
    llc_.fill(a);
    l2_.fill(a);
    l1_.fill(a);
  }
}

bool CacheHierarchy::probe(its::PhysAddr addr) const {
  return l1_.probe(addr) || l2_.probe(addr) || llc_.probe(addr);
}

void CacheHierarchy::invalidate_page(its::PhysAddr page_base) {
  l1_.invalidate_range(page_base, its::kPageSize);
  l2_.invalidate_range(page_base, its::kPageSize);
  llc_.invalidate_range(page_base, its::kPageSize);
}

void CacheHierarchy::reset_stats() {
  l1_.reset_stats();
  l2_.reset_stats();
  llc_.reset_stats();
}

}  // namespace its::mem
