// Translation Look-aside Buffer.
//
// A single shared hardware TLB, fully associative with true LRU, flushed on
// every context switch (the paper lists TLB shootdown as one of the hidden
// context-switch costs — the Async baseline pays it on every fault).
#pragma once

#include "util/types.h"

#include <cstdint>
#include <list>
#include <unordered_map>

namespace its::mem {

struct TlbStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t flushes = 0;
};

class Tlb {
 public:
  explicit Tlb(unsigned entries = 64);

  /// Looks up a translation for `vpn`; true on hit (and refreshes LRU).
  bool lookup(its::Vpn vpn);

  /// Installs a translation after a page walk.
  void insert(its::Vpn vpn);

  /// Drops one translation (page unmapped / evicted to swap).
  void invalidate(its::Vpn vpn);

  /// Full flush (context switch).
  void flush();

  const TlbStats& stats() const { return stats_; }
  std::size_t size() const { return map_.size(); }
  unsigned capacity() const { return entries_; }

 private:
  unsigned entries_;
  // LRU list front = most recent; map vpn -> list iterator.
  std::list<its::Vpn> lru_;
  std::unordered_map<its::Vpn, std::list<its::Vpn>::iterator> map_;
  TlbStats stats_;
};

}  // namespace its::mem
