#include "mem/preexec_cache.h"

#include "util/types.h"

#include <bit>
#include <stdexcept>

namespace its::mem {

namespace {
/// Mask of bits [lo, lo+n) within a 64-bit line mask.
std::uint64_t byte_mask(unsigned lo, unsigned n) {
  if (n >= 64) return ~0ull;
  return ((1ull << n) - 1) << lo;
}
}  // namespace

PreexecCache::PreexecCache(const PreexecCacheConfig& cfg) : cfg_(cfg) {
  if (cfg.line_size != 64)
    throw std::invalid_argument("PreexecCache models 64-byte lines (one INV bit per byte)");
  std::uint64_t n = cfg.size_bytes / cfg.line_size;
  if (cfg.ways == 0 || n < cfg.ways || n % cfg.ways != 0)
    throw std::invalid_argument("PreexecCache size/ways mismatch");
  num_sets_ = static_cast<unsigned>(n / cfg.ways);
  lines_.assign(n, Line{});
}

PreexecCache::Line* PreexecCache::find(its::VirtAddr line_addr) {
  unsigned set = static_cast<unsigned>(line_addr % num_sets_);
  std::uint64_t tag = line_addr / num_sets_;
  Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return &base[w];
  return nullptr;
}

PreexecCache::Line& PreexecCache::find_or_alloc(its::VirtAddr line_addr) {
  unsigned set = static_cast<unsigned>(line_addr % num_sets_);
  std::uint64_t tag = line_addr / num_sets_;
  Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  Line* victim = base;
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      l.lru = ++tick_;
      return l;
    }
    if (!l.valid) {
      victim = &l;
    } else if (victim->valid && l.lru < victim->lru) {
      victim = &l;
    }
  }
  *victim = Line{};
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++tick_;
  return *victim;
}

void PreexecCache::store(its::VirtAddr addr, unsigned size, bool invalid) {
  if (size == 0) return;  // zero-byte store writes nothing
  ++stats_.stores;
  std::uint64_t first = addr / cfg_.line_size;
  std::uint64_t last = (addr + (size ? size - 1 : 0)) / cfg_.line_size;
  for (std::uint64_t la = first; la <= last; ++la) {
    std::uint64_t lo = (la == first) ? addr % cfg_.line_size : 0;
    std::uint64_t hi =
        (la == last) ? (addr + size - 1) % cfg_.line_size : cfg_.line_size - 1;
    std::uint64_t m = byte_mask(static_cast<unsigned>(lo),
                                static_cast<unsigned>(hi - lo + 1));
    Line& l = find_or_alloc(la);
    l.written |= m;
    if (invalid) {
      l.inv |= m;
      stats_.invalid_bytes_written += static_cast<unsigned>(std::popcount(m));
    } else {
      l.inv &= ~m;
    }
  }
}

PxLookup PreexecCache::lookup(its::VirtAddr addr, unsigned size) {
  PxLookup r;
  if (size == 0) {  // zero-byte probe: vacuously complete, never found
    ++stats_.load_misses;
    return r;
  }
  r.complete = true;
  std::uint64_t first = addr / cfg_.line_size;
  std::uint64_t last = (addr + (size ? size - 1 : 0)) / cfg_.line_size;
  for (std::uint64_t la = first; la <= last; ++la) {
    std::uint64_t lo = (la == first) ? addr % cfg_.line_size : 0;
    std::uint64_t hi =
        (la == last) ? (addr + size - 1) % cfg_.line_size : cfg_.line_size - 1;
    std::uint64_t m = byte_mask(static_cast<unsigned>(lo),
                                static_cast<unsigned>(hi - lo + 1));
    Line* l = find(la);
    if (l == nullptr || (l->written & m) == 0) {
      r.complete = false;
      continue;
    }
    l->lru = ++tick_;
    r.found = true;
    if ((l->written & m) != m) r.complete = false;
    if ((l->inv & m) != 0) r.any_invalid = true;
  }
  if (r.found)
    ++stats_.load_hits;
  else
    ++stats_.load_misses;
  return r;
}

void PreexecCache::clear() {
  for (auto& l : lines_) l = Line{};
}

std::uint64_t PreexecCache::lines_resident() const {
  std::uint64_t n = 0;
  for (const auto& l : lines_) n += l.valid ? 1 : 0;
  return n;
}

}  // namespace its::mem
