// Three-level data-cache hierarchy (L1D / L2 / LLC) in front of DRAM.
//
// The paper's simulated CPU has a 16-way 8 MB LLC; when the pre-execute
// engine is present (ITS and Sync_Runahead) half the LLC is carved out as
// the pre-execute cache, so the hierarchy is built with a 4 MB LLC in those
// configurations — the mechanism pays for its own silicon.
#pragma once

#include "mem/cache.h"
#include "util/types.h"

#include <cstdint>

namespace its::mem {

struct HierarchyConfig {
  CacheConfig l1{32 * 1024, 8, 64, 1};
  CacheConfig l2{256 * 1024, 8, 64, 4};
  CacheConfig llc{8ull * 1024 * 1024, 16, 64, 14};
  its::Duration dram_latency = 50;  ///< ns — paper: DRAM ≈ 50 ns.
};

/// Where an access was satisfied.
enum class HitLevel : std::uint8_t { kL1, kL2, kLlc, kMemory };

struct AccessResult {
  HitLevel level;
  its::Duration latency;  ///< Total ns for this access.
  bool llc_miss() const { return level == HitLevel::kMemory; }
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchyConfig& cfg = {});

  /// Architectural access to physical address `addr` (inclusive fill on
  /// miss).  Accesses spanning two lines are charged as the slower line.
  AccessResult access(its::PhysAddr addr, unsigned size);

  /// Non-architectural warm-up fill (pre-execute / prefetch): inserts the
  /// line(s) at every level without touching hit/miss counters.
  void warm(its::PhysAddr addr, unsigned size);

  /// True if `addr`'s line is resident at any level.
  bool probe(its::PhysAddr addr) const;

  /// Drops all lines of a physical page at every level — called when the
  /// frame is re-assigned to a different virtual page (swap eviction).
  void invalidate_page(its::PhysAddr page_base);

  const SetAssocCache& l1() const { return l1_; }
  const SetAssocCache& l2() const { return l2_; }
  const SetAssocCache& llc() const { return llc_; }
  const HierarchyConfig& config() const { return cfg_; }

  std::uint64_t llc_misses() const { return llc_.stats().misses; }
  std::uint64_t total_accesses() const {
    return l1_.stats().hits + l1_.stats().misses;
  }

  void reset_stats();

 private:
  AccessResult access_line(its::PhysAddr addr);

  HierarchyConfig cfg_;
  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache llc_;
};

}  // namespace its::mem
