#include "mem/tlb.h"

#include "util/types.h"

#include <stdexcept>

namespace its::mem {

Tlb::Tlb(unsigned entries) : entries_(entries) {
  if (entries == 0) throw std::invalid_argument("Tlb: entries must be > 0");
}

bool Tlb::lookup(its::Vpn vpn) {
  auto it = map_.find(vpn);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return true;
}

void Tlb::insert(its::Vpn vpn) {
  auto it = map_.find(vpn);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= entries_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(vpn);
  map_[vpn] = lru_.begin();
}

void Tlb::invalidate(its::Vpn vpn) {
  auto it = map_.find(vpn);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

void Tlb::flush() {
  lru_.clear();
  map_.clear();
  ++stats_.flushes;
}

}  // namespace its::mem
