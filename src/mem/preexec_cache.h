// Pre-execute cache (paper §3.4.2).
//
// "Within each CPU, we introduce a pre-execute cache, associating an INV bit
// with each byte. This cache stores both data values and their associated
// INV statuses linked to retired store instructions from the store buffer."
//
// In the trace-driven model we track *validity*, not data values: each line
// holds a written-byte mask and a per-byte INV mask.  The cache is tagged by
// (pid, virtual address) because invalid stores may target pages with no
// physical address (the data is still in storage — Fig. 3a case 0), and it
// is only accessible during pre-execution.
#pragma once

#include "util/types.h"

#include <cstdint>
#include <vector>

namespace its::mem {

struct PreexecCacheConfig {
  its::Bytes size_bytes = 4_MiB;  ///< Half of the 8 MB LLC.
  unsigned ways = 16;
  unsigned line_size = 64;
};

/// Result of a pre-execute load probe.
struct PxLookup {
  bool found = false;      ///< Some written bytes of the range are present.
  bool complete = false;   ///< Every byte of the range is present.
  bool any_invalid = false;///< Any overlapping written byte is INV.
};

struct PreexecCacheStats {
  std::uint64_t stores = 0;
  std::uint64_t load_hits = 0;
  std::uint64_t load_misses = 0;
  std::uint64_t invalid_bytes_written = 0;
};

class PreexecCache {
 public:
  explicit PreexecCache(const PreexecCacheConfig& cfg = {});

  /// Composite key for (pid, vaddr): heap VAs use < 48 bits.
  static std::uint64_t key(its::Pid pid, its::VirtAddr va) {
    return its::pid_key(pid, va);
  }

  /// Records a retired pre-execute store of [addr, addr+size); bytes are
  /// flagged INV when `invalid` (bogus source data or page-in-storage).
  void store(its::VirtAddr addr, unsigned size, bool invalid);

  /// Pre-execute load probe over [addr, addr+size).
  PxLookup lookup(its::VirtAddr addr, unsigned size);

  /// Drops every entry (e.g. between simulations).
  void clear();

  const PreexecCacheStats& stats() const { return stats_; }
  std::uint64_t lines_resident() const;

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t written = 0;  ///< Bit i: byte i of the line was stored.
    std::uint64_t inv = 0;      ///< Bit i: byte i is invalid.
    std::uint64_t lru = 0;
    bool valid = false;
  };

  Line* find(its::VirtAddr line_addr);
  Line& find_or_alloc(its::VirtAddr line_addr);

  PreexecCacheConfig cfg_;
  unsigned num_sets_;
  std::uint64_t tick_ = 0;
  std::vector<Line> lines_;
  PreexecCacheStats stats_;
};

}  // namespace its::mem
