// Generic set-associative cache with true-LRU replacement.
//
// Physically indexed/physically tagged: all processes share the hierarchy,
// so multiprogrammed cache contention (one of the effects the ITS
// self-sacrificing thread exploits) emerges naturally.
#pragma once

#include "util/types.h"

#include <bit>
#include <cstdint>
#include <vector>

namespace its::mem {

struct CacheConfig {
  its::Bytes size_bytes = 32_KiB;
  unsigned ways = 8;
  unsigned line_size = 64;
  its::Duration hit_latency = 1;  ///< ns, charged on a hit at this level.
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  double miss_ratio() const {
    std::uint64_t t = hits + misses;
    return t ? static_cast<double>(misses) / static_cast<double>(t) : 0.0;
  }
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  /// Looks up `addr`; on miss, inserts the line (allocate-on-miss for both
  /// reads and writes).  Returns true on hit.
  bool access(its::VirtAddr addr);

  /// Lookup without side effects.
  bool probe(its::VirtAddr addr) const;

  /// Inserts the line without counting a hit or miss (used by pre-execute /
  /// prefetch warming paths).
  void fill(its::VirtAddr addr);

  /// Drops one line if present; returns whether it was present.
  bool invalidate(its::VirtAddr addr);

  /// Drops all lines in [base, base+len).
  void invalidate_range(std::uint64_t base, std::uint64_t len);

  void invalidate_all();

  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  unsigned sets() const { return num_sets_; }
  std::uint64_t lines_resident() const;

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< Higher = more recently used.
    bool valid = false;
  };

  // addr→line/set/tag splits sit on the page-eviction invalidate path
  // (hundreds of millions of calls in a serving run), where a hardware
  // divide by a runtime divisor costs more than the whole way scan.  The
  // ctor precomputes shift/mask forms; the modulo fallback only runs for
  // non-power-of-two set counts, which no shipped config uses.
  std::uint64_t line_of(its::VirtAddr addr) const {
    return addr >> line_shift_;
  }
  unsigned set_index(std::uint64_t line) const {
    if (pow2_sets_) return static_cast<unsigned>(line & set_mask_);
    return static_cast<unsigned>(line % num_sets_);
  }
  std::uint64_t tag_of(std::uint64_t line) const {
    if (pow2_sets_) return line >> set_shift_;
    return line / num_sets_;
  }

  bool invalidate_line(std::uint64_t line);

  // Exact resident-line count per 4 KiB region, maintained on every insert,
  // replacement and invalidation.  Page eviction invalidates its frame at
  // every level, but CLOCK victims are usually cache-cold by then — the
  // count lets invalidate_range answer "nothing resident" in O(1) instead
  // of sweeping ways, and stop a warm sweep the moment the region drains.
  std::uint64_t region_of_line(std::uint64_t line) const {
    return line >> (its::kPageShift - line_shift_);
  }
  void region_add(std::uint64_t line) {
    const std::uint64_t r = region_of_line(line);
    if (r >= region_lines_.size()) region_lines_.resize(r + 1, 0);
    ++region_lines_[r];
  }
  void region_sub(std::uint64_t line) { --region_lines_[region_of_line(line)]; }
  /// The victim's line number reconstructed from its slot: row-major layout
  /// stores set implicitly, the tag the rest.
  std::uint64_t line_of_way(std::uint64_t tag, unsigned set) const {
    return tag * num_sets_ + set;
  }

  CacheConfig cfg_;
  unsigned num_sets_;
  unsigned line_shift_ = 0;
  bool pow2_sets_ = false;
  unsigned set_shift_ = 0;
  std::uint64_t set_mask_ = 0;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_;  ///< num_sets_ * cfg_.ways, row-major by set.
  std::vector<std::uint32_t> region_lines_;
  CacheStats stats_;
};

}  // namespace its::mem
