// Generic set-associative cache with true-LRU replacement.
//
// Physically indexed/physically tagged: all processes share the hierarchy,
// so multiprogrammed cache contention (one of the effects the ITS
// self-sacrificing thread exploits) emerges naturally.
#pragma once

#include "util/types.h"

#include <cstdint>
#include <vector>

namespace its::mem {

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  unsigned ways = 8;
  unsigned line_size = 64;
  its::Duration hit_latency = 1;  ///< ns, charged on a hit at this level.
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  double miss_ratio() const {
    std::uint64_t t = hits + misses;
    return t ? static_cast<double>(misses) / static_cast<double>(t) : 0.0;
  }
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  /// Looks up `addr`; on miss, inserts the line (allocate-on-miss for both
  /// reads and writes).  Returns true on hit.
  bool access(std::uint64_t addr);

  /// Lookup without side effects.
  bool probe(std::uint64_t addr) const;

  /// Inserts the line without counting a hit or miss (used by pre-execute /
  /// prefetch warming paths).
  void fill(std::uint64_t addr);

  /// Drops one line if present; returns whether it was present.
  bool invalidate(std::uint64_t addr);

  /// Drops all lines in [base, base+len).
  void invalidate_range(std::uint64_t base, std::uint64_t len);

  void invalidate_all();

  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  unsigned sets() const { return num_sets_; }
  std::uint64_t lines_resident() const;

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< Higher = more recently used.
    bool valid = false;
  };

  unsigned set_index(std::uint64_t line) const {
    return static_cast<unsigned>(line % num_sets_);
  }
  std::uint64_t tag_of(std::uint64_t line) const { return line / num_sets_; }

  CacheConfig cfg_;
  unsigned num_sets_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_;  ///< num_sets_ * cfg_.ways, row-major by set.
  CacheStats stats_;
};

}  // namespace its::mem
