#include "mem/cache.h"

#include <stdexcept>

namespace its::mem {

SetAssocCache::SetAssocCache(const CacheConfig& cfg) : cfg_(cfg) {
  if (cfg.line_size == 0 || (cfg.line_size & (cfg.line_size - 1)) != 0)
    throw std::invalid_argument("cache line size must be a power of two");
  if (cfg.ways == 0) throw std::invalid_argument("cache must have >= 1 way");
  std::uint64_t lines = cfg.size_bytes / cfg.line_size;
  if (lines < cfg.ways || lines % cfg.ways != 0)
    throw std::invalid_argument("cache size/ways mismatch");
  num_sets_ = static_cast<unsigned>(lines / cfg.ways);
  ways_.assign(lines, Way{});
}

bool SetAssocCache::access(std::uint64_t addr) {
  std::uint64_t line = addr / cfg_.line_size;
  unsigned set = set_index(line);
  std::uint64_t tag = tag_of(line);
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  Way* victim = base;
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = ++tick_;
      ++stats_.hits;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  ++stats_.misses;
  if (victim->valid) ++stats_.evictions;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++tick_;
  return false;
}

bool SetAssocCache::probe(std::uint64_t addr) const {
  std::uint64_t line = addr / cfg_.line_size;
  unsigned set = set_index(line);
  std::uint64_t tag = tag_of(line);
  const Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

void SetAssocCache::fill(std::uint64_t addr) {
  std::uint64_t line = addr / cfg_.line_size;
  unsigned set = set_index(line);
  std::uint64_t tag = tag_of(line);
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  Way* victim = base;
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = ++tick_;
      return;  // already resident
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  if (victim->valid) ++stats_.evictions;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++tick_;
}

bool SetAssocCache::invalidate(std::uint64_t addr) {
  std::uint64_t line = addr / cfg_.line_size;
  unsigned set = set_index(line);
  std::uint64_t tag = tag_of(line);
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].valid = false;
      ++stats_.invalidations;
      return true;
    }
  }
  return false;
}

void SetAssocCache::invalidate_range(std::uint64_t base, std::uint64_t len) {
  for (std::uint64_t a = base; a < base + len; a += cfg_.line_size) invalidate(a);
}

void SetAssocCache::invalidate_all() {
  for (auto& w : ways_)
    if (w.valid) {
      w.valid = false;
      ++stats_.invalidations;
    }
}

std::uint64_t SetAssocCache::lines_resident() const {
  std::uint64_t n = 0;
  for (const auto& w : ways_) n += w.valid ? 1 : 0;
  return n;
}

}  // namespace its::mem
