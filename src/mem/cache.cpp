#include "mem/cache.h"

#include "util/types.h"

#include <algorithm>
#include <stdexcept>

namespace its::mem {

SetAssocCache::SetAssocCache(const CacheConfig& cfg) : cfg_(cfg) {
  if (cfg.line_size == 0 || (cfg.line_size & (cfg.line_size - 1)) != 0)
    throw std::invalid_argument("cache line size must be a power of two");
  if (cfg.ways == 0) throw std::invalid_argument("cache must have >= 1 way");
  std::uint64_t lines = cfg.size_bytes / cfg.line_size;
  if (lines < cfg.ways || lines % cfg.ways != 0)
    throw std::invalid_argument("cache size/ways mismatch");
  num_sets_ = static_cast<unsigned>(lines / cfg.ways);
  ways_.assign(lines, Way{});
  line_shift_ = static_cast<unsigned>(std::countr_zero(cfg.line_size));
  pow2_sets_ = (num_sets_ & (num_sets_ - 1)) == 0;
  if (pow2_sets_) {
    set_shift_ = static_cast<unsigned>(std::countr_zero(num_sets_));
    set_mask_ = num_sets_ - 1;
  }
}

bool SetAssocCache::access(its::VirtAddr addr) {
  std::uint64_t line = line_of(addr);
  unsigned set = set_index(line);
  std::uint64_t tag = tag_of(line);
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  Way* victim = base;
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = ++tick_;
      ++stats_.hits;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  ++stats_.misses;
  if (victim->valid) {
    ++stats_.evictions;
    region_sub(line_of_way(victim->tag, set));
  }
  region_add(line);
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++tick_;
  return false;
}

bool SetAssocCache::probe(its::VirtAddr addr) const {
  std::uint64_t line = line_of(addr);
  unsigned set = set_index(line);
  std::uint64_t tag = tag_of(line);
  const Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

void SetAssocCache::fill(its::VirtAddr addr) {
  std::uint64_t line = line_of(addr);
  unsigned set = set_index(line);
  std::uint64_t tag = tag_of(line);
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  Way* victim = base;
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = ++tick_;
      return;  // already resident
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  if (victim->valid) {
    ++stats_.evictions;
    region_sub(line_of_way(victim->tag, set));
  }
  region_add(line);
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++tick_;
}

bool SetAssocCache::invalidate_line(std::uint64_t line) {
  unsigned set = set_index(line);
  std::uint64_t tag = tag_of(line);
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].valid = false;
      ++stats_.invalidations;
      region_sub(line);
      return true;
    }
  }
  return false;
}

bool SetAssocCache::invalidate(its::VirtAddr addr) {
  return invalidate_line(line_of(addr));
}

void SetAssocCache::invalidate_range(std::uint64_t base, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t first = line_of(base);
  const std::uint64_t last = line_of(base + len - 1);
  if (pow2_sets_ && tag_of(first) == tag_of(last)) {
    // Page-eviction fast path: an aligned range within one tag block maps
    // to contiguous sets under one shared tag, so the per-line set/tag
    // arithmetic collapses into a single sequential sweep of the way
    // array.  Each set holds at most one copy of a tag (access/fill probe
    // before inserting), so this clears exactly the lines the slow path
    // would — and when the range sits inside one region whose resident
    // count is already zero (the common cache-cold CLOCK victim), there is
    // nothing to sweep at all.
    const std::uint64_t region = region_of_line(first);
    const bool one_region = region == region_of_line(last);
    std::uint32_t left = 0xffffffffu;
    if (one_region)
      left = region < region_lines_.size() ? region_lines_[region] : 0;
    if (left == 0) return;
    const std::uint64_t tag = tag_of(first);
    const unsigned s0 = set_index(first);
    Way* w = &ways_[static_cast<std::size_t>(s0) * cfg_.ways];
    const std::size_t n = static_cast<std::size_t>(last - first + 1) * cfg_.ways;
    for (std::size_t i = 0; i < n; ++i) {
      if (w[i].valid && w[i].tag == tag) {
        w[i].valid = false;
        ++stats_.invalidations;
        region_sub(line_of_way(tag, s0 + static_cast<unsigned>(i / cfg_.ways)));
        if (--left == 0) break;
      }
    }
    return;
  }
  for (std::uint64_t line = first; line <= last; ++line) invalidate_line(line);
}

void SetAssocCache::invalidate_all() {
  for (auto& w : ways_)
    if (w.valid) {
      w.valid = false;
      ++stats_.invalidations;
    }
  std::fill(region_lines_.begin(), region_lines_.end(), 0);
}

std::uint64_t SetAssocCache::lines_resident() const {
  std::uint64_t n = 0;
  for (const auto& w : ways_) n += w.valid ? 1 : 0;
  return n;
}

}  // namespace its::mem
