// Quickstart: run one six-process batch under all five I/O-mode policies
// and print the headline comparison (normalised CPU idle time, faults,
// cache misses, finish times).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [batch-index 0..3]
#include <cstdlib>
#include <iostream>

#include "core/experiment.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace its;
  std::size_t batch_idx = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1;
  auto batches = core::paper_batches();
  if (batch_idx >= batches.size()) {
    std::cerr << "batch index must be 0.." << batches.size() - 1 << "\n";
    return 1;
  }
  const core::BatchSpec& batch = batches[batch_idx];

  std::cout << "Batch: " << batch.name << " (processes:";
  for (auto id : batch.members) std::cout << ' ' << trace::spec_for(id).name;
  std::cout << ")\n\n";

  core::ExperimentConfig cfg;
  core::BatchResult r = core::run_batch_all(batch, cfg);

  util::Table t({"policy", "idle (ms)", "norm idle", "stall", "busywait", "ctx",
                 "norun", "major flt", "minor flt", "LLC miss", "top50", "bot50",
                 "makespan"});
  auto ms = [](its::Duration d) {
    return util::Table::fmt(static_cast<double>(d) / 1e6, 1);
  };
  for (auto k : core::kAllPolicies) {
    const core::SimMetrics& m = r.by_policy.at(k);
    t.add_row({std::string(core::policy_name(k)), ms(m.idle.total()),
               util::Table::fmt(r.normalized(k, core::total_idle_ns), 2),
               ms(m.idle.mem_stall), ms(m.idle.busy_wait), ms(m.idle.ctx_switch),
               ms(m.idle.no_runnable), util::Table::fmt(m.major_faults),
               util::Table::fmt(m.minor_faults), util::Table::fmt(m.llc_misses),
               util::Table::fmt(r.normalized(k, core::top_half_finish), 2),
               util::Table::fmt(r.normalized(k, core::bottom_half_finish), 2),
               ms(m.makespan)});
  }
  t.print(std::cout);

  std::cout << "\nMechanism counters:\n";
  util::Table t2({"policy", "pf issued", "pf useful", "accuracy%", "px episodes",
                  "px warmed", "give-ways", "stolen ms", "evictions"});
  for (auto k : core::kAllPolicies) {
    const core::SimMetrics& m = r.by_policy.at(k);
    t2.add_row({std::string(core::policy_name(k)), util::Table::fmt(m.prefetch_issued),
                util::Table::fmt(m.prefetch_useful),
                util::Table::fmt(100.0 * m.prefetch_accuracy(), 1),
                util::Table::fmt(m.preexec_episodes),
                util::Table::fmt(m.preexec_lines_warmed),
                util::Table::fmt(m.async_switches),
                util::Table::fmt(static_cast<double>(m.stolen_time) / 1e6, 2),
                util::Table::fmt(m.evictions)});
  }
  t2.print(std::cout);
  return 0;
}
