// Example: writing your own I/O-mode policy against the public API.
//
// Implements an "adaptive" policy that busy-waits (and prefetches) when the
// expected swap-in is cheaper than a context switch, and gives way
// asynchronously when the device is congested — then races it against the
// built-in baselines on one batch.
//
//   ./build/examples/custom_policy
#include <iostream>
#include <memory>

#include "core/batch.h"
#include "core/experiment.h"
#include "core/simulator.h"
#include "util/table.h"

namespace {

using namespace its;

/// Gives way whenever the run queue holds anyone at all and the faulting
/// process has below-median priority; otherwise steals the wait like ITS.
/// A deliberately simple recipe to show the extension surface.
class AdaptivePolicy final : public core::IoPolicy {
 public:
  core::PolicyKind kind() const override { return core::PolicyKind::kIts; }
  bool uses_preexec_cache() const override { return true; }

  core::FaultPlan plan_major_fault(const sched::Process& cur,
                                   const sched::Scheduler& sched,
                                   storage::DeviceHealth health) override {
    if (health != storage::DeviceHealth::kHealthy)  // sick device: give way
      return {.go_async = true};
    const sched::Process* next = sched.peek_next();
    if (next != nullptr && cur.priority() <= 30)  // below-median: give way
      return {.go_async = true};
    return {.prefetch = core::PrefetchKind::kVa, .preexec = true};
  }
};

core::SimMetrics run(const core::BatchSpec& batch,
                     std::unique_ptr<core::IoPolicy> policy,
                     const core::ExperimentConfig& cfg) {
  core::SimConfig sc = cfg.sim;
  sc.dram_bytes = core::dram_bytes_for(batch, cfg.dram_headroom);
  core::Simulator sim(sc, std::move(policy));
  auto traces = core::batch_traces(batch, cfg.gen);
  for (auto& p : core::build_processes(batch, traces, sc.seed))
    sim.add_process(std::move(p));
  return sim.run();
}

}  // namespace

int main() {
  using namespace its;
  const core::BatchSpec& batch = core::paper_batches()[2];
  core::ExperimentConfig cfg;

  std::cout << "Racing a custom adaptive policy against the built-ins on "
            << batch.name << "...\n\n";

  util::Table t({"policy", "idle (ms)", "top50 finish (ms)", "bot50 finish (ms)"});
  auto add = [&](const std::string& name, core::SimMetrics m) {
    t.add_row({name, util::Table::fmt(static_cast<double>(m.idle.total()) / 1e6, 1),
               util::Table::fmt(m.avg_finish_top_half() / 1e6, 1),
               util::Table::fmt(m.avg_finish_bottom_half() / 1e6, 1)});
  };
  add("Sync", run(batch, core::make_policy(core::PolicyKind::kSync), cfg));
  add("ITS", run(batch, core::make_policy(core::PolicyKind::kIts), cfg));
  add("Adaptive (custom)", run(batch, std::make_unique<AdaptivePolicy>(), cfg));
  t.print(std::cout);

  std::cout << "\nA policy is ~20 lines: subclass core::IoPolicy, answer\n"
               "plan_major_fault(), and hand it to core::Simulator.\n";
  return 0;
}
