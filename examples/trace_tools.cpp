// Example: working with traces directly — generate, inspect, save, reload.
//
// Mirrors the paper's methodology (Valgrind-captured address traces fed to
// the simulator): synthesise each of the nine workloads, print its address-
// stream statistics, round-trip one through the binary trace format, and
// simulate a single process from a file-loaded trace.
//
//   ./build/examples/trace_tools [output.trc]
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/simulator.h"
#include "trace/analysis.h"
#include "trace/lackey.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace its;
  const std::string path = argc > 1 ? argv[1] : "/tmp/its_randwalk.trc";

  std::cout << "Nine workload generators (the paper's trace suite):\n\n";
  util::Table t({"workload", "class", "records", "mem refs", "footprint (MiB)",
                 "touched (MiB)", "working set (MiB)"});
  for (const auto& spec : trace::all_workloads()) {
    trace::GeneratorConfig gen;
    gen.length_scale = 0.25;  // keep this demo quick
    trace::Trace tr = trace::generate(spec.id, gen);
    trace::TraceStats st = tr.stats();
    t.add_row({std::string(spec.name), spec.data_intensive ? "data-intensive" : "general",
               util::Table::fmt(st.records), util::Table::fmt(st.mem_refs),
               util::Table::fmt(static_cast<double>(spec.footprint_bytes) / (1 << 20), 0),
               util::Table::fmt(static_cast<double>(st.footprint_pages << its::kPageShift) /
                                    (1 << 20),
                                0),
               util::Table::fmt(static_cast<double>(spec.hot_bytes) / (1 << 20), 0)});
  }
  t.print(std::cout);

  // Round-trip a trace through the binary format.
  trace::Trace rw = trace::generate(trace::WorkloadId::kRandomWalk);
  trace::save_trace_file(path, rw);
  trace::Trace loaded = trace::load_trace_file(path);
  std::cout << "\nSaved + reloaded '" << loaded.name() << "' (" << loaded.size()
            << " records) via " << path << ": "
            << (loaded == rw ? "bit-identical" : "MISMATCH!") << "\n";

  // Address-stream analysis (the paper's §4.1 working-set definition).
  {
    trace::PageProfile prof = trace::profile_pages(rw);
    trace::LocalityStats loc = trace::analyze_locality(rw);
    std::cout << "randwalk analysis: working set (99% coverage) "
              << (prof.working_set_bytes(0.99) >> 20) << " MiB of "
              << (prof.footprint_bytes() >> 20) << " MiB footprint, "
              << util::Table::fmt(100.0 * loc.page_locality, 1)
              << "% same/next-page locality — graph traversals defeat "
                 "spatial prefetching.\n";
  }

  // Valgrind Lackey interop: export + re-ingest (the paper's front end).
  {
    std::stringstream lk;
    trace::Trace small = trace::generate(trace::WorkloadId::kDeepSjeng,
                                         {.length_scale = 0.01});
    trace::write_lackey(lk, small);
    trace::Trace back = trace::parse_lackey(lk, "deepsjeng-lackey");
    std::cout << "lackey round-trip: exported " << small.size()
              << " records, re-ingested " << back.size()
              << " (I-lines folded at a different granularity is expected).\n";
  }

  // Simulate the reloaded trace standalone under Sync.
  core::SimConfig cfg;
  cfg.dram_bytes = 64ull << 20;
  core::Simulator sim(cfg, core::PolicyKind::kSync);
  sim.add_process(std::make_unique<sched::Process>(
      0, loaded.name(), 30, std::make_shared<const trace::Trace>(std::move(loaded))));
  core::SimMetrics m = sim.run();
  std::cout << "Standalone Sync run: " << m.major_faults << " major faults, "
            << util::Table::fmt(static_cast<double>(m.idle.total()) / 1e6, 1)
            << " ms idle, finished at "
            << util::Table::fmt(static_cast<double>(m.makespan) / 1e6, 1) << " ms.\n";
  std::remove(path.c_str());
  return 0;
}
