// Example: how priority assignment changes who benefits from ITS.
//
// Builds a two-class workload — one latency-critical graph analytics
// process (high priority) and several background compression/render jobs —
// and shows the self-improving vs self-sacrificing split: the high-priority
// process gets prefetch + pre-execution, the background jobs give way, and
// everyone's finish time is reported.
//
//   ./build/examples/priority_mix
#include <iostream>
#include <memory>

#include "core/simulator.h"
#include "trace/workloads.h"
#include "util/table.h"

int main() {
  using namespace its;

  struct Member {
    trace::WorkloadId id;
    int priority;
    const char* role;
  };
  // One latency-critical process, two mid, three background.
  const Member members[] = {
      {trace::WorkloadId::kPageRank, 60, "latency-critical"},
      {trace::WorkloadId::kWrf, 40, "interactive"},
      {trace::WorkloadId::kCaffe, 30, "interactive"},
      {trace::WorkloadId::kXz, 20, "background"},
      {trace::WorkloadId::kBlender, 15, "background"},
      {trace::WorkloadId::kCommunity, 10, "background"},
  };

  core::SimConfig cfg;
  cfg.slice_min = 50'000;
  cfg.slice_max = 8'000'000;
  std::uint64_t hot = 0;
  for (const auto& m : members) hot += trace::spec_for(m.id).hot_bytes;
  cfg.dram_bytes = static_cast<std::uint64_t>(1.12 * static_cast<double>(hot)) &
                   ~its::kPageOffsetMask;

  std::cout << "Running the mix under Sync and under ITS...\n\n";
  util::Table t({"process", "role", "priority", "Sync finish (ms)",
                 "ITS finish (ms)", "speedup"});

  auto run = [&](core::PolicyKind k) {
    core::Simulator sim(cfg, k);
    for (unsigned i = 0; i < std::size(members); ++i) {
      auto tr = std::make_shared<const trace::Trace>(trace::generate(members[i].id));
      sim.add_process(std::make_unique<sched::Process>(
          static_cast<its::Pid>(i),
          std::string(trace::spec_for(members[i].id).name), members[i].priority,
          tr));
    }
    return sim.run();
  };
  core::SimMetrics sync = run(core::PolicyKind::kSync);
  core::SimMetrics its = run(core::PolicyKind::kIts);

  for (unsigned i = 0; i < std::size(members); ++i) {
    double fs = static_cast<double>(sync.processes[i].metrics.finish_time) / 1e6;
    double fi = static_cast<double>(its.processes[i].metrics.finish_time) / 1e6;
    t.add_row({sync.processes[i].name, members[i].role,
               std::to_string(members[i].priority), util::Table::fmt(fs, 1),
               util::Table::fmt(fi, 1), util::Table::fmt(fs / fi, 2)});
  }
  t.print(std::cout);

  std::cout << "\nITS gave way " << its.async_switches
            << " times (self-sacrificing), prefetched " << its.prefetch_issued
            << " pages and ran " << its.preexec_episodes
            << " pre-execute episodes for the high-priority side.\n"
            << "Total CPU idle time: Sync "
            << util::Table::fmt(static_cast<double>(sync.idle.total()) / 1e6, 1)
            << " ms vs ITS "
            << util::Table::fmt(static_cast<double>(its.idle.total()) / 1e6, 1)
            << " ms.\n";
  return 0;
}
