// its_cli — command-line driver for the simulator.
//
//   its_cli --list
//   its_cli --batch=1 --policy=ITS
//   its_cli --batch=3 --policy=all --scheduler=cfs --csv=/tmp/out
//   its_cli --batch=0 --policy=Sync --media-us=10 --ctx-us=7 --seed=7
//
// Flags: --batch=<0..3>  --policy=<Async|Sync|Sync_Runahead|Sync_Prefetch|
// ITS|all>  --scheduler=<rr|cfs>  --seed=<n>  --degree=<n>  --media-us=<n>
// --ctx-us=<n>  --length-scale=<f>  --csv=<dir>  --fault-profile=<name>
// --fault-seed=<n>  --fault-outage=<k=v,...>  --jobs=<n>  --list
//
// The open-loop serving scenario (docs/serving.md) rides the same binary:
//   its_cli --scenario=serve --policy=ITS --arrival-rate=40000 \
//           --duration-ms=40 --overcommit=2 --slo-p99=8000000
// with --arrival-model=poisson|mmpp  --admit-limit=<n>  --max-requests=<n>
// --burst-mult=<f>  --burst-fraction=<f> shaping the stream.
//
// Exit codes: 0 success, 1 invariant violation, 2 usage error (unknown
// flag / bad value), 3 unreadable or corrupt input file, 4 invalid fault
// profile or outage spec, 5 unrecoverable outage (the device died and a
// page was lost past the fallback pool — docs/robustness.md), 6 SLO gate
// failed (--slo-p99 given and a run's aggregate p99 exceeded it).
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/simulator.h"
#include "fault/fault_injector.h"
#include "vm/fallback_pool.h"
#include "obs/invariant_checker.h"
#include "obs/trace_json.h"
#include "trace/lackey.h"
#include "trace/trace_io.h"
#include "core/report.h"
#include "serve/arrival.h"
#include "serve/report.h"
#include "serve/scenario.h"
#include "serve/sweep.h"
#include "util/args.h"
#include "util/quantile.h"
#include "util/table.h"

namespace {

using namespace its;

// Distinct exit codes so scripts can tell misuse from bad data.
constexpr int kUsageError = 2;
constexpr int kInputError = 3;
constexpr int kBadFaultProfile = 4;
constexpr int kUnrecoverableOutage = 5;
constexpr int kSloGateFailed = 6;

int list_everything() {
  std::cout << "batches:\n";
  for (std::size_t i = 0; i < core::paper_batches().size(); ++i) {
    const auto& b = core::paper_batches()[i];
    std::cout << "  " << i << ": " << b.name << " (";
    for (auto id : b.members) std::cout << ' ' << trace::spec_for(id).name;
    std::cout << " )\n";
  }
  std::cout << "policies:";
  for (auto k : core::kAllPolicies) std::cout << ' ' << core::policy_name(k);
  std::cout << " all\nschedulers: rr cfs\n";
  return 0;
}

void print_one(const std::string& policy, const core::SimMetrics& m) {
  util::Table t({"metric", "value"});
  auto ms = [](its::Duration d) {
    return util::Table::fmt(static_cast<double>(d) / 1e6, 2) + " ms";
  };
  t.add_row({"policy", policy});
  t.add_row({"cpu busy", ms(m.cpu_busy)});
  t.add_row({"total CPU idle", ms(m.idle.total())});
  t.add_row({"  mem stall", ms(m.idle.mem_stall)});
  t.add_row({"  busy wait", ms(m.idle.busy_wait)});
  t.add_row({"  ctx switch", ms(m.idle.ctx_switch)});
  t.add_row({"  no runnable", ms(m.idle.no_runnable)});
  t.add_row({"major faults", util::Table::fmt(m.major_faults)});
  t.add_row({"minor faults", util::Table::fmt(m.minor_faults)});
  t.add_row({"LLC misses", util::Table::fmt(m.llc_misses)});
  t.add_row({"prefetch issued/useful", util::Table::fmt(m.prefetch_issued) + " / " +
                                           util::Table::fmt(m.prefetch_useful)});
  t.add_row({"pre-exec episodes", util::Table::fmt(m.preexec_episodes)});
  t.add_row({"async give-ways", util::Table::fmt(m.async_switches)});
  t.add_row({"stolen time", ms(m.stolen_time)});
  if (m.io_errors != 0 || m.io_retries != 0 || m.deadline_aborts != 0 ||
      m.mode_fallbacks != 0 || m.retry_exhausted != 0) {
    t.add_row({"I/O errors/retries", util::Table::fmt(m.io_errors) + " / " +
                                         util::Table::fmt(m.io_retries)});
    t.add_row({"retry budget exhausted", util::Table::fmt(m.retry_exhausted)});
    t.add_row({"deadline aborts", util::Table::fmt(m.deadline_aborts)});
    t.add_row({"mode fallbacks", util::Table::fmt(m.mode_fallbacks)});
    t.add_row({"degraded time", ms(m.degraded_time)});
  }
  if (m.health_degraded_time != 0 || m.health_offline_time != 0 ||
      m.health_recovering_time != 0) {
    t.add_row({"device degraded", ms(m.health_degraded_time)});
    t.add_row({"device offline", ms(m.health_offline_time)});
    t.add_row({"device recovering", ms(m.health_recovering_time)});
    t.add_row({"pool stores/hits/drains",
               util::Table::fmt(m.pool_stores) + " / " +
                   util::Table::fmt(m.pool_hits) + " / " +
                   util::Table::fmt(m.pool_drains)});
    t.add_row({"faults served degraded",
               util::Table::fmt(m.faults_served_degraded)});
  }
  t.add_row({"makespan", ms(m.makespan)});
  t.add_row({"top-50% finish", ms(static_cast<its::Duration>(m.avg_finish_top_half()))});
  t.add_row({"bottom-50% finish",
             ms(static_cast<its::Duration>(m.avg_finish_bottom_half()))});
  t.print(std::cout);
  std::cout << '\n';
}

/// Writes the event timeline as Chrome trace JSON and cross-checks it
/// against the final metrics.  Returns 0, or 1 if an invariant failed.
int emit_trace(const std::string& path, const obs::EventTrace& et,
               const core::SimMetrics& m, const std::string& policy,
               std::vector<std::string> names) {
  obs::ExportOptions opts;
  opts.policy = policy;
  opts.process_names = std::move(names);
  obs::save_chrome_trace(path, et, opts);
  obs::CheckResult res = obs::check_invariants(et, m);
  std::cout << "wrote " << path << " (" << et.size()
            << " events); invariants: " << res.summary() << '\n';
  return res.ok() ? 0 : 1;
}

}  // namespace

namespace {
int run_cli(int argc, char** argv);
}  // namespace

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const its::vm::PageLostError& e) {
    std::cerr << "its_cli: unrecoverable outage: " << e.what() << '\n';
    return kUnrecoverableOutage;
  } catch (const its::trace::TraceIoError& e) {
    std::cerr << "its_cli: cannot load input: " << e.what() << '\n';
    return kInputError;
  } catch (const std::exception& e) {
    std::cerr << "its_cli: " << e.what() << '\n';
    return kUsageError;
  }
}

namespace {

/// Parses --fault-outage's comma-separated key=value list into the
/// profile's outage model (fault::OutageModelConfig) and force-enables the
/// injector — a scheduled outage is itself an injection, so the flag works
/// standalone as well as stacked on a named profile.  Returns 0 or
/// kBadFaultProfile with the message printed.
int apply_outage_spec(const std::string& spec, fault::FaultProfile& fp) {
  fault::OutageModelConfig& o = fp.outage;
  for (std::size_t pos = 0; pos <= spec.size();) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    const std::string key = item.substr(0, eq);
    std::uint64_t val = 0;
    try {
      if (eq == std::string::npos) throw std::invalid_argument("missing '='");
      val = std::stoull(item.substr(eq + 1));
    } catch (const std::exception&) {
      std::cerr << "invalid --fault-outage item '" << item
                << "' (want key=nanoseconds)\n";
      return kBadFaultProfile;
    }
    if (key == "period") o.period = val;
    else if (key == "length") o.length = val;
    else if (key == "recovery") o.recovery = val;
    else if (key == "phase") o.phase = val;
    else if (key == "dead-at") o.dead_at = val;
    else if (key == "degrade-errors") o.degrade_errors = static_cast<unsigned>(val);
    else if (key == "offline-timeouts") o.offline_timeouts = static_cast<unsigned>(val);
    else if (key == "error-outage") o.error_outage = val;
    else if (key == "degraded-hold") o.degraded_hold = val;
    else {
      std::cerr << "unknown --fault-outage key '" << key
                << "'; choose from: period length recovery phase dead-at "
                   "degrade-errors offline-timeouts error-outage "
                   "degraded-hold\n";
      return kBadFaultProfile;
    }
  }
  if (!o.enabled()) {
    std::cerr << "--fault-outage spec enables nothing (need period+length, "
                 "dead-at, degrade-errors or offline-timeouts)\n";
    return kBadFaultProfile;
  }
  fp.enabled = true;
  return 0;
}

/// Resolves --fault-profile / --fault-seed / --fault-outage into `fp`.
/// Returns 0 or the exit code to fail with (kBadFaultProfile, message
/// already printed).
int apply_fault_flags(const util::Args& args, fault::FaultProfile& fp) {
  if (auto name = args.get("fault-profile")) {
    auto preset = fault::profile_by_name(*name);
    if (!preset) {
      std::cerr << "invalid --fault-profile '" << *name << "'; choose from:";
      for (auto n : fault::profile_names()) std::cerr << ' ' << n;
      std::cerr << '\n';
      return kBadFaultProfile;
    }
    fp = *preset;
  }
  if (args.has("fault-seed")) fp.seed = args.get_u64("fault-seed", fp.seed);
  if (auto spec = args.get("fault-outage")) {
    if (int rc = apply_outage_spec(*spec, fp); rc != 0) return rc;
  }
  return 0;
}

void print_serve_point(const serve::ServePoint& pt) {
  std::cout << "policy " << core::policy_name(pt.policy) << ", overcommit "
            << pt.overcommit << ":\n";
  util::Table t({"tier", "slo ms", "arrive", "admit", "reject", "done",
                 "viol", "p50 ms", "p99 ms", "p999 ms"});
  auto ms = [](its::Duration d) {
    return util::Table::fmt(static_cast<double>(d) / 1e6, 2);
  };
  auto row = [&](const std::string& name, its::Duration slo,
                 std::uint64_t arrive, std::uint64_t admit,
                 std::uint64_t reject, std::uint64_t done, std::uint64_t viol,
                 const util::QuantileDigest& lat) {
    t.add_row({name, slo == 0 ? "-" : ms(slo), util::Table::fmt(arrive),
               util::Table::fmt(admit), util::Table::fmt(reject),
               util::Table::fmt(done), util::Table::fmt(viol),
               ms(lat.quantile(0.50)), ms(lat.quantile(0.99)),
               ms(lat.quantile(0.999))});
  };
  const serve::ServeMetrics& m = pt.metrics;
  for (const serve::TierMetrics& tm : m.tiers)
    row(tm.name, tm.slo_ns, tm.arrivals, tm.admits, tm.rejects, tm.completed,
        tm.slo_violations, tm.latency);
  row("all", 0, m.arrivals, m.admits, m.rejects, m.completed,
      m.slo_violations, m.latency);
  t.print(std::cout);
  std::cout << "  " << util::Table::fmt(m.requests_per_sec(), 0)
            << " req/s sustained over "
            << util::Table::fmt(static_cast<double>(m.sim.makespan) / 1e6, 2)
            << " ms\n\n";
}

/// --scenario=serve: the open-loop serving scenario (docs/serving.md).
/// Reuses --policy/--seed/--jobs/--csv/--trace-out and the fault flags;
/// the serve-only knobs shape the arrival stream and the frame pool.
int run_serve_cli(const util::Args& args) {
  serve::ServeConfig cfg;
  cfg.arrivals.seed = args.get_u64("seed", cfg.arrivals.seed);
  cfg.sim.seed = cfg.arrivals.seed;
  cfg.arrivals.rate_rps =
      args.get_double("arrival-rate", cfg.arrivals.rate_rps);
  cfg.arrivals.burst_rate_mult =
      args.get_double("burst-mult", cfg.arrivals.burst_rate_mult);
  cfg.arrivals.burst_fraction =
      args.get_double("burst-fraction", cfg.arrivals.burst_fraction);
  if (auto name = args.get("arrival-model")) {
    auto m = serve::find_arrival_model(*name);
    if (!m) {
      std::cerr << "--arrival-model must be poisson or mmpp\n";
      return kUsageError;
    }
    cfg.arrivals.model = *m;
  }
  cfg.duration = args.get_u64("duration-ms", cfg.duration / 1'000'000) * 1'000'000;
  cfg.max_requests = args.get_u64("max-requests", cfg.max_requests);
  cfg.admit_limit =
      static_cast<unsigned>(args.get_u64("admit-limit", cfg.admit_limit));
  cfg.overcommit = args.get_double("overcommit", cfg.overcommit);
  if (int rc = apply_fault_flags(args, cfg.sim.fault); rc != 0) return rc;

  const std::string policy = args.get_string("policy", "all");
  std::vector<core::PolicyKind> policies;
  for (auto k : core::kAllPolicies)
    if (policy == "all" || core::policy_name(k) == policy)
      policies.push_back(k);
  if (policies.empty()) {
    std::cerr << "unknown --policy " << policy << " (see --list)\n";
    return kUsageError;
  }
  if (args.has("trace-out") && policies.size() > 1) {
    std::cerr << "--trace-out needs a single --policy, not 'all'\n";
    return kUsageError;
  }

  std::cout << "serve: " << serve::arrival_model_name(cfg.arrivals.model)
            << " arrivals at " << cfg.arrivals.rate_rps << " req/s for "
            << static_cast<double>(cfg.duration) / 1e6
            << " ms, admit limit " << cfg.admit_limit << ", overcommit "
            << cfg.overcommit << ", seed " << cfg.arrivals.seed << "\n\n";

  int rc = 0;
  std::vector<serve::ServePoint> points;
  if (args.has("trace-out")) {
    obs::EventTrace etrace;
    serve::ServePoint pt;
    pt.policy = policies[0];
    pt.overcommit = cfg.overcommit;
    pt.metrics = serve::run_serve(cfg, policies[0], &etrace);
    rc = emit_trace(*args.get("trace-out"), etrace, pt.metrics.sim,
                    std::string(core::policy_name(policies[0])), {});
    points.push_back(std::move(pt));
  } else {
    const double overcommits[] = {cfg.overcommit};
    points = serve::run_serve_sweep(
        cfg, overcommits, policies,
        static_cast<unsigned>(args.get_u64("jobs", 0)));
  }
  for (const serve::ServePoint& pt : points) print_serve_point(pt);

  if (auto dir = args.get("csv")) {
    serve::save_serve_csv(*dir + "/its_serve.csv", points);
    std::cout << "wrote " << *dir << "/its_serve.csv\n";
  }
  if (args.has("slo-p99")) {
    const its::Duration gate = args.get_u64("slo-p99", 0);
    for (const serve::ServePoint& pt : points) {
      const its::Duration p99 = pt.metrics.latency.quantile(0.99);
      if (p99 > gate) {
        std::cerr << "SLO gate failed: policy "
                  << core::policy_name(pt.policy) << " aggregate p99 " << p99
                  << " ns > gate " << gate << " ns\n";
        return kSloGateFailed;
      }
    }
    std::cout << "SLO gate passed: every aggregate p99 <= " << gate
              << " ns\n";
  }
  return rc;
}

int run_cli(int argc, char** argv) {
  using namespace its;
  util::Args args(argc, argv);

  for (const auto& u : args.unknown({"batch", "policy", "scheduler", "seed", "degree",
                                     "media-us", "ctx-us", "length-scale", "csv",
                                     "trace", "trace-out", "dram-mb",
                                     "fault-profile", "fault-seed",
                                     "fault-outage", "jobs",
                                     "scenario", "arrival-rate",
                                     "arrival-model", "duration-ms",
                                     "admit-limit", "overcommit",
                                     "max-requests", "burst-mult",
                                     "burst-fraction", "slo-p99",
                                     "list", "help"})) {
    std::cerr << "unknown flag --" << u << " (try --help)\n";
    return kUsageError;
  }
  if (args.has("help")) {
    std::cout << "usage: its_cli [--list] [--batch=N] [--policy=NAME|all] "
                 "[--scheduler=rr|cfs]\n               [--seed=N] [--degree=N] "
                 "[--media-us=N] [--ctx-us=N]\n               "
                 "[--length-scale=F] [--csv=DIR] [--jobs=N]\n               "
                 "[--fault-profile=none|tail|bursty|errors|outage|hostile] "
                 "[--fault-seed=N]\n               "
                 "[--fault-outage=KEY=N,...] "
                 "[--trace-out=FILE.json]\n       its_cli "
                 "--trace=FILE.trc|FILE.lk --policy=NAME [--dram-mb=N]\n"
                 "  (.trc = binary trace, anything else parses as Valgrind "
                 "lackey output)\n"
                 "  --fault-profile enables deterministic fault injection "
                 "(see\n  docs/robustness.md); --fault-seed reseeds the "
                 "injector stream.\n"
                 "  --fault-outage schedules device outages (keys: period "
                 "length recovery\n  phase dead-at degrade-errors "
                 "offline-timeouts error-outage degraded-hold,\n  values in "
                 "ns), stacking on any --fault-profile.\n"
                 "       its_cli --scenario=serve [--policy=NAME|all] "
                 "[--arrival-rate=RPS]\n               "
                 "[--arrival-model=poisson|mmpp] [--duration-ms=N] "
                 "[--admit-limit=N]\n               [--overcommit=F] "
                 "[--max-requests=N] [--burst-mult=F]\n               "
                 "[--burst-fraction=F] [--slo-p99=NS]\n"
                 "  --scenario=serve runs the open-loop multi-tenant serving "
                 "scenario\n  (docs/serving.md): seeded arrivals spawn "
                 "short-lived processes into a\n  frame pool sized "
                 "1/overcommit of the admitted working set, and every\n  "
                 "retirement is scored against its tier's latency SLO.\n"
                 "  --slo-p99=NS gates the run: exit 6 if any run's "
                 "aggregate p99 exceeds\n  NS nanoseconds — the serving "
                 "analogue of a failing test.\n"
                 "  exit codes: 0 ok, 1 invariant violation, 2 usage, 3 bad "
                 "input file,\n  4 bad fault profile/outage spec, 5 "
                 "unrecoverable outage (page lost\n  past the fallback "
                 "pool), 6 SLO gate failed (--slo-p99 exceeded).\n"
                 "  --trace-out writes a Chrome trace_event JSON timeline "
                 "(load in\n  chrome://tracing or ui.perfetto.dev) and runs "
                 "the invariant checker;\n  needs a single --policy, not "
                 "'all'.\n"
                 "  --jobs sets the run-farm width for --policy=all (0 = "
                 "hardware\n  concurrency or ITS_JOBS; 1 = serial reference; "
                 "results are\n  bit-identical at every width).\n";
    return 0;
  }
  if (args.has("list")) return list_everything();

  const std::string scenario = args.get_string("scenario", "batch");
  if (scenario == "serve") return run_serve_cli(args);
  if (scenario != "batch") {
    std::cerr << "--scenario must be batch or serve\n";
    return kUsageError;
  }

  if (auto path = args.get("trace")) {
    // Single-trace mode: simulate a captured trace file under one policy.
    trace::Trace t{""};
    try {
      t = path->ends_with(".trc") ? trace::load_trace_file(*path)
                                  : trace::load_lackey_file(*path);
    } catch (const trace::TraceIoError&) {
      throw;  // main() maps this to kInputError with the typed message.
    } catch (const std::exception& e) {
      std::cerr << "its_cli: cannot load input '" << *path << "': " << e.what()
                << '\n';
      return kInputError;
    }
    std::cout << "loaded '" << t.name() << "': " << t.size() << " records, "
              << t.stats().footprint_pages << " pages touched\n\n";
    core::SimConfig cfg;
    cfg.seed = args.get_u64("seed", cfg.seed);
    cfg.dram_bytes = args.get_u64("dram-mb", 64) << 20;
    if (int rc = apply_fault_flags(args, cfg.fault); rc != 0) return rc;
    std::string pol = args.get_string("policy", "Sync");
    for (auto k : core::kAllPolicies) {
      if (core::policy_name(k) != pol) continue;
      core::Simulator sim(cfg, k);
      obs::EventTrace etrace;
      if (args.has("trace-out")) sim.set_trace(&etrace);
      std::string name = t.name();
      sim.add_process(std::make_unique<sched::Process>(
          0, t.name(), 30, std::make_shared<const trace::Trace>(std::move(t))));
      core::SimMetrics m = sim.run();
      print_one(pol, m);
      if (auto out = args.get("trace-out"))
        return emit_trace(*out, etrace, m, pol, {name});
      return 0;
    }
    std::cerr << "unknown --policy " << pol << " (see --list)\n";
    return kUsageError;
  }

  auto batch_idx = args.get_u64("batch", 1);
  if (batch_idx >= core::paper_batches().size()) {
    std::cerr << "--batch out of range\n";
    return kUsageError;
  }
  const core::BatchSpec& batch = core::paper_batches()[batch_idx];

  core::ExperimentConfig cfg;
  cfg.sim.seed = args.get_u64("seed", cfg.sim.seed);
  cfg.sim.va_prefetch.degree =
      static_cast<unsigned>(args.get_u64("degree", cfg.sim.va_prefetch.degree));
  cfg.sim.ull.read_latency = args.get_u64("media-us", 3) * 1000;
  cfg.sim.ull.write_latency = cfg.sim.ull.read_latency;
  cfg.sim.ctx_switch_cost = args.get_u64("ctx-us", 7) * 1000;
  cfg.gen.length_scale = args.get_double("length-scale", 1.0);
  cfg.jobs = static_cast<unsigned>(args.get_u64("jobs", 0));
  if (int rc = apply_fault_flags(args, cfg.sim.fault); rc != 0) return rc;
  std::string sched = args.get_string("scheduler", "rr");
  if (sched == "cfs") {
    cfg.sim.scheduler = core::SchedulerKind::kCfs;
  } else if (sched != "rr") {
    std::cerr << "--scheduler must be rr or cfs\n";
    return kUsageError;
  }

  std::string policy = args.get_string("policy", "all");
  if (args.has("trace-out") && policy == "all") {
    std::cerr << "--trace-out needs a single --policy, not 'all'\n";
    return kUsageError;
  }
  std::cout << "batch " << batch.name << ", scheduler " << sched << ", seed "
            << cfg.sim.seed << "\n\n";

  int rc = 0;
  std::vector<core::BatchResult> grid;
  if (policy == "all") {
    grid.push_back(core::run_batch_all(batch, cfg));
    for (auto k : core::kAllPolicies)
      print_one(std::string(core::policy_name(k)), grid[0].by_policy.at(k));
  } else {
    bool found = false;
    core::BatchResult r;
    r.spec = &batch;
    for (auto k : core::kAllPolicies) {
      if (core::policy_name(k) == policy) {
        obs::EventTrace etrace;
        obs::EventTrace* et = args.has("trace-out") ? &etrace : nullptr;
        r.by_policy.emplace(
            k, core::run_batch_policy(batch, k, cfg,
                                      core::batch_traces(batch, cfg.gen), et));
        print_one(policy, r.by_policy.at(k));
        if (auto out = args.get("trace-out")) {
          std::vector<std::string> names;
          for (auto id : batch.members)
            names.emplace_back(trace::spec_for(id).name);
          rc = emit_trace(*out, etrace, r.by_policy.at(k), policy,
                          std::move(names));
        }
        found = true;
      }
    }
    if (!found) {
      std::cerr << "unknown --policy " << policy << " (see --list)\n";
      return kUsageError;
    }
    grid.push_back(std::move(r));
  }

  if (auto dir = args.get("csv")) {
    core::save_csv_files(*dir, grid);
    std::cout << "wrote " << *dir << "/its_metrics.csv and its_processes.csv\n";
  }
  return rc;
}

}  // namespace
