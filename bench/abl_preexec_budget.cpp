// Ablation A2 — fault-aware pre-execution lookahead sweep.
//
// The pre-execute window (max records per episode) controls how much of the
// synchronous fault wait is converted into cache warming; the fill cap
// models MSHR/bandwidth limits.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Ablation: ITS pre-execute lookahead sweep (batch 2_Data_Intensive)\n";
  const core::BatchSpec& batch = core::paper_batches()[2];
  core::ExperimentConfig cfg;
  auto traces = core::batch_traces(batch, cfg.gen);

  const std::vector<unsigned> windows{0u, 32u, 128u, 512u, 1024u, 4096u};
  std::vector<core::SimMetrics> ms = core::run_sim_tasks(
      windows.size(), bench::jobs_from_args(argc, argv), [&](std::size_t i) {
        core::ExperimentConfig c = cfg;
        c.sim.preexec.max_records = windows[i];
        return core::run_batch_policy(batch, core::PolicyKind::kIts, c, traces);
      });

  util::Table t({"max records", "idle (ms)", "LLC misses", "lines warmed",
                 "stolen (ms)", "top50 finish (ms)"});
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const core::SimMetrics& m = ms[i];
    t.add_row({std::to_string(windows[i]),
               util::Table::fmt(static_cast<double>(m.idle.total()) / 1e6, 1),
               util::Table::fmt(m.llc_misses),
               util::Table::fmt(m.preexec_lines_warmed),
               util::Table::fmt(static_cast<double>(m.stolen_time) / 1e6, 1),
               util::Table::fmt(m.avg_finish_top_half() / 1e6, 1)});
  }

  std::cout << "\n== Ablation A2 — ITS pre-execute lookahead (2_Data_Intensive) ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: cache misses fall with the window until the "
               "fault wait (a few microseconds) or the fill cap binds; "
               "past that, extra window is wasted.\n";
  return 0;
}
