// Ablation A2 — fault-aware pre-execution lookahead sweep.
//
// The pre-execute window (max records per episode) controls how much of the
// synchronous fault wait is converted into cache warming; the fill cap
// models MSHR/bandwidth limits.
#include <iostream>

#include "core/experiment.h"
#include "util/table.h"

int main() {
  using namespace its;
  std::cerr << "Ablation: ITS pre-execute lookahead sweep (batch 2_Data_Intensive)\n";
  const core::BatchSpec& batch = core::paper_batches()[2];
  core::ExperimentConfig cfg;
  auto traces = core::batch_traces(batch, cfg.gen);

  util::Table t({"max records", "idle (ms)", "LLC misses", "lines warmed",
                 "stolen (ms)", "top50 finish (ms)"});
  for (unsigned window : {0u, 32u, 128u, 512u, 1024u, 4096u}) {
    std::cerr << "  window " << window << " ...\n";
    core::ExperimentConfig c = cfg;
    c.sim.preexec.max_records = window;
    core::SimMetrics m =
        core::run_batch_policy(batch, core::PolicyKind::kIts, c, traces);
    t.add_row({std::to_string(window),
               util::Table::fmt(static_cast<double>(m.idle.total()) / 1e6, 1),
               util::Table::fmt(m.llc_misses),
               util::Table::fmt(m.preexec_lines_warmed),
               util::Table::fmt(static_cast<double>(m.stolen_time) / 1e6, 1),
               util::Table::fmt(m.avg_finish_top_half() / 1e6, 1)});
  }

  std::cout << "\n== Ablation A2 — ITS pre-execute lookahead (2_Data_Intensive) ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: cache misses fall with the window until the "
               "fault wait (a few microseconds) or the fill cap binds; "
               "past that, extra window is wasted.\n";
  return 0;
}
