// Serving ablation — overcommit ratio (how far DRAM undershoots demand).
//
// Sweeps the admitted-working-set : DRAM ratio for the static baselines and
// ITS under the same bursty arrival stream.  Each doubling shrinks the
// frame pool and inflates per-request fault counts; ITS's tail-latency lead
// holds at every ratio because short-lived requests fault even when they
// fit (cold-start demand paging) — the serving restatement of the paper's
// claim that stolen idle time compounds with memory pressure
// (docs/serving.md has the committed numbers).
#include "bench_common.h"

#include "serve/report.h"
#include "serve/scenario.h"
#include "serve/sweep.h"
#include "util/quantile.h"

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Serving ablation: overcommit ratio sweep\n";

  serve::ServeConfig base;
  base.arrivals.model = serve::ArrivalModel::kMmpp;
  base.arrivals.rate_rps = 800.0;
  base.duration = 200'000'000;  // 200 ms arrival window
  base.admit_limit = 64;

  const double overcommits[] = {1.0, 2.0, 4.0, 8.0};
  const core::PolicyKind policies[] = {core::PolicyKind::kAsync,
                                       core::PolicyKind::kSync,
                                       core::PolicyKind::kIts};
  std::vector<serve::ServePoint> points = serve::run_serve_sweep(
      base, overcommits, policies, bench::jobs_from_args(argc, argv));

  util::Table t({"policy", "overcommit", "reject", "SLO viol", "p99 ms",
                 "p999 ms", "req/s"});
  for (const serve::ServePoint& pt : points) {
    const serve::ServeMetrics& m = pt.metrics;
    t.add_row({std::string(core::policy_name(pt.policy)),
               util::Table::fmt(pt.overcommit, 1), util::Table::fmt(m.rejects),
               util::Table::fmt(m.slo_violations),
               util::Table::fmt(static_cast<double>(m.latency.quantile(0.99)) / 1e6, 2),
               util::Table::fmt(static_cast<double>(m.latency.quantile(0.999)) / 1e6, 2),
               util::Table::fmt(m.requests_per_sec(), 0)});
  }

  std::cout << "\n== Serving ablation — overcommit ratio ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: ITS posts the lowest p99 at every ratio — even "
               "at 1.0,\nwhere the admitted working sets fit, short-lived "
               "requests are wall-to-wall\ncold-start demand paging that "
               "sync burns as idle time.  Async sheds most\nof the load "
               "(reject column) and still trails on p99; its violation "
               "count\nonly drops because rejected requests never get far "
               "enough to violate.\n";

  util::Args args(argc, argv);
  if (auto dir = args.get("csv")) {
    serve::save_serve_csv(*dir + "/abl_serve_overcommit.csv", points);
    std::cout << "\nwrote " << *dir << "/abl_serve_overcommit.csv\n";
  }
  return 0;
}
