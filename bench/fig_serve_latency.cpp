// Serving figure — tail latency per policy under bursty open-loop load.
//
// The paper's batches prove ITS wins on makespan; this is the serving-side
// restatement (docs/serving.md): an MMPP arrival stream held slightly below
// the machine's sustainable rate, so the quiet state keeps up and every
// burst transiently overloads the overcommitted frame pool.  Synchronous
// I/O burns the burst backlog as idle CPU, async burns it as context-switch
// storms; ITS steals the stalls, so the p99/p999 gap is the figure.
#include "bench_common.h"

#include "serve/report.h"
#include "serve/scenario.h"
#include "serve/sweep.h"
#include "util/quantile.h"

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Serving figure: SLO-centric tail latency per policy\n";

  serve::ServeConfig base;
  base.arrivals.model = serve::ArrivalModel::kMmpp;
  base.arrivals.rate_rps = 800.0;
  base.duration = 100'000'000;  // 100 ms arrival window
  base.admit_limit = 64;
  base.overcommit = 2.0;

  const double overcommits[] = {base.overcommit};
  std::vector<serve::ServePoint> points = serve::run_serve_sweep(
      base, overcommits, core::kAllPolicies, bench::jobs_from_args(argc, argv));

  util::Table t({"policy", "admit", "reject", "done", "SLO viol", "p50 ms",
                 "p99 ms", "p999 ms", "req/s"});
  for (const serve::ServePoint& pt : points) {
    const serve::ServeMetrics& m = pt.metrics;
    t.add_row({std::string(core::policy_name(pt.policy)),
               util::Table::fmt(m.admits), util::Table::fmt(m.rejects),
               util::Table::fmt(m.completed),
               util::Table::fmt(m.slo_violations),
               util::Table::fmt(static_cast<double>(m.latency.quantile(0.50)) / 1e6, 2),
               util::Table::fmt(static_cast<double>(m.latency.quantile(0.99)) / 1e6, 2),
               util::Table::fmt(static_cast<double>(m.latency.quantile(0.999)) / 1e6, 2),
               util::Table::fmt(m.requests_per_sec(), 0)});
  }

  std::cout << "\n== Serving — tail latency under MMPP bursts (overcommit "
            << base.overcommit << ", admit limit " << base.admit_limit
            << ") ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: ITS posts the lowest p99/p999 and the fewest "
               "SLO violations;\nsynchronous modes stack burst backlog into "
               "idle time, async into context\nswitches and rejects.\n";

  util::Args args(argc, argv);
  if (auto dir = args.get("csv")) {
    serve::save_serve_csv(*dir + "/fig_serve_latency.csv", points);
    std::cout << "\nwrote " << *dir << "/fig_serve_latency.csv\n";
  }
  return 0;
}
