// Figure 4a — "Analysis of CPU Waiting Time": normalised total CPU idle
// time for Async / Sync / Sync_Runahead / Sync_Prefetch / ITS over the four
// process batches.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Fig. 4a: normalised total CPU idle time\n";
  auto grid = bench::run_grid({}, argc, argv);
  bench::print_normalized(
      "Figure 4a — Normalised Total CPU Idle Time", grid, core::total_idle_ns,
      "Async 2.59/2.89/2.58/2.95; Sync, Sync_Runahead, Sync_Prefetch between "
      "1.08 and 1.75; ITS saves 61-66% vs Async and 17-43% vs Sync.");
  bench::print_raw("fig4a", grid, core::total_idle_ns, 1e6, "ms of CPU idle time");
  its::bench::maybe_save_csv(argc, argv, grid);
  return 0;
}
