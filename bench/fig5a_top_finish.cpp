// Figure 5a — "Analysis of Top 50% Process Finish Time": average finish
// time of the three highest-priority processes per batch, normalised to ITS.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Fig. 5a: top-50%-priority average finish time\n";
  auto grid = bench::run_grid({}, argc, argv);
  bench::print_normalized(
      "Figure 5a — Top 50% Priority Average Finish Time", grid,
      core::top_half_finish,
      "ITS saves 14-75% vs the four baselines (Async worst at 2.9/2.8/4.1/3.1); "
      "the self-improving thread accelerates exactly these processes.");
  bench::print_raw("fig5a", grid, core::top_half_finish, 1e6, "ms mean finish time");
  its::bench::maybe_save_csv(argc, argv, grid);
  return 0;
}
