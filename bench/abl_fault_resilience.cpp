// Ablation A12 — fault resilience (error rate × tail weight).
//
// The paper's premise is a *reliable* ~3 µs ULL read; this ablation asks
// how each I/O-mode policy degrades when the device misbehaves.  Sweeps a
// grid of media/link error rates × Pareto tail probabilities (the two axes
// of fault/fault_injector.h's model, with the hostile profile's tail shape)
// and reports, per policy, the idle time, makespan inflation over the
// fault-free run, and the resilience counters (retries, deadline aborts,
// sync→async fallbacks, degraded-mode time).
#include "bench_common.h"

#include "fault/fault_injector.h"

#include <map>

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Ablation: fault resilience (error rate x tail weight)\n";
  const core::BatchSpec& batch = core::paper_batches()[1];
  core::ExperimentConfig base;
  base.gen.length_scale = 0.05;  // keep the 3x3x5 sweep tractable
  auto traces = core::batch_traces(batch, base.gen);
  const unsigned jobs = bench::jobs_from_args(argc, argv);
  const std::size_t np = std::size(core::kAllPolicies);

  // Fault-free baselines per policy, for the inflation column.
  std::vector<core::SimMetrics> clean_ms = core::run_sim_tasks(
      np, jobs, [&](std::size_t i) {
        return core::run_batch_policy(batch, core::kAllPolicies[i], base, traces);
      });
  std::map<core::PolicyKind, core::SimMetrics> clean;
  for (std::size_t i = 0; i < np; ++i)
    clean.emplace(core::kAllPolicies[i], clean_ms[i]);

  // The full 3×3×5 grid farms as one submission: index decomposes as
  // (error rate, tail weight, policy) with policy fastest.
  const std::vector<double> errs{0.0, 0.01, 0.05};
  const std::vector<double> tails{0.0, 0.05, 0.2};
  std::vector<core::SimMetrics> grid = core::run_sim_tasks(
      errs.size() * tails.size() * np, jobs, [&](std::size_t i) {
        double err = errs[i / (tails.size() * np)];
        double tail = tails[(i / np) % tails.size()];
        core::ExperimentConfig cfg = base;
        cfg.sim.fault.enabled = true;
        cfg.sim.fault.seed = 7;
        cfg.sim.fault.read_error_rate = err;
        cfg.sim.fault.write_error_rate = err / 3.0;
        cfg.sim.fault.link_error_rate = err / 6.0;
        cfg.sim.fault.latency.tail = fault::TailKind::kPareto;
        cfg.sim.fault.latency.tail_prob = tail;
        cfg.sim.fault.latency.pareto_alpha = 1.3;
        cfg.sim.fault.latency.pareto_xm = 2000.0;
        return core::run_batch_policy(batch, core::kAllPolicies[i % np], cfg,
                                      traces);
      });

  util::Table t({"errors", "tail", "policy", "idle (ms)", "makespan x",
                 "retries", "aborts", "fallbacks", "degraded (ms)"});
  std::size_t i = 0;
  for (double err : errs) {
    for (double tail : tails) {
      for (core::PolicyKind k : core::kAllPolicies) {
        const core::SimMetrics& m = grid[i++];
        const double inflation = static_cast<double>(m.makespan) /
                                 static_cast<double>(clean.at(k).makespan);
        t.add_row({util::Table::fmt(err, 2), util::Table::fmt(tail, 2),
                   std::string(core::policy_name(k)),
                   util::Table::fmt(static_cast<double>(m.idle.total()) / 1e6, 1),
                   util::Table::fmt(inflation, 3),
                   util::Table::fmt(m.io_retries),
                   util::Table::fmt(m.deadline_aborts),
                   util::Table::fmt(m.mode_fallbacks),
                   util::Table::fmt(static_cast<double>(m.degraded_time) / 1e6,
                                    2)});
      }
    }
  }

  std::cout << "\n== Ablation A12 — fault resilience "
               "(1_Data_Intensive, Pareto tail) ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: the sync-mode policies lean on the watchdog as "
               "tails fatten (aborts and fallbacks climb, bounding busy-wait "
               "growth), while Async only inflates through retried DMA; ITS "
               "keeps the lowest idle time until the error rate makes retry "
               "backoff dominate the stolen windows.\n";
  return 0;
}
