// Figure 4c — "Numbers of CPU Cache Miss": LLC miss counts per batch and
// policy (the paper's unit is millions; our traces are ~100x shorter so raw
// counts are reported in thousands).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Fig. 4c: CPU cache-miss counts\n";
  auto grid = bench::run_grid({}, argc, argv);
  bench::print_normalized(
      "Figure 4c — CPU Cache Misses (normalised)", grid, core::llc_misses,
      "Sync_Runahead is the most effective miss reducer (runahead fires on "
      "every LLC miss); ITS is second (fault-aware pre-execution fires only "
      "on page faults, which handling is more expensive than a cache miss), "
      "and the effect grows with data-intensive processes.");
  bench::print_raw("fig4c", grid, core::llc_misses, 1e3, "thousands of LLC misses");
  its::bench::maybe_save_csv(argc, argv, grid);
  return 0;
}
