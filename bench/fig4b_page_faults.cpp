// Figure 4b — "Numbers of Page Fault": major page-fault counts per batch
// and policy (the paper's unit is 100k counts; our traces are ~100x shorter
// so raw counts are reported in thousands).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Fig. 4b: major page-fault counts\n";
  auto grid = bench::run_grid({}, argc, argv);
  bench::print_normalized(
      "Figure 4b — Major Page Faults (normalised)", grid, core::major_faults,
      "ITS saves >=65%/61% of page faults vs Async/Sync on the 0/1-intensive "
      "batches (prefetch accuracy is high for non-data-intensive processes); "
      "savings shrink as data-intensive processes are added.");
  bench::print_raw("fig4b", grid, core::major_faults, 1e3, "thousands of major faults");
  its::bench::maybe_save_csv(argc, argv, grid);
  return 0;
}
