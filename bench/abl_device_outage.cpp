// Ablation A13 — device outages (makespan + availability vs duty cycle).
//
// The watchdog handles a *slow* device; this ablation takes the device
// away entirely.  Sweeps the scheduled-outage duty cycle (offline fraction
// of each period, storage/device_health.h's FSM) over all five I/O-mode
// policies and reports the makespan inflation over the outage-free run,
// the availability split (healthy/degraded/offline/recovering time), and
// the compressed-DRAM fallback-pool traffic — how much of the outage each
// policy can hide by giving way instead of busy-waiting a dead device.
#include "bench_common.h"

#include "fault/fault_injector.h"

#include <map>

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Ablation: device outages (makespan + availability vs duty)\n";
  const core::BatchSpec& batch = core::paper_batches()[1];
  core::ExperimentConfig base;
  base.gen.length_scale = 0.05;  // match the resilience ablation's scale
  auto traces = core::batch_traces(batch, base.gen);
  const unsigned jobs = bench::jobs_from_args(argc, argv);
  const std::size_t np = std::size(core::kAllPolicies);

  // Outage-free baselines per policy, for the inflation column.
  std::vector<core::SimMetrics> clean_ms = core::run_sim_tasks(
      np, jobs, [&](std::size_t i) {
        return core::run_batch_policy(batch, core::kAllPolicies[i], base, traces);
      });
  std::map<core::PolicyKind, core::SimMetrics> clean;
  for (std::size_t i = 0; i < np; ++i)
    clean.emplace(core::kAllPolicies[i], clean_ms[i]);

  // Duty cycle = length / period at a fixed 2 ms period; the error model
  // stays off so the sweep isolates the outage machinery.
  const its::Duration period = 2'000'000;
  const std::vector<double> duties{0.0, 0.1, 0.25, 0.5};
  std::vector<core::SimMetrics> grid = core::run_sim_tasks(
      duties.size() * np, jobs, [&](std::size_t i) {
        const double duty = duties[i / np];
        core::ExperimentConfig cfg = base;
        cfg.sim.fault.enabled = true;
        cfg.sim.fault.seed = 7;
        cfg.sim.fault.outage.period = period;
        cfg.sim.fault.outage.length =
            static_cast<its::Duration>(static_cast<double>(period) * duty);
        cfg.sim.fault.outage.recovery = period / 20;
        return core::run_batch_policy(batch, core::kAllPolicies[i % np], cfg,
                                      traces);
      });

  util::Table t({"duty", "policy", "makespan x", "offline (ms)",
                 "recovering (ms)", "degraded faults", "pool st/hit/drn"});
  std::size_t i = 0;
  for (double duty : duties) {
    for (core::PolicyKind k : core::kAllPolicies) {
      const core::SimMetrics& m = grid[i++];
      const double inflation = static_cast<double>(m.makespan) /
                               static_cast<double>(clean.at(k).makespan);
      t.add_row({util::Table::fmt(duty, 2),
                 std::string(core::policy_name(k)),
                 util::Table::fmt(inflation, 3),
                 util::Table::fmt(static_cast<double>(m.health_offline_time) / 1e6,
                                  2),
                 util::Table::fmt(
                     static_cast<double>(m.health_recovering_time) / 1e6, 2),
                 util::Table::fmt(m.faults_served_degraded),
                 util::Table::fmt(m.pool_stores) + "/" +
                     util::Table::fmt(m.pool_hits) + "/" +
                     util::Table::fmt(m.pool_drains)});
    }
  }

  std::cout << "\n== Ablation A13 — device outages "
               "(1_Data_Intensive, 2 ms period) ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: makespan inflation tracks the duty cycle "
               "roughly linearly for every policy — offline windows stall "
               "demand faults outright — but the sync-mode policies shed "
               "their busy-wait penalty through the forced async fallback, "
               "and pool traffic rises with duty as evictions land during "
               "windows; availability times always partition the makespan.\n";
  return 0;
}
