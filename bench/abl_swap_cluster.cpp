// Ablation A8 — swap cluster size (larger I/O per fault).
//
// §1: "this resource inefficiency becomes more pronounced, particularly
// when dealing with larger I/O sizes like huge page management" — bigger
// clusters make each synchronous wait longer (more media + link time), so
// there is more idle time to steal.  Sweeps the per-fault cluster size for
// Sync and ITS and reports the ITS saving at each size.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Ablation: swap cluster size (larger I/O per fault)\n";
  const core::BatchSpec& batch = core::paper_batches()[1];
  core::ExperimentConfig base;
  auto traces = core::batch_traces(batch, base.gen);

  // Task i runs cluster clusters[i/2] under Sync (even i) or ITS (odd i).
  const std::vector<unsigned> clusters{1u, 2u, 4u, 8u, 16u};
  std::vector<core::SimMetrics> ms = core::run_sim_tasks(
      clusters.size() * 2, bench::jobs_from_args(argc, argv),
      [&](std::size_t i) {
        core::ExperimentConfig cfg = base;
        cfg.sim.swap_cluster_pages = clusters[i / 2];
        return core::run_batch_policy(
            batch, i % 2 == 0 ? core::PolicyKind::kSync : core::PolicyKind::kIts,
            cfg, traces);
      });

  util::Table t({"cluster (pages)", "I/O size", "Sync idle (ms)", "ITS idle (ms)",
                 "ITS saving %", "Sync majors", "ITS majors"});
  for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
    const core::SimMetrics& sync = ms[2 * ci];
    const core::SimMetrics& its_m = ms[2 * ci + 1];
    double s = static_cast<double>(sync.idle.total());
    double i = static_cast<double>(its_m.idle.total());
    t.add_row({std::to_string(clusters[ci]),
               std::to_string(4 * clusters[ci]) + " KiB",
               util::Table::fmt(s / 1e6, 1), util::Table::fmt(i / 1e6, 1),
               util::Table::fmt(100.0 * (1.0 - i / s), 1),
               util::Table::fmt(sync.major_faults),
               util::Table::fmt(its_m.major_faults)});
  }

  std::cout << "\n== Ablation A8 — swap cluster size (1_Data_Intensive) ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: clustering reduces fault counts for both "
               "policies (readahead), but the per-fault wait grows with the "
               "I/O size — the motivation §1 gives for stealing idle time "
               "on large transfers.\n";
  return 0;
}
