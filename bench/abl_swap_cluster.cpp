// Ablation A8 — swap cluster size (larger I/O per fault).
//
// §1: "this resource inefficiency becomes more pronounced, particularly
// when dealing with larger I/O sizes like huge page management" — bigger
// clusters make each synchronous wait longer (more media + link time), so
// there is more idle time to steal.  Sweeps the per-fault cluster size for
// Sync and ITS and reports the ITS saving at each size.
#include <iostream>

#include "core/experiment.h"
#include "util/table.h"

int main() {
  using namespace its;
  std::cerr << "Ablation: swap cluster size (larger I/O per fault)\n";
  const core::BatchSpec& batch = core::paper_batches()[1];
  core::ExperimentConfig base;
  auto traces = core::batch_traces(batch, base.gen);

  util::Table t({"cluster (pages)", "I/O size", "Sync idle (ms)", "ITS idle (ms)",
                 "ITS saving %", "Sync majors", "ITS majors"});
  for (unsigned cluster : {1u, 2u, 4u, 8u, 16u}) {
    std::cerr << "  cluster " << cluster << " ...\n";
    core::ExperimentConfig cfg = base;
    cfg.sim.swap_cluster_pages = cluster;
    core::SimMetrics sync =
        core::run_batch_policy(batch, core::PolicyKind::kSync, cfg, traces);
    core::SimMetrics its_m =
        core::run_batch_policy(batch, core::PolicyKind::kIts, cfg, traces);
    double s = static_cast<double>(sync.idle.total());
    double i = static_cast<double>(its_m.idle.total());
    t.add_row({std::to_string(cluster), std::to_string(4 * cluster) + " KiB",
               util::Table::fmt(s / 1e6, 1), util::Table::fmt(i / 1e6, 1),
               util::Table::fmt(100.0 * (1.0 - i / s), 1),
               util::Table::fmt(sync.major_faults),
               util::Table::fmt(its_m.major_faults)});
  }

  std::cout << "\n== Ablation A8 — swap cluster size (1_Data_Intensive) ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: clustering reduces fault counts for both "
               "policies (readahead), but the per-fault wait grows with the "
               "I/O size — the motivation §1 gives for stealing idle time "
               "on large transfers.\n";
  return 0;
}
