// Shared harness for the figure-reproduction benches.
//
// Each bench binary regenerates one table/figure from the paper: it runs
// the four §4.1 process batches under all five I/O-mode policies (identical
// traces, DRAM sizing and priorities per batch) and prints the same series
// the figure reports — values normalised to ITS, plus the raw measurements
// and the paper's reported range for comparison.
#pragma once

#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "farm/farm.h"
#include "util/args.h"
#include "util/table.h"

namespace its::bench {

/// Every bench binary accepts `--jobs=N`: the run-farm width used for the
/// independent simulations behind a figure or sweep (0/absent = the farm
/// default — ITS_JOBS env or hardware_concurrency; 1 = serial reference).
inline unsigned jobs_from_args(int argc, char** argv) {
  util::Args args(argc, argv);
  return static_cast<unsigned>(args.get_u64("jobs", 0));
}

/// Runs the full 4-batch × 5-policy grid on the work-stealing run farm.
inline std::vector<core::BatchResult> run_grid(
    core::ExperimentConfig cfg = {}, int argc = 0, char** argv = nullptr) {
  if (argc != 0) cfg.jobs = jobs_from_args(argc, argv);
  std::cerr << "  running " << core::paper_batches().size()
            << " batches x 5 policies (--jobs="
            << (cfg.jobs == 0 ? farm::Farm::default_jobs() : cfg.jobs)
            << ") ..." << std::endl;
  return core::run_grid_all(cfg);
}

/// Every figure bench accepts an optional `--csv=DIR` flag; when given, the
/// grid behind the figure is exported for plotting/regression tracking.
inline void maybe_save_csv(int argc, char** argv,
                           const std::vector<core::BatchResult>& grid) {
  util::Args args(argc, argv);
  if (auto dir = args.get("csv")) {
    core::save_csv_files(*dir, grid);
    std::cout << "\nwrote " << *dir << "/its_metrics.csv and its_processes.csv\n";
  }
}

/// Prints one figure: rows = policies, columns = batches (the paper's
/// x-axis, "Number of Intensive Processes among Six Processes"),
/// cells = extractor(policy)/extractor(ITS).
inline void print_normalized(const std::string& title,
                             const std::vector<core::BatchResult>& grid,
                             double (*extract)(const core::SimMetrics&),
                             const std::string& paper_note) {
  std::cout << "\n== " << title << " ==\n";
  std::cout << "(normalised to ITS; x-axis = number of data-intensive "
               "processes among six)\n\n";
  std::vector<std::string> header{"policy"};
  for (const auto& r : grid) header.push_back(std::to_string(r.spec->data_intensive));
  util::Table t(header);
  for (core::PolicyKind k : core::kAllPolicies) {
    std::vector<std::string> row{std::string(core::policy_name(k))};
    for (const auto& r : grid) row.push_back(util::Table::fmt(r.normalized(k, extract), 2));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  if (!paper_note.empty()) std::cout << "\nPaper reports: " << paper_note << "\n";
}

/// Prints the raw (unnormalised) values behind a figure.
inline void print_raw(const std::string& title,
                      const std::vector<core::BatchResult>& grid,
                      double (*extract)(const core::SimMetrics&), double unit,
                      const std::string& unit_name) {
  std::cout << "\nRaw values (" << unit_name << "):\n";
  std::vector<std::string> header{"policy"};
  for (const auto& r : grid) header.push_back(std::string(r.spec->name));
  util::Table t(header);
  for (core::PolicyKind k : core::kAllPolicies) {
    std::vector<std::string> row{std::string(core::policy_name(k))};
    for (const auto& r : grid)
      row.push_back(util::Table::fmt(extract(r.by_policy.at(k)) / unit, 2));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  (void)title;
}

}  // namespace its::bench
