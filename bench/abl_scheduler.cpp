// Ablation A6 — scheduling discipline under ITS.
//
// The paper's mini-kernel runs SCHED_RR with NICE slices; this ablation
// re-runs Sync and ITS under a CFS-style fair scheduler to check that the
// priority-aware thread selection (which consults the *next-to-be-run*
// process, whatever the discipline) keeps its benefit.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Ablation: SCHED_RR vs CFS\n";

  const core::SchedulerKind scheds[] = {core::SchedulerKind::kRoundRobin,
                                        core::SchedulerKind::kCfs};
  const std::size_t batch_idx[] = {1, 3};
  const core::PolicyKind pols[] = {core::PolicyKind::kSync, core::PolicyKind::kIts};

  core::ExperimentConfig cfg;
  std::vector<std::vector<std::shared_ptr<const trace::Trace>>> traces;
  for (std::size_t bi : batch_idx)
    traces.push_back(core::batch_traces(core::paper_batches()[bi], cfg.gen));

  // The 2×2×2 grid farms as eight independent tasks: index decomposes as
  // (scheduler, batch, policy) with policy fastest, mirroring the old loops.
  std::vector<core::SimMetrics> ms = core::run_sim_tasks(
      std::size(scheds) * std::size(batch_idx) * std::size(pols),
      bench::jobs_from_args(argc, argv), [&](std::size_t i) {
        std::size_t p = i % std::size(pols);
        std::size_t b = (i / std::size(pols)) % std::size(batch_idx);
        std::size_t s = i / (std::size(pols) * std::size(batch_idx));
        core::ExperimentConfig c = cfg;
        c.sim.scheduler = scheds[s];
        return core::run_batch_policy(core::paper_batches()[batch_idx[b]],
                                      pols[p], c, traces[b]);
      });

  util::Table t({"scheduler", "policy", "batch", "idle (ms)", "top50 (ms)",
                 "bot50 (ms)", "give-ways"});
  std::size_t i = 0;
  for (auto schedkind : scheds) {
    const char* sname =
        schedkind == core::SchedulerKind::kRoundRobin ? "SCHED_RR" : "CFS";
    for (std::size_t bi : batch_idx) {
      const core::BatchSpec& batch = core::paper_batches()[bi];
      for (auto k : pols) {
        const core::SimMetrics& m = ms[i++];
        t.add_row({sname, std::string(core::policy_name(k)), std::string(batch.name),
                   util::Table::fmt(static_cast<double>(m.idle.total()) / 1e6, 1),
                   util::Table::fmt(m.avg_finish_top_half() / 1e6, 1),
                   util::Table::fmt(m.avg_finish_bottom_half() / 1e6, 1),
                   util::Table::fmt(m.async_switches)});
      }
    }
  }

  std::cout << "\n== Ablation A6 — scheduling discipline (Sync vs ITS) ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: ITS beats Sync under both disciplines; under "
               "CFS the fair rotation wakes low-priority processes more "
               "often, so the self-sacrificing thread engages more and the "
               "top-priority advantage narrows.\n";
  return 0;
}
