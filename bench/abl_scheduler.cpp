// Ablation A6 — scheduling discipline under ITS.
//
// The paper's mini-kernel runs SCHED_RR with NICE slices; this ablation
// re-runs Sync and ITS under a CFS-style fair scheduler to check that the
// priority-aware thread selection (which consults the *next-to-be-run*
// process, whatever the discipline) keeps its benefit.
#include <iostream>

#include "core/experiment.h"
#include "util/table.h"

int main() {
  using namespace its;
  std::cerr << "Ablation: SCHED_RR vs CFS\n";

  util::Table t({"scheduler", "policy", "batch", "idle (ms)", "top50 (ms)",
                 "bot50 (ms)", "give-ways"});
  for (auto schedkind : {core::SchedulerKind::kRoundRobin, core::SchedulerKind::kCfs}) {
    const char* sname =
        schedkind == core::SchedulerKind::kRoundRobin ? "SCHED_RR" : "CFS";
    for (std::size_t bi : {std::size_t{1}, std::size_t{3}}) {
      const core::BatchSpec& batch = core::paper_batches()[bi];
      std::cerr << "  " << sname << " / " << batch.name << " ...\n";
      core::ExperimentConfig cfg;
      cfg.sim.scheduler = schedkind;
      auto traces = core::batch_traces(batch, cfg.gen);
      for (auto k : {core::PolicyKind::kSync, core::PolicyKind::kIts}) {
        core::SimMetrics m = core::run_batch_policy(batch, k, cfg, traces);
        t.add_row({sname, std::string(core::policy_name(k)), std::string(batch.name),
                   util::Table::fmt(static_cast<double>(m.idle.total()) / 1e6, 1),
                   util::Table::fmt(m.avg_finish_top_half() / 1e6, 1),
                   util::Table::fmt(m.avg_finish_bottom_half() / 1e6, 1),
                   util::Table::fmt(m.async_switches)});
      }
    }
  }

  std::cout << "\n== Ablation A6 — scheduling discipline (Sync vs ITS) ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: ITS beats Sync under both disciplines; under "
               "CFS the fair rotation wakes low-priority processes more "
               "often, so the self-sacrificing thread engages more and the "
               "top-priority advantage narrows.\n";
  return 0;
}
