// Ablation A4 — ITS component knock-outs.
//
// Disables each of the three ITS mechanisms in isolation (self-sacrificing
// thread, page-prefetch policy, fault-aware pre-execution) and reports the
// idle-time and finish-time impact across all four batches, attributing the
// end-to-end win to its parts.
#include "bench_common.h"

#include "core/simulator.h"

namespace {

its::core::SimMetrics run_variant(
    const its::core::BatchSpec& batch, const its::core::ExperimentConfig& cfg,
    const std::vector<std::shared_ptr<const its::trace::Trace>>& traces,
    const its::core::ItsOptions& opts) {
  its::core::SimConfig sc = cfg.sim;
  sc.dram_bytes = its::core::dram_bytes_for(batch, cfg.dram_headroom,
                                            cfg.gen.footprint_scale);
  its::core::Simulator sim(sc, its::core::make_its_policy(opts));
  for (auto& p : its::core::build_processes(batch, traces, sc.seed))
    sim.add_process(std::move(p));
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Ablation: ITS component knock-outs\n";

  struct Variant {
    const char* name;
    core::ItsOptions opts;
  };
  const Variant variants[] = {
      {"ITS (full)", {}},
      {"no self-sacrifice", {.self_sacrificing = false}},
      {"no page-prefetch", {.page_prefetch = false}},
      {"no pre-execute", {.pre_execute = false}},
      {"none (== Sync)",
       {.self_sacrificing = false, .page_prefetch = false, .pre_execute = false}},
  };
  const std::size_t nv = std::size(variants);

  core::ExperimentConfig cfg;
  const auto& batches = core::paper_batches();
  std::vector<std::vector<std::shared_ptr<const trace::Trace>>> traces;
  for (const auto& batch : batches) traces.push_back(core::batch_traces(batch, cfg.gen));

  // All (batch, variant) cells farm out at once: task i runs variant i%nv
  // over batch i/nv; collection by index keeps the table deterministic.
  std::vector<core::SimMetrics> ms = core::run_sim_tasks(
      batches.size() * nv, bench::jobs_from_args(argc, argv),
      [&](std::size_t i) {
        return run_variant(batches[i / nv], cfg, traces[i / nv],
                           variants[i % nv].opts);
      });

  util::Table idle({"variant", "0_DI", "1_DI", "2_DI", "3_DI"});
  util::Table top({"variant", "0_DI", "1_DI", "2_DI", "3_DI"});
  for (std::size_t vi = 0; vi < nv; ++vi) {
    std::vector<std::string> r1{variants[vi].name}, r2{variants[vi].name};
    for (std::size_t b = 0; b < batches.size(); ++b) {
      double base_idle = static_cast<double>(ms[b * nv].idle.total());
      double base_top = ms[b * nv].avg_finish_top_half();
      r1.push_back(util::Table::fmt(
          static_cast<double>(ms[b * nv + vi].idle.total()) / base_idle, 2));
      r2.push_back(util::Table::fmt(ms[b * nv + vi].avg_finish_top_half() / base_top, 2));
    }
    idle.add_row(std::move(r1));
    top.add_row(std::move(r2));
  }

  std::cout << "\n== Ablation A4 — ITS component knock-outs ==\n";
  std::cout << "\nTotal CPU idle time (normalised to full ITS):\n\n";
  idle.print(std::cout);
  std::cout << "\nTop-50% priority finish time (normalised to full ITS):\n\n";
  top.print(std::cout);
  std::cout << "\nExpectation: page-prefetch carries most of the idle-time "
               "win on predictable batches; pre-execution matters more as "
               "data-intensive processes are added (Fig. 4c's narrative); "
               "self-sacrifice shows up in the finish-time split.\n";
  return 0;
}
