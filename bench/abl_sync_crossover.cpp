// Ablation A3 — the paper's premise: when does synchronous I/O become
// promising?  Sweeps the ULL media latency against the fixed 7 µs context
// switch and reports Sync vs Async idle time and top-priority finish time.
//
// Expectation: Sync wins (less idle) while the swap-in time is below the
// context-switch cost; Async catches up and wins as the device gets slower
// — the crossover sits near the switch cost, which is exactly the
// "killer microsecond" argument (§2.1.2).
#include "bench_common.h"

#include "storage/dma.h"

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Ablation: Sync vs Async crossover over device latency\n";
  const core::BatchSpec& batch = core::paper_batches()[1];
  core::ExperimentConfig cfg;
  auto traces = core::batch_traces(batch, cfg.gen);

  // (latency, policy) pairs farm out as independent tasks: task i runs
  // latencies[i/2] under Sync (even i) or Async (odd i).
  const std::vector<its::Duration> latencies{1000u,  2000u,  3000u,  5000u,
                                             7000u, 10000u, 15000u, 25000u};
  std::vector<core::SimMetrics> ms = core::run_sim_tasks(
      latencies.size() * 2, bench::jobs_from_args(argc, argv),
      [&](std::size_t i) {
        core::ExperimentConfig c = cfg;
        c.sim.ull.read_latency = latencies[i / 2];
        c.sim.ull.write_latency = latencies[i / 2];
        return core::run_batch_policy(
            batch,
            i % 2 == 0 ? core::PolicyKind::kSync : core::PolicyKind::kAsync, c,
            traces);
      });

  util::Table t({"media latency (us)", "swap-in (us)", "Sync idle (ms)",
                 "Async idle (ms)", "Sync/Async", "winner"});
  for (std::size_t li = 0; li < latencies.size(); ++li) {
    its::Duration lat = latencies[li];
    double s = static_cast<double>(ms[2 * li].idle.total()) / 1e6;
    double a = static_cast<double>(ms[2 * li + 1].idle.total()) / 1e6;
    core::ExperimentConfig c = cfg;
    c.sim.ull.read_latency = lat;
    c.sim.ull.write_latency = lat;
    storage::DmaController dma(c.sim.ull, c.sim.pcie);
    double swapin_us =
        static_cast<double>(dma.post_page(0, storage::Dir::kRead)) / 1e3;
    t.add_row({util::Table::fmt(static_cast<double>(lat) / 1e3, 0),
               util::Table::fmt(swapin_us, 2), util::Table::fmt(s, 1),
               util::Table::fmt(a, 1), util::Table::fmt(s / a, 2),
               s < a ? "Sync" : "Async"});
  }

  std::cout << "\n== Ablation A3 — Sync vs Async crossover (ctx switch fixed "
               "at 7 us) ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: Sync wins below the ~7 us switch cost and "
               "loses above it — synchronous I/O mode is promising exactly "
               "for ULL devices.\n";
  return 0;
}
