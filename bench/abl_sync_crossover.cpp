// Ablation A3 — the paper's premise: when does synchronous I/O become
// promising?  Sweeps the ULL media latency against the fixed 7 µs context
// switch and reports Sync vs Async idle time and top-priority finish time.
//
// Expectation: Sync wins (less idle) while the swap-in time is below the
// context-switch cost; Async catches up and wins as the device gets slower
// — the crossover sits near the switch cost, which is exactly the
// "killer microsecond" argument (§2.1.2).
#include "core/experiment.h"
#include "storage/dma.h"
#include "util/table.h"

#include <iostream>

int main() {
  using namespace its;
  std::cerr << "Ablation: Sync vs Async crossover over device latency\n";
  const core::BatchSpec& batch = core::paper_batches()[1];
  core::ExperimentConfig cfg;
  auto traces = core::batch_traces(batch, cfg.gen);

  util::Table t({"media latency (us)", "swap-in (us)", "Sync idle (ms)",
                 "Async idle (ms)", "Sync/Async", "winner"});
  for (its::Duration lat :
       {1000u, 2000u, 3000u, 5000u, 7000u, 10000u, 15000u, 25000u}) {
    std::cerr << "  media " << lat / 1000 << " us ...\n";
    core::ExperimentConfig c = cfg;
    c.sim.ull.read_latency = lat;
    c.sim.ull.write_latency = lat;
    core::SimMetrics sync =
        core::run_batch_policy(batch, core::PolicyKind::kSync, c, traces);
    core::SimMetrics async =
        core::run_batch_policy(batch, core::PolicyKind::kAsync, c, traces);
    double s = static_cast<double>(sync.idle.total()) / 1e6;
    double a = static_cast<double>(async.idle.total()) / 1e6;
    storage::DmaController dma(c.sim.ull, c.sim.pcie);
    double swapin_us =
        static_cast<double>(dma.post_page(0, storage::Dir::kRead)) / 1e3;
    t.add_row({util::Table::fmt(static_cast<double>(lat) / 1e3, 0),
               util::Table::fmt(swapin_us, 2), util::Table::fmt(s, 1),
               util::Table::fmt(a, 1), util::Table::fmt(s / a, 2),
               s < a ? "Sync" : "Async"});
  }

  std::cout << "\n== Ablation A3 — Sync vs Async crossover (ctx switch fixed "
               "at 7 us) ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: Sync wins below the ~7 us switch cost and "
               "loses above it — synchronous I/O mode is promising exactly "
               "for ULL devices.\n";
  return 0;
}
