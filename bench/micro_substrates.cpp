// Micro-benchmarks (google-benchmark) for the substrate data structures:
// page-table walks, cache lookups, TLB, pre-execute cache, prefetcher
// collection, DMA posting, and trace generation throughput.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "mem/preexec_cache.h"
#include "mem/tlb.h"
#include "storage/dma.h"
#include "trace/workloads.h"
#include "util/rng.h"
#include "vm/mm.h"
#include "vm/prefetch.h"

namespace {

using namespace its;

std::vector<its::Vpn> bench_footprint(unsigned pages) {
  std::vector<its::Vpn> fp;
  const its::Vpn base = trace::kHeapBase >> its::kPageShift;
  for (unsigned i = 0; i < pages; ++i) fp.push_back(base + i);
  return fp;
}

void BM_PageTableWalk(benchmark::State& state) {
  auto fp = bench_footprint(4096);
  vm::MemoryDescriptor mm(1, fp);
  util::Rng rng(1);
  for (auto _ : state) {
    its::Vpn vpn = fp[rng.below(fp.size())];
    benchmark::DoNotOptimize(mm.pte(vpn));
  }
}
BENCHMARK(BM_PageTableWalk);

void BM_PageTableCursor(benchmark::State& state) {
  auto fp = bench_footprint(4096);
  vm::MemoryDescriptor mm(1, fp);
  for (auto _ : state) {
    auto cur = mm.page_table().cursor_at(fp[0]);
    its::Vpn vpn = 0;
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(cur.next(vpn));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PageTableCursor);

void BM_CacheAccess(benchmark::State& state) {
  mem::SetAssocCache c({static_cast<std::uint64_t>(state.range(0)) << 20, 16, 64, 1});
  util::Rng rng(2);
  for (auto _ : state)
    benchmark::DoNotOptimize(c.access(rng.below(64ull << 20)));
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(4)->Arg(8);

void BM_HierarchyAccess(benchmark::State& state) {
  mem::CacheHierarchy h;
  util::Rng rng(3);
  for (auto _ : state)
    benchmark::DoNotOptimize(h.access(rng.below(64ull << 20), 8));
}
BENCHMARK(BM_HierarchyAccess);

void BM_TlbLookup(benchmark::State& state) {
  mem::Tlb tlb(64);
  for (its::Vpn v = 0; v < 64; ++v) tlb.insert(v);
  util::Rng rng(4);
  for (auto _ : state) benchmark::DoNotOptimize(tlb.lookup(rng.below(128)));
}
BENCHMARK(BM_TlbLookup);

void BM_PreexecCacheStoreLoad(benchmark::State& state) {
  mem::PreexecCache px;
  util::Rng rng(5);
  for (auto _ : state) {
    std::uint64_t a = rng.below(1ull << 22) & ~7ull;
    px.store(a, 8, (a & 64) != 0);
    benchmark::DoNotOptimize(px.lookup(a, 8));
  }
}
BENCHMARK(BM_PreexecCacheStoreLoad);

void BM_VaPrefetcherCollect(benchmark::State& state) {
  auto fp = bench_footprint(8192);
  vm::MemoryDescriptor mm(1, fp);
  // Map every second page so the walk has to skip.
  for (unsigned i = 0; i < fp.size(); i += 2) mm.pte(fp[i])->map(i);
  vm::VaPrefetcher pf({.degree = static_cast<unsigned>(state.range(0))});
  util::Rng rng(6);
  for (auto _ : state) {
    its::Vpn victim = fp[rng.below(fp.size() - 64)];
    benchmark::DoNotOptimize(pf.collect(mm, victim));
  }
}
BENCHMARK(BM_VaPrefetcherCollect)->Arg(4)->Arg(8)->Arg(16);

void BM_DmaPostPage(benchmark::State& state) {
  storage::DmaController dma;
  its::SimTime now = 0;
  for (auto _ : state) {
    now += 3000;
    benchmark::DoNotOptimize(dma.post_page(now, storage::Dir::kRead));
  }
}
BENCHMARK(BM_DmaPostPage);

void BM_TraceGeneration(benchmark::State& state) {
  auto id = static_cast<trace::WorkloadId>(state.range(0));
  trace::GeneratorConfig cfg;
  cfg.length_scale = 0.05;
  for (auto _ : state) {
    trace::Trace t = trace::generate(id, cfg);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(static_cast<double>(trace::spec_for(id).records) * 0.05));
}
BENCHMARK(BM_TraceGeneration)
    ->Arg(static_cast<int>(trace::WorkloadId::kWrf))
    ->Arg(static_cast<int>(trace::WorkloadId::kDeepSjeng))
    ->Arg(static_cast<int>(trace::WorkloadId::kRandomWalk));

}  // namespace

BENCHMARK_MAIN();
