// Ablation A1 — page-prefetch degree sweep (the `n` of Fig. 2's
// virtual-address-based prefetcher).
//
// Trade-off under test: a larger degree converts more majors into minors on
// predictable workloads but wastes DMA bandwidth and DRAM frames on sparse
// (data-intensive) address spaces, delaying demand swap-ins behind junk
// transfers.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Ablation: ITS prefetch degree sweep (batch 1_Data_Intensive)\n";
  const core::BatchSpec& batch = core::paper_batches()[1];
  core::ExperimentConfig cfg;
  auto traces = core::batch_traces(batch, cfg.gen);

  // Every sweep point is an independent simulation over the shared traces,
  // so the whole sweep is one run-farm submission keyed by degree index.
  const std::vector<unsigned> degrees{0u, 1u, 2u, 4u, 8u, 16u, 32u};
  std::vector<core::SimMetrics> ms = core::run_sim_tasks(
      degrees.size(), bench::jobs_from_args(argc, argv), [&](std::size_t i) {
        core::ExperimentConfig c = cfg;
        c.sim.va_prefetch.degree = degrees[i];
        return core::run_batch_policy(batch, core::PolicyKind::kIts, c, traces);
      });

  util::Table t({"degree", "idle (ms)", "major flt", "minor flt", "pf issued",
                 "accuracy %", "top50 finish (ms)"});
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    const core::SimMetrics& m = ms[i];
    t.add_row({std::to_string(degrees[i]),
               util::Table::fmt(static_cast<double>(m.idle.total()) / 1e6, 1),
               util::Table::fmt(m.major_faults), util::Table::fmt(m.minor_faults),
               util::Table::fmt(m.prefetch_issued),
               util::Table::fmt(100.0 * m.prefetch_accuracy(), 1),
               util::Table::fmt(m.avg_finish_top_half() / 1e6, 1)});
  }

  std::cout << "\n== Ablation A1 — ITS page-prefetch degree (1_Data_Intensive) ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: majors fall steeply up to degree ~4-8, then "
               "idle time flattens or degrades as junk prefetches queue ahead "
               "of demand swap-ins.\n";
  return 0;
}
