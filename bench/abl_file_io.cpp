// Ablation A10 — the file-I/O path (§1 footnote 1).
//
// The paper evaluates process (swap) I/O; this extension runs the same five
// policies over a file-I/O mix (log scan + KV store + analytics) served
// through the filesystem/page-cache path, showing that idle-time stealing
// generalises to synchronous *file* reads on ULL storage: page-cache misses
// busy-wait exactly like major faults, and the ITS thread steals those
// waits for readahead and pre-execution.
#include "bench_common.h"

#include "core/simulator.h"
#include "fs/workloads.h"

namespace {

its::core::SimMetrics run_policy(its::core::PolicyKind k) {
  using namespace its;
  core::SimConfig cfg;
  cfg.slice_min = 50'000;
  cfg.slice_max = 8'000'000;
  cfg.dram_bytes = 64ull << 20;
  cfg.page_cache_bytes = 24ull << 20;

  core::Simulator sim(cfg, k);
  fs::FileWorkloadConfig fcfg;
  fcfg.records = 150000;
  auto add = [&](its::Pid pid, trace::Trace t, int prio) {
    sim.add_process(std::make_unique<sched::Process>(
        pid, t.name(), prio,
        std::make_shared<const trace::Trace>(std::move(t))));
  };
  add(0, fs::make_log_scan(48ull << 20, fcfg), 40);
  add(1, fs::make_kv_store(32ull << 20, 0.25, fcfg), 60);
  add(2, fs::make_analytics_mix(32ull << 20, 24ull << 20, fcfg), 20);
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Ablation: file-I/O path under the five policies\n";

  // Each policy's file-I/O run builds its own simulator + traces, so the
  // five runs farm out as independent tasks collected by policy index.
  std::vector<core::SimMetrics> ms = core::run_sim_tasks(
      std::size(core::kAllPolicies), bench::jobs_from_args(argc, argv),
      [&](std::size_t i) { return run_policy(core::kAllPolicies[i]); });

  util::Table t({"policy", "idle (ms)", "norm", "pc hits", "pc misses",
                 "hit %", "writebacks", "makespan (ms)"});
  double its_idle = 0;
  for (std::size_t i = 0; i < std::size(core::kAllPolicies); ++i)
    if (core::kAllPolicies[i] == core::PolicyKind::kIts)
      its_idle = static_cast<double>(ms[i].idle.total());
  for (std::size_t i = 0; i < std::size(core::kAllPolicies); ++i) {
    const core::SimMetrics& m = ms[i];
    double hit_pct = 100.0 * static_cast<double>(m.page_cache_hits) /
                     static_cast<double>(m.page_cache_hits + m.page_cache_misses);
    t.add_row({std::string(core::policy_name(core::kAllPolicies[i])),
               util::Table::fmt(static_cast<double>(m.idle.total()) / 1e6, 1),
               util::Table::fmt(static_cast<double>(m.idle.total()) / its_idle, 2),
               util::Table::fmt(m.page_cache_hits), util::Table::fmt(m.page_cache_misses),
               util::Table::fmt(hit_pct, 1), util::Table::fmt(m.file_writebacks),
               util::Table::fmt(static_cast<double>(m.makespan) / 1e6, 1)});
  }

  std::cout << "\n== Ablation A10 — file-I/O path (log scan + KV + analytics) ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: the Fig. 4a policy ordering carries over to "
               "the file path — synchronous reads on ULL storage beat "
               "asynchronous ones, and ITS's readahead + pre-execution beats "
               "plain Sync.\n";
  return 0;
}
