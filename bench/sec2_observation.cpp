// §2.2 observation experiment — CPU idle time under synchronous I/O while
// running 2..6 processes simultaneously.
//
// The paper selects five representative traces (Wrf, Blender, PageRank,
// random walk, single shortest path) and observes that >22% of CPU time is
// idle waiting for synchronous I/O, growing with the process count because
// the processes share and contend the memory resources; results are
// normalised to the 2-process run.
#include "bench_common.h"

#include "core/simulator.h"

namespace {

its::core::SimMetrics run_count(unsigned n) {
  using namespace its;
  const trace::WorkloadId kMix[] = {
      trace::WorkloadId::kWrf, trace::WorkloadId::kBlender,
      trace::WorkloadId::kPageRank, trace::WorkloadId::kRandomWalk,
      trace::WorkloadId::kGraph500Sssp};

  core::SimConfig cfg;
  cfg.slice_min = 50'000;   // scaled NICE slices (see DESIGN.md)
  cfg.slice_max = 8'000'000;
  std::uint64_t hot = 0;
  for (unsigned i = 0; i < n; ++i)
    hot += trace::spec_for(kMix[i % 5]).hot_bytes;
  cfg.dram_bytes = static_cast<std::uint64_t>(1.12 * static_cast<double>(hot)) &
                   ~its::kPageOffsetMask;

  core::Simulator sim(cfg, core::PolicyKind::kSync);
  for (unsigned i = 0; i < n; ++i) {
    trace::GeneratorConfig gen;
    gen.seed = 1 + i;  // duplicated workloads get distinct traces
    auto tr = std::make_shared<const trace::Trace>(trace::generate(kMix[i % 5], gen));
    sim.add_process(std::make_unique<sched::Process>(
        static_cast<its::Pid>(i), std::string(trace::spec_for(kMix[i % 5]).name),
        static_cast<int>(10 * (i + 1)), tr));
  }
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Sec. 2.2: Sync idle time vs process count\n";

  // The five process-count points (n = 2..6) are independent simulations;
  // they farm out at once, and the n=2 normaliser is read from index 0.
  std::vector<core::SimMetrics> ms = core::run_sim_tasks(
      5, bench::jobs_from_args(argc, argv),
      [&](std::size_t i) { return run_count(static_cast<unsigned>(i + 2)); });

  util::Table t({"processes", "idle (ms)", "norm to 2", "idle/makespan %",
                 "busywait share %"});
  const double idle2 = static_cast<double>(ms[0].idle.total()) / 1e6;
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const core::SimMetrics& m = ms[i];
    double idle_ms = static_cast<double>(m.idle.total()) / 1e6;
    t.add_row({std::to_string(i + 2), util::Table::fmt(idle_ms, 1),
               util::Table::fmt(idle_ms / idle2, 2),
               util::Table::fmt(100.0 * static_cast<double>(m.idle.total()) /
                                    static_cast<double>(m.makespan),
                                1),
               util::Table::fmt(100.0 * static_cast<double>(m.idle.busy_wait) /
                                    static_cast<double>(m.idle.total()),
                                1)});
  }

  std::cout << "\n== Section 2.2 — CPU idle time under Sync vs process count ==\n\n";
  t.print(std::cout);
  std::cout << "\nPaper reports: >22% of CPU time idle waiting for synchronous "
               "I/O, growing with the number of simultaneous processes\n"
               "(memory contention causes more page faults).\n";
  return 0;
}
