// §2.2 observation experiment — CPU idle time under synchronous I/O while
// running 2..6 processes simultaneously.
//
// The paper selects five representative traces (Wrf, Blender, PageRank,
// random walk, single shortest path) and observes that >22% of CPU time is
// idle waiting for synchronous I/O, growing with the process count because
// the processes share and contend the memory resources; results are
// normalised to the 2-process run.
#include <iostream>
#include <memory>

#include "core/batch.h"
#include "core/simulator.h"
#include "util/table.h"

int main() {
  using namespace its;
  std::cerr << "Sec. 2.2: Sync idle time vs process count\n";

  const trace::WorkloadId kMix[] = {
      trace::WorkloadId::kWrf, trace::WorkloadId::kBlender,
      trace::WorkloadId::kPageRank, trace::WorkloadId::kRandomWalk,
      trace::WorkloadId::kGraph500Sssp};

  util::Table t({"processes", "idle (ms)", "norm to 2", "idle/makespan %",
                 "busywait share %"});
  double idle2 = 0.0;
  for (unsigned n = 2; n <= 6; ++n) {
    std::cerr << "  running " << n << " processes ...\n";
    core::SimConfig cfg;
    cfg.slice_min = 50'000;   // scaled NICE slices (see DESIGN.md)
    cfg.slice_max = 8'000'000;
    std::uint64_t hot = 0;
    for (unsigned i = 0; i < n; ++i)
      hot += trace::spec_for(kMix[i % 5]).hot_bytes;
    cfg.dram_bytes = static_cast<std::uint64_t>(1.12 * static_cast<double>(hot)) &
                     ~its::kPageOffsetMask;

    core::Simulator sim(cfg, core::PolicyKind::kSync);
    for (unsigned i = 0; i < n; ++i) {
      trace::GeneratorConfig gen;
      gen.seed = 1 + i;  // duplicated workloads get distinct traces
      auto tr = std::make_shared<const trace::Trace>(trace::generate(kMix[i % 5], gen));
      sim.add_process(std::make_unique<sched::Process>(
          static_cast<its::Pid>(i), std::string(trace::spec_for(kMix[i % 5]).name),
          static_cast<int>(10 * (i + 1)), tr));
    }
    core::SimMetrics m = sim.run();
    double idle_ms = static_cast<double>(m.idle.total()) / 1e6;
    if (n == 2) idle2 = idle_ms;
    t.add_row({std::to_string(n), util::Table::fmt(idle_ms, 1),
               util::Table::fmt(idle_ms / idle2, 2),
               util::Table::fmt(100.0 * static_cast<double>(m.idle.total()) /
                                    static_cast<double>(m.makespan),
                                1),
               util::Table::fmt(100.0 * static_cast<double>(m.idle.busy_wait) /
                                    static_cast<double>(m.idle.total()),
                                1)});
  }

  std::cout << "\n== Section 2.2 — CPU idle time under Sync vs process count ==\n\n";
  t.print(std::cout);
  std::cout << "\nPaper reports: >22% of CPU time idle waiting for synchronous "
               "I/O, growing with the number of simultaneous processes\n"
               "(memory contention causes more page faults).\n";
  return 0;
}
