// Ablation A7 — state-recovery trigger (§3.4.3): polling vs interruption.
//
// With the polling trigger the self-improving thread notices I/O completion
// only at the next timer check, so every synchronous fault wait rounds up
// to the poll period; with the interrupt (DMA-initiated) trigger the
// process resumes exactly at completion.  Sweeps the poll period.
#include <iostream>

#include "core/experiment.h"
#include "util/table.h"

int main() {
  using namespace its;
  std::cerr << "Ablation: state-recovery trigger (poll period sweep)\n";
  const core::BatchSpec& batch = core::paper_batches()[1];
  core::ExperimentConfig base;
  auto traces = core::batch_traces(batch, base.gen);

  util::Table t({"trigger", "poll period (ns)", "idle (ms)", "busywait (ms)",
                 "top50 finish (ms)"});
  auto row = [&](const char* name, const core::ExperimentConfig& cfg,
                 const std::string& period) {
    core::SimMetrics m =
        core::run_batch_policy(batch, core::PolicyKind::kIts, cfg, traces);
    t.add_row({name, period,
               util::Table::fmt(static_cast<double>(m.idle.total()) / 1e6, 1),
               util::Table::fmt(static_cast<double>(m.idle.busy_wait) / 1e6, 1),
               util::Table::fmt(m.avg_finish_top_half() / 1e6, 1)});
  };

  row("interrupt (DMA)", base, "-");
  for (its::Duration period : {100u, 250u, 500u, 1000u, 2000u}) {
    std::cerr << "  poll " << period << " ns ...\n";
    core::ExperimentConfig cfg = base;
    cfg.sim.preexec.recovery_trigger = cpu::RecoveryTrigger::kPolling;
    cfg.sim.preexec.poll_period = period;
    row("polling", cfg, std::to_string(period));
  }

  std::cout << "\n== Ablation A7 — state-recovery trigger (1_Data_Intensive) ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: idle time grows with the poll period (each "
               "fault wait rounds up to the next poll); the interrupt "
               "trigger is the floor — why §3.4.3 offers DMA-initiated "
               "recovery.\n";
  return 0;
}
