// Ablation A7 — state-recovery trigger (§3.4.3): polling vs interruption.
//
// With the polling trigger the self-improving thread notices I/O completion
// only at the next timer check, so every synchronous fault wait rounds up
// to the poll period; with the interrupt (DMA-initiated) trigger the
// process resumes exactly at completion.  Sweeps the poll period.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Ablation: state-recovery trigger (poll period sweep)\n";
  const core::BatchSpec& batch = core::paper_batches()[1];
  core::ExperimentConfig base;
  auto traces = core::batch_traces(batch, base.gen);

  // Task 0 is the interrupt (DMA) trigger; tasks 1..N sweep the poll
  // period.  All run as one farm submission over the shared traces.
  const std::vector<its::Duration> periods{100u, 250u, 500u, 1000u, 2000u};
  std::vector<core::SimMetrics> ms = core::run_sim_tasks(
      periods.size() + 1, bench::jobs_from_args(argc, argv),
      [&](std::size_t i) {
        core::ExperimentConfig cfg = base;
        if (i > 0) {
          cfg.sim.preexec.recovery_trigger = cpu::RecoveryTrigger::kPolling;
          cfg.sim.preexec.poll_period = periods[i - 1];
        }
        return core::run_batch_policy(batch, core::PolicyKind::kIts, cfg, traces);
      });

  util::Table t({"trigger", "poll period (ns)", "idle (ms)", "busywait (ms)",
                 "top50 finish (ms)"});
  auto row = [&](const char* name, const core::SimMetrics& m,
                 const std::string& period) {
    t.add_row({name, period,
               util::Table::fmt(static_cast<double>(m.idle.total()) / 1e6, 1),
               util::Table::fmt(static_cast<double>(m.idle.busy_wait) / 1e6, 1),
               util::Table::fmt(m.avg_finish_top_half() / 1e6, 1)});
  };
  row("interrupt (DMA)", ms[0], "-");
  for (std::size_t i = 0; i < periods.size(); ++i)
    row("polling", ms[i + 1], std::to_string(periods[i]));

  std::cout << "\n== Ablation A7 — state-recovery trigger (1_Data_Intensive) ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: idle time grows with the poll period (each "
               "fault wait rounds up to the next poll); the interrupt "
               "trigger is the floor — why §3.4.3 offers DMA-initiated "
               "recovery.\n";
  return 0;
}
