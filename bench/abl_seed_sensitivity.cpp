// Ablation A9 — priority-assignment sensitivity.
//
// The paper assigns process priorities randomly (§4.1) and reports one
// draw; this ablation re-runs 1_Data_Intensive over ten priority shuffles
// and reports mean ± stddev of the headline metrics per policy, verifying
// that the Fig. 4/5 orderings are not an artefact of one lucky assignment.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace its;
  constexpr unsigned kRepeats = 10;
  std::cerr << "Ablation: priority-shuffle sensitivity (" << kRepeats
            << " seeds)\n";
  const core::BatchSpec& batch = core::paper_batches()[1];

  util::Table t({"policy", "idle mean (ms)", "idle std", "idle min..max",
                 "top50 mean (ms)", "bot50 mean (ms)"});
  std::vector<std::pair<core::PolicyKind, core::RepeatedMetrics>> rows;
  for (auto k : core::kAllPolicies) {
    std::cerr << "  " << core::policy_name(k) << " ...\n";
    core::ExperimentConfig cfg;
    cfg.gen.length_scale = 0.5;  // 50 runs total; half-length traces suffice
    cfg.jobs = bench::jobs_from_args(argc, argv);  // repeats farm out per policy
    rows.emplace_back(k, core::run_batch_policy_repeated(batch, k, cfg, kRepeats));
  }
  for (auto& [k, r] : rows) {
    t.add_row({std::string(core::policy_name(k)),
               util::Table::fmt(r.idle_total.mean() / 1e6, 1),
               util::Table::fmt(r.idle_total.stddev() / 1e6, 1),
               util::Table::fmt(r.idle_total.min() / 1e6, 1) + ".." +
                   util::Table::fmt(r.idle_total.max() / 1e6, 1),
               util::Table::fmt(r.top_finish.mean() / 1e6, 1),
               util::Table::fmt(r.bottom_finish.mean() / 1e6, 1)});
  }

  std::cout << "\n== Ablation A9 — priority-shuffle sensitivity "
               "(1_Data_Intensive, " << kRepeats << " seeds) ==\n\n";
  t.print(std::cout);

  // The headline claim must hold for every draw, not just on average.
  const auto& its_r = rows.back().second;  // ITS is last in kAllPolicies
  const auto& sync_r = rows[1].second;
  std::cout << "\nWorst-case check: max ITS idle "
            << util::Table::fmt(its_r.idle_total.max() / 1e6, 1)
            << " ms vs min Sync idle "
            << util::Table::fmt(sync_r.idle_total.min() / 1e6, 1) << " ms — "
            << (its_r.idle_total.max() < sync_r.idle_total.min()
                    ? "ITS wins under every assignment."
                    : "orderings overlap across assignments.")
            << '\n';
  return 0;
}
