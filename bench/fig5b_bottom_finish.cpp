// Figure 5b — "Analysis of Bottom 50% Process Finish Time": average finish
// time of the three lowest-priority processes per batch, normalised to ITS.
//
// The paper's §3.3 claim under test: self-sacrificing low-priority
// processes still finish earlier under ITS because they inherit a
// contention-free machine (and the finished high-priority processes'
// DRAM) once the high-priority processes complete.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Fig. 5b: bottom-50%-priority average finish time\n";
  auto grid = bench::run_grid({}, argc, argv);
  bench::print_normalized(
      "Figure 5b — Bottom 50% Priority Average Finish Time", grid,
      core::bottom_half_finish,
      "ITS saves up to 58/27/24/17% and at least 34/21/13/11% vs "
      "Async/Sync/Sync_Runahead/Sync_Prefetch (Async worst at 2.35).");
  bench::print_raw("fig5b", grid, core::bottom_half_finish, 1e6, "ms mean finish time");
  its::bench::maybe_save_csv(argc, argv, grid);
  return 0;
}
