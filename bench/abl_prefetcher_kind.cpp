// Ablation A5 — prefetcher kind inside ITS.
//
// Swaps the self-improving thread's page-prefetch policy between the
// paper's virtual-address page-table walk (Fig. 2), the page-on-page unit
// (Sync_Prefetch's mechanism), and a learned stride predictor, holding
// everything else fixed.  Shows why the paper's walk is the right default:
// it skips resident pages for free and never needs training faults.
#include <iostream>
#include <vector>

#include "core/experiment.h"
#include "core/simulator.h"
#include "util/table.h"

namespace {

its::core::SimMetrics run_kind(
    const its::core::BatchSpec& batch, const its::core::ExperimentConfig& cfg,
    const std::vector<std::shared_ptr<const its::trace::Trace>>& traces,
    its::core::PrefetchKind kind) {
  its::core::SimConfig sc = cfg.sim;
  sc.dram_bytes = its::core::dram_bytes_for(batch, cfg.dram_headroom,
                                            cfg.gen.footprint_scale);
  its::core::ItsOptions opts;
  opts.prefetcher = kind;
  opts.page_prefetch = kind != its::core::PrefetchKind::kNone;
  its::core::Simulator sim(sc, its::core::make_its_policy(opts));
  for (auto& p : its::core::build_processes(batch, traces, sc.seed))
    sim.add_process(std::move(p));
  return sim.run();
}

}  // namespace

int main() {
  using namespace its;
  std::cerr << "Ablation: ITS prefetcher kind\n";

  struct Kind {
    const char* name;
    core::PrefetchKind kind;
  };
  const Kind kinds[] = {
      {"VA page-table walk (paper)", core::PrefetchKind::kVa},
      {"page-on-page unit", core::PrefetchKind::kPop},
      {"stride predictor", core::PrefetchKind::kStride},
      {"no prefetch", core::PrefetchKind::kNone},
  };

  core::ExperimentConfig cfg;
  util::Table t({"prefetcher", "batch", "idle (ms)", "major flt", "pf issued",
                 "accuracy %"});
  for (std::size_t bi : {std::size_t{0}, std::size_t{2}}) {
    const core::BatchSpec& batch = core::paper_batches()[bi];
    std::cerr << "  batch " << batch.name << " ...\n";
    auto traces = core::batch_traces(batch, cfg.gen);
    for (const auto& k : kinds) {
      core::SimMetrics m = run_kind(batch, cfg, traces, k.kind);
      t.add_row({k.name, std::string(batch.name),
                 util::Table::fmt(static_cast<double>(m.idle.total()) / 1e6, 1),
                 util::Table::fmt(m.major_faults), util::Table::fmt(m.prefetch_issued),
                 util::Table::fmt(100.0 * m.prefetch_accuracy(), 1)});
    }
  }

  std::cout << "\n== Ablation A5 — prefetcher kind inside ITS ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: the VA walk wins on both batch types — the "
               "stride predictor needs training and degenerates on sparse "
               "graph regions; the aligned unit wastes fetches behind the "
               "victim.\n";
  return 0;
}
