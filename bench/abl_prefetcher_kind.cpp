// Ablation A5 — prefetcher kind inside ITS.
//
// Swaps the self-improving thread's page-prefetch policy between the
// paper's virtual-address page-table walk (Fig. 2), the page-on-page unit
// (Sync_Prefetch's mechanism), and a learned stride predictor, holding
// everything else fixed.  Shows why the paper's walk is the right default:
// it skips resident pages for free and never needs training faults.
#include "bench_common.h"

#include "core/simulator.h"

namespace {

its::core::SimMetrics run_kind(
    const its::core::BatchSpec& batch, const its::core::ExperimentConfig& cfg,
    const std::vector<std::shared_ptr<const its::trace::Trace>>& traces,
    its::core::PrefetchKind kind) {
  its::core::SimConfig sc = cfg.sim;
  sc.dram_bytes = its::core::dram_bytes_for(batch, cfg.dram_headroom,
                                            cfg.gen.footprint_scale);
  its::core::ItsOptions opts;
  opts.prefetcher = kind;
  opts.page_prefetch = kind != its::core::PrefetchKind::kNone;
  its::core::Simulator sim(sc, its::core::make_its_policy(opts));
  for (auto& p : its::core::build_processes(batch, traces, sc.seed))
    sim.add_process(std::move(p));
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace its;
  std::cerr << "Ablation: ITS prefetcher kind\n";

  struct Kind {
    const char* name;
    core::PrefetchKind kind;
  };
  const Kind kinds[] = {
      {"VA page-table walk (paper)", core::PrefetchKind::kVa},
      {"page-on-page unit", core::PrefetchKind::kPop},
      {"stride predictor", core::PrefetchKind::kStride},
      {"no prefetch", core::PrefetchKind::kNone},
  };
  const std::size_t nk = std::size(kinds);
  const std::size_t batch_idx[] = {0, 2};

  core::ExperimentConfig cfg;
  std::vector<std::vector<std::shared_ptr<const trace::Trace>>> traces;
  for (std::size_t bi : batch_idx)
    traces.push_back(core::batch_traces(core::paper_batches()[bi], cfg.gen));

  // Task i runs kind i%nk over batch i/nk; the farm collects by index.
  std::vector<core::SimMetrics> ms = core::run_sim_tasks(
      std::size(batch_idx) * nk, bench::jobs_from_args(argc, argv),
      [&](std::size_t i) {
        return run_kind(core::paper_batches()[batch_idx[i / nk]], cfg,
                        traces[i / nk], kinds[i % nk].kind);
      });

  util::Table t({"prefetcher", "batch", "idle (ms)", "major flt", "pf issued",
                 "accuracy %"});
  for (std::size_t b = 0; b < std::size(batch_idx); ++b) {
    const core::BatchSpec& batch = core::paper_batches()[batch_idx[b]];
    for (std::size_t k = 0; k < nk; ++k) {
      const core::SimMetrics& m = ms[b * nk + k];
      t.add_row({kinds[k].name, std::string(batch.name),
                 util::Table::fmt(static_cast<double>(m.idle.total()) / 1e6, 1),
                 util::Table::fmt(m.major_faults), util::Table::fmt(m.prefetch_issued),
                 util::Table::fmt(100.0 * m.prefetch_accuracy(), 1)});
    }
  }

  std::cout << "\n== Ablation A5 — prefetcher kind inside ITS ==\n\n";
  t.print(std::cout);
  std::cout << "\nExpectation: the VA walk wins on both batch types — the "
               "stride predictor needs training and degenerates on sparse "
               "graph regions; the aligned unit wastes fetches behind the "
               "victim.\n";
  return 0;
}
