// its_bench snapshot library — the schema behind BENCH_<rev>.json.
//
// A Snapshot records one perf measurement of the repo: per-substrate
// micro-benchmark costs (ns/op) plus one macro figure-regen run on the
// work-stealing farm (wall clock, runs/sec, speedup over serial).  The
// machine fingerprint rides along so the comparator can refuse to compare
// numbers taken on different hardware or build types: cross-machine deltas
// are noise, not regressions, so they warn-and-skip instead of failing.
//
// The JSON reader/writer is deliberately self-contained (no third-party
// JSON dependency) and round-trips exactly the subset the schema needs.
// docs/performance.md documents the workflow; tests/bench_gate_test.cpp
// pins the round-trip and the tolerance/skip semantics.
#pragma once

#include <string>
#include <vector>

namespace its::perf {

/// Bump when a field changes meaning; the comparator skips (with a warning)
/// rather than comparing across schema generations.
inline constexpr int kSchemaVersion = 1;

/// Where the numbers were taken.  Two snapshots are comparable only when
/// every field matches.
struct Machine {
  unsigned cpus = 0;      ///< std::thread::hardware_concurrency at run time.
  std::string compiler;   ///< e.g. "gcc 13.2.0".
  std::string build;      ///< CMAKE_BUILD_TYPE, e.g. "RelWithDebInfo".

  bool operator==(const Machine&) const = default;
};

/// One micro-benchmark result: the amortised cost of a substrate operation.
struct Metric {
  std::string name;
  double ns_per_op = 0.0;
};

/// The macro benchmark: one full figure-regen grid (4 batches x 5 policies)
/// through the run farm, with the serial reference for the speedup column.
struct MacroResult {
  unsigned jobs = 0;           ///< Farm width used for the parallel run.
  unsigned runs = 0;           ///< Independent simulations in the grid.
  double wall_ms = 0.0;        ///< Parallel wall clock.
  double runs_per_sec = 0.0;   ///< runs / (wall_ms / 1e3).
  double serial_wall_ms = 0.0; ///< Same grid at jobs=1.
  double speedup = 0.0;        ///< serial_wall_ms / wall_ms.
};

/// The serving macro: one open-loop serving run (serve/scenario.h) at the
/// fig_serve_latency operating point under ITS.  `req_per_sec` is the
/// sim-domain sustained throughput — and it only counts when the run's p99
/// held the fixed gate, so a tail-latency regression reads as 0 req/sec
/// rather than hiding behind an unchanged completion count.  Additive to
/// schema v1: absent from older snapshots, which parse as all-zero and are
/// simply not compared on this axis.
struct ServeResult {
  unsigned requests = 0;     ///< Completed requests in the measured window.
  double p99_ms = 0.0;       ///< Sim-time aggregate p99 latency.
  double req_per_sec = 0.0;  ///< Sustained sim-domain throughput (0 = gate broke).
  double wall_ms = 0.0;      ///< Host wall clock of the run.
};

struct Snapshot {
  int schema_version = kSchemaVersion;
  std::string revision;  ///< Git revision (or a caller-chosen tag).
  Machine machine;
  std::vector<Metric> micro;
  MacroResult macro;
  ServeResult serve;
};

/// Fingerprint of the machine running this process.
Machine host_machine();

/// Serialises a snapshot to pretty-printed JSON (stable field order).
std::string to_json(const Snapshot& s);

/// Parses JSON produced by to_json (or hand-edited equivalents).
/// Throws std::runtime_error with a position-annotated message on
/// malformed input or missing required fields.
Snapshot parse_snapshot(const std::string& json);

/// Reads and parses a snapshot file.  Throws std::runtime_error when the
/// file is unreadable or malformed.
Snapshot load_snapshot(const std::string& path);

/// Writes `to_json(s)` to `path`; returns false on I/O failure.
bool save_snapshot(const std::string& path, const Snapshot& s);

enum class CompareStatus {
  kPass,                ///< All metrics within tolerance.
  kRegressed,           ///< At least one metric regressed past tolerance.
  kSkippedMissing,      ///< Baseline file absent/unreadable — warn and skip.
  kSkippedSchema,       ///< Baseline parses but has a different schema.
  kSkippedFingerprint,  ///< Different machine/compiler/build — warn and skip.
};

struct CompareReport {
  CompareStatus status = CompareStatus::kPass;
  std::vector<std::string> lines;  ///< Human-readable per-metric verdicts.
};

/// The CI gate: exit 0 unless a genuine regression was measured.  Skips are
/// deliberate passes — a missing or foreign baseline must not block a PR.
int exit_code(CompareStatus s);

/// Compares `current` against `baseline`.  A micro metric regresses when
/// its ns/op grows by more than `tolerance` (0.15 = +15%); the macro run
/// regresses when runs/sec drops by more than `tolerance`.  Metrics present
/// on only one side are reported but never fail the gate (renames must not
/// masquerade as regressions).
CompareReport compare_snapshots(const Snapshot& baseline, const Snapshot& current,
                                double tolerance = 0.15);

/// compare_snapshots against a baseline file, mapping an unreadable file to
/// kSkippedMissing and a malformed/foreign-schema one to kSkippedSchema.
CompareReport compare_against_file(const std::string& baseline_path,
                                   const Snapshot& current, double tolerance = 0.15);

}  // namespace its::perf
