#include "snapshot.h"

#include <cctype>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

namespace its::perf {
namespace {

// ---------------------------------------------------------------------------
// JSON writing.  Field order is fixed so snapshots diff cleanly in git.

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string num(double v) {
  // Round-trippable, locale-independent formatting; trailing zeros trimmed.
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

// ---------------------------------------------------------------------------
// JSON reading — a minimal recursive-descent parser for the subset to_json
// emits: objects, arrays, strings, numbers.  Every error message carries the
// byte offset so a hand-edited snapshot is debuggable.

struct Value {
  enum class Kind { kNumber, kString, kArray, kObject } kind = Kind::kNumber;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("snapshot JSON: " + why + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      default: return number_value();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      Value key = string_value();
      expect(':');
      v.object.emplace(key.string, value());
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.array.push_back(value());
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  Value string_value() {
    expect('"');
    Value v;
    v.kind = Value::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) fail("dangling escape");
      }
      v.string += text_[pos_++];
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;
    return v;
  }

  Value number_value() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    Value v;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const Value& field(const Value& obj, const std::string& name) {
  auto it = obj.object.find(name);
  if (it == obj.object.end())
    throw std::runtime_error("snapshot JSON: missing field '" + name + "'");
  return it->second;
}

double pct(double ratio) { return 100.0 * (ratio - 1.0); }

std::string fmt_pct(double ratio) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << (pct(ratio) >= 0 ? "+" : "") << pct(ratio) << "%";
  return os.str();
}

}  // namespace

Machine host_machine() {
  Machine m;
  m.cpus = std::thread::hardware_concurrency();
#if defined(__clang__)
  m.compiler = "clang " + std::to_string(__clang_major__) + "." +
               std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  m.compiler = "gcc " + std::to_string(__GNUC__) + "." +
               std::to_string(__GNUC_MINOR__);
#else
  m.compiler = "unknown";
#endif
#ifdef ITS_BUILD_TYPE
  m.build = ITS_BUILD_TYPE;
#else
  m.build = "unknown";
#endif
  return m;
}

std::string to_json(const Snapshot& s) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": " << s.schema_version << ",\n";
  os << "  \"revision\": \"" << escape(s.revision) << "\",\n";
  os << "  \"machine\": {\"cpus\": " << s.machine.cpus << ", \"compiler\": \""
     << escape(s.machine.compiler) << "\", \"build\": \""
     << escape(s.machine.build) << "\"},\n";
  os << "  \"micro\": [\n";
  for (std::size_t i = 0; i < s.micro.size(); ++i)
    os << "    {\"name\": \"" << escape(s.micro[i].name)
       << "\", \"ns_per_op\": " << num(s.micro[i].ns_per_op) << "}"
       << (i + 1 < s.micro.size() ? "," : "") << "\n";
  os << "  ],\n";
  os << "  \"macro\": {\"jobs\": " << s.macro.jobs
     << ", \"runs\": " << s.macro.runs
     << ", \"wall_ms\": " << num(s.macro.wall_ms)
     << ", \"runs_per_sec\": " << num(s.macro.runs_per_sec)
     << ", \"serial_wall_ms\": " << num(s.macro.serial_wall_ms)
     << ", \"speedup\": " << num(s.macro.speedup) << "},\n";
  os << "  \"serve\": {\"requests\": " << s.serve.requests
     << ", \"p99_ms\": " << num(s.serve.p99_ms)
     << ", \"req_per_sec\": " << num(s.serve.req_per_sec)
     << ", \"wall_ms\": " << num(s.serve.wall_ms) << "}\n";
  os << "}\n";
  return os.str();
}

Snapshot parse_snapshot(const std::string& json) {
  Value root = Parser(json).parse();
  Snapshot s;
  s.schema_version = static_cast<int>(field(root, "schema_version").number);
  s.revision = field(root, "revision").string;
  const Value& m = field(root, "machine");
  s.machine.cpus = static_cast<unsigned>(field(m, "cpus").number);
  s.machine.compiler = field(m, "compiler").string;
  s.machine.build = field(m, "build").string;
  for (const Value& e : field(root, "micro").array)
    s.micro.push_back({field(e, "name").string, field(e, "ns_per_op").number});
  const Value& mac = field(root, "macro");
  s.macro.jobs = static_cast<unsigned>(field(mac, "jobs").number);
  s.macro.runs = static_cast<unsigned>(field(mac, "runs").number);
  s.macro.wall_ms = field(mac, "wall_ms").number;
  s.macro.runs_per_sec = field(mac, "runs_per_sec").number;
  s.macro.serial_wall_ms = field(mac, "serial_wall_ms").number;
  s.macro.speedup = field(mac, "speedup").number;
  // Additive in-place to schema v1: pre-serving snapshots simply lack the
  // block and keep the all-zero default (the comparator then skips it).
  if (auto it = root.object.find("serve"); it != root.object.end()) {
    const Value& sv = it->second;
    s.serve.requests = static_cast<unsigned>(field(sv, "requests").number);
    s.serve.p99_ms = field(sv, "p99_ms").number;
    s.serve.req_per_sec = field(sv, "req_per_sec").number;
    s.serve.wall_ms = field(sv, "wall_ms").number;
  }
  return s;
}

Snapshot load_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_snapshot(buf.str());
}

bool save_snapshot(const std::string& path, const Snapshot& s) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json(s);
  return static_cast<bool>(out);
}

int exit_code(CompareStatus s) {
  return s == CompareStatus::kRegressed ? 1 : 0;
}

CompareReport compare_snapshots(const Snapshot& baseline, const Snapshot& current,
                                double tolerance) {
  CompareReport rep;
  if (baseline.schema_version != current.schema_version) {
    rep.status = CompareStatus::kSkippedSchema;
    rep.lines.push_back("skip: baseline schema v" +
                        std::to_string(baseline.schema_version) +
                        " != current v" + std::to_string(current.schema_version));
    return rep;
  }
  if (!(baseline.machine == current.machine)) {
    rep.status = CompareStatus::kSkippedFingerprint;
    rep.lines.push_back(
        "skip: machine fingerprint differs (baseline " +
        std::to_string(baseline.machine.cpus) + " cpus, " +
        baseline.machine.compiler + ", " + baseline.machine.build +
        " vs current " + std::to_string(current.machine.cpus) + " cpus, " +
        current.machine.compiler + ", " + current.machine.build +
        ") — cross-machine deltas are noise, not regressions");
    return rep;
  }

  bool regressed = false;
  for (const Metric& base : baseline.micro) {
    const Metric* cur = nullptr;
    for (const Metric& c : current.micro)
      if (c.name == base.name) { cur = &c; break; }
    if (cur == nullptr) {
      rep.lines.push_back("note: metric '" + base.name +
                          "' missing from current snapshot");
      continue;
    }
    if (base.ns_per_op <= 0.0) continue;
    double ratio = cur->ns_per_op / base.ns_per_op;
    bool bad = ratio > 1.0 + tolerance;
    regressed |= bad;
    rep.lines.push_back(std::string(bad ? "FAIL" : "ok") + ": " + base.name +
                        " " + num(base.ns_per_op) + " -> " +
                        num(cur->ns_per_op) + " ns/op (" + fmt_pct(ratio) + ")");
  }
  for (const Metric& c : current.micro) {
    bool known = false;
    for (const Metric& base : baseline.micro) known |= base.name == c.name;
    if (!known)
      rep.lines.push_back("note: new metric '" + c.name + "' (no baseline)");
  }

  if (baseline.macro.runs_per_sec > 0.0) {
    double ratio = current.macro.runs_per_sec / baseline.macro.runs_per_sec;
    bool bad = ratio < 1.0 - tolerance;
    regressed |= bad;
    rep.lines.push_back(std::string(bad ? "FAIL" : "ok") + ": figure_regen " +
                        num(baseline.macro.runs_per_sec) + " -> " +
                        num(current.macro.runs_per_sec) + " runs/sec (" +
                        fmt_pct(ratio) + ")");
  }

  if (baseline.serve.req_per_sec > 0.0) {
    if (current.serve.req_per_sec <= 0.0) {
      regressed = true;
      rep.lines.push_back("FAIL: serving p99 gate broke (p99 " +
                          num(current.serve.p99_ms) +
                          " ms — sustained req/sec is 0)");
    } else {
      double ratio = current.serve.req_per_sec / baseline.serve.req_per_sec;
      bool bad = ratio < 1.0 - tolerance;
      regressed |= bad;
      rep.lines.push_back(std::string(bad ? "FAIL" : "ok") + ": serving " +
                          num(baseline.serve.req_per_sec) + " -> " +
                          num(current.serve.req_per_sec) + " req/sec (" +
                          fmt_pct(ratio) + ")");
    }
  } else if (current.serve.req_per_sec > 0.0) {
    rep.lines.push_back("note: new serving macro (no baseline)");
  }

  rep.status = regressed ? CompareStatus::kRegressed : CompareStatus::kPass;
  return rep;
}

CompareReport compare_against_file(const std::string& baseline_path,
                                   const Snapshot& current, double tolerance) {
  std::ifstream in(baseline_path);
  if (!in) {
    CompareReport rep;
    rep.status = CompareStatus::kSkippedMissing;
    rep.lines.push_back("skip: no baseline at " + baseline_path +
                        " — record one with its_bench --out");
    return rep;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Snapshot baseline;
  try {
    baseline = parse_snapshot(buf.str());
  } catch (const std::exception& e) {
    CompareReport rep;
    rep.status = CompareStatus::kSkippedSchema;
    rep.lines.push_back(std::string("skip: unreadable baseline: ") + e.what());
    return rep;
  }
  return compare_snapshots(baseline, current, tolerance);
}

}  // namespace its::perf
