// its_bench — the perf-trajectory snapshot tool (docs/performance.md).
//
//   its_bench --out BENCH_$(git rev-parse --short HEAD).json --rev=<rev>
//   its_bench --quick --compare bench/snapshots/BENCH_baseline.json
//
// Measures (a) micro ns/op for the substrate data structures the simulator
// spends its time in — the same operations bench/micro_substrates.cpp
// benchmarks under google-benchmark, timed here with a plain steady_clock
// loop so the result lands in machine-readable JSON — and (b) one macro
// figure-regen: the full 4-batch x 5-policy grid through the work-stealing
// run farm, serial and at --jobs width, reporting runs/sec and speedup.
//
// --compare gates on a committed baseline: >tolerance (default 15%)
// regression in any micro metric or in macro runs/sec exits non-zero;
// a missing baseline or a foreign machine fingerprint warns and exits 0
// (see snapshot.h).  Wall-clock measurement lives in tools/ on purpose:
// src/ is deterministic simulated time and its_lint bans clock reads there.
#include "snapshot.h"

#include "core/experiment.h"
#include "farm/farm.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "mem/preexec_cache.h"
#include "mem/tlb.h"
#include "serve/arrival.h"
#include "serve/scenario.h"
#include "storage/dma.h"
#include "trace/workloads.h"
#include "util/args.h"
#include "util/rng.h"
#include "vm/mm.h"
#include "vm/prefetch.h"

#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

namespace {

using namespace its;

/// Keeps a computed value alive past the optimiser without a benchmark
/// library dependency.
template <typename T>
inline void keep(const T& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times `op` over `iters` iterations (after a 1/16 warm-up) and returns
/// the amortised ns per operation.
double time_ns_per_op(std::uint64_t iters, const std::function<void()>& op) {
  for (std::uint64_t i = 0; i < iters / 16 + 1; ++i) op();
  auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) op();
  auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(iters);
}

std::vector<its::Vpn> bench_footprint(unsigned pages) {
  std::vector<its::Vpn> fp;
  const its::Vpn base = trace::kHeapBase >> its::kPageShift;
  for (unsigned i = 0; i < pages; ++i) fp.push_back(base + i);
  return fp;
}

/// The micro suite — one entry per substrate op, mirroring
/// bench/micro_substrates.cpp so the two harnesses cross-check.
std::vector<perf::Metric> run_micro(bool quick) {
  const std::uint64_t scale = quick ? 1 : 8;
  std::vector<perf::Metric> out;
  auto add = [&](const char* name, std::uint64_t iters,
                 const std::function<void()>& op) {
    std::cerr << "  micro " << name << " ...\n";
    out.push_back({name, time_ns_per_op(iters * scale, op)});
  };

  {
    auto fp = bench_footprint(4096);
    vm::MemoryDescriptor mm(1, fp);
    util::Rng rng(1);
    add("page_table_walk", 200'000,
        [&] { keep(mm.pte(fp[rng.below(fp.size())])); });
  }
  {
    auto fp = bench_footprint(4096);
    vm::MemoryDescriptor mm(1, fp);
    add("page_table_cursor64", 20'000, [&] {
      auto cur = mm.page_table().cursor_at(fp[0]);
      its::Vpn vpn = 0;
      for (int i = 0; i < 64; ++i) keep(cur.next(vpn));
    });
  }
  {
    mem::SetAssocCache c({4ull << 20, 16, 64, 1});
    util::Rng rng(2);
    add("cache_access", 200'000, [&] { keep(c.access(rng.below(64ull << 20))); });
  }
  {
    mem::CacheHierarchy h;
    util::Rng rng(3);
    add("hierarchy_access", 100'000,
        [&] { keep(h.access(rng.below(64ull << 20), 8)); });
  }
  {
    mem::Tlb tlb(64);
    for (its::Vpn v = 0; v < 64; ++v) tlb.insert(v);
    util::Rng rng(4);
    add("tlb_lookup", 400'000, [&] { keep(tlb.lookup(rng.below(128))); });
  }
  {
    mem::PreexecCache px;
    util::Rng rng(5);
    add("preexec_cache_store_load", 200'000, [&] {
      std::uint64_t a = rng.below(1ull << 22) & ~7ull;
      px.store(a, 8, (a & 64) != 0);
      keep(px.lookup(a, 8));
    });
  }
  {
    auto fp = bench_footprint(8192);
    vm::MemoryDescriptor mm(1, fp);
    for (unsigned i = 0; i < fp.size(); i += 2) mm.pte(fp[i])->map(i);
    vm::VaPrefetcher pf({.degree = 8});
    util::Rng rng(6);
    add("va_prefetch_collect8", 50'000, [&] {
      its::Vpn victim = fp[rng.below(fp.size() - 64)];
      keep(pf.collect(mm, victim));
    });
  }
  {
    storage::DmaController dma;
    its::SimTime now = 0;
    add("dma_post_page", 200'000, [&] {
      now += 3000;
      keep(dma.post_page(now, storage::Dir::kRead));
    });
  }
  {
    trace::GeneratorConfig cfg;
    cfg.length_scale = 0.02;
    add("trace_generation", 20, [&] {
      trace::Trace t = trace::generate(trace::WorkloadId::kRandomWalk, cfg);
      keep(t.size());
    });
  }
  return out;
}

/// The macro benchmark: regenerate the full figure grid (the workload
/// behind every fig4*/fig5* bench) serially and on the farm.  Uses the
/// golden-test scale so one run stays in CI budget while still executing
/// all 20 simulations.
perf::MacroResult run_macro(unsigned jobs) {
  core::ExperimentConfig cfg;
  cfg.gen.length_scale = 0.02;
  cfg.gen.footprint_scale = 0.25;

  perf::MacroResult m;
  m.jobs = jobs == 0 ? farm::Farm::default_jobs() : jobs;
  m.runs = static_cast<unsigned>(core::paper_batches().size() *
                                 std::size(core::kAllPolicies));

  std::cerr << "  macro figure_regen serial ...\n";
  cfg.jobs = 1;
  double t0 = now_ms();
  keep(core::run_grid_all(cfg));
  m.serial_wall_ms = now_ms() - t0;

  std::cerr << "  macro figure_regen --jobs=" << m.jobs << " ...\n";
  cfg.jobs = m.jobs;
  t0 = now_ms();
  keep(core::run_grid_all(cfg));
  m.wall_ms = now_ms() - t0;

  m.runs_per_sec = m.wall_ms > 0 ? 1e3 * m.runs / m.wall_ms : 0.0;
  m.speedup = m.wall_ms > 0 ? m.serial_wall_ms / m.wall_ms : 0.0;
  return m;
}

/// The serving macro: sustained requests/sec at a fixed p99.  Runs the
/// fig_serve_latency operating point (bursty MMPP slightly below capacity,
/// overcommit 2) under ITS and reports the sim-domain throughput — gated on
/// the aggregate p99 holding 25 ms, so a tail-latency regression zeroes the
/// metric instead of hiding behind an unchanged completion count.
perf::ServeResult run_serve_macro(bool quick) {
  constexpr double kP99GateMs = 25.0;
  serve::ServeConfig cfg;
  cfg.arrivals.model = serve::ArrivalModel::kMmpp;
  cfg.arrivals.rate_rps = 800.0;
  cfg.duration = quick ? 50'000'000 : 100'000'000;
  cfg.admit_limit = 64;
  cfg.overcommit = 2.0;

  std::cerr << "  macro serving ...\n";
  double t0 = now_ms();
  serve::ServeMetrics m = serve::run_serve(cfg, core::PolicyKind::kIts);
  perf::ServeResult r;
  r.wall_ms = now_ms() - t0;
  r.requests = static_cast<unsigned>(m.completed);
  r.p99_ms = static_cast<double>(m.latency.quantile(0.99)) / 1e6;
  r.req_per_sec = r.p99_ms <= kP99GateMs ? m.requests_per_sec() : 0.0;
  return r;
}

int run(int argc, char** argv) {
  util::Args args(argc, argv);
  for (const auto& u : args.unknown(
           {"out", "compare", "tolerance", "jobs", "quick", "rev", "help"})) {
    std::cerr << "unknown flag --" << u << " (try --help)\n";
    return 2;
  }
  if (args.has("help")) {
    std::cout
        << "usage: its_bench [--out=FILE] [--compare=BASELINE.json]\n"
           "                 [--tolerance=F] [--jobs=N] [--quick] [--rev=STR]\n"
           "  Measures substrate micro ns/op and one figure-regen macro run\n"
           "  (serial + farmed), emits a schema-versioned snapshot, and with\n"
           "  --compare exits non-zero on a >tolerance (default 0.15)\n"
           "  regression.  Missing baseline or a different machine\n"
           "  fingerprint warns and exits 0.\n";
    return 0;
  }

  perf::Snapshot snap;
  snap.revision = args.get_string("rev", "worktree");
  snap.machine = perf::host_machine();
  const bool quick = args.has("quick");
  std::cerr << "its_bench: " << (quick ? "quick" : "full") << " run on "
            << snap.machine.cpus << " cpu(s), " << snap.machine.compiler
            << ", " << snap.machine.build << "\n";
  snap.micro = run_micro(quick);
  snap.macro = run_macro(static_cast<unsigned>(args.get_u64("jobs", 0)));
  snap.serve = run_serve_macro(quick);

  for (const perf::Metric& m : snap.micro)
    std::cout << "  " << m.name << ": " << m.ns_per_op << " ns/op\n";
  std::cout << "  figure_regen: " << snap.macro.runs << " runs, serial "
            << snap.macro.serial_wall_ms << " ms, --jobs=" << snap.macro.jobs
            << " " << snap.macro.wall_ms << " ms (" << snap.macro.runs_per_sec
            << " runs/sec, speedup " << snap.macro.speedup << "x)\n";
  std::cout << "  serving: " << snap.serve.requests << " requests, p99 "
            << snap.serve.p99_ms << " ms, sustained " << snap.serve.req_per_sec
            << " req/sec (" << snap.serve.wall_ms << " ms wall)\n";

  if (auto out = args.get("out")) {
    if (!perf::save_snapshot(*out, snap)) {
      std::cerr << "its_bench: cannot write " << *out << "\n";
      return 3;
    }
    std::cout << "wrote " << *out << "\n";
  }

  if (auto baseline = args.get("compare")) {
    perf::CompareReport rep = perf::compare_against_file(
        *baseline, snap, args.get_double("tolerance", 0.15));
    std::cout << "compare vs " << *baseline << ":\n";
    for (const std::string& line : rep.lines) std::cout << "  " << line << "\n";
    std::cout << (perf::exit_code(rep.status) == 0 ? "PASS" : "REGRESSED")
              << "\n";
    return perf::exit_code(rep.status);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "its_bench: " << e.what() << "\n";
    return 3;
  }
}
