// Registry rules: the cross-file consistency checks.
//
// The repo keeps several registries that must agree with a single source
// of truth: the EventKind enum drives kind_name(), the Chrome exporter and
// the invariant checker; SimMetrics drives the CSV report; SimConfig
// drives the configuration docs.  Each rule parses the source-of-truth
// declaration and greps the dependent files for every entry.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.h"

namespace its::lint {

namespace {

namespace fs = std::filesystem;

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string joined_code(const SourceFile& f) {
  std::string text;
  for (const std::string& l : f.code_lines) {
    text += l;
    text += '\n';
  }
  return text;
}

/// 1-based line of `offset` in `text`.
std::size_t line_at(std::string_view text, std::size_t offset) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i)
    if (text[i] == '\n') ++line;
  return line;
}

std::size_t find_word_from(std::string_view text, std::string_view word,
                           std::size_t from) {
  std::size_t at = from;
  while ((at = text.find(word, at)) != std::string_view::npos) {
    bool left_ok = at == 0 || !ident_char(text[at - 1]);
    std::size_t end = at + word.size();
    bool right_ok = end >= text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) return at;
    at = end;
  }
  return std::string_view::npos;
}

}  // namespace

std::vector<std::string> parse_enum_body(const SourceFile& f,
                                         std::string_view enum_name) {
  std::string text = joined_code(f);
  std::vector<std::string> out;
  std::size_t at = text.find("enum class " + std::string(enum_name));
  if (at == std::string::npos) return out;
  std::size_t open = text.find('{', at);
  std::size_t close = text.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return out;
  // Enumerators: identifier at the start of each comma-separated entry.
  std::size_t i = open + 1;
  while (i < close) {
    while (i < close && !ident_char(text[i])) ++i;
    std::size_t start = i;
    while (i < close && ident_char(text[i])) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
    // Skip any `= value` part up to the entry's comma.
    while (i < close && text[i] != ',') ++i;
    ++i;
  }
  return out;
}

namespace {

/// Offset of the `}` matching the `{` at `open` (npos on imbalance).
std::size_t match_brace(std::string_view text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i;
  }
  return std::string_view::npos;
}

std::size_t next_nonspace(std::string_view text, std::size_t i) {
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0)
    ++i;
  return i;
}

}  // namespace

std::vector<std::string> parse_struct_fields(const SourceFile& f,
                                             std::string_view struct_name) {
  std::string text = joined_code(f);
  std::vector<std::string> out;
  std::size_t at = text.find("struct " + std::string(struct_name));
  if (at == std::string::npos) return out;
  std::size_t open = text.find('{', at);
  if (open == std::string::npos) return out;
  std::size_t close = match_brace(text, open);
  if (close == std::string_view::npos) return out;
  int depth = 0;  // nesting relative to the struct body
  std::size_t stmt_start = open + 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    char c = text[i];
    if (c == '{' || c == '(') {
      ++depth;
    } else if (c == '}' || c == ')') {
      --depth;
      // A `}` back at member level ends a member-function body unless a
      // `;` follows (then it is a brace initializer: `Config cfg{};`).
      if (depth == 0 && c == '}') {
        std::size_t nxt = next_nonspace(text, i + 1);
        if (nxt >= text.size() || text[nxt] != ';') stmt_start = i + 1;
      }
    } else if (c == ';' && depth == 0) {
      std::string_view stmt(text.data() + stmt_start, i - stmt_start);
      stmt_start = i + 1;
      // A data member: `Type name;`, `Type name = init;`, `Type name{};`.
      // Anything with parentheses (functions) or keywords is skipped.
      if (stmt.find('(') != std::string_view::npos) continue;
      std::size_t eq = stmt.find('=');
      std::string_view decl =
          eq == std::string_view::npos ? stmt : stmt.substr(0, eq);
      // Field name: the last identifier of the declarator.
      std::size_t end = decl.size();
      while (end > 0 && !ident_char(decl[end - 1])) --end;
      std::size_t start = end;
      while (start > 0 && ident_char(decl[start - 1])) --start;
      if (start == end) continue;
      std::string name(decl.substr(start, end - start));
      if (name == "public" || name == "private" || name == "using" ||
          name == "struct" || name == "class" || name == "enum")
        continue;
      // Need at least one identifier (the type) before the name.
      std::string_view before = decl.substr(0, start);
      bool has_type = false;
      for (char b : before)
        if (ident_char(b)) has_type = true;
      if (has_type) out.push_back(std::move(name));
    }
  }
  return out;
}

RegistryInputs registry_inputs_for_root(const std::string& root) {
  RegistryInputs in;
  auto pick = [&](std::string rel) {
    fs::path p = fs::path(root) / rel;
    return fs::exists(p) ? p.string() : std::string();
  };
  in.event_trace_h = pick("src/obs/event_trace.h");
  in.event_trace_cpp = pick("src/obs/event_trace.cpp");
  in.trace_json_cpp = pick("src/obs/trace_json.cpp");
  in.invariant_cpp = pick("src/obs/invariant_checker.cpp");
  in.metrics_h = pick("src/core/metrics.h");
  in.report_cpp = pick("src/core/report.cpp");
  in.config_h = pick("src/core/config.h");
  fs::path readme = fs::path(root) / "README.md";
  if (fs::exists(readme)) in.docs.push_back(readme.string());
  fs::path docs = fs::path(root) / "docs";
  if (fs::exists(docs)) {
    std::vector<std::string> found;
    for (const auto& e : fs::directory_iterator(docs))
      if (e.is_regular_file() && e.path().extension() == ".md")
        found.push_back(e.path().string());
    std::sort(found.begin(), found.end());
    in.docs.insert(in.docs.end(), found.begin(), found.end());
  }
  return in;
}

namespace {

bool load_or_report(const std::string& path, SourceFile* f,
                    std::vector<std::string>* errors) {
  if (path.empty()) return false;
  std::string err;
  if (SourceFile::load(path, f, &err)) return true;
  errors->push_back(err);
  return false;
}

/// reg-kind-name / reg-chrome-map / reg-invariant: every enumerator must
/// be referenced (as a whole word) in the dependent file.
void check_enum_coverage(const std::vector<std::string>& kinds,
                         const SourceFile& dep, Rule rule,
                         std::string_view role,
                         std::vector<Finding>* out) {
  std::string text = joined_code(dep);
  for (const std::string& k : kinds) {
    if (find_word_from(text, k, 0) == std::string::npos)
      out->push_back({dep.path, 0, rule,
                      "EventKind::" + k + " has no " + std::string(role) +
                          " — add one (or an explicit default with a "
                          "suppression) before shipping the new kind"});
  }
}

/// reg-kind-count: the count definition must be derived from the
/// lexically-last enumerator and static_assert-checked.
void check_kind_count(const std::vector<std::string>& kinds,
                      const SourceFile& header, std::vector<Finding>* out) {
  std::string text = joined_code(header);
  std::size_t def = text.find("kNumEventKinds =");
  if (def == std::string::npos) {
    out->push_back({header.path, 0, Rule::kRegKindCount,
                    "kNumEventKinds is not defined next to EventKind"});
    return;
  }
  std::size_t semi = text.find(';', def);
  std::string_view stmt = std::string_view(text).substr(def, semi - def);
  const std::string& last = kinds.back();
  bool derived =
      stmt.find("EventKind::" + last) != std::string_view::npos;
  if (!derived) {
    // A literal count is tolerated iff it equals the enumerator count.
    std::size_t digits = 0;
    std::size_t value = 0;
    for (char c : stmt) {
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        value = value * 10 + static_cast<std::size_t>(c - '0');
        ++digits;
      } else if (digits != 0) {
        break;
      }
    }
    if (digits == 0 || value != kinds.size())
      out->push_back(
          {header.path, line_at(text, def), Rule::kRegKindCount,
           "kNumEventKinds must be derived from the last enumerator "
           "(EventKind::" +
               last + " + 1) or equal the enum's " +
               std::to_string(kinds.size()) + " entries"});
  }
  std::size_t assert_at = text.find("static_assert");
  bool assert_checks = false;
  while (assert_at != std::string::npos) {
    std::size_t end = text.find(';', assert_at);
    std::string_view a = std::string_view(text).substr(assert_at,
                                                       end - assert_at);
    if (a.find("kNumEventKinds") != std::string_view::npos) {
      assert_checks = true;
      // The literal inside must match the real count, otherwise the
      // compile-time check is asserting the wrong registry size.
      std::size_t value = 0, digits = 0;
      for (char c : a) {
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
          value = value * 10 + static_cast<std::size_t>(c - '0');
          ++digits;
        } else if (digits != 0) {
          break;
        }
      }
      if (digits != 0 && value != kinds.size())
        out->push_back({header.path, line_at(text, assert_at),
                        Rule::kRegKindCount,
                        "static_assert pins the EventKind count at " +
                            std::to_string(value) + " but the enum has " +
                            std::to_string(kinds.size()) + " enumerators"});
      break;
    }
    assert_at = text.find("static_assert", assert_at + 1);
  }
  if (!assert_checks)
    out->push_back({header.path, 0, Rule::kRegKindCount,
                    "no static_assert checks kNumEventKinds against the "
                    "enumerator count"});
}

}  // namespace

std::vector<Finding> scan_registry(const RegistryInputs& in,
                                   std::vector<std::string>* errors) {
  std::vector<Finding> out;

  SourceFile trace_h;
  std::vector<std::string> kinds;
  if (load_or_report(in.event_trace_h, &trace_h, errors)) {
    kinds = parse_enum_body(trace_h, "EventKind");
    if (kinds.empty())
      errors->push_back(in.event_trace_h +
                        ": could not parse enum class EventKind");
  }

  if (!kinds.empty()) {
    SourceFile dep;
    if (load_or_report(in.event_trace_cpp, &dep, errors))
      check_enum_coverage(kinds, dep, Rule::kRegKindName,
                          "kind_name() entry", &out);
    if (load_or_report(in.trace_json_cpp, &dep, errors))
      check_enum_coverage(kinds, dep, Rule::kRegChromeMap,
                          "Chrome-trace mapping", &out);
    if (load_or_report(in.invariant_cpp, &dep, errors))
      check_enum_coverage(kinds, dep, Rule::kRegInvariant,
                          "invariant-checker reference", &out);
    check_kind_count(kinds, trace_h, &out);
  }

  SourceFile metrics_h;
  if (load_or_report(in.metrics_h, &metrics_h, errors)) {
    std::vector<std::string> fields =
        parse_struct_fields(metrics_h, "SimMetrics");
    std::vector<std::string> idle =
        parse_struct_fields(metrics_h, "IdleBreakdown");
    fields.insert(fields.end(), idle.begin(), idle.end());
    SourceFile report;
    if (!fields.empty() && load_or_report(in.report_cpp, &report, errors)) {
      std::string text = joined_code(report);
      for (const std::string& field : fields) {
        if (find_word_from(text, field, 0) == std::string::npos)
          out.push_back({report.path, 0, Rule::kRegMetricsReport,
                         "SimMetrics counter '" + field +
                             "' is accumulated but never reported — add "
                             "it to a CSV writer in report.cpp"});
      }
    } else if (fields.empty()) {
      errors->push_back(in.metrics_h + ": could not parse struct SimMetrics");
    }
  }

  SourceFile config_h;
  if (load_or_report(in.config_h, &config_h, errors)) {
    std::vector<std::string> fields =
        parse_struct_fields(config_h, "SimConfig");
    if (fields.empty()) {
      errors->push_back(in.config_h + ": could not parse struct SimConfig");
    } else if (!in.docs.empty()) {
      std::string all_docs;
      for (const std::string& doc : in.docs) {
        SourceFile d;
        std::string err;
        if (!SourceFile::load(doc, &d, &err)) {
          errors->push_back(err);
          continue;
        }
        for (const std::string& l : d.raw_lines) {
          all_docs += l;
          all_docs += '\n';
        }
      }
      for (const std::string& field : fields) {
        if (find_word_from(all_docs, field, 0) == std::string::npos)
          out.push_back({in.config_h, 0, Rule::kRegConfigDoc,
                         "SimConfig field '" + field +
                             "' is not documented in README.md or docs/ "
                             "— every knob needs a written contract"});
      }
    }
  }

  return out;
}

}  // namespace its::lint
