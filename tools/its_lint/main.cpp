// its_lint command-line driver.
//
//   its_lint [--root DIR] [--json] [--no-registry] [--no-arch]
//            [--no-conc] [--no-units] [--arch-only] [--conc-only]
//            [--units-only] [--dot PATH] [--lock-dot PATH] [--list-rules]
//            [paths...]
//
// With no paths, scans <root>/src with every rule.  Explicit paths run the
// per-file determinism rules on exactly those files/directories (the
// registry rules still resolve against --root unless --no-registry; the
// whole-program architecture, concurrency and units passes only run on
// full-tree scans).  --arch-only / --conc-only / --units-only restrict a
// run to one whole-program family; --dot writes the module dependency
// graph and --lock-dot the lock-acquisition-order graph as Graphviz to
// PATH ("-" for stdout).
//
// Exit codes: 0 clean, 1 usage/IO error, 10+N when rule N fired.  When
// several distinct rules fire, the exit code is the LOWEST firing rule's
// code (see --list-rules for the mapping).
#include "lint.h"

#include <iostream>
#include <string>
#include <string_view>

namespace {

int list_rules() {
  std::cout << "exit  rule                 summary\n";
  for (std::size_t i = 0; i < its::lint::kNumRules; ++i) {
    auto r = static_cast<its::lint::Rule>(i);
    std::string id(its::lint::rule_id(r));
    id.resize(20, ' ');
    std::cout << "  " << its::lint::exit_code_for(r) << "  " << id << " "
              << its::lint::rule_summary(r) << "\n";
  }
  std::cout << "\nWhen several distinct rules fire in one run, the exit "
               "code is the lowest\nfiring rule's code.\n";
  return its::lint::kExitClean;
}

int usage(std::string_view msg) {
  std::cerr << "its_lint: " << msg << "\n"
            << "usage: its_lint [--root DIR] [--json] [--no-registry] "
               "[--no-arch] [--no-conc] [--no-units] [--arch-only] "
               "[--conc-only] [--units-only] [--dot PATH] [--lock-dot PATH] "
               "[--list-rules] [paths...]\n";
  return its::lint::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  its::lint::LintOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--no-registry") {
      opts.registry = false;
    } else if (arg == "--no-arch") {
      opts.arch = false;
    } else if (arg == "--no-conc") {
      opts.conc = false;
    } else if (arg == "--no-units") {
      opts.units = false;
    } else if (arg == "--arch-only") {
      opts.arch_only = true;
    } else if (arg == "--conc-only") {
      opts.conc_only = true;
    } else if (arg == "--units-only") {
      opts.units_only = true;
    } else if (arg == "--dot") {
      if (i + 1 >= argc) return usage("--dot needs a path ('-' for stdout)");
      opts.dot_path = argv[++i];
    } else if (arg == "--lock-dot") {
      if (i + 1 >= argc)
        return usage("--lock-dot needs a path ('-' for stdout)");
      opts.lock_dot_path = argv[++i];
    } else if (arg == "--list-rules") {
      return list_rules();
    } else if (arg == "--root") {
      if (i + 1 >= argc) return usage("--root needs a directory");
      opts.root = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      return usage("unknown flag " + std::string(arg));
    } else {
      opts.paths.emplace_back(arg);
    }
  }
  if (opts.arch_only && !opts.arch)
    return usage("--arch-only and --no-arch are mutually exclusive");
  if (opts.conc_only && !opts.conc)
    return usage("--conc-only and --no-conc are mutually exclusive");
  if (opts.units_only && !opts.units)
    return usage("--units-only and --no-units are mutually exclusive");
  if (opts.conc_only && opts.arch_only)
    return usage("--arch-only and --conc-only are mutually exclusive");
  if (opts.units_only && (opts.arch_only || opts.conc_only))
    return usage("--units-only excludes --arch-only/--conc-only");

  its::lint::LintResult r = its::lint::run_lint(opts);
  if (opts.json)
    its::lint::print_json(std::cout, r);
  else
    its::lint::print_findings(std::cout, r);
  return r.exit_code();
}
