// its_lint command-line driver.
//
//   its_lint [--root DIR] [--json] [--no-registry] [--list-rules] [paths...]
//
// With no paths, scans <root>/src with every rule.  Explicit paths run the
// per-file determinism rules on exactly those files/directories (the
// registry rules still resolve against --root unless --no-registry).
//
// Exit codes: 0 clean, 1 usage/IO error, 10+N a single rule N violated,
// 2 several distinct rules violated (see --list-rules for the mapping).
#include <iostream>
#include <string>
#include <string_view>

#include "lint.h"

namespace {

int list_rules() {
  std::cout << "exit  rule                 summary\n";
  for (std::size_t i = 0; i < its::lint::kNumRules; ++i) {
    auto r = static_cast<its::lint::Rule>(i);
    std::string id(its::lint::rule_id(r));
    id.resize(20, ' ');
    std::cout << "  " << its::lint::exit_code_for(r) << "  " << id << " "
              << its::lint::rule_summary(r) << "\n";
  }
  return its::lint::kExitClean;
}

int usage(std::string_view msg) {
  std::cerr << "its_lint: " << msg << "\n"
            << "usage: its_lint [--root DIR] [--json] [--no-registry] "
               "[--list-rules] [paths...]\n";
  return its::lint::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  its::lint::LintOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--no-registry") {
      opts.registry = false;
    } else if (arg == "--list-rules") {
      return list_rules();
    } else if (arg == "--root") {
      if (i + 1 >= argc) return usage("--root needs a directory");
      opts.root = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      return usage("unknown flag " + std::string(arg));
    } else {
      opts.paths.emplace_back(arg);
    }
  }

  its::lint::LintResult r = its::lint::run_lint(opts);
  if (opts.json)
    its::lint::print_json(std::cout, r);
  else
    its::lint::print_findings(std::cout, r);
  return r.exit_code();
}
