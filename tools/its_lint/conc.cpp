// Concurrency rules: the whole-program lock-discipline checks.
//
// Clang's -Wthread-safety proves the GUARDED_BY/REQUIRES annotations
// (src/util/thread_annotations.h) — but only on clang, and only where the
// annotations already exist.  This pass is the portable other half: it
// runs on every compiler the repo builds with and checks that the
// annotations (and the broader discipline around them) are *present*:
//
//   conc-guarded        a class that owns a mutex must GUARDED_BY every
//                       mutable non-atomic data member, so the clang job
//                       has something to prove.
//   conc-lock-order     cycles in the cross-file lock-acquisition-order
//                       graph (an edge A -> B: somebody acquires B while
//                       holding A, directly or through a call resolved by
//                       method name).  The graph is committed as
//                       docs/locks.dot and CI diffs it like
//                       architecture.dot.
//   conc-atomic-order   std::atomic access without an explicit
//                       memory_order — implicit seq_cst hides whether the
//                       ordering is load-acquire/store-release by intent
//                       or by accident (src/farm/farm.cpp is the
//                       exemplar).
//   conc-shared-static  mutable namespace-scope or function-local static
//                       state: invisible sharing once the SMP refactor
//                       puts farm workers behind every entry point.
//   conc-false-share    adjacent mutex/atomic members with no alignas
//                       separation (util::kDestructiveInterferenceSize) —
//                       a false-sharing hot spot.
//
// Like the arch pass this is a tokenizer, not a compiler front end: lock
// acquisition is recognised through the project's RAII guards
// (util::MutexLock, std::lock_guard/unique_lock/scoped_lock) and calls
// are resolved by method name, so a same-named method on two classes is
// merged conservatively.  Every rule honours the reasoned-suppression
// syntax; see docs/concurrency.md for the model the rules enforce.
#include "lint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <filesystem>

namespace its::lint {

namespace {

namespace fs = std::filesystem;

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::vector<std::string> collect_tree(const std::string& dir,
                                      std::vector<std::string>* errors) {
  std::vector<std::string> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec))
    if (it->is_regular_file() && cpp_source(it->path()))
      files.push_back(it->path().generic_string());
  if (ec) errors->push_back(dir + ": " + ec.message());
  std::sort(files.begin(), files.end());
  return files;
}

std::size_t skip_ws(std::string_view text, std::size_t i) {
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0)
    ++i;
  return i;
}

std::string read_ident(std::string_view text, std::size_t i,
                       std::size_t* end) {
  std::size_t j = i;
  while (j < text.size() && ident_char(text[j])) ++j;
  *end = j;
  return std::string(text.substr(i, j - i));
}

/// Skips a balanced <...>; stops at ';' (not a template after all).
std::size_t skip_angles(std::string_view text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    if (text[i] == '>' && --depth == 0) return i + 1;
    if (text[i] == ';') return i;
  }
  return text.size();
}

std::size_t skip_to_matching_brace(std::string_view text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i + 1;
  }
  return text.size();
}

/// Skips a balanced (...) starting at or after `i` (whitespace allowed);
/// returns `i` unchanged when no '(' follows.
std::size_t skip_parens(std::string_view text, std::size_t i) {
  std::size_t p = skip_ws(text, i);
  if (p >= text.size() || text[p] != '(') return i;
  int depth = 0;
  for (; p < text.size(); ++p) {
    if (text[p] == '(') ++depth;
    if (text[p] == ')' && --depth == 0) return p + 1;
  }
  return text.size();
}

/// One loaded file plus the joined-text views every rule shares (the same
/// shape the arch pass uses).
struct ConcFile {
  SourceFile src;
  std::string text;  ///< Joined code lines.
  std::vector<std::size_t> line_start;

  std::size_t line_of(std::size_t offset) const {
    auto it = std::upper_bound(line_start.begin(), line_start.end(), offset);
    return static_cast<std::size_t>(it - line_start.begin());
  }
};

void build_views(ConcFile* f) {
  for (const std::string& l : f->src.code_lines) {
    f->line_start.push_back(f->text.size());
    f->text += l;
    f->text += '\n';
  }
}

/// Whole-word occurrences of `word` in `text`, as offsets.
std::vector<std::size_t> word_occurrences(std::string_view text,
                                          std::string_view word) {
  std::vector<std::size_t> out;
  std::size_t at = 0;
  while ((at = text.find(word, at)) != std::string_view::npos) {
    bool left_ok = at == 0 || !ident_char(text[at - 1]);
    std::size_t end = at + word.size();
    bool right_ok = end >= text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) out.push_back(at);
    at = end;
  }
  return out;
}

/// The annotation macros from util/thread_annotations.h (plus alignas):
/// their '(' must never be mistaken for a function declarator or a call.
bool annotation_macro(std::string_view w) {
  return w == "GUARDED_BY" || w == "REQUIRES" || w == "EXCLUDES" ||
         w == "ACQUIRE" || w == "RELEASE" || w == "CAPABILITY" ||
         w == "SCOPED_CAPABILITY" || w == "alignas";
}

/// Keywords whose parens/braces are control flow, not declarators.
bool control_keyword(std::string_view w) {
  return w == "if" || w == "for" || w == "while" || w == "switch" ||
         w == "catch" || w == "return" || w == "sizeof" || w == "alignof" ||
         w == "decltype" || w == "noexcept" || w == "static_assert" ||
         w == "new" || w == "delete" || w == "throw" || w == "do" ||
         w == "else" || w == "try" || w == "case" || w == "default" ||
         w == "co_return" || w == "co_await" || w == "co_yield" ||
         w == "assert";
}

// ---------------------------------------------------------------------------
// Class and member parsing (conc-guarded, conc-false-share, and the
// class -> mutex-member index the lock-order resolver uses).

struct Member {
  std::string name;
  std::size_t line = 0;
  bool is_mutex = false;    ///< mutex / Mutex member (or reference).
  bool is_sync = false;     ///< is_mutex, condition_variable, or CondVar.
  bool is_atomic = false;
  bool is_const = false;    ///< const non-pointer: immutable, needs no guard.
  bool has_alignas = false;
  bool has_guard = false;   ///< Carries GUARDED_BY(...).
};

struct ClassInfo {
  std::string name;
  std::size_t file = 0;  ///< Index into the scanned file list.
  std::size_t line = 0;
  bool has_alignas = false;  ///< alignas on the struct/class itself.
  std::vector<Member> members;
};

/// Head-of-declaration type flags, shared by the member parser and the
/// static/global scanners.
struct TypeFlags {
  bool is_mutex = false, is_sync = false, is_atomic = false, is_const = false;
};

TypeFlags classify_head(std::string_view head) {
  TypeFlags t;
  t.is_mutex = contains_word(head, "mutex") || contains_word(head, "Mutex");
  t.is_sync = t.is_mutex ||
              head.find("condition_variable") != std::string_view::npos ||
              contains_word(head, "CondVar");
  t.is_atomic = contains_word(head, "atomic");
  t.is_const = contains_word(head, "const") &&
               head.find('*') == std::string_view::npos;
  return t;
}

/// Parses the data members of one class body `[b, e)`.  Functions, nested
/// types, static members, using/typedef/friend declarations and access
/// labels are recognised and skipped; everything else is a data member.
std::vector<Member> parse_members(const ConcFile& f, std::size_t b,
                                  std::size_t e) {
  std::string_view text = f.text;
  std::vector<Member> out;
  std::size_t i = b;
  while (i < e) {
    i = skip_ws(text, i);
    if (i >= e) break;
    char c = text[i];
    if (c == ';' || c == ':' || c == '}') {
      ++i;
      continue;
    }
    if (c == '{') {  // stray block (should not happen): stay safe
      i = skip_to_matching_brace(text, i);
      continue;
    }
    if (c == '#') {
      while (i < e && text[i] != '\n') ++i;
      continue;
    }
    if (!ident_char(c) || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    std::size_t stmt_start = i;
    std::size_t we = i;
    std::string w = read_ident(text, i, &we);
    if (w == "public" || w == "private" || w == "protected") {
      i = skip_ws(text, we);
      if (i < e && text[i] == ':') ++i;
      continue;
    }
    if (w == "template") {
      std::size_t lt = skip_ws(text, we);
      if (lt < e && text[lt] == '<') we = skip_angles(text, lt);
      // Fall through: the generic scan below classifies what it declares.
      i = skip_ws(text, we);
      if (i >= e) break;
      stmt_start = i;
      // Re-read the first word of the templated declaration.
      if (ident_char(text[i])) w = read_ident(text, i, &we);
    }
    if (w == "using" || w == "typedef" || w == "friend" ||
        w == "static_assert") {
      while (we < e && text[we] != ';') {
        if (text[we] == '{') we = skip_to_matching_brace(text, we);
        else ++we;
      }
      i = we + 1;
      continue;
    }
    if (w == "struct" || w == "class" || w == "enum" || w == "union") {
      // Nested type: skip its body (members belong to the nested class,
      // which the outer scan indexes separately).
      while (we < e && text[we] != '{' && text[we] != ';') ++we;
      if (we < e && text[we] == '{') we = skip_to_matching_brace(text, we);
      while (we < e && text[we] != ';') ++we;
      i = we + 1;
      continue;
    }
    if (w == "static") {
      // Static member (datum or function): per-class padding and guard
      // rules do not apply; conc-shared-static owns mutable statics.
      std::size_t p = we;
      int pd = 0;
      while (p < e) {
        char d = text[p];
        if (d == '(') ++pd;
        if (d == ')' && pd > 0) --pd;
        if (d == '{' && pd == 0) {
          p = skip_to_matching_brace(text, p);
          std::size_t q = skip_ws(text, p);
          if (q < e && text[q] == ';') p = q;
          break;
        }
        if (d == ';' && pd == 0) break;
        ++p;
      }
      i = p + 1;
      continue;
    }

    // Generic declaration: walk the statement, deciding member vs function.
    std::size_t pos = stmt_start;
    int ad = 0;  // angle depth
    bool is_fn = false, frozen = false;
    bool has_guard = false, has_alignas = false;
    std::string name;
    std::size_t name_pos = stmt_start;
    std::size_t head_end = std::string_view::npos;
    auto freeze_head = [&](std::size_t at) {
      if (head_end == std::string_view::npos) head_end = at;
    };
    bool done = false;
    while (pos < e && !done) {
      char d = text[pos];
      if (ident_char(d) &&
          std::isdigit(static_cast<unsigned char>(d)) == 0) {
        std::size_t ie = pos;
        std::string id = read_ident(text, pos, &ie);
        if (id == "GUARDED_BY") {
          has_guard = true;
          pos = skip_parens(text, ie);
          continue;
        }
        if (id == "alignas") {
          has_alignas = true;
          pos = skip_parens(text, ie);
          continue;
        }
        if (annotation_macro(id)) {  // REQUIRES/ACQUIRE/... : function-side
          pos = skip_parens(text, ie);
          continue;
        }
        if (id == "operator") {
          is_fn = true;
          pos = ie;
          // operator<, operator() etc.: jump to the open paren of the
          // parameter list so the symbols are not parsed structurally.
          while (pos < e && text[pos] != '(') ++pos;
          continue;
        }
        if (!frozen && ad == 0) {
          name = id;
          name_pos = pos;
        }
        pos = ie;
        continue;
      }
      switch (d) {
        case '<':
          ++ad;
          ++pos;
          break;
        case '>':
          if (ad > 0) --ad;
          ++pos;
          break;
        case '[':
          frozen = true;  // array extents / attributes follow the name
          ++pos;
          break;
        case '(':
          if (ad == 0) is_fn = true;
          pos = skip_parens(text, pos);
          break;
        case '=':
          if (ad == 0) {
            freeze_head(pos);
            int pd = 0;
            while (pos < e) {
              char x = text[pos];
              if (x == '(') ++pd;
              if (x == ')' && pd > 0) --pd;
              if (x == '{' && pd == 0)
                pos = skip_to_matching_brace(text, pos);
              else if (x == ';' && pd == 0)
                break;
              else
                ++pos;
            }
            done = true;
          } else {
            ++pos;
          }
          break;
        case '{':
          if (ad == 0) {
            freeze_head(pos);
            pos = skip_to_matching_brace(text, pos);
            if (is_fn) {  // function body; a member init continues to ';'
              std::size_t q = skip_ws(text, pos);
              if (q < e && text[q] == ';') pos = q + 1;
              done = true;
            }
          } else {
            ++pos;
          }
          break;
        case ':':
          if (pos + 1 < e && text[pos + 1] == ':') {  // scope qualifier
            pos += 2;
          } else if (ad == 0 && is_fn) {
            // Constructor init list: runs to the body.
            int pd = 0;
            while (pos < e) {
              char x = text[pos];
              if (x == '(') ++pd;
              if (x == ')' && pd > 0) --pd;
              if (x == '{' && pd == 0) break;
              ++pos;
            }
          } else if (ad == 0) {
            freeze_head(pos);  // bitfield width
            ++pos;
          } else {
            ++pos;
          }
          break;
        case ';':
          freeze_head(pos);
          ++pos;
          done = true;
          break;
        default:
          ++pos;
          break;
      }
    }
    if (!is_fn && !name.empty()) {
      if (head_end == std::string_view::npos) head_end = pos;
      TypeFlags t =
          classify_head(text.substr(stmt_start, head_end - stmt_start));
      Member m;
      m.name = std::move(name);
      m.line = f.line_of(name_pos);
      m.is_mutex = t.is_mutex;
      m.is_sync = t.is_sync;
      m.is_atomic = t.is_atomic;
      m.is_const = t.is_const;
      m.has_alignas = has_alignas;
      m.has_guard = has_guard;
      out.push_back(std::move(m));
    }
    i = pos;
  }
  return out;
}

/// Finds every struct/class definition in `f` (any nesting) and parses
/// its data members.
void collect_classes(const ConcFile& f, std::size_t file_index,
                     std::vector<ClassInfo>* out) {
  std::string_view text = f.text;
  std::size_t i = 0;
  std::string prev_word;
  while (i < text.size()) {
    char c = text[i];
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (!ident_char(c) || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    std::size_t we = i;
    std::string w = read_ident(text, i, &we);
    if (w == "template") {
      std::size_t lt = skip_ws(text, we);
      if (lt < text.size() && text[lt] == '<') we = skip_angles(text, lt);
      i = we;
      prev_word = w;
      continue;
    }
    if ((w == "struct" || w == "class") && prev_word != "enum") {
      std::size_t p = skip_ws(text, we);
      bool cls_alignas = false;
      std::string name;
      std::size_t name_end = p;
      if (p < text.size() && ident_char(text[p]))
        name = read_ident(text, p, &name_end);
      while (name == "CAPABILITY" || name == "SCOPED_CAPABILITY" ||
             name == "alignas") {
        if (name == "alignas") cls_alignas = true;
        std::size_t a = skip_parens(text, name_end);
        a = skip_ws(text, a);
        if (a >= text.size() || !ident_char(text[a])) {
          name.clear();
          break;
        }
        p = a;
        name = read_ident(text, p, &name_end);
      }
      if (name.empty()) {
        i = name_end;
        prev_word = w;
        continue;
      }
      // Definition, not forward declaration / template parameter /
      // return type: scan to a body '{', rejecting on the tokens that
      // rule a definition out.
      std::size_t q = name_end;
      int ad = 0;
      bool saw_colon = false, body = false;
      while (q < text.size()) {
        char d = text[q];
        if (d == '<') ++ad;
        else if (d == '>' && ad > 0) --ad;
        else if (d == ';' || d == '(' || d == '=' || d == ')') break;
        else if (d == ',' && ad == 0 && !saw_colon) break;
        else if (d == ':' && ad == 0) saw_colon = true;
        else if (d == '{' && ad == 0) {
          body = true;
          break;
        }
        ++q;
      }
      if (body) {
        std::size_t close = skip_to_matching_brace(text, q);
        ClassInfo ci;
        ci.name = std::move(name);
        ci.file = file_index;
        ci.line = f.line_of(p);
        ci.has_alignas = cls_alignas;
        ci.members = parse_members(f, q + 1, close > 0 ? close - 1 : q + 1);
        out->push_back(std::move(ci));
        i = q + 1;  // nested classes are found by the continuing scan
      } else {
        i = name_end;
      }
      prev_word = w;
      continue;
    }
    prev_word = std::move(w);
    i = we;
  }
}

// ---------------------------------------------------------------------------
// conc-atomic-order.

constexpr std::string_view kAtomicOps[] = {
    "load",          "store",
    "exchange",      "fetch_add",
    "fetch_sub",     "fetch_and",
    "fetch_or",      "fetch_xor",
    "compare_exchange_weak", "compare_exchange_strong",
};

/// Harvests the names declared as std::atomic<...> in `f`.
void harvest_atomics(const ConcFile& f, std::set<std::string>* names) {
  std::string_view text = f.text;
  for (std::size_t at : word_occurrences(text, "atomic")) {
    std::size_t p = skip_ws(text, at + 6);
    if (p < text.size() && text[p] == '<') p = skip_angles(text, p);
    p = skip_ws(text, p);
    if (p < text.size() && text[p] == '&') p = skip_ws(text, p + 1);
    if (p < text.size() && ident_char(text[p]) &&
        std::isdigit(static_cast<unsigned char>(text[p])) == 0) {
      std::size_t pe = p;
      names->insert(read_ident(text, p, &pe));
    }
  }
}

/// Non-whitespace character before `i`, or '\0'.
char prev_nonws(std::string_view text, std::size_t i) {
  while (i > 0) {
    --i;
    if (std::isspace(static_cast<unsigned char>(text[i])) == 0)
      return text[i];
  }
  return '\0';
}

void scan_atomic_order(const ConcFile& f,
                       const std::set<std::string>& atomics,
                       std::vector<Finding>* out) {
  std::string_view text = f.text;
  std::set<std::size_t> lines;
  auto report = [&](std::size_t offset, const std::string& what) {
    std::size_t line = f.line_of(offset);
    if (!lines.insert(line).second) return;
    out->push_back(
        {f.src.path, line, Rule::kConcAtomicOrder,
         what +
             " — implicit seq_cst hides the intended ordering; spell the "
             "memory_order explicitly (src/farm/farm.cpp is the exemplar)"});
  };

  // Member-function form: recv.load(...) / recv->store(...).
  for (std::string_view op : kAtomicOps) {
    for (std::size_t at : word_occurrences(text, op)) {
      // Receiver: the identifier before the '.' or '->'.
      std::size_t p = at;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(text[p - 1])) != 0)
        --p;
      if (p == 0) continue;
      if (text[p - 1] == '.') {
        --p;
      } else if (text[p - 1] == '>' && p >= 2 && text[p - 2] == '-') {
        p -= 2;
      } else {
        continue;
      }
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(text[p - 1])) != 0)
        --p;
      std::size_t re = p;
      while (p > 0 && ident_char(text[p - 1])) --p;
      if (p == re) continue;
      std::string recv(text.substr(p, re - p));
      if (atomics.count(recv) == 0) continue;
      std::size_t open = skip_ws(text, at + op.size());
      if (open >= text.size() || text[open] != '(') continue;
      std::size_t close = skip_parens(text, open);
      std::string_view args = text.substr(open, close - open);
      if (args.find("memory_order") != std::string_view::npos) continue;
      report(at, "'" + recv + "." + std::string(op) +
                     "(...)' without a memory_order argument");
    }
  }

  // Operator form: ++x, x++, x += n, x = n on a known atomic.
  for (const std::string& name : atomics) {
    for (std::size_t at : word_occurrences(text, name)) {
      char before = prev_nonws(text, at);
      if (before == '>' || ident_char(before)) continue;  // declaration
      if (before == '.' || before == ',') continue;  // member access / args
      std::size_t after = skip_ws(text, at + name.size());
      bool hit = false;
      if (before == '+' && at >= 2 && text[at - 2] == '+') hit = true;
      if (before == '-' && at >= 2 && text[at - 2] == '-') hit = true;
      if (!hit && after + 1 < text.size()) {
        std::string_view two = text.substr(after, 2);
        if (two == "++" || two == "--" || two == "+=" || two == "-=" ||
            two == "&=" || two == "|=" || two == "^=")
          hit = true;
        else if (text[after] == '=' && two != "==")
          hit = true;
      }
      if (hit)
        report(at, "implicit-seq_cst operator on atomic '" + name + "'");
    }
  }
}

// ---------------------------------------------------------------------------
// conc-shared-static.

/// (a) `static` storage anywhere: flags mutable non-atomic statics and
/// harvests static mutexes into the lock-name table.
void scan_statics(const ConcFile& f, std::set<std::string>* global_mutexes,
                  std::vector<Finding>* out) {
  std::string_view text = f.text;
  for (std::size_t at : word_occurrences(text, "static")) {
    // Statement head: back to the previous statement boundary.
    std::size_t s = at;
    while (s > 0 && text[s - 1] != ';' && text[s - 1] != '{' &&
           text[s - 1] != '}' && text[s - 1] != ':' && text[s - 1] != '\n')
      --s;
    // Forward: function or variable?
    std::size_t p = at + 6;
    int ad = 0;
    bool is_fn = false;
    std::string name;
    std::size_t punct = text.size();
    while (p < text.size()) {
      char d = text[p];
      if (ident_char(d) && std::isdigit(static_cast<unsigned char>(d)) == 0) {
        std::size_t ie = p;
        std::string id = read_ident(text, p, &ie);
        if (id == "alignas" || annotation_macro(id)) {
          p = skip_parens(text, ie);
          continue;
        }
        if (ad == 0) name = std::move(id);
        p = ie;
        continue;
      }
      if (d == '<') ++ad;
      else if (d == '>' && ad > 0) --ad;
      else if (d == '(' && ad == 0) {
        is_fn = true;
        punct = p;
        break;
      } else if ((d == '=' || d == ';' || d == '{') && ad == 0) {
        punct = p;
        break;
      }
      ++p;
    }
    if (is_fn) continue;
    std::string_view head = text.substr(s, punct - s);
    TypeFlags t = classify_head(head);
    if (t.is_mutex && !name.empty()) global_mutexes->insert(name);
    if (t.is_sync || t.is_atomic || t.is_const ||
        contains_word(head, "constexpr") ||
        contains_word(head, "constinit") ||
        contains_word(head, "thread_local") || contains_word(head, "extern"))
      continue;
    if (name.empty()) continue;
    out->push_back(
        {f.src.path, f.line_of(at), Rule::kConcSharedStatic,
         "mutable static '" + name +
             "' — static state is shared across farm workers; make it "
             "const/constexpr, thread_local, atomic, or guard it by a "
             "mutex-owning class"});
  }
}

/// (b) namespace-scope variables: flags mutable non-atomic globals and
/// harvests namespace-scope mutexes (including extern declarations) into
/// the lock-name table.
void scan_globals(const ConcFile& f, std::set<std::string>* global_mutexes,
                  std::vector<Finding>* out) {
  std::string_view text = f.text;
  // true = namespace brace; anything else hides its contents.
  std::vector<bool> ctx;
  auto ns_scope = [&] {
    return std::all_of(ctx.begin(), ctx.end(), [](bool b) { return b; });
  };
  std::size_t i = 0;
  while (i < text.size()) {
    i = skip_ws(text, i);
    if (i >= text.size()) break;
    char c = text[i];
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '}') {
      if (!ctx.empty()) ctx.pop_back();
      ++i;
      continue;
    }
    if (c == '{') {
      ctx.push_back(false);
      ++i;
      continue;
    }
    if (!ident_char(c) || std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        !ns_scope()) {
      ++i;
      continue;
    }
    // A namespace-scope statement begins here; classify and consume it.
    std::size_t we = i;
    std::string w = read_ident(text, i, &we);
    if (w == "namespace") {
      while (we < text.size() && text[we] != '{' && text[we] != ';') ++we;
      if (we < text.size() && text[we] == '{') ctx.push_back(true);
      i = we + 1;
      continue;
    }
    if (w == "template") {
      std::size_t lt = skip_ws(text, we);
      if (lt < text.size() && text[lt] == '<') we = skip_angles(text, lt);
      i = we;
      continue;  // the declaration that follows is classified on its own
    }
    if (w == "struct" || w == "class" || w == "enum" || w == "union") {
      while (we < text.size() && text[we] != '{' && text[we] != ';') ++we;
      if (we < text.size() && text[we] == '{')
        we = skip_to_matching_brace(text, we);
      while (we < text.size() && text[we] != ';') ++we;
      i = we + 1;
      continue;
    }
    if (w == "using" || w == "typedef" || w == "static_assert" ||
        w == "friend") {
      while (we < text.size() && text[we] != ';') ++we;
      i = we + 1;
      continue;
    }
    // Generic: function (skip declarator + body) or variable (classify).
    std::size_t stmt_start = i;
    std::size_t pos = i;
    int ad = 0;
    bool is_fn = false;
    std::string name;
    std::size_t name_pos = i, punct = text.size();
    bool done = false;
    while (pos < text.size() && !done) {
      char d = text[pos];
      if (ident_char(d) && std::isdigit(static_cast<unsigned char>(d)) == 0) {
        std::size_t ie = pos;
        std::string id = read_ident(text, pos, &ie);
        if (annotation_macro(id)) {
          pos = skip_parens(text, ie);
          continue;
        }
        if (ad == 0) {
          name = std::move(id);
          name_pos = pos;
        }
        pos = ie;
        continue;
      }
      switch (d) {
        case '<':
          ++ad;
          ++pos;
          break;
        case '>':
          if (ad > 0) --ad;
          ++pos;
          break;
        case '(':
          if (ad == 0) {
            is_fn = true;
            // Parameters, then trailing tokens to ';' or to a body.
            pos = skip_parens(text, pos);
            int pd = 0;
            while (pos < text.size()) {
              char x = text[pos];
              if (x == '(') ++pd;
              if (x == ')' && pd > 0) --pd;
              if (x == ';' && pd == 0) break;
              if (x == '{' && pd == 0) {
                pos = skip_to_matching_brace(text, pos);
                --pos;  // land on the consumed brace's successor below
                break;
              }
              ++pos;
            }
            ++pos;
            done = true;
          } else {
            ++pos;
          }
          break;
        case '=':
          if (ad == 0) {
            punct = pos;
            int pd = 0;
            while (pos < text.size()) {
              char x = text[pos];
              if (x == '(') ++pd;
              if (x == ')' && pd > 0) --pd;
              if (x == '{' && pd == 0)
                pos = skip_to_matching_brace(text, pos);
              else if (x == ';' && pd == 0)
                break;
              else
                ++pos;
            }
            ++pos;
            done = true;
          } else {
            ++pos;
          }
          break;
        case '{':
          if (ad == 0) {
            punct = std::min(punct, pos);
            pos = skip_to_matching_brace(text, pos);
            while (pos < text.size() && text[pos] != ';') ++pos;
            ++pos;
            done = true;
          } else {
            ++pos;
          }
          break;
        case ';':
          punct = std::min(punct, pos);
          ++pos;
          done = true;
          break;
        default:
          ++pos;
          break;
      }
    }
    i = pos;
    if (is_fn || name.empty()) continue;
    std::string_view head =
        text.substr(stmt_start, std::min(punct, text.size()) - stmt_start);
    TypeFlags t = classify_head(head);
    if (t.is_mutex) global_mutexes->insert(name);
    if (t.is_sync || t.is_atomic || t.is_const ||
        contains_word(head, "constexpr") ||
        contains_word(head, "constinit") ||
        contains_word(head, "thread_local") ||
        contains_word(head, "extern") || contains_word(head, "static"))
      continue;  // static: rule (a) reports it once
    out->push_back(
        {f.src.path, f.line_of(name_pos), Rule::kConcSharedStatic,
         "mutable namespace-scope '" + name +
             "' — global state is shared across farm workers; make it "
             "const/constexpr, thread_local, atomic, or guard it by a "
             "mutex-owning class"});
  }
}

/// apply_suppressions both filters and *reports* malformed directives;
/// the determinism pass already reports those for every src file, so this
/// pass filters only (same contract as the arch pass).
std::vector<Finding> filter_suppressed(const SourceFile& f,
                                       std::vector<Finding> findings) {
  std::vector<Finding> out = apply_suppressions(f, std::move(findings));
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const Finding& fi) {
                             return fi.rule == Rule::kBadSuppress;
                           }),
            out.end());
  return out;
}

// ---------------------------------------------------------------------------
// conc-lock-order: the acquisition walker.
//
// Acquisition is recognised through RAII guards only (util::MutexLock,
// std::lock_guard/unique_lock/scoped_lock) — the project's conc-guarded
// rule already pushes all locking through them, and ignoring bare
// .lock()/.unlock() keeps wrapper internals (util::Mutex forwarding to
// its std::mutex) out of the graph.  A guard's lifetime is its enclosing
// brace scope.  Calls made while holding locks are resolved by method
// name (conservatively merging same-named methods) and lock sets
// propagate caller-ward to a fixpoint, so A->C is found when A's holder
// calls f and f acquires C.

bool guard_keyword(std::string_view w) {
  return w == "lock_guard" || w == "unique_lock" || w == "scoped_lock" ||
         w == "MutexLock";
}

struct CallSite {
  std::string callee;             ///< "Cls::fn" when spelled qualified.
  std::vector<std::string> held;  ///< Canonical lock names at the call.
  std::size_t file = 0;           ///< Scanned-file index (witness).
  std::size_t line = 0;
};

struct DirectEdge {
  std::string from, to;
  std::size_t file = 0, line = 0;
};

struct LockScan {
  std::vector<DirectEdge> direct;
  std::vector<CallSite> calls;  ///< Sites with a non-empty held set.
  /// Locks a function acquires in its own body (pre-fixpoint).
  std::map<std::string, std::set<std::string>> fn_locks;
  /// Callees named by each function's body (any held state).
  std::map<std::string, std::set<std::string>> fn_calls;
  std::set<std::string> all_locks;  ///< Every canonical name acquired.
};

/// Resolution tables shared by every file's walk.
struct LockNames {
  std::map<std::string, std::set<std::string>> class_mutexes;
  std::map<std::string, std::set<std::string>> mutex_owners;
  std::set<std::string> global_mutexes;

  /// Canonical name for a lock expression's trailing identifier, given
  /// the class whose method we are inside ("" for free functions).
  std::string canonical(const std::string& name,
                        const std::string& cur_cls) const {
    if (!cur_cls.empty()) {
      auto it = class_mutexes.find(cur_cls);
      if (it != class_mutexes.end() && it->second.count(name) != 0)
        return cur_cls + "::" + name;
    }
    auto own = mutex_owners.find(name);
    if (own != mutex_owners.end() && own->second.size() == 1)
      return *own->second.begin() + "::" + name;
    return name;  // global mutex, or unresolved: keep the spelling
  }
};

void walk_locks(const ConcFile& f, std::size_t file_index,
                const LockNames& names, LockScan* scan) {
  std::string_view text = f.text;
  struct Frame {
    char kind;        ///< 'n'amespace, 'c'lass, 'f'unction, 'o'ther.
    std::string name; ///< Class name / qualified function name.
  };
  std::vector<Frame> frames;
  /// Held guards: canonical lock name + the frame depth owning the guard.
  std::vector<std::pair<std::string, std::size_t>> held;
  std::string cand;  ///< Function-definition candidate awaiting its '{'.
  int pd = 0;        ///< Unconsumed paren depth (call arguments).

  auto cur_cls = [&]() -> std::string {
    for (std::size_t k = frames.size(); k > 0; --k)
      if (frames[k - 1].kind == 'c') return frames[k - 1].name;
    // Out-of-line member: the qualifier of the enclosing function name.
    for (std::size_t k = frames.size(); k > 0; --k)
      if (frames[k - 1].kind == 'f') {
        const std::string& fn = frames[k - 1].name;
        std::size_t sep = fn.rfind("::");
        if (sep != std::string::npos) return fn.substr(0, sep);
        return "";
      }
    return "";
  };
  auto cur_fn = [&]() -> std::string {
    for (std::size_t k = frames.size(); k > 0; --k)
      if (frames[k - 1].kind == 'f') return frames[k - 1].name;
    return "";
  };

  std::size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (ident_char(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
      std::size_t start = i;
      std::size_t we = i;
      std::string w = read_ident(text, i, &we);
      if (w == "template") {
        std::size_t lt = skip_ws(text, we);
        i = (lt < text.size() && text[lt] == '<') ? skip_angles(text, lt)
                                                  : we;
        continue;
      }
      if (w == "namespace") {
        while (we < text.size() && text[we] != '{' && text[we] != ';') ++we;
        if (we < text.size() && text[we] == '{') frames.push_back({'n', ""});
        i = we + 1;
        continue;
      }
      if (w == "enum") {
        while (we < text.size() && text[we] != '{' && text[we] != ';') ++we;
        if (we < text.size() && text[we] == '{')
          we = skip_to_matching_brace(text, we);
        i = we;
        continue;
      }
      if (w == "struct" || w == "class" || w == "union") {
        std::size_t p = skip_ws(text, we);
        std::string name;
        std::size_t name_end = p;
        if (p < text.size() && ident_char(text[p]))
          name = read_ident(text, p, &name_end);
        while (name == "CAPABILITY" || name == "SCOPED_CAPABILITY" ||
               name == "alignas") {
          std::size_t a = skip_ws(text, skip_parens(text, name_end));
          if (a >= text.size() || !ident_char(text[a])) {
            name.clear();
            break;
          }
          p = a;
          name = read_ident(text, p, &name_end);
        }
        std::size_t q = name_end;
        int ad = 0;
        bool saw_colon = false, body = false;
        while (q < text.size()) {
          char d = text[q];
          if (d == '<') ++ad;
          else if (d == '>' && ad > 0) --ad;
          else if (d == ';' || d == '(' || d == '=' || d == ')') break;
          else if (d == ',' && ad == 0 && !saw_colon) break;
          else if (d == ':' && ad == 0) saw_colon = true;
          else if (d == '{' && ad == 0) {
            body = true;
            break;
          }
          ++q;
        }
        if (body && !name.empty()) {
          frames.push_back({'c', name});
          i = q + 1;
        } else {
          i = name_end;
        }
        continue;
      }
      if (guard_keyword(w) && !cur_fn().empty()) {
        // `MutexLock l(mu_);` / `std::lock_guard<std::mutex> g(m);`:
        // canonicalize each constructor argument as an acquisition.
        std::size_t p = skip_ws(text, we);
        if (p < text.size() && text[p] == '<') p = skip_ws(text, skip_angles(text, p));
        if (p < text.size() && ident_char(text[p])) {
          std::size_t ve = p;
          read_ident(text, p, &ve);  // the guard variable name
          p = skip_ws(text, ve);
        }
        if (p < text.size() && (text[p] == '(' || text[p] == '{')) {
          char open_ch = text[p];
          char close_ch = open_ch == '(' ? ')' : '}';
          std::size_t open = p;
          int depth = 0;
          std::size_t close = open;
          for (std::size_t q2 = open; q2 < text.size(); ++q2) {
            if (text[q2] == open_ch) ++depth;
            if (text[q2] == close_ch && --depth == 0) {
              close = q2;
              break;
            }
          }
          // Split [open+1, close) on top-level commas.
          std::vector<std::string> args;
          {
            std::size_t a0 = open + 1;
            int ad2 = 0, pd2 = 0;
            for (std::size_t q2 = open + 1; q2 <= close; ++q2) {
              char d = q2 < close ? text[q2] : ',';
              if (d == '<') ++ad2;
              else if (d == '>' && ad2 > 0) --ad2;
              else if (d == '(' || d == '[') ++pd2;
              else if ((d == ')' || d == ']') && pd2 > 0) --pd2;
              else if (d == ',' && ad2 == 0 && pd2 == 0) {
                args.emplace_back(text.substr(a0, q2 - a0));
                a0 = q2 + 1;
              }
            }
          }
          const std::string fn = cur_fn();
          const std::string cls = cur_cls();
          for (const std::string& arg : args) {
            // Trailing identifier of the expression (mu_, g_alpha, ...).
            std::size_t end = arg.size();
            while (end > 0 && !ident_char(arg[end - 1])) --end;
            std::size_t begin = end;
            while (begin > 0 && ident_char(arg[begin - 1])) --begin;
            if (begin == end) continue;
            std::string leaf = arg.substr(begin, end - begin);
            if (leaf == "defer_lock" || leaf == "adopt_lock" ||
                leaf == "try_to_lock" || leaf.empty())
              continue;
            std::string lock = names.canonical(leaf, cls);
            for (const auto& [h, depth2] : held) {
              (void)depth2;
              if (h != lock)
                scan->direct.push_back(
                    {h, lock, file_index, f.line_of(start)});
            }
            held.emplace_back(lock, frames.size());
            scan->fn_locks[fn].insert(lock);
            scan->all_locks.insert(lock);
          }
          i = close + 1;
        } else {
          i = p;
        }
        continue;
      }
      if (annotation_macro(w)) {
        i = skip_parens(text, we);
        continue;
      }
      if (control_keyword(w)) {
        i = we;
        continue;
      }
      // Identifier followed by '(' — a call (inside a function) or a
      // function-definition candidate (at namespace/class scope).
      std::size_t q = skip_ws(text, we);
      if (q < text.size() && text[q] == '(') {
        std::string qual;
        std::size_t qs = start;
        if (qs >= 1 && text[qs - 1] == '~') --qs;  // destructors
        if (qs >= 2 && text[qs - 1] == ':' && text[qs - 2] == ':') {
          std::size_t qe = qs - 2;
          std::size_t qb = qe;
          while (qb > 0 && ident_char(text[qb - 1])) --qb;
          if (qb < qe) qual = std::string(text.substr(qb, qe - qb));
        }
        std::string full = qual.empty() ? w : qual + "::" + w;
        const std::string fn = cur_fn();
        if (!fn.empty()) {
          scan->fn_calls[fn].insert(full);
          if (!held.empty()) {
            CallSite cs;
            cs.callee = full;
            for (const auto& [h, depth2] : held) {
              (void)depth2;
              cs.held.push_back(h);
            }
            cs.file = file_index;
            cs.line = f.line_of(start);
            scan->calls.push_back(std::move(cs));
          }
        } else if (cand.empty()) {
          cand = full;
        }
      }
      i = we;
      continue;
    }
    switch (c) {
      case '{':
        if (pd > 0) {
          frames.push_back({'o', ""});  // lambda body inside call args
        } else if (!cand.empty() && cur_fn().empty()) {
          frames.push_back({'f', cand});
          cand.clear();
        } else {
          frames.push_back({'o', ""});
        }
        ++i;
        break;
      case '}':
        if (!frames.empty()) frames.pop_back();
        while (!held.empty() && held.back().second > frames.size())
          held.pop_back();
        cand.clear();
        ++i;
        break;
      case '(':
        ++pd;
        ++i;
        break;
      case ')':
        if (pd > 0) --pd;
        ++i;
        break;
      case ';':
        cand.clear();
        ++i;
        break;
      default:
        ++i;
        break;
    }
  }
}

/// Unions `fn_locks` over every function `callee` can name: an exact
/// match when qualified, every same-named method otherwise (conservative
/// merge — the tokenizer cannot see receiver types).
std::set<std::string> resolve_locks(
    const std::string& callee,
    const std::map<std::string, std::set<std::string>>& fn_locks,
    const std::map<std::string, std::vector<std::string>>& by_leaf) {
  std::set<std::string> out;
  auto add = [&](const std::string& key) {
    auto it = fn_locks.find(key);
    if (it != fn_locks.end()) out.insert(it->second.begin(), it->second.end());
  };
  add(callee);
  if (callee.find("::") == std::string::npos) {
    auto it = by_leaf.find(callee);
    if (it != by_leaf.end())
      for (const std::string& key : it->second) add(key);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// The pass.

ConcOptions conc_options_for_root(const std::string& root) {
  ConcOptions o;
  o.root = root;
  o.src_dir = (fs::path(root) / "src").generic_string();
  return o;
}

void print_lock_dot(std::ostream& os, const LockGraph& g) {
  os << "// Lock-acquisition-order graph, generated by `its_lint "
        "--lock-dot`.\n"
     << "// An edge A -> B: some thread acquires B while holding A.\n"
     << "// Deadlock freedom = this stays a DAG (its_lint conc-lock-order).\n"
     << "// Do not edit: CI diffs this file against a fresh run.\n"
     << "digraph its_locks {\n  rankdir=LR;\n  node [shape=box];\n";
  for (const std::string& l : g.locks) os << "  \"" << l << "\";\n";
  for (const LockGraph::Edge& e : g.edges)
    os << "  \"" << e.from << "\" -> \"" << e.to << "\";\n";
  os << "}\n";
}

std::vector<Finding> scan_concurrency_files(
    const std::vector<SourceFile>& files, LockGraph* graph) {
  std::vector<ConcFile> cf(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    cf[i].src = files[i];
    build_views(&cf[i]);
  }

  // -- Whole-program indices: classes (mutex owners), atomics, globals.
  std::vector<ClassInfo> classes;
  for (std::size_t i = 0; i < cf.size(); ++i)
    collect_classes(cf[i], i, &classes);

  LockNames names;
  for (const ClassInfo& ci : classes)
    for (const Member& m : ci.members)
      if (m.is_mutex) {
        names.class_mutexes[ci.name].insert(m.name);
        names.mutex_owners[m.name].insert(ci.name);
      }

  std::set<std::string> atomics;
  for (const ConcFile& f : cf) harvest_atomics(f, &atomics);

  std::vector<Finding> findings;

  // -- conc-shared-static (both scans also harvest global/static mutexes
  //    for the lock-name table, so they run before the lock walker).
  for (const ConcFile& f : cf) {
    scan_statics(f, &names.global_mutexes, &findings);
    scan_globals(f, &names.global_mutexes, &findings);
  }

  // -- conc-atomic-order.
  for (const ConcFile& f : cf) scan_atomic_order(f, atomics, &findings);

  // -- conc-guarded + conc-false-share, straight off the member lists.
  for (const ClassInfo& ci : classes) {
    bool owns_mutex = std::any_of(ci.members.begin(), ci.members.end(),
                                  [](const Member& m) { return m.is_mutex; });
    if (owns_mutex) {
      for (const Member& m : ci.members) {
        if (m.is_sync || m.is_atomic || m.is_const || m.has_guard) continue;
        findings.push_back(
            {cf[ci.file].src.path, m.line, Rule::kConcGuarded,
             "mutable member '" + m.name + "' of lock-owning class '" +
                 ci.name +
                 "' has no GUARDED_BY(...) — annotate which mutex protects "
                 "it (util/thread_annotations.h), or state why it needs no "
                 "guard in a suppression"});
      }
    }
    for (std::size_t k = 1; k < ci.members.size(); ++k) {
      const Member& a = ci.members[k - 1];
      const Member& b = ci.members[k];
      bool hot_a = a.is_mutex || a.is_atomic;
      bool hot_b = b.is_mutex || b.is_atomic;
      if (!hot_a || !hot_b) continue;
      if (b.has_alignas || ci.has_alignas) continue;
      findings.push_back(
          {cf[ci.file].src.path, b.line, Rule::kConcFalseShare,
           "synchronization members '" + a.name + "' and '" + b.name +
               "' of '" + ci.name +
               "' are adjacent with no alignas separation — contended "
               "cache-line sharing; pad with "
               "alignas(util::kDestructiveInterferenceSize)"});
    }
  }

  // -- conc-lock-order.
  LockScan scan;
  for (std::size_t i = 0; i < cf.size(); ++i)
    walk_locks(cf[i], i, names, &scan);

  // Leaf-name -> qualified fn_locks keys, for unqualified call resolution.
  std::map<std::string, std::vector<std::string>> by_leaf;
  for (const auto& [key, locks] : scan.fn_locks) {
    (void)locks;
    std::size_t sep = key.rfind("::");
    by_leaf[sep == std::string::npos ? key : key.substr(sep + 2)]
        .push_back(key);
  }
  // Fixpoint: a function transitively acquires what its callees acquire.
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [caller, callees] : scan.fn_calls) {
      std::set<std::string>& mine = scan.fn_locks[caller];
      const std::size_t before = mine.size();
      for (const std::string& callee : callees) {
        std::set<std::string> got =
            resolve_locks(callee, scan.fn_locks, by_leaf);
        mine.insert(got.begin(), got.end());
      }
      if (mine.size() != before) {
        changed = true;
        // Keep by_leaf in sync for keys that just appeared.
        std::size_t sep = caller.rfind("::");
        std::string leaf =
            sep == std::string::npos ? caller : caller.substr(sep + 2);
        auto& v = by_leaf[leaf];
        if (std::find(v.begin(), v.end(), caller) == v.end())
          v.push_back(caller);
      }
    }
  }
  // Edges: direct nestings plus held × callee-acquired per call site.
  std::vector<DirectEdge> edges = scan.direct;
  for (const CallSite& cs : scan.calls) {
    std::set<std::string> acquired =
        resolve_locks(cs.callee, scan.fn_locks, by_leaf);
    for (const std::string& h : cs.held)
      for (const std::string& l : acquired)
        if (h != l) edges.push_back({h, l, cs.file, cs.line});
  }
  std::sort(edges.begin(), edges.end(),
            [&](const DirectEdge& a, const DirectEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              if (cf[a.file].src.path != cf[b.file].src.path)
                return cf[a.file].src.path < cf[b.file].src.path;
              return a.line < b.line;
            });
  LockGraph g;
  g.locks.assign(scan.all_locks.begin(), scan.all_locks.end());
  for (const DirectEdge& e : edges) {
    if (!g.edges.empty() && g.edges.back().from == e.from &&
        g.edges.back().to == e.to)
      continue;  // deduped: first witness in (file, line) order wins
    g.edges.push_back({e.from, e.to, cf[e.file].src.path, e.line});
  }
  if (graph != nullptr) *graph = g;

  // Cycle detection over the deduped edge list.
  {
    std::map<std::string, std::vector<std::size_t>> adj;
    for (std::size_t k = 0; k < g.edges.size(); ++k)
      adj[g.edges[k].from].push_back(k);
    std::set<std::string> reported;
    // DFS from every lock; the gray stack names the cycle.
    for (const std::string& root : g.locks) {
      std::vector<std::string> stack;
      std::set<std::string> on_stack;
      // Explicit DFS with per-frame edge cursors.
      std::vector<std::pair<std::string, std::size_t>> work;
      work.emplace_back(root, 0);
      stack.push_back(root);
      on_stack.insert(root);
      while (!work.empty()) {
        auto& [node, cursor] = work.back();
        const std::vector<std::size_t>* out_edges = nullptr;
        auto it = adj.find(node);
        if (it != adj.end()) out_edges = &it->second;
        if (out_edges == nullptr || cursor >= out_edges->size()) {
          on_stack.erase(node);  // before pop_back: `node` aliases the frame
          work.pop_back();
          stack.pop_back();
          continue;
        }
        const LockGraph::Edge& e = g.edges[(*out_edges)[cursor++]];
        if (on_stack.count(e.to) != 0) {
          // Cycle: the stack from e.to onward, closed by node -> e.to.
          auto at = std::find(stack.begin(), stack.end(), e.to);
          std::vector<std::string> cyc(at, stack.end());
          auto smallest = std::min_element(cyc.begin(), cyc.end());
          std::rotate(cyc.begin(), smallest, cyc.end());
          std::string path;
          for (const std::string& n : cyc) path += n + " -> ";
          path += cyc.front();
          if (reported.insert(path).second) {
            // Anchor at the witness of the cycle's first edge.
            std::string file = cf[0].src.path;
            std::size_t line = 0;
            const std::string& to0 = cyc.size() > 1 ? cyc[1] : cyc[0];
            for (const LockGraph::Edge& w : g.edges)
              if (w.from == cyc.front() && w.to == to0) {
                file = w.file;
                line = w.line;
                break;
              }
            findings.push_back(
                {file, line, Rule::kConcLockOrder,
                 "lock-order cycle: " + path +
                     " — two threads taking these locks in opposite order "
                     "deadlock; fix the acquisition order (docs/locks.dot "
                     "has every edge's witness)"});
          }
          continue;
        }
        if (stack.size() > g.locks.size()) continue;  // safety bound
        work.emplace_back(e.to, 0);
        stack.push_back(e.to);
        on_stack.insert(e.to);
      }
    }
  }

  // -- Reasoned suppressions, per anchoring file.
  {
    std::map<std::string, std::size_t> by_path;
    for (std::size_t i = 0; i < cf.size(); ++i) by_path[cf[i].src.path] = i;
    std::map<std::string, std::vector<Finding>> grouped;
    std::vector<Finding> rest;
    for (Finding& fi : findings) {
      if (by_path.count(fi.file) != 0)
        grouped[fi.file].push_back(std::move(fi));
      else
        rest.push_back(std::move(fi));
    }
    findings = std::move(rest);
    for (auto& [file, group] : grouped) {
      std::vector<Finding> kept =
          filter_suppressed(cf[by_path[file]].src, std::move(group));
      findings.insert(findings.end(), std::make_move_iterator(kept.begin()),
                      std::make_move_iterator(kept.end()));
    }
  }
  return findings;
}

std::vector<Finding> scan_concurrency(const ConcOptions& opts,
                                      LockGraph* graph,
                                      std::vector<std::string>* errors) {
  std::vector<SourceFile> files;
  for (const std::string& p : collect_tree(opts.src_dir, errors)) {
    SourceFile f;
    std::string err;
    if (!SourceFile::load(p, &f, &err)) {
      errors->push_back(err);
      continue;
    }
    f.path = fs::path(p).lexically_relative(opts.root).generic_string();
    files.push_back(std::move(f));
  }
  return scan_concurrency_files(files, graph);
}

}  // namespace its::lint
